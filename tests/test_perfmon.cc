/**
 * @file
 * Tests for perf metrics, benign workloads and the stealth experiments
 * (paper Sec. VII, Tables VI and VII).
 */

#include <gtest/gtest.h>

#include "perfmon/metrics.hh"
#include "perfmon/stealth.hh"
#include "perfmon/workloads.hh"
#include "sim/smt_core.hh"

namespace wb::perfmon
{
namespace
{

TEST(Metrics, LoadFootprintMath)
{
    sim::PerfCounters c;
    c.loads = 1000;
    c.stores = 200;
    c.spinLoads = 800;
    c.l2Accesses = 50;
    c.llcAccesses = 5;
    // 2.2e9 cycles at 2.2 GHz = 1 second.
    auto fp = loadFootprint(c, 2'200'000'000ull, 2.2);
    EXPECT_DOUBLE_EQ(fp.l1PerSec, 2000.0);
    EXPECT_DOUBLE_EQ(fp.l2PerSec, 50.0);
    EXPECT_DOUBLE_EQ(fp.llcPerSec, 5.0);
    EXPECT_DOUBLE_EQ(fp.totalPerSec, 2055.0);
}

TEST(Metrics, ZeroElapsedIsZero)
{
    sim::PerfCounters c;
    c.loads = 10;
    auto fp = loadFootprint(c, 0, 2.2);
    EXPECT_DOUBLE_EQ(fp.totalPerSec, 0.0);
}

TEST(Metrics, MissProfile)
{
    sim::PerfCounters c;
    c.loads = 100;
    c.spinLoads = 100;
    c.l1Misses = 10;
    c.l2Accesses = 10;
    c.l2Misses = 5;
    c.llcAccesses = 5;
    c.llcMisses = 1;
    auto mp = missProfile(c);
    EXPECT_DOUBLE_EQ(mp.l1d, 0.05);
    EXPECT_DOUBLE_EQ(mp.l2, 0.5);
    EXPECT_DOUBLE_EQ(mp.llc, 0.2);
}

TEST(Workloads, CompilerIssuesMixedOps)
{
    Rng rng(3);
    auto hp = sim::xeonE5_2650Params();
    sim::Hierarchy h(hp, &rng);
    sim::SmtCore core(h, sim::NoiseModel::quiet(), rng);
    CompilerWorkload w;
    auto tid = core.addThread(&w, sim::AddressSpace(5));
    core.run(300'000);
    const auto &c = h.counters(tid);
    EXPECT_GT(c.loads, 1000u);
    EXPECT_GT(c.stores, 100u);
    EXPECT_GT(c.l1Misses, 100u); // working set exceeds L1
}

TEST(Workloads, StreamingMostlyMissesL1)
{
    Rng rng(3);
    auto hp = sim::xeonE5_2650Params();
    sim::Hierarchy h(hp, &rng);
    sim::SmtCore core(h, sim::NoiseModel::quiet(), rng);
    StreamingWorkload w(16384); // 1 MiB: far beyond L1/L2
    auto tid = core.addThread(&w, sim::AddressSpace(5));
    core.run(500'000);
    const auto &c = h.counters(tid);
    EXPECT_GT(c.l1MissRate(), 0.9);
}

TEST(TableVI, WbSenderQuieterThanLru)
{
    auto cmp = compareSenderFootprints(11000, 6, 3);
    // Paper Table VI: WB total ~= 59.8% of the LRU channel's. The
    // simulation should land in a generous band around it.
    EXPECT_GT(cmp.ratio, 0.40);
    EXPECT_LT(cmp.ratio, 0.80);
    // Absolute order of magnitude: a few 1e8 loads/s (Table VI).
    EXPECT_GT(cmp.wb.l1PerSec, 1e8);
    EXPECT_LT(cmp.wb.l1PerSec, 1e9);
}

TEST(TableVII, L1MissRateOrdering)
{
    // Paper Table VII ordering: sender-only << WB channel < benign
    // co-runner (that is why perf-counter detection fails).
    const auto wb =
        senderMissProfile(CoRunner::WbReceiver, false, 11000, 640, 3);
    const auto gpp =
        senderMissProfile(CoRunner::Compiler, false, 11000, 640, 3);
    const auto alone =
        senderMissProfile(CoRunner::None, false, 11000, 640, 3);
    EXPECT_LT(alone.l1d, wb.l1d / 5.0);
    EXPECT_GT(gpp.l1d, wb.l1d);
    // Magnitudes: all far below 1%.
    EXPECT_LT(wb.l1d, 0.002);
    EXPECT_LT(gpp.l1d, 0.01);
}

TEST(TableVII, MultiBitSenderMissesMore)
{
    const auto bin =
        senderMissProfile(CoRunner::WbReceiver, false, 11000, 640, 3);
    const auto multi =
        senderMissProfile(CoRunner::WbReceiver, true, 11000, 640, 3);
    // Multi-bit modulates up to 8 lines per symbol: more L1 misses.
    EXPECT_GT(multi.l1d, bin.l1d * 2);
}

TEST(TableVII, WbSenderL2MissRateLow)
{
    // The sender's lines bounce L1<->L2, so its L2 accesses hit.
    const auto wb =
        senderMissProfile(CoRunner::WbReceiver, false, 11000, 640, 3);
    EXPECT_LT(wb.l2, 0.10);
}

} // namespace
} // namespace wb::perfmon
