/**
 * @file
 * TraceEquivalence: trace-compiled execution must be *bit-identical*
 * to per-op stepping — not statistically close, identical.
 *
 * The trace engine (docs/ENGINE.md) batches each program's MemOps and
 * executes whole slices without per-op virtual dispatch, falling back
 * per-op only at data-dependent decision points. Its correctness
 * contract is that NoiseModel::traceExecution is purely a performance
 * knob: every observable of a run — decoded bits, raw latencies,
 * virtual time, perf counters, scheduler stats — matches the per-op
 * path exactly, because both paths draw the same Rng stream in the
 * same order and walk the same Hierarchy state.
 *
 * The grid stresses every fallback and split point:
 *  - all registered platform presets (WB/WT, inclusive/non-inclusive,
 *    DAWG partitioning) x >= 8 seeds;
 *  - Sec. VIII defense knobs (write-through L1, PLcache lock-on-write,
 *    probe-isolated partitions) that change hit/miss/fill behaviour
 *    mid-trace;
 *  - OS-noise regimes where the Scheduler must split batches at
 *    gang-freeze/timeslice boundaries, plus mid-batch migration
 *    (migrationPeriod) rebinding a front-end between cores while its
 *    trace is in flight.
 */

#include <gtest/gtest.h>

#include "chan/channel.hh"
#include "chan/cross_core.hh"
#include "sim/platform.hh"
#include "sidechan/attack.hh"

namespace wb
{
namespace
{

constexpr unsigned kSeeds = 8;

void
expectCountersEqual(const sim::PerfCounters &a, const sim::PerfCounters &b,
                    const char *who)
{
    SCOPED_TRACE(who);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.llcAccesses, b.llcAccesses);
    EXPECT_EQ(a.l1DirtyWritebacks, b.l1DirtyWritebacks);
    EXPECT_EQ(a.flushes, b.flushes);
    EXPECT_EQ(a.llcDirtyEvictions, b.llcDirtyEvictions);
    EXPECT_EQ(a.spinLoads, b.spinLoads);
}

/** Every observable of two channel runs must match exactly. */
void
expectIdentical(const chan::ChannelResult &a, const chan::ChannelResult &b,
                const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.decodedBits, b.decodedBits);
    EXPECT_EQ(a.sentFrame, b.sentFrame);
    EXPECT_EQ(a.ber, b.ber); // exact double equality: same arithmetic
    EXPECT_EQ(a.aligned, b.aligned);
    EXPECT_EQ(a.framesScored, b.framesScored);
    EXPECT_EQ(a.framesExpected, b.framesExpected);
    EXPECT_EQ(a.simulatedCycles, b.simulatedCycles);
    EXPECT_TRUE(a.latencies == b.latencies) << "raw latencies diverge";
    EXPECT_TRUE(a.calibrationMedians == b.calibrationMedians);
    expectCountersEqual(a.senderCounters, b.senderCounters, "sender");
    expectCountersEqual(a.receiverCounters, b.receiverCounters, "receiver");
    EXPECT_EQ(a.schedulerStats.contextSwitches,
              b.schedulerStats.contextSwitches);
    EXPECT_EQ(a.schedulerStats.migrations, b.schedulerStats.migrations);
    EXPECT_EQ(a.schedulerStats.pollutionAccesses,
              b.schedulerStats.pollutionAccesses);
    EXPECT_EQ(a.schedulerStats.coRunnerAccesses,
              b.schedulerStats.coRunnerAccesses);
}

/** Run cfg through both engines and demand identity. */
void
checkChannel(chan::ChannelConfig cfg, const std::string &what)
{
    cfg.noise.traceExecution = true;
    const auto traced = chan::runChannel(cfg);
    cfg.noise.traceExecution = false;
    const auto stepped = chan::runChannel(cfg);
    expectIdentical(traced, stepped, what);
}

TEST(TraceEquivalence, EveryPlatformPreset)
{
    for (const std::string &name : sim::platformNames()) {
        // Sliced-LLC presets cannot stand up the single-core
        // Hierarchy runChannel() uses (llcSlices > 1 is fatal there);
        // their trace coverage rides the cross-core suites.
        if (sim::findPlatform(name)->params.llcSlices > 1)
            continue;
        chan::ChannelConfig cfg;
        cfg.usePlatform(name);
        cfg.protocol.frames = 2;
        for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
            cfg.seed = seed;
            checkChannel(cfg, name + " seed " + std::to_string(seed));
        }
    }
}

TEST(TraceEquivalence, DefenseKnobs)
{
    struct Defense
    {
        const char *name;
        void (*apply)(chan::ChannelConfig &);
    };
    const Defense defenses[] = {
        {"write-through-l1",
         [](chan::ChannelConfig &c) {
             c.platform.l1.writePolicy = sim::WritePolicy::WriteThrough;
         }},
        {"plcache-lock-on-write",
         [](chan::ChannelConfig &c) { c.platform.l1.lockOnWrite = true; }},
        {"dawg-partitions",
         [](chan::ChannelConfig &c) { c.usePlatform("xeonE5-2650-dawg"); }},
    };
    for (const Defense &d : defenses) {
        chan::ChannelConfig cfg;
        cfg.protocol.frames = 2;
        d.apply(cfg);
        for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
            cfg.seed = seed;
            checkChannel(cfg,
                         std::string(d.name) + " seed " +
                             std::to_string(seed));
        }
    }
}

TEST(TraceEquivalence, GangFreezeTimesliceSplits)
{
    // OS-noise regime: co-runners plus short timeslices force the
    // Scheduler to freeze gangs mid-trace; the engine must split the
    // compiled batches exactly at the tick and resume bit-identically.
    chan::ChannelConfig cfg;
    cfg.protocol.frames = 2;
    cfg.scheduler = sim::platform(cfg.platformName).noisePreset;
    cfg.scheduler.coRunners = sim::SchedulerConfig::mixOf(2);
    cfg.scheduler.timeslice = 20000; // short: many splits per frame
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        cfg.seed = seed;
        checkChannel(cfg, "gang-freeze seed " + std::to_string(seed));
    }
}

TEST(TraceEquivalence, MidBatchMigration)
{
    // Front-end migration rebinds a program to another core while its
    // trace is in flight; the pending slice must carry over.
    chan::ChannelConfig cfg;
    cfg.protocol.frames = 2;
    cfg.scheduler = sim::platform(cfg.platformName).noisePreset;
    cfg.scheduler.coRunners = sim::SchedulerConfig::mixOf(1);
    cfg.scheduler.migrationPeriod = 15000;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        cfg.seed = seed;
        checkChannel(cfg, "migration seed " + std::to_string(seed));
    }
}

TEST(TraceEquivalence, CrossCoreChannel)
{
    // Multi-core path: runCores interleaves per-core traces against
    // the shared LLC; WB channels and drains must replay identically.
    chan::CrossCoreChannelConfig cfg;
    cfg.usePlatform("desktop-inclusive-4core");
    cfg.protocol.frames = 2;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        cfg.seed = seed;
        cfg.noise.traceExecution = true;
        const auto traced = chan::runCrossCoreChannel(cfg);
        cfg.noise.traceExecution = false;
        const auto stepped = chan::runCrossCoreChannel(cfg);
        SCOPED_TRACE("cross-core seed " + std::to_string(seed));
        EXPECT_EQ(traced.decodedBits, stepped.decodedBits);
        EXPECT_EQ(traced.ber, stepped.ber);
        EXPECT_EQ(traced.simulatedCycles, stepped.simulatedCycles);
        EXPECT_TRUE(traced.latencies == stepped.latencies);
        expectCountersEqual(traced.receiverCounters,
                            stepped.receiverCounters, "receiver");
    }
}

TEST(TraceEquivalence, SideChannelAttack)
{
    // The attack loop exercises the spin/probe fallback points.
    for (const bool crossCore : {false, true}) {
        sidechan::AttackConfig cfg;
        if (crossCore) {
            cfg.usePlatform("desktop-inclusive-4core");
            cfg.crossCore = true;
        }
        cfg.scenario = sidechan::Scenario::DirtyProbe;
        cfg.trials = 32;
        for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
            cfg.seed = seed;
            cfg.noise.traceExecution = true;
            const auto traced = sidechan::runAttack(cfg);
            cfg.noise.traceExecution = false;
            const auto stepped = sidechan::runAttack(cfg);
            SCOPED_TRACE((crossCore ? "cross-core seed " : "smt seed ") +
                         std::to_string(seed));
            EXPECT_EQ(traced.accuracy, stepped.accuracy);
            EXPECT_EQ(traced.meanLatency0, stepped.meanLatency0);
            EXPECT_EQ(traced.meanLatency1, stepped.meanLatency1);
        }
    }
}

} // namespace
} // namespace wb
