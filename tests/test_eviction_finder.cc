/**
 * @file
 * Eviction-set discovery (chan/eviction_finder.hh) against slice-hash
 * ground truth. The finder itself is timing-only; these tests are the
 * place allowed to peek at MultiCoreSystem::sliceHash() and check
 * that "self-verified minimal" coincides with "exactly W lines
 * congruent with the victim".
 *
 * The reliability claim — discovery converges on the vast majority of
 * target sets — is a statistical one, so it runs as a >= 16-seed
 * Wilson-interval sweep (tests/stat_assert.hh), not as a single-seed
 * expectation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "chan/eviction_finder.hh"
#include "chan/set_mapping.hh"
#include "common/rng.hh"
#include "sim/address.hh"
#include "sim/multicore.hh"
#include "sim/platform.hh"
#include "stat_assert.hh"

namespace wb::chan
{
namespace
{

using sim::AddressLayout;
using sim::AddressSpace;
using sim::MultiCoreSystem;
using sim::Platform;

/** Physical candidate pool for @p targetSet in @p space. */
std::vector<Addr>
poolFor(const AddressLayout &llcLayout, const AddressSpace &space,
        unsigned targetSet, unsigned count, Addr tagBase)
{
    std::vector<Addr> pas;
    for (Addr va : linesForSet(llcLayout, targetSet, count, tagBase))
        pas.push_back(space.translate(va));
    return pas;
}

/** Lines of @p pool truly congruent with @p victim (ground truth). */
std::vector<Addr>
congruentLines(MultiCoreSystem &mc, Addr victim,
               const std::vector<Addr> &pool)
{
    std::vector<Addr> truth;
    for (Addr a : pool)
        if (mc.sliceOf(a) == mc.sliceOf(victim))
            truth.push_back(a);
    return truth;
}

/** Did @p res find exactly W lines, all truly congruent? */
bool
matchesGroundTruth(MultiCoreSystem &mc, Addr victim,
                   const EvictionSetResult &res, unsigned ways)
{
    if (!res.verifiedMinimal || res.set.size() != ways)
        return false;
    return std::all_of(res.set.begin(), res.set.end(), [&](Addr a) {
        return mc.sliceOf(a) == mc.sliceOf(victim);
    });
}

TEST(EvictionFinder, FindsTheGroundTruthSetOnASlicedLlc)
{
    const Platform &plat = sim::platform("dc-sliced-16core");
    Rng root(1);
    Rng noise = root.split();
    MultiCoreSystem mc(plat.params, plat.cores, &noise);
    const AddressLayout llcLayout(plat.params.llc.numSets());
    const AddressSpace space(2);

    const unsigned targetSet = 37;
    const Addr victim =
        space.translate(linesForSet(llcLayout, targetSet, 1, 1)[0]);
    const std::vector<Addr> pool =
        poolFor(llcLayout, space, targetSet, 256, 0x100);
    // The pool must have at least W truly congruent lines for the
    // reduction to have something to find.
    ASSERT_GE(congruentLines(mc, victim, pool).size(),
              plat.params.llc.ways);

    EvictionFinderConfig fc;
    fc.associativity = plat.params.llc.ways;
    EvictionSetFinder finder(mc.port(0), 0, fc);
    Rng prng = root.split();
    const EvictionSetResult res = finder.findFor(victim, pool, prng);

    EXPECT_TRUE(res.verifiedMinimal);
    EXPECT_TRUE(matchesGroundTruth(mc, victim, res,
                                   plat.params.llc.ways));
    // The auto-calibrated threshold separates the hit corner from the
    // DRAM corner.
    EXPECT_GT(finder.threshold(), plat.params.lat.llcHit);
    EXPECT_LT(finder.threshold(), plat.params.lat.mem);
    EXPECT_GT(res.timingTests, 0u);
    EXPECT_GT(res.accesses, res.timingTests);
}

TEST(EvictionFinder, ReducesAFullyCongruentPoolOnAnUnslicedLlc)
{
    // With one slice every same-set-index line is congruent; the
    // reduction must still cut a 4x pool down to exactly W lines.
    const Platform &plat = sim::platform("desktop-inclusive-4core");
    Rng root(3);
    Rng noise = root.split();
    MultiCoreSystem mc(plat.params, plat.cores, &noise);
    const AddressLayout llcLayout(plat.params.llc.numSets());
    const AddressSpace space(2);

    const unsigned ways = plat.params.llc.ways;
    const Addr victim =
        space.translate(linesForSet(llcLayout, 5, 1, 1)[0]);
    const std::vector<Addr> pool =
        poolFor(llcLayout, space, 5, 4 * ways, 0x100);

    EvictionFinderConfig fc;
    fc.associativity = ways;
    EvictionSetFinder finder(mc.port(0), 0, fc);
    Rng prng = root.split();
    const EvictionSetResult res = finder.findFor(victim, pool, prng);
    EXPECT_TRUE(res.verifiedMinimal);
    EXPECT_EQ(res.set.size(), ways);
}

TEST(EvictionFinder, ReportsFailureWhenThePoolCannotEvict)
{
    // A pool smaller than the associativity can never evict the
    // victim; the finder must say so instead of fabricating a set.
    const Platform &plat = sim::platform("desktop-inclusive-4core");
    MultiCoreSystem mc(plat.params, plat.cores, nullptr);
    const AddressLayout llcLayout(plat.params.llc.numSets());
    const AddressSpace space(2);

    const Addr victim =
        space.translate(linesForSet(llcLayout, 9, 1, 1)[0]);
    const std::vector<Addr> pool = poolFor(
        llcLayout, space, 9, plat.params.llc.ways / 2, 0x100);

    EvictionFinderConfig fc;
    fc.associativity = plat.params.llc.ways;
    EvictionSetFinder finder(mc.port(0), 0, fc);
    Rng prng(7);
    const EvictionSetResult res = finder.findFor(victim, pool, prng);
    EXPECT_FALSE(res.verifiedMinimal);
}

TEST(EvictionFinder, ConvergesToMinimalSetsAcrossSeedsAndTargets)
{
    // The headline reliability claim: across >= 16 seeds x 16 target
    // sets on the sliced 16-core preset, discovery self-verifies AND
    // matches ground truth on more than 95% of targets (Wilson lower
    // bound, z = 2.576).
    const auto sweep = test::sweepSeeds([](std::uint64_t seed) {
        const Platform &plat = sim::platform("dc-sliced-16core");
        Rng root(seed);
        Rng noise = root.split();
        MultiCoreSystem mc(plat.params, plat.cores, &noise);
        const AddressLayout llcLayout(plat.params.llc.numSets());
        const unsigned ways = plat.params.llc.ways;

        unsigned successes = 0;
        const unsigned targets = 16;
        for (unsigned t = 0; t < targets; ++t) {
            Rng prng = root.split();
            // Fresh address space per target: cold candidate pools,
            // and slice placement that varies with the asid bits.
            const AddressSpace space(2 + t);
            const unsigned targetSet =
                unsigned(prng.below(llcLayout.numSets()));
            const Addr victim = space.translate(
                linesForSet(llcLayout, targetSet, 1, 1)[0]);
            EvictionFinderConfig fc;
            fc.associativity = ways;
            EvictionSetFinder finder(mc.port(t % plat.cores),
                                     ThreadId(t), fc);
            const EvictionSetResult res = finder.findFor(
                victim,
                poolFor(llcLayout, space, targetSet, 256, 0x100), prng);
            if (matchesGroundTruth(mc, victim, res, ways))
                ++successes;
        }
        return test::Proportion{double(successes), double(targets)};
    });
    EXPECT_ACCURACY_ABOVE(sweep, 0.95);
}

} // namespace
} // namespace wb::chan
