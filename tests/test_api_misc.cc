/**
 * @file
 * API-level and edge-case tests: the umbrella header, the stats dump,
 * protocol corner cases, hierarchy level transitions, and
 * configuration validation across modules.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "wbchan.hh" // the umbrella header must be self-contained

namespace wb
{
namespace
{

TEST(Umbrella, HeaderExposesEverySubsystem)
{
    // Touch one symbol from each namespace to prove the single
    // include suffices.
    EXPECT_EQ(sim::policyName(sim::PolicyKind::TreePlru), "TreePLRU");
    EXPECT_EQ(chan::Encoding::binary(1).bitsPerSymbol(), 1u);
    EXPECT_EQ(baselines::flushKindName(
                  baselines::FlushKind::FlushReload),
              "Flush+Reload");
    EXPECT_EQ(defense::defenseName({defense::DefenseKind::None, 0}),
              "none");
    EXPECT_EQ(perfmon::workloadName(perfmon::Workload::Idle),
              "idle spinners");
    EXPECT_EQ(hw::available(), hw::available());
}

TEST(StatsDump, RendersAllCounters)
{
    Rng rng(1);
    auto hp = sim::xeonE5_2650Params();
    sim::Hierarchy h(hp, &rng);
    h.access(0, 0x1000, false);
    h.access(1, 0x2000, true);
    std::ostringstream os;
    sim::dumpStats(h, os, 2);
    const std::string out = os.str();
    EXPECT_NE(out.find("thread0.loads"), std::string::npos);
    EXPECT_NE(out.find("thread1.stores"), std::string::npos);
    EXPECT_NE(out.find("total.l1.missRate"), std::string::npos);
    EXPECT_NE(out.find("total.loads"), std::string::npos);
}

TEST(Protocol, EmptyLatenciesDontAlign)
{
    chan::Classifier cls({100.0, 200.0});
    Rng rng(3);
    auto frame = randomFrame(112, rng);
    auto dec = chan::decodeTransmission({}, cls,
                                        chan::Encoding::binary(1),
                                        frame, 3);
    EXPECT_FALSE(dec.aligned);
    EXPECT_DOUBLE_EQ(dec.ber, 1.0);
    EXPECT_EQ(dec.framesScored, 0u);
}

TEST(Protocol, SingleFrameStream)
{
    Rng rng(5);
    auto frame = randomFrame(112, rng);
    chan::Classifier cls({100.0, 200.0});
    std::vector<double> lats;
    for (bool b : frame)
        lats.push_back(b ? 200.0 : 100.0);
    auto dec = chan::decodeTransmission(lats, cls,
                                        chan::Encoding::binary(1),
                                        frame, 1);
    EXPECT_TRUE(dec.aligned);
    EXPECT_EQ(dec.framesScored, 1u);
    EXPECT_DOUBLE_EQ(dec.ber, 0.0);
}

TEST(Protocol, MoreFramesExpectedThanSent)
{
    Rng rng(7);
    auto frame = randomFrame(112, rng);
    chan::Classifier cls({100.0, 200.0});
    std::vector<double> lats;
    for (int f = 0; f < 2; ++f)
        for (bool b : frame)
            lats.push_back(b ? 200.0 : 100.0);
    auto dec = chan::decodeTransmission(lats, cls,
                                        chan::Encoding::binary(1),
                                        frame, 10);
    EXPECT_TRUE(dec.aligned);
    EXPECT_LE(dec.framesScored, 2u);
    EXPECT_DOUBLE_EQ(dec.ber, 0.0); // scored frames were clean
}

TEST(Encoding, CustomMultiBitLevels)
{
    auto enc = chan::Encoding::multiBit({0, 2, 4, 6, 8, 1, 3, 5});
    EXPECT_EQ(enc.bitsPerSymbol(), 3u);
    EXPECT_EQ(enc.symbols(), 8u);
    EXPECT_EQ(enc.maxLevel(), 8u);
}

TEST(Encoding, RejectsNonPowerOfTwo)
{
    EXPECT_EXIT((void)chan::Encoding::multiBit({0, 1, 2}),
                ::testing::ExitedWithCode(1), "power of two");
}

TEST(Hierarchy, LlcServesAfterL2Eviction)
{
    Rng rng(1);
    auto hp = sim::xeonE5_2650Params();
    hp.lat.noiseSigma = 0.0;
    hp.l1.policy = sim::PolicyKind::TrueLru;
    hp.l2.policy = sim::PolicyKind::TrueLru;
    sim::Hierarchy h(hp, &rng);
    const auto &l2Layout = h.l2().layout();
    // Fill one L2 set past capacity; the earliest line stays in LLC.
    const unsigned ways = hp.l2.ways;
    for (Addr t = 1; t <= ways + 2; ++t)
        h.access(0, l2Layout.compose(100, t), false);
    EXPECT_FALSE(h.l2().contains(l2Layout.compose(100, 1)));
    EXPECT_TRUE(h.llc().contains(l2Layout.compose(100, 1)));
    // L1 also evicted it long ago (same L1 set): served by LLC now.
    auto res = h.access(0, l2Layout.compose(100, 1), false);
    EXPECT_EQ(res.servedBy, sim::Level::LLC);
    EXPECT_GE(res.latency, hp.lat.llcHit);
}

TEST(NoiseModel, MeasSigmaShape)
{
    sim::NoiseModel nm;
    EXPECT_DOUBLE_EQ(nm.measSigma(0), nm.measBaseSigma);
    EXPECT_GT(nm.measSigma(800), nm.measSigma(5500));
    EXPECT_NEAR(nm.measSigma(1800),
                nm.measBaseSigma + nm.measRateSigma / 1800.0, 1e-12);
}

TEST(EvictionProbe, AllImpliesAny)
{
    Rng rng(9);
    sim::EvictionProbeConfig cfg;
    cfg.policy = sim::PolicyKind::RandomIid;
    cfg.dirtyLines = 3;
    cfg.replacementSize = 10;
    auto res = sim::runEvictionProbe(cfg, 2000, rng);
    EXPECT_LE(res.probAllDirtyEvicted, res.probAnyDirtyEvicted);
    EXPECT_GT(res.probAnyDirtyEvicted, 0.0);
}

TEST(TransmitString, LongMessageMultiBit)
{
    chan::ChannelConfig cfg;
    cfg.noise = sim::NoiseModel::quiet();
    cfg.platform.lat.noiseSigma = 0.0;
    cfg.protocol.ts = cfg.protocol.tr = 5500;
    cfg.protocol.encoding = chan::Encoding::paperTwoBit();
    cfg.calibration.measurements = 60;
    cfg.seed = 13;
    const std::string msg =
        "A longer message spanning many symbols to exercise framing.";
    EXPECT_EQ(chan::transmitString(cfg, msg), msg);
}

TEST(BitVec, UintEdges)
{
    EXPECT_EQ(toUint(fromUint(~0ull, 64)), ~0ull);
    EXPECT_EQ(toUint(fromUint(0, 64)), 0ull);
    EXPECT_EQ(fromUint(5, 0).size(), 0u);
    EXPECT_EQ(toUint({}), 0ull);
}

TEST(Samples, PercentileEdgeRanks)
{
    Samples s;
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 10.0);
}

TEST(Cache, FilledByTracksThread)
{
    sim::CacheParams p;
    p.ways = 2;
    p.sizeBytes = 2 * 64;
    sim::Cache c(p, nullptr);
    c.fill(0x0, 3, false);
    auto lines = c.setContents(0);
    bool found = false;
    for (const auto &l : lines)
        if (l.valid) {
            EXPECT_EQ(l.filledBy, 3u);
            found = true;
        }
    EXPECT_TRUE(found);
}

TEST(L2Channel, ConfigRate)
{
    chan::L2ChannelConfig cfg;
    cfg.ts = 22000;
    EXPECT_NEAR(cfg.rateKbps(), 100.0, 0.1);
}

TEST(MultiSet, TargetSetsDisjointAndValid)
{
    chan::MultiSetConfig cfg;
    cfg.setCount = 8;
    std::set<unsigned> sets;
    for (unsigned j = 0; j < cfg.setCount; ++j) {
        const unsigned s = cfg.targetSet(j);
        EXPECT_LT(s, 64u);
        sets.insert(s);
    }
    EXPECT_EQ(sets.size(), 8u);
}

} // namespace
} // namespace wb
