/**
 * @file
 * Unit tests for the channel building blocks: set mapping, pointer
 * chase, modulation/classifier and calibration.
 */

#include <gtest/gtest.h>

#include <set>

#include "chan/calibration.hh"
#include "chan/modulation.hh"
#include "chan/pointer_chase.hh"
#include "chan/set_mapping.hh"

namespace wb::chan
{
namespace
{

TEST(SetMapping, AllLinesMapToTargetSet)
{
    sim::AddressLayout layout(64);
    const auto lines = linesForSet(layout, 13, 10);
    ASSERT_EQ(lines.size(), 10u);
    for (Addr a : lines)
        EXPECT_EQ(layout.setIndex(a), 13u);
}

TEST(SetMapping, DistinctTags)
{
    sim::AddressLayout layout(64);
    const auto lines = linesForSet(layout, 5, 16);
    std::set<Addr> tags;
    for (Addr a : lines)
        tags.insert(layout.tag(a));
    EXPECT_EQ(tags.size(), 16u);
}

TEST(SetMapping, ChannelSetsDisjoint)
{
    sim::AddressLayout layout(64);
    const auto sets = makeChannelSets(layout, 13, 8, 10);
    EXPECT_EQ(sets.senderLines.size(), 8u);
    EXPECT_EQ(sets.replacementA.size(), 10u);
    EXPECT_EQ(sets.replacementB.size(), 10u);
    std::set<Addr> all;
    for (const auto *pool :
         {&sets.senderLines, &sets.replacementA, &sets.replacementB})
        for (Addr a : *pool)
            all.insert(a);
    EXPECT_EQ(all.size(), 28u); // no overlap anywhere
    for (Addr a : all)
        EXPECT_EQ(layout.setIndex(a), 13u);
}

TEST(PointerChase, MeasurementOpsShape)
{
    sim::AddressLayout layout(64);
    PointerChase chase(linesForSet(layout, 3, 10));
    const auto ops = chase.measurementOps();
    ASSERT_EQ(ops.size(), 12u);
    EXPECT_EQ(ops.front().kind, sim::MemOp::Kind::TscRead);
    EXPECT_EQ(ops.back().kind, sim::MemOp::Kind::TscRead);
    for (std::size_t i = 1; i + 1 < ops.size(); ++i)
        EXPECT_EQ(ops[i].kind, sim::MemOp::Kind::Load);
}

TEST(PointerChase, ReshuffleIsPermutation)
{
    sim::AddressLayout layout(64);
    const auto lines = linesForSet(layout, 3, 10);
    PointerChase chase(lines);
    Rng rng(3);
    chase.reshuffle(rng);
    auto shuffled = chase.order();
    std::set<Addr> a(lines.begin(), lines.end());
    std::set<Addr> b(shuffled.begin(), shuffled.end());
    EXPECT_EQ(a, b);
}

TEST(Encoding, Binary)
{
    const Encoding enc = Encoding::binary(5);
    EXPECT_EQ(enc.bitsPerSymbol(), 1u);
    EXPECT_EQ(enc.symbols(), 2u);
    EXPECT_EQ(enc.level(0), 0u);
    EXPECT_EQ(enc.level(1), 5u);
    EXPECT_EQ(enc.maxLevel(), 5u);
}

TEST(Encoding, PaperTwoBit)
{
    const Encoding enc = Encoding::paperTwoBit();
    EXPECT_EQ(enc.bitsPerSymbol(), 2u);
    EXPECT_EQ(enc.symbols(), 4u);
    EXPECT_EQ(enc.level(0), 0u);
    EXPECT_EQ(enc.level(1), 3u);
    EXPECT_EQ(enc.level(2), 5u);
    EXPECT_EQ(enc.level(3), 8u);
}

TEST(Encoding, SymbolAtReadsMsbFirst)
{
    const Encoding enc = Encoding::paperTwoBit();
    const BitVec bits = fromBitString("0111");
    EXPECT_EQ(enc.symbolAt(bits, 0), 1u); // "01"
    EXPECT_EQ(enc.symbolAt(bits, 2), 3u); // "11"
    EXPECT_EQ(enc.symbolAt(bits, 3), 2u); // "1" then padding 0
}

TEST(Encoding, SymbolBitsRoundtrip)
{
    const Encoding enc = Encoding::paperTwoBit();
    for (unsigned s = 0; s < enc.symbols(); ++s) {
        BitVec out;
        enc.appendSymbolBits(s, out);
        EXPECT_EQ(enc.symbolAt(out, 0), s);
    }
}

TEST(Classifier, MidpointThresholds)
{
    Classifier c({100.0, 120.0, 160.0});
    EXPECT_DOUBLE_EQ(c.threshold(0), 110.0);
    EXPECT_DOUBLE_EQ(c.threshold(1), 140.0);
    EXPECT_EQ(c.classify(95.0), 0u);
    EXPECT_EQ(c.classify(111.0), 1u);
    EXPECT_EQ(c.classify(139.0), 1u);
    EXPECT_EQ(c.classify(200.0), 2u);
}

TEST(Classifier, DegenerateCentroidsDontAbort)
{
    // Defended platforms collapse the distributions; the classifier
    // epsilon-separates them and decoding degrades to guessing.
    Classifier c({100.0, 100.0});
    EXPECT_EQ(c.classify(50.0), 0u);
    EXPECT_EQ(c.classify(150.0), 1u);
}

/** Calibration on a quiet platform: medians rise ~linearly with d. */
TEST(Calibration, MediansSeparateByDirtyPenalty)
{
    sim::HierarchyParams hp = sim::xeonE5_2650Params();
    hp.lat.noiseSigma = 0.0;
    sim::NoiseModel noise = sim::NoiseModel::quiet();
    CalibrationConfig cfg;
    cfg.measurements = 150;
    Rng rng(3);
    auto cal = calibrate(hp, noise, cfg, rng);
    ASSERT_EQ(cal.medianByD.size(), 9u);
    for (unsigned d = 1; d <= 8; ++d) {
        const double gap = cal.medianByD[d] - cal.medianByD[d - 1];
        // Paper Sec. V: each dirty line adds ~10 cycles (one dirty-
        // victim write-back penalty).
        EXPECT_NEAR(gap, double(hp.lat.l1DirtyEvictPenalty), 2.5)
            << "d=" << d;
    }
}

TEST(Calibration, ClassifiersFollowMedians)
{
    sim::HierarchyParams hp = sim::xeonE5_2650Params();
    hp.lat.noiseSigma = 0.0;
    CalibrationConfig cfg;
    cfg.measurements = 100;
    Rng rng(5);
    auto cal = calibrate(hp, sim::NoiseModel::quiet(), cfg, rng);

    auto bin = cal.binaryClassifier(8);
    EXPECT_DOUBLE_EQ(bin.centroid(0), cal.medianByD[0]);
    EXPECT_DOUBLE_EQ(bin.centroid(1), cal.medianByD[8]);

    auto multi = cal.classifierFor(Encoding::paperTwoBit());
    EXPECT_EQ(multi.symbols(), 4u);
    EXPECT_DOUBLE_EQ(multi.centroid(2), cal.medianByD[5]);
}

TEST(Calibration, DistributionsAreNarrow)
{
    sim::HierarchyParams hp = sim::xeonE5_2650Params();
    CalibrationConfig cfg;
    cfg.measurements = 300;
    Rng rng(7);
    sim::NoiseModel noise; // realistic noise
    auto cal = calibrate(hp, noise, cfg, rng);
    // Paper Fig. 4: bands are "relatively narrow and sufficiently
    // distinguishable": the d and d+2 distributions must not overlap
    // at the quartiles.
    for (unsigned d = 0; d + 2 <= 8; d += 2) {
        EXPECT_LT(cal.latencyByD[d].percentile(75),
                  cal.latencyByD[d + 2].percentile(25))
            << "d=" << d;
    }
}

} // namespace
} // namespace wb::chan
