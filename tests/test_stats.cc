/**
 * @file
 * Unit tests for statistics containers (common/stats.hh).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"

namespace wb
{
namespace
{

TEST(OnlineStats, Empty)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(OnlineStats, KnownValues)
{
    OnlineStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesCombined)
{
    Rng rng(5);
    OnlineStats a, b, all;
    for (int i = 0; i < 500; ++i) {
        const double x = rng.gaussian(3.0, 2.0);
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty)
{
    OnlineStats a, empty;
    a.add(1.0);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);

    OnlineStats b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Samples, PercentileBasics)
{
    Samples s;
    for (int i = 1; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_NEAR(s.median(), 50.5, 0.01);
    EXPECT_NEAR(s.percentile(25), 25.75, 0.01);
}

TEST(Samples, MedianOddCount)
{
    Samples s;
    for (double x : {5.0, 1.0, 3.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Samples, EmptyIsZero)
{
    Samples s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.median(), 0.0);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.cdfAt(10.0), 0.0);
}

TEST(Samples, CdfMonotone)
{
    Samples s;
    Rng rng(3);
    for (int i = 0; i < 500; ++i)
        s.add(rng.gaussian(50.0, 10.0));
    double prev = 0.0;
    for (double x = 0; x <= 100; x += 5) {
        const double c = s.cdfAt(x);
        EXPECT_GE(c, prev);
        prev = c;
    }
    EXPECT_DOUBLE_EQ(s.cdfAt(1e9), 1.0);
}

TEST(Samples, CdfAtExactPoints)
{
    Samples s;
    s.add(1.0);
    s.add(2.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.cdfAt(0.5), 0.0);
    EXPECT_NEAR(s.cdfAt(1.0), 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(s.cdfAt(2.5), 2.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.cdfAt(3.0), 1.0);
}

TEST(Samples, CdfGridShape)
{
    Samples s;
    for (int i = 0; i < 100; ++i)
        s.add(static_cast<double>(i));
    auto grid = s.cdfGrid(0, 99, 50);
    ASSERT_EQ(grid.size(), 50u);
    EXPECT_DOUBLE_EQ(grid.front().first, 0.0);
    EXPECT_NEAR(grid.back().first, 99.0, 1e-9);
    // The last grid x may sit epsilon below the max sample.
    EXPECT_GE(grid.back().second, 0.99);
}

TEST(Samples, AddAllAndStddev)
{
    Samples s;
    s.addAll({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev() * s.stddev(), 32.0 / 7.0, 1e-9);
}

TEST(Histogram, BinningAndClamp)
{
    Histogram h(0.0, 10.0, 5); // bins [0,10) ... [40,50)
    h.add(5.0);
    h.add(15.0);
    h.add(15.5);
    h.add(-100.0); // clamps to first
    h.add(1e9);    // clamps to last
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 2u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 5.0);
    EXPECT_DOUBLE_EQ(h.binCenter(4), 45.0);
}

TEST(Histogram, AsciiRenders)
{
    Histogram h(0.0, 1.0, 3);
    h.add(0.5);
    h.add(0.6);
    h.add(2.5);
    const std::string art = h.ascii(10);
    EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Rate, Basics)
{
    Rate r;
    EXPECT_EQ(r.value(), 0.0);
    r.record(true);
    r.record(false);
    r.record(true);
    r.record(true);
    EXPECT_DOUBLE_EQ(r.value(), 0.75);
    EXPECT_DOUBLE_EQ(r.percent(), 75.0);
    EXPECT_EQ(r.hits, 3u);
    EXPECT_EQ(r.total, 4u);
}

} // namespace
} // namespace wb
