/**
 * @file
 * Unit tests for address layout and address spaces (sim/address.hh).
 */

#include <gtest/gtest.h>

#include "sim/address.hh"

namespace wb::sim
{
namespace
{

TEST(AddressLayout, IndexAndTag)
{
    AddressLayout layout(64);
    EXPECT_EQ(layout.numSets(), 64u);
    EXPECT_EQ(layout.indexBits(), 6u);
    // Byte address = tag | index | offset.
    const Addr a = (Addr(0x5) << 12) | (13u << 6) | 0x2a;
    EXPECT_EQ(layout.setIndex(a), 13u);
    EXPECT_EQ(layout.tag(a), 0x5u);
}

TEST(AddressLayout, LineAddrDropsOffset)
{
    EXPECT_EQ(AddressLayout::lineAddr(0x1000), 0x40u);
    EXPECT_EQ(AddressLayout::lineAddr(0x103f), 0x40u);
    EXPECT_EQ(AddressLayout::lineAddr(0x1040), 0x41u);
}

/** compose() must invert (setIndex, tag) for any geometry. */
class LayoutRoundtrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(LayoutRoundtrip, ComposeInvertsDecompose)
{
    AddressLayout layout(GetParam());
    for (unsigned set = 0; set < layout.numSets();
         set += std::max(1u, layout.numSets() / 16)) {
        for (Addr tag : {Addr(0), Addr(1), Addr(0x123), Addr(0xffff)}) {
            const Addr a = layout.compose(set, tag);
            EXPECT_EQ(layout.setIndex(a), set);
            EXPECT_EQ(layout.tag(a), tag);
            EXPECT_EQ(a % lineBytes, 0u); // line aligned
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Geometries, LayoutRoundtrip,
                         ::testing::Values(1u, 2u, 16u, 64u, 512u));

TEST(AddressSpace, PrivateSpacesDisjoint)
{
    AddressSpace a(1), b(2);
    for (Addr va : {Addr(0), Addr(0x1000), Addr(0xdeadbeef)})
        EXPECT_NE(a.translate(va), b.translate(va));
}

TEST(AddressSpace, TranslationPreservesLowBits)
{
    AddressSpace a(3);
    const Addr va = 0x12345;
    // Index/offset bits survive translation (VIPT property).
    EXPECT_EQ(a.translate(va) & 0xfff, va & 0xfff);
}

TEST(AddressSpace, SameSpaceIsLinear)
{
    AddressSpace a(1);
    EXPECT_EQ(a.translate(0x2000) - a.translate(0x1000), 0x1000u);
}

TEST(AddressSpace, SharedSegmentsCollide)
{
    AddressSpace a(1), b(2);
    a.mapShared(0x7f000000, 4096, 0x1000);
    b.mapShared(0x40000000, 4096, 0x1000); // different va, same phys
    EXPECT_EQ(a.translate(0x7f000100), b.translate(0x40000100));
    // Outside the segment, still disjoint.
    EXPECT_NE(a.translate(0x7f001000), b.translate(0x40001000));
}

TEST(AddressSpace, SharedDistinctFromPrivate)
{
    AddressSpace a(1);
    a.mapShared(0x7f000000, 4096, 0x1000);
    EXPECT_NE(a.translate(0x7f000000), a.translate(0x1000));
}

} // namespace
} // namespace wb::sim
