/**
 * @file
 * Unit tests for the set-associative cache level (sim/cache.hh):
 * fills, hits, dirty bits, write policies, locking and partitioning.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sim/cache.hh"

namespace wb::sim
{
namespace
{

CacheParams
tinyParams(PolicyKind policy = PolicyKind::TrueLru, unsigned ways = 4)
{
    CacheParams p;
    p.name = "test";
    p.ways = ways;
    p.sizeBytes = static_cast<std::size_t>(ways) * lineBytes; // 1 set
    p.policy = policy;
    return p;
}

Addr
lineAt(unsigned i)
{
    return static_cast<Addr>(i) * lineBytes;
}

TEST(Cache, MissThenHit)
{
    Cache c(tinyParams(), nullptr);
    EXPECT_FALSE(c.probe(lineAt(1), 0).has_value());
    auto out = c.fill(lineAt(1), 0, false);
    EXPECT_TRUE(out.filled);
    EXPECT_FALSE(out.evicted.any);
    auto way = c.probe(lineAt(1), 0);
    ASSERT_TRUE(way.has_value());
    EXPECT_TRUE(c.contains(lineAt(1)));
}

TEST(Cache, OffsetsWithinLineAlias)
{
    Cache c(tinyParams(), nullptr);
    c.fill(lineAt(1), 0, false);
    EXPECT_TRUE(c.probe(lineAt(1) + 63, 0).has_value());
    EXPECT_FALSE(c.probe(lineAt(2), 0).has_value());
}

TEST(Cache, EvictionWhenFull)
{
    Cache c(tinyParams(PolicyKind::TrueLru, 2), nullptr);
    c.fill(lineAt(1), 0, false);
    c.fill(lineAt(2), 0, false);
    auto out = c.fill(lineAt(3), 0, false);
    EXPECT_TRUE(out.filled);
    EXPECT_TRUE(out.evicted.any);
    EXPECT_EQ(out.evicted.lineAddr, AddressLayout::lineAddr(lineAt(1)));
    EXPECT_FALSE(c.contains(lineAt(1)));
    EXPECT_TRUE(c.contains(lineAt(2)));
    EXPECT_TRUE(c.contains(lineAt(3)));
}

TEST(Cache, DirtyBitOnWriteFill)
{
    Cache c(tinyParams(), nullptr);
    c.fill(lineAt(1), 0, /*asDirty=*/true);
    EXPECT_TRUE(c.isDirty(lineAt(1)));
    c.fill(lineAt(2), 0, /*asDirty=*/false);
    EXPECT_FALSE(c.isDirty(lineAt(2)));
}

TEST(Cache, DirtyBitOnWriteHit)
{
    Cache c(tinyParams(), nullptr);
    c.fill(lineAt(1), 0, false);
    auto way = c.probe(lineAt(1), 0);
    ASSERT_TRUE(way);
    c.onHit(lineAt(1), *way, 0, /*isWrite=*/true);
    EXPECT_TRUE(c.isDirty(lineAt(1)));
}

TEST(Cache, WriteThroughNeverDirty)
{
    auto params = tinyParams();
    params.writePolicy = WritePolicy::WriteThrough;
    Cache c(params, nullptr);
    c.fill(lineAt(1), 0, /*asDirty=*/true);
    EXPECT_FALSE(c.isDirty(lineAt(1)));
    auto way = c.probe(lineAt(1), 0);
    c.onHit(lineAt(1), *way, 0, /*isWrite=*/true);
    EXPECT_FALSE(c.isDirty(lineAt(1)));
    EXPECT_EQ(c.dirtyCountInSet(0), 0u);
}

TEST(Cache, DirtyEvictionReported)
{
    Cache c(tinyParams(PolicyKind::TrueLru, 2), nullptr);
    c.fill(lineAt(1), 0, true);
    c.fill(lineAt(2), 0, false);
    auto out = c.fill(lineAt(3), 0, false);
    EXPECT_TRUE(out.evicted.any);
    EXPECT_TRUE(out.evicted.dirty);
}

TEST(Cache, RefillOfResidentLineBecomesHit)
{
    Cache c(tinyParams(), nullptr);
    c.fill(lineAt(1), 0, false);
    auto out = c.fill(lineAt(1), 0, true); // write-back arriving
    EXPECT_TRUE(out.filled);
    EXPECT_FALSE(out.evicted.any);
    EXPECT_TRUE(c.isDirty(lineAt(1)));
    EXPECT_EQ(c.validCountInSet(0), 1u);
}

TEST(Cache, InvalidateReportsDirty)
{
    Cache c(tinyParams(), nullptr);
    c.fill(lineAt(1), 0, true);
    bool wasDirty = false;
    EXPECT_TRUE(c.invalidate(lineAt(1), wasDirty));
    EXPECT_TRUE(wasDirty);
    EXPECT_FALSE(c.contains(lineAt(1)));
    EXPECT_FALSE(c.invalidate(lineAt(1), wasDirty));
}

TEST(Cache, DirtyCountInSet)
{
    Cache c(tinyParams(PolicyKind::TrueLru, 8), nullptr);
    for (unsigned i = 0; i < 5; ++i)
        c.fill(lineAt(i), 0, i < 3);
    EXPECT_EQ(c.dirtyCountInSet(0), 3u);
    EXPECT_EQ(c.validCountInSet(0), 5u);
}

TEST(Cache, LockPreventsEviction)
{
    Cache c(tinyParams(PolicyKind::TrueLru, 2), nullptr);
    c.fill(lineAt(1), 0, true);
    c.fill(lineAt(2), 0, false);
    EXPECT_TRUE(c.lock(lineAt(1)));
    auto out = c.fill(lineAt(3), 0, false);
    EXPECT_TRUE(out.filled);
    EXPECT_TRUE(c.contains(lineAt(1))); // locked line survived
    EXPECT_FALSE(c.contains(lineAt(2)));
}

TEST(Cache, AllLockedBlocksFill)
{
    Cache c(tinyParams(PolicyKind::TrueLru, 2), nullptr);
    c.fill(lineAt(1), 0, true);
    c.fill(lineAt(2), 0, true);
    c.lock(lineAt(1));
    c.lock(lineAt(2));
    auto out = c.fill(lineAt(3), 0, false);
    EXPECT_FALSE(out.filled); // bypass
    EXPECT_FALSE(c.contains(lineAt(3)));
}

TEST(Cache, UnlockRestoresEvictability)
{
    Cache c(tinyParams(PolicyKind::TrueLru, 2), nullptr);
    c.fill(lineAt(1), 0, false);
    c.fill(lineAt(2), 0, false);
    c.lock(lineAt(1));
    c.lock(lineAt(2));
    EXPECT_TRUE(c.unlock(lineAt(1)));
    auto out = c.fill(lineAt(3), 0, false);
    EXPECT_TRUE(out.filled);
    EXPECT_FALSE(c.contains(lineAt(1)));
}

TEST(Cache, UnlockAll)
{
    Cache c(tinyParams(), nullptr);
    c.fill(lineAt(1), 0, false);
    c.lock(lineAt(1));
    c.unlockAll();
    auto lines = c.setContents(0);
    for (const auto &l : lines)
        EXPECT_FALSE(l.locked);
}

TEST(Cache, LockOnWrite)
{
    auto params = tinyParams(PolicyKind::TrueLru, 2);
    params.lockOnWrite = true;
    Cache c(params, nullptr);
    c.fill(lineAt(1), 0, /*asDirty=*/true); // locked on dirty fill
    c.fill(lineAt(2), 0, false);
    auto out = c.fill(lineAt(3), 0, false);
    EXPECT_TRUE(c.contains(lineAt(1)));
    EXPECT_FALSE(c.contains(lineAt(2)));
    (void)out;
}

TEST(Cache, FillPartitioning)
{
    auto params = tinyParams(PolicyKind::TrueLru, 4);
    params.fillMaskPerThread = {0b0011, 0b1100}; // t0: ways 0-1
    Cache c(params, nullptr);
    // Thread 0 fills three lines into its two ways.
    c.fill(lineAt(1), 0, false);
    c.fill(lineAt(2), 0, false);
    c.fill(lineAt(3), 0, false);
    EXPECT_EQ(c.validCountInSet(0), 2u); // capped by partition
    // Thread 1's fill must not evict thread 0's lines.
    auto out = c.fill(lineAt(10), 1, false);
    EXPECT_TRUE(out.filled);
    EXPECT_GE(out.way, 2u);
}

TEST(Cache, ProbeIsolation)
{
    auto params = tinyParams(PolicyKind::TrueLru, 4);
    params.fillMaskPerThread = {0b0011, 0b1100};
    params.probeIsolated = true;
    Cache c(params, nullptr);
    c.fill(lineAt(1), 0, false);
    EXPECT_TRUE(c.probe(lineAt(1), 0).has_value());
    EXPECT_FALSE(c.probe(lineAt(1), 1).has_value()); // DAWG hides it
    EXPECT_TRUE(c.contains(lineAt(1))); // introspection still sees it
}

TEST(Cache, ThreadsBeyondMaskVectorUnrestricted)
{
    auto params = tinyParams(PolicyKind::TrueLru, 4);
    params.fillMaskPerThread = {0b0011, 0b1100};
    Cache c(params, nullptr);
    auto out = c.fill(lineAt(1), /*tid=*/7, false);
    EXPECT_TRUE(out.filled);
}

TEST(Cache, ResetClearsEverything)
{
    Cache c(tinyParams(), nullptr);
    c.fill(lineAt(1), 0, true);
    c.lock(lineAt(1));
    c.reset();
    EXPECT_FALSE(c.contains(lineAt(1)));
    EXPECT_EQ(c.validCountInSet(0), 0u);
}

TEST(Cache, MultiSetIndexing)
{
    CacheParams p;
    p.ways = 2;
    p.sizeBytes = 2 * 4 * lineBytes; // 4 sets x 2 ways
    Cache c(p, nullptr);
    // Lines in different sets never evict each other.
    for (unsigned set = 0; set < 4; ++set) {
        const Addr a = c.layout().compose(set, /*tag=*/1);
        c.fill(a, 0, false);
    }
    for (unsigned set = 0; set < 4; ++set) {
        const Addr a = c.layout().compose(set, 1);
        EXPECT_TRUE(c.contains(a));
        EXPECT_EQ(c.validCountInSet(set), 1u);
    }
}

TEST(Cache, SetContentsSnapshot)
{
    Cache c(tinyParams(), nullptr);
    c.fill(lineAt(3), 2, true);
    auto lines = c.setContents(0);
    unsigned valid = 0;
    for (const auto &l : lines) {
        if (l.valid) {
            ++valid;
            EXPECT_EQ(l.lineAddr, AddressLayout::lineAddr(lineAt(3)));
            EXPECT_TRUE(l.dirty);
            EXPECT_EQ(l.filledBy, 2u);
        }
    }
    EXPECT_EQ(valid, 1u);
}

} // namespace
} // namespace wb::sim
