/**
 * @file
 * Cross-module tests: the Sec. VIII defenses applied to the Sec. IX
 * *side*-channel scenarios (the setting the paper's defense arguments
 * actually target — a victim protecting its secret-dependent writes).
 */

#include <gtest/gtest.h>

#include "sidechan/attack.hh"
#include "stat_assert.hh"

namespace wb::sidechan
{
namespace
{

AttackConfig
base(Scenario s)
{
    AttackConfig cfg;
    cfg.scenario = s;
    cfg.trials = 200;
    cfg.seed = 17;
    return cfg;
}

TEST(SideChanDefense, WriteThroughBlindsScenario1)
{
    // With a write-through L1 the victim's store leaves no dirty bit:
    // the attacker's probe carries no signal.
    auto cfg = base(Scenario::DirtyProbe);
    cfg.platform.l1.writePolicy = sim::WritePolicy::WriteThrough;
    auto res = runAttack(cfg);
    EXPECT_LT(res.accuracy, 0.62); // chance-ish
    EXPECT_NEAR(res.meanLatency1, res.meanLatency0, 3.0);
}

TEST(SideChanDefense, PlCacheProtectsTheVictim)
{
    // PLcache locks written lines: the victim's dirty line cannot be
    // evicted by the attacker's probe, so its write-back never shows.
    // Per-seed accuracy is bimodal (the threshold calibration lands
    // above or below the residual noise), so assert the pooled rate
    // over a seed sweep: it must stay near chance.
    const auto sweep = test::sweepSeeds([](std::uint64_t seed) {
        auto cfg = base(Scenario::DirtyProbe);
        cfg.platform.l1.lockOnWrite = true;
        cfg.seed = seed;
        auto res = runAttack(cfg);
        return test::Proportion{res.accuracy * cfg.trials,
                                double(cfg.trials)};
    });
    EXPECT_ACCURACY_BELOW(sweep, 0.62);
}

TEST(SideChanDefense, UndefendedBaselineStillPerfect)
{
    // Control: without the defense the same configuration is ~100%.
    auto res = runAttack(base(Scenario::DirtyProbe));
    EXPECT_GE(res.accuracy, 0.95);
}

TEST(SideChanDefense, RandomReplacementOnlyDegrades)
{
    // Random replacement adds noise to the probe but the dirty-state
    // signal remains: accuracy stays well above chance.
    auto cfg = base(Scenario::DirtyProbe);
    cfg.platform.l1.policy = sim::PolicyKind::RandomIid;
    cfg.replacementSize = 14;
    auto res = runAttack(cfg);
    EXPECT_GT(res.accuracy, 0.80);
}

TEST(SideChanDefense, Scenario2AlsoBlindedByPlCache)
{
    // Scenario 2 primes with the *attacker's* dirty lines; PLcache
    // locks those too, so the victim's load cannot evict them and the
    // probe reads full-dirty either way... except the locked lines
    // also cannot be replaced by the probe itself: no write-backs at
    // all. Either way: no signal.
    auto cfg = base(Scenario::DirtyPrime);
    cfg.platform.l1.lockOnWrite = true;
    auto res = runAttack(cfg);
    EXPECT_LT(res.accuracy, 0.62);
}

} // namespace
} // namespace wb::sidechan
