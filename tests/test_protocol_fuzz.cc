/**
 * @file
 * Protocol fuzzing: perfect latency streams are corrupted with
 * controlled rates of flips, insertions and deletions; the decoder's
 * reported BER must track the injected corruption (within slack for
 * alignment effects) and never crash, for any corruption mix.
 */

#include <gtest/gtest.h>

#include "chan/protocol.hh"
#include "common/rng.hh"

namespace wb::chan
{
namespace
{

struct FuzzSpec
{
    double flipProb;
    double insertProb;
    double deleteProb;
    std::uint64_t seed;
};

class ProtocolFuzz : public ::testing::TestWithParam<FuzzSpec>
{
};

TEST_P(ProtocolFuzz, BerTracksInjectedCorruption)
{
    const FuzzSpec spec = GetParam();
    Rng rng(spec.seed);
    const unsigned frames = 12;
    const BitVec frame = randomFrame(112, rng);
    const Classifier cls({100.0, 200.0});

    // Perfect stream with a random lead-in.
    std::vector<double> lats(rng.below(40), 100.0);
    for (unsigned f = 0; f < frames; ++f)
        for (bool b : frame)
            lats.push_back(b ? 200.0 : 100.0);

    // Corrupt.
    std::vector<double> fuzzed;
    double injected = 0;
    for (double v : lats) {
        if (rng.chance(spec.deleteProb)) {
            injected += 1;
            continue; // lost sample
        }
        if (rng.chance(spec.insertProb)) {
            fuzzed.push_back(rng.chance(0.5) ? 100.0 : 200.0);
            injected += 1;
        }
        if (rng.chance(spec.flipProb)) {
            fuzzed.push_back(v > 150 ? 100.0 : 200.0);
            injected += 1;
        } else {
            fuzzed.push_back(v);
        }
    }

    auto dec = decodeTransmission(fuzzed, cls, Encoding::binary(1),
                                  frame, frames);
    const double injectedRate = injected / double(lats.size());

    if (injectedRate < 0.02) {
        // Light corruption: decoder must stay aligned and close.
        EXPECT_TRUE(dec.aligned);
        EXPECT_LE(dec.ber, injectedRate * 3 + 0.02);
    }
    // Universal invariants.
    EXPECT_GE(dec.ber, 0.0);
    EXPECT_LE(dec.ber, 1.0);
    EXPECT_LE(dec.framesScored, frames);
    EXPECT_EQ(dec.breakdown.substitutions + dec.breakdown.insertions +
                  dec.breakdown.deletions,
              dec.breakdown.distance);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, ProtocolFuzz,
    ::testing::Values(FuzzSpec{0.0, 0.0, 0.0, 1},
                      FuzzSpec{0.005, 0.0, 0.0, 2},
                      FuzzSpec{0.0, 0.005, 0.0, 3},
                      FuzzSpec{0.0, 0.0, 0.005, 4},
                      FuzzSpec{0.01, 0.002, 0.002, 5},
                      FuzzSpec{0.05, 0.01, 0.01, 6},
                      FuzzSpec{0.15, 0.03, 0.03, 7},
                      FuzzSpec{0.4, 0.1, 0.1, 8},
                      FuzzSpec{0.0, 0.2, 0.0, 9},
                      FuzzSpec{0.0, 0.0, 0.2, 10}));

TEST(ProtocolFuzz, SurvivesPathologicalStreams)
{
    const Classifier cls({100.0, 200.0});
    Rng rng(11);
    const BitVec frame = randomFrame(112, rng);
    // All-high, all-low, alternating, tiny, giant-constant streams.
    std::vector<std::vector<double>> streams = {
        std::vector<double>(500, 200.0),
        std::vector<double>(500, 100.0),
        {},
        {150.0},
        std::vector<double>(5000, 149.9),
    };
    std::vector<double> alt;
    for (int i = 0; i < 600; ++i)
        alt.push_back(i % 2 ? 200.0 : 100.0);
    streams.push_back(alt);
    for (const auto &s : streams) {
        auto dec = decodeTransmission(s, cls, Encoding::binary(1),
                                      frame, 4);
        EXPECT_GE(dec.ber, 0.0);
        EXPECT_LE(dec.ber, 1.0);
    }
}

} // namespace
} // namespace wb::chan
