/**
 * @file
 * Protocol fuzzing: perfect latency streams are corrupted with
 * controlled rates of flips, insertions and deletions; the decoder's
 * reported BER must track the injected corruption (within slack for
 * alignment effects) and never crash, for any corruption mix.
 */

#include <gtest/gtest.h>

#include "chan/protocol.hh"
#include "chan/transport.hh"
#include "common/rng.hh"
#include "stat_assert.hh"

namespace wb::chan
{
namespace
{

struct FuzzSpec
{
    double flipProb;
    double insertProb;
    double deleteProb;
    std::uint64_t seed;
};

class ProtocolFuzz : public ::testing::TestWithParam<FuzzSpec>
{
};

TEST_P(ProtocolFuzz, BerTracksInjectedCorruption)
{
    const FuzzSpec spec = GetParam();
    Rng rng(spec.seed);
    const unsigned frames = 12;
    const BitVec frame = randomFrame(112, rng);
    const Classifier cls({100.0, 200.0});

    // Perfect stream with a random lead-in.
    std::vector<double> lats(rng.below(40), 100.0);
    for (unsigned f = 0; f < frames; ++f)
        for (bool b : frame)
            lats.push_back(b ? 200.0 : 100.0);

    // Corrupt.
    std::vector<double> fuzzed;
    double injected = 0;
    for (double v : lats) {
        if (rng.chance(spec.deleteProb)) {
            injected += 1;
            continue; // lost sample
        }
        if (rng.chance(spec.insertProb)) {
            fuzzed.push_back(rng.chance(0.5) ? 100.0 : 200.0);
            injected += 1;
        }
        if (rng.chance(spec.flipProb)) {
            fuzzed.push_back(v > 150 ? 100.0 : 200.0);
            injected += 1;
        } else {
            fuzzed.push_back(v);
        }
    }

    auto dec = decodeTransmission(fuzzed, cls, Encoding::binary(1),
                                  frame, frames);
    const double injectedRate = injected / double(lats.size());

    if (injectedRate < 0.02) {
        // Light corruption: decoder must stay aligned and close.
        EXPECT_TRUE(dec.aligned);
        EXPECT_LE(dec.ber, injectedRate * 3 + 0.02);
    }
    // Universal invariants.
    EXPECT_GE(dec.ber, 0.0);
    EXPECT_LE(dec.ber, 1.0);
    EXPECT_LE(dec.framesScored, frames);
    EXPECT_EQ(dec.breakdown.substitutions + dec.breakdown.insertions +
                  dec.breakdown.deletions,
              dec.breakdown.distance);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, ProtocolFuzz,
    ::testing::Values(FuzzSpec{0.0, 0.0, 0.0, 1},
                      FuzzSpec{0.005, 0.0, 0.0, 2},
                      FuzzSpec{0.0, 0.005, 0.0, 3},
                      FuzzSpec{0.0, 0.0, 0.005, 4},
                      FuzzSpec{0.01, 0.002, 0.002, 5},
                      FuzzSpec{0.05, 0.01, 0.01, 6},
                      FuzzSpec{0.15, 0.03, 0.03, 7},
                      FuzzSpec{0.4, 0.1, 0.1, 8},
                      FuzzSpec{0.0, 0.2, 0.0, 9},
                      FuzzSpec{0.0, 0.0, 0.2, 10}));

TEST(ProtocolFuzz, SurvivesPathologicalStreams)
{
    const Classifier cls({100.0, 200.0});
    Rng rng(11);
    const BitVec frame = randomFrame(112, rng);
    // All-high, all-low, alternating, tiny, giant-constant streams.
    std::vector<std::vector<double>> streams = {
        std::vector<double>(500, 200.0),
        std::vector<double>(500, 100.0),
        {},
        {150.0},
        std::vector<double>(5000, 149.9),
    };
    std::vector<double> alt;
    for (int i = 0; i < 600; ++i)
        alt.push_back(i % 2 ? 200.0 : 100.0);
    streams.push_back(alt);
    for (const auto &s : streams) {
        auto dec = decodeTransmission(s, cls, Encoding::binary(1),
                                      frame, 4);
        EXPECT_GE(dec.ber, 0.0);
        EXPECT_LE(dec.ber, 1.0);
    }
}

// ------------------------------------------ transport-layer fuzzing
//
// The transport session is driven through a synthetic link that
// applies every corruption class the OS-noise scheduler produces in
// the real platform — bit flips, spurious insertions, dropped bits,
// gang freezes (a contiguous span of the burst vanishes while both
// parties are descheduled) and migrations (a freeze plus a permanent
// phase slip from the re-warmed receiver) — at rates far beyond the
// design point. The claims are bounded-resource claims: the session
// always terminates within its round cap, never exceeds the per-chunk
// retry budget, and never hands over a payload that fails its CRC;
// and pooled over >= 16 seeds per mix (Wilson, z = 2.576), light
// corruption still delivers while pure noise still fails honestly.

struct TransportFuzzSpec
{
    const char *name;
    double flipProb;
    double insertProb;
    double dropProb;
    unsigned freezes;      //!< gang freezes injected per burst
    std::size_t freezeSpan; //!< bits each freeze swallows
    double slipProb;       //!< migration: freeze + lasting phase slip
};

/** Apply the spec's corruption model to one burst. */
BitVec
corruptBurst(const BitVec &stream, const TransportFuzzSpec &spec,
             Rng &rng)
{
    BitVec bits;
    bits.reserve(stream.size());
    for (bool b : stream) {
        if (rng.chance(spec.dropProb))
            continue;
        if (rng.chance(spec.insertProb))
            bits.push_back(rng.flip());
        bits.push_back(rng.chance(spec.flipProb) ? !b : b);
    }
    for (unsigned f = 0; f < spec.freezes; ++f) {
        if (bits.size() <= spec.freezeSpan)
            break;
        const std::size_t at = rng.below(bits.size() - spec.freezeSpan);
        bits.erase(bits.begin() + static_cast<std::ptrdiff_t>(at),
                   bits.begin() +
                       static_cast<std::ptrdiff_t>(at + spec.freezeSpan));
    }
    if (rng.chance(spec.slipProb) && bits.size() > 100) {
        // Migration: everything after a random point arrives late by
        // a burst of junk bits (cold caches re-warming) on top of a
        // swallowed span.
        const std::size_t at = rng.below(bits.size() / 2);
        BitVec junk;
        for (int i = 0; i < 37; ++i)
            junk.push_back(rng.flip());
        bits.insert(bits.begin() + static_cast<std::ptrdiff_t>(at),
                    junk.begin(), junk.end());
    }
    return bits;
}

TransportConfig
fuzzTransport()
{
    TransportConfig cfg;
    cfg.enabled = true;
    cfg.layout.seqBits = 4;
    cfg.layout.payloadBits = 24;
    cfg.layout.crcWidth = 16; // fuzz streams are CRC-check heavy
    cfg.layout.interleaveDepth = 2;
    cfg.guardBits = 8;
    cfg.messageFrames = 5;
    cfg.windowFrames = 4;
    cfg.maxRetries = 4;
    cfg.maxRounds = 12;
    return cfg;
}

class TransportFuzz : public ::testing::TestWithParam<TransportFuzzSpec>
{
};

TEST_P(TransportFuzz, BoundedAndHonestUnderEveryMix)
{
    const TransportFuzzSpec spec = GetParam();
    const TransportConfig cfg = fuzzTransport();
    ProtocolConfig proto;

    const auto sweep = test::sweepSeeds([&](std::uint64_t seed) {
        Rng msgRng(seed ^ 0xabcdULL);
        BitVec msg;
        for (unsigned i = 0;
             i < cfg.messageFrames * cfg.layout.payloadBits; ++i)
            msg.push_back(msgRng.flip());

        const TransportLink link = [&spec](const BitVec &stream,
                                           const RateStep &rate,
                                           std::uint64_t linkSeed) {
            Rng rng(linkSeed);
            LinkRun run;
            run.bits = corruptBurst(stream, spec, rng);
            run.simulatedCycles = stream.size() * rate.ts;
            return run;
        };
        const TransportResult res =
            runTransportSession(cfg, proto, msg, link, seed);

        // Bounded resources, whatever the corruption did.
        EXPECT_LE(res.rounds, cfg.maxRounds);
        EXPECT_LE(res.framesSent,
                  std::uint64_t(res.framesTotal) * (cfg.maxRetries + 1));
        EXPECT_EQ(res.framesDelivered + res.framesFailed,
                  res.framesTotal);
        // Honesty: every delivered payload was CRC-validated.
        EXPECT_EQ(res.residualBitErrors, 0u);
        return test::Proportion{double(res.framesDelivered),
                                double(res.framesTotal)};
    });

    const bool light = spec.flipProb <= 0.01 && spec.insertProb <= 0.01 &&
                       spec.dropProb <= 0.01 && spec.freezes <= 1;
    if (light) {
        // Light corruption: the ARQ must push most frames through.
        EXPECT_ACCURACY_ABOVE(sweep, 0.5);
    }
    if (spec.flipProb >= 0.45) {
        // Pure noise: deliveries must stay rare — a transport that
        // "delivers" from garbage is lying about validation.
        EXPECT_ACCURACY_BELOW(sweep, 0.1);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, TransportFuzz,
    ::testing::Values(
        TransportFuzzSpec{"clean", 0.0, 0.0, 0.0, 0, 0, 0.0},
        TransportFuzzSpec{"flips", 0.01, 0.0, 0.0, 0, 0, 0.0},
        TransportFuzzSpec{"inserts", 0.0, 0.01, 0.0, 0, 0, 0.0},
        TransportFuzzSpec{"drops", 0.0, 0.0, 0.01, 0, 0, 0.0},
        TransportFuzzSpec{"one-freeze", 0.002, 0.0, 0.0, 1, 50, 0.0},
        TransportFuzzSpec{"gang-freezes", 0.005, 0.001, 0.001, 3, 80,
                          0.0},
        TransportFuzzSpec{"migrations", 0.005, 0.001, 0.001, 1, 60,
                          0.5},
        TransportFuzzSpec{"everything", 0.03, 0.01, 0.01, 2, 70, 0.3},
        TransportFuzzSpec{"pure-noise", 0.5, 0.05, 0.05, 2, 100, 0.5}),
    [](const ::testing::TestParamInfo<TransportFuzzSpec> &info) {
        std::string name = info.param.name;
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace wb::chan
