/**
 * @file
 * sim::SweepRunner: deterministic fan-out of shared-nothing sweep
 * cells over a thread pool.
 *
 * The determinism contract is the point: results are delivered by
 * index, so any consumer that assembles output in index (or sorted
 * cell-key) order gets *byte-identical* artifacts at every thread
 * count. The BytesIdenticalAcrossThreadCounts test runs a real
 * platform x rate sweep through 1 and 4 workers and compares the
 * serialized output strings for equality, which is the same property
 * the `-j`-flagged sweep examples and CI artifacts rely on.
 */

#include <atomic>
#include <cstdint>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "chan/channel.hh"
#include "sim/sweep_runner.hh"

namespace wb::sim
{
namespace
{

TEST(SweepRunner, RunsEveryIndexExactlyOnce)
{
    SweepRunner pool(4);
    std::vector<std::atomic<unsigned>> hits(257);
    pool.run(hits.size(),
             [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(SweepRunner, MapDeliversResultsByIndex)
{
    SweepRunner pool(4);
    const auto out = pool.map<std::size_t>(
        100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(SweepRunner, ZeroThreadsPicksHardwareConcurrency)
{
    SweepRunner pool(0);
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    EXPECT_EQ(pool.threads(), hw);
    EXPECT_GE(pool.threads(), 1u);
}

TEST(SweepRunner, EmptyAndSingleJobAreServedInline)
{
    SweepRunner pool(8);
    pool.run(0, [](std::size_t) { FAIL() << "no jobs to run"; });

    const auto caller = std::this_thread::get_id();
    pool.run(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST(SweepRunner, FirstExceptionPropagatesToCaller)
{
    SweepRunner pool(4);
    std::atomic<unsigned> started{0};
    try {
        pool.run(1000, [&](std::size_t i) {
            started.fetch_add(1);
            if (i == 3)
                throw std::runtime_error("cell 3 exploded");
        });
        FAIL() << "expected the worker exception to be rethrown";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "cell 3 exploded");
    }
    // The throw drains the work-list: most cells never started.
    EXPECT_LT(started.load(), 1000u);
}

/** Serialize one sweep cell the way the example sweeps do. */
std::string
cellLine(const std::string &platform, unsigned ts, std::uint64_t seed)
{
    chan::ChannelConfig cfg;
    cfg.usePlatform(platform);
    cfg.protocol.ts = cfg.protocol.tr = ts;
    cfg.protocol.frames = 1;
    cfg.seed = seed;
    const auto res = chan::runChannel(cfg);
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(6);
    os << platform << "/ts" << ts << "/s" << seed << " ber=" << res.ber
       << " rate=" << res.rateKbps << " cycles=" << res.simulatedCycles;
    return os.str();
}

TEST(SweepRunner, BytesIdenticalAcrossThreadCounts)
{
    // A real (platform x rate x seed) work-list, assembled in index
    // order: 1 worker and 4 workers must serialize identically.
    struct Cell
    {
        std::string platform;
        unsigned ts;
        std::uint64_t seed;
    };
    std::vector<Cell> cells;
    for (const char *platform : {"xeonE5-2650", "cortexA53-wt"})
        for (unsigned ts : {2000u, 6000u})
            for (std::uint64_t seed = 1; seed <= 2; ++seed)
                cells.push_back({platform, ts, seed});

    const auto render = [&](unsigned threads) {
        SweepRunner pool(threads);
        const auto lines = pool.map<std::string>(
            cells.size(), [&](std::size_t i) {
                const Cell &c = cells[i];
                return cellLine(c.platform, c.ts, c.seed);
            });
        std::string out;
        for (const auto &line : lines) {
            out += line;
            out += '\n';
        }
        return out;
    };

    const std::string serial = render(1);
    const std::string parallel = render(4);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

} // namespace
} // namespace wb::sim
