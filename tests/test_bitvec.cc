/**
 * @file
 * Unit tests for bit-sequence helpers (common/bitvec.hh).
 */

#include <gtest/gtest.h>

#include "common/bitvec.hh"
#include "common/rng.hh"

namespace wb
{
namespace
{

TEST(BitVec, Preamble)
{
    const BitVec p = preamble16();
    ASSERT_EQ(p.size(), 16u);
    EXPECT_EQ(toUint(p), 0xA5C3u);
}

TEST(BitVec, StringRoundtrip)
{
    const std::string msg = "WB channel!";
    EXPECT_EQ(toString(fromString(msg)), msg);
}

TEST(BitVec, StringPartialByteDropped)
{
    BitVec b = fromString("A");
    b.push_back(true); // 9 bits: trailing partial byte ignored
    EXPECT_EQ(toString(b), "A");
}

TEST(BitVec, UintRoundtrip)
{
    for (std::uint64_t v : {0ull, 1ull, 0xdeadull, 0xffffull}) {
        EXPECT_EQ(toUint(fromUint(v, 16)), v & 0xffff);
    }
    EXPECT_EQ(fromUint(0b101, 3), fromBitString("101"));
}

TEST(BitVec, BitStringRoundtrip)
{
    const std::string s = "1010011100101";
    EXPECT_EQ(toBitString(fromBitString(s)), s);
}

TEST(BitVec, BitStringSkipsJunk)
{
    EXPECT_EQ(fromBitString("1 0 x1"), fromBitString("101"));
}

TEST(BitVec, RandomBitsLengthAndVariety)
{
    Rng rng(3);
    const BitVec b = randomBits(256, rng);
    ASSERT_EQ(b.size(), 256u);
    int ones = 0;
    for (bool bit : b)
        ones += bit;
    EXPECT_GT(ones, 80);
    EXPECT_LT(ones, 176);
}

TEST(BitVec, RandomFrameLayout)
{
    Rng rng(5);
    const BitVec f = randomFrame(112, rng);
    ASSERT_EQ(f.size(), 128u);
    const BitVec head(f.begin(), f.begin() + 16);
    EXPECT_EQ(head, preamble16());
}

TEST(Align, ExactMatch)
{
    Rng rng(7);
    BitVec hay = randomBits(40, rng);
    const BitVec pat = preamble16();
    hay.insert(hay.begin() + 23, pat.begin(), pat.end());
    // Search tolerating zero errors: must find offset 23 or an
    // accidental earlier match; verify the found slice matches.
    auto off = alignByPattern(hay, pat, 0);
    ASSERT_TRUE(off.has_value());
    for (std::size_t i = 0; i < pat.size(); ++i)
        EXPECT_EQ(hay[*off + i], pat[i]);
}

TEST(Align, ToleratesErrors)
{
    Rng rng(9);
    BitVec hay(30, false);
    BitVec pat = preamble16();
    BitVec corrupted = pat;
    corrupted[3] = !corrupted[3];
    corrupted[11] = !corrupted[11];
    hay.insert(hay.begin() + 7, corrupted.begin(), corrupted.end());
    EXPECT_FALSE(alignByPattern(hay, pat, 1).has_value());
    auto off = alignByPattern(hay, pat, 2);
    ASSERT_TRUE(off.has_value());
    EXPECT_EQ(*off, 7u);
}

TEST(Align, NoMatch)
{
    const BitVec hay(64, false); // all zeros can't hold 0xA5C3 +-2
    EXPECT_FALSE(alignByPattern(hay, preamble16(), 2).has_value());
}

TEST(Align, HaystackTooShort)
{
    const BitVec hay(8, true);
    EXPECT_FALSE(alignByPattern(hay, preamble16(), 16).has_value());
}

TEST(Align, PrefersBestOffset)
{
    // Pattern 1111; haystack has a 1-error match at 0 and an exact
    // match at 6 — the exact one wins.
    const BitVec hay = fromBitString("111000111100");
    auto off = alignByPattern(hay, fromBitString("1111"), 1);
    ASSERT_TRUE(off.has_value());
    EXPECT_EQ(*off, 6u);
}

} // namespace
} // namespace wb
