/**
 * @file
 * Tests for the Table II / Table V eviction experiments
 * (sim/eviction_probe.hh): true-LRU and Tree-PLRU sweep guarantees and
 * the random-replacement eviction-probability formula.
 */

#include <gtest/gtest.h>

#include "sim/eviction_probe.hh"

namespace wb::sim
{
namespace
{

TEST(IidFormula, PaperValues)
{
    // Sec. VI-A: p ~= 99.1% for W=8, d=3, L=10.
    EXPECT_NEAR(iidEvictionProbability(8, 3, 10), 0.991, 0.001);
    // Degenerate cases.
    EXPECT_DOUBLE_EQ(iidEvictionProbability(8, 8, 1), 1.0);
    EXPECT_DOUBLE_EQ(iidEvictionProbability(8, 1, 0), 0.0);
}

TEST(IidFormula, MonotoneInDAndL)
{
    for (unsigned d = 1; d < 8; ++d)
        EXPECT_LT(iidEvictionProbability(8, d, 8),
                  iidEvictionProbability(8, d + 1, 8));
    for (unsigned L = 1; L < 16; ++L)
        EXPECT_LT(iidEvictionProbability(8, 2, L),
                  iidEvictionProbability(8, 2, L + 1));
}

TEST(EvictionProbe, TrueLruGuaranteesAtW)
{
    // Paper Table II row 1: with true LRU, a replacement set of size
    // W always evicts the target line.
    Rng rng(1);
    EvictionProbeConfig cfg;
    cfg.policy = PolicyKind::TrueLru;
    cfg.replacementSize = 8;
    auto res = runEvictionProbe(cfg, 500, rng);
    EXPECT_DOUBLE_EQ(res.probTargetEvicted, 1.0);
}

TEST(EvictionProbe, TrueLruCanFailBelowW)
{
    Rng rng(2);
    EvictionProbeConfig cfg;
    cfg.policy = PolicyKind::TrueLru;
    cfg.replacementSize = 7;
    auto res = runEvictionProbe(cfg, 500, rng);
    EXPECT_LT(res.probTargetEvicted, 0.01); // line 0 is MRU: survives
}

TEST(EvictionProbe, TreePlruSweepIsExactAtW)
{
    // An idealized Tree-PLRU in a clean environment always turns the
    // whole set over with exactly W consecutive misses (the victim
    // pointer alternates subtrees and visits each leaf once). The
    // paper's gem5 figure of 94.3% at N=8 reflects gem5 run details;
    // with measurement interference our model lands below 100% too
    // (CommercialLikeShape below). Full turnover at W is this
    // implementation's pinned behaviour.
    Rng rng(3);
    EvictionProbeConfig cfg;
    cfg.policy = PolicyKind::TreePlru;
    cfg.replacementSize = 8;
    auto at8 = runEvictionProbe(cfg, 2000, rng);
    EXPECT_DOUBLE_EQ(at8.probTargetEvicted, 1.0);

    // The most recently touched line is the cycle's last victim, so a
    // 7-line sweep never reaches it.
    cfg.replacementSize = 7;
    auto at7 = runEvictionProbe(cfg, 2000, rng);
    EXPECT_LT(at7.probTargetEvicted, 0.01);
}

TEST(EvictionProbe, InterferenceLowersTreePlruReliability)
{
    // With bounded measurement interference (extraneous same-set
    // traffic), Tree-PLRU turnover at N=8 drops below certainty and
    // recovers as N grows — the Table II "needs N=10" effect.
    Rng rng(4);
    EvictionProbeConfig cfg;
    cfg.policy = PolicyKind::TreePlru;
    cfg.interferenceProb = 0.4;
    cfg.interferenceMax = 3;

    cfg.replacementSize = 8;
    auto at8 = runEvictionProbe(cfg, 3000, rng);
    cfg.replacementSize = 10;
    auto at10 = runEvictionProbe(cfg, 3000, rng);
    cfg.replacementSize = 12;
    auto at12 = runEvictionProbe(cfg, 3000, rng);

    EXPECT_LT(at8.probTargetEvicted, 0.97);
    EXPECT_GT(at10.probTargetEvicted, at8.probTargetEvicted);
    EXPECT_GE(at12.probTargetEvicted, 0.99);
}

TEST(EvictionProbe, CommercialLikeShape)
{
    // Paper Table II row 3 (Intel Xeon E5-2650: 68.8 / 81.7 / 100 at
    // N=8/9/10): the noisy-PLRU stand-in reproduces the sub-certain
    // band at N=8..9 and the monotone rise; it saturates more slowly
    // than the real part (documented in EXPERIMENTS.md).
    Rng rng(5);
    EvictionProbeConfig cfg;
    cfg.policy = PolicyKind::QuadAgeLru;

    cfg.replacementSize = 8;
    auto at8 = runEvictionProbe(cfg, 3000, rng);
    cfg.replacementSize = 9;
    auto at9 = runEvictionProbe(cfg, 3000, rng);
    cfg.replacementSize = 12;
    auto at12 = runEvictionProbe(cfg, 3000, rng);

    EXPECT_GT(at8.probTargetEvicted, 0.50);
    EXPECT_LT(at8.probTargetEvicted, 0.78);
    EXPECT_GT(at9.probTargetEvicted, at8.probTargetEvicted);
    EXPECT_GT(at12.probTargetEvicted, 0.82);
}

TEST(EvictionProbe, DirtyLinesTracked)
{
    Rng rng(5);
    EvictionProbeConfig cfg;
    cfg.policy = PolicyKind::TrueLru;
    cfg.dirtyLines = 3;
    cfg.replacementSize = 8;
    auto res = runEvictionProbe(cfg, 200, rng);
    // True LRU with L = W replaces everything.
    EXPECT_DOUBLE_EQ(res.probAnyDirtyEvicted, 1.0);
    EXPECT_DOUBLE_EQ(res.probAllDirtyEvicted, 1.0);
}

/** Table V property: the IID simulation matches the formula. */
class RandomEviction
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(RandomEviction, IidSimulationMatchesFormula)
{
    const auto [d, L] = GetParam();
    Rng rng(100 + d * 16 + L);
    EvictionProbeConfig cfg;
    cfg.policy = PolicyKind::RandomIid;
    cfg.dirtyLines = d;
    cfg.replacementSize = L;
    auto res = runEvictionProbe(cfg, 4000, rng);
    const double expected = iidEvictionProbability(8, d, L);
    EXPECT_NEAR(res.probAnyDirtyEvicted, expected, 0.035);
}

INSTANTIATE_TEST_SUITE_P(
    TableV, RandomEviction,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(8u, 9u, 10u, 11u, 12u, 13u)));

TEST(EvictionProbe, LfsrIsBiasedButUsable)
{
    // The LFSR pseudo-random policy is correlated with the access
    // stream; it still evicts dirty lines with high probability at
    // the paper's recommended d=3, L=12 operating point.
    Rng rng(6);
    EvictionProbeConfig cfg;
    cfg.policy = PolicyKind::LfsrRandom;
    cfg.dirtyLines = 3;
    cfg.replacementSize = 12;
    auto res = runEvictionProbe(cfg, 2000, rng);
    EXPECT_GT(res.probAnyDirtyEvicted, 0.85);
}

TEST(EvictionProbe, RejectsBadConfig)
{
    Rng rng(7);
    EvictionProbeConfig cfg;
    cfg.dirtyLines = 0;
    EXPECT_EXIT((void)runEvictionProbe(cfg, 1, rng),
                ::testing::ExitedWithCode(1), "dirtyLines");
}

} // namespace
} // namespace wb::sim
