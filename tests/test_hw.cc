/**
 * @file
 * Tests for the real-hardware port (hw/). Timing-dependent assertions
 * are deliberately weak: shared CI machines and non-SMT containers
 * cannot guarantee clean signals, so these tests pin the API contract
 * and basic monotonicity only. The hardware numbers belong to the
 * examples, not the test suite.
 */

#include <gtest/gtest.h>

#include "hw/channel_hw.hh"
#include "hw/latency_probe.hh"
#include "hw/tsc_hw.hh"

namespace wb::hw
{
namespace
{

TEST(HwTsc, AvailabilityConsistent)
{
#if defined(__x86_64__)
    EXPECT_TRUE(available());
#else
    EXPECT_FALSE(available());
#endif
}

TEST(HwTsc, MonotoneWhenAvailable)
{
    if (!available())
        GTEST_SKIP() << "non-x86 build";
    const auto a = rdtscp();
    const auto b = rdtscp();
    EXPECT_GE(b, a);
    const auto c = fencedTsc();
    EXPECT_GT(c, 0u);
}

TEST(HwProbe, UnsupportedIsGraceful)
{
    if (available())
        GTEST_SKIP() << "covered by the supported-path test";
    ProbeConfig cfg;
    auto res = runLatencyProbe(cfg);
    EXPECT_FALSE(res.supported);
}

TEST(HwProbe, ProducesSamples)
{
    if (!available())
        GTEST_SKIP() << "non-x86 build";
    ProbeConfig cfg;
    cfg.measurements = 50; // keep the test fast
    auto res = runLatencyProbe(cfg);
    ASSERT_TRUE(res.supported);
    EXPECT_EQ(res.l1Hit.count(), 50u);
    for (unsigned d = 0; d <= 8; ++d)
        EXPECT_EQ(res.chaseByDirty[d].count(), 50u);
    // No latency-ordering assertions here: shared/virtualized hosts
    // have unstable TSC-vs-core-clock ratios. The hardware numbers
    // are reported by examples/hw_latency_probe instead.
    EXPECT_GT(res.chaseByDirty[0].median(), 0.0);
}

TEST(HwChannel, SiblingParserHandlesMissing)
{
    // CPU id far beyond anything present: parser must return -1.
    EXPECT_EQ(siblingOf(100000), -1);
}

TEST(HwChannel, RunsOrDeclinesGracefully)
{
    HwChannelConfig cfg;
    cfg.tsCycles = 20000;
    std::vector<bool> bits;
    for (int i = 0; i < 64; ++i)
        bits.push_back(i % 3 == 0);
    auto res = runHwChannel(cfg, bits);
    if (!res.supported)
        GTEST_SKIP() << "hardware channel unavailable: " << res.note;
    EXPECT_EQ(res.latencies.size(), bits.size() + 16);
    EXPECT_GE(res.ber, 0.0);
    EXPECT_LE(res.ber, 1.0);
    EXPECT_GT(res.threshold, 0.0);
}

TEST(HwChannel, EmptyBitsRejected)
{
    HwChannelConfig cfg;
    auto res = runHwChannel(cfg, {});
    EXPECT_FALSE(res.supported);
}

} // namespace
} // namespace wb::hw
