/**
 * @file
 * Platform registry tests (sim/platform.hh): preset lookup, the
 * behavioral contract of each shipped scenario, runtime registration,
 * and the config-struct plumbing that selects a platform by string.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "chan/channel.hh"
#include "common/rng.hh"
#include "sidechan/attack.hh"
#include "sim/hierarchy.hh"
#include "sim/multicore.hh"
#include "sim/platform.hh"

namespace wb::sim
{
namespace
{

TEST(Platform, ShipsTheDocumentedPresets)
{
    const auto names = platformNames();
    ASSERT_GE(names.size(), 9u);
    for (const char *expected :
         {"xeonE5-2650", "cortexA53-wt", "desktop-inclusive",
          "xeonE5-2650-dawg", "xeonE5-2650-2core",
          "desktop-inclusive-4core", "dc-sliced-16core",
          "dc-sliced-32core", "dc-sliced-64core"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected;
    }
    EXPECT_EQ(names.front(), kDefaultPlatform);
}

TEST(Platform, MultiCorePresetsDeclareTheirTopology)
{
    EXPECT_EQ(platform(kDefaultPlatform).cores, 1u);
    const Platform &xeon2 = platform("xeonE5-2650-2core");
    EXPECT_EQ(xeon2.cores, 2u);
    EXPECT_FALSE(xeon2.params.inclusiveLlc); // the Xeon stays exclusive
    const Platform &desk4 = platform("desktop-inclusive-4core");
    EXPECT_EQ(desk4.cores, 4u);
    EXPECT_TRUE(desk4.params.inclusiveLlc);
}

TEST(Platform, DcSlicedPresetsDeclareSlicedTopology)
{
    const struct
    {
        const char *name;
        unsigned cores;
    } presets[] = {{"dc-sliced-16core", 16},
                   {"dc-sliced-32core", 32},
                   {"dc-sliced-64core", 64}};
    for (const auto &spec : presets) {
        const Platform &p = platform(spec.name);
        EXPECT_EQ(p.cores, spec.cores) << spec.name;
        EXPECT_EQ(p.params.llcSlices, 8u) << spec.name;
        EXPECT_TRUE(p.params.inclusiveLlc) << spec.name;
        // The sliced presets must be standable as MultiCoreSystems —
        // the sweep-skip helper should have nothing to complain about.
        EXPECT_EQ(multiCoreIncapableReason(p.params), nullptr)
            << spec.name;
        // Aggregate sets divide evenly over the eight slices.
        EXPECT_EQ(p.params.llc.numSets() % p.params.llcSlices, 0u)
            << spec.name;
    }
}

TEST(Platform, DefaultIsThePaperXeon)
{
    const Platform &p = platform(kDefaultPlatform);
    EXPECT_EQ(p.params.l1.numSets(), 64u); // Table III
    EXPECT_EQ(p.params.l1.ways, 8u);
    EXPECT_EQ(p.params.lat.l1Hit, 4u); // Table IV
    EXPECT_EQ(p.params.lat.l2Hit, 10u);
    EXPECT_FALSE(p.params.inclusiveLlc);
    EXPECT_FALSE(p.description.empty());
}

TEST(Platform, LookupIsFatalOnUnknownName)
{
    EXPECT_EQ(findPlatform("no-such-machine"), nullptr);
    EXPECT_EXIT((void)platform("no-such-machine"),
                ::testing::ExitedWithCode(1), "unknown platform");
}

TEST(Platform, ArmWriteThroughNeverDirtiesL1)
{
    const Platform &p = platform("cortexA53-wt");
    EXPECT_EQ(p.params.l1.writePolicy, WritePolicy::WriteThrough);
    Rng rng(1);
    Hierarchy h(p.params, &rng);
    const Addr a = h.l1().layout().compose(3, 1);
    h.access(0, a, true); // store miss
    h.access(0, a, true); // possibly a store hit
    EXPECT_FALSE(h.l1().isDirty(a));
    // The store data reached L2 (write-through traffic).
    EXPECT_TRUE(h.l2().contains(a));
}

TEST(Platform, DawgVariantPartitionsAndIsolatesL1)
{
    const Platform &p = platform("xeonE5-2650-dawg");
    ASSERT_EQ(p.params.l1.fillMaskPerThread.size(), 2u);
    EXPECT_EQ(p.params.l1.fillMaskPerThread[0] &
                  p.params.l1.fillMaskPerThread[1],
              0u); // disjoint halves
    EXPECT_TRUE(p.params.l1.probeIsolated);

    Hierarchy h(p.params, nullptr);
    const Addr a = h.l1().layout().compose(5, 1);
    h.access(0, a, false);
    // Thread 1 cannot see thread 0's line (probe isolation): its own
    // access misses L1 even though the line is resident.
    const auto res = h.access(1, a, false);
    EXPECT_FALSE(res.l1Hit);
}

TEST(Platform, InclusiveLlcBackInvalidatesUpperLevels)
{
    // Shrink the LLC to one set per line group so an eviction is easy
    // to force, keeping the inclusive flag from the preset.
    HierarchyParams hp = platform("desktop-inclusive").params;
    ASSERT_TRUE(hp.inclusiveLlc);
    hp.lat.noiseSigma = 0.0;
    hp.llc.sizeBytes = hp.llc.ways * lineBytes; // a single LLC set
    Hierarchy h(hp, nullptr);

    const auto &layout = h.l1().layout();
    // Fill the (single) LLC set beyond capacity; every line also maps
    // to L1/L2. The first line must eventually be back-invalidated
    // from every level when the LLC evicts it.
    const Addr first = layout.compose(0, 1);
    h.access(0, first, false);
    ASSERT_TRUE(h.llc().contains(first));
    // 2W further distinct fills guarantee the untouched first line is
    // chosen by tree-PLRU eventually. Each maps to its own L2 set, so
    // only back-invalidation can remove `first` from L2.
    for (Addr t = 2; t <= 2 * hp.llc.ways + 1; ++t)
        h.access(0, layout.compose(0, t), false);
    EXPECT_FALSE(h.llc().contains(first));
    EXPECT_FALSE(h.l2().contains(first)) << "no back-invalidation";
    EXPECT_FALSE(h.l1().contains(first)) << "no back-invalidation";
}

TEST(Platform, RegisterPlatformAddsAndReplaces)
{
    Platform custom;
    custom.name = "test-custom";
    custom.description = "registered at runtime";
    custom.params = platform(kDefaultPlatform).params;
    custom.params.l1.ways = 4;
    registerPlatform(custom);
    ASSERT_NE(findPlatform("test-custom"), nullptr);
    EXPECT_EQ(platform("test-custom").params.l1.ways, 4u);

    custom.params.l1.ways = 2;
    registerPlatform(custom); // replace in place
    EXPECT_EQ(platform("test-custom").params.l1.ways, 2u);

    const auto names = platformNames();
    EXPECT_EQ(std::count(names.begin(), names.end(), "test-custom"), 1);
}

TEST(Platform, ChannelConfigUsePlatformResolvesParamsAndNoise)
{
    chan::ChannelConfig cfg;
    cfg.usePlatform("cortexA53-wt");
    EXPECT_EQ(cfg.platformName, "cortexA53-wt");
    EXPECT_EQ(cfg.platform.l1.writePolicy, WritePolicy::WriteThrough);
    EXPECT_EQ(cfg.noise.tscGranularity,
              platform("cortexA53-wt").noise.tscGranularity);
}

TEST(Platform, AttackConfigUsePlatformResolves)
{
    sidechan::AttackConfig cfg;
    cfg.usePlatform("desktop-inclusive");
    EXPECT_EQ(cfg.platformName, "desktop-inclusive");
    EXPECT_TRUE(cfg.platform.inclusiveLlc);
}

TEST(Platform, UsePlatformIsFatalOnUnknownName)
{
    chan::ChannelConfig cfg;
    EXPECT_EXIT(cfg.usePlatform("bogus"), ::testing::ExitedWithCode(1),
                "unknown platform");
}

} // namespace
} // namespace wb::sim
