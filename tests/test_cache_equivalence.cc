/**
 * @file
 * Randomized equivalence suite for the flat structure-of-arrays Cache
 * against the seed-semantics RefCache (nested vectors + one virtual
 * policy object per set).
 *
 * For every PolicyKind × write-policy × partitioning/locking scenario
 * it replays a long mixed stream of probe / hit / fill / invalidate /
 * lock / unlock / reset operations through both models — each with its
 * own identically seeded Rng, so the stochastic policies' draw
 * sequences must also line up — and asserts bit-identical hit / miss /
 * evict / dirty behavior at every step, plus periodic full-state
 * comparisons. Across the whole parameter grid roughly 100k operations
 * are replayed.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "common/rng.hh"
#include "sim/cache.hh"
#include "sim/ref_cache.hh"

namespace wb::sim
{
namespace
{

/** Partitioning / locking scenarios the paper's defenses induce. */
enum class Scenario
{
    None,    //!< no partitioning, no locking
    NoMo,    //!< fill partitioning with a shared overlap way
    Dawg,    //!< disjoint halves, probes isolated too
    PlCache, //!< lock-on-write
};

const char *
scenarioName(Scenario s)
{
    switch (s) {
      case Scenario::None:
        return "none";
      case Scenario::NoMo:
        return "NoMo";
      case Scenario::Dawg:
        return "DAWG";
      case Scenario::PlCache:
        return "PLcache";
    }
    return "?";
}

CacheParams
paramsFor(PolicyKind policy, WritePolicy wp, Scenario scenario,
          unsigned ways, unsigned sets)
{
    CacheParams p;
    p.name = "equiv";
    p.ways = ways;
    p.sizeBytes = std::size_t(ways) * sets * lineBytes;
    p.policy = policy;
    p.writePolicy = wp;
    switch (scenario) {
      case Scenario::None:
        break;
      case Scenario::NoMo: {
        const unsigned half = ways / 2;
        p.fillMaskPerThread = {
            wayMaskRange(0, half) | wayMaskRange(ways - 1, ways),
            wayMaskRange(half, ways),
        };
        break;
      }
      case Scenario::Dawg: {
        const unsigned half = ways / 2;
        p.fillMaskPerThread = {wayMaskRange(0, half),
                               wayMaskRange(half, ways)};
        p.probeIsolated = true;
        break;
      }
      case Scenario::PlCache:
        p.lockOnWrite = true;
        break;
    }
    return p;
}

void
expectSameLine(const Line &a, const Line &b, const std::string &ctx)
{
    EXPECT_EQ(a.valid, b.valid) << ctx;
    EXPECT_EQ(a.dirty, b.dirty) << ctx;
    EXPECT_EQ(a.locked, b.locked) << ctx;
    EXPECT_EQ(a.lineAddr, b.lineAddr) << ctx;
    EXPECT_EQ(a.filledBy, b.filledBy) << ctx;
}

void
expectSameState(const Cache &flat, const RefCache &ref,
                const std::string &ctx)
{
    for (unsigned s = 0; s < flat.numSets(); ++s) {
        ASSERT_EQ(flat.validCountInSet(s), ref.validCountInSet(s))
            << ctx << " set " << s;
        ASSERT_EQ(flat.dirtyCountInSet(s), ref.dirtyCountInSet(s))
            << ctx << " set " << s;
        const auto fl = flat.setContents(s);
        const auto rl = ref.setContents(s);
        ASSERT_EQ(fl.size(), rl.size());
        for (unsigned w = 0; w < fl.size(); ++w) {
            expectSameLine(fl[w], rl[w],
                           ctx + " set " + std::to_string(s) + " way " +
                               std::to_string(w));
        }
    }
}

struct GridCase
{
    PolicyKind policy;
    WritePolicy wp;
    Scenario scenario;
};

class CacheEquivalence : public ::testing::TestWithParam<GridCase>
{
};

std::string
gridCaseName(const ::testing::TestParamInfo<GridCase> &info)
{
    std::string name = policyName(info.param.policy);
    for (auto &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    name += info.param.wp == WritePolicy::WriteBack ? "_WB" : "_WT";
    name += "_";
    name += scenarioName(info.param.scenario);
    return name;
}

TEST_P(CacheEquivalence, MixedOpStreamIsBitIdentical)
{
    const auto [policy, wp, scenario] = GetParam();
    const unsigned ways = 4;
    const unsigned sets = 8;
    const CacheParams params = paramsFor(policy, wp, scenario, ways, sets);

    const std::uint64_t seed =
        0xabcd'0000 + static_cast<unsigned>(policy) * 64 +
        static_cast<unsigned>(wp) * 8 +
        static_cast<unsigned>(scenario);
    Rng flatRng(seed);
    Rng refRng(seed);
    Cache flat(params, &flatRng);
    RefCache ref(params, &refRng);

    // Small tag pool so addresses alias heavily and sets run full.
    Rng opRng(seed ^ 0x5eed);
    const auto &layout = flat.layout();
    auto randomAddr = [&]() {
        const auto set = static_cast<unsigned>(opRng.below(sets));
        const Addr tag = 1 + opRng.below(3 * ways);
        return layout.compose(set, tag) + opRng.below(lineBytes);
    };

    const int ops = 1500;
    for (int i = 0; i < ops; ++i) {
        const Addr a = randomAddr();
        const auto tid = static_cast<ThreadId>(opRng.below(2));
        const auto action = opRng.below(100);
        if (action < 40) {
            // The demand-access idiom: probe, then hit or fill.
            const bool isWrite = opRng.flip();
            const auto fw = flat.probe(a, tid);
            const auto rw = ref.probe(a, tid);
            ASSERT_EQ(fw, rw) << "probe @" << i;
            if (fw) {
                flat.onHit(a, *fw, tid, isWrite);
                ref.onHit(a, *rw, tid, isWrite);
            } else {
                const auto fo = flat.fill(a, tid, isWrite);
                const auto ro = ref.fill(a, tid, isWrite);
                ASSERT_EQ(fo.filled, ro.filled) << "fill @" << i;
                ASSERT_EQ(fo.residentHit, ro.residentHit) << "fill @" << i;
                if (fo.filled) {
                    ASSERT_EQ(fo.way, ro.way) << "fill way @" << i;
                    ASSERT_EQ(fo.evicted.any, ro.evicted.any)
                        << "evict @" << i;
                    ASSERT_EQ(fo.evicted.dirty, ro.evicted.dirty)
                        << "evict dirty @" << i;
                    ASSERT_EQ(fo.evicted.lineAddr, ro.evicted.lineAddr)
                        << "evict addr @" << i;
                }
            }
        } else if (action < 80) {
            // Direct fill (write-back arrival / prefetch injection).
            const bool asDirty = opRng.flip();
            const auto fo = flat.fill(a, tid, asDirty);
            const auto ro = ref.fill(a, tid, asDirty);
            ASSERT_EQ(fo.filled, ro.filled) << "fill @" << i;
            ASSERT_EQ(fo.residentHit, ro.residentHit) << "fill @" << i;
            if (fo.filled) {
                ASSERT_EQ(fo.way, ro.way) << "fill way @" << i;
                ASSERT_EQ(fo.evicted.any, ro.evicted.any) << "@" << i;
                ASSERT_EQ(fo.evicted.dirty, ro.evicted.dirty) << "@" << i;
                ASSERT_EQ(fo.evicted.lineAddr, ro.evicted.lineAddr)
                    << "@" << i;
            }
        } else if (action < 88) {
            bool fd = false, rd = false;
            ASSERT_EQ(flat.invalidate(a, fd), ref.invalidate(a, rd))
                << "invalidate @" << i;
            ASSERT_EQ(fd, rd) << "invalidate dirty @" << i;
        } else if (action < 92) {
            ASSERT_EQ(flat.lock(a), ref.lock(a)) << "lock @" << i;
        } else if (action < 96) {
            ASSERT_EQ(flat.unlock(a), ref.unlock(a)) << "unlock @" << i;
        } else if (action < 97) {
            flat.unlockAll();
            ref.unlockAll();
        } else if (action < 99) {
            ASSERT_EQ(flat.contains(a), ref.contains(a)) << "@" << i;
            ASSERT_EQ(flat.isDirty(a), ref.isDirty(a)) << "@" << i;
        } else {
            flat.reset();
            ref.reset();
        }

        if (i % 256 == 255)
            expectSameState(flat, ref, "mid @" + std::to_string(i));
        if (HasFatalFailure() || HasNonfatalFailure())
            FAIL() << "divergence for " << policyName(policy);
    }
    expectSameState(flat, ref, "final");
}

std::vector<GridCase>
fullGrid()
{
    std::vector<GridCase> grid;
    for (PolicyKind policy : allPolicies())
        for (WritePolicy wp :
             {WritePolicy::WriteBack, WritePolicy::WriteThrough})
            for (Scenario s : {Scenario::None, Scenario::NoMo,
                               Scenario::Dawg, Scenario::PlCache})
                grid.push_back({policy, wp, s});
    return grid;
}

INSTANTIATE_TEST_SUITE_P(FullGrid, CacheEquivalence,
                         ::testing::ValuesIn(fullGrid()), gridCaseName);

/**
 * fillBatch() must be exactly a loop of fill(): two identically seeded
 * caches, one driven by batches and one by single calls, end in the
 * same state with consistent aggregate statistics.
 */
TEST(CacheBatch, FillBatchMatchesSingleFills)
{
    // Every scenario matters here: partitioning and lock-on-write are
    // exactly the configuration fillBatch hoists out of its loop, and
    // PLcache is the only way to reach the bypass accounting.
    for (Scenario scenario : {Scenario::None, Scenario::NoMo,
                              Scenario::Dawg, Scenario::PlCache}) {
        for (PolicyKind policy : allPolicies()) {
            const CacheParams p = paramsFor(
                policy, WritePolicy::WriteBack, scenario, 8, 4);
            const std::string ctx = std::string(scenarioName(scenario)) +
                                    " " + policyName(policy);

            Rng rngA(11), rngB(11);
            Cache a(p, &rngA);
            Cache b(p, &rngB);
            const auto &layout = a.layout();

            Rng addrRng(17);
            std::vector<Addr> addrs;
            for (int i = 0; i < 400; ++i) {
                addrs.push_back(layout.compose(
                    static_cast<unsigned>(addrRng.below(4)),
                    1 + addrRng.below(20)));
            }

            for (ThreadId tid : {ThreadId(0), ThreadId(1)}) {
                std::vector<Evicted> evictedA;
                const BatchStats stats =
                    a.fillBatch(addrs, tid, /*asDirty=*/true,
                                &evictedA);

                std::uint64_t hits = 0, fills = 0, evictions = 0,
                              dirty = 0, bypassed = 0;
                std::vector<Evicted> evictedB;
                for (Addr addr : addrs) {
                    const auto out = b.fill(addr, tid, true);
                    if (!out.filled) {
                        ++bypassed;
                        continue;
                    }
                    if (out.residentHit) {
                        ++hits;
                        continue;
                    }
                    ++fills;
                    if (out.evicted.any) {
                        ++evictions;
                        dirty += out.evicted.dirty ? 1 : 0;
                        evictedB.push_back(out.evicted);
                    }
                }

                EXPECT_EQ(stats.hits, hits) << ctx;
                EXPECT_EQ(stats.fills, fills) << ctx;
                EXPECT_EQ(stats.misses, fills + bypassed) << ctx;
                EXPECT_EQ(stats.evictions, evictions) << ctx;
                EXPECT_EQ(stats.dirtyEvictions, dirty) << ctx;
                EXPECT_EQ(stats.bypassed, bypassed) << ctx;
                if (scenario == Scenario::PlCache)
                    EXPECT_GT(stats.bypassed, 0u) << ctx;
                ASSERT_EQ(evictedA.size(), evictedB.size()) << ctx;
                for (std::size_t i = 0; i < evictedA.size(); ++i)
                    EXPECT_EQ(evictedA[i].lineAddr,
                              evictedB[i].lineAddr);

                for (unsigned s = 0; s < a.numSets(); ++s) {
                    const auto la = a.setContents(s);
                    const auto lb = b.setContents(s);
                    for (unsigned w = 0; w < p.ways; ++w)
                        expectSameLine(la[w], lb[w],
                                       ctx + " set " +
                                           std::to_string(s));
                }
            }
        }
    }
}

/** probeBatch honors DAWG probe isolation exactly like probe(). */
TEST(CacheBatch, ProbeBatchHonorsProbeIsolation)
{
    const CacheParams p = paramsFor(PolicyKind::TrueLru,
                                    WritePolicy::WriteBack,
                                    Scenario::Dawg, 8, 2);
    Cache c(p, nullptr);
    const auto &layout = c.layout();

    std::vector<Addr> addrs;
    for (unsigned t = 0; t < 6; ++t)
        addrs.push_back(layout.compose(t % 2, 1 + t));
    // Alternate owners so each partition holds some of the lines.
    for (std::size_t i = 0; i < addrs.size(); ++i)
        c.fill(addrs[i], ThreadId(i % 2), false);

    for (ThreadId tid : {ThreadId(0), ThreadId(1)}) {
        std::vector<std::uint8_t> hitWay(addrs.size(), 0);
        const BatchStats stats = c.probeBatch(addrs, tid, hitWay.data());
        std::uint64_t hits = 0;
        for (std::size_t i = 0; i < addrs.size(); ++i) {
            const auto single = c.probe(addrs[i], tid);
            EXPECT_EQ(single.has_value(), hitWay[i] != 0xff)
                << "tid " << tid << " addr " << i;
            if (single.has_value()) {
                EXPECT_EQ(*single, hitWay[i]);
                ++hits;
            }
        }
        EXPECT_EQ(stats.hits, hits) << "tid " << tid;
        EXPECT_EQ(stats.misses, addrs.size() - hits) << "tid " << tid;
        // Isolation is real: a thread sees only its own partition.
        EXPECT_EQ(hits, addrs.size() / 2) << "tid " << tid;
    }
}

/** probeBatch() is read-only and reports per-address hit ways. */
TEST(CacheBatch, ProbeBatchReportsHitsWithoutTouchingState)
{
    CacheParams p;
    p.name = "batch";
    p.ways = 4;
    p.sizeBytes = 4 * 2 * lineBytes; // 2 sets
    p.policy = PolicyKind::TrueLru;
    Cache c(p, nullptr);
    const auto &layout = c.layout();

    const Addr resident = layout.compose(0, 1);
    const Addr absent = layout.compose(0, 2);
    c.fill(resident, 0, false);

    const std::vector<Addr> addrs = {resident, absent, resident};
    std::vector<std::uint8_t> hitWay(addrs.size(), 0);
    const auto before = c.setContents(0);
    const BatchStats stats = c.probeBatch(addrs, 0, hitWay.data());
    const auto after = c.setContents(0);

    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(hitWay[1], 0xff);
    EXPECT_EQ(hitWay[0], hitWay[2]);
    EXPECT_LT(hitWay[0], p.ways);
    for (unsigned w = 0; w < p.ways; ++w)
        expectSameLine(before[w], after[w], "probeBatch mutated state");
}

} // namespace
} // namespace wb::sim
