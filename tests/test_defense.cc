/**
 * @file
 * Tests for the defense suite (defense/defense.hh): configuration
 * transformations and the paper's Sec. VIII effectiveness verdicts.
 */

#include <gtest/gtest.h>

#include "defense/defense.hh"

namespace wb::defense
{
namespace
{

chan::ChannelConfig
baseConfig()
{
    chan::ChannelConfig cfg;
    cfg.protocol.ts = cfg.protocol.tr = 5500;
    cfg.protocol.encoding = chan::Encoding::binary(8);
    cfg.protocol.frames = 6;
    cfg.calibration.measurements = 100;
    cfg.seed = 5;
    return cfg;
}

TEST(Defense, Names)
{
    EXPECT_EQ(defenseName({DefenseKind::None, 0}), "none");
    EXPECT_EQ(defenseName({DefenseKind::RandomFill, 64}),
              "random-fill(64)");
    EXPECT_EQ(defenseName({DefenseKind::FuzzyTime, 128}),
              "fuzzy-time(128)");
}

TEST(Defense, ApplyWriteThrough)
{
    auto cfg = applyDefense(baseConfig(), {DefenseKind::WriteThrough, 0});
    EXPECT_EQ(cfg.platform.l1.writePolicy,
              sim::WritePolicy::WriteThrough);
}

TEST(Defense, ApplyRandomFill)
{
    auto cfg = applyDefense(baseConfig(), {DefenseKind::RandomFill, 32});
    EXPECT_EQ(cfg.platform.randomFillWindow, 32u);
}

TEST(Defense, ApplyPlCache)
{
    auto cfg = applyDefense(baseConfig(), {DefenseKind::PlCache, 0});
    EXPECT_TRUE(cfg.platform.l1.lockOnWrite);
}

TEST(Defense, ApplyNoMoMasks)
{
    auto cfg = applyDefense(baseConfig(), {DefenseKind::NoMo, 2});
    ASSERT_EQ(cfg.platform.l1.fillMaskPerThread.size(), 2u);
    const auto sender = cfg.platform.l1.fillMaskPerThread[0];
    const auto receiver = cfg.platform.l1.fillMaskPerThread[1];
    EXPECT_EQ(sender & 0b11u, 0b11u);      // reserved ways 0-1
    EXPECT_EQ(receiver & 0b1100u, 0b1100u); // reserved ways 2-3
    EXPECT_EQ(sender & receiver, 0b11110000u); // shared upper half
    EXPECT_FALSE(cfg.platform.l1.probeIsolated);
}

TEST(Defense, ApplyDawg)
{
    auto cfg = applyDefense(baseConfig(), {DefenseKind::Dawg, 0});
    ASSERT_EQ(cfg.platform.l1.fillMaskPerThread.size(), 2u);
    EXPECT_EQ(cfg.platform.l1.fillMaskPerThread[0] &
                  cfg.platform.l1.fillMaskPerThread[1],
              0u); // fully disjoint
    EXPECT_TRUE(cfg.platform.l1.probeIsolated);
}

TEST(Defense, ApplyFuzzyTime)
{
    auto cfg = applyDefense(baseConfig(), {DefenseKind::FuzzyTime, 256});
    EXPECT_EQ(cfg.noise.tscGranularity, 256u);
}

TEST(Defense, ApplyRandomReplacement)
{
    auto cfg =
        applyDefense(baseConfig(), {DefenseKind::RandomReplacement, 0});
    EXPECT_EQ(cfg.platform.l1.policy, sim::PolicyKind::RandomIid);
}

/** Sec. VIII verdicts, via the signal gap and residual BER. */
TEST(DefenseEval, EffectiveDefensesKillTheSignal)
{
    const auto base = baseConfig();
    for (DefenseKind kind : {DefenseKind::WriteThrough,
                             DefenseKind::PlCache, DefenseKind::Dawg}) {
        auto evals = evaluateDefenses(base, {{kind, 0}});
        ASSERT_EQ(evals.size(), 2u);
        const auto &undefended = evals[0];
        const auto &defended = evals[1];
        // Undefended: full d=8 signal (8 write-back penalties).
        EXPECT_GT(undefended.signalGap, 60.0);
        EXPECT_LT(undefended.result.ber, 0.12);
        // Defended: physical signal gone, decoding near-chance.
        EXPECT_LT(defended.signalGap, 3.0)
            << defenseName(defended.spec);
        EXPECT_GT(defended.result.ber, 0.20)
            << defenseName(defended.spec);
    }
}

TEST(DefenseEval, RandomFillMitigates)
{
    auto evals =
        evaluateDefenses(baseConfig(), {{DefenseKind::RandomFill, 64}});
    EXPECT_GT(evals[1].result.ber, 0.20);
}

TEST(DefenseEval, PrefetchGuardDoesNotStopWb)
{
    // Sec. VIII: "the noisy cache lines prefetched by Prefetch-guard
    // cannot effectively defend against the WB channel."
    auto evals = evaluateDefenses(baseConfig(),
                                  {{DefenseKind::PrefetchGuard, 30}});
    EXPECT_LT(evals[1].result.ber, 0.15);
    EXPECT_GT(evals[1].signalGap, 40.0);
}

TEST(DefenseEval, RandomReplacementDoesNotStopWb)
{
    // Sec. VI-A: random replacement is not an effective defense once
    // the attacker adapts d and the replacement-set size.
    auto base = baseConfig();
    base.protocol.encoding = chan::Encoding::binary(8);
    base.protocol.replacementSize = 16;
    auto evals = evaluateDefenses(
        base, {{DefenseKind::RandomReplacement, 0}});
    EXPECT_LT(evals[1].result.ber, 0.15);
}

TEST(DefenseEval, WeakPartitionLeaks)
{
    // NoMo with a small reservation leaves shared ways: the channel
    // survives with reduced amplitude.
    auto evals = evaluateDefenses(baseConfig(), {{DefenseKind::NoMo, 2}});
    EXPECT_LT(evals[1].result.ber, 0.15);
    EXPECT_GT(evals[1].signalGap, 20.0);
    // A full partition closes it.
    auto strict = evaluateDefenses(baseConfig(), {{DefenseKind::NoMo, 4}});
    EXPECT_LT(strict[1].signalGap, 3.0);
}

TEST(DefenseEval, FuzzyTimeNeedsCoarseGranularity)
{
    // Fine-grained fuzzing leaves the 88-cycle d=8 signal readable.
    auto fine =
        evaluateDefenses(baseConfig(), {{DefenseKind::FuzzyTime, 8}});
    EXPECT_LT(fine[1].result.ber, 0.10);
}

TEST(DefenseEval, StandardSpecListIsComplete)
{
    const auto specs = standardDefenseSpecs();
    EXPECT_GE(specs.size(), 8u);
}

} // namespace
} // namespace wb::defense
