/**
 * @file
 * Tests for the baseline covert channels (LRU, Prime+Probe,
 * Flush+Reload, Flush+Flush, coherence-state) and the stability
 * comparison of paper Sec. VI / Fig. 8.
 */

#include <gtest/gtest.h>

#include "baselines/flush_channels.hh"
#include "baselines/lru_channel.hh"
#include "baselines/prime_probe.hh"
#include "chan/channel.hh"
#include "stat_assert.hh"

namespace wb::baselines
{
namespace
{

BaselineConfig
slowConfig(std::uint64_t seed = 3)
{
    BaselineConfig cfg;
    cfg.ts = cfg.tr = 5500; // 400 kbps, the LRU channel's comfort zone
    cfg.frames = 10;
    cfg.seed = seed;
    return cfg;
}

TEST(LruChannel, WorksCleanUnderTrueLru)
{
    auto cfg = slowConfig();
    cfg.platform.l1.policy = sim::PolicyKind::TrueLru;
    auto res = runLruChannel(cfg);
    EXPECT_TRUE(res.aligned);
    EXPECT_LT(res.ber, 0.05);
}

TEST(LruChannel, PlruDegradesIt)
{
    // Sec. VI: "commercial processors often adopt a PLRU policy
    // instead of a true LRU policy, which also has an impact on the
    // LRU channel."
    double lruBer = 0, plruBer = 0;
    for (std::uint64_t seed : {3, 4, 5}) {
        auto cfg = slowConfig(seed);
        cfg.platform.l1.policy = sim::PolicyKind::TrueLru;
        lruBer += runLruChannel(cfg).ber;
        cfg.platform.l1.policy = sim::PolicyKind::TreePlru;
        plruBer += runLruChannel(cfg).ber;
    }
    EXPECT_GE(plruBer, lruBer);
}

TEST(LruChannel, NoisyLineBreaksIt)
{
    // Paper Fig. 8(a): a single clean noisy line forces permanent
    // decode errors in the LRU channel...
    auto cfg = slowConfig();
    cfg.platform.l1.policy = sim::PolicyKind::TrueLru;
    cfg.noiseProcesses = 1;
    cfg.noiseCfg.period = 3 * 5500;
    cfg.noiseCfg.burstLines = 1;
    auto noisy = runLruChannel(cfg);
    cfg.noiseProcesses = 0;
    auto clean = runLruChannel(cfg);
    EXPECT_GT(noisy.ber, clean.ber + 0.10);
}

TEST(WbVsLru, WbSurvivesTheNoiseThatKillsLru)
{
    // ...while the WB channel shrugs it off (Fig. 8(b)).
    chan::ChannelConfig wb;
    wb.protocol.ts = wb.protocol.tr = 5500;
    wb.protocol.frames = 10;
    wb.protocol.encoding = chan::Encoding::binary(1);
    wb.calibration.measurements = 100;
    wb.seed = 3;
    wb.noiseProcesses = 1;
    wb.noiseCfg.period = 3 * 5500;
    wb.noiseCfg.burstLines = 1;
    auto wbRes = chan::runChannel(wb);
    EXPECT_LT(wbRes.ber, 0.05);

    auto lru = slowConfig();
    lru.platform.l1.policy = sim::PolicyKind::TrueLru;
    lru.noiseProcesses = 1;
    lru.noiseCfg.period = 3 * 5500;
    lru.noiseCfg.burstLines = 1;
    auto lruRes = runLruChannel(lru);
    EXPECT_GT(lruRes.ber, wbRes.ber + 0.10);
}

TEST(PrimeProbe, WorksClean)
{
    auto res = runPrimeProbeChannel(slowConfig());
    EXPECT_TRUE(res.aligned);
    EXPECT_LT(res.ber, 0.05);
}

TEST(PrimeProbe, NoisyLineHurts)
{
    auto cfg = slowConfig();
    cfg.noiseProcesses = 1;
    cfg.noiseCfg.period = 3 * 5500;
    cfg.noiseCfg.burstLines = 1;
    auto noisy = runPrimeProbeChannel(cfg);
    cfg.noiseProcesses = 0;
    auto clean = runPrimeProbeChannel(cfg);
    EXPECT_GT(noisy.ber, clean.ber + 0.05);
}

TEST(FlushReload, WorksWithSharedMemory)
{
    // A single trajectory's BER swings between ~0 and ~0.2 with the
    // PRNG draw order; assert the pooled rate over a seed sweep.
    const auto sweep = test::sweepSeeds([](std::uint64_t seed) {
        auto res = runFlushChannel(slowConfig(seed), FlushKind::FlushReload);
        EXPECT_TRUE(res.aligned) << "seed " << seed;
        const double bits = double(res.sentFrame.size()) * res.framesScored;
        return test::Proportion{res.ber * bits, bits};
    });
    EXPECT_BER_BELOW(sweep, 0.12);
}

TEST(FlushFlush, Works)
{
    auto res = runFlushChannel(slowConfig(), FlushKind::FlushFlush);
    EXPECT_TRUE(res.aligned);
    EXPECT_LT(res.ber, 0.05);
}

TEST(CoherenceState, DirtyFlushTimingWorks)
{
    auto res = runFlushChannel(slowConfig(), FlushKind::CoherenceState);
    EXPECT_TRUE(res.aligned);
    EXPECT_LT(res.ber, 0.08);
}

TEST(FlushKinds, Names)
{
    EXPECT_EQ(flushKindName(FlushKind::FlushReload), "Flush+Reload");
    EXPECT_EQ(flushKindName(FlushKind::FlushFlush), "Flush+Flush");
    EXPECT_EQ(flushKindName(FlushKind::CoherenceState),
              "CoherenceState");
}

TEST(Baselines, SenderCountersDiffer)
{
    // Table VI's direction: the LRU sender issues far more loads than
    // the WB sender per transmitted bit (continuous modulation).
    auto cfg = slowConfig();
    cfg.frames = 5;
    auto lru = runLruChannel(cfg, /*modulateCycles=*/0);

    chan::ChannelConfig wb;
    wb.protocol.ts = wb.protocol.tr = 5500;
    wb.protocol.frames = 5;
    wb.protocol.encoding = chan::Encoding::binary(1);
    wb.calibration.measurements = 60;
    wb.seed = 3;
    auto wbRes = chan::runChannel(wb);

    const auto lruTotal =
        lru.senderCounters.l1LoadsWithSpin();
    const auto wbTotal = wbRes.senderCounters.l1LoadsWithSpin();
    EXPECT_GT(lruTotal, wbTotal);
}

TEST(Baselines, HigherRateHurtsLruMoreThanWb)
{
    // The LRU channel peaks around 600 kbps (paper Sec. VI): pushing
    // ts from 5500 down to 1000 cycles raises its pooled error rate
    // several-fold, while the WB channel still decodes at 1375 kbps
    // (ts = 1600). Both halves are pooled seed sweeps so the claim is
    // about the channels, not one lucky trajectory.
    auto lruAt = [](unsigned ts) {
        return test::sweepSeeds([ts](std::uint64_t seed) {
            auto cfg = slowConfig(seed);
            cfg.ts = cfg.tr = ts;
            cfg.frames = 25;
            cfg.platform.l1.policy = sim::PolicyKind::TrueLru;
            auto res = runLruChannel(cfg);
            const double bits =
                double(res.sentFrame.size()) * res.framesScored;
            return test::Proportion{res.ber * bits, bits};
        });
    };
    const auto lruSlow = lruAt(5500);
    const auto lruFast = lruAt(1000);
    EXPECT_GT(lruFast.ci().lo, lruSlow.ci().hi)
        << "slow " << lruSlow << " fast " << lruFast;

    const auto wbFast = test::sweepSeeds([](std::uint64_t seed) {
        chan::ChannelConfig wb;
        wb.protocol.ts = wb.protocol.tr = 1600;
        wb.protocol.frames = 25;
        wb.protocol.encoding = chan::Encoding::binary(8);
        wb.calibration.measurements = 100;
        wb.seed = seed;
        auto res = chan::runChannel(wb);
        const double bits =
            double(res.sentFrame.size()) * res.framesScored;
        return test::Proportion{res.ber * bits, bits};
    });
    EXPECT_BER_BELOW(wbFast, 0.1);
}

} // namespace
} // namespace wb::baselines
