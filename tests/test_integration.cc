/**
 * @file
 * Cross-module integration tests: the full stack (substrate + channel
 * + decode) exercised across replacement policies, multiple noise
 * processes, and cross-checks between independently implemented
 * components (Fig. 4 medians vs. Table IV arithmetic; channel BER vs.
 * eviction-probability predictions).
 */

#include <gtest/gtest.h>

#include "chan/channel.hh"
#include "sim/eviction_probe.hh"

namespace wb
{
namespace
{

using chan::ChannelConfig;
using chan::Encoding;

/** The channel must work on every realistic L1 policy. */
class PolicySweep : public ::testing::TestWithParam<sim::PolicyKind>
{
};

TEST_P(PolicySweep, ChannelDecodesAt400kbps)
{
    ChannelConfig cfg;
    cfg.platform.l1.policy = GetParam();
    cfg.protocol.ts = cfg.protocol.tr = 5500;
    cfg.protocol.frames = 8;
    cfg.calibration.measurements = 120;
    cfg.seed = 31;
    // Non-stack policies need the bigger margins the paper's Sec.
    // VI-A analysis recommends (more dirty lines, larger sets).
    const bool stackLike = GetParam() == sim::PolicyKind::TrueLru ||
                           GetParam() == sim::PolicyKind::TreePlru ||
                           GetParam() == sim::PolicyKind::Nru ||
                           GetParam() == sim::PolicyKind::Fifo;
    cfg.protocol.encoding = Encoding::binary(stackLike ? 1 : 5);
    if (!stackLike)
        cfg.protocol.replacementSize = 16;
    auto res = chan::runChannel(cfg);
    EXPECT_TRUE(res.aligned) << sim::policyName(GetParam());
    EXPECT_LT(res.ber, 0.15) << sim::policyName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicySweep,
    ::testing::Values(sim::PolicyKind::TrueLru, sim::PolicyKind::TreePlru,
                      sim::PolicyKind::BitPlru, sim::PolicyKind::Srrip,
                      sim::PolicyKind::QuadAgeLru, sim::PolicyKind::Nru,
                      sim::PolicyKind::Fifo, sim::PolicyKind::RandomIid,
                      sim::PolicyKind::LfsrRandom));

TEST(Integration, CalibrationMatchesLatencyModelArithmetic)
{
    // Fig. 4's medians must be explained by Table IV's numbers: a
    // replacement-set traversal of L lines costs about
    // L * (l2Hit + overhead) + d * dirtyPenalty + tscRead.
    ChannelConfig cfg;
    cfg.noise = sim::NoiseModel::quiet();
    cfg.noise.tscReadCost = 30;
    cfg.platform.lat.noiseSigma = 0.0;
    cfg.calibration.measurements = 80;
    for (unsigned d = 0; d <= 8; ++d)
        cfg.calibration.levelsMix.push_back(d); // full Fig. 4 sweep
    cfg.protocol.frames = 1;
    auto res = chan::runChannel(cfg);
    const auto &lat = cfg.platform.lat;
    const double L = cfg.protocol.replacementSize;
    for (unsigned d = 0; d <= 8; ++d) {
        const double expected = L * double(lat.l2Hit) +
            d * double(lat.l1DirtyEvictPenalty) + 30.0;
        EXPECT_NEAR(res.calibrationMedians[d], expected, L + 8)
            << "d=" << d;
    }
}

TEST(Integration, TwoNoiseProcessesAndRealNoise)
{
    ChannelConfig cfg;
    cfg.protocol.ts = cfg.protocol.tr = 5500;
    cfg.protocol.encoding = Encoding::binary(4);
    cfg.protocol.frames = 8;
    cfg.calibration.measurements = 100;
    cfg.noiseProcesses = 2;
    cfg.noiseCfg.period = 11000;
    cfg.noiseCfg.burstLines = 2;
    cfg.seed = 37;
    auto res = chan::runChannel(cfg);
    EXPECT_TRUE(res.aligned);
    EXPECT_LT(res.ber, 0.08);
}

TEST(Integration, EvictionProbabilityPredictsRandomPolicyChannel)
{
    // Chain of reasoning from the paper: p(evict) at (d, L) from
    // Table V bounds the per-bit decode success under random
    // replacement. Verify the direction: a configuration with higher
    // eviction probability yields a lower BER.
    Rng rng(41);
    sim::EvictionProbeConfig weakCfg;
    weakCfg.policy = sim::PolicyKind::RandomIid;
    weakCfg.dirtyLines = 1;
    weakCfg.replacementSize = 8;
    sim::EvictionProbeConfig strongCfg = weakCfg;
    strongCfg.dirtyLines = 3;
    strongCfg.replacementSize = 13;
    const auto weakP = runEvictionProbe(weakCfg, 2000, rng);
    const auto strongP = runEvictionProbe(strongCfg, 2000, rng);
    ASSERT_GT(strongP.probAnyDirtyEvicted,
              weakP.probAnyDirtyEvicted + 0.2);

    double weakBer = 0, strongBer = 0;
    for (std::uint64_t seed : {1, 2, 3}) {
        ChannelConfig cfg;
        cfg.platform.l1.policy = sim::PolicyKind::RandomIid;
        cfg.protocol.ts = cfg.protocol.tr = 5500;
        cfg.protocol.frames = 6;
        cfg.calibration.measurements = 100;
        cfg.seed = seed;
        cfg.protocol.encoding = Encoding::binary(1);
        cfg.protocol.replacementSize = 8;
        weakBer += chan::runChannel(cfg).ber;
        cfg.protocol.encoding = Encoding::binary(3);
        cfg.protocol.replacementSize = 13;
        strongBer += chan::runChannel(cfg).ber;
    }
    EXPECT_LT(strongBer, weakBer);
}

TEST(Integration, TargetSetChoiceIsIrrelevant)
{
    // The channel must work on any agreed set (the paper's point that
    // it targets sets, not addresses).
    for (unsigned set : {0u, 13u, 37u, 63u}) {
        ChannelConfig cfg;
        cfg.noise = sim::NoiseModel::quiet();
        cfg.platform.lat.noiseSigma = 0.0;
        cfg.protocol.targetSet = set;
        cfg.calibration.targetSet = set;
        cfg.protocol.frames = 3;
        cfg.calibration.measurements = 60;
        cfg.seed = 43;
        auto res = chan::runChannel(cfg);
        EXPECT_DOUBLE_EQ(res.ber, 0.0) << "set " << set;
    }
}

TEST(Integration, L2LevelChannelAlsoWorks)
{
    // Sec. III: "The WB time channel can be deployed not only on the
    // L1 cache but also on other cache levels." Approximate by
    // timing with a dirtier L2 eviction path: raise the L2 dirty
    // penalty and verify the calibration gap still scales with d when
    // the L1 is write-through (dirt lives in L2).
    ChannelConfig cfg;
    cfg.noise = sim::NoiseModel::quiet();
    cfg.platform.lat.noiseSigma = 0.0;
    cfg.platform.l1.writePolicy = sim::WritePolicy::WriteThrough;
    cfg.calibration.measurements = 60;
    cfg.protocol.frames = 1;
    auto res = chan::runChannel(cfg);
    // With a write-through L1 the *L1* gap disappears...
    EXPECT_LT(res.calibrationMedians[8] - res.calibrationMedians[0],
              3.0);
    // ...which is exactly the write-through defense result; the
    // L2-level deployment needs L2-sized replacement sets and is
    // exercised by bench/ablation instead (this test pins the L1
    // conclusion).
}

} // namespace
} // namespace wb
