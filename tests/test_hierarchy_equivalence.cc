/**
 * @file
 * Batched-vs-scalar hierarchy equivalence suite.
 *
 * Hierarchy::accessBatch() must be indistinguishable from driving the
 * same operations through Hierarchy::access() one at a time: the
 * fused loop and the scalar entry point share one inlined body, and
 * this suite enforces that the sharing actually holds. Randomized
 * multi-thread op streams run through two identically seeded
 * hierarchies — one stepped per access, one stepped per batch — and
 * every chunk must produce bit-identical aggregate latencies, hit
 * counts and dirty-eviction counts, with bit-identical per-thread
 * perf counters and cache state at the end. The grid covers every
 * platform registry preset and the stochastic hierarchy-level
 * defenses (random fill, prefetch guard), whose RNG draws must stay
 * in lockstep between the two execution styles.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hh"
#include "sim/hierarchy.hh"
#include "sim/multicore.hh"
#include "sim/platform.hh"
#include "sim/scheduler.hh"

namespace wb::sim
{
namespace
{

/** Which hierarchy-level defenses to layer on a preset. */
struct DefenseVariant
{
    const char *name;
    unsigned randomFillWindow;
    double prefetchGuardProb;
};

const DefenseVariant kDefenseVariants[] = {
    {"none", 0, 0.0},
    {"randomFill", 8, 0.0},
    {"prefetchGuard", 0, 0.5},
    {"both", 8, 0.5},
};

/** One chunk of the randomized op stream. */
struct Chunk
{
    ThreadId tid = 0;
    bool isWrite = false;
    std::vector<Addr> paddrs;
};

/**
 * A randomized multi-thread stream: chunks alternate hardware
 * threads, mix loads and stores, and concentrate on a handful of L1
 * sets so fills evict constantly (the WB-channel regime).
 */
std::vector<Chunk>
makeStream(const AddressLayout &layout, std::uint64_t seed,
           std::size_t chunks)
{
    Rng rng(seed);
    std::vector<Chunk> stream;
    stream.reserve(chunks);
    const unsigned ways = 8; // tag pool scale; exact value uncritical
    for (std::size_t c = 0; c < chunks; ++c) {
        Chunk chunk;
        chunk.tid = static_cast<ThreadId>(rng.below(2));
        chunk.isWrite = rng.chance(0.45);
        const std::size_t len = 1 + rng.below(24);
        chunk.paddrs.reserve(len);
        for (std::size_t i = 0; i < len; ++i) {
            const unsigned set =
                static_cast<unsigned>(rng.below(4)) * 7 % layout.numSets();
            const Addr tag = 1 + rng.below(3 * ways);
            chunk.paddrs.push_back(layout.compose(set, tag));
        }
        stream.push_back(std::move(chunk));
    }
    return stream;
}

void
expectCountersEqual(const PerfCounters &a, const PerfCounters &b,
                    const std::string &label)
{
    EXPECT_EQ(a.loads, b.loads) << label;
    EXPECT_EQ(a.stores, b.stores) << label;
    EXPECT_EQ(a.l1Hits, b.l1Hits) << label;
    EXPECT_EQ(a.l1Misses, b.l1Misses) << label;
    EXPECT_EQ(a.l2Accesses, b.l2Accesses) << label;
    EXPECT_EQ(a.l2Hits, b.l2Hits) << label;
    EXPECT_EQ(a.l2Misses, b.l2Misses) << label;
    EXPECT_EQ(a.llcAccesses, b.llcAccesses) << label;
    EXPECT_EQ(a.llcHits, b.llcHits) << label;
    EXPECT_EQ(a.llcMisses, b.llcMisses) << label;
    EXPECT_EQ(a.l1DirtyWritebacks, b.l1DirtyWritebacks) << label;
    EXPECT_EQ(a.flushes, b.flushes) << label;
}

void
expectCacheStateEqual(Cache &a, Cache &b, const std::string &label)
{
    ASSERT_EQ(a.numSets(), b.numSets()) << label;
    for (unsigned set = 0; set < a.numSets(); ++set) {
        const auto la = a.setContents(set);
        const auto lb = b.setContents(set);
        ASSERT_EQ(la.size(), lb.size()) << label;
        for (std::size_t w = 0; w < la.size(); ++w) {
            EXPECT_EQ(la[w].valid, lb[w].valid)
                << label << " set " << set << " way " << w;
            EXPECT_EQ(la[w].dirty, lb[w].dirty)
                << label << " set " << set << " way " << w;
            EXPECT_EQ(la[w].locked, lb[w].locked)
                << label << " set " << set << " way " << w;
            if (la[w].valid) {
                EXPECT_EQ(la[w].lineAddr, lb[w].lineAddr)
                    << label << " set " << set << " way " << w;
                EXPECT_EQ(la[w].filledBy, lb[w].filledBy)
                    << label << " set " << set << " way " << w;
            }
        }
    }
}

class HierarchyEquivalence
    : public ::testing::TestWithParam<
          std::tuple<std::string, unsigned, std::uint64_t>>
{
};

TEST_P(HierarchyEquivalence, BatchedMatchesScalarBitExactly)
{
    const auto &[platformName, variantIdx, seed] = GetParam();
    const DefenseVariant &variant = kDefenseVariants[variantIdx];

    HierarchyParams hp = platform(platformName).params;
    hp.randomFillWindow = variant.randomFillWindow;
    hp.prefetchGuardProb = variant.prefetchGuardProb;

    const std::string label =
        platformName + "/" + variant.name + "/seed" + std::to_string(seed);

    // Identically seeded RNGs: any divergence in draw order between
    // the scalar and batched paths shows up as a state mismatch.
    Rng rngScalar(seed * 7919 + 17);
    Rng rngBatched(seed * 7919 + 17);
    Hierarchy scalar(hp, &rngScalar);
    Hierarchy batched(hp, &rngBatched);

    const auto stream =
        makeStream(scalar.l1().layout(), seed ^ 0xabcdef, 400);

    for (std::size_t c = 0; c < stream.size(); ++c) {
        const Chunk &chunk = stream[c];

        BatchAccessResult viaScalar;
        viaScalar.accesses = chunk.paddrs.size();
        for (Addr paddr : chunk.paddrs) {
            const AccessResult r =
                scalar.access(chunk.tid, paddr, chunk.isWrite);
            viaScalar.l1Hits += r.l1Hit ? 1 : 0;
            viaScalar.l1DirtyEvictions += r.l1VictimDirty ? 1 : 0;
            viaScalar.totalLatency += r.latency;
        }

        const BatchAccessResult viaBatch = batched.accessBatch(
            chunk.tid, chunk.paddrs, chunk.isWrite);

        ASSERT_EQ(viaScalar.accesses, viaBatch.accesses)
            << label << " chunk " << c;
        ASSERT_EQ(viaScalar.l1Hits, viaBatch.l1Hits)
            << label << " chunk " << c;
        ASSERT_EQ(viaScalar.l1DirtyEvictions, viaBatch.l1DirtyEvictions)
            << label << " chunk " << c;
        ASSERT_EQ(viaScalar.totalLatency, viaBatch.totalLatency)
            << label << " chunk " << c;
    }

    for (ThreadId tid = 0; tid < 2; ++tid) {
        expectCountersEqual(scalar.counters(tid), batched.counters(tid),
                            label + " tid " + std::to_string(tid));
    }
    expectCacheStateEqual(scalar.l1(), batched.l1(), label + " L1");
    expectCacheStateEqual(scalar.l2(), batched.l2(), label + " L2");
    expectCacheStateEqual(scalar.llc(), batched.llc(), label + " LLC");
}

std::vector<std::tuple<std::string, unsigned, std::uint64_t>>
equivalenceGrid()
{
    std::vector<std::tuple<std::string, unsigned, std::uint64_t>> grid;
    for (const auto &name : platformNames()) {
        // Sliced-LLC presets exist only as MultiCoreSystems (the
        // single-core Hierarchy is fatal on llcSlices > 1); their
        // equivalence coverage is tests/test_sliced_llc.cc.
        if (findPlatform(name)->params.llcSlices > 1)
            continue;
        for (unsigned v = 0; v < 4; ++v)
            for (std::uint64_t seed : {1ULL, 2ULL})
                grid.emplace_back(name, v, seed);
    }
    return grid;
}

std::string
gridName(const ::testing::TestParamInfo<
         std::tuple<std::string, unsigned, std::uint64_t>> &info)
{
    const auto &[platformName, variantIdx, seed] = info.param;
    std::string name = platformName + "_" +
                       kDefenseVariants[variantIdx].name + "_s" +
                       std::to_string(seed);
    for (char &ch : name)
        if (ch == '-')
            ch = '_';
    return name;
}

INSTANTIATE_TEST_SUITE_P(AllPresetsAndDefenses, HierarchyEquivalence,
                         ::testing::ValuesIn(equivalenceGrid()),
                         gridName);

/**
 * Cross-core batched-vs-scalar equivalence: MultiCoreSystem's
 * accessBatch() runs the identical accessOne body the scalar access()
 * runs, per core, including every coherence action (remote
 * invalidations, snoop downgrades, inclusive back-invalidation) and
 * the noise draw order. Randomized multi-core, multi-thread streams
 * concentrated on a handful of shared-LLC sets must be bit-identical
 * between the two execution styles.
 */
class MultiCoreEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>>
{
};

TEST_P(MultiCoreEquivalence, BatchedMatchesScalarBitExactly)
{
    const auto &[platformName, seed] = GetParam();
    const Platform &plat = platform(platformName);
    const unsigned cores = std::max(2u, plat.cores);
    const std::string label =
        platformName + "/seed" + std::to_string(seed);

    Rng rngScalar(seed * 6271 + 5);
    Rng rngBatched(seed * 6271 + 5);
    MultiCoreSystem scalar(plat.params, cores, &rngScalar);
    MultiCoreSystem batched(plat.params, cores, &rngBatched);

    // Chunks hop cores and threads, mix loads/stores, and concentrate
    // on a few LLC sets so coherence actions and LLC evictions fire
    // constantly (the cross-core channel regime).
    const AddressLayout llcLayout(plat.params.llc.numSets());
    Rng stream(seed ^ 0x5eed);
    for (std::size_t c = 0; c < 300; ++c) {
        const unsigned core = static_cast<unsigned>(stream.below(cores));
        const ThreadId tid = static_cast<ThreadId>(stream.below(2));
        const bool isWrite = stream.chance(0.45);
        const std::size_t len = 1 + stream.below(24);
        std::vector<Addr> paddrs;
        paddrs.reserve(len);
        for (std::size_t i = 0; i < len; ++i) {
            const unsigned set = static_cast<unsigned>(stream.below(3)) *
                                 11 % llcLayout.numSets();
            const Addr tag = 1 + stream.below(3 * plat.params.llc.ways);
            paddrs.push_back(llcLayout.compose(set, tag));
        }

        BatchAccessResult viaScalar;
        viaScalar.accesses = paddrs.size();
        for (Addr paddr : paddrs) {
            const AccessResult r =
                scalar.access(core, tid, paddr, isWrite);
            viaScalar.l1Hits += r.l1Hit ? 1 : 0;
            viaScalar.l1DirtyEvictions += r.l1VictimDirty ? 1 : 0;
            viaScalar.totalLatency += r.latency;
        }
        const BatchAccessResult viaBatch =
            batched.accessBatch(core, tid, paddrs, isWrite);

        ASSERT_EQ(viaScalar.l1Hits, viaBatch.l1Hits)
            << label << " chunk " << c;
        ASSERT_EQ(viaScalar.l1DirtyEvictions, viaBatch.l1DirtyEvictions)
            << label << " chunk " << c;
        ASSERT_EQ(viaScalar.totalLatency, viaBatch.totalLatency)
            << label << " chunk " << c;
    }

    for (unsigned core = 0; core < cores; ++core) {
        for (ThreadId tid = 0; tid < 2; ++tid) {
            expectCountersEqual(
                scalar.counters(core, tid), batched.counters(core, tid),
                label + " core " + std::to_string(core) + " tid " +
                    std::to_string(tid));
            EXPECT_EQ(scalar.counters(core, tid).llcDirtyEvictions,
                      batched.counters(core, tid).llcDirtyEvictions)
                << label << " core " << core;
            EXPECT_EQ(scalar.counters(core, tid).crossCoreSnoops,
                      batched.counters(core, tid).crossCoreSnoops)
                << label << " core " << core;
        }
        expectCacheStateEqual(scalar.l1(core), batched.l1(core),
                              label + " L1 core " + std::to_string(core));
        expectCacheStateEqual(scalar.l2(core), batched.l2(core),
                              label + " L2 core " + std::to_string(core));
    }
    expectCacheStateEqual(scalar.llc(), batched.llc(), label + " LLC");
}

INSTANTIATE_TEST_SUITE_P(
    MultiCorePresets, MultiCoreEquivalence,
    ::testing::Combine(::testing::Values(std::string("xeonE5-2650-2core"),
                                         std::string(
                                             "desktop-inclusive-4core")),
                       ::testing::Values(1ULL, 2ULL)),
    [](const ::testing::TestParamInfo<
        std::tuple<std::string, std::uint64_t>> &info) {
        std::string name = std::get<0>(info.param) + "_s" +
                           std::to_string(std::get<1>(info.param));
        for (char &ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

/**
 * Scheduler-interleaving equivalence: running the identical chunked
 * workload under the OS-noise Scheduler — with idle co-runners on the
 * other cores and periodic migration of the party — must be bit-exact
 * between batched and scalar execution, like MultiCoreEquivalence is
 * for the bare system. Chunks execute at fixed spin-aligned slots so
 * the surrounding co-runner/migration events land identically in both
 * runs; the chunk *interior* is where batched and scalar execution
 * differ, and where they must not diverge.
 */
class SchedulerEquivalence
    : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    /** Slot pitch between chunks (longer than any chunk's latency). */
    static constexpr Cycles kSlot = 20'000;

    /** One chunked, spin-paced workload (batched or scalar ops). */
    class ChunkProgram : public Program
    {
      public:
        ChunkProgram(const std::vector<Chunk> &chunks, bool batched)
            : chunks_(chunks), batched_(batched)
        {
        }

        std::optional<MemOp>
        next(ProcView &) override
        {
            if (chunk_ >= chunks_.size())
                return std::nullopt;
            const Chunk &c = chunks_[chunk_];
            if (spinNext_) {
                spinNext_ = false;
                ++chunk_;
                pos_ = 0;
                return MemOp::spinUntil(Cycles(chunk_) * kSlot);
            }
            if (batched_) {
                spinNext_ = true;
                return c.isWrite
                           ? MemOp::storeBatch(c.paddrs.data(),
                                               c.paddrs.size())
                           : MemOp::loadBatch(c.paddrs.data(),
                                              c.paddrs.size());
            }
            const Addr va = c.paddrs[pos_++];
            if (pos_ >= c.paddrs.size())
                spinNext_ = true;
            return c.isWrite ? MemOp::store(va) : MemOp::load(va);
        }

        void onResult(const MemOp &, const OpResult &, ProcView &) override
        {
        }

      private:
        const std::vector<Chunk> &chunks_;
        bool batched_;
        std::size_t chunk_ = 0;
        std::size_t pos_ = 0;
        bool spinNext_ = false;
    };

    /**
     * Chunks over sets {7, 14, 21, 28}: away from L1 set 0, where
     * every thread's spin-stack bookkeeping line lives, so co-runner
     * spins cannot touch replacement state the chunks depend on.
     */
    static std::vector<Chunk>
    makeChunks(std::uint64_t seed, std::size_t count)
    {
        Rng rng(seed);
        std::vector<Chunk> chunks;
        chunks.reserve(count);
        for (std::size_t c = 0; c < count; ++c) {
            Chunk chunk;
            chunk.isWrite = rng.chance(0.45);
            const std::size_t len = 1 + rng.below(24);
            chunk.paddrs.reserve(len);
            for (std::size_t i = 0; i < len; ++i) {
                const unsigned set =
                    7 * (1 + static_cast<unsigned>(rng.below(4)));
                chunk.paddrs.push_back(
                    AddressLayout(64).compose(set, 1 + rng.below(24)));
            }
            chunks.push_back(std::move(chunk));
        }
        return chunks;
    }

    /** Run one style, returning the system for state comparison. */
    static std::unique_ptr<MultiCoreSystem>
    runStyle(const Platform &plat, std::uint64_t seed, bool batched,
             std::vector<Chunk> &chunks, Rng &rng, Cycles *end)
    {
        auto mc = std::make_unique<MultiCoreSystem>(plat.params,
                                                    plat.cores, &rng);
        SchedulerConfig cfg;
        cfg.coRunners = {CoRunnerKind::Idle, CoRunnerKind::Idle};
        cfg.timeslice = 0; // idle co-runners never slice anyway
        cfg.migrationPeriod = 4 * kSlot;
        Scheduler sched(*mc, NoiseModel::quiet(), rng, cfg, seed);
        SmtCore &fe = sched.party(0, /*migratable=*/true);
        ChunkProgram prog(chunks, batched);
        fe.addThread(&prog, AddressSpace(3));
        *end = sched.run(Cycles(chunks.size() + 2) * kSlot);
        EXPECT_GE(sched.stats().migrations, 2u);
        return mc;
    }
};

TEST_P(SchedulerEquivalence, BatchedMatchesScalarBitExactly)
{
    const std::uint64_t seed = GetParam();
    const Platform &plat = platform("desktop-inclusive-4core");
    auto chunks = makeChunks(seed ^ 0xcafe, 24);

    Cycles endScalar = 0, endBatched = 0;
    Rng rngScalar(seed * 31 + 7), rngBatched(seed * 31 + 7);
    auto scalar = runStyle(plat, seed, false, chunks, rngScalar,
                           &endScalar);
    auto batched = runStyle(plat, seed, true, chunks, rngBatched,
                            &endBatched);

    const std::string label = "sched/seed" + std::to_string(seed);
    EXPECT_EQ(endScalar, endBatched) << label;
    for (unsigned core = 0; core < plat.cores; ++core) {
        for (ThreadId tid = 0; tid < 2; ++tid) {
            expectCountersEqual(
                scalar->counters(core, tid), batched->counters(core, tid),
                label + " core " + std::to_string(core) + " tid " +
                    std::to_string(tid));
        }
        expectCacheStateEqual(scalar->l1(core), batched->l1(core),
                              label + " L1 core " + std::to_string(core));
        expectCacheStateEqual(scalar->l2(core), batched->l2(core),
                              label + " L2 core " + std::to_string(core));
    }
    expectCacheStateEqual(scalar->llc(), batched->llc(), label + " LLC");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerEquivalence,
                         ::testing::Values(1ULL, 2ULL, 3ULL));

/** The virtual-address overload translates identically. */
TEST(HierarchyEquivalence, VirtualAddressOverloadMatches)
{
    HierarchyParams hp = platform(kDefaultPlatform).params;
    Rng rngA(3), rngB(3);
    Hierarchy a(hp, &rngA);
    Hierarchy b(hp, &rngB);
    AddressSpace space(5);

    Rng stream(11);
    std::vector<Addr> vaddrs;
    for (int i = 0; i < 300; ++i)
        vaddrs.push_back(a.l1().layout().compose(
            static_cast<unsigned>(stream.below(8)),
            1 + stream.below(16)));

    BatchAccessResult viaScalar;
    viaScalar.accesses = vaddrs.size();
    for (Addr va : vaddrs) {
        const auto r = a.access(0, space.translate(va), false);
        viaScalar.l1Hits += r.l1Hit ? 1 : 0;
        viaScalar.l1DirtyEvictions += r.l1VictimDirty ? 1 : 0;
        viaScalar.totalLatency += r.latency;
    }
    const auto viaBatch = b.accessBatch(0, space, vaddrs, false);
    EXPECT_EQ(viaScalar.l1Hits, viaBatch.l1Hits);
    EXPECT_EQ(viaScalar.l1DirtyEvictions, viaBatch.l1DirtyEvictions);
    EXPECT_EQ(viaScalar.totalLatency, viaBatch.totalLatency);
}

} // namespace
} // namespace wb::sim
