/**
 * @file
 * Many-tenant harness tests (chan/tenant.hh): a small sweep on the
 * sliced presets end-to-end (discovery through decode), determinism,
 * the unsliced degenerate case, and the forced-collision regime.
 * The full scaling curves live in examples/tenant_scaling.cpp.
 */

#include <gtest/gtest.h>

#include "chan/tenant.hh"
#include "stat_assert.hh"

namespace wb::chan
{
namespace
{

TEST(TenantSweep, SmallSlicedSweepDiscoversAndTransmits)
{
    TenantSweepConfig cfg;
    cfg.usePlatform("dc-sliced-16core");
    cfg.pairs = 8;
    cfg.seed = 5;
    const TenantSweepResult res = runTenantSweep(cfg);

    ASSERT_EQ(res.pairs.size(), 8u);
    // Every pair runs the full pipeline blind; on a quiet socket all
    // of them should come up with verified sets and full sender pools.
    EXPECT_EQ(res.discovered, 8u);
    for (const TenantPairResult &p : res.pairs) {
        EXPECT_NE(p.senderCore, p.receiverCore);
        EXPECT_LT(p.slice, cfg.platform.llcSlices);
        EXPECT_GT(p.discoveryTests, 0u);
        EXPECT_EQ(p.senderLineCount, cfg.d);
    }
    // Non-colliding pairs on an otherwise idle socket decode cleanly.
    EXPECT_LT(res.meanBerClean, 0.05);
    EXPECT_GT(res.aggregateBitsPerSlot, 0.0);
    EXPECT_GT(res.aggregateKbps, 0.0);
    // The signaling phases exercised the directory; a global scan
    // would have probed strictly more private pairs.
    EXPECT_GT(res.coherence.backInvalEvents, 0u);
    EXPECT_LT(res.coherence.privateProbes, res.scanProbeEquivalent);
}

TEST(TenantSweep, IsDeterministicForAConfig)
{
    TenantSweepConfig cfg;
    cfg.usePlatform("dc-sliced-16core");
    cfg.pairs = 6;
    cfg.payloadBits = 48;
    cfg.seed = 11;
    const TenantSweepResult a = runTenantSweep(cfg);
    const TenantSweepResult b = runTenantSweep(cfg);
    ASSERT_EQ(a.pairs.size(), b.pairs.size());
    for (std::size_t i = 0; i < a.pairs.size(); ++i) {
        EXPECT_EQ(a.pairs[i].targetSet, b.pairs[i].targetSet);
        EXPECT_EQ(a.pairs[i].slice, b.pairs[i].slice);
        EXPECT_EQ(a.pairs[i].ber, b.pairs[i].ber);
        EXPECT_EQ(a.pairs[i].discoveryTests, b.pairs[i].discoveryTests);
    }
    EXPECT_EQ(a.meanBer, b.meanBer);
    EXPECT_EQ(a.aggregateBitsPerSlot, b.aggregateBitsPerSlot);
    EXPECT_EQ(a.coherence.privateProbes, b.coherence.privateProbes);
}

TEST(TenantSweep, WorksOnAnUnslicedPreset)
{
    // slices = 1 degenerates the harness to the classic monolithic
    // LLC: every candidate is congruent, discovery is trivial, and
    // the channel must still decode.
    TenantSweepConfig cfg;
    cfg.usePlatform("desktop-inclusive-4core");
    cfg.pairs = 2;
    cfg.seed = 3;
    const TenantSweepResult res = runTenantSweep(cfg);
    ASSERT_EQ(res.pairs.size(), 2u);
    EXPECT_EQ(res.discovered, 2u);
    for (const TenantPairResult &p : res.pairs)
        EXPECT_EQ(p.slice, 0u);
    EXPECT_LT(res.meanBerClean, 0.05);
}

TEST(TenantSweep, ForcedCollisionsMarkEveryPair)
{
    // One admissible target set on an unsliced LLC: every pair lands
    // on the same slice-set, so all of them are flagged as colliding
    // and interference is unavoidable.
    TenantSweepConfig cfg;
    cfg.usePlatform("desktop-inclusive-4core");
    cfg.pairs = 4;
    cfg.targetSetRange = 1;
    cfg.seed = 9;
    const TenantSweepResult res = runTenantSweep(cfg);
    EXPECT_EQ(res.collidingPairs, 4u);
    for (const TenantPairResult &p : res.pairs)
        EXPECT_TRUE(p.collides);
}

TEST(TenantSweep, CleanPairsDecodeReliablyAcrossSeeds)
{
    // Statistical form of the clean-pair claim: pooled payload BER of
    // non-colliding pairs stays under 5% across >= 16 seeds.
    const auto sweep = test::sweepSeeds([](std::uint64_t seed) {
        TenantSweepConfig cfg;
        cfg.usePlatform("dc-sliced-16core");
        cfg.pairs = 6;
        cfg.payloadBits = 48;
        cfg.seed = seed;
        const TenantSweepResult res = runTenantSweep(cfg);
        double errBits = 0.0, bits = 0.0;
        for (const TenantPairResult &p : res.pairs) {
            if (p.collides)
                continue;
            errBits += p.ber * cfg.payloadBits;
            bits += cfg.payloadBits;
        }
        return test::Proportion{errBits, bits};
    });
    EXPECT_BER_BELOW(sweep, 0.05);
}

} // namespace
} // namespace wb::chan
