/**
 * @file
 * Unit tests for framing and decoding (chan/protocol.hh).
 */

#include <gtest/gtest.h>

#include "chan/protocol.hh"
#include "common/rng.hh"

namespace wb::chan
{
namespace
{

TEST(Protocol, RateKbpsMatchesPaper)
{
    ProtocolConfig cfg;
    cfg.encoding = Encoding::binary(1);
    cfg.ts = 1600;
    EXPECT_NEAR(cfg.rateKbps(), 1375.0, 0.5); // paper Sec. V
    cfg.ts = 800;
    EXPECT_NEAR(cfg.rateKbps(), 2750.0, 0.5);
    cfg.ts = 5500;
    EXPECT_NEAR(cfg.rateKbps(), 400.0, 0.5);
    cfg.encoding = Encoding::paperTwoBit();
    cfg.ts = 1000;
    EXPECT_NEAR(cfg.rateKbps(), 4400.0, 0.5); // multi-bit headline
    cfg.ts = 4000;
    EXPECT_NEAR(cfg.rateKbps(), 1100.0, 0.5); // paper Fig. 7
}

TEST(Protocol, SymbolsPerFrame)
{
    ProtocolConfig cfg;
    cfg.frameBits = 128;
    cfg.encoding = Encoding::binary(1);
    EXPECT_EQ(cfg.symbolsPerFrame(), 128u);
    cfg.encoding = Encoding::paperTwoBit();
    EXPECT_EQ(cfg.symbolsPerFrame(), 64u);
}

TEST(Protocol, FrameToLevels)
{
    const Encoding enc = Encoding::paperTwoBit();
    const auto levels = frameToLevels(fromBitString("00011011"), enc);
    ASSERT_EQ(levels.size(), 4u);
    EXPECT_EQ(levels[0], 0u);
    EXPECT_EQ(levels[1], 3u);
    EXPECT_EQ(levels[2], 5u);
    EXPECT_EQ(levels[3], 8u);
}

TEST(Protocol, ClassifyAllAndSymbolsToBits)
{
    Classifier cls({100.0, 200.0});
    const std::vector<double> lats{90, 210, 120, 180};
    const auto symbols = classifyAll(lats, cls);
    const BitVec bits = symbolsToBits(symbols, Encoding::binary(1));
    EXPECT_EQ(toBitString(bits), "0101");
}

/** Helper: encode a frame stream into a perfect latency sequence. */
std::vector<double>
perfectLatencies(const BitVec &frame, unsigned frames, double c0,
                 double c1, unsigned leadingZeros = 0)
{
    std::vector<double> lats(leadingZeros, c0);
    for (unsigned f = 0; f < frames; ++f)
        for (bool b : frame)
            lats.push_back(b ? c1 : c0);
    return lats;
}

TEST(Protocol, PerfectStreamDecodesToZeroBer)
{
    Rng rng(3);
    const BitVec frame = randomFrame(112, rng);
    const Classifier cls({100.0, 200.0});
    const auto lats = perfectLatencies(frame, 5, 100, 200, 17);
    auto dec = decodeTransmission(lats, cls, Encoding::binary(1), frame,
                                  5);
    EXPECT_TRUE(dec.aligned);
    EXPECT_EQ(dec.framesScored, 5u);
    EXPECT_DOUBLE_EQ(dec.ber, 0.0);
}

TEST(Protocol, FlippedBitsCountAsSubstitutions)
{
    Rng rng(5);
    const BitVec frame = randomFrame(112, rng);
    const Classifier cls({100.0, 200.0});
    auto lats = perfectLatencies(frame, 4, 100, 200);
    // Corrupt 6 samples placed strictly inside payload regions
    // (offsets 40 and 80 of frames 1..3; frames are 128 samples).
    const std::size_t flips[6] = {128 + 40, 128 + 80, 256 + 40,
                                  256 + 80, 384 + 40, 384 + 80};
    for (std::size_t idx : flips) {
        auto &v = lats[idx];
        v = (v > 150.0) ? 100.0 : 200.0;
    }
    auto dec = decodeTransmission(lats, cls, Encoding::binary(1), frame,
                                  4);
    EXPECT_TRUE(dec.aligned);
    EXPECT_NEAR(dec.ber, 6.0 / (4 * 112), 1e-9);
    EXPECT_EQ(dec.breakdown.substitutions, 6u);
}

TEST(Protocol, LostSampleIsAbsorbedByRelock)
{
    Rng rng(7);
    const BitVec frame = randomFrame(112, rng);
    const Classifier cls({100.0, 200.0});
    auto lats = perfectLatencies(frame, 6, 100, 200);
    // Drop one sample inside frame 2 (a slot slip).
    lats.erase(lats.begin() + 300);
    auto dec = decodeTransmission(lats, cls, Encoding::binary(1), frame,
                                  6);
    EXPECT_TRUE(dec.aligned);
    // One frame damaged (~2 edits), later frames re-lock cleanly.
    EXPECT_LT(dec.ber, 0.01);
    EXPECT_GE(dec.framesScored, 5u);
}

TEST(Protocol, BigSlipIsAbsorbed)
{
    Rng rng(9);
    const BitVec frame = randomFrame(112, rng);
    const Classifier cls({100.0, 200.0});
    auto lats = perfectLatencies(frame, 8, 100, 200);
    // A preemption: 12 samples lost mid-stream.
    lats.erase(lats.begin() + 500, lats.begin() + 512);
    auto dec = decodeTransmission(lats, cls, Encoding::binary(1), frame,
                                  8);
    EXPECT_TRUE(dec.aligned);
    EXPECT_LT(dec.ber, 0.05);
}

TEST(Protocol, GarbageNeverAligns)
{
    const Classifier cls({100.0, 200.0});
    const std::vector<double> lats(1000, 100.0); // all zero bits
    Rng rng(11);
    BitVec frame = randomFrame(112, rng);
    auto dec = decodeTransmission(lats, cls, Encoding::binary(1), frame,
                                  5);
    EXPECT_FALSE(dec.aligned);
    EXPECT_DOUBLE_EQ(dec.ber, 1.0);
}

TEST(Protocol, MultiBitDecodes)
{
    Rng rng(13);
    const Encoding enc = Encoding::paperTwoBit();
    BitVec frame = randomFrame(240, rng); // 256 bits = 128 symbols
    Classifier cls({100.0, 133.0, 155.0, 188.0});
    std::vector<double> lats;
    const auto levels = frameToLevels(frame, enc);
    for (unsigned f = 0; f < 3; ++f) {
        for (unsigned lvl : levels) {
            const double c = lvl == 0 ? 100.0
                : lvl == 3           ? 133.0
                : lvl == 5           ? 155.0
                                     : 188.0;
            lats.push_back(c);
        }
    }
    auto dec = decodeTransmission(lats, cls, enc, frame, 3);
    EXPECT_TRUE(dec.aligned);
    EXPECT_DOUBLE_EQ(dec.ber, 0.0);
    EXPECT_EQ(dec.framesScored, 3u);
}

TEST(Protocol, FrameToLevelsRejectsRaggedFrame)
{
    const Encoding enc = Encoding::paperTwoBit();
    EXPECT_EXIT((void)frameToLevels(fromBitString("001"), enc),
                ::testing::ExitedWithCode(1), "not divisible");
}

} // namespace
} // namespace wb::chan
