/**
 * @file
 * Degraded-observer tests (sim/observer.hh, chan/degraded.hh): the
 * cycle-accurate path's bit-exact equivalence pin, the observer choke
 * point's quantization guarantees, the pending-write-back flush model,
 * and the three observer classes' end-to-end channel behaviour.
 *
 * Every BER claim is a pooled multi-seed statistical assertion
 * (tests/stat_assert.hh): the Wilson bound of the error proportion
 * over >= 16 seeds must clear the threshold, so no expectation rests
 * on one lucky trajectory.
 */

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "baselines/flush_channels.hh"
#include "chan/channel.hh"
#include "chan/degraded.hh"
#include "sim/hierarchy.hh"
#include "sim/observer.hh"
#include "sim/smt_core.hh"
#include "stat_assert.hh"
#include "chan/set_mapping.hh"

namespace wb::chan
{
namespace
{

/** FNV-1a over the raw bit patterns of a latency vector. */
std::uint64_t
fnvLatencies(const std::vector<double> &v)
{
    std::uint64_t h = 1469598103934665603ull;
    for (double d : v) {
        std::uint64_t bits;
        std::memcpy(&bits, &d, sizeof bits);
        for (int i = 0; i < 8; ++i) {
            h ^= (bits >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    }
    return h;
}

/**
 * One run's error proportion, with unlocated frames counted half
 * wrong (same convention as test_channel.cc: a frame the decoder
 * never found carries no information, the 50%-BER regime).
 */
test::Proportion
berProportion(const ChannelResult &res, const ChannelConfig &cfg)
{
    const double payload = cfg.protocol.frameBits - 16;
    const double expected = res.framesExpected * payload;
    const double scored = res.framesScored * payload;
    return {res.ber * scored + 0.5 * (expected - scored), expected};
}

test::ProportionSweep
berSweep(ChannelConfig cfg, unsigned seeds = test::ProportionSweep::kMinRuns)
{
    return test::sweepSeeds(
        [cfg](std::uint64_t seed) mutable {
            cfg.seed = seed;
            return berProportion(runChannel(cfg), cfg);
        },
        seeds);
}

// ------------------------------------------------------------------
// Equivalence pin: the default (cycle-accurate) observer path must be
// bit-identical to the pre-observer implementation. The constants
// below were captured from the tree *before* the observer layer was
// introduced; any drift in RNG draw order, quantization, scheduling
// or calibration on the legacy path trips this.
// ------------------------------------------------------------------

TEST(ObserverEquivalence, XeonDefaultPathBitIdentical)
{
    ChannelConfig cfg;
    cfg.protocol.frameBits = 32;
    cfg.protocol.frames = 2;
    cfg.seed = 7;
    const ChannelResult r = runChannel(cfg);
    EXPECT_EQ(r.ber, 0.0);
    EXPECT_EQ(r.simulatedCycles, 644251u);
    EXPECT_EQ(r.latencies.size(), 115u);
    EXPECT_EQ(fnvLatencies(r.latencies), 2371547489955050502ull);
    ASSERT_GE(r.calibrationMedians.size(), 2u);
    EXPECT_DOUBLE_EQ(r.calibrationMedians[0], 142.14550680188228);
    EXPECT_DOUBLE_EQ(r.calibrationMedians[1], 154.06509472101021);
    EXPECT_EQ(r.receiverCounters.l1DirtyWritebacks, 26u);
    EXPECT_EQ(r.repetition, 1u);
    EXPECT_TRUE(r.evictionDiscoveryVerified);
}

TEST(ObserverEquivalence, DesktopNoisyPathBitIdentical)
{
    ChannelConfig cfg;
    cfg.usePlatform("desktop-inclusive");
    cfg.protocol.frameBits = 32;
    cfg.protocol.frames = 2;
    cfg.seed = 11;
    cfg.noiseProcesses = 2;
    const ChannelResult r = runChannel(cfg);
    EXPECT_DOUBLE_EQ(r.ber, 0.1875);
    EXPECT_EQ(r.simulatedCycles, 646104u);
    EXPECT_EQ(r.latencies.size(), 115u);
    EXPECT_EQ(fnvLatencies(r.latencies), 4715321621082035715ull);
    ASSERT_GE(r.calibrationMedians.size(), 2u);
    EXPECT_DOUBLE_EQ(r.calibrationMedians[0], 162.02829594941409);
    EXPECT_DOUBLE_EQ(r.calibrationMedians[1], 173.96812451193378);
    EXPECT_EQ(r.receiverCounters.l1DirtyWritebacks, 28u);
}

TEST(ObserverEquivalence, DefaultPlanIsIdentity)
{
    ChannelConfig cfg;
    const DegradedPlan plan = planDegraded(cfg);
    EXPECT_EQ(plan.repetition, 1u);
    EXPECT_EQ(plan.cfg.protocol.ts, cfg.protocol.ts);
    EXPECT_EQ(plan.cfg.protocol.tr, cfg.protocol.tr);
    EXPECT_EQ(plan.cfg.senderStartSlots, cfg.senderStartSlots);
    EXPECT_EQ(plan.cfg.calibration.measurements,
              cfg.calibration.measurements);
    EXPECT_EQ(plan.cfg.platform.lat.flushWbDrainExtra, 0u);
}

// ------------------------------------------------------------------
// The observeDuration choke point.
// ------------------------------------------------------------------

TEST(ObserveDuration, DefaultObserverIsIdentityAndDrawsNothing)
{
    Rng rng(42), reference(42);
    EXPECT_EQ(sim::observeDuration(123.375, 1, 0.0, rng), 123.375);
    EXPECT_EQ(sim::observeDuration(0.0, 0, 0.0, rng), 0.0);
    // No RNG draws were consumed: the next value matches a fresh
    // stream from the same seed.
    EXPECT_EQ(rng.uniform(), reference.uniform());
}

TEST(ObserveDuration, QuantizesToNeighbouringGranuleMultiples)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double obs = sim::observeDuration(250.0, 100, 0.0, rng);
        EXPECT_EQ(std::fmod(obs, 100.0), 0.0);
        EXPECT_TRUE(obs == 200.0 || obs == 300.0) << obs;
    }
}

TEST(ObserveDuration, DitheredQuantizationIsUnbiased)
{
    // floor((phase + d) / g) * g with uniform phase has expectation
    // exactly d; the sample mean over n draws has se = (g/sqrt(12)) /
    // sqrt(n) ~= 0.2 here, so a 1.5-cycle tolerance is ~7 sigma.
    Rng rng(123);
    const double d = 137.0;
    const int n = 20000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += sim::observeDuration(d, 100, 0.0, rng);
    EXPECT_NEAR(sum / n, d, 1.5);
}

// ------------------------------------------------------------------
// Quantization-bypass regression: under a coarse-timer observer,
// *every* observer-visible number — live receiver samples and offline
// calibration centroids alike — must be a granule multiple. Before
// the choke point the offline measurement helpers differenced raw
// virtual time, so calibration leaked cycle-accurate centroids a
// decoder could classify against.
// ------------------------------------------------------------------

TEST(CoarseTimerRegression, AllObservablesAreGranuleMultiples)
{
    constexpr double g = 512.0;
    ChannelConfig cfg;
    cfg.noise = sim::NoiseModel::quiet();
    cfg.platform.lat.noiseSigma = 0.0;
    cfg.noise.observer = sim::ObserverModel::sandboxTimer(512);
    cfg.protocol.encoding = Encoding::binary(8);
    cfg.protocol.frameBits = 32;
    cfg.protocol.frames = 2;
    cfg.protocol.repetitionOverride = 1; // no amplification
    cfg.seed = 3;
    const ChannelResult res = runChannel(cfg);
    ASSERT_FALSE(res.latencies.empty());
    for (double lat : res.latencies)
        EXPECT_EQ(std::fmod(lat, g), 0.0) << lat;
    for (double m : res.calibrationMedians)
        EXPECT_EQ(std::fmod(m, g), 0.0) << m;
}

TEST(CoarseTimerRegression, UnamplifiedCoarseRunCannotBeDecoded)
{
    // The d2 = 8 signal is 96 cycles; one 512-cycle-granule sample
    // carries ~1/5 granule of signal, so with the repetition decoder
    // forced off no classifier input exists that recovers the frame —
    // the pooled error proportion stays in the coin-flip regime.
    ChannelConfig cfg;
    cfg.noise = sim::NoiseModel::quiet();
    cfg.platform.lat.noiseSigma = 0.0;
    cfg.noise.observer = sim::ObserverModel::sandboxTimer(512);
    cfg.protocol.encoding = Encoding::binary(8);
    cfg.protocol.frameBits = 32;
    cfg.protocol.frames = 2;
    cfg.protocol.repetitionOverride = 1;
    EXPECT_BER_ABOVE(berSweep(cfg), 0.30);
}

// ------------------------------------------------------------------
// The pending-write-back flush model (Flushgeist's observable).
// ------------------------------------------------------------------

TEST(PendingWriteback, FlushDrainsQueuedDirtyEvictionsOnce)
{
    sim::HierarchyParams params = sim::xeonE5_2650Params();
    params.lat.noiseSigma = 0.0;
    sim::HierarchyParams drained = params;
    drained.lat.flushWbDrainExtra = 9;

    Rng rngA(1), rngB(1);
    sim::Hierarchy plain(params, &rngA);
    sim::Hierarchy model(drained, &rngB);

    // Dirty two ways past associativity in one set: the overflow
    // stores evict dirty victims, which queue as pending write-backs.
    const auto lines = linesForSet(plain.l1().layout(), /*set=*/5,
                                   plain.params().l1.ways + 2,
                                   /*tagBase=*/0x40);
    for (Addr va : lines) {
        (void)plain.access(0, va, /*isWrite=*/true);
        (void)model.access(0, va, /*isWrite=*/true);
    }
    EXPECT_EQ(plain.pendingDirtyWritebacks(), 0u); // tracking off
    const std::uint64_t pending = model.pendingDirtyWritebacks();
    EXPECT_EQ(pending, 2u);

    // The next flush pays the drain once, then the queue is empty.
    const Cycles base = plain.flush(0, lines[0]);
    const Cycles drainedCost = model.flush(0, lines[0]);
    EXPECT_EQ(drainedCost, base + 9 * pending);
    EXPECT_EQ(model.pendingDirtyWritebacks(), 0u);
    EXPECT_EQ(model.flush(0, lines[1]), plain.flush(0, lines[1]));
}

TEST(PendingWriteback, QueueIsCapped)
{
    sim::HierarchyParams params = sim::xeonE5_2650Params();
    params.lat.noiseSigma = 0.0;
    params.lat.flushWbDrainExtra = 9;
    Rng rng(1);
    sim::Hierarchy h(params, &rng);
    const auto lines = linesForSet(h.l1().layout(), /*set=*/5,
                                   h.params().l1.ways + 40,
                                   /*tagBase=*/0x40);
    for (Addr va : lines)
        (void)h.access(0, va, /*isWrite=*/true);
    EXPECT_EQ(h.pendingDirtyWritebacks(), sim::Hierarchy::kPendingWbCap);
}

// ------------------------------------------------------------------
// Observer class (i): coarse µs timer + repetition amplification.
// ------------------------------------------------------------------

TEST(CoarseTimerChannel, MicrosecondTimerRecoversChannelViaRepetition)
{
    // The Spy-in-the-Sandbox regime: ~1 µs timer floor against the
    // 96-cycle d2 = 8 signal. The plan must size a repetition factor
    // in the hundreds-to-thousands, and the amplified decode must
    // bring the pooled BER down to the clean-channel regime while the
    // reported rate honestly divides by R.
    ChannelConfig cfg;
    cfg.noise.observer = sim::ObserverModel::sandboxTimer();
    cfg.protocol.encoding = Encoding::binary(8);
    cfg.protocol.frameBits = 32;
    cfg.protocol.frames = 2;
    EXPECT_BER_BELOW(berSweep(cfg), 0.05);

    cfg.seed = 7;
    const ChannelResult res = runChannel(cfg);
    EXPECT_GE(res.repetition, 2u);
    EXPECT_LE(res.repetition, kMaxRepetition);
    EXPECT_GT(res.goodputKbps, 0.0);
    // Amplification cost is real: effective rate far below the raw
    // ~333 kbps slot rate at the granule-aligned Ts.
    EXPECT_LT(res.rateKbps, 5.0);
}

// ------------------------------------------------------------------
// Observer class (ii): flush-latency (Flushgeist) receiver.
// ------------------------------------------------------------------

TEST(FlushLatencyChannel, MatchesLoadTimingBerOnInclusivePreset)
{
    ChannelConfig load;
    load.usePlatform("desktop-inclusive");
    load.protocol.frameBits = 32;
    load.protocol.frames = 4;

    ChannelConfig flush = load;
    flush.noise.observer = sim::ObserverModel::flushLatency();

    // Both receivers must sit in the same clean-channel regime on the
    // inclusive preset — the dirty state is readable through either
    // primitive (observed pooled rates ~1.5-2% under realistic noise).
    EXPECT_BER_BELOW(berSweep(load), 0.05);
    EXPECT_BER_BELOW(berSweep(flush), 0.05);
}

TEST(FlushLatencyChannel, RequiresFlushPrimitive)
{
    ChannelConfig cfg;
    cfg.noise.observer = sim::ObserverModel::flushLatency();
    cfg.noise.observer.hasFlush = false;
    EXPECT_EXIT((void)runChannel(cfg), ::testing::ExitedWithCode(1),
                "hasFlush=false");
}

// ------------------------------------------------------------------
// Observer class (iii): eviction-only (no flush instruction).
// ------------------------------------------------------------------

TEST(EvictionOnlyChannel, WbChannelSurvivesWithDiscoveredSets)
{
    ChannelConfig cfg;
    cfg.noise.observer = sim::ObserverModel::evictionOnly();
    cfg.protocol.frameBits = 32;
    cfg.protocol.frames = 4;
    EXPECT_BER_BELOW(berSweep(cfg), 0.05);

    // Set discovery itself must succeed (verified-minimal reductions)
    // on essentially every seed: 32/32 puts the Wilson lower bound at
    // ~0.83.
    const auto discovery = test::sweepSeeds(
        [cfg](std::uint64_t seed) {
            ChannelConfig c = cfg;
            c.seed = seed;
            const ChannelResult res = runChannel(c);
            return test::Proportion{
                res.evictionDiscoveryVerified ? 1.0 : 0.0, 1.0};
        },
        32);
    EXPECT_ACCURACY_ABOVE(discovery, 0.75);
}

TEST(EvictionOnlyChannel, FlushFamilyBaselinesAreDenied)
{
    baselines::BaselineConfig cfg;
    cfg.noise.observer = sim::ObserverModel::evictionOnly();
    EXPECT_FALSE(baselines::flushChannelAvailable(cfg));
    EXPECT_EXIT((void)baselines::runFlushChannel(
                    cfg, baselines::FlushKind::FlushReload),
                ::testing::ExitedWithCode(1), "denied");
    EXPECT_EXIT((void)baselines::runFlushChannel(
                    cfg, baselines::FlushKind::CoherenceState),
                ::testing::ExitedWithCode(1), "denied");

    baselines::BaselineConfig allowed;
    EXPECT_TRUE(baselines::flushChannelAvailable(allowed));
}

/** A program that issues one clflush and halts. */
struct FlushOnceProgram : sim::Program
{
    bool issued = false;

    std::optional<sim::MemOp>
    next(sim::ProcView &) override
    {
        if (!issued) {
            issued = true;
            return sim::MemOp::flush(0x1000);
        }
        return sim::MemOp::halt();
    }

    void
    onResult(const sim::MemOp &, const sim::OpResult &,
             sim::ProcView &) override
    {
    }
};

TEST(EvictionOnlyChannel, SmtCoreRefusesFlushOps)
{
    // Defense in depth below the baseline-level guard: any program
    // that reaches the core with a Flush op under a flushless
    // observer dies loudly instead of silently using a primitive the
    // observer does not have.
    sim::HierarchyParams params = sim::xeonE5_2650Params();
    sim::NoiseModel noise;
    noise.observer = sim::ObserverModel::evictionOnly();
    EXPECT_EXIT(
        {
            Rng rng(1);
            sim::Hierarchy hierarchy(params, &rng);
            sim::SmtCore core(hierarchy, noise, rng);
            FlushOnceProgram prog;
            core.addThread(&prog, sim::AddressSpace(1), 0);
            core.run(100000);
        },
        ::testing::ExitedWithCode(1), "hasFlush=false");
}

} // namespace
} // namespace wb::chan
