/**
 * @file
 * Unit tests for the deterministic RNG (common/rng.hh).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hh"
#include "sim/scheduler.hh"

namespace wb
{
namespace
{

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(7);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= (v == -3);
        sawHi |= (v == 3);
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-0.5));
        EXPECT_TRUE(rng.chance(1.5));
    }
}

TEST(Rng, ChanceFrequency)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        if (rng.chance(0.3))
            ++hits;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(19);
    double sum = 0, sq = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(23);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(29);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double e = rng.exponential(100.0);
        ASSERT_GE(e, 0.0);
        sum += e;
    }
    EXPECT_NEAR(sum / n, 100.0, 3.0);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(31);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    auto orig = v;
    rng.shuffle(v);
    auto sorted = v;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, orig);
}

TEST(Rng, ShuffleActuallyShuffles)
{
    Rng rng(37);
    std::vector<int> v(64);
    for (int i = 0; i < 64; ++i)
        v[i] = i;
    const auto orig = v;
    rng.shuffle(v);
    EXPECT_NE(v, orig); // P(identity) = 1/64! ~ 0
}

TEST(Rng, SplitIndependence)
{
    Rng root(41);
    Rng a = root.split();
    Rng b = root.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, FlipBalance)
{
    Rng rng(43);
    int heads = 0;
    for (int i = 0; i < 20000; ++i)
        if (rng.flip())
            ++heads;
    EXPECT_NEAR(heads / 20000.0, 0.5, 0.02);
}

TEST(Rng, ReseedMatchesFreshConstruction)
{
    Rng used(99);
    for (int i = 0; i < 1000; ++i)
        used.next();
    (void)used.gaussian(); // leave a Marsaglia spare behind

    used.reseed(99);
    Rng fresh(99);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(used.next(), fresh.next()) << "draw " << i;
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(used.gaussian(), fresh.gaussian()) << "gaussian " << i;
}

TEST(Rng, CoRunnerStreamsRederiveFromMasterSeed)
{
    // The scheduler's co-runner noise streams are pure functions of
    // (masterSeed, index): an Rng seeded with the derived value and a
    // reseeded one must replay the identical stream, and distinct
    // indexes must not collide — the property Scheduler::reseed()
    // and the reseed-reproducibility sweeps rely on.
    const std::uint64_t master = 0xfeedULL;
    Rng fresh(sim::coRunnerSeed(master, 3));
    Rng reseeded(12345);
    for (int i = 0; i < 100; ++i)
        reseeded.next();
    (void)reseeded.gaussian(); // leave a Marsaglia spare behind
    reseeded.reseed(sim::coRunnerSeed(master, 3));
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(fresh.next(), reseeded.next()) << "draw " << i;

    Rng other(sim::coRunnerSeed(master, 4));
    Rng fresh2(sim::coRunnerSeed(master, 3));
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (fresh2.next() == other.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, DiscardCachedDeviatesRefillsFromCurrentStream)
{
    // A reseeded generator paired with discardCachedDeviates() must
    // reproduce the cached-deviate stream of a fresh Rng; without the
    // discard, stale deviates from before the reseed leak through
    // (the Hierarchy::resetAll() regression this API exists for).
    Rng used(7);
    for (int i = 0; i < 100; ++i)
        used.gaussianCached(); // consume part of a prefetched block

    used.reseed(7);
    used.discardCachedDeviates();
    Rng fresh(7);
    for (int i = 0; i < 300; ++i)
        EXPECT_EQ(used.gaussianCached(), fresh.gaussianCached())
            << "deviate " << i;
}

} // namespace
} // namespace wb
