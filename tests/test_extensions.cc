/**
 * @file
 * Tests for the beyond-the-paper extensions: the L2-level channel
 * (Sec. III's unevaluated claim), multi-set bandwidth striping, the
 * perf-counter detector experiment, and the Hamming(7,4) FEC layer.
 */

#include <gtest/gtest.h>

#include "chan/fec.hh"
#include "chan/l2_channel.hh"
#include "chan/multiset.hh"
#include "perfmon/detector.hh"

namespace wb
{
namespace
{

// ---------------------------------------------------------------- L2

TEST(L2Channel, SetsAreConsistent)
{
    sim::AddressLayout l1(64), l2(512);
    auto sets = chan::makeL2Sets(l1, l2, 137, 8, 10, 12);
    ASSERT_EQ(sets.senderLines.size(), 8u);
    ASSERT_EQ(sets.pushers.size(), 10u);
    for (Addr a : sets.senderLines) {
        EXPECT_EQ(l2.setIndex(a), 137u);
        EXPECT_EQ(l1.setIndex(a), 137u % 64);
    }
    for (Addr a : sets.replacementA)
        EXPECT_EQ(l2.setIndex(a), 137u);
    // Pushers share the L1 set but never the target L2 set.
    for (Addr a : sets.pushers) {
        EXPECT_EQ(l1.setIndex(a), 137u % 64);
        EXPECT_NE(l2.setIndex(a), 137u);
    }
}

TEST(L2Channel, TransmitsAtModerateRate)
{
    chan::L2ChannelConfig cfg;
    cfg.frames = 8;
    cfg.seed = 3;
    auto res = chan::runL2Channel(cfg);
    EXPECT_TRUE(res.aligned);
    EXPECT_LT(res.ber, 0.05);
    // The L2-level signal is the L2 dirty-evict penalty per line.
    EXPECT_GT(res.calibrationMedians[1] - res.calibrationMedians[0],
              2.0 * cfg.d);
}

TEST(L2Channel, SignalScalesWithD)
{
    chan::L2ChannelConfig cfg;
    cfg.frames = 4;
    cfg.seed = 3;
    cfg.d = 2;
    auto small = chan::runL2Channel(cfg);
    cfg.d = 8;
    auto big = chan::runL2Channel(cfg);
    EXPECT_GT(big.calibrationMedians[1] - big.calibrationMedians[0],
              small.calibrationMedians[1] - small.calibrationMedians[0]);
}

TEST(L2Channel, SenderPaysForThePush)
{
    // The paper: deploying on L2 "requires more operations from the
    // sender" — visible as a much larger sender load count per bit.
    chan::L2ChannelConfig cfg;
    cfg.frames = 4;
    cfg.seed = 3;
    auto res = chan::runL2Channel(cfg);
    // Pusher sweeps: >= d * pusherLines loads per 1-bit.
    EXPECT_GT(res.senderCounters.loads,
              res.senderCounters.stores * cfg.pusherLines / 2);
}

// ---------------------------------------------------------- multiset

TEST(MultiSet, SingleSetMatchesBaseChannel)
{
    chan::MultiSetConfig cfg;
    cfg.setCount = 1;
    cfg.frames = 6;
    cfg.seed = 3;
    auto res = chan::runMultiSetChannel(cfg);
    EXPECT_TRUE(res.aligned);
    EXPECT_LT(res.ber, 0.08);
    EXPECT_NEAR(res.rateKbps, 400.0, 1.0);
}

TEST(MultiSet, FourSetsQuadrupleRate)
{
    chan::MultiSetConfig cfg;
    cfg.setCount = 4;
    cfg.frames = 6;
    cfg.seed = 3;
    auto res = chan::runMultiSetChannel(cfg);
    EXPECT_TRUE(res.aligned);
    EXPECT_NEAR(res.rateKbps, 1600.0, 1.0);
    EXPECT_LT(res.ber, 0.05);
    EXPECT_GT(res.goodputKbps, 1500.0);
}

TEST(MultiSet, SaturatesWhenChasesOverflowSlot)
{
    // k chases of ~230 cycles cannot fit a slot much smaller than
    // k * 250: BER must degrade noticeably vs. the comfortable case.
    chan::MultiSetConfig cfg;
    cfg.setCount = 8;
    cfg.frames = 6;
    cfg.seed = 3;
    cfg.ts = cfg.tr = 5500;
    auto ok = chan::runMultiSetChannel(cfg);
    cfg.ts = cfg.tr = 1700; // < 8 x chase
    auto sat = chan::runMultiSetChannel(cfg);
    EXPECT_GT(sat.ber, ok.ber + 0.05);
}

TEST(MultiSet, DeterministicPerSeed)
{
    chan::MultiSetConfig cfg;
    cfg.setCount = 2;
    cfg.frames = 3;
    cfg.seed = 11;
    auto a = chan::runMultiSetChannel(cfg);
    auto b = chan::runMultiSetChannel(cfg);
    EXPECT_EQ(a.ber, b.ber);
    EXPECT_EQ(a.latencies, b.latencies);
}

// ---------------------------------------------------------- detector

TEST(Detector, WorkloadNamesDistinct)
{
    EXPECT_NE(perfmon::workloadName(perfmon::Workload::WbChannel),
              perfmon::workloadName(perfmon::Workload::LruChannel));
}

TEST(Detector, WbChannelHidesUnderBenignFloor)
{
    using perfmon::Workload;
    const unsigned windows = 25;
    const Cycles windowCycles = 500000;
    auto wb = perfmon::collectTrace(Workload::WbChannel, windows,
                                    windowCycles, 7);
    auto benign = perfmon::collectTrace(Workload::CompilerPair, windows,
                                        windowCycles, 7);
    double wbMean = 0, benignMean = 0;
    for (const auto &f : wb)
        wbMean += f.writebacksPerKcycle;
    for (const auto &f : benign)
        benignMean += f.writebacksPerKcycle;
    wbMean /= windows;
    benignMean /= windows;
    // The covert channel's write-back rate sits 2+ orders of magnitude
    // below a benign compiler's — the Sec. VII stealth claim.
    EXPECT_LT(wbMean * 50, benignMean);
}

TEST(Detector, ThresholdTradeoffIsHopeless)
{
    using perfmon::Workload;
    std::vector<Workload> ws = {Workload::WbChannel,
                                Workload::CompilerPair};
    std::vector<std::vector<perfmon::WindowFeatures>> traces;
    for (auto w : ws)
        traces.push_back(perfmon::collectTrace(w, 25, 500000, 7));

    // A threshold low enough to alarm on the channel in >= half the
    // windows must alarm on essentially all benign-compiler windows.
    for (double thr : {0.01, 0.02, 0.04}) {
        auto rows = perfmon::thresholdDetector(traces, ws, thr);
        if (rows[0].alarmRate >= 0.5) {
            EXPECT_GT(rows[1].alarmRate, 0.9);
        }
    }
}

TEST(Detector, IdleIsSilent)
{
    auto idle = perfmon::collectTrace(perfmon::Workload::Idle, 10,
                                      200000, 3);
    for (const auto &f : idle) {
        EXPECT_EQ(f.writebacksPerKcycle, 0.0);
        EXPECT_LE(f.l1MissPerKcycle, 0.05); // stack-line cold misses only
    }
}

// --------------------------------------------------------------- FEC

TEST(Fec, RoundtripNoErrors)
{
    chan::HammingCode code(4);
    Rng rng(3);
    const BitVec data = randomBits(200, rng);
    const BitVec decoded = code.decode(code.encode(data));
    ASSERT_GE(decoded.size(), data.size());
    for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_EQ(decoded[i], data[i]) << i;
}

TEST(Fec, CorrectsSingleErrorPerWord)
{
    chan::HammingCode code(1); // no interleaving: direct words
    Rng rng(5);
    const BitVec data = randomBits(64, rng);
    BitVec coded = code.encode(data);
    // Flip exactly one bit in every 7-bit codeword.
    for (std::size_t w = 0; w * 7 < coded.size(); ++w) {
        const std::size_t pos = w * 7 + (w % 7);
        coded[pos] = !coded[pos];
    }
    const BitVec decoded = code.decode(coded);
    for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_EQ(decoded[i], data[i]) << i;
}

TEST(Fec, InterleavingAbsorbsBursts)
{
    Rng rng(7);
    const BitVec data = randomBits(400, rng);
    // A burst of 8 adjacent flips: fatal without interleaving,
    // harmless at depth 8.
    auto burstTrial = [&](unsigned depth) {
        chan::HammingCode code(depth);
        BitVec coded = code.encode(data);
        for (std::size_t i = 100; i < 108; ++i)
            coded[i] = !coded[i];
        const BitVec decoded = code.decode(coded);
        std::size_t wrong = 0;
        for (std::size_t i = 0; i < data.size(); ++i)
            if (decoded[i] != data[i])
                ++wrong;
        return wrong;
    };
    EXPECT_EQ(burstTrial(8), 0u);
    EXPECT_GT(burstTrial(1), 0u);
}

TEST(Fec, CodedLength)
{
    chan::HammingCode code(4);
    EXPECT_EQ(code.codedLength(4), 7u);
    EXPECT_EQ(code.codedLength(5), 14u); // pads to 8 data bits
    EXPECT_EQ(code.codedLength(400), 700u);
    EXPECT_DOUBLE_EQ(chan::HammingCode::rate(), 4.0 / 7.0);
}

TEST(Fec, ResidualBerImprovesOnChannelBer)
{
    chan::HammingCode code(8);
    // At p = 5% the code should cut the residual error rate hard.
    const double residual =
        chan::simulateResidualBer(code, 0.05, 20000, 11);
    EXPECT_LT(residual, 0.02);
    // At p = 0 it is perfect.
    EXPECT_DOUBLE_EQ(chan::simulateResidualBer(code, 0.0, 1000, 11),
                     0.0);
}

/** Residual-BER sweep (property: coding never makes p<=10% worse). */
class FecSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(FecSweep, NotWorseThanUncoded)
{
    const double p = GetParam() / 100.0;
    chan::HammingCode code(8);
    const double residual =
        chan::simulateResidualBer(code, p, 20000, 13);
    EXPECT_LE(residual, p + 0.01);
}

INSTANTIATE_TEST_SUITE_P(FlipProbs, FecSweep,
                         ::testing::Values(1, 2, 5, 8, 10));

} // namespace
} // namespace wb
