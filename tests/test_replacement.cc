/**
 * @file
 * Unit and property tests for the replacement policies
 * (sim/replacement.hh): the virtual single-set reference classes, the
 * flat PolicyTable hot path, and their bit-exact agreement.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "sim/replacement.hh"

namespace wb::sim
{
namespace
{

TEST(WayMask, Helpers)
{
    EXPECT_EQ(wayMaskAll(0), 0u);
    EXPECT_EQ(wayMaskAll(4), 0xfu);
    EXPECT_EQ(wayMaskAll(32), 0xffffffffu);
    EXPECT_EQ(wayMaskRange(2, 5), 0b11100u);
    EXPECT_EQ(wayMaskRange(0, 8), 0xffu);
    EXPECT_EQ(wayMaskRange(3, 3), 0u);
}

TEST(TrueLru, EvictsOldest)
{
    auto p = makePolicy(PolicyKind::TrueLru, 4, nullptr);
    for (unsigned w = 0; w < 4; ++w)
        p->onFill(w);
    // Way 0 is oldest.
    EXPECT_EQ(p->victim(wayMaskAll(4)), 0u);
    p->onHit(0);
    // Now way 1 is oldest.
    EXPECT_EQ(p->victim(wayMaskAll(4)), 1u);
}

TEST(TrueLru, FullTurnoverInWaysFills)
{
    // After W distinct fills, every original line would be gone:
    // victim choices never repeat within one sweep.
    auto p = makePolicy(PolicyKind::TrueLru, 8, nullptr);
    for (unsigned w = 0; w < 8; ++w)
        p->onFill(w);
    std::set<unsigned> victims;
    for (unsigned i = 0; i < 8; ++i) {
        const unsigned v = p->victim(wayMaskAll(8));
        victims.insert(v);
        p->onFill(v);
    }
    EXPECT_EQ(victims.size(), 8u);
}

TEST(TrueLru, RespectsCandidateMask)
{
    auto p = makePolicy(PolicyKind::TrueLru, 4, nullptr);
    for (unsigned w = 0; w < 4; ++w)
        p->onFill(w);
    EXPECT_EQ(p->victim(0b1100u), 2u); // oldest among eligible
}

TEST(TreePlru, PointsAwayFromRecentlyTouched)
{
    auto p = makePolicy(PolicyKind::TreePlru, 8, nullptr);
    for (unsigned w = 0; w < 8; ++w)
        p->onFill(w);
    // Way 7 was last touched; the victim must not be 7.
    EXPECT_NE(p->victim(wayMaskAll(8)), 7u);
}

TEST(TreePlru, VictimChangesAfterTouch)
{
    auto p = makePolicy(PolicyKind::TreePlru, 8, nullptr);
    for (unsigned w = 0; w < 8; ++w)
        p->onFill(w);
    const unsigned v1 = p->victim(wayMaskAll(8));
    p->onHit(v1); // touch the would-be victim
    const unsigned v2 = p->victim(wayMaskAll(8));
    EXPECT_NE(v1, v2);
}

TEST(TreePlru, RequiresPowerOfTwo)
{
    EXPECT_DEATH((void)makePolicy(PolicyKind::TreePlru, 6, nullptr),
                 "power-of-two");
}

TEST(PolicyTable, RequiresPowerOfTwoForTree)
{
    EXPECT_DEATH(PolicyTable(PolicyKind::TreePlru, 4, 6, nullptr),
                 "power-of-two");
}

TEST(PolicyTable, RejectsOversizedAssociativity)
{
    EXPECT_DEATH(PolicyTable(PolicyKind::TrueLru, 1, 33, nullptr),
                 "outside");
}

TEST(BitPlru, ResetsWhenAllMru)
{
    auto p = makePolicy(PolicyKind::BitPlru, 4, nullptr);
    for (unsigned w = 0; w < 4; ++w)
        p->onFill(w); // fourth fill clears others' MRU bits
    // Ways 0..2 cleared, way 3 still MRU: victim is way 0.
    EXPECT_EQ(p->victim(wayMaskAll(4)), 0u);
}

TEST(Nru, AgingFindsVictim)
{
    auto p = makePolicy(PolicyKind::Nru, 4, nullptr);
    for (unsigned w = 0; w < 4; ++w)
        p->onFill(w); // all "recent"
    // Aging pass must still return some way.
    const unsigned v = p->victim(wayMaskAll(4));
    EXPECT_LT(v, 4u);
}

TEST(Fifo, IgnoresHits)
{
    auto p = makePolicy(PolicyKind::Fifo, 4, nullptr);
    for (unsigned w = 0; w < 4; ++w)
        p->onFill(w);
    p->onHit(0);
    p->onHit(0); // hits must not refresh
    EXPECT_EQ(p->victim(wayMaskAll(4)), 0u);
}

TEST(RandomIid, UniformVictims)
{
    Rng rng(3);
    auto p = makePolicy(PolicyKind::RandomIid, 8, &rng);
    std::vector<unsigned> counts(8, 0);
    const int n = 8000;
    for (int i = 0; i < n; ++i)
        ++counts[p->victim(wayMaskAll(8))];
    for (unsigned w = 0; w < 8; ++w)
        EXPECT_NEAR(counts[w] / double(n), 0.125, 0.02);
}

TEST(RandomIid, RespectsMask)
{
    Rng rng(5);
    auto p = makePolicy(PolicyKind::RandomIid, 8, &rng);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(p->victim(1u << 5), 5u);
}

TEST(LfsrRandom, DeterministicFromReset)
{
    Rng rng(7);
    auto p = makePolicy(PolicyKind::LfsrRandom, 8, &rng);
    p->reset();
    std::vector<unsigned> first;
    for (int i = 0; i < 20; ++i)
        first.push_back(p->victim(wayMaskAll(8)));
    p->reset();
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(p->victim(wayMaskAll(8)), first[i]);
}

TEST(LfsrRandom, AccessesAdvanceState)
{
    Rng rng(9);
    auto p = makePolicy(PolicyKind::LfsrRandom, 8, &rng);
    p->reset();
    const unsigned v1 = p->victim(wayMaskAll(8));
    p->reset();
    p->onHit(0); // clocks the LFSR
    const unsigned v2 = p->victim(wayMaskAll(8));
    // With the x^15+x^14+1 LFSR, one step changes the low bits almost
    // always; allow equality only if the full 20-victim sequence also
    // shifted.
    if (v1 == v2) {
        p->reset();
        std::vector<unsigned> a, b;
        for (int i = 0; i < 20; ++i)
            a.push_back(p->victim(wayMaskAll(8)));
        p->reset();
        p->onHit(0);
        for (int i = 0; i < 20; ++i)
            b.push_back(p->victim(wayMaskAll(8)));
        EXPECT_NE(a, b);
    }
}

TEST(PolicyNames, AllDistinct)
{
    std::set<std::string> names;
    for (auto kind : allPolicies())
        names.insert(policyName(kind));
    EXPECT_EQ(names.size(), allPolicies().size());
}

/**
 * Property: for every policy, victim() always returns an eligible way,
 * under randomized access histories and randomized masks.
 */
class PolicyProperty
    : public ::testing::TestWithParam<std::tuple<PolicyKind, unsigned>>
{
};

TEST_P(PolicyProperty, VictimAlwaysEligible)
{
    const auto [kind, ways] = GetParam();
    if (kind == PolicyKind::TreePlru && (ways & (ways - 1)) != 0)
        GTEST_SKIP() << "TreePLRU requires power-of-two ways";
    Rng rng(1234 + ways);
    auto p = makePolicy(kind, ways, &rng);
    for (int iter = 0; iter < 500; ++iter) {
        const auto action = rng.below(3);
        if (action == 0) {
            p->onFill(static_cast<unsigned>(rng.below(ways)));
        } else if (action == 1) {
            p->onHit(static_cast<unsigned>(rng.below(ways)));
        } else {
            std::uint32_t mask = 0;
            for (unsigned w = 0; w < ways; ++w)
                if (rng.chance(0.5))
                    mask |= 1u << w;
            if (mask == 0)
                mask |= 1u << rng.below(ways);
            const unsigned v = p->victim(mask);
            ASSERT_LT(v, ways);
            ASSERT_TRUE((mask >> v) & 1u);
        }
    }
}

TEST_P(PolicyProperty, ResetIsReproducible)
{
    const auto [kind, ways] = GetParam();
    if (kind == PolicyKind::TreePlru && (ways & (ways - 1)) != 0)
        GTEST_SKIP();
    if (kind == PolicyKind::RandomIid || kind == PolicyKind::Srrip ||
        kind == PolicyKind::QuadAgeLru) {
        GTEST_SKIP() << "policy draws fresh randomness per victim";
    }
    Rng rng(99);
    auto p = makePolicy(kind, ways, &rng);
    auto run = [&]() {
        std::vector<unsigned> seq;
        for (unsigned i = 0; i < 2 * ways; ++i) {
            p->onFill(i % ways);
            seq.push_back(p->victim(wayMaskAll(ways)));
        }
        return seq;
    };
    p->reset();
    const auto a = run();
    p->reset();
    const auto b = run();
    EXPECT_EQ(a, b);
}

/**
 * Property: the flat PolicyTable and the virtual reference classes are
 * bit-identical — same ops, identically seeded Rngs, same victims.
 * Multiple sets are driven in an interleaved pattern to exercise the
 * table's per-set state separation.
 */
TEST_P(PolicyProperty, TableMatchesReference)
{
    const auto [kind, ways] = GetParam();
    if ((kind == PolicyKind::TreePlru || kind == PolicyKind::QuadAgeLru)
        && (ways & (ways - 1)) != 0) {
        GTEST_SKIP() << "tree policies require power-of-two ways";
    }
    const unsigned sets = 4;

    Rng tableRng(4242);
    Rng refRng(4242);
    PolicyTable table(kind, sets, ways, &tableRng);
    std::vector<std::unique_ptr<ReplacementPolicy>> refs;
    for (unsigned s = 0; s < sets; ++s)
        refs.push_back(makePolicy(kind, ways, &refRng));

    Rng opRng(7 + ways);
    for (int iter = 0; iter < 2000; ++iter) {
        const auto set = static_cast<unsigned>(opRng.below(sets));
        const auto action = opRng.below(4);
        if (action == 0) {
            const auto w = static_cast<unsigned>(opRng.below(ways));
            table.onFill(set, w);
            refs[set]->onFill(w);
        } else if (action == 1) {
            const auto w = static_cast<unsigned>(opRng.below(ways));
            table.onHit(set, w);
            refs[set]->onHit(w);
        } else if (action == 2) {
            std::uint32_t mask = 0;
            for (unsigned w = 0; w < ways; ++w)
                if (opRng.chance(0.5))
                    mask |= 1u << w;
            if (mask == 0)
                mask |= 1u << opRng.below(ways);
            ASSERT_EQ(table.victim(set, mask), refs[set]->victim(mask))
                << policyName(kind) << " ways=" << ways
                << " iter=" << iter;
        } else if (iter % 97 == 0) {
            // Occasional reset (rare so stateful histories build up).
            table.reset();
            for (auto &r : refs)
                r->reset();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyProperty,
    ::testing::Combine(::testing::ValuesIn(allPolicies()),
                       ::testing::Values(2u, 4u, 8u, 16u)));

} // namespace
} // namespace wb::sim
