/**
 * @file
 * Tests for the OS-noise scheduler (sim/scheduler.hh): determinism,
 * co-runner isolation (an inactive/empty scheduler is bit-identical
 * to the schedulerless path), migration correctness (a migrated
 * process keeps running and its dirty state stays reachable through
 * the coherence layer), and master-seed re-derivation of every noise
 * stream (the reseed half of the resetAll() contract).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chan/channel.hh"
#include "chan/cross_core.hh"
#include "common/rng.hh"
#include "sim/multicore.hh"
#include "sim/platform.hh"
#include "sim/scheduler.hh"

namespace wb::sim
{
namespace
{

void
expectCountersEqual(const PerfCounters &a, const PerfCounters &b,
                    const std::string &label)
{
    EXPECT_EQ(a.loads, b.loads) << label;
    EXPECT_EQ(a.stores, b.stores) << label;
    EXPECT_EQ(a.l1Hits, b.l1Hits) << label;
    EXPECT_EQ(a.l1Misses, b.l1Misses) << label;
    EXPECT_EQ(a.l2Hits, b.l2Hits) << label;
    EXPECT_EQ(a.llcHits, b.llcHits) << label;
    EXPECT_EQ(a.l1DirtyWritebacks, b.l1DirtyWritebacks) << label;
    EXPECT_EQ(a.llcDirtyEvictions, b.llcDirtyEvictions) << label;
    EXPECT_EQ(a.crossCoreSnoops, b.crossCoreSnoops) << label;
    EXPECT_EQ(a.spinLoads, b.spinLoads) << label;
}

void
expectCacheStateEqual(Cache &a, Cache &b, const std::string &label)
{
    ASSERT_EQ(a.numSets(), b.numSets()) << label;
    for (unsigned set = 0; set < a.numSets(); ++set) {
        const auto la = a.setContents(set);
        const auto lb = b.setContents(set);
        ASSERT_EQ(la.size(), lb.size()) << label;
        for (std::size_t w = 0; w < la.size(); ++w) {
            EXPECT_EQ(la[w].valid, lb[w].valid)
                << label << " set " << set << " way " << w;
            EXPECT_EQ(la[w].dirty, lb[w].dirty)
                << label << " set " << set << " way " << w;
            if (la[w].valid) {
                EXPECT_EQ(la[w].lineAddr, lb[w].lineAddr)
                    << label << " set " << set << " way " << w;
            }
        }
    }
}

/** A paced workload touching a few sets (sender-like state machine). */
std::vector<MemOp>
pacedTrace(const AddressLayout &layout, Cycles period, unsigned slots)
{
    std::vector<MemOp> ops;
    for (unsigned s = 0; s < slots; ++s) {
        for (unsigned i = 0; i < 4; ++i) {
            ops.push_back(MemOp::store(layout.compose(7, 1 + i)));
            ops.push_back(MemOp::load(layout.compose(21, 1 + i)));
        }
        ops.push_back(MemOp::spinUntil(Cycles(s + 1) * period));
    }
    return ops;
}

/**
 * Zero co-runners, no migration: driving the same programs through a
 * Scheduler must be bit-identical to the plain SmtCore/runCores path
 * — same counters, same latencies, same final cache state.
 */
TEST(Scheduler, CoRunnerIsolationSingleCore)
{
    const HierarchyParams hp = platform(kDefaultPlatform).params;
    const NoiseModel noise; // realistic: RNG draws must stay aligned

    Rng rngPlain(11), rngSched(11);
    Hierarchy plain(hp, &rngPlain);
    Hierarchy under(hp, &rngSched);

    SmtCore plainCore(plain, noise, rngPlain);
    SchedulerConfig cfg; // inactive: no co-runners, no migration
    cfg.coRunners.clear();
    Scheduler sched(static_cast<MemorySystem &>(under), noise, rngSched,
                    cfg, /*masterSeed=*/11);
    SmtCore &schedCore = sched.party(0);

    const auto ops = pacedTrace(plain.l1().layout(), 3000, 40);
    TraceProgram progPlain(ops), progSched(ops);
    plainCore.addThread(&progPlain, AddressSpace(1));
    schedCore.addThread(&progSched, AddressSpace(1));

    const Cycles endPlain = plainCore.run(1'000'000);
    const Cycles endSched = sched.run(1'000'000);

    EXPECT_EQ(endPlain, endSched);
    expectCountersEqual(plain.counters(0), under.counters(0), "tid0");
    expectCacheStateEqual(plain.l1(), under.l1(), "L1");
    expectCacheStateEqual(plain.l2(), under.l2(), "L2");
    expectCacheStateEqual(plain.llc(), under.llc(), "LLC");
    const SchedulerStats stats = sched.stats();
    EXPECT_EQ(stats.contextSwitches, 0u);
    EXPECT_EQ(stats.migrations, 0u);
    EXPECT_EQ(stats.pollutionAccesses, 0u);
    EXPECT_EQ(stats.coRunnerAccesses, 0u);
}

/**
 * End-to-end variant: a cross-core transmission whose scheduler is
 * active but whose only event (one migration) lies beyond the horizon
 * decodes bit-identically to the schedulerless run.
 */
TEST(Scheduler, NoFiredEventsMatchesSchedulerlessChannel)
{
    chan::CrossCoreChannelConfig base;
    base.usePlatform("desktop-inclusive-4core");
    base.protocol.frames = 2;
    base.seed = 5;

    chan::CrossCoreChannelConfig noEvents = base;
    noEvents.scheduler.migrationPeriod = Cycles(1) << 60; // never fires

    const auto plain = chan::runCrossCoreChannel(base);
    const auto sched = chan::runCrossCoreChannel(noEvents);
    EXPECT_EQ(plain.ber, sched.ber);
    EXPECT_EQ(plain.latencies, sched.latencies);
    EXPECT_EQ(plain.decodedBits, sched.decodedBits);
    EXPECT_EQ(sched.schedulerStats.migrations, 0u);
}

/** The full noise machinery is seed-deterministic, end to end. */
TEST(Scheduler, NoisyRunIsDeterministicPerSeed)
{
    chan::CrossCoreChannelConfig cfg;
    cfg.usePlatform("desktop-inclusive-4core");
    cfg.protocol.frames = 2;
    cfg.seed = 3;
    cfg.scheduler = platform("desktop-inclusive-4core").noisePreset;
    cfg.scheduler.coRunners = SchedulerConfig::mixOf(4);
    cfg.scheduler.migrationPeriod = 400'000;

    const auto a = chan::runCrossCoreChannel(cfg);
    const auto b = chan::runCrossCoreChannel(cfg);
    EXPECT_EQ(a.ber, b.ber);
    EXPECT_EQ(a.latencies, b.latencies);
    EXPECT_EQ(a.decodedBits, b.decodedBits);
    EXPECT_EQ(a.schedulerStats.contextSwitches,
              b.schedulerStats.contextSwitches);
    EXPECT_EQ(a.schedulerStats.migrations, b.schedulerStats.migrations);
    EXPECT_EQ(a.schedulerStats.pollutionAccesses,
              b.schedulerStats.pollutionAccesses);
    EXPECT_EQ(a.schedulerStats.coRunnerAccesses,
              b.schedulerStats.coRunnerAccesses);
    EXPECT_GT(a.schedulerStats.coRunnerAccesses, 0u);
    EXPECT_GT(a.schedulerStats.migrations, 0u);
}

/** Single-core channel under noise: deterministic, and counters flow. */
TEST(Scheduler, SingleCoreNoisyRunIsDeterministic)
{
    chan::ChannelConfig cfg;
    cfg.protocol.frames = 2;
    cfg.calibration.measurements = 40;
    cfg.seed = 8;
    cfg.scheduler = platform(kDefaultPlatform).noisePreset;
    cfg.scheduler.coRunners = SchedulerConfig::mixOf(2);

    const auto a = chan::runChannel(cfg);
    const auto b = chan::runChannel(cfg);
    EXPECT_EQ(a.ber, b.ber);
    EXPECT_EQ(a.latencies, b.latencies);
    EXPECT_GT(a.schedulerStats.contextSwitches, 0u);
    EXPECT_GT(a.schedulerStats.pollutionAccesses, 0u);
    EXPECT_GT(a.schedulerStats.coRunnerAccesses, 0u);
}

/**
 * Recorder that notes which level served each load (for the migration
 * test: post-migration loads must find pre-migration dirty state via
 * the coherence layer).
 */
class RecordingProgram : public Program
{
  public:
    explicit RecordingProgram(std::vector<MemOp> ops)
        : ops_(std::move(ops))
    {
    }

    std::optional<MemOp>
    next(ProcView &) override
    {
        if (pos_ >= ops_.size())
            return std::nullopt;
        return ops_[pos_++];
    }

    void
    onResult(const MemOp &op, const OpResult &res, ProcView &) override
    {
        if (op.kind == MemOp::Kind::Load ||
            op.kind == MemOp::Kind::Store) {
            results.push_back(res);
        }
    }

    std::vector<OpResult> results;

  private:
    std::vector<MemOp> ops_;
    std::size_t pos_ = 0;
};

/**
 * Migration correctness: a process whose front-end is forcibly moved
 * to another core keeps executing, its spin-stack translation is
 * re-derived, and the dirty line it wrote before the migration is
 * still observed afterwards — served by a cross-core snoop out of the
 * old core's privates, the coherence layer's job.
 */
TEST(Scheduler, VictimStateSurvivesForcedMigration)
{
    const Platform &plat = platform("desktop-inclusive-4core");
    Rng rng(21);
    MultiCoreSystem mc(plat.params, plat.cores, &rng);

    SchedulerConfig cfg;
    cfg.migrationPeriod = 50'000;
    cfg.timeslice = 0;
    Scheduler sched(mc, NoiseModel::quiet(), rng, cfg, /*masterSeed=*/21);
    SmtCore &fe = sched.party(1, /*migratable=*/true);

    const AddressLayout l1Layout(plat.params.l1.numSets());
    const Addr line = l1Layout.compose(9, 5);
    RecordingProgram prog({
        MemOp::store(line),             // dirty X on core 1
        MemOp::spinUntil(120'000),      // sail past two boundaries
        MemOp::load(line),              // reload X on the new core
        MemOp::halt(),
    });
    const ThreadId tid = fe.addThread(&prog, AddressSpace(4));

    sched.run(1'000'000);

    EXPECT_TRUE(fe.halted(tid));
    ASSERT_EQ(prog.results.size(), 2u);
    EXPECT_GE(sched.stats().migrations, 1u);
    EXPECT_NE(sched.coreOf(fe), 1u) << "front-end never moved";

    // The post-migration load missed the new core's cold privates and
    // was served by snooping the dirty copy out of core 1.
    EXPECT_FALSE(prog.results[1].l1Hit);
    PerfCounters merged;
    for (unsigned c = 0; c < mc.coreCount(); ++c)
        merged.merge(mc.counters(c, tid));
    EXPECT_EQ(merged.crossCoreSnoops, 1u);
    EXPECT_EQ(merged.stores, 1u);
    // The demand load plus the spin-wait's bookkeeping load (which
    // re-translated and re-faulted on the new core).
    EXPECT_EQ(merged.loads, 2u);
}

/**
 * Co-runner noise streams re-derive from the master seed: a scheduler
 * constructed with a different seed but reseed()-ed to the reference
 * seed reproduces the reference run bit-exactly.
 */
TEST(Scheduler, ReseedRederivesCoRunnerStreams)
{
    const Platform &plat = platform("desktop-inclusive-4core");
    SchedulerConfig cfg = plat.noisePreset;
    cfg.coRunners = SchedulerConfig::mixOf(3);

    auto runOnce = [&](std::uint64_t ctorSeed,
                       bool reseedTo5) -> std::vector<std::uint64_t> {
        Rng rng(5); // the run RNG is the caller's: held fixed here
        MultiCoreSystem mc(plat.params, plat.cores, &rng);
        Scheduler sched(mc, NoiseModel::quiet(), rng, cfg, ctorSeed);
        SmtCore &fe = sched.party(0);
        if (reseedTo5)
            sched.reseed(5);
        const AddressLayout l1Layout(plat.params.l1.numSets());
        TraceProgram prog(pacedTrace(l1Layout, 4000, 30));
        fe.addThread(&prog, AddressSpace(1));
        sched.run(300'000);
        std::vector<std::uint64_t> sig;
        const SchedulerStats stats = sched.stats();
        sig.push_back(stats.coRunnerAccesses);
        sig.push_back(stats.contextSwitches);
        sig.push_back(stats.pollutionAccesses);
        for (unsigned c = 0; c < mc.coreCount(); ++c) {
            const PerfCounters &ctr = mc.counters(c, 0);
            sig.push_back(ctr.loads);
            sig.push_back(ctr.l1Misses);
            sig.push_back(ctr.l1DirtyWritebacks);
            sig.push_back(ctr.llcDirtyEvictions);
            // Hash the final cache state: the co-runner streams leave
            // their random working-set choices in the lines resident
            // per core, which is what must match after a reseed.
            std::uint64_t hash = 1469598103934665603ULL;
            for (unsigned set = 0; set < mc.l1(c).numSets(); ++set) {
                for (const auto &line : mc.l1(c).setContents(set)) {
                    if (!line.valid)
                        continue;
                    hash ^= line.lineAddr * 2 + (line.dirty ? 1 : 0);
                    hash *= 1099511628211ULL;
                }
            }
            sig.push_back(hash);
        }
        return sig;
    };

    const auto reference = runOnce(5, false);
    const auto rederived = runOnce(999, true);
    const auto different = runOnce(999, false);
    EXPECT_EQ(reference, rederived)
        << "reseed(masterSeed) must re-derive every noise stream";
    EXPECT_NE(reference, different)
        << "a different master seed must change the noise streams";
}

/** The per-index stream derivation is stable and collision-free. */
TEST(Scheduler, CoRunnerSeedDerivation)
{
    EXPECT_EQ(coRunnerSeed(42, 0), coRunnerSeed(42, 0));
    EXPECT_NE(coRunnerSeed(42, 0), coRunnerSeed(42, 1));
    EXPECT_NE(coRunnerSeed(42, 0), coRunnerSeed(43, 0));

    // A reseeded CoRunnerProgram replays its stream from scratch.
    CoRunnerProgram a(CoRunnerKind::PointerChase, 32, 100,
                      coRunnerSeed(7, 2));
    CoRunnerProgram b(CoRunnerKind::PointerChase, 32, 100,
                      coRunnerSeed(9, 2));
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 64; ++i)
        first.push_back(a.nextRaw());
    b.reseed(coRunnerSeed(7, 2));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(b.nextRaw(), first[i]) << "draw " << i;
}

TEST(Scheduler, MixOfCyclesKinds)
{
    const auto mix = SchedulerConfig::mixOf(6);
    ASSERT_EQ(mix.size(), 6u);
    EXPECT_EQ(mix[0], CoRunnerKind::Streaming);
    EXPECT_EQ(mix[1], CoRunnerKind::PointerChase);
    EXPECT_EQ(mix[2], CoRunnerKind::RandomStore);
    EXPECT_EQ(mix[3], CoRunnerKind::Idle);
    EXPECT_EQ(mix[4], CoRunnerKind::Streaming);
    EXPECT_STREQ(coRunnerKindName(mix[2]), "random-store");
}

} // namespace
} // namespace wb::sim
