/**
 * @file
 * Tests for the remaining small pieces: table rendering, logging
 * helpers and the noise process program.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "chan/noise_process.hh"
#include "chan/set_mapping.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "sim/smt_core.hh"

namespace wb
{
namespace
{

TEST(Table, RendersAlignedColumns)
{
    Table t("Demo");
    t.header({"name", "value"});
    t.row({"alpha", "1"});
    t.row({"b", "22222"});
    t.note("a note");
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("Demo"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22222"), std::string::npos);
    EXPECT_NE(out.find("* a note"), std::string::npos);
    // Columns align: "value" and "1" start at the same offset.
    const auto headerLine = out.find("name");
    const auto valueCol = out.find("value") - headerLine;
    const auto alphaLine = out.find("alpha");
    EXPECT_EQ(out.find('1', alphaLine) - alphaLine, valueCol);
}

TEST(Table, NumAndPct)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::pct(0.943, 1), "94.3%");
    EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Table, RowsWiderThanHeader)
{
    Table t;
    t.header({"a"});
    t.row({"x", "extra"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("extra"), std::string::npos);
}

TEST(Banner, Prints)
{
    std::ostringstream os;
    banner(os, "Phase 1");
    EXPECT_EQ(os.str(), "\n== Phase 1 ==\n");
}

TEST(Log, FatalExits)
{
    EXPECT_EXIT(fatal("boom"), ::testing::ExitedWithCode(1), "boom");
    EXPECT_EXIT(fatalf("x=", 42), ::testing::ExitedWithCode(1), "x=42");
}

TEST(Log, PanicAborts)
{
    EXPECT_DEATH(panic("bad invariant"), "bad invariant");
}

TEST(NoiseProcess, PacedBursts)
{
    Rng rng(3);
    auto hp = sim::xeonE5_2650Params();
    hp.lat.noiseSigma = 0.0;
    sim::Hierarchy h(hp, &rng);
    sim::SmtCore core(h, sim::NoiseModel::quiet(), rng);
    auto lines = chan::linesForSet(h.l1().layout(), 13, 4, 0x300);
    chan::NoiseProcessConfig cfg;
    cfg.period = 10000;
    cfg.burstLines = 2;
    chan::NoiseProcess noise(lines, cfg);
    core.addThread(&noise, sim::AddressSpace(9));
    core.run(100'000);
    // ~10 periods x 2 lines.
    EXPECT_GE(noise.accesses(), 16u);
    EXPECT_LE(noise.accesses(), 24u);
}

TEST(NoiseProcess, StoreFractionZeroNeverDirties)
{
    Rng rng(3);
    auto hp = sim::xeonE5_2650Params();
    sim::Hierarchy h(hp, &rng);
    sim::SmtCore core(h, sim::NoiseModel::quiet(), rng);
    auto lines = chan::linesForSet(h.l1().layout(), 13, 4, 0x300);
    chan::NoiseProcessConfig cfg;
    cfg.period = 5000;
    cfg.burstLines = 4;
    cfg.storeFraction = 0.0;
    chan::NoiseProcess noise(lines, cfg);
    core.addThread(&noise, sim::AddressSpace(9));
    core.run(100'000);
    EXPECT_EQ(h.l1().dirtyCountInSet(13), 0u);
}

TEST(NoiseProcess, StoreFractionOneDirties)
{
    Rng rng(3);
    auto hp = sim::xeonE5_2650Params();
    sim::Hierarchy h(hp, &rng);
    sim::SmtCore core(h, sim::NoiseModel::quiet(), rng);
    auto lines = chan::linesForSet(h.l1().layout(), 13, 2, 0x300);
    chan::NoiseProcessConfig cfg;
    cfg.period = 5000;
    cfg.burstLines = 2;
    cfg.storeFraction = 1.0;
    chan::NoiseProcess noise(lines, cfg);
    core.addThread(&noise, sim::AddressSpace(9));
    core.run(50'000);
    EXPECT_GE(h.l1().dirtyCountInSet(13), 1u);
}

} // namespace
} // namespace wb
