/**
 * @file
 * Unit and property tests for the Wagner-Fischer edit distance
 * (common/edit_distance.hh), the paper's BER metric.
 */

#include <gtest/gtest.h>

#include "common/bitvec.hh"
#include "common/edit_distance.hh"
#include "common/rng.hh"

namespace wb
{
namespace
{

BitVec
bits(const std::string &s)
{
    return fromBitString(s);
}

TEST(EditDistance, IdenticalIsZero)
{
    EXPECT_EQ(editDistance(bits("101010"), bits("101010")), 0u);
    EXPECT_EQ(editDistance({}, {}), 0u);
}

TEST(EditDistance, EmptyVsNonEmpty)
{
    EXPECT_EQ(editDistance({}, bits("1011")), 4u);
    EXPECT_EQ(editDistance(bits("1011"), {}), 4u); // deletion of all
}

TEST(EditDistance, SingleSubstitution)
{
    EXPECT_EQ(editDistance(bits("1010"), bits("1110")), 1u);
}

TEST(EditDistance, SingleInsertion)
{
    EXPECT_EQ(editDistance(bits("1010"), bits("10110")), 1u);
}

TEST(EditDistance, SingleDeletion)
{
    EXPECT_EQ(editDistance(bits("1010"), bits("110")), 1u);
}

TEST(EditDistance, ShiftCostsTwo)
{
    // A one-position shift inside a fixed-length window costs one
    // deletion plus one insertion.
    EXPECT_EQ(editDistance(bits("11001"), bits("10011")), 2u);
}

TEST(EditDistance, Symmetric)
{
    Rng rng(3);
    for (int i = 0; i < 30; ++i) {
        const BitVec a = randomBits(20, rng);
        const BitVec b = randomBits(23, rng);
        EXPECT_EQ(editDistance(a, b), editDistance(b, a));
    }
}

TEST(EditDistance, BoundedByLongerLength)
{
    Rng rng(5);
    for (int i = 0; i < 30; ++i) {
        const BitVec a = randomBits(15, rng);
        const BitVec b = randomBits(40, rng);
        EXPECT_LE(editDistance(a, b), 40u);
        EXPECT_GE(editDistance(a, b), 25u); // at least the length gap
    }
}

TEST(EditBreakdown, SumsToDistance)
{
    Rng rng(7);
    for (int i = 0; i < 50; ++i) {
        const BitVec a = randomBits(30, rng);
        const BitVec b = randomBits(28 + (i % 5), rng);
        const auto br = editBreakdown(a, b);
        EXPECT_EQ(br.distance, editDistance(a, b));
        EXPECT_EQ(br.substitutions + br.insertions + br.deletions,
                  br.distance);
    }
}

TEST(EditBreakdown, PureSubstitutions)
{
    const auto br = editBreakdown(bits("0000"), bits("1111"));
    EXPECT_EQ(br.distance, 4u);
    EXPECT_EQ(br.substitutions, 4u);
    EXPECT_EQ(br.insertions, 0u);
    EXPECT_EQ(br.deletions, 0u);
}

TEST(EditBreakdown, LengthDeltaShowsUp)
{
    const auto br = editBreakdown(bits("1111"), bits("111111"));
    EXPECT_EQ(br.insertions, 2u);
    EXPECT_EQ(br.deletions, 0u);
}

TEST(BitErrorRate, Values)
{
    EXPECT_DOUBLE_EQ(bitErrorRate(bits("1111"), bits("1111")), 0.0);
    EXPECT_DOUBLE_EQ(bitErrorRate(bits("1111"), bits("0000")), 1.0);
    EXPECT_DOUBLE_EQ(bitErrorRate(bits("1010"), bits("1011")), 0.25);
    EXPECT_DOUBLE_EQ(bitErrorRate({}, bits("1")), 0.0);
}

/** Property sweep: planting k flips yields distance <= k (and == k
 * when flips are isolated). */
class EditDistanceFlips : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(EditDistanceFlips, PlantedFlipsBounded)
{
    const unsigned k = GetParam();
    Rng rng(100 + k);
    BitVec a = randomBits(64, rng);
    BitVec b = a;
    // Flip k well-separated positions.
    for (unsigned i = 0; i < k; ++i)
        b[i * 5] = !b[i * 5];
    EXPECT_EQ(editDistance(a, b), k);
    const auto br = editBreakdown(a, b);
    EXPECT_EQ(br.substitutions, k);
}

INSTANTIATE_TEST_SUITE_P(Flips, EditDistanceFlips,
                         ::testing::Values(0u, 1u, 2u, 4u, 8u, 12u));

} // namespace
} // namespace wb
