/**
 * @file
 * End-to-end covert channel tests (chan/channel.hh): sender/receiver
 * programs on the simulated SMT platform, decode quality under quiet
 * and realistic noise, noise-process robustness (paper Fig. 8), and
 * reproducibility.
 *
 * Every BER claim is a pooled multi-seed statistical assertion
 * (tests/stat_assert.hh): the Wilson bound of the error proportion
 * over >= 16 seeds must clear the threshold, so no expectation rests
 * on one lucky trajectory.
 */

#include <gtest/gtest.h>

#include "chan/channel.hh"
#include "chan/receiver.hh"
#include "chan/sender.hh"
#include "chan/set_mapping.hh"
#include "stat_assert.hh"

namespace wb::chan
{
namespace
{

ChannelConfig
quietConfig()
{
    ChannelConfig cfg;
    cfg.noise = sim::NoiseModel::quiet();
    cfg.platform.lat.noiseSigma = 0.0;
    cfg.protocol.frames = 4;
    cfg.calibration.measurements = 60;
    cfg.seed = 17;
    return cfg;
}

/**
 * One run's error proportion: edit errors over the payload bits the
 * sender transmitted. Frames the decoder failed to locate count as
 * half wrong — an unlocated frame carries no information, which is
 * the 50%-BER regime — so a misaligned run cannot shrink the
 * denominator and quietly pass.
 */
test::Proportion
berProportion(const ChannelConfig &cfg)
{
    const ChannelResult res = runChannel(cfg);
    const double payload = cfg.protocol.frameBits - 16;
    const double expected = res.framesExpected * payload;
    const double scored = res.framesScored * payload;
    return {res.ber * scored + 0.5 * (expected - scored), expected};
}

/** Sweep a config over seeds, pooling the per-run error proportions. */
test::ProportionSweep
berSweep(ChannelConfig cfg, unsigned seeds = test::ProportionSweep::kMinRuns)
{
    return test::sweepSeeds(
        [cfg](std::uint64_t seed) mutable {
            cfg.seed = seed;
            return berProportion(cfg);
        },
        seeds);
}

/** Quiet platform: the channel must be essentially error free. */
class QuietChannel : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(QuietChannel, ZeroBerAtModerateRate)
{
    ChannelConfig cfg = quietConfig();
    cfg.protocol.ts = cfg.protocol.tr = 5500;
    cfg.protocol.frames = 2;
    cfg.protocol.encoding = Encoding::binary(GetParam());
    // 16 seeds x 2 frames x 112 payload bits with zero errors keeps
    // the Wilson upper bound under ~0.3%.
    EXPECT_BER_BELOW(berSweep(cfg), 0.005);
}

INSTANTIATE_TEST_SUITE_P(AllD, QuietChannel,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));

TEST(Channel, QuietMultiBitZeroBer)
{
    ChannelConfig cfg = quietConfig();
    cfg.protocol.ts = cfg.protocol.tr = 4000;
    cfg.protocol.encoding = Encoding::paperTwoBit();
    cfg.protocol.frameBits = 256;
    cfg.protocol.frames = 2;
    EXPECT_BER_BELOW(berSweep(cfg), 0.005);
}

TEST(Channel, RealisticNoiseLowRateIsClean)
{
    ChannelConfig cfg; // default realistic noise
    cfg.protocol.ts = cfg.protocol.tr = 11000; // 200 kbps
    cfg.protocol.encoding = Encoding::binary(4);
    cfg.protocol.frames = 4;
    cfg.calibration.measurements = 100;
    EXPECT_BER_BELOW(berSweep(cfg), 0.05); // paper Fig. 6 low-rate band
}

TEST(Channel, BerGrowsWithRate)
{
    // Pooled over the seed sweep: BER at 2750 kbps must exceed BER at
    // 400 kbps (paper Fig. 6's monotone trend), by a margin the
    // confidence intervals cannot bridge.
    ChannelConfig cfg;
    cfg.protocol.encoding = Encoding::binary(1);
    cfg.protocol.frames = 5;
    cfg.calibration.measurements = 100;
    cfg.protocol.ts = cfg.protocol.tr = 5500;
    const auto slow = berSweep(cfg);
    cfg.protocol.ts = cfg.protocol.tr = 800;
    const auto fast = berSweep(cfg);
    EXPECT_LT(slow.ci().hi, fast.ci().lo)
        << "slow " << slow << " vs fast " << fast;
}

TEST(Channel, SameSeedReproduces)
{
    ChannelConfig cfg;
    cfg.protocol.frames = 3;
    cfg.calibration.measurements = 60;
    cfg.seed = 99;
    auto a = runChannel(cfg);
    auto b = runChannel(cfg);
    EXPECT_EQ(a.ber, b.ber);
    EXPECT_EQ(a.latencies, b.latencies);
    EXPECT_EQ(a.decodedBits, b.decodedBits);
}

TEST(Channel, DifferentSeedsDiffer)
{
    ChannelConfig cfg;
    cfg.protocol.frames = 3;
    cfg.calibration.measurements = 60;
    cfg.seed = 1;
    auto a = runChannel(cfg);
    cfg.seed = 2;
    auto b = runChannel(cfg);
    EXPECT_NE(a.latencies, b.latencies);
}

TEST(Channel, CleanNoiseProcessDoesNotBreakWb)
{
    // Paper Fig. 8(b): noisy *clean* lines leave the WB channel
    // intact.
    ChannelConfig cfg = quietConfig();
    cfg.protocol.ts = cfg.protocol.tr = 5500;
    cfg.protocol.encoding = Encoding::binary(1);
    cfg.protocol.frames = 2;
    cfg.noiseProcesses = 1;
    cfg.noiseCfg.period = 3 * 5500;
    cfg.noiseCfg.burstLines = 1;
    cfg.noiseCfg.storeFraction = 0.0;
    EXPECT_BER_BELOW(berSweep(cfg), 0.02);
}

TEST(Channel, ManyCleanNoisyLinesStillFine)
{
    // Sec. VI: "the WB channel can resist the interference of
    // multiple noisy cache lines".
    ChannelConfig cfg = quietConfig();
    cfg.protocol.ts = cfg.protocol.tr = 5500;
    cfg.protocol.encoding = Encoding::binary(2);
    cfg.protocol.frames = 2;
    cfg.noiseProcesses = 1;
    cfg.noiseCfg.period = 2 * 5500;
    cfg.noiseCfg.burstLines = 6;
    EXPECT_BER_BELOW(berSweep(cfg), 0.05);
}

TEST(Channel, DirtyNoiseDoesHurt)
{
    // The one interference the paper admits: another process *writing*
    // lines in the target set. Pooled over the sweep, the dirty-noise
    // BER interval must sit clear above the clean one.
    ChannelConfig base = quietConfig();
    base.protocol.ts = base.protocol.tr = 5500;
    base.protocol.encoding = Encoding::binary(1);
    base.protocol.frames = 3;

    ChannelConfig noisy = base;
    noisy.noiseProcesses = 1;
    noisy.noiseCfg.period = 5500;
    noisy.noiseCfg.burstLines = 2;
    noisy.noiseCfg.storeFraction = 1.0;

    const auto clean = berSweep(base);
    const auto dirty = berSweep(noisy);
    EXPECT_GT(dirty.ci().lo, clean.ci().hi + 0.05)
        << "clean " << clean << " vs dirty " << dirty;
}

TEST(Channel, CountersArePopulated)
{
    ChannelConfig cfg = quietConfig();
    cfg.protocol.encoding = Encoding::binary(3);
    auto res = runChannel(cfg);
    // Sender only stores (encode) — loads come from its spin stack.
    EXPECT_GT(res.senderCounters.stores, 0u);
    EXPECT_GT(res.receiverCounters.loads, 100u);
    EXPECT_GT(res.receiverCounters.l1DirtyWritebacks, 0u);
    EXPECT_GT(res.simulatedCycles, 0u);
}

TEST(Channel, GoodputConsistent)
{
    ChannelConfig cfg = quietConfig();
    auto res = runChannel(cfg);
    EXPECT_NEAR(res.goodputKbps, res.rateKbps * (1 - res.ber), 1e-9);
}

TEST(Channel, TransmitStringRoundtrip)
{
    ChannelConfig cfg = quietConfig();
    cfg.protocol.ts = cfg.protocol.tr = 5500;
    cfg.protocol.encoding = Encoding::binary(8);
    const std::string msg = "dirty bits leak";
    ChannelResult res;
    const std::string got = transmitString(cfg, msg, &res);
    EXPECT_EQ(got, msg);
    EXPECT_TRUE(res.aligned);
}

TEST(Channel, TransmitStringMultiBit)
{
    ChannelConfig cfg = quietConfig();
    cfg.protocol.ts = cfg.protocol.tr = 5500;
    cfg.protocol.encoding = Encoding::paperTwoBit();
    const std::string msg = "WB";
    EXPECT_EQ(transmitString(cfg, msg), msg);
}

TEST(Channel, RejectsOversizedEncoding)
{
    ChannelConfig cfg = quietConfig();
    cfg.protocol.encoding = Encoding::multiBit({0, 9}); // d=9 > 8 ways
    EXPECT_EXIT((void)runChannel(cfg), ::testing::ExitedWithCode(1),
                "exceeds associativity");
}

TEST(Channel, WorksOnRandomReplacement)
{
    // Sec. VI-A: the channel still works under an IID random policy
    // with a bigger margin (the paper suggests d=3, L=12 from gem5;
    // this model's leftover-dirt noise needs the stronger d=8, L=16
    // operating point for a stable channel — see EXPERIMENTS.md).
    // The old single-seed expectation here was < 0.10; the pooled
    // 16-seed rate is ~0.106, i.e. that bound only held on its magic
    // seed. The honest claim: clearly transmitting (far below the
    // 0.5 of a closed channel), at roughly 11% raw BER.
    ChannelConfig cfg = quietConfig();
    cfg.platform.l1.policy = sim::PolicyKind::RandomIid;
    cfg.protocol.ts = cfg.protocol.tr = 5500;
    cfg.protocol.encoding = Encoding::binary(8);
    cfg.protocol.replacementSize = 16;
    cfg.protocol.frames = 3;
    EXPECT_BER_BELOW(berSweep(cfg), 0.15);
}

/** Direct program-level tests. */
TEST(SenderProgram, EmitsExpectedOps)
{
    sim::AddressLayout layout(64);
    auto lines = linesForSet(layout, 3, 8);
    SenderProgram sender(lines, {2, 0, 1}, 1000);
    EXPECT_FALSE(sender.done());
    EXPECT_EQ(sender.symbolsSent(), 0u);
}

TEST(SenderProgram, RejectsTooFewLines)
{
    sim::AddressLayout layout(64);
    auto lines = linesForSet(layout, 3, 2);
    EXPECT_EXIT(SenderProgram(lines, {5}, 1000),
                ::testing::ExitedWithCode(1), "needs");
}

TEST(ReceiverProgram, RecordsExactlySampleCount)
{
    sim::HierarchyParams hp = sim::xeonE5_2650Params();
    hp.lat.noiseSigma = 0.0;
    Rng rng(3);
    sim::Hierarchy h(hp, &rng);
    sim::SmtCore core(h, sim::NoiseModel::quiet(), rng);
    const auto sets = makeChannelSets(h.l1().layout(), 13, 8, 10);
    ReceiverProgram rx(sets.replacementA, sets.replacementB, 2000, 25);
    auto tid = core.addThread(&rx, sim::AddressSpace(2));
    core.run(10'000'000);
    EXPECT_TRUE(core.halted(tid));
    EXPECT_TRUE(rx.done());
    EXPECT_EQ(rx.observations().size(), 25u);
    // Observation timestamps are ~Tr apart (allow a little slack for
    // cold-vs-warm measurement length differences).
    const auto &obs = rx.observations();
    for (std::size_t i = 1; i < obs.size(); ++i)
        EXPECT_GE(obs[i].at, obs[i - 1].at + 1900);
}

} // namespace
} // namespace wb::chan
