/**
 * @file
 * Transport-layer tests: framing/CRC/ARQ units, FrameSync recovery on
 * synthetic corruption, rate-controller hysteresis, end-to-end sessions
 * over synthetic links, transport-off equivalence with the legacy
 * runners, and the headline statistical claim — under the party-core
 * time-sharing noise regime that collapses the single-shot cross-core
 * channel (docs/SCHEDULER.md), the transport still delivers frames
 * with a Wilson lower bound above zero.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "chan/arq.hh"
#include "chan/channel.hh"
#include "chan/cross_core.hh"
#include "chan/transport.hh"
#include "common/rng.hh"
#include "sim/platform.hh"
#include "stat_assert.hh"

namespace wb::chan
{
namespace
{

// ---------------------------------------------------------------- CRC

TEST(Crc, RoundTripsBothWidths)
{
    Rng rng(1);
    for (unsigned width : {8u, 16u}) {
        for (int trial = 0; trial < 20; ++trial) {
            BitVec data;
            for (int i = 0; i < 40; ++i)
                data.push_back(rng.flip());
            const BitVec framed = appendCrc(data, width);
            EXPECT_EQ(framed.size(), data.size() + width);
            EXPECT_TRUE(checkCrc(framed, width));
        }
    }
}

TEST(Crc, DetectsEverySingleBitFlip)
{
    Rng rng(2);
    BitVec data;
    for (int i = 0; i < 30; ++i)
        data.push_back(rng.flip());
    const BitVec framed = appendCrc(data, 8);
    for (std::size_t i = 0; i < framed.size(); ++i) {
        BitVec bad = framed;
        bad[i] = !bad[i];
        EXPECT_FALSE(checkCrc(bad, 8)) << "missed flip at bit " << i;
    }
}

TEST(Crc, RejectsTooShortInput)
{
    EXPECT_FALSE(checkCrc(BitVec{true, false, true}, 8));
    EXPECT_FALSE(checkCrc(BitVec{}, 16));
}

// ------------------------------------------------------------- frames

FrameLayout
smallLayout()
{
    FrameLayout layout;
    layout.seqBits = 4;
    layout.payloadBits = 24;
    layout.crcWidth = 8;
    layout.interleaveDepth = 2;
    return layout;
}

TEST(TransportFrame, BuildParseRoundTrip)
{
    const FrameLayout layout = smallLayout();
    Rng rng(3);
    for (unsigned seq = 0; seq < layout.seqSpace(); ++seq) {
        BitVec payload;
        for (unsigned i = 0; i < layout.payloadBits; ++i)
            payload.push_back(rng.flip());
        const BitVec frame = buildTransportFrame(layout, seq, payload);
        ASSERT_EQ(frame.size(), layout.frameBits());
        // The raw preamble leads the frame.
        const BitVec pre = preamble16();
        for (std::size_t i = 0; i < 16; ++i)
            EXPECT_EQ(frame[i], pre[i]);
        const BitVec body(frame.begin() + 16, frame.end());
        const ParsedFrame parsed = parseTransportFrame(layout, body);
        EXPECT_TRUE(parsed.crcOk);
        EXPECT_EQ(parsed.seq, seq);
        EXPECT_EQ(parsed.payload, payload);
        EXPECT_EQ(parsed.fec.correctedBits, 0u);
    }
}

TEST(TransportFrame, FecCorrectsSingleFlipPerCodeword)
{
    const FrameLayout layout = smallLayout();
    Rng rng(4);
    BitVec payload;
    for (unsigned i = 0; i < layout.payloadBits; ++i)
        payload.push_back(rng.flip());
    const BitVec frame = buildTransportFrame(layout, 7, payload);
    BitVec body(frame.begin() + 16, frame.end());
    body[3] = !body[3]; // one flip inside the first codeword
    const ParsedFrame parsed = parseTransportFrame(layout, body);
    EXPECT_TRUE(parsed.crcOk);
    EXPECT_EQ(parsed.seq, 7u);
    EXPECT_EQ(parsed.payload, payload);
    EXPECT_EQ(parsed.fec.correctedBits, 1u);
}

TEST(TransportFrame, CrcRejectsHeavyCorruption)
{
    const FrameLayout layout = smallLayout();
    Rng rng(5);
    BitVec payload;
    for (unsigned i = 0; i < layout.payloadBits; ++i)
        payload.push_back(rng.flip());
    const BitVec frame = buildTransportFrame(layout, 2, payload);
    unsigned rejected = 0;
    for (int trial = 0; trial < 50; ++trial) {
        BitVec body(frame.begin() + 16, frame.end());
        for (auto &&bit : body)
            if (rng.chance(0.25))
                bit = !bit;
        if (!parseTransportFrame(layout, body).crcOk)
            ++rejected;
    }
    // At 25% flips the FEC is far beyond its budget; the CRC must
    // reject essentially everything (allow a rare undetected pass).
    EXPECT_GE(rejected, 48u);
}

TEST(TransportFrame, ShortBodyIsRejectedNotFatal)
{
    const FrameLayout layout = smallLayout();
    BitVec tiny(10, true);
    const ParsedFrame parsed = parseTransportFrame(layout, tiny);
    EXPECT_FALSE(parsed.crcOk);
}

// ---------------------------------------------------------- FEC stats

TEST(FecStats, ReportsCorrectionsAndTruncation)
{
    const HammingCode code(1);
    Rng rng(6);
    BitVec data;
    for (int i = 0; i < 16; ++i)
        data.push_back(rng.flip());
    BitVec coded = code.encode(data);
    coded[2] = !coded[2];  // codeword 0
    coded[9] = !coded[9];  // codeword 1
    FecStats stats;
    const BitVec decoded = code.decode(coded, &stats);
    EXPECT_EQ(decoded, data);
    EXPECT_EQ(stats.correctedBits, 2u);
    EXPECT_EQ(stats.truncatedBits, 0u);

    // A stream cut mid-codeword: the tail is reported, not swallowed.
    // 16 data bits -> 4 codewords -> 28 coded bits; dropping 3 leaves
    // three whole codewords plus a 4-bit tail.
    coded.resize(coded.size() - 3);
    FecStats cut;
    code.decode(coded, &cut);
    EXPECT_EQ(cut.truncatedBits, 4u);
}

TEST(FecStatsDeathTest, SilentTruncationIsFatal)
{
    const HammingCode code(1);
    BitVec coded = code.encode(BitVec(8, true));
    coded.pop_back(); // now a partial trailing codeword
    EXPECT_DEATH((void)code.decode(coded),
                 "pass a FecStats sink");
}

// ----------------------------------------------------------------- ARQ

TEST(SelectiveRepeat, DeliversAndCountsRetries)
{
    SelectiveRepeatArq arq(3, /*maxRetries=*/2);
    EXPECT_FALSE(arq.done());
    EXPECT_EQ(arq.pending(), (std::vector<unsigned>{0, 1, 2}));

    arq.onDelivered(1);
    arq.onRoundEnd({0, 1, 2});
    EXPECT_EQ(arq.pending(), (std::vector<unsigned>{0, 2}));
    EXPECT_EQ(arq.delivered(), 1u);
    EXPECT_EQ(arq.retransmissions(), 0u);
    EXPECT_EQ(arq.attempts(), 3u);

    arq.onDelivered(0);
    arq.onDelivered(0); // duplicate: no-op
    arq.onRoundEnd({0, 2});
    EXPECT_EQ(arq.delivered(), 2u);
    EXPECT_EQ(arq.retransmissions(), 2u);

    arq.onRoundEnd({2}); // third attempt for chunk 2: out of retries
    EXPECT_TRUE(arq.done());
    EXPECT_EQ(arq.failed(), 1u);
    EXPECT_FALSE(arq.isDelivered(2));
    EXPECT_TRUE(arq.isDelivered(0));
}

TEST(SelectiveRepeat, BoundedAttemptsPerChunk)
{
    SelectiveRepeatArq arq(1, /*maxRetries=*/3);
    unsigned rounds = 0;
    while (!arq.done() && rounds < 100) {
        arq.onRoundEnd({0});
        ++rounds;
    }
    EXPECT_EQ(rounds, 4u) << "maxRetries+1 attempts, then failed";
    EXPECT_EQ(arq.failed(), 1u);
}

// ---------------------------------------------------------- rate ladder

TEST(RateLadder, MultiBitFallsBackThenSlows)
{
    ProtocolConfig proto;
    proto.ts = proto.tr = 4000;
    proto.encoding = Encoding::paperTwoBit(); // 2-bit symbols
    const auto ladder = rateLadder(proto, 2);
    ASSERT_EQ(ladder.size(), 4u);
    EXPECT_EQ(ladder[0].ts, 4000u);
    EXPECT_EQ(ladder[0].encoding.bitsPerSymbol(), 2u);
    EXPECT_EQ(ladder[1].ts, 4000u);
    EXPECT_EQ(ladder[1].encoding.bitsPerSymbol(), 1u);
    EXPECT_EQ(ladder[2].ts, 8000u);
    EXPECT_EQ(ladder[3].ts, 16000u);
    // Monotone raw rate.
    for (std::size_t i = 1; i < ladder.size(); ++i)
        EXPECT_LT(ladder[i].rateKbps(2.2), ladder[i - 1].rateKbps(2.2));
}

TEST(RateLadder, BinaryOnlyDoubles)
{
    ProtocolConfig proto;
    proto.ts = proto.tr = 5500;
    proto.encoding = Encoding::binary(1);
    const auto ladder = rateLadder(proto, 3);
    ASSERT_EQ(ladder.size(), 4u);
    EXPECT_EQ(ladder[3].ts, 44000u);
}

TEST(RateLadder, ShrinksSignalBeforeSlowing)
{
    ProtocolConfig proto;
    proto.ts = proto.tr = 4000;
    proto.encoding = Encoding::binary(4);
    const auto ladder = rateLadder(proto, 2, /*signalShrinks=*/2);
    // binary(4) -> binary(2) -> binary(1), all at the native pacing,
    // and only then the Ts doublings (at the shrunken footprint).
    ASSERT_EQ(ladder.size(), 5u);
    EXPECT_EQ(ladder[0].ts, 4000u);
    EXPECT_EQ(ladder[0].encoding.maxLevel(), 4u);
    EXPECT_EQ(ladder[1].ts, 4000u);
    EXPECT_EQ(ladder[1].encoding.maxLevel(), 2u);
    EXPECT_EQ(ladder[2].ts, 4000u);
    EXPECT_EQ(ladder[2].encoding.maxLevel(), 1u);
    EXPECT_EQ(ladder[3].ts, 8000u);
    EXPECT_EQ(ladder[3].encoding.maxLevel(), 1u);
    EXPECT_EQ(ladder[4].ts, 16000u);
    // Same-Ts rungs keep the Tr:Ts ratio arithmetic exact — the
    // footprint rungs must never move the pacing.
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(ladder[i].ts, proto.ts);
}

TEST(RateLadder, MultiBitShrinksAfterFallback)
{
    ProtocolConfig proto;
    proto.ts = proto.tr = 4000;
    proto.encoding = Encoding::paperTwoBit(); // maxLevel 8
    const auto ladder = rateLadder(proto, 1, /*signalShrinks=*/2);
    // native 2-bit -> binary(4) fallback -> binary(2) -> binary(1)
    // -> one doubling.
    ASSERT_EQ(ladder.size(), 5u);
    EXPECT_EQ(ladder[1].encoding.bitsPerSymbol(), 1u);
    EXPECT_EQ(ladder[1].encoding.maxLevel(), 4u);
    EXPECT_EQ(ladder[2].encoding.maxLevel(), 2u);
    EXPECT_EQ(ladder[3].encoding.maxLevel(), 1u);
    EXPECT_EQ(ladder[3].ts, 4000u);
    EXPECT_EQ(ladder[4].ts, 8000u);
}

TEST(RateLadder, ShrinkStopsAtOneDirtyLine)
{
    ProtocolConfig proto;
    proto.ts = proto.tr = 5500;
    proto.encoding = Encoding::binary(1);
    // A huge shrink budget adds nothing below d = 1: the ladder is
    // identical to the pacing-only one.
    const auto ladder = rateLadder(proto, 2, /*signalShrinks=*/8);
    ASSERT_EQ(ladder.size(), 3u);
    EXPECT_EQ(ladder[1].ts, 11000u);
    EXPECT_EQ(ladder[2].ts, 22000u);
}

TEST(RateController, DegradesFastUpgradesWithHysteresis)
{
    TransportConfig cfg;
    cfg.degradeFer = 0.5;
    cfg.upgradeFer = 0.125;
    cfg.upgradeAfterRounds = 2;
    RateController ctl(cfg, /*ladderSize=*/4);
    EXPECT_EQ(ctl.level(), 0u);

    ctl.onRound(0.6, 0.0); // bad round: one rung down immediately
    EXPECT_EQ(ctl.level(), 1u);
    ctl.onRound(1.0, 0.0);
    ctl.onRound(1.0, 0.0);
    ctl.onRound(1.0, 0.0); // clamped at the ladder floor
    EXPECT_EQ(ctl.level(), 3u);

    ctl.onRound(0.0, 0.0); // one good round is not enough...
    EXPECT_EQ(ctl.level(), 3u);
    ctl.onRound(0.0, 0.0); // ...two consecutive are
    EXPECT_EQ(ctl.level(), 2u);

    ctl.onRound(0.0, 0.0);
    ctl.onRound(0.3, 0.0); // middling round resets the streak
    ctl.onRound(0.0, 0.0);
    EXPECT_EQ(ctl.level(), 2u);

    // High FEC correction density degrades even with perfect FER.
    ctl.onRound(0.0, 0.2);
    EXPECT_EQ(ctl.level(), 3u);
}

TEST(RateController, DisabledHoldsLevel)
{
    TransportConfig cfg;
    cfg.adaptiveRate = false;
    RateController ctl(cfg, 4);
    ctl.onRound(1.0, 1.0);
    EXPECT_EQ(ctl.level(), 0u);
}

// ------------------------------------------------------------ FrameSync

/** Concatenate @p n frames with @p guard zero bits between them. */
BitVec
cleanStream(const FrameLayout &layout, unsigned n, unsigned guard,
            Rng &rng)
{
    BitVec stream;
    for (unsigned f = 0; f < n; ++f) {
        BitVec payload;
        for (unsigned i = 0; i < layout.payloadBits; ++i)
            payload.push_back(rng.flip());
        const BitVec frame =
            buildTransportFrame(layout, f % layout.seqSpace(), payload);
        stream.insert(stream.end(), frame.begin(), frame.end());
        stream.insert(stream.end(), guard, false);
    }
    return stream;
}

TEST(FrameSyncScan, LocatesEveryCleanFrame)
{
    const FrameLayout layout = smallLayout();
    const unsigned guard = 8;
    Rng rng(7);
    const BitVec stream = cleanStream(layout, 6, guard, rng);
    const std::size_t stride = layout.frameBits() + guard;
    const FrameSync sync(1, 2, 24, stride);
    const auto scan = sync.scan(stream);
    ASSERT_EQ(scan.frameStarts.size(), 6u);
    for (unsigned f = 0; f < 6; ++f)
        EXPECT_EQ(scan.frameStarts[f], f * stride);
    EXPECT_EQ(scan.syncLosses, 0u);
    EXPECT_EQ(scan.resyncs, 0u);
}

TEST(FrameSyncScan, ReacquiresAfterDeletedSpan)
{
    const FrameLayout layout = smallLayout();
    const unsigned guard = 8;
    Rng rng(8);
    BitVec stream = cleanStream(layout, 6, guard, rng);
    const std::size_t stride = layout.frameBits() + guard;
    // A gang freeze swallows frame 2 and most of frame 3: delete a
    // span far larger than the relock window.
    stream.erase(stream.begin() + static_cast<std::ptrdiff_t>(2 * stride),
                 stream.begin() +
                     static_cast<std::ptrdiff_t>(3 * stride + 40));
    const FrameSync sync(1, 2, 24, stride);
    const auto scan = sync.scan(stream);
    // Frames 0, 1 before the hole; the scanner must lose lock at the
    // hole and re-acquire at least one of the surviving frames.
    EXPECT_GE(scan.frameStarts.size(), 4u);
    EXPECT_GE(scan.syncLosses, 1u);
    // Positions are strictly increasing (termination invariant).
    for (std::size_t i = 1; i < scan.frameStarts.size(); ++i)
        EXPECT_GT(scan.frameStarts[i], scan.frameStarts[i - 1]);
}

TEST(FrameSyncScan, AbsorbsSmallPhaseSlip)
{
    const FrameLayout layout = smallLayout();
    const unsigned guard = 8;
    Rng rng(9);
    BitVec stream = cleanStream(layout, 4, guard, rng);
    const std::size_t stride = layout.frameBits() + guard;
    // Insert 5 junk bits in the guard gap before frame 2: later
    // frames arrive 5 bits late, inside the relock window.
    stream.insert(stream.begin() +
                      static_cast<std::ptrdiff_t>(2 * stride - 2),
                  5, true);
    const FrameSync sync(1, 2, 24, stride);
    const auto scan = sync.scan(stream);
    ASSERT_EQ(scan.frameStarts.size(), 4u);
    EXPECT_EQ(scan.frameStarts[2], 2 * stride + 5);
    EXPECT_EQ(scan.frameStarts[3], 3 * stride + 5);
    EXPECT_GE(scan.resyncs, 1u);
    EXPECT_EQ(scan.syncLosses, 0u);
}

TEST(FrameSyncScan, TerminatesOnPathologicalStreams)
{
    const FrameLayout layout = smallLayout();
    const std::size_t stride = layout.frameBits() + 8;
    const FrameSync sync(1, 2, 24, stride);
    const BitVec pre = preamble16();
    std::vector<BitVec> streams = {
        {},                     // empty
        BitVec(10, true),       // shorter than a preamble
        BitVec(5000, false),    // no preamble anywhere
        BitVec(5000, true),
    };
    // All-preambles back to back: every offset nearly matches.
    BitVec dense;
    for (int i = 0; i < 300; ++i)
        dense.insert(dense.end(), pre.begin(), pre.end());
    streams.push_back(dense);
    for (const auto &s : streams) {
        const auto scan = sync.scan(s); // must return, not spin
        for (std::size_t i = 1; i < scan.frameStarts.size(); ++i)
            EXPECT_GT(scan.frameStarts[i], scan.frameStarts[i - 1]);
    }
}

// ------------------------------------------------- synthetic sessions

TransportConfig
smallTransport()
{
    TransportConfig cfg;
    cfg.enabled = true;
    cfg.layout = smallLayout();
    cfg.guardBits = 8;
    cfg.messageFrames = 6;
    cfg.windowFrames = 4;
    cfg.maxRetries = 3;
    cfg.maxRounds = 12;
    return cfg;
}

BitVec
randomMessage(std::size_t bits, std::uint64_t seed)
{
    Rng rng(seed);
    BitVec msg;
    for (std::size_t i = 0; i < bits; ++i)
        msg.push_back(rng.flip());
    return msg;
}

/** A link that flips each bit with probability @p flip and may drop a
 *  contiguous span each burst (a synthetic gang freeze). */
TransportLink
syntheticLink(double flip, std::size_t freezeSpan = 0)
{
    return [flip, freezeSpan](const BitVec &stream, const RateStep &rate,
                              std::uint64_t seed) {
        Rng rng(seed);
        BitVec bits = stream;
        for (auto &&b : bits)
            if (rng.chance(flip))
                b = !b;
        if (freezeSpan > 0 && bits.size() > freezeSpan) {
            const std::size_t at =
                rng.below(bits.size() - freezeSpan);
            bits.erase(bits.begin() + static_cast<std::ptrdiff_t>(at),
                       bits.begin() +
                           static_cast<std::ptrdiff_t>(at + freezeSpan));
        }
        LinkRun run;
        run.bits = std::move(bits);
        run.simulatedCycles = stream.size() * rate.ts;
        return run;
    };
}

TEST(TransportSession, CleanLinkDeliversEverythingFirstRound)
{
    const TransportConfig cfg = smallTransport();
    ProtocolConfig proto;
    const BitVec msg =
        randomMessage(cfg.messageFrames * cfg.layout.payloadBits, 10);
    const auto res =
        runTransportSession(cfg, proto, msg, syntheticLink(0.0), 10);
    EXPECT_EQ(res.framesTotal, 6u);
    EXPECT_EQ(res.framesDelivered, 6u);
    EXPECT_EQ(res.framesFailed, 0u);
    EXPECT_EQ(res.retransmissions, 0u);
    EXPECT_EQ(res.residualBitErrors, 0u);
    EXPECT_EQ(res.rounds, 2u) << "6 chunks through a 4-frame window";
    EXPECT_GT(res.goodputKbps, 0.0);
    EXPECT_EQ(res.finalRateLevel, 0u);
}

TEST(TransportSession, LossyLinkRetransmitsToFullDelivery)
{
    const TransportConfig cfg = smallTransport();
    ProtocolConfig proto;
    const BitVec msg =
        randomMessage(cfg.messageFrames * cfg.layout.payloadBits, 11);
    const auto res =
        runTransportSession(cfg, proto, msg, syntheticLink(0.01), 11);
    EXPECT_EQ(res.framesDelivered + res.framesFailed, res.framesTotal);
    // Delivered payloads are CRC-validated: zero residual errors.
    EXPECT_EQ(res.residualBitErrors, 0u);
    EXPECT_LE(res.rounds, cfg.maxRounds);
    EXPECT_GE(res.framesDelivered, 5u) << "1% flips is a mild link";
}

TEST(TransportSession, DeadLinkFailsHonestlyWithinBounds)
{
    const TransportConfig cfg = smallTransport();
    ProtocolConfig proto;
    const BitVec msg =
        randomMessage(cfg.messageFrames * cfg.layout.payloadBits, 12);
    // The link returns pure noise: nothing ever validates.
    const auto res =
        runTransportSession(cfg, proto, msg, syntheticLink(0.5), 12);
    EXPECT_EQ(res.framesDelivered, 0u);
    EXPECT_EQ(res.framesFailed, res.framesTotal);
    EXPECT_LE(res.rounds, cfg.maxRounds);
    // Retry budget: at most maxRetries+1 attempts per chunk.
    EXPECT_LE(res.framesSent,
              std::uint64_t(res.framesTotal) * (cfg.maxRetries + 1));
    EXPECT_EQ(res.goodputKbps, 0.0);
    // The controller slid down the ladder while everything failed.
    EXPECT_GT(res.finalRateLevel, 0u);
}

TEST(TransportSession, SurvivesGangFreezesViaResync)
{
    TransportConfig cfg = smallTransport();
    cfg.maxRounds = 16;
    cfg.maxRetries = 6; // each burst loses ~2 of 4 window frames
    ProtocolConfig proto;
    const BitVec msg =
        randomMessage(cfg.messageFrames * cfg.layout.payloadBits, 13);
    // Every burst loses an off-grid span (not a multiple of the frame
    // stride and beyond the relock window), so the frames behind the
    // hole only parse if FrameSync genuinely re-acquires alignment.
    const std::size_t stride = cfg.layout.frameBits() + cfg.guardBits;
    const std::size_t span = stride / 2 + 3;
    const auto res = runTransportSession(cfg, proto, msg,
                                         syntheticLink(0.002, span), 13);
    EXPECT_GE(res.framesDelivered, res.framesTotal - 1)
        << "resync failed to recover frames behind the freezes";
    EXPECT_EQ(res.residualBitErrors, 0u);
    EXPECT_GT(res.syncLosses + res.resyncs, 0u)
        << "the scanner never even noticed the holes";
}

TEST(TransportSession, AdaptiveRateStepsDownUnderSustainedNoise)
{
    TransportConfig cfg = smallTransport();
    cfg.maxRounds = 10;
    cfg.maxRetries = 9; // keep chunks alive long enough to adapt
    ProtocolConfig proto;
    const BitVec msg =
        randomMessage(cfg.messageFrames * cfg.layout.payloadBits, 14);
    const auto res =
        runTransportSession(cfg, proto, msg, syntheticLink(0.12), 14);
    EXPECT_GT(res.finalRateLevel, 0u);
    ASSERT_FALSE(res.rateLevelByRound.empty());
    EXPECT_EQ(res.rateLevelByRound.front(), 0u);
}

// ------------------------------------------- transport-off equivalence

ChannelConfig
tinyChannel()
{
    ChannelConfig cfg;
    cfg.protocol.frames = 2;
    cfg.calibration.measurements = 40;
    cfg.seed = 17;
    return cfg;
}

TEST(TransportOffEquivalence, SingleCoreMatchesLegacyRunner)
{
    const ChannelConfig cfg = tinyChannel();
    const ChannelResult direct = runChannel(cfg);
    const TransportResult off = runTransport(cfg);
    const TransportResult mapped =
        legacyTransportResult(direct, cfg.protocol);
    EXPECT_EQ(off.goodputKbps, mapped.goodputKbps);
    EXPECT_EQ(off.residualBer, mapped.residualBer);
    EXPECT_EQ(off.framesDelivered, mapped.framesDelivered);
    EXPECT_EQ(off.framesTotal, mapped.framesTotal);
    EXPECT_EQ(off.simulatedCycles, mapped.simulatedCycles);
    EXPECT_EQ(off.rounds, 1u);
}

TEST(TransportOffEquivalence, TransportFieldsAreInertWhenDisabled)
{
    const ChannelConfig cfg = tinyChannel();
    ChannelConfig tweaked = cfg;
    tweaked.transport.layout.payloadBits = 96;
    tweaked.transport.maxRetries = 9;
    tweaked.transport.windowFrames = 2;
    const ChannelResult a = runChannel(cfg);
    const ChannelResult b = runChannel(tweaked);
    EXPECT_EQ(a.ber, b.ber);
    EXPECT_EQ(a.latencies, b.latencies);
    EXPECT_EQ(a.decodedBits, b.decodedBits);
    EXPECT_EQ(a.simulatedCycles, b.simulatedCycles);
}

TEST(TransportOffEquivalence, CrossCoreMatchesLegacyRunner)
{
    CrossCoreChannelConfig cfg;
    cfg.protocol.frames = 2;
    cfg.calibration.measurements = 40;
    cfg.seed = 19;
    const ChannelResult direct = runCrossCoreChannel(cfg);
    const TransportResult off = runCrossCoreTransport(cfg);
    const TransportResult mapped =
        legacyTransportResult(direct, cfg.protocol);
    EXPECT_EQ(off.goodputKbps, mapped.goodputKbps);
    EXPECT_EQ(off.residualBer, mapped.residualBer);
    EXPECT_EQ(off.framesDelivered, mapped.framesDelivered);
    EXPECT_EQ(off.simulatedCycles, mapped.simulatedCycles);
}

// --------------------------------------- the headline statistical claim

/**
 * The configuration where docs/SCHEDULER.md records the single-shot
 * collapse: desktop-inclusive-4core, three co-runners (one of which
 * time-shares a party core), the platform's tuned noise preset.
 */
CrossCoreChannelConfig
collapseConfig()
{
    CrossCoreChannelConfig cfg;
    cfg.usePlatform("desktop-inclusive-4core");
    cfg.scheduler = sim::platform("desktop-inclusive-4core").noisePreset;
    cfg.scheduler.coRunners = sim::SchedulerConfig::mixOf(3);
    cfg.calibration.measurements = 40;
    cfg.transport.enabled = true;
    cfg.transport.layout = smallLayout();
    // Noise-regime streams are mostly garbage; thousands of candidate
    // frames get CRC-checked across the sweep, so the 8-bit CRC's
    // 1/256 false-accept rate is not small enough. 16 bits is.
    cfg.transport.layout.crcWidth = 16;
    cfg.transport.messageFrames = 4;
    cfg.transport.windowFrames = 4;
    cfg.transport.maxRetries = 3;
    cfg.transport.maxRounds = 6;
    return cfg;
}

TEST(TransportUnderOsNoise, DeliversFramesWhereSingleShotCollapses)
{
    const auto sweep = test::sweepSeeds([](std::uint64_t seed) {
        CrossCoreChannelConfig cfg = collapseConfig();
        cfg.seed = seed;
        const TransportResult res = runCrossCoreTransport(cfg);
        // Bounded-resource invariants hold per run, noise or not.
        EXPECT_LE(res.rounds, cfg.transport.maxRounds);
        EXPECT_LE(res.framesSent,
                  std::uint64_t(res.framesTotal) *
                      (cfg.transport.maxRetries + 1));
        EXPECT_EQ(res.residualBitErrors, 0u)
            << "a corrupted payload survived the CRC";
        return test::Proportion{double(res.framesDelivered),
                                double(res.framesTotal)};
    });
    // Statistically nonzero delivery: the Wilson lower bound of the
    // pooled delivery rate clears zero — the single-shot path under
    // the same regime sits at ~79% BER, i.e. no usable delivery.
    EXPECT_ACCURACY_ABOVE(sweep, 0.0);
}

} // namespace
} // namespace wb::chan
