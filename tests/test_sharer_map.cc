/**
 * @file
 * SharerMap (sim/sharer_map.hh) unit tests. The open-addressing table
 * uses backward-shift deletion, whose correctness depends on a subtle
 * cyclic-distance condition, so beyond the targeted cases the map is
 * churned against a std::unordered_map reference model.
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "sim/sharer_map.hh"

namespace wb::sim
{
namespace
{

TEST(SharerMap, FindOnEmptyAndAfterErase)
{
    SharerMap map;
    EXPECT_EQ(map.find(42), nullptr);
    map.upsert(42) = 0x5;
    ASSERT_NE(map.find(42), nullptr);
    EXPECT_EQ(*map.find(42), 0x5u);
    map.erase(42);
    EXPECT_EQ(map.find(42), nullptr);
    EXPECT_EQ(map.size(), 0u);
    map.erase(42); // erasing an absent key is a no-op
}

TEST(SharerMap, UpsertFindsTheExistingSlot)
{
    SharerMap map;
    map.upsert(7) = 0x1;
    map.upsert(7) |= 0x2;
    ASSERT_NE(map.find(7), nullptr);
    EXPECT_EQ(*map.find(7), 0x3u);
    EXPECT_EQ(map.size(), 1u);
}

TEST(SharerMap, SurvivesGrowthBeyondTheInitialCapacity)
{
    SharerMap map;
    const unsigned n = 4096;
    for (Addr k = 0; k < n; ++k)
        map.upsert(k * 64) = k + 1;
    EXPECT_EQ(map.size(), n);
    for (Addr k = 0; k < n; ++k) {
        ASSERT_NE(map.find(k * 64), nullptr) << "key " << k * 64;
        EXPECT_EQ(*map.find(k * 64), k + 1);
    }
}

TEST(SharerMap, ClearRetainsNothing)
{
    SharerMap map;
    for (Addr k = 0; k < 100; ++k)
        map.upsert(k) = 1;
    map.clear();
    EXPECT_EQ(map.size(), 0u);
    for (Addr k = 0; k < 100; ++k)
        EXPECT_EQ(map.find(k), nullptr);
}

TEST(SharerMap, EraseInsideACollisionChainKeepsFollowersReachable)
{
    // Regression for the zero-mask contract: entries must leave via
    // erase(), never by storing 0 through find()'s pointer. Build a
    // probe chain of colliding keys, remove ones in the middle the
    // correct way, and check every follower stays reachable.
    SharerMap map;
    // With the default 64-slot table, keys whose Fibonacci hash lands
    // in the same bucket collide; brute-force a colliding family.
    std::vector<Addr> family;
    const auto bucket = [](Addr k) {
        return std::size_t((k * std::uint64_t(0x9E3779B97F4A7C15)) >>
                           32) &
               63;
    };
    const std::size_t want = bucket(0x4000);
    for (Addr k = 1; family.size() < 6 && k < 100000; ++k)
        if (bucket(k * 64) == want)
            family.push_back(k * 64);
    ASSERT_EQ(family.size(), 6u);
    for (std::size_t i = 0; i < family.size(); ++i)
        map.upsert(family[i]) = std::uint64_t(1) << i;
    // Drop the last bit of the second entry the contractual way.
    std::uint64_t *mask = map.find(family[1]);
    ASSERT_NE(mask, nullptr);
    ASSERT_EQ(*mask & ~(std::uint64_t(1) << 1), 0u);
    map.erase(family[1]);
    for (std::size_t i = 2; i < family.size(); ++i) {
        std::uint64_t *got = map.find(family[i]);
        ASSERT_NE(got, nullptr) << "follower " << i << " lost";
        EXPECT_EQ(*got, std::uint64_t(1) << i);
    }
    // And erase() must still be able to remove each follower.
    for (std::size_t i = 2; i < family.size(); ++i)
        map.erase(family[i]);
    map.erase(family[0]);
    EXPECT_EQ(map.size(), 0u);
}

TEST(SharerMap, MatchesAReferenceModelUnderChurn)
{
    // Insert/update/erase churn over a small key universe (dense line
    // addresses, so probe chains collide and deletions must shift):
    // after every operation batch the two maps must agree exactly.
    SharerMap map;
    std::unordered_map<Addr, std::uint64_t> model;
    Rng rng(123);
    const Addr universe = 512;
    for (unsigned step = 0; step < 20000; ++step) {
        const Addr key = rng.below(universe);
        switch (rng.below(3)) {
        case 0: { // set a bit
            const std::uint64_t bit = std::uint64_t(1)
                                      << rng.below(64);
            map.upsert(key) |= bit;
            model[key] |= bit;
            break;
        }
        case 1: // erase
            map.erase(key);
            model.erase(key);
            break;
        default: // lookup only
            break;
        }
        std::uint64_t *got = map.find(key);
        const auto it = model.find(key);
        if (it == model.end()) {
            ASSERT_EQ(got, nullptr) << "step " << step;
        } else {
            ASSERT_NE(got, nullptr) << "step " << step;
            ASSERT_EQ(*got, it->second) << "step " << step;
        }
    }
    ASSERT_EQ(map.size(), model.size());
    for (const auto &[key, mask] : model) {
        std::uint64_t *got = map.find(key);
        ASSERT_NE(got, nullptr) << "key " << key;
        ASSERT_EQ(*got, mask);
    }
}

} // namespace
} // namespace wb::sim
