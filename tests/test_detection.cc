/**
 * @file
 * Tests for the online detection subsystem and the detector-vs-stealth
 * arms race (paper Sec. VII made quantitative; docs/DETECTION.md).
 *
 * The load-bearing claims:
 *  - the online per-tid collector is feature-equivalent to the offline
 *    tumbling-window reference on the quiet single-core case;
 *  - attaching the sampling hook is invisible: an observed run
 *    transmits bit-identically to an unobserved one;
 *  - the recorded score series is the same data the live alarm used,
 *    so post-hoc threshold sweeps are honest;
 *  - ROC detection and false-positive rates are monotone in the
 *    threshold;
 *  - the adaptive-stealth session settles under its budget while
 *    still delivering statistically nonzero goodput, and benign idle
 *    mixes stay alarm-free at the operating point (both Wilson-bounded
 *    over >= 16 seeds).
 */

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "chan/channel.hh"
#include "chan/cross_core.hh"
#include "perfmon/arms_race.hh"
#include "perfmon/detector.hh"
#include "perfmon/online.hh"
#include "sim/platform.hh"
#include "sim/scheduler.hh"
#include "stat_assert.hh"

namespace wb::perfmon
{
namespace
{

constexpr Cycles kWindow = 50000;

TEST(WindowFeatures, RatesPerKcycle)
{
    sim::PerfCounters delta;
    delta.l1Misses = 100;
    delta.l1DirtyWritebacks = 50;
    delta.l2Accesses = 20;
    delta.llcDirtyEvictions = 10;
    delta.crossCoreSnoops = 5;
    const WindowFeatures f = windowFeatures(delta, 10000);
    EXPECT_DOUBLE_EQ(f.l1MissPerKcycle, 10.0);
    EXPECT_DOUBLE_EQ(f.writebacksPerKcycle, 5.0);
    EXPECT_DOUBLE_EQ(f.l2AccessPerKcycle, 2.0);
    EXPECT_DOUBLE_EQ(f.backInvalPerKcycle, 1.0);
    EXPECT_DOUBLE_EQ(f.snoopPerKcycle, 0.5);
}

TEST(Wilson, MatchesTestSideHelper)
{
    // The src-side interval must agree with the tests' reference
    // implementation: tables print what the tests assert.
    for (unsigned k : {0u, 3u, 50u, 100u}) {
        const WilsonInterval src = wilsonInterval(k, 100);
        const auto ref = wb::test::wilsonInterval(double(k), 100.0);
        EXPECT_NEAR(src.lo, ref.lo, 1e-12);
        EXPECT_NEAR(src.hi, ref.hi, 1e-12);
    }
    const WilsonInterval empty = wilsonInterval(1, 0);
    EXPECT_DOUBLE_EQ(empty.lo, 0.0);
    EXPECT_DOUBLE_EQ(empty.hi, 1.0);
}

/**
 * Online-vs-offline equivalence: on the quiet single-core case the
 * online per-tid collector, summed over threads, must reproduce the
 * offline tumbling-window reference exactly — same workload builder,
 * same RNG draw order (Rng, Hierarchy, one SmtCore, then the bit
 * split), same window boundaries.
 */
TEST(OnlineDetector, OnlineMatchesOfflineFeatures)
{
    const unsigned windows = 12;
    const std::uint64_t seed = 7;
    const auto offline =
        collectTrace(Workload::WbChannel, windows, kWindow, seed);
    ASSERT_EQ(offline.size(), windows);

    Rng rng(seed);
    sim::HierarchyParams hp = sim::xeonE5_2650Params();
    sim::NoiseModel noise;
    sim::Hierarchy hierarchy(hp, &rng);

    OnlineDetectorConfig dc;
    dc.windowCycles = kWindow;
    OnlineDetector det(dc);
    sim::SchedulerConfig sc;
    det.attach(sc);
    EXPECT_TRUE(sc.active()); // sampling alone engages the run loop

    sim::Scheduler sched(static_cast<sim::MemorySystem &>(hierarchy),
                         noise, rng, sc, seed);
    sim::SmtCore &core = sched.party(0);
    std::vector<std::unique_ptr<sim::Program>> programs;
    Rng bitRng = rng.split();
    populateWorkload(Workload::WbChannel, core, hp,
                     hierarchy.l1().layout(), bitRng, 11000, programs);
    sched.run(Cycles(windows) * kWindow);

    ASSERT_GE(det.windowCount(), windows);
    for (unsigned w = 0; w < windows; ++w) {
        WindowFeatures sum;
        for (ThreadId tid : det.tids()) {
            const auto &recs = det.windows(tid);
            ASSERT_GT(recs.size(), w);
            sum.l1MissPerKcycle += recs[w].f.l1MissPerKcycle;
            sum.writebacksPerKcycle += recs[w].f.writebacksPerKcycle;
            sum.l2AccessPerKcycle += recs[w].f.l2AccessPerKcycle;
        }
        // Identical integer counter deltas; only the summation order
        // differs, so agreement is to floating-point round-off.
        EXPECT_NEAR(sum.l1MissPerKcycle, offline[w].l1MissPerKcycle, 1e-9);
        EXPECT_NEAR(sum.writebacksPerKcycle,
                    offline[w].writebacksPerKcycle, 1e-9);
        EXPECT_NEAR(sum.l2AccessPerKcycle, offline[w].l2AccessPerKcycle,
                    1e-9);
    }
}

/**
 * The sampling hook must not perturb the run: same seed with and
 * without an attached detector, bit-identical transmission.
 */
TEST(OnlineDetector, SamplingHookIsInvisible)
{
    chan::ChannelConfig base;
    base.usePlatform("desktop-inclusive-4core");
    base.protocol.ts = base.protocol.tr = 5500;
    base.protocol.frames = 2;
    base.protocol.frameBits = 64;
    base.seed = 11;
    base.scheduler.coRunners = sim::SchedulerConfig::mixOf(2);
    const chan::ChannelResult plain = chan::runChannel(base);

    chan::ChannelConfig watched = base;
    OnlineDetector det(OnlineDetectorConfig{});
    det.attach(watched.scheduler);
    const chan::ChannelResult observed = chan::runChannel(watched);

    EXPECT_EQ(observed.decodedBits, plain.decodedBits);
    EXPECT_EQ(observed.latencies, plain.latencies);
    EXPECT_DOUBLE_EQ(observed.ber, plain.ber);
    EXPECT_EQ(observed.simulatedCycles, plain.simulatedCycles);
    EXPECT_GT(det.windowCount(), 0u);
}

/**
 * A sampling-only scheduler config must degenerate to the plain
 * (schedulerless) path bit-for-bit — the same guarantee
 * CoRunnerIsolation makes for an empty config, extended to the hook.
 */
TEST(OnlineDetector, SamplingOnlyConfigMatchesPlainPath)
{
    chan::ChannelConfig base;
    base.protocol.frames = 2;
    base.protocol.frameBits = 64;
    base.seed = 5;
    ASSERT_FALSE(base.scheduler.active());
    const chan::ChannelResult plain = chan::runChannel(base);

    chan::ChannelConfig sampled = base;
    OnlineDetector det(OnlineDetectorConfig{});
    det.attach(sampled.scheduler);
    ASSERT_TRUE(sampled.scheduler.active());
    const chan::ChannelResult observed = chan::runChannel(sampled);

    EXPECT_EQ(observed.decodedBits, plain.decodedBits);
    EXPECT_EQ(observed.latencies, plain.latencies);
    EXPECT_EQ(observed.simulatedCycles, plain.simulatedCycles);
}

/** Party tids are reported so harnesses can label the covert pair. */
TEST(OnlineDetector, ChannelResultExposesPartyTids)
{
    chan::ChannelConfig cfg;
    cfg.protocol.frames = 2;
    cfg.protocol.frameBits = 64;
    cfg.scheduler.coRunners = sim::SchedulerConfig::mixOf(1);
    const chan::ChannelResult res = chan::runChannel(cfg);
    EXPECT_EQ(res.senderTid, 0u);
    EXPECT_EQ(res.receiverTid, 1u);

    chan::CrossCoreChannelConfig xc;
    xc.protocol.frames = 2;
    xc.scheduler.coRunners = sim::SchedulerConfig::mixOf(1);
    const chan::ChannelResult xres = chan::runCrossCoreChannel(xc);
    EXPECT_EQ(xres.senderTid, 0u);
    // The receiver is the second party front-end: tid base 8.
    EXPECT_EQ(xres.receiverTid, 8u);
}

/**
 * The recorded smoothed series re-scored at the configured threshold
 * must reproduce the live alarm decisions: one run honestly serves a
 * whole post-hoc threshold sweep.
 */
TEST(OnlineDetector, RecordedScoresMatchLiveAlarms)
{
    ArmsRaceConfig cfg;
    cfg.coRunners = 2;
    chan::ChannelConfig ch;
    ch.usePlatform(cfg.platformName);
    ch.protocol.ts = ch.protocol.tr = cfg.ts;
    ch.protocol.frames = cfg.frames;
    ch.protocol.frameBits = cfg.frameBits;
    ch.seed = 3;
    ch.scheduler.coRunners = sim::SchedulerConfig::mixOf(cfg.coRunners);
    OnlineDetector det(cfg.detector);
    det.attach(ch.scheduler);
    chan::runChannel(ch);

    ASSERT_FALSE(det.tids().empty());
    for (ThreadId tid : det.tids()) {
        EXPECT_EQ(det.alarmsAt(tid, cfg.detector.threshold),
                  det.liveAlarms(tid));
        // And the recorded flags agree window by window.
        for (const WindowRecord &rec : det.windows(tid))
            EXPECT_EQ(rec.alarmed,
                      rec.smoothed > cfg.detector.threshold);
    }
}

/** Detection and false-positive rates are monotone in the threshold. */
TEST(Roc, MonotoneInThreshold)
{
    ArmsRaceConfig cfg;
    cfg.coRunners = 2;
    std::vector<ScenarioOutcome> outs;
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        outs.push_back(runDetectionScenario(
            cfg, DetectionScenario::WbChannelD8, seed));
        outs.push_back(runDetectionScenario(
            cfg, DetectionScenario::CompilerPair, seed));
    }
    const std::vector<double> thresholds = {0.1, 0.25, 0.5, 0.75, 1.0,
                                            1.5, 2.5};
    const auto roc = buildRoc(outs, thresholds);
    ASSERT_EQ(roc.size(), thresholds.size());
    for (std::size_t i = 1; i < roc.size(); ++i) {
        EXPECT_LE(roc[i].detectRate, roc[i - 1].detectRate);
        EXPECT_LE(roc[i].fpr, roc[i - 1].fpr);
    }
    for (const RocPoint &pt : roc) {
        // Round-off tolerance: at a rate of exactly 0 or 1 the Wilson
        // bound equals the rate only up to floating-point error.
        EXPECT_LE(pt.detect.lo, pt.detectRate + 1e-12);
        EXPECT_GE(pt.detect.hi, pt.detectRate - 1e-12);
        EXPECT_LE(pt.fp.lo, pt.fpr + 1e-12);
        EXPECT_GE(pt.fp.hi, pt.fpr - 1e-12);
        EXPECT_EQ(pt.attackWindows,
                  outs[0].pairSmoothed.size() +
                      outs[2].pairSmoothed.size());
    }
}

/**
 * Benign idle mixes stay quiet at the operating point: pooled false
 * positives over >= 16 seeds are Wilson-bounded near zero.
 */
TEST(Roc, IdleMixFalsePositivesNearZero)
{
    auto sweep = wb::test::sweepSeeds([](std::uint64_t seed) {
        ArmsRaceConfig cfg;
        cfg.coRunners = 2;
        cfg.seed = seed;
        const ScenarioOutcome o = runDetectionScenario(
            cfg, DetectionScenario::IdlePair, seed);
        double alarms = 0.0;
        for (double s : o.benignSmoothed)
            alarms += s > cfg.detector.threshold ? 1.0 : 0.0;
        return wb::test::Proportion{alarms,
                                    double(o.benignSmoothed.size())};
    });
    // FP rate below 2% with 99% confidence at threshold 1.0.
    EXPECT_BER_BELOW(sweep, 0.02);
}

/**
 * The arms race's ending: the adaptive-stealth session settles under
 * its budget (and so under the operating threshold) in every session,
 * while pooled payload correctness stays statistically above a coin
 * flip — stealth with nonzero goodput.
 */
TEST(Stealth, SettlesUnderBudgetWithNonzeroGoodput)
{
    wb::test::ProportionSweep bits;
    const StealthConfig st;
    double budget = 0.0;
    for (std::uint64_t seed = 1;
         seed <= wb::test::ProportionSweep::kMinRuns; ++seed) {
        ArmsRaceConfig cfg;
        cfg.coRunners = 4;
        cfg.seed = seed;
        budget = st.budgetFraction * cfg.detector.threshold;
        const StealthOutcome out = runStealthSession(cfg, st);

        EXPECT_LT(out.settledPeak, budget);
        EXPECT_LT(out.settledPeak, cfg.detector.threshold);
        // The settled half never trips the budget again.
        for (std::size_t r = out.rounds.size() / 2;
             r < out.rounds.size(); ++r)
            EXPECT_FALSE(out.rounds[r].overBudget);
        // The greedy starting rung was genuinely over budget — the
        // controller had something to do.
        EXPECT_TRUE(out.rounds.front().overBudget);
        bits.add(wb::test::Proportion{double(out.bitsCorrect),
                                      double(out.bitsTotal)});
    }
    // Pooled correct-bit rate above 0.5 with 99% confidence.
    EXPECT_ACCURACY_ABOVE(bits, 0.5);
}

} // namespace
} // namespace wb::perfmon
