/**
 * @file
 * End-to-end cross-core experiments (chan/cross_core.hh, the
 * cross-core sidechan variant, the cross-core Prime+Probe baseline):
 * the shared inclusive LLC carries the dirty-state signal between
 * cores, the non-inclusive LLC does not.
 *
 * Channel quality claims are pooled multi-seed statistical assertions
 * (tests/stat_assert.hh); per-seed structural checks (calibrated
 * signal gap, counter plumbing) keep one representative seed.
 */

#include <gtest/gtest.h>

#include "baselines/prime_probe.hh"
#include "chan/cross_core.hh"
#include "sidechan/attack.hh"
#include "stat_assert.hh"

namespace wb
{
namespace
{

/**
 * Error proportion of one cross-core transmission. Frames the decoder
 * failed to locate count as half wrong (the no-information regime).
 */
test::Proportion
crossCoreBer(chan::CrossCoreChannelConfig cfg, std::uint64_t seed)
{
    cfg.seed = seed;
    const auto res = chan::runCrossCoreChannel(cfg);
    const double payload = cfg.protocol.frameBits - 16;
    const double expected = res.framesExpected * payload;
    const double scored = res.framesScored * payload;
    return {res.ber * scored + 0.5 * (expected - scored), expected};
}

/** Accuracy proportion of one cross-core attack run. */
test::Proportion
attackAccuracy(sidechan::AttackConfig cfg, std::uint64_t seed)
{
    cfg.seed = seed;
    const auto res = sidechan::runAttack(cfg);
    return {res.accuracy * cfg.trials, double(cfg.trials)};
}

TEST(CrossCoreChannel, UsePlatformResolvesCores)
{
    chan::CrossCoreChannelConfig cfg;
    cfg.usePlatform("desktop-inclusive-4core");
    EXPECT_EQ(cfg.cores, 4u);
    EXPECT_TRUE(cfg.platform.inclusiveLlc);
    cfg.usePlatform("xeonE5-2650"); // single-core preset: still 2
    EXPECT_EQ(cfg.cores, 2u);
}

TEST(CrossCoreChannel, InclusiveLlcCarriesTheChannel)
{
    chan::CrossCoreChannelConfig cfg;
    cfg.usePlatform("desktop-inclusive-4core");
    cfg.protocol.frames = 2;

    const auto sweep = test::sweepSeeds([&](std::uint64_t seed) {
        return crossCoreBer(cfg, seed);
    });
    EXPECT_BER_BELOW(sweep, 0.05);

    // Structural checks on one representative run: the calibrated
    // signal gap is ~d_max drain penalties, and the receiver observed
    // the sender's dirty lines as LLC drains.
    cfg.seed = 7;
    const auto res = chan::runCrossCoreChannel(cfg);
    const unsigned top = cfg.protocol.encoding.maxLevel();
    ASSERT_LT(top, res.calibrationMedians.size());
    const double gap =
        res.calibrationMedians[top] - res.calibrationMedians[0];
    const double perLine =
        static_cast<double>(cfg.platform.lat.llcDirtyEvictPenalty);
    EXPECT_GT(gap, perLine * top * 0.6);
    EXPECT_LT(gap, perLine * top * 1.4);
    EXPECT_GT(res.receiverCounters.llcDirtyEvictions, 100u);
}

TEST(CrossCoreChannel, NonInclusiveLlcClosesTheChannel)
{
    chan::CrossCoreChannelConfig cfg;
    cfg.usePlatform("xeonE5-2650-2core");
    cfg.protocol.frames = 2;

    // No back-invalidation: the sender's dirty lines stay in its
    // privates, the receiver's evictions never reach them, and the
    // pooled BER pins near the coin-flip regime.
    const auto sweep = test::sweepSeeds([&](std::uint64_t seed) {
        return crossCoreBer(cfg, seed);
    });
    EXPECT_BER_ABOVE(sweep, 0.30);

    cfg.seed = 7;
    const auto res = chan::runCrossCoreChannel(cfg);
    const unsigned top = cfg.protocol.encoding.maxLevel();
    ASSERT_LT(top, res.calibrationMedians.size());
    const double gap =
        res.calibrationMedians[top] - res.calibrationMedians[0];
    EXPECT_LT(gap, 5.0);
    EXPECT_EQ(res.receiverCounters.llcDirtyEvictions, 0u);
}

TEST(CrossCoreAttack, StoreGadgetRecoversSecrets)
{
    sidechan::AttackConfig cfg;
    cfg.usePlatform("desktop-inclusive-4core");
    cfg.crossCore = true;
    EXPECT_EQ(cfg.cores, 4u); // adopted from the preset
    cfg.scenario = sidechan::Scenario::DirtyProbe;
    cfg.trials = 48;
    cfg.calibration = 100;

    const auto sweep = test::sweepSeeds([&](std::uint64_t seed) {
        return attackAccuracy(cfg, seed);
    });
    EXPECT_ACCURACY_ABOVE(sweep, 0.95);

    cfg.seed = 9;
    const auto res = sidechan::runAttack(cfg);
    EXPECT_GT(res.meanLatency1, res.meanLatency0 + 5.0);
}

TEST(CrossCoreAttack, DirtyPrimeRecoversLoadSecrets)
{
    sidechan::AttackConfig cfg;
    cfg.usePlatform("desktop-inclusive-4core");
    cfg.crossCore = true;
    cfg.cores = 4;
    cfg.scenario = sidechan::Scenario::DirtyPrime;
    cfg.trials = 48;
    cfg.calibration = 100;

    const auto sweep = test::sweepSeeds([&](std::uint64_t seed) {
        return attackAccuracy(cfg, seed);
    });
    EXPECT_ACCURACY_ABOVE(sweep, 0.95);

    // secret=1 evicts dirty prime lines: the probe gets *cheaper*.
    cfg.seed = 9;
    const auto res = sidechan::runAttack(cfg);
    EXPECT_LT(res.meanLatency1, res.meanLatency0);
}

TEST(CrossCorePrimeProbe, InclusiveLlcCarriesTheChannel)
{
    baselines::BaselineConfig cfg;
    cfg.usePlatform("desktop-inclusive-4core");
    cfg.ts = cfg.tr = 12000;
    cfg.frames = 4;
    cfg.targetSet = 37;

    const auto sweep = test::sweepSeeds([cfg](std::uint64_t seed) mutable {
        cfg.seed = seed;
        const auto res = baselines::runCrossCorePrimeProbe(cfg, 2, 4);
        // This runner systematically truncates the tail frame (its
        // sampling window ends a frame early), and an unlucky noise
        // trajectory can additionally desynchronise one more frame;
        // score the located frames but never accept losing more than
        // those two.
        EXPECT_GE(res.framesScored + 2, res.framesExpected)
            << "seed " << seed;
        const double scored = res.framesScored * (cfg.frameBits - 16.0);
        return test::Proportion{res.ber * scored, scored};
    });
    EXPECT_BER_BELOW(sweep, 0.1);
}

TEST(CrossCorePrimeProbe, NonInclusiveLlcClosesTheChannel)
{
    baselines::BaselineConfig cfg;
    cfg.usePlatform("xeonE5-2650-2core");
    cfg.ts = cfg.tr = 12000;
    cfg.frames = 2;
    cfg.targetSet = 37;

    const auto sweep = test::sweepSeeds([cfg](std::uint64_t seed) mutable {
        cfg.seed = seed;
        const auto res = baselines::runCrossCorePrimeProbe(cfg, 2, 2);
        const double payload = cfg.frameBits - 16;
        const double expected = res.framesExpected * payload;
        const double scored = res.framesScored * payload;
        return test::Proportion{
            res.ber * scored + 0.5 * (expected - scored), expected};
    });
    EXPECT_BER_ABOVE(sweep, 0.30);
}

} // namespace
} // namespace wb
