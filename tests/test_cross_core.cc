/**
 * @file
 * End-to-end cross-core experiments (chan/cross_core.hh, the
 * cross-core sidechan variant, the cross-core Prime+Probe baseline):
 * the shared inclusive LLC carries the dirty-state signal between
 * cores, the non-inclusive LLC does not.
 */

#include <gtest/gtest.h>

#include "baselines/prime_probe.hh"
#include "chan/cross_core.hh"
#include "sidechan/attack.hh"

namespace wb
{
namespace
{

TEST(CrossCoreChannel, UsePlatformResolvesCores)
{
    chan::CrossCoreChannelConfig cfg;
    cfg.usePlatform("desktop-inclusive-4core");
    EXPECT_EQ(cfg.cores, 4u);
    EXPECT_TRUE(cfg.platform.inclusiveLlc);
    cfg.usePlatform("xeonE5-2650"); // single-core preset: still 2
    EXPECT_EQ(cfg.cores, 2u);
}

TEST(CrossCoreChannel, InclusiveLlcCarriesTheChannel)
{
    chan::CrossCoreChannelConfig cfg;
    cfg.usePlatform("desktop-inclusive-4core");
    cfg.protocol.frames = 2;
    cfg.seed = 7;
    const auto res = chan::runCrossCoreChannel(cfg);

    EXPECT_TRUE(res.aligned);
    EXPECT_LE(res.ber, 0.02);
    EXPECT_EQ(res.framesScored, 2u);

    // The calibrated signal gap is ~d_max drain penalties.
    const unsigned top = cfg.protocol.encoding.maxLevel();
    ASSERT_LT(top, res.calibrationMedians.size());
    const double gap =
        res.calibrationMedians[top] - res.calibrationMedians[0];
    const double perLine =
        static_cast<double>(cfg.platform.lat.llcDirtyEvictPenalty);
    EXPECT_GT(gap, perLine * top * 0.6);
    EXPECT_LT(gap, perLine * top * 1.4);

    // The receiver observed the sender's dirty lines as LLC drains.
    EXPECT_GT(res.receiverCounters.llcDirtyEvictions, 100u);
}

TEST(CrossCoreChannel, NonInclusiveLlcClosesTheChannel)
{
    chan::CrossCoreChannelConfig cfg;
    cfg.usePlatform("xeonE5-2650-2core");
    cfg.protocol.frames = 2;
    cfg.seed = 7;
    const auto res = chan::runCrossCoreChannel(cfg);

    // No back-invalidation: the sender's dirty lines stay in its
    // privates, the receiver's evictions never reach them.
    const unsigned top = cfg.protocol.encoding.maxLevel();
    ASSERT_LT(top, res.calibrationMedians.size());
    const double gap =
        res.calibrationMedians[top] - res.calibrationMedians[0];
    EXPECT_LT(gap, 5.0);
    EXPECT_EQ(res.receiverCounters.llcDirtyEvictions, 0u);
    EXPECT_GE(res.ber, 0.3);
}

TEST(CrossCoreAttack, StoreGadgetRecoversSecrets)
{
    sidechan::AttackConfig cfg;
    cfg.usePlatform("desktop-inclusive-4core");
    cfg.crossCore = true;
    EXPECT_EQ(cfg.cores, 4u); // adopted from the preset
    cfg.scenario = sidechan::Scenario::DirtyProbe;
    cfg.trials = 120;
    cfg.calibration = 100;
    cfg.seed = 9;
    const auto res = sidechan::runAttack(cfg);
    EXPECT_GE(res.accuracy, 0.95);
    EXPECT_GT(res.meanLatency1, res.meanLatency0 + 5.0);
}

TEST(CrossCoreAttack, DirtyPrimeRecoversLoadSecrets)
{
    sidechan::AttackConfig cfg;
    cfg.usePlatform("desktop-inclusive-4core");
    cfg.crossCore = true;
    cfg.cores = 4;
    cfg.scenario = sidechan::Scenario::DirtyPrime;
    cfg.trials = 120;
    cfg.calibration = 100;
    cfg.seed = 9;
    const auto res = sidechan::runAttack(cfg);
    EXPECT_GE(res.accuracy, 0.95);
    // secret=1 evicts dirty prime lines: the probe gets *cheaper*.
    EXPECT_LT(res.meanLatency1, res.meanLatency0);
}

TEST(CrossCorePrimeProbe, InclusiveLlcCarriesTheChannel)
{
    baselines::BaselineConfig cfg;
    cfg.usePlatform("desktop-inclusive-4core");
    cfg.ts = cfg.tr = 12000;
    cfg.frames = 4;
    cfg.targetSet = 37;
    const auto res = baselines::runCrossCorePrimeProbe(cfg, 2, 4);
    EXPECT_TRUE(res.aligned);
    EXPECT_LE(res.ber, 0.1);
}

TEST(CrossCorePrimeProbe, NonInclusiveLlcClosesTheChannel)
{
    baselines::BaselineConfig cfg;
    cfg.usePlatform("xeonE5-2650-2core");
    cfg.ts = cfg.tr = 12000;
    cfg.frames = 2;
    cfg.targetSet = 37;
    const auto res = baselines::runCrossCorePrimeProbe(cfg, 2, 2);
    EXPECT_GE(res.ber, 0.3);
}

} // namespace
} // namespace wb
