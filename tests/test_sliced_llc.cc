/**
 * @file
 * Sliced-LLC correctness: the slice hash itself, bit-exactness of the
 * sharer-directory coherence against the retained global-scan
 * reference (on sliced and unsliced presets), directory rebuild on
 * re-enable, and ground-truth back-invalidation through a slice.
 *
 * The directory-vs-scan equivalence is the load-bearing claim: the
 * scan mode is the pre-directory implementation kept verbatim, so
 * "directory mode produces identical per-access results, PerfCounters
 * and cache state" is exactly "the perf optimisation changed no
 * architecture". CoherenceStats are exempt by design — they count
 * interconnect probes, which is the thing the directory shrinks.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hh"
#include "sim/multicore.hh"
#include "sim/platform.hh"
#include "sim/slice_hash.hh"

namespace wb::sim
{
namespace
{

// ------------------------------------------------------- slice hash

TEST(SliceHash, SingleSliceAlwaysZero)
{
    const SliceHash h(1, 12);
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(h.sliceOf(rng.next()), 0u);
}

TEST(SliceHash, StaysInRangeAndIsDeterministic)
{
    Rng rng(3);
    for (unsigned slices : {2u, 4u, 8u}) {
        const SliceHash h(slices, 12);
        for (int i = 0; i < 2000; ++i) {
            const Addr la = rng.next();
            const unsigned s = h.sliceOf(la);
            EXPECT_LT(s, slices);
            EXPECT_EQ(s, h.sliceOf(la)) << "not deterministic";
        }
    }
}

TEST(SliceHash, SpreadsTagsAcrossAllSlices)
{
    // Lines sharing a set index differ only in tag bits; the XOR-of-
    // tag-bits hash must scatter them over every slice with no
    // grossly starved bucket (each gets 1/8 +- a generous factor).
    const SliceHash h(8, 12);
    std::vector<unsigned> hits(8, 0);
    const unsigned n = 4096;
    for (unsigned tag = 1; tag <= n; ++tag)
        ++hits[h.sliceOf((Addr(tag) << 12) | 37)];
    for (unsigned s = 0; s < 8; ++s) {
        EXPECT_GT(hits[s], n / 16) << "slice " << s << " starved";
        EXPECT_LT(hits[s], n / 4) << "slice " << s << " overloaded";
    }
}

TEST(SliceHash, FoldsHighBitsIntoTheHash)
{
    // Address-space ids land far above the tag's low bits; they must
    // still influence slice selection (the hash folds the upper half
    // down), or every tenant pool would scatter identically.
    const SliceHash h(8, 12);
    bool differs = false;
    for (unsigned asid = 1; asid < 64 && !differs; ++asid)
        differs = h.sliceOf((Addr(asid) << 38) | (1u << 12) | 37) !=
                  h.sliceOf((Addr(1) << 12) | 37);
    EXPECT_TRUE(differs);
}

// -------------------------------------- directory vs scan bit-exact

void
expectCountersEqual(const PerfCounters &a, const PerfCounters &b,
                    const std::string &label)
{
    EXPECT_EQ(a.loads, b.loads) << label;
    EXPECT_EQ(a.stores, b.stores) << label;
    EXPECT_EQ(a.l1Hits, b.l1Hits) << label;
    EXPECT_EQ(a.l1Misses, b.l1Misses) << label;
    EXPECT_EQ(a.l2Accesses, b.l2Accesses) << label;
    EXPECT_EQ(a.l2Hits, b.l2Hits) << label;
    EXPECT_EQ(a.l2Misses, b.l2Misses) << label;
    EXPECT_EQ(a.llcAccesses, b.llcAccesses) << label;
    EXPECT_EQ(a.llcHits, b.llcHits) << label;
    EXPECT_EQ(a.llcMisses, b.llcMisses) << label;
    EXPECT_EQ(a.l1DirtyWritebacks, b.l1DirtyWritebacks) << label;
    EXPECT_EQ(a.llcDirtyEvictions, b.llcDirtyEvictions) << label;
    EXPECT_EQ(a.crossCoreSnoops, b.crossCoreSnoops) << label;
    EXPECT_EQ(a.flushes, b.flushes) << label;
}

void
expectCacheStateEqual(Cache &a, Cache &b, const std::string &label)
{
    ASSERT_EQ(a.numSets(), b.numSets()) << label;
    for (unsigned set = 0; set < a.numSets(); ++set) {
        const auto la = a.setContents(set);
        const auto lb = b.setContents(set);
        ASSERT_EQ(la.size(), lb.size()) << label;
        for (std::size_t w = 0; w < la.size(); ++w) {
            EXPECT_EQ(la[w].valid, lb[w].valid)
                << label << " set " << set << " way " << w;
            EXPECT_EQ(la[w].dirty, lb[w].dirty)
                << label << " set " << set << " way " << w;
            if (la[w].valid)
                EXPECT_EQ(la[w].lineAddr, lb[w].lineAddr)
                    << label << " set " << set << " way " << w;
        }
    }
}

void
expectSystemsEqual(MultiCoreSystem &a, MultiCoreSystem &b,
                   const std::string &label)
{
    ASSERT_EQ(a.coreCount(), b.coreCount()) << label;
    ASSERT_EQ(a.llcSliceCount(), b.llcSliceCount()) << label;
    for (unsigned core = 0; core < a.coreCount(); ++core) {
        for (ThreadId tid = 0; tid < 2; ++tid)
            expectCountersEqual(a.counters(core, tid),
                                b.counters(core, tid),
                                label + " core " + std::to_string(core) +
                                    " tid " + std::to_string(tid));
        expectCacheStateEqual(a.l1(core), b.l1(core),
                              label + " L1 core " + std::to_string(core));
        expectCacheStateEqual(a.l2(core), b.l2(core),
                              label + " L2 core " + std::to_string(core));
    }
    for (unsigned s = 0; s < a.llcSliceCount(); ++s)
        expectCacheStateEqual(a.llcSlice(s), b.llcSlice(s),
                              label + " LLC slice " + std::to_string(s));
}

/**
 * Random coherence-heavy traffic: core-hopping load/store chunks
 * concentrated on a few aggregate LLC sets, with occasional coherent
 * flushes. Drives @p mc through @p chunks chunks with @p stream.
 */
void
driveTraffic(MultiCoreSystem &mc, Rng &stream, unsigned chunks,
             const HierarchyParams &params)
{
    const AddressLayout llcLayout(params.llc.numSets());
    const unsigned cores = mc.coreCount();
    // Wide tag range: with 8 slices only ~1/8 of the tags land in a
    // given slice-set, so the range must overfill slice-sets, not
    // just the aggregate set.
    const Addr tagRange =
        3ull * params.llc.ways * std::max(1u, params.llcSlices);
    for (unsigned c = 0; c < chunks; ++c) {
        const unsigned core = unsigned(stream.below(cores));
        const ThreadId tid = ThreadId(stream.below(2));
        const bool isWrite = stream.chance(0.45);
        const std::size_t len = 1 + stream.below(24);
        std::vector<Addr> paddrs;
        paddrs.reserve(len);
        for (std::size_t i = 0; i < len; ++i) {
            const unsigned set =
                unsigned(stream.below(3)) * 11 % llcLayout.numSets();
            const Addr tag = 1 + stream.below(tagRange);
            paddrs.push_back(llcLayout.compose(set, tag));
        }
        if (stream.chance(0.06)) {
            mc.flush(core, tid, paddrs[0]);
            continue;
        }
        mc.accessBatch(core, tid, paddrs, isWrite);
    }
}

class SlicedLlcEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>>
{
};

TEST_P(SlicedLlcEquivalence, DirectoryMatchesGlobalScanBitExactly)
{
    const auto &[platformName, seed] = GetParam();
    const Platform &plat = platform(platformName);
    const unsigned cores = std::max(2u, plat.cores);
    const std::string label =
        platformName + "/seed" + std::to_string(seed);

    Rng rngDir(seed * 9241 + 3);
    Rng rngScan(seed * 9241 + 3);
    MultiCoreSystem dir(plat.params, cores, &rngDir);
    MultiCoreSystem scan(plat.params, cores, &rngScan);
    // Force the modes explicitly: the default is topology-dependent
    // (kDirectoryMinCores), and this suite must compare directory
    // against scan on every preset, including the small ones.
    dir.setDirectoryCoherence(true);
    scan.setDirectoryCoherence(false);

    // Identical traffic into both systems, compared access by access:
    // the per-chunk totals catch a divergence where it first appears.
    const AddressLayout llcLayout(plat.params.llc.numSets());
    Rng stream(seed ^ 0xd1f);
    const unsigned chunks = 300;
    const Addr tagRange = 3ull * plat.params.llc.ways *
                          std::max(1u, plat.params.llcSlices);
    for (unsigned c = 0; c < chunks; ++c) {
        const unsigned core = unsigned(stream.below(cores));
        const ThreadId tid = ThreadId(stream.below(2));
        const bool isWrite = stream.chance(0.45);
        const std::size_t len = 1 + stream.below(24);
        std::vector<Addr> paddrs;
        for (std::size_t i = 0; i < len; ++i) {
            const unsigned set =
                unsigned(stream.below(3)) * 11 % llcLayout.numSets();
            const Addr tag = 1 + stream.below(tagRange);
            paddrs.push_back(llcLayout.compose(set, tag));
        }
        if (stream.chance(0.06)) {
            const Cycles fa = dir.flush(core, tid, paddrs[0]);
            const Cycles fb = scan.flush(core, tid, paddrs[0]);
            ASSERT_EQ(fa, fb) << label << " flush chunk " << c;
            continue;
        }
        const BatchAccessResult ra =
            dir.accessBatch(core, tid, paddrs, isWrite);
        const BatchAccessResult rb =
            scan.accessBatch(core, tid, paddrs, isWrite);
        ASSERT_EQ(ra.l1Hits, rb.l1Hits) << label << " chunk " << c;
        ASSERT_EQ(ra.l1DirtyEvictions, rb.l1DirtyEvictions)
            << label << " chunk " << c;
        ASSERT_EQ(ra.totalLatency, rb.totalLatency)
            << label << " chunk " << c;
    }

    expectSystemsEqual(dir, scan, label);

    // Event counts agree (same architectural history); the directory
    // must have probed no *more* private pairs than the full scan —
    // fewer is the point, more would mean phantom sharers.
    const CoherenceStats &cd = dir.coherenceStats();
    const CoherenceStats &cs = scan.coherenceStats();
    EXPECT_EQ(cd.invalidateEvents, cs.invalidateEvents) << label;
    EXPECT_EQ(cd.snoopEvents, cs.snoopEvents) << label;
    EXPECT_EQ(cd.backInvalEvents, cs.backInvalEvents) << label;
    EXPECT_EQ(cd.flushEvents, cs.flushEvents) << label;
    EXPECT_LE(cd.privateProbes, cs.privateProbes) << label;
}

INSTANTIATE_TEST_SUITE_P(
    Presets, SlicedLlcEquivalence,
    ::testing::Combine(
        ::testing::Values(std::string("dc-sliced-16core"),
                          std::string("desktop-inclusive-4core"),
                          std::string("xeonE5-2650-2core")),
        ::testing::Values(1ULL, 2ULL)),
    [](const ::testing::TestParamInfo<
        std::tuple<std::string, std::uint64_t>> &info) {
        std::string name = std::get<0>(info.param) + "_s" +
                           std::to_string(std::get<1>(info.param));
        for (char &ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

// ------------------------------------------ rebuild and introspection

TEST(SlicedLlc, DirectoryRebuildSurvivesMidRunToggle)
{
    const Platform &plat = platform("dc-sliced-16core");
    Rng rngA(41), rngB(41);
    MultiCoreSystem stayOn(plat.params, plat.cores, &rngA);
    MultiCoreSystem toggled(plat.params, plat.cores, &rngB);

    Rng streamA(99), streamB(99);
    driveTraffic(stayOn, streamA, 60, plat.params);
    driveTraffic(toggled, streamB, 60, plat.params);
    // Toggle through scan mode and back: re-enabling must rebuild the
    // sharer directory from live cache contents, not resume a stale
    // (now empty) one — a missing presence bit would skip a required
    // invalidation and the states would diverge below.
    toggled.setDirectoryCoherence(false);
    toggled.setDirectoryCoherence(true);
    driveTraffic(stayOn, streamA, 60, plat.params);
    driveTraffic(toggled, streamB, 60, plat.params);
    expectSystemsEqual(stayOn, toggled, "mid-run directory rebuild");
}

TEST(SlicedLlc, MonolithicViewIsFatalOnShardedLlc)
{
    const Platform &plat = platform("dc-sliced-16core");
    Rng rng(1);
    MultiCoreSystem mc(plat.params, plat.cores, &rng);
    EXPECT_EQ(mc.llcSliceCount(), 8u);
    EXPECT_EXIT((void)mc.llc(), ::testing::ExitedWithCode(1),
                "no monolithic view");
}

TEST(SlicedLlc, SingleSliceKeepsTheMonolithicView)
{
    const Platform &plat = platform("desktop-inclusive-4core");
    ASSERT_LE(plat.params.llcSlices, 1u);
    Rng rng(1);
    MultiCoreSystem mc(plat.params, plat.cores, &rng);
    EXPECT_EQ(mc.llcSliceCount(), 1u);
    // llc() and llcSlice(0) are the same cache, full aggregate size.
    EXPECT_EQ(&mc.llc(), &mc.llcSlice(0));
    EXPECT_EQ(mc.llc().numSets(), plat.params.llc.numSets());
    Rng probe(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(mc.sliceOf(probe.next()), 0u);
}

TEST(SlicedLlc, ShardGeometrySplitsTheAggregate)
{
    const Platform &plat = platform("dc-sliced-64core");
    Rng rng(1);
    MultiCoreSystem mc(plat.params, plat.cores, &rng);
    ASSERT_EQ(mc.llcSliceCount(), plat.params.llcSlices);
    unsigned totalSets = 0;
    for (unsigned s = 0; s < mc.llcSliceCount(); ++s) {
        EXPECT_EQ(mc.llcSlice(s).numSets(),
                  plat.params.llc.numSets() / plat.params.llcSlices);
        totalSets += mc.llcSlice(s).numSets();
    }
    EXPECT_EQ(totalSets, plat.params.llc.numSets());
}

// ------------------------------------- ground-truth back-invalidation

TEST(SlicedLlc, InclusiveBackInvalidationCrossesTheSlice)
{
    const Platform &plat = platform("dc-sliced-16core");
    ASSERT_TRUE(plat.params.inclusiveLlc);
    MultiCoreSystem mc(plat.params, plat.cores, nullptr);

    // Ground truth (test-only): collect ways + 1 lines congruent with
    // the victim — same slice AND same slice-set index.
    const AddressLayout llcLayout(plat.params.llc.numSets());
    const unsigned sliceSets =
        plat.params.llc.numSets() / plat.params.llcSlices;
    const Addr victim = llcLayout.compose(123, 1);
    const unsigned vSlice = mc.sliceOf(victim);
    const Addr vIndex = AddressLayout::lineAddr(victim) & (sliceSets - 1);
    std::vector<Addr> congruent;
    for (Addr tag = 2; congruent.size() < plat.params.llc.ways + 1;
         ++tag) {
        const Addr cand = llcLayout.compose(123, tag);
        if (mc.sliceOf(cand) == vSlice &&
            (AddressLayout::lineAddr(cand) & (sliceSets - 1)) == vIndex)
            congruent.push_back(cand);
    }

    // Core 1 holds the victim; core 0 overfills the victim's
    // slice-set. Inclusion must kill core 1's private copies even
    // though core 1 never saw the traffic.
    mc.access(1, 0, victim, false);
    ASSERT_TRUE(mc.l1(1).contains(victim));
    for (int sweep = 0; sweep < 2; ++sweep)
        for (Addr line : congruent)
            mc.access(0, 0, line, false);
    EXPECT_FALSE(mc.llcSlice(vSlice).contains(victim));
    EXPECT_FALSE(mc.l1(1).contains(victim)) << "no back-invalidation";
    EXPECT_FALSE(mc.l2(1).contains(victim)) << "no back-invalidation";
    EXPECT_GT(mc.coherenceStats().backInvalEvents, 0u);
}

} // namespace
} // namespace wb::sim
