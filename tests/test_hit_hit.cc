/**
 * @file
 * Tests for the Hit+Hit (CacheBleed-style) baseline channel, the third
 * class of the paper's taxonomy as a working exemplar.
 */

#include <gtest/gtest.h>

#include "baselines/hit_hit_channel.hh"

namespace wb::baselines
{
namespace
{

BaselineConfig
config(std::uint64_t seed = 3)
{
    BaselineConfig cfg;
    cfg.ts = cfg.tr = 5500;
    cfg.frames = 12;
    cfg.seed = seed;
    return cfg;
}

TEST(HitHit, TransmitsViaContention)
{
    auto res = runHitHitChannel(config());
    EXPECT_TRUE(res.aligned);
    EXPECT_LT(res.ber, 0.10);
}

TEST(HitHit, NoContentionNoChannel)
{
    // Turn off SMT port contention: the physical medium disappears.
    auto cfg = config();
    cfg.noise.portContentionProb = 0.0;
    auto res = runHitHitChannel(cfg);
    EXPECT_GT(res.ber, 0.25);
}

TEST(HitHit, BiggerBurstsAverageOutNoise)
{
    double smallBurst = 0, bigBurst = 0;
    for (std::uint64_t seed : {3, 4, 5}) {
        smallBurst += runHitHitChannel(config(seed), 8).ber;
        bigBurst += runHitHitChannel(config(seed), 96).ber;
    }
    // The per-load signal is ~0.5 cycles: a tiny burst drowns in
    // measurement noise, a large one integrates it out.
    EXPECT_LT(bigBurst, smallBurst);
}

TEST(HitHit, AllReceiverAccessesAreHits)
{
    // The defining property of the class: the receiver never misses
    // (beyond its one cold fill).
    auto res = runHitHitChannel(config());
    EXPECT_LE(res.receiverCounters.l1Misses, 3u);
    EXPECT_GT(res.receiverCounters.l1Hits, 1000u);
}

TEST(HitHit, RequiresConcurrentExecution)
{
    // Unlike the WB channel, stretching the slot does not help the
    // Hit+Hit receiver if the sender's hammering is diluted: with the
    // sender hammering only 1/8 of each slot and phases drifting, the
    // receiver's burst usually samples a quiet core. (The paper: such
    // channels need truly concurrent hyper-threads.) We emulate the
    // dilution by shrinking ts for the sender relative to tr... the
    // framework keeps ts == tr, so instead verify the complementary
    // direction: the clean channel needs the default contention
    // window; halving the probability degrades it measurably.
    auto cfg = config();
    auto base = runHitHitChannel(cfg);
    cfg.noise.portContentionProb = 0.08;
    auto weak = runHitHitChannel(cfg);
    EXPECT_GE(weak.ber, base.ber);
}

} // namespace
} // namespace wb::baselines
