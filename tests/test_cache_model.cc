/**
 * @file
 * Reference-model cross-check: an independently written, dead-simple
 * associative cache model is driven with the same random operation
 * streams as sim::Cache. For deterministic stack policies the two
 * must agree on every hit/miss, eviction, and dirty write-back —
 * catching bookkeeping bugs unit tests can miss.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>

#include "common/rng.hh"
#include "sim/cache.hh"

namespace wb::sim
{
namespace
{

/**
 * Reference model: one set as an ordered list, most recent at the
 * back. True-LRU only; dirty bits tracked per line.
 */
class RefSet
{
  public:
    explicit RefSet(unsigned ways) : ways_(ways) {}

    bool
    contains(Addr lineAddr) const
    {
        return find(lineAddr) != lines_.end();
    }

    bool
    isDirty(Addr lineAddr) const
    {
        auto it = find(lineAddr);
        return it != lines_.end() && it->dirty;
    }

    /** Access; returns {hit, evictedDirty}. */
    std::pair<bool, bool>
    access(Addr lineAddr, bool isWrite)
    {
        auto it = find(lineAddr);
        if (it != lines_.end()) {
            Entry e = *it;
            e.dirty = e.dirty || isWrite;
            lines_.erase(it);
            lines_.push_back(e);
            return {true, false};
        }
        bool evictedDirty = false;
        if (lines_.size() >= ways_) {
            evictedDirty = lines_.front().dirty;
            lines_.pop_front();
        }
        lines_.push_back({lineAddr, isWrite});
        return {false, evictedDirty};
    }

    unsigned
    dirtyCount() const
    {
        unsigned n = 0;
        for (const auto &e : lines_)
            n += e.dirty;
        return n;
    }

    std::size_t size() const { return lines_.size(); }

  private:
    struct Entry
    {
        Addr lineAddr;
        bool dirty;
    };

    std::list<Entry>::const_iterator
    find(Addr lineAddr) const
    {
        return std::find_if(lines_.begin(), lines_.end(),
                            [&](const Entry &e) {
                                return e.lineAddr == lineAddr;
                            });
    }
    std::list<Entry>::iterator
    find(Addr lineAddr)
    {
        return std::find_if(lines_.begin(), lines_.end(),
                            [&](const Entry &e) {
                                return e.lineAddr == lineAddr;
                            });
    }

    unsigned ways_;
    std::list<Entry> lines_;
};

/** Drive Cache like the hierarchy's L1 demand path does. */
std::pair<bool, bool>
driveCache(Cache &cache, Addr paddr, bool isWrite)
{
    if (auto way = cache.probe(paddr, 0)) {
        cache.onHit(paddr, *way, 0, isWrite);
        return {true, false};
    }
    auto out = cache.fill(paddr, 0, isWrite);
    return {false, out.evicted.dirty};
}

class CacheModelCheck : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CacheModelCheck, MatchesReferenceUnderRandomStream)
{
    Rng rng(GetParam());
    CacheParams params;
    params.ways = 8;
    params.sizeBytes = 4 * 8 * lineBytes; // 4 sets
    params.policy = PolicyKind::TrueLru;
    Cache cache(params, nullptr);

    std::map<unsigned, RefSet> refSets;
    for (unsigned s = 0; s < 4; ++s)
        refSets.emplace(s, RefSet(8));

    for (int op = 0; op < 5000; ++op) {
        const unsigned set = unsigned(rng.below(4));
        const Addr tag = 1 + rng.below(14); // 14 tags per set: churn
        const bool isWrite = rng.chance(0.35);
        const Addr paddr = cache.layout().compose(set, tag);

        auto [refHit, refEvDirty] =
            refSets.at(set).access(AddressLayout::lineAddr(paddr),
                                   isWrite);
        auto [hit, evDirty] = driveCache(cache, paddr, isWrite);

        ASSERT_EQ(hit, refHit) << "op " << op;
        ASSERT_EQ(evDirty, refEvDirty) << "op " << op;
        ASSERT_EQ(cache.dirtyCountInSet(set),
                  refSets.at(set).dirtyCount())
            << "op " << op;
        ASSERT_EQ(cache.validCountInSet(set), refSets.at(set).size())
            << "op " << op;
        ASSERT_EQ(cache.isDirty(paddr),
                  refSets.at(set).isDirty(
                      AddressLayout::lineAddr(paddr)))
            << "op " << op;
    }
}

INSTANTIATE_TEST_SUITE_P(Streams, CacheModelCheck,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                           6ull, 7ull, 8ull));

TEST(CacheModelCheck, WriteThroughNeverAccumulatesDirt)
{
    Rng rng(42);
    CacheParams params;
    params.ways = 4;
    params.sizeBytes = 2 * 4 * lineBytes;
    params.policy = PolicyKind::TrueLru;
    params.writePolicy = WritePolicy::WriteThrough;
    Cache cache(params, nullptr);
    for (int op = 0; op < 2000; ++op) {
        const unsigned set = unsigned(rng.below(2));
        const Addr paddr =
            cache.layout().compose(set, 1 + rng.below(8));
        driveCache(cache, paddr, rng.chance(0.5));
        ASSERT_EQ(cache.dirtyCountInSet(set), 0u);
    }
}

TEST(CacheModelCheck, InvariantsHoldForEveryPolicy)
{
    // Policy-independent invariants under random streams: valid count
    // never exceeds ways, dirty <= valid, a probe hit implies
    // contains(), fills never report evictions while invalid ways
    // remain.
    for (auto kind : allPolicies()) {
        Rng rng(99);
        CacheParams params;
        params.ways = 8;
        params.sizeBytes = 2 * 8 * lineBytes;
        params.policy = kind;
        Cache cache(params, &rng);
        unsigned fillsSoFar = 0;
        for (int op = 0; op < 1500; ++op) {
            const unsigned set = unsigned(rng.below(2));
            const Addr paddr =
                cache.layout().compose(set, 1 + rng.below(12));
            const bool isWrite = rng.chance(0.3);
            const bool wasPresent = cache.contains(paddr);
            auto [hit, evDirty] = driveCache(cache, paddr, isWrite);
            (void)evDirty;
            ASSERT_EQ(hit, wasPresent) << policyName(kind);
            if (!hit)
                ++fillsSoFar;
            ASSERT_LE(cache.validCountInSet(set), 8u);
            ASSERT_LE(cache.dirtyCountInSet(set),
                      cache.validCountInSet(set));
            ASSERT_TRUE(cache.contains(paddr));
        }
        (void)fillsSoFar;
    }
}

} // namespace
} // namespace wb::sim
