/**
 * @file
 * Unit tests for the memory hierarchy and latency model
 * (sim/hierarchy.hh). The Table IV calibration is load-bearing for the
 * whole reproduction, so it is pinned here.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sim/hierarchy.hh"

namespace wb::sim
{
namespace
{

/**
 * Deterministic params: Xeon geometry, zero noise, true-LRU L1 so
 * eviction order is exact (replacement-policy variation is covered by
 * test_replacement and test_eviction_probe).
 */
HierarchyParams
quietParams()
{
    HierarchyParams p = xeonE5_2650Params();
    p.lat.noiseSigma = 0.0;
    p.l1.policy = PolicyKind::TrueLru;
    p.l2.policy = PolicyKind::TrueLru;
    return p;
}

Addr
setLine(const Hierarchy &h, unsigned set, Addr tag)
{
    return const_cast<Hierarchy &>(h).l1().layout().compose(set, tag);
}

TEST(Hierarchy, Geometry)
{
    HierarchyParams p = xeonE5_2650Params();
    EXPECT_EQ(p.l1.numSets(), 64u); // Table III: 64 sets
    EXPECT_EQ(p.l1.ways, 8u);
    EXPECT_EQ(p.l1.sizeBytes, 32u * 1024u);
}

TEST(Hierarchy, TableIVLatencies)
{
    Hierarchy h(quietParams(), nullptr);
    const Addr a = setLine(h, 5, 1);

    // Cold: DRAM.
    auto cold = h.access(0, a, false);
    EXPECT_EQ(cold.servedBy, Level::Mem);
    EXPECT_GE(cold.latency, 200u);

    // Hot: L1 hit, 4-5 cycles.
    auto hot = h.access(0, a, false);
    EXPECT_EQ(hot.servedBy, Level::L1);
    EXPECT_TRUE(hot.l1Hit);
    EXPECT_GE(hot.latency, 4u);
    EXPECT_LE(hot.latency, 5u);

    // Fill 8 more clean lines: evictions of clean victims are L2-hit
    // timed once the lines are in L2.
    for (Addr t = 2; t <= 9; ++t)
        h.access(0, setLine(h, 5, t), false);
    // `a` was evicted clean; it is in L2 now.
    auto l2hit = h.access(0, a, false);
    EXPECT_EQ(l2hit.servedBy, Level::L2);
    EXPECT_FALSE(l2hit.l1VictimDirty);
    EXPECT_GE(l2hit.latency, 10u); // Table IV: 10-12
    EXPECT_LE(l2hit.latency, 12u);
}

TEST(Hierarchy, DirtyReplacePenalty)
{
    Hierarchy h(quietParams(), nullptr);
    // Fill the set with 8 dirty lines (stores).
    for (Addr t = 1; t <= 8; ++t)
        h.access(0, setLine(h, 7, t), true);
    // Warm a replacement line into L2 then evict it from L1 by... it
    // is simpler to access a fresh line: it comes from DRAM but the
    // victim is dirty.
    auto res = h.access(0, setLine(h, 7, 100), false);
    EXPECT_TRUE(res.l1VictimDirty);

    // Now the canonical Table IV case: line in L2, dirty victim.
    // Line 1 was just written back to L2.
    auto res2 = h.access(0, setLine(h, 7, 1), false);
    EXPECT_EQ(res2.servedBy, Level::L2);
    EXPECT_TRUE(res2.l1VictimDirty);
    EXPECT_GE(res2.latency, 21u); // Table IV: 22-23 = l2Hit + penalty
    EXPECT_LE(res2.latency, 23u);
}

TEST(Hierarchy, WritebackReachesL2Dirty)
{
    Hierarchy h(quietParams(), nullptr);
    const Addr dirty = setLine(h, 3, 1);
    h.access(0, dirty, true);
    EXPECT_TRUE(h.l1().isDirty(dirty));
    // Evict it with 8 clean fills.
    for (Addr t = 10; t < 18; ++t)
        h.access(0, setLine(h, 3, t), false);
    EXPECT_FALSE(h.l1().contains(dirty));
    EXPECT_TRUE(h.l2().contains(dirty));
    EXPECT_TRUE(h.l2().isDirty(dirty));
}

TEST(Hierarchy, StoreVisibleLatencyHidesMissCost)
{
    Hierarchy h(quietParams(), nullptr);
    const Addr a = setLine(h, 9, 1);
    auto res = h.access(0, a, true); // cold store
    // Store buffer: small visible latency despite the DRAM fill.
    EXPECT_LE(res.latency, quietParams().lat.storeVisibleLatency + 1);
    EXPECT_TRUE(h.l1().isDirty(a));
}

TEST(Hierarchy, StoreFullLatencyWhenDisabled)
{
    auto p = quietParams();
    p.lat.storeVisibleLatency = 0;
    Hierarchy h(p, nullptr);
    auto res = h.access(0, setLine(h, 9, 1), true);
    EXPECT_GE(res.latency, p.lat.mem);
}

TEST(Hierarchy, WriteThroughStoresReachL2)
{
    auto p = quietParams();
    p.l1.writePolicy = WritePolicy::WriteThrough;
    Hierarchy h(p, nullptr);
    const Addr a = setLine(h, 4, 1);
    h.access(0, a, false); // load it in
    auto res = h.access(0, a, true); // store hit
    EXPECT_TRUE(res.l1Hit);
    EXPECT_FALSE(h.l1().isDirty(a)); // never dirty
    EXPECT_TRUE(h.l2().contains(a)); // forwarded
    EXPECT_TRUE(h.l2().isDirty(a));
    EXPECT_GE(res.latency, p.lat.l1Hit + p.lat.writeThroughStore);
}

TEST(Hierarchy, NoWriteAllocate)
{
    auto p = quietParams();
    p.l1.allocPolicy = AllocPolicy::NoWriteAllocate;
    Hierarchy h(p, nullptr);
    const Addr a = setLine(h, 4, 1);
    h.access(0, a, true); // store miss: must not allocate in L1
    EXPECT_FALSE(h.l1().contains(a));
    EXPECT_TRUE(h.l2().contains(a));
}

TEST(Hierarchy, FlushDropsAllLevelsAndCosts)
{
    auto p = quietParams();
    Hierarchy h(p, nullptr);
    const Addr a = setLine(h, 11, 1);

    // Absent: base cost.
    const Cycles absent = h.flush(0, a);
    EXPECT_EQ(absent, p.lat.flushBase);

    // Present clean.
    h.access(0, a, false);
    const Cycles clean = h.flush(0, a);
    EXPECT_EQ(clean, p.lat.flushBase + p.lat.flushPresentExtra);
    EXPECT_FALSE(h.l1().contains(a));
    EXPECT_FALSE(h.l2().contains(a));
    EXPECT_FALSE(h.llc().contains(a));

    // Present dirty.
    h.access(0, a, true);
    const Cycles dirty = h.flush(0, a);
    EXPECT_EQ(dirty, p.lat.flushBase + p.lat.flushPresentExtra +
                         p.lat.flushDirtyExtra);
}

TEST(Hierarchy, CountersPerThread)
{
    Hierarchy h(quietParams(), nullptr);
    const Addr a = setLine(h, 2, 1);
    h.access(0, a, false);
    h.access(0, a, false);
    h.access(1, a, true);
    const auto &c0 = h.counters(0);
    const auto &c1 = h.counters(1);
    EXPECT_EQ(c0.loads, 2u);
    EXPECT_EQ(c0.stores, 0u);
    EXPECT_EQ(c0.l1Misses, 1u);
    EXPECT_EQ(c0.l1Hits, 1u);
    EXPECT_EQ(c1.stores, 1u);
    EXPECT_EQ(c1.l1Hits, 1u);

    auto total = h.totalCounters();
    EXPECT_EQ(total.loads, 2u);
    EXPECT_EQ(total.stores, 1u);
}

TEST(Hierarchy, MissRates)
{
    PerfCounters c;
    c.loads = 90;
    c.stores = 10;
    c.l1Misses = 5;
    c.l2Accesses = 5;
    c.l2Misses = 2;
    c.spinLoads = 100;
    EXPECT_DOUBLE_EQ(c.l1MissRate(), 0.05);
    EXPECT_DOUBLE_EQ(c.l1MissRateWithSpin(), 5.0 / 200.0);
    EXPECT_DOUBLE_EQ(c.l2MissRate(), 0.4);
    EXPECT_DOUBLE_EQ(c.llcMissRate(), 0.0);
}

TEST(Hierarchy, RandomFillSkipsDemandLine)
{
    auto p = quietParams();
    p.randomFillWindow = 16;
    Rng rng(3);
    Hierarchy h(p, &rng);
    const Addr a = setLine(h, 6, 5);
    h.access(0, a, false);
    EXPECT_FALSE(h.l1().contains(a)); // defense: no demand fill
    EXPECT_TRUE(h.l2().contains(a));  // data still came through L2
    // Repeated loads keep missing L1.
    auto res = h.access(0, a, false);
    EXPECT_FALSE(res.l1Hit);
}

TEST(Hierarchy, PrefetchGuardInjects)
{
    auto p = quietParams();
    p.prefetchGuardProb = 1.0;
    Rng rng(3);
    Hierarchy h(p, &rng);
    const unsigned set = 6;
    h.access(0, setLine(h, set, 5), false);
    // The demand line plus at least one injected line.
    EXPECT_GE(h.l1().validCountInSet(set), 2u);
}

TEST(Hierarchy, InjectCleanFill)
{
    Hierarchy h(quietParams(), nullptr);
    const Addr a = setLine(h, 6, 5);
    h.injectCleanFill(a);
    EXPECT_TRUE(h.l1().contains(a));
    EXPECT_FALSE(h.l1().isDirty(a));
    // Injection does not touch demand counters.
    EXPECT_EQ(h.totalCounters().loads, 0u);
}

TEST(Hierarchy, ResetKeepsCounters)
{
    Hierarchy h(quietParams(), nullptr);
    const Addr a = setLine(h, 2, 1);
    h.access(0, a, false);
    h.reset();
    EXPECT_FALSE(h.l1().contains(a));
    EXPECT_EQ(h.counters(0).loads, 1u);
    h.resetCounters();
    EXPECT_EQ(h.counters(0).loads, 0u);
}

TEST(Hierarchy, ResetAllZeroesStateAndCounters)
{
    Hierarchy h(quietParams(), nullptr);
    const Addr a = setLine(h, 2, 1);
    h.access(0, a, true);
    ASSERT_GT(h.counters(0).stores, 0u);
    h.resetAll();
    EXPECT_FALSE(h.l1().contains(a));
    EXPECT_FALSE(h.l2().contains(a));
    EXPECT_EQ(h.counters(0).stores, 0u);
    EXPECT_EQ(h.totalCounters().l1Misses, 0u);
}

TEST(Hierarchy, LevelNames)
{
    EXPECT_EQ(levelName(Level::L1), "L1");
    EXPECT_EQ(levelName(Level::L2), "L2");
    EXPECT_EQ(levelName(Level::LLC), "LLC");
    EXPECT_EQ(levelName(Level::Mem), "Mem");
}

/**
 * Property: after any mix of loads and stores, a line reported dirty
 * by L1 must be in a write-back cache, and evicting it must surface
 * as l1VictimDirty on the access that triggered the eviction.
 */
class HierarchyDirtyProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(HierarchyDirtyProperty, DirtyEvictionsAlwaysReported)
{
    Rng rng(GetParam());
    auto p = quietParams();
    Hierarchy h(p, &rng);
    const unsigned set = GetParam() % 64;
    unsigned reported = 0;
    unsigned expected = 0;
    for (int i = 0; i < 400; ++i) {
        const Addr tag = 1 + rng.below(12);
        const bool isWrite = rng.chance(0.4);
        const Addr a = setLine(h, set, tag);
        const unsigned dirtyBefore = h.l1().dirtyCountInSet(set);
        const bool present = h.l1().contains(a);
        auto res = h.access(0, a, isWrite);
        const unsigned dirtyAfter = h.l1().dirtyCountInSet(set);
        if (res.l1VictimDirty)
            ++reported;
        // A dirty count that dropped (without this access being a
        // hit) implies a dirty eviction happened.
        if (!present && dirtyAfter < dirtyBefore + (isWrite ? 1u : 0u) &&
            dirtyBefore > 0)
            ++expected;
    }
    // Every externally visible dirty-count drop was reported.
    EXPECT_GE(reported, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchyDirtyProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

} // namespace
} // namespace wb::sim
