/**
 * @file
 * Unit tests for the SMT-core executor (sim/smt_core.hh): op
 * execution, virtual-time interleaving, spin semantics, TSC
 * quantization and noise accounting.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sim/smt_core.hh"

namespace wb::sim
{
namespace
{

HierarchyParams
quietParams()
{
    HierarchyParams p = xeonE5_2650Params();
    p.lat.noiseSigma = 0.0;
    p.l1.policy = PolicyKind::TrueLru;
    return p;
}

/** Program recording every result it sees. */
class Recorder : public Program
{
  public:
    explicit Recorder(std::vector<MemOp> ops) : ops_(std::move(ops)) {}

    std::optional<MemOp>
    next(ProcView &) override
    {
        if (pos_ >= ops_.size())
            return std::nullopt;
        return ops_[pos_++];
    }

    void
    onResult(const MemOp &op, const OpResult &res, ProcView &view) override
    {
        results.push_back(res);
        kinds.push_back(op.kind);
        times.push_back(view.now());
    }

    std::vector<OpResult> results;
    std::vector<MemOp::Kind> kinds;
    std::vector<Cycles> times;

  private:
    std::vector<MemOp> ops_;
    std::size_t pos_ = 0;
};

TEST(SmtCore, ExecutesTraceToCompletion)
{
    Rng rng(1);
    Hierarchy h(quietParams(), &rng);
    SmtCore core(h, NoiseModel::quiet(), rng);
    Recorder prog({MemOp::load(0x1000), MemOp::load(0x1000),
                   MemOp::store(0x1000), MemOp::halt()});
    auto tid = core.addThread(&prog, AddressSpace(1));
    core.run(1'000'000);
    EXPECT_TRUE(core.halted(tid));
    ASSERT_EQ(prog.results.size(), 3u);
    EXPECT_FALSE(prog.results[0].l1Hit); // cold
    EXPECT_TRUE(prog.results[1].l1Hit);
}

TEST(SmtCore, QuietTimingIsExact)
{
    Rng rng(1);
    Hierarchy h(quietParams(), &rng);
    SmtCore core(h, NoiseModel::quiet(), rng);
    Recorder prog({MemOp::delay(100), MemOp::delay(23)});
    auto tid = core.addThread(&prog, AddressSpace(1));
    core.run(1'000'000);
    EXPECT_EQ(core.threadTime(tid), 123u);
}

TEST(SmtCore, SpinUntilJumpsForward)
{
    Rng rng(1);
    Hierarchy h(quietParams(), &rng);
    SmtCore core(h, NoiseModel::quiet(), rng);
    Recorder prog({MemOp::spinUntil(5000), MemOp::spinUntil(100)});
    auto tid = core.addThread(&prog, AddressSpace(1));
    core.run(1'000'000);
    // Second spin target already passed: time unchanged.
    EXPECT_EQ(core.threadTime(tid), 5000u);
    EXPECT_EQ(prog.results[0].tsc, 5000u);
}

TEST(SmtCore, StartTimeStaggersThreads)
{
    Rng rng(1);
    Hierarchy h(quietParams(), &rng);
    SmtCore core(h, NoiseModel::quiet(), rng);
    Recorder a({MemOp::delay(10)});
    Recorder b({MemOp::delay(10)});
    core.addThread(&a, AddressSpace(1), 0);
    auto tb = core.addThread(&b, AddressSpace(2), 777);
    core.run(1'000'000);
    EXPECT_EQ(core.threadTime(tb), 787u);
}

TEST(SmtCore, InterleavesByVirtualTime)
{
    Rng rng(1);
    Hierarchy h(quietParams(), &rng);
    SmtCore core(h, NoiseModel::quiet(), rng);
    // Thread A stores to a line at t~0; thread B (starting later)
    // must observe the line already cached (L1 hit as the second
    // access in global time order).
    Recorder a({MemOp::store(0x40)});
    Recorder b({MemOp::load(0x40)});
    core.addThread(&a, AddressSpace(1), 0);
    core.addThread(&b, AddressSpace(1), 1000); // same address space
    core.run(1'000'000);
    ASSERT_EQ(b.results.size(), 1u);
    EXPECT_TRUE(b.results[0].l1Hit);
}

TEST(SmtCore, HorizonStopsRunaways)
{
    Rng rng(1);
    Hierarchy h(quietParams(), &rng);
    SmtCore core(h, NoiseModel::quiet(), rng);
    TraceProgram spin({MemOp::delay(10)}, /*loop=*/true);
    auto tid = core.addThread(&spin, AddressSpace(1));
    const Cycles end = core.run(5000);
    EXPECT_FALSE(core.halted(tid));
    EXPECT_GE(end, 5000u);
    EXPECT_LT(end, 5100u);
}

TEST(SmtCore, TscGranularityQuantizes)
{
    Rng rng(1);
    Hierarchy h(quietParams(), &rng);
    NoiseModel nm = NoiseModel::quiet();
    nm.tscGranularity = 64;
    SmtCore core(h, nm, rng);
    Recorder prog({MemOp::delay(100), MemOp::tscRead()});
    core.addThread(&prog, AddressSpace(1));
    core.run(1'000'000);
    ASSERT_EQ(prog.results.size(), 2u);
    EXPECT_EQ(prog.results[1].tsc % 64, 0u);
    EXPECT_EQ(prog.results[1].tsc, 64u); // 100 cycles -> quantum 1
}

TEST(SmtCore, TscReadCost)
{
    Rng rng(1);
    Hierarchy h(quietParams(), &rng);
    NoiseModel nm = NoiseModel::quiet();
    nm.tscReadCost = 30;
    SmtCore core(h, nm, rng);
    Recorder prog({MemOp::tscRead(), MemOp::tscRead()});
    auto tid = core.addThread(&prog, AddressSpace(1));
    core.run(1'000'000);
    EXPECT_EQ(core.threadTime(tid), 60u);
}

TEST(SmtCore, SpinLoadsCredited)
{
    Rng rng(1);
    Hierarchy h(quietParams(), &rng);
    NoiseModel nm = NoiseModel::quiet();
    nm.spinIterCycles = 7;
    nm.spinLoadsPerIter = 1;
    SmtCore core(h, nm, rng);
    Recorder prog({MemOp::spinUntil(7000)});
    auto tid = core.addThread(&prog, AddressSpace(1));
    core.run(1'000'000);
    EXPECT_EQ(h.counters(tid).spinLoads, 1000u);
}

TEST(SmtCore, SpinIssuesStackLoad)
{
    Rng rng(1);
    Hierarchy h(quietParams(), &rng);
    SmtCore core(h, NoiseModel::quiet(), rng);
    Recorder prog({MemOp::spinUntil(1000)});
    auto tid = core.addThread(&prog, AddressSpace(1));
    core.run(1'000'000);
    // The spin's stack-line bookkeeping load is a real demand load.
    EXPECT_EQ(h.counters(tid).loads, 1u);
}

TEST(SmtCore, PipelinedLoadCheaperOnHit)
{
    Rng rng(1);
    Hierarchy h(quietParams(), &rng);
    NoiseModel nm = NoiseModel::quiet();
    nm.pipelinedHitCost = 3;
    SmtCore core(h, nm, rng);
    Recorder prog({MemOp::load(0x1000), MemOp::load(0x1000),
                   MemOp::pipelinedLoad(0x1000)});
    core.addThread(&prog, AddressSpace(1));
    core.run(1'000'000);
    ASSERT_EQ(prog.results.size(), 3u);
    EXPECT_GT(prog.results[1].latency, prog.results[2].latency);
    EXPECT_EQ(prog.results[2].latency, 3u);
}

TEST(SmtCore, PipelinedLoadFullCostOnMiss)
{
    Rng rng(1);
    Hierarchy h(quietParams(), &rng);
    NoiseModel nm = NoiseModel::quiet();
    SmtCore core(h, nm, rng);
    Recorder prog({MemOp::pipelinedLoad(0x9000)});
    core.addThread(&prog, AddressSpace(1));
    core.run(1'000'000);
    EXPECT_GE(prog.results[0].latency, 200u); // DRAM, not hidden
}

TEST(SmtCore, FlushOpWorks)
{
    Rng rng(1);
    Hierarchy h(quietParams(), &rng);
    SmtCore core(h, NoiseModel::quiet(), rng);
    Recorder prog({MemOp::load(0x2000), MemOp::flush(0x2000),
                   MemOp::load(0x2000)});
    core.addThread(&prog, AddressSpace(1));
    core.run(1'000'000);
    ASSERT_EQ(prog.results.size(), 3u);
    EXPECT_FALSE(prog.results[2].l1Hit); // flushed
}

TEST(SmtCore, SpinOvershootAccumulates)
{
    Rng rng(1);
    Hierarchy h(quietParams(), &rng);
    NoiseModel nm = NoiseModel::quiet();
    nm.spinOvershootMean = 20.0;
    SmtCore core(h, nm, rng);
    std::vector<MemOp> ops;
    for (int i = 1; i <= 50; ++i)
        ops.push_back(MemOp::spinUntil(static_cast<Cycles>(i) * 1000));
    Recorder prog(ops);
    auto tid = core.addThread(&prog, AddressSpace(1));
    core.run(10'000'000);
    // Each spin overshoots by an exponential; time ends past the last
    // target but not wildly so.
    EXPECT_GT(core.threadTime(tid), 50'000u);
    EXPECT_LT(core.threadTime(tid), 60'000u);
}

TEST(SmtCore, TraceProgramLoops)
{
    Rng rng(1);
    Hierarchy h(quietParams(), &rng);
    SmtCore core(h, NoiseModel::quiet(), rng);
    TraceProgram prog({MemOp::delay(100)}, /*loop=*/true);
    auto tid = core.addThread(&prog, AddressSpace(1));
    core.run(1000);
    EXPECT_FALSE(core.halted(tid));
    EXPECT_GE(core.threadTime(tid), 1000u);
}

} // namespace
} // namespace wb::sim
