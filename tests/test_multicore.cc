/**
 * @file
 * MultiCoreSystem tests (sim/multicore.hh): MESI-lite coherence on
 * the dirty bits, inclusive back-invalidation into every core's
 * privates, the dirty-drain latency signal the cross-core channels
 * measure, and the resetAll() reseed-reproducibility contract.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "sim/multicore.hh"
#include "sim/platform.hh"

namespace wb::sim
{
namespace
{

/** Deterministic (noise-free) parameters with a single-set LLC. */
HierarchyParams
tinyLlcParams(bool inclusive)
{
    HierarchyParams hp = xeonE5_2650Params();
    hp.lat.noiseSigma = 0.0;
    hp.inclusiveLlc = inclusive;
    hp.llc.sizeBytes = hp.llc.ways * lineBytes; // one LLC set
    return hp;
}

TEST(MultiCoreSystem, RejectsWriteThroughCores)
{
    HierarchyParams hp = xeonE5_2650Params();
    hp.l1.writePolicy = WritePolicy::WriteThrough;
    hp.l1.allocPolicy = AllocPolicy::NoWriteAllocate;
    EXPECT_EXIT((MultiCoreSystem(hp, 2, nullptr)),
                ::testing::ExitedWithCode(1), "write-back");
}

TEST(MultiCoreSystem, LlcEvictionBackInvalidatesEveryCore)
{
    MultiCoreSystem mc(tinyLlcParams(true), /*cores=*/3, nullptr);
    const AddressLayout llcLayout(mc.llc().numSets());

    // The line becomes resident in cores 0 and 1 (privates + LLC).
    const Addr first = llcLayout.compose(0, 1);
    mc.access(0, 0, first, false);
    mc.access(1, 0, first, false);
    ASSERT_TRUE(mc.llc().contains(first));
    ASSERT_TRUE(mc.l1(0).contains(first));
    ASSERT_TRUE(mc.l1(1).contains(first));

    // Core 2 floods the (single) LLC set until `first` is evicted;
    // back-invalidation must drop it from *all* cores' privates.
    const unsigned ways = mc.llc().params().ways;
    for (Addr t = 2; t <= 2 * ways + 1; ++t)
        mc.access(2, 0, llcLayout.compose(0, t), false);
    EXPECT_FALSE(mc.llc().contains(first));
    for (unsigned core = 0; core < 3; ++core) {
        EXPECT_FALSE(mc.l1(core).contains(first)) << "core " << core;
        EXPECT_FALSE(mc.l2(core).contains(first)) << "core " << core;
    }
}

TEST(MultiCoreSystem, NonInclusiveLlcEvictionSparesPrivates)
{
    MultiCoreSystem mc(tinyLlcParams(false), /*cores=*/2, nullptr);
    const AddressLayout llcLayout(mc.llc().numSets());

    const Addr first = llcLayout.compose(0, 1);
    mc.access(0, 0, first, false);
    ASSERT_TRUE(mc.llc().contains(first));

    const unsigned ways = mc.llc().params().ways;
    for (Addr t = 2; t <= 2 * ways + 1; ++t)
        mc.access(1, 0, llcLayout.compose(0, t), false);
    EXPECT_FALSE(mc.llc().contains(first));
    // Non-inclusive: core 0's private copy survives the LLC eviction.
    EXPECT_TRUE(mc.l1(0).contains(first));
}

TEST(MultiCoreSystem, RemoteStoreInvalidatesCleanCopies)
{
    HierarchyParams hp = xeonE5_2650Params();
    hp.lat.noiseSigma = 0.0;
    MultiCoreSystem mc(hp, 2, nullptr);
    const Addr a = mc.l1(0).layout().compose(5, 1);

    mc.access(0, 0, a, false); // clean copy in core 0's privates
    ASSERT_TRUE(mc.l1(0).contains(a));

    mc.access(1, 0, a, true); // core 1 takes M state
    EXPECT_FALSE(mc.l1(0).contains(a)) << "no invalidation message";
    EXPECT_FALSE(mc.l2(0).contains(a)) << "no invalidation message";
    EXPECT_TRUE(mc.l1(1).isDirty(a));
}

TEST(MultiCoreSystem, StoreHitUpgradeInvalidatesRemotes)
{
    HierarchyParams hp = xeonE5_2650Params();
    hp.lat.noiseSigma = 0.0;
    MultiCoreSystem mc(hp, 2, nullptr);
    const Addr a = mc.l1(0).layout().compose(5, 1);

    // Both cores hold the line clean (shared).
    mc.access(0, 0, a, false);
    mc.access(1, 0, a, false);
    ASSERT_TRUE(mc.l1(0).contains(a));
    ASSERT_TRUE(mc.l1(1).contains(a));

    // Core 0's store *hits* its clean L1 copy: the S->M upgrade must
    // still invalidate core 1's copy.
    const auto res = mc.access(0, 0, a, true);
    EXPECT_TRUE(res.l1Hit);
    EXPECT_TRUE(mc.l1(0).isDirty(a));
    EXPECT_FALSE(mc.l1(1).contains(a));
    EXPECT_FALSE(mc.l2(1).contains(a));
}

TEST(MultiCoreSystem, RemoteLoadDowngradesDirtyCopy)
{
    HierarchyParams hp = xeonE5_2650Params();
    hp.lat.noiseSigma = 0.0;
    MultiCoreSystem mc(hp, 2, nullptr);
    const Addr a = mc.l1(0).layout().compose(9, 1);

    mc.access(0, 0, a, true); // M in core 0's L1
    ASSERT_TRUE(mc.l1(0).isDirty(a));

    const auto res = mc.access(1, 0, a, false);
    EXPECT_EQ(res.servedBy, Level::LLC);
    // The snoop pays the cross-core penalty on top of the LLC hit.
    EXPECT_EQ(res.latency, hp.lat.llcHit + hp.lat.crossCoreSnoopPenalty);
    // Core 0 keeps the line, but clean (M -> S); the dirty data moved
    // into the shared LLC.
    EXPECT_TRUE(mc.l1(0).contains(a));
    EXPECT_FALSE(mc.l1(0).isDirty(a));
    EXPECT_TRUE(mc.llc().isDirty(a));
    EXPECT_EQ(mc.counters(1, 0).crossCoreSnoops, 1u);
}

/**
 * The cross-core signal: an LLC eviction whose victim is dirty in the
 * *sender's* privates stalls the *receiver's* access by exactly the
 * drain penalty. Paired experiment: identical access sequences, the
 * only difference being whether core 0's line was stored or loaded.
 */
TEST(MultiCoreSystem, DirtyDrainPenaltyChargesTheEvictingAccess)
{
    const HierarchyParams hp = tinyLlcParams(true);
    MultiCoreSystem dirty(hp, 2, nullptr);
    MultiCoreSystem clean(hp, 2, nullptr);
    const AddressLayout llcLayout(dirty.llc().numSets());
    const Addr a = llcLayout.compose(0, 1);

    dirty.access(0, 0, a, true); // dirty in core 0's L1
    clean.access(0, 0, a, false);

    // Core 1 floods the single LLC set with the same line sequence.
    std::vector<Addr> sweep;
    const unsigned ways = hp.llc.ways;
    for (Addr t = 2; t <= 2 * ways + 1; ++t)
        sweep.push_back(llcLayout.compose(0, t));
    const auto bDirty = dirty.accessBatch(1, 0, sweep, false);
    const auto bClean = clean.accessBatch(1, 0, sweep, false);

    // The dirty bit does not influence replacement decisions, so the
    // two sweeps are identical except for exactly one drain.
    EXPECT_EQ(bDirty.totalLatency,
              bClean.totalLatency + hp.lat.llcDirtyEvictPenalty);
    EXPECT_EQ(dirty.counters(1, 0).llcDirtyEvictions, 1u);
    EXPECT_EQ(clean.counters(1, 0).llcDirtyEvictions, 0u);
    // And the sender's dirty line is gone everywhere (drained).
    EXPECT_FALSE(dirty.l1(0).contains(a));
    EXPECT_FALSE(dirty.llc().contains(a));
}

TEST(MultiCoreSystem, FlushIsCoherentAcrossCores)
{
    HierarchyParams hp = xeonE5_2650Params();
    hp.lat.noiseSigma = 0.0;
    MultiCoreSystem mc(hp, 2, nullptr);
    const Addr a = mc.l1(0).layout().compose(3, 1);

    mc.access(0, 0, a, true);
    const Cycles cost = mc.flush(1, 0, a); // issued by the *other* core
    EXPECT_EQ(cost, hp.lat.flushBase + hp.lat.flushPresentExtra +
                        hp.lat.flushDirtyExtra);
    EXPECT_FALSE(mc.l1(0).contains(a));
    EXPECT_FALSE(mc.llc().contains(a));
}

/** Per-core counters are independent and auto-extend. */
TEST(MultiCoreSystem, CountersArePerCoreAndThread)
{
    HierarchyParams hp = xeonE5_2650Params();
    hp.lat.noiseSigma = 0.0;
    MultiCoreSystem mc(hp, 2, nullptr);
    const Addr a = mc.l1(0).layout().compose(1, 1);
    mc.access(0, 1, a, false);
    mc.access(1, 0, a, false);
    EXPECT_EQ(mc.counters(0, 1).loads, 1u);
    EXPECT_EQ(mc.counters(0, 0).loads, 0u);
    EXPECT_EQ(mc.counters(1, 0).loads, 1u);
    EXPECT_EQ(mc.totalCounters().loads, 2u);
}

/**
 * Regression (reseed reproducibility): resetAll() must drop the Rng's
 * prefetched Gaussian block. A sweep that consumed part of a block,
 * then reseeded the generator and resetAll()-ed the system, must
 * reproduce its noise draws exactly — stale deviates from the
 * previous stream would otherwise leak into the repetition.
 */
TEST(MultiCoreSystem, ResetAllMakesReseededSweepsReproducible)
{
    HierarchyParams hp = xeonE5_2650Params(); // noiseSigma 0.6: noisy
    Rng rng(7);
    MultiCoreSystem mc(hp, 2, &rng);
    const AddressLayout layout(hp.l1.numSets());

    auto sweep = [&]() {
        std::vector<Cycles> lats;
        for (Addr t = 1; t <= 100; ++t) // partially drains a block
            lats.push_back(
                mc.access(t % 2, 0, layout.compose(2, t), false).latency);
        return lats;
    };

    const auto first = sweep();
    rng.reseed(7);
    mc.resetAll();
    const auto second = sweep();
    EXPECT_EQ(first, second);
}

/** Same contract on the single-core Hierarchy. */
TEST(Hierarchy, ResetAllMakesReseededSweepsReproducible)
{
    HierarchyParams hp = xeonE5_2650Params();
    Rng rng(7);
    Hierarchy h(hp, &rng);
    const AddressLayout layout(hp.l1.numSets());

    auto sweep = [&]() {
        std::vector<Cycles> lats;
        for (Addr t = 1; t <= 100; ++t)
            lats.push_back(h.access(0, layout.compose(2, t), false).latency);
        return lats;
    };

    const auto first = sweep();
    rng.reseed(7);
    h.resetAll();
    const auto second = sweep();
    EXPECT_EQ(first, second);
}

/** Without resetAll, the stale prefetched deviates diverge the run. */
TEST(Hierarchy, ReseedAloneIsNotReproducible)
{
    HierarchyParams hp = xeonE5_2650Params();
    Rng rng(7);
    Hierarchy h(hp, &rng);
    const AddressLayout layout(hp.l1.numSets());

    auto sweep = [&]() {
        std::vector<Cycles> lats;
        for (Addr t = 1; t <= 100; ++t)
            lats.push_back(h.access(0, layout.compose(2, t), false).latency);
        return lats;
    };

    const auto first = sweep();
    rng.reseed(7);
    h.reset();
    h.resetCounters(); // everything except the deviate cache
    const auto second = sweep();
    EXPECT_NE(first, second)
        << "expected stale cached deviates to diverge the repetition; "
           "if this now matches, the resetAll() regression test above "
           "no longer guards anything";
}

TEST(MultiCoreSystem, PortForwardsToTheBoundCore)
{
    HierarchyParams hp = xeonE5_2650Params();
    hp.lat.noiseSigma = 0.0;
    MultiCoreSystem mc(hp, 2, nullptr);
    const Addr a = mc.l1(0).layout().compose(4, 1);

    MemorySystem &port1 = mc.port(1);
    port1.access(0, a, true);
    EXPECT_TRUE(mc.l1(1).isDirty(a));
    EXPECT_FALSE(mc.l1(0).contains(a));
    EXPECT_EQ(port1.counters(0).stores, 1u);
    EXPECT_EQ(mc.counters(1, 0).stores, 1u);
}

} // namespace
} // namespace wb::sim
