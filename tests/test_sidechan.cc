/**
 * @file
 * Tests for the Sec. IX side-channel scenarios (sidechan/attack.hh).
 */

#include <gtest/gtest.h>

#include "sidechan/attack.hh"

namespace wb::sidechan
{
namespace
{

AttackConfig
config(Scenario s, unsigned serial = 1, std::uint64_t seed = 9)
{
    AttackConfig cfg;
    cfg.scenario = s;
    cfg.serialLines = serial;
    cfg.trials = 150;
    cfg.calibration = 120;
    cfg.seed = seed;
    return cfg;
}

TEST(Victim, StoreGadgetDirtiesSetM)
{
    Rng rng(1);
    auto hp = sim::xeonE5_2650Params();
    hp.lat.noiseSigma = 0.0;
    sim::Hierarchy h(hp, &rng);
    sim::NoiseModel noise = sim::NoiseModel::quiet();
    Victim v(h, h.l1().layout(), sim::AddressSpace(8),
             GadgetKind::StoreBranch, 13, 21, 1, noise);
    v.run(true);
    EXPECT_EQ(h.l1().dirtyCountInSet(13), 1u);
    EXPECT_EQ(h.l1().dirtyCountInSet(21), 0u);
}

TEST(Victim, StoreGadgetSecretZeroOnlyLoads)
{
    Rng rng(1);
    auto hp = sim::xeonE5_2650Params();
    sim::Hierarchy h(hp, &rng);
    Victim v(h, h.l1().layout(), sim::AddressSpace(8),
             GadgetKind::StoreBranch, 13, 21, 1,
             sim::NoiseModel::quiet());
    v.run(false);
    EXPECT_EQ(h.l1().dirtyCountInSet(13), 0u);
    EXPECT_EQ(h.l1().dirtyCountInSet(21), 0u);
    EXPECT_EQ(h.l1().validCountInSet(21), 1u);
}

TEST(Victim, LoadGadgetNeverDirties)
{
    Rng rng(1);
    auto hp = sim::xeonE5_2650Params();
    sim::Hierarchy h(hp, &rng);
    Victim v(h, h.l1().layout(), sim::AddressSpace(8),
             GadgetKind::LoadBranch, 13, 21, 2,
             sim::NoiseModel::quiet());
    v.run(true);
    v.run(false);
    EXPECT_EQ(h.l1().dirtyCountInSet(13), 0u);
    EXPECT_EQ(h.l1().dirtyCountInSet(21), 0u);
}

TEST(Scenario1, RecoversStoreSecrets)
{
    auto res = runAttack(config(Scenario::DirtyProbe));
    EXPECT_GE(res.accuracy, 0.95);
    // secret=1 leaves a dirty line: slower probe.
    EXPECT_GT(res.meanLatency1, res.meanLatency0 + 5.0);
}

TEST(Scenario1, WidensWithSerialLines)
{
    auto narrow = runAttack(config(Scenario::DirtyProbe, 1));
    auto wide = runAttack(config(Scenario::DirtyProbe, 3));
    EXPECT_GT(wide.meanLatency1 - wide.meanLatency0,
              narrow.meanLatency1 - narrow.meanLatency0 + 10.0);
}

TEST(Scenario2, RecoversReadOnlySecrets)
{
    auto res = runAttack(config(Scenario::DirtyPrime));
    EXPECT_GE(res.accuracy, 0.95);
    // secret=1 evicted a dirty line: *cheaper* probe.
    EXPECT_LT(res.meanLatency1, res.meanLatency0 - 5.0);
}

TEST(Scenario3, SingleLineIsMarginal)
{
    // Paper: the call-time difference of one line is easily
    // overwhelmed by noise...
    auto res = runAttack(config(Scenario::VictimTiming, 1));
    EXPECT_LT(res.accuracy, 0.85);
    EXPECT_GT(res.accuracy, 0.5); // but better than guessing
}

TEST(Scenario3, TwoSerialLinesWork)
{
    // ...while two serially loaded lines per branch are observable.
    auto one = runAttack(config(Scenario::VictimTiming, 1));
    auto two = runAttack(config(Scenario::VictimTiming, 2));
    auto four = runAttack(config(Scenario::VictimTiming, 4));
    EXPECT_GT(two.accuracy, one.accuracy);
    EXPECT_GE(four.accuracy, 0.90);
}

TEST(KeyRecovery, FullKeyViaMajorityVote)
{
    const unsigned bits = recoverKeyDemo(64, 5, 11);
    EXPECT_GE(bits, 62u); // allow a stray flip or two
}

TEST(Attack, DeterministicPerSeed)
{
    auto a = runAttack(config(Scenario::DirtyProbe, 1, 42));
    auto b = runAttack(config(Scenario::DirtyProbe, 1, 42));
    EXPECT_EQ(a.accuracy, b.accuracy);
    EXPECT_EQ(a.threshold, b.threshold);
}

} // namespace
} // namespace wb::sidechan
