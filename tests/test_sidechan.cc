/**
 * @file
 * Tests for the Sec. IX side-channel scenarios (sidechan/attack.hh).
 *
 * Accuracy claims are pooled multi-seed statistical assertions
 * (tests/stat_assert.hh); gadget state checks and latency-contrast
 * checks stay per-seed (they are structural, not stochastic).
 */

#include <gtest/gtest.h>

#include "sidechan/attack.hh"
#include "stat_assert.hh"

namespace wb::sidechan
{
namespace
{

AttackConfig
config(Scenario s, unsigned serial = 1, std::uint64_t seed = 9)
{
    AttackConfig cfg;
    cfg.scenario = s;
    cfg.serialLines = serial;
    cfg.trials = 60;
    cfg.calibration = 120;
    cfg.seed = seed;
    return cfg;
}

/** Pooled accuracy over the seed sweep. */
test::ProportionSweep
accuracySweep(Scenario s, unsigned serial = 1)
{
    return test::sweepSeeds([&](std::uint64_t seed) {
        AttackConfig cfg = config(s, serial, seed);
        const auto res = runAttack(cfg);
        return test::Proportion{res.accuracy * cfg.trials,
                                double(cfg.trials)};
    });
}

TEST(Victim, StoreGadgetDirtiesSetM)
{
    Rng rng(1);
    auto hp = sim::xeonE5_2650Params();
    hp.lat.noiseSigma = 0.0;
    sim::Hierarchy h(hp, &rng);
    sim::NoiseModel noise = sim::NoiseModel::quiet();
    Victim v(h, h.l1().layout(), sim::AddressSpace(8),
             GadgetKind::StoreBranch, 13, 21, 1, noise);
    v.run(true);
    EXPECT_EQ(h.l1().dirtyCountInSet(13), 1u);
    EXPECT_EQ(h.l1().dirtyCountInSet(21), 0u);
}

TEST(Victim, StoreGadgetSecretZeroOnlyLoads)
{
    Rng rng(1);
    auto hp = sim::xeonE5_2650Params();
    sim::Hierarchy h(hp, &rng);
    Victim v(h, h.l1().layout(), sim::AddressSpace(8),
             GadgetKind::StoreBranch, 13, 21, 1,
             sim::NoiseModel::quiet());
    v.run(false);
    EXPECT_EQ(h.l1().dirtyCountInSet(13), 0u);
    EXPECT_EQ(h.l1().dirtyCountInSet(21), 0u);
    EXPECT_EQ(h.l1().validCountInSet(21), 1u);
}

TEST(Victim, LoadGadgetNeverDirties)
{
    Rng rng(1);
    auto hp = sim::xeonE5_2650Params();
    sim::Hierarchy h(hp, &rng);
    Victim v(h, h.l1().layout(), sim::AddressSpace(8),
             GadgetKind::LoadBranch, 13, 21, 2,
             sim::NoiseModel::quiet());
    v.run(true);
    v.run(false);
    EXPECT_EQ(h.l1().dirtyCountInSet(13), 0u);
    EXPECT_EQ(h.l1().dirtyCountInSet(21), 0u);
}

TEST(Scenario1, RecoversStoreSecrets)
{
    EXPECT_ACCURACY_ABOVE(accuracySweep(Scenario::DirtyProbe), 0.95);
    // secret=1 leaves a dirty line: slower probe.
    auto res = runAttack(config(Scenario::DirtyProbe));
    EXPECT_GT(res.meanLatency1, res.meanLatency0 + 5.0);
}

TEST(Scenario1, WidensWithSerialLines)
{
    auto narrow = runAttack(config(Scenario::DirtyProbe, 1));
    auto wide = runAttack(config(Scenario::DirtyProbe, 3));
    EXPECT_GT(wide.meanLatency1 - wide.meanLatency0,
              narrow.meanLatency1 - narrow.meanLatency0 + 10.0);
}

TEST(Scenario2, RecoversReadOnlySecrets)
{
    EXPECT_ACCURACY_ABOVE(accuracySweep(Scenario::DirtyPrime), 0.95);
    // secret=1 evicted a dirty line: *cheaper* probe.
    auto res = runAttack(config(Scenario::DirtyPrime));
    EXPECT_LT(res.meanLatency1, res.meanLatency0 - 5.0);
}

TEST(Scenario3, SingleLineIsMarginal)
{
    // Paper: the call-time difference of one line is easily
    // overwhelmed by noise — but stays better than guessing.
    const auto sweep = accuracySweep(Scenario::VictimTiming, 1);
    EXPECT_ACCURACY_BELOW(sweep, 0.85);
    EXPECT_ACCURACY_ABOVE(sweep, 0.5);
}

TEST(Scenario3, TwoSerialLinesWork)
{
    // ...while two serially loaded lines per branch are observable,
    // and four are solid: the pooled intervals must order cleanly.
    const auto one = accuracySweep(Scenario::VictimTiming, 1);
    const auto two = accuracySweep(Scenario::VictimTiming, 2);
    const auto four = accuracySweep(Scenario::VictimTiming, 4);
    EXPECT_GT(two.ci().lo, one.ci().hi)
        << "one " << one << " vs two " << two;
    EXPECT_ACCURACY_ABOVE(four, 0.90);
}

TEST(KeyRecovery, FullKeyViaMajorityVote)
{
    // Pooled bit-recovery rate over the seed sweep (64-bit keys,
    // 5-vote majority): better than ~97% of bits with the interval
    // cleared — the multi-seed port of the old "62 of 64" check.
    const auto sweep = test::sweepSeeds([](std::uint64_t seed) {
        return test::Proportion{double(recoverKeyDemo(64, 5, seed)),
                                64.0};
    });
    EXPECT_ACCURACY_ABOVE(sweep, 0.95);
}

TEST(Attack, DeterministicPerSeed)
{
    auto a = runAttack(config(Scenario::DirtyProbe, 1, 42));
    auto b = runAttack(config(Scenario::DirtyProbe, 1, 42));
    EXPECT_EQ(a.accuracy, b.accuracy);
    EXPECT_EQ(a.threshold, b.threshold);
}

} // namespace
} // namespace wb::sidechan
