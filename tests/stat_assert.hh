/**
 * @file
 * Statistical assertions for channel/attack quality claims.
 *
 * A single-seed expectation like `EXPECT_LT(res.ber, 0.05)` asserts a
 * property of one pseudo-random trajectory: it can pass on a broken
 * channel that got lucky and fail on a healthy one that did not, and
 * every such test silently over-fits its magic seed. The helpers here
 * replace those with claims about the *pooled* error proportion over a
 * seed sweep (>= 16 seeds):
 *
 *   auto sweep = wb::test::sweepSeeds([](std::uint64_t seed) {
 *       cfg.seed = seed;
 *       auto res = chan::runChannel(cfg);
 *       // errors, trials
 *       return wb::test::Proportion{res.ber * payloadBits, payloadBits};
 *   });
 *   EXPECT_BER_BELOW(sweep, 0.05);   // Wilson upper bound < 0.05
 *   EXPECT_BER_ABOVE(sweep, 0.30);   // Wilson lower bound > 0.30
 *   EXPECT_ACCURACY_ABOVE(sweep, 0.95);
 *
 * The bound is checked against the Wilson score interval of the pooled
 * proportion at z = 2.576 (~99% two-sided), so a passing assertion
 * states "the underlying error rate is below/above the bound with high
 * confidence", not "these particular seeds happened to behave".
 */

#ifndef WB_TESTS_STAT_ASSERT_HH
#define WB_TESTS_STAT_ASSERT_HH

#include <cmath>
#include <cstdint>
#include <ostream>

#include <gtest/gtest.h>

#include "sim/sweep_runner.hh"

namespace wb::test
{

/** One run's outcome: error (or success) count over a trial count. */
struct Proportion
{
    double count = 0.0;  //!< errors (BER sweeps) or successes (accuracy)
    double trials = 0.0; //!< bits scored / attack trials
};

/** A two-sided confidence interval on a pooled proportion. */
struct BinomialCi
{
    double mean = 0.0; //!< pooled point estimate
    double lo = 0.0;   //!< lower confidence bound
    double hi = 1.0;   //!< upper confidence bound
};

/** Wilson score interval for @p count successes in @p trials. */
inline BinomialCi
wilsonInterval(double count, double trials, double z = 2.576)
{
    BinomialCi ci;
    if (trials <= 0.0)
        return ci;
    const double p = count / trials;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / trials;
    const double center = (p + z2 / (2.0 * trials)) / denom;
    const double margin =
        (z / denom) *
        std::sqrt(p * (1.0 - p) / trials + z2 / (4.0 * trials * trials));
    ci.mean = p;
    ci.lo = std::max(0.0, center - margin);
    ci.hi = std::min(1.0, center + margin);
    return ci;
}

/** Pooled error/trial counts across a multi-seed sweep. */
class ProportionSweep
{
  public:
    /** Minimum seeds a statistical claim may rest on. */
    static constexpr unsigned kMinRuns = 16;

    /** Record one run's outcome. */
    void
    add(const Proportion &p)
    {
        count_ += p.count;
        trials_ += p.trials;
        ++runs_;
    }

    /** Number of runs recorded. */
    unsigned runs() const { return runs_; }

    /** Pooled point estimate. */
    double rate() const { return trials_ > 0.0 ? count_ / trials_ : 0.0; }

    /** Wilson interval of the pooled proportion. */
    BinomialCi ci(double z = 2.576) const
    {
        return wilsonInterval(count_, trials_, z);
    }

    friend std::ostream &
    operator<<(std::ostream &os, const ProportionSweep &s)
    {
        const BinomialCi ci = s.ci();
        return os << s.count_ << "/" << s.trials_ << " over " << s.runs_
                  << " seeds (rate " << ci.mean << ", 99% CI [" << ci.lo
                  << ", " << ci.hi << "])";
    }

  private:
    double count_ = 0.0;
    double trials_ = 0.0;
    unsigned runs_ = 0;
};

/**
 * Run @p fn(seed) for @p n consecutive seeds starting at @p base and
 * pool the returned proportions. @p fn returns a Proportion.
 *
 * Runs are fanned over a SweepRunner thread pool (hardware
 * concurrency) and pooled in seed order, so the sweep's totals are
 * identical at any thread count. @p fn must be shared-nothing:
 * capture configs by value and build the whole simulation inside.
 */
template <typename Fn>
ProportionSweep
sweepSeeds(Fn &&fn, unsigned n = ProportionSweep::kMinRuns,
           std::uint64_t base = 1)
{
    wb::sim::SweepRunner pool;
    const auto results = pool.map<Proportion>(
        n, [&](std::size_t i) { return fn(base + i); });
    ProportionSweep sweep;
    for (const Proportion &p : results)
        sweep.add(p);
    return sweep;
}

} // namespace wb::test

/**
 * The pooled error rate is below @p bound with high confidence: the
 * Wilson upper bound of the sweep must clear it. Also enforces the
 * >= 16-seed floor so no claim rests on a lucky handful of runs.
 */
#define EXPECT_BER_BELOW(sweep, bound)                                     \
    do {                                                                   \
        const auto &statSweep_ = (sweep);                                  \
        ASSERT_GE(statSweep_.runs(), wb::test::ProportionSweep::kMinRuns)  \
            << "statistical claim on too few seeds";                       \
        EXPECT_LT(statSweep_.ci().hi, (bound)) << statSweep_;              \
    } while (0)

/** The pooled error rate is above @p bound (a closed/broken channel). */
#define EXPECT_BER_ABOVE(sweep, bound)                                     \
    do {                                                                   \
        const auto &statSweep_ = (sweep);                                  \
        ASSERT_GE(statSweep_.runs(), wb::test::ProportionSweep::kMinRuns)  \
            << "statistical claim on too few seeds";                       \
        EXPECT_GT(statSweep_.ci().lo, (bound)) << statSweep_;              \
    } while (0)

/**
 * The pooled success rate (accuracy, recovery rate) is above @p bound
 * with high confidence: the Wilson lower bound must clear it.
 */
#define EXPECT_ACCURACY_ABOVE(sweep, bound)                                \
    do {                                                                   \
        const auto &statSweep_ = (sweep);                                  \
        ASSERT_GE(statSweep_.runs(), wb::test::ProportionSweep::kMinRuns)  \
            << "statistical claim on too few seeds";                       \
        EXPECT_GT(statSweep_.ci().lo, (bound)) << statSweep_;              \
    } while (0)

/** The pooled success rate is below @p bound (a marginal channel). */
#define EXPECT_ACCURACY_BELOW(sweep, bound)                                \
    do {                                                                   \
        const auto &statSweep_ = (sweep);                                  \
        ASSERT_GE(statSweep_.runs(), wb::test::ProportionSweep::kMinRuns)  \
            << "statistical claim on too few seeds";                       \
        EXPECT_LT(statSweep_.ci().hi, (bound)) << statSweep_;              \
    } while (0)

#endif // WB_TESTS_STAT_ASSERT_HH
