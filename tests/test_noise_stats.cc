/**
 * @file
 * Statistical tests of the platform noise machinery: spin-overshoot
 * and preemption rates must match their configured parameters, and
 * the receiver's measurement dispersion must follow measSigma — these
 * are the calibrated constants behind the Fig. 6 reproduction, so
 * drift here silently distorts every BER number.
 */

#include <gtest/gtest.h>

#include "chan/channel.hh"
#include "common/stats.hh"
#include "sim/smt_core.hh"

namespace wb
{
namespace
{

/** Program performing n paced spins and recording their latencies. */
class SpinSampler : public sim::Program
{
  public:
    SpinSampler(unsigned n, Cycles period) : n_(n), period_(period) {}

    std::optional<sim::MemOp>
    next(sim::ProcView &) override
    {
        if (!started_) {
            started_ = true;
            return sim::MemOp::tscRead();
        }
        if (lat.count() >= n_)
            return sim::MemOp::halt();
        return sim::MemOp::spinUntil(tlast_ + period_);
    }

    void
    onResult(const sim::MemOp &op, const sim::OpResult &res,
             sim::ProcView &) override
    {
        if (op.kind == sim::MemOp::Kind::SpinUntil)
            lat.add(double(res.latency));
        tlast_ = res.tsc;
    }

    Samples lat;

  private:
    unsigned n_;
    Cycles period_;
    Cycles tlast_ = 0;
    bool started_ = false;
};

TEST(NoiseStats, SpinOvershootMeanMatchesConfig)
{
    Rng rng(3);
    auto hp = sim::xeonE5_2650Params();
    hp.lat.noiseSigma = 0.0;
    sim::Hierarchy h(hp, &rng);
    sim::NoiseModel nm = sim::NoiseModel::quiet();
    nm.spinOvershootMean = 18.0;
    sim::SmtCore core(h, nm, rng);
    SpinSampler prog(4000, 1000);
    core.addThread(&prog, sim::AddressSpace(1));
    core.run(50'000'000);
    // Spin latency = period remainder + overshoot; with back-to-back
    // spins the latency is ~period + overshoot drift... simpler: the
    // mean EXCESS over the shortest observed spin approximates the
    // exponential's mean.
    const double excess = prog.lat.mean() - prog.lat.percentile(0.5);
    EXPECT_NEAR(excess, 18.0, 4.0);
}

TEST(NoiseStats, PreemptionRateMatchesConfig)
{
    Rng rng(5);
    auto hp = sim::xeonE5_2650Params();
    hp.lat.noiseSigma = 0.0;
    sim::Hierarchy h(hp, &rng);
    sim::NoiseModel nm = sim::NoiseModel::quiet();
    nm.preemptProbPerSpin = 0.01;
    nm.preemptMean = 12000.0;
    sim::SmtCore core(h, nm, rng);
    SpinSampler prog(8000, 1000);
    core.addThread(&prog, sim::AddressSpace(1));
    core.run(200'000'000);
    unsigned big = 0;
    for (double v : prog.lat.raw())
        if (v > 3000.0) // far beyond any non-preempted spin
            ++big;
    // ~1% of spins preempted (exponential(12000) > 3000 w.p. ~78%).
    EXPECT_NEAR(double(big) / 8000.0, 0.0078, 0.004);
}

TEST(NoiseStats, ReceiverDispersionFollowsMeasSigma)
{
    // Run the receiver alone (no sender): observation spread must be
    // dominated by measSigma(tr) once per-access noise is off.
    auto run = [](Cycles tr) {
        chan::ChannelConfig cfg;
        cfg.noise = sim::NoiseModel::quiet();
        cfg.noise.measBaseSigma = 1.0;
        cfg.noise.measRateSigma = 1800.0;
        cfg.platform.lat.noiseSigma = 0.0;
        cfg.protocol.ts = cfg.protocol.tr = tr;
        cfg.protocol.frames = 4;
        cfg.protocol.encoding = chan::Encoding::binary(1);
        cfg.calibration.measurements = 50;
        cfg.seed = 9;
        auto res = chan::runChannel(cfg);
        // Spread of the '0' population only (below the midpoint).
        Samples zeros;
        const double thr = (res.calibrationMedians[0] +
                            res.calibrationMedians[1]) /
                           2.0;
        for (double v : res.latencies)
            if (v < thr)
                zeros.add(v);
        return zeros.stddev();
    };
    const double fast = run(800);   // sigma = 1 + 1800/800  = 3.25
    const double slow = run(11000); // sigma = 1 + 1800/11000 = 1.16
    EXPECT_GT(fast, slow);
    EXPECT_NEAR(fast, 3.25, 1.3);
    EXPECT_NEAR(slow, 1.16, 0.8);
}

TEST(NoiseStats, SevenNoisyLinesStillFine)
{
    // Paper Sec. VI: "our WB channel can resist the interference of
    // multiple noisy cache lines (for example, 7 noisy cache lines
    // are in the cache using the LRU replacement algorithm)".
    chan::ChannelConfig cfg;
    cfg.noise = sim::NoiseModel::quiet();
    cfg.platform.lat.noiseSigma = 0.0;
    cfg.platform.l1.policy = sim::PolicyKind::TrueLru;
    cfg.protocol.ts = cfg.protocol.tr = 5500;
    cfg.protocol.encoding = chan::Encoding::binary(1);
    cfg.protocol.frames = 6;
    cfg.calibration.measurements = 80;
    cfg.noiseProcesses = 1;
    cfg.noiseCfg.period = 2 * 5500;
    cfg.noiseCfg.burstLines = 7;
    cfg.seed = 21;
    auto res = chan::runChannel(cfg);
    EXPECT_TRUE(res.aligned);
    EXPECT_LT(res.ber, 0.05);
}

} // namespace
} // namespace wb
