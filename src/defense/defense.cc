#include "defense/defense.hh"

#include <sstream>

#include "common/log.hh"

namespace wb::defense
{

namespace
{

std::string
kindName(DefenseKind kind)
{
    switch (kind) {
      case DefenseKind::None:
        return "none";
      case DefenseKind::WriteThrough:
        return "write-through";
      case DefenseKind::RandomFill:
        return "random-fill";
      case DefenseKind::PlCache:
        return "PLcache";
      case DefenseKind::NoMo:
        return "NoMo";
      case DefenseKind::Dawg:
        return "DAWG";
      case DefenseKind::PrefetchGuard:
        return "Prefetch-guard";
      case DefenseKind::FuzzyTime:
        return "fuzzy-time";
      case DefenseKind::RandomReplacement:
        return "random-replacement";
    }
    return "?";
}

} // namespace

std::string
defenseName(const DefenseSpec &spec)
{
    std::ostringstream os;
    os << kindName(spec.kind);
    if (spec.param != 0)
        os << "(" << spec.param << ")";
    return os.str();
}

chan::ChannelConfig
applyDefense(const chan::ChannelConfig &base, const DefenseSpec &spec)
{
    chan::ChannelConfig cfg = base;
    const unsigned ways = cfg.platform.l1.ways;
    switch (spec.kind) {
      case DefenseKind::None:
        break;
      case DefenseKind::WriteThrough:
        cfg.platform.l1.writePolicy = sim::WritePolicy::WriteThrough;
        break;
      case DefenseKind::RandomFill:
        cfg.platform.randomFillWindow = spec.param ? spec.param : 64;
        break;
      case DefenseKind::PlCache:
        cfg.platform.l1.lockOnWrite = true;
        break;
      case DefenseKind::NoMo: {
        // Reserve `param` ways for each of the two hardware threads;
        // the rest stay shared. Thread 0 is the sender.
        const unsigned r = std::min(spec.param ? spec.param : 2,
                                    ways / 2);
        const std::uint32_t shared = sim::wayMaskRange(2 * r, ways);
        cfg.platform.l1.fillMaskPerThread = {
            sim::wayMaskRange(0, r) | shared,      // sender
            sim::wayMaskRange(r, 2 * r) | shared,  // receiver
        };
        break;
      }
      case DefenseKind::Dawg: {
        // Full isolation: split the ways in half, isolate probes too.
        const unsigned half = ways / 2;
        cfg.platform.l1.fillMaskPerThread = {
            sim::wayMaskRange(0, half),
            sim::wayMaskRange(half, ways),
        };
        cfg.platform.l1.probeIsolated = true;
        break;
      }
      case DefenseKind::PrefetchGuard:
        cfg.platform.prefetchGuardProb =
            (spec.param ? spec.param : 30) / 100.0;
        break;
      case DefenseKind::FuzzyTime:
        cfg.noise.tscGranularity = spec.param ? spec.param : 64;
        break;
      case DefenseKind::RandomReplacement:
        cfg.platform.l1.policy = sim::PolicyKind::RandomIid;
        break;
    }
    return cfg;
}

chan::ChannelConfig
applyDefense(const std::string &platformName, const DefenseSpec &spec)
{
    chan::ChannelConfig base;
    base.usePlatform(platformName);
    return applyDefense(base, spec);
}

std::vector<DefenseEval>
evaluateDefenses(const std::string &platformName,
                 const std::vector<DefenseSpec> &specs)
{
    chan::ChannelConfig base;
    base.usePlatform(platformName);
    return evaluateDefenses(base, specs);
}

std::vector<DefenseEval>
evaluateDefenses(const chan::ChannelConfig &base,
                 const std::vector<DefenseSpec> &specs)
{
    std::vector<DefenseEval> evals;
    evals.reserve(specs.size() + 1);

    std::vector<DefenseSpec> all;
    all.push_back({DefenseKind::None, 0});
    all.insert(all.end(), specs.begin(), specs.end());

    for (const auto &spec : all) {
        DefenseEval ev;
        ev.spec = spec;
        ev.result = chan::runChannel(applyDefense(base, spec));
        const auto &medians = ev.result.calibrationMedians;
        const unsigned top = base.protocol.encoding.maxLevel();
        if (top < medians.size())
            ev.signalGap = medians[top] - medians[0];
        evals.push_back(std::move(ev));
    }
    return evals;
}

std::vector<DefenseSpec>
standardDefenseSpecs()
{
    return {
        {DefenseKind::WriteThrough, 0},
        {DefenseKind::RandomFill, 64},
        {DefenseKind::PlCache, 0},
        {DefenseKind::NoMo, 2},
        {DefenseKind::NoMo, 4},
        {DefenseKind::Dawg, 0},
        {DefenseKind::PrefetchGuard, 30},
        {DefenseKind::FuzzyTime, 16},
        {DefenseKind::FuzzyTime, 128},
        {DefenseKind::RandomReplacement, 0},
    };
}

} // namespace wb::defense
