/**
 * @file
 * The defense suite of paper Sec. VIII, expressed as transformations of
 * a channel configuration plus an evaluation harness that reruns the
 * covert channel under each defense and reports residual BER/goodput.
 *
 * Paper verdicts to reproduce:
 *  - effective: write-through L1, PLcache (locked dirty lines),
 *    DAWG-style isolation, random-fill cache, strong NoMo partitions,
 *    coarse fuzzy time
 *  - NOT effective: Prefetch-guard noise injection (clean lines),
 *    random replacement (Sec. VI-A: use d=3, L=12), weak partitions,
 *    fine-grained fuzzy time
 */

#ifndef WB_DEFENSE_DEFENSE_HH
#define WB_DEFENSE_DEFENSE_HH

#include <string>
#include <vector>

#include "chan/channel.hh"

namespace wb::defense
{

/** Implemented defenses. */
enum class DefenseKind
{
    None,              //!< undefended baseline
    WriteThrough,      //!< L1 write-through: no dirty bits at all
    RandomFill,        //!< Liu & Lee random fill cache (param: window)
    PlCache,           //!< lock dirty lines (param unused)
    NoMo,              //!< static way reservation (param: reserved ways)
    Dawg,              //!< full way isolation incl. probe isolation
    PrefetchGuard,     //!< clean-noise injection (param: prob x 100)
    FuzzyTime,         //!< coarse timestamps (param: granularity)
    RandomReplacement  //!< random policy (param unused)
};

/** A defense with its strength parameter. */
struct DefenseSpec
{
    DefenseKind kind = DefenseKind::None;

    /**
     * Strength knob, meaning depends on kind: RandomFill window in
     * lines; NoMo/Dawg reserved ways per thread; PrefetchGuard
     * probability in percent; FuzzyTime TSC granularity in cycles.
     */
    unsigned param = 0;
};

/** Human-readable name including the parameter. */
std::string defenseName(const DefenseSpec &spec);

/**
 * Return a copy of @p base reconfigured with the defense applied.
 * The sender is thread 0 and the receiver thread 1, matching
 * chan::runChannel's thread layout (partitioning defenses rely on it).
 */
chan::ChannelConfig applyDefense(const chan::ChannelConfig &base,
                                 const DefenseSpec &spec);

/**
 * Build a defended configuration directly from a platform registry
 * preset: resolves @p platformName (fatal on an unknown name) and
 * applies @p spec on top of it.
 */
chan::ChannelConfig applyDefense(const std::string &platformName,
                                 const DefenseSpec &spec);

/** Evaluation outcome for one defense. */
struct DefenseEval
{
    DefenseSpec spec;
    chan::ChannelResult result;

    /**
     * Residual latency signal: calibrated median gap between d = 0 and
     * the encoding's top level, in cycles. ~0 means the defense removed
     * the physical signal, not just degraded decoding.
     */
    double signalGap = 0.0;
};

/** Run the channel under each spec (plus the undefended baseline). */
std::vector<DefenseEval>
evaluateDefenses(const chan::ChannelConfig &base,
                 const std::vector<DefenseSpec> &specs);

/**
 * evaluateDefenses() on a platform registry preset: the base channel
 * configuration is the preset's parameters and noise model with the
 * library's default protocol. Fatal on an unknown name.
 */
std::vector<DefenseEval>
evaluateDefenses(const std::string &platformName,
                 const std::vector<DefenseSpec> &specs);

/** The paper's default evaluation set (Sec. VIII). */
std::vector<DefenseSpec> standardDefenseSpecs();

} // namespace wb::defense

#endif // WB_DEFENSE_DEFENSE_HH
