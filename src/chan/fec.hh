/**
 * @file
 * Forward error correction for the covert channel (the paper closes
 * Sec. V with "more complex encoding mechanisms may achieve higher
 * information transmission rates"; this module explores one).
 *
 * Code: Hamming(7,4) with block interleaving. Hamming corrects one
 * flipped bit per 7-bit codeword — a good match for the channel's
 * high-rate regime where threshold flips dominate (d=1 at 2+ Mbps).
 * Interleaving at depth k spreads a burst of up to k adjacent flips
 * across k different codewords, which matters because the channel's
 * phase-overlap errors arrive in bursts.
 *
 * Slips (insertions/losses) are NOT correctable by a block code; the
 * frame-level preamble re-locking absorbs those before FEC runs.
 */

#ifndef WB_CHAN_FEC_HH
#define WB_CHAN_FEC_HH

#include <cstddef>

#include "common/bitvec.hh"

namespace wb::chan
{

/**
 * Decode-quality accounting. Syndrome corrections count channel bits
 * the code absorbed; truncated bits are received bits dropped because
 * they do not fill a whole codeword (a slipped or cut-short burst).
 * Both are link-quality signals: the transport layer's rate controller
 * treats a high corrected-bit density as a degrading link even while
 * every CRC still passes.
 */
struct FecStats
{
    std::size_t correctedBits = 0; //!< single-bit syndrome corrections
    std::size_t truncatedBits = 0; //!< trailing bits of a partial block
};

/** Hamming(7,4) + block interleaver. */
class HammingCode
{
  public:
    /**
     * @param interleaveDepth codewords interleaved together (1 = none)
     */
    explicit HammingCode(unsigned interleaveDepth = 8);

    /**
     * Encode data bits. Data is padded to a multiple of 4; output
     * length is 7/4 of the padded length, then interleaved.
     */
    BitVec encode(const BitVec &data) const;

    /**
     * Decode (deinterleave + per-codeword syndrome correction).
     *
     * A trailing partial block cannot be decoded; its bits are
     * dropped. Silent truncation is misuse: passing a stream whose
     * length is not a multiple of 7 without @p stats to report the
     * loss through is fatal, so no caller can lose bits without
     * noticing (the transport layer reads both counts as its
     * link-quality signal).
     *
     * @param coded received code bits
     * @param stats corrected/truncated counts (required when
     *        coded.size() is not a whole number of codewords)
     * @return corrected data bits (including any encode padding)
     */
    BitVec decode(const BitVec &coded, FecStats *stats = nullptr) const;

    /** Code rate (4/7). */
    static constexpr double rate() { return 4.0 / 7.0; }

    /** Coded length for @p dataBits of payload. */
    std::size_t codedLength(std::size_t dataBits) const;

    /** Interleaver depth. */
    unsigned depth() const { return depth_; }

  private:
    /** Encode one 4-bit nibble into a 7-bit codeword. */
    static void encodeNibble(const bool d[4], bool out[7]);

    /**
     * Correct and extract one codeword into 4 data bits.
     * @return true when a nonzero syndrome flipped a bit
     */
    static bool decodeWord(const bool c[7], bool out[4]);

    unsigned depth_;
};

/**
 * Residual BER after coding, for analysis: the fraction of data bits
 * still wrong after @p code corrects a stream that went through a
 * binary symmetric channel simulation (used by tests/benches to
 * cross-check the live measurements).
 */
double simulateResidualBer(const HammingCode &code, double flipProb,
                           std::size_t dataBits, std::uint64_t seed);

} // namespace wb::chan

#endif // WB_CHAN_FEC_HH
