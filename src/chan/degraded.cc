#include "chan/degraded.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/log.hh"
#include "chan/eviction_finder.hh"

namespace wb::chan
{

namespace
{

/**
 * Sigma multiple at which a block mean of R samples must separate two
 * adjacent centroids: half-gap / se(block mean) >= kRepetitionZ gives
 * a per-symbol misclassification around 0.3%, comfortably inside the
 * frame decoder's tolerance while keeping R (and the run length)
 * within an order of magnitude of the information-theoretic floor.
 */
constexpr double kRepetitionZ = 2.75;

/** Planning-calibration sample floor (per level): the centroid and
 *  dispersion estimates must be trusted before they size R. */
constexpr unsigned kPlanMeasurementsFloor = 4000;

/** Calibration samples per level the planner may escalate to. */
constexpr unsigned kPlanMeasurementsCap = 65536;

} // namespace

unsigned
planRepetition(const ChannelConfig &cfg)
{
    const Encoding &enc = cfg.protocol.encoding;
    const std::vector<unsigned> &levels = enc.levels();
    if (levels.size() < 2)
        return 1;

    CalibrationConfig calCfg = cfg.calibration;
    calCfg.levelsMix = levels;
    calCfg.targetSet = cfg.protocol.targetSet;
    calCfg.replacementSize = cfg.protocol.replacementSize;

    // The planner's own RNG: the attacker sizes R from a separate
    // planning experiment, leaving the run streams untouched.
    Rng planRng(cfg.seed ^ 0x0b5e77e5a11a5ULL);
    unsigned n = std::max(calCfg.measurements, kPlanMeasurementsFloor);
    for (int pass = 0;; ++pass) {
        calCfg.measurements = n;
        const Calibration cal =
            calibrate(cfg.platform, cfg.noise, calCfg, planRng);

        double minGap = std::numeric_limits<double>::infinity();
        double sigma = 0.0;
        for (std::size_t i = 0; i < levels.size(); ++i) {
            sigma = std::max(sigma, cal.stddevByD[levels[i]]);
            if (i > 0) {
                minGap = std::min(minGap, cal.meanByD[levels[i]] -
                                              cal.meanByD[levels[i - 1]]);
            }
        }
        if (!(minGap > 0.5)) {
            // No measurable separation: the channel is closed under
            // this platform/defense, and repetition cannot reopen it.
            return kClosedChannelRepetition;
        }
        if (sigma <= 0.0)
            return 1;

        const double need =
            std::ceil(std::pow(kRepetitionZ * sigma / (minGap / 2.0), 2.0));
        const unsigned r = static_cast<unsigned>(
            std::clamp(need, 1.0, double(kMaxRepetition)));

        // Centroid trust: the classifier means must be estimated to
        // well under the half-gap too (se = sigma / sqrt(n)), which
        // needs n of the same order as R. One escalation pass.
        const unsigned nNeeded = std::min(kPlanMeasurementsCap, 2 * r);
        if (pass == 0 && nNeeded > n) {
            n = nNeeded;
            continue;
        }
        return r;
    }
}

DegradedPlan
planDegraded(const ChannelConfig &in)
{
    DegradedPlan plan;
    plan.cfg = in;
    ChannelConfig &cfg = plan.cfg;
    const sim::ObserverModel &obs = in.noise.observer;

    if (obs.cls == sim::ObserverClass::FlushLatency) {
        if (!obs.hasFlush) {
            fatalf("planDegraded: flush-latency observer with "
                   "hasFlush=false — the variant *is* the flush "
                   "primitive; use the eviction-only class instead");
        }
        if (cfg.platform.lat.flushWbDrainExtra == 0)
            cfg.platform.lat.flushWbDrainExtra = kDefaultFlushWbDrain;
        cfg.calibration.probe = CalibrationProbe::FlushLatency;
    }

    if (obs.coarseTimer()) {
        // Granule-aligned pacing: both parties live in the same
        // sandbox, so their slot spins release at granule boundaries
        // and the pair stays in lockstep under quantization (the
        // post-spin re-based Tlast is itself a floored reading).
        const Cycles g = cfg.noise.timerGranule();
        const auto align = [g](Cycles t) { return ((t + g - 1) / g) * g; };
        cfg.protocol.ts = align(cfg.protocol.ts);
        cfg.protocol.tr = align(cfg.protocol.tr);

        const unsigned r =
            cfg.protocol.repetitionOverride != 0
                ? std::min(cfg.protocol.repetitionOverride, kMaxRepetition)
                : planRepetition(cfg);
        plan.repetition = r;
        if (r > 1) {
            // Keep the sender's launch on a block boundary so every
            // R-sample block the receiver averages covers exactly one
            // symbol (a fractional offset would smear adjacent
            // symbols into each block mean).
            cfg.senderStartSlots =
                ((cfg.senderStartSlots + r - 1) / r) * r;
            cfg.sampleMargin = std::max(cfg.sampleMargin, 2 * r);
            // The run calibration's mean centroids carry the same
            // trust requirement the planner applied to its own.
            cfg.calibration.measurements =
                std::max(cfg.calibration.measurements, 2 * r);
        }
    }
    return plan;
}

std::vector<double>
collapseRepetition(const std::vector<double> &latencies, unsigned repetition)
{
    if (repetition <= 1)
        return latencies;
    std::vector<double> blocks;
    blocks.reserve(latencies.size() / repetition);
    for (std::size_t i = 0; i + repetition <= latencies.size();
         i += repetition) {
        double sum = 0.0;
        for (std::size_t j = 0; j < repetition; ++j)
            sum += latencies[i + j];
        blocks.push_back(sum / double(repetition));
    }
    return blocks;
}

ChannelSets
discoverChannelSets(sim::Hierarchy &hierarchy, ThreadId tid,
                    unsigned targetSet, unsigned ways,
                    unsigned replacementSize, Rng &rng, bool *verified)
{
    const sim::AddressLayout &layout = hierarchy.l1().layout();
    ChannelSets sets =
        makeChannelSets(layout, targetSet, ways, replacementSize);

    EvictionFinderConfig fc;
    fc.associativity = ways;
    // The finder's auto-calibration assumes DRAM-vs-cache contrast;
    // an L1 eviction set needs the L1-hit / L2-hit boundary instead.
    fc.threshold = (hierarchy.params().lat.l1Hit +
                    hierarchy.params().lat.l2Hit) /
                   2;
    EvictionSetFinder finder(hierarchy, tid, fc);

    // The receiver times its sets through its own address space; the
    // finder works in physical addresses, so discovery runs over the
    // translated pool and maps the survivors back.
    const sim::AddressSpace space(2);
    bool allVerified = true;
    for (int which = 0; which < 2; ++which) {
        // Disjoint tag ranges, clear of the sender (1..), the
        // architectural replacement sets (0x100/0x200) and the noise
        // processes (0x300+). Page-linear translation preserves the
        // set-index bits, so every pool line is L1-congruent with the
        // victim by VIPT construction — discovery is the observer's
        // timing-only *verification* of that, not a guess.
        const Addr tagBase = which == 0 ? 0x400 : 0x500;
        const std::vector<Addr> poolVa =
            linesForSet(layout, targetSet, 3 * ways + 1, tagBase);

        std::unordered_map<Addr, Addr> vaByPa;
        std::vector<Addr> candidates;
        candidates.reserve(poolVa.size() - 1);
        const Addr victimPa = space.translate(poolVa[0]);
        for (std::size_t i = 1; i < poolVa.size(); ++i) {
            const Addr pa = space.translate(poolVa[i]);
            vaByPa.emplace(pa, poolVa[i]);
            candidates.push_back(pa);
        }

        const EvictionSetResult found =
            finder.findFor(victimPa, candidates, rng);
        if (!found.verifiedMinimal) {
            // Honest fallback: keep the architectural set (congruent
            // by construction) and report the discovery failure.
            allVerified = false;
            continue;
        }
        std::vector<Addr> repl;
        repl.reserve(replacementSize);
        for (Addr pa : found.set)
            repl.push_back(vaByPa.at(pa));
        for (std::size_t i = 1;
             i < poolVa.size() && repl.size() < replacementSize; ++i) {
            if (std::find(repl.begin(), repl.end(), poolVa[i]) ==
                repl.end())
                repl.push_back(poolVa[i]);
        }
        (which == 0 ? sets.replacementA : sets.replacementB) =
            std::move(repl);
    }
    if (verified != nullptr)
        *verified = allVerified;
    return sets;
}

FlushLatencyReceiverProgram::FlushLatencyReceiverProgram(
    std::vector<Addr> replacementA, std::vector<Addr> replacementB,
    Cycles tr, std::size_t sampleCount, unsigned warmupSweeps)
    : setA_(std::move(replacementA)), setB_(std::move(replacementB)),
      tr_(tr), sampleCount_(sampleCount)
{
    for (unsigned sweep = 0; sweep < warmupSweeps; ++sweep) {
        warmupOrder_.insert(warmupOrder_.end(), setA_.begin(), setA_.end());
        warmupOrder_.insert(warmupOrder_.end(), setB_.begin(), setB_.end());
    }
}

std::optional<sim::MemOp>
FlushLatencyReceiverProgram::next(sim::ProcView &)
{
    switch (phase_) {
      case Phase::Warmup:
        if (!warmupDone_ && !warmupOrder_.empty()) {
            warmupDone_ = true;
            return sim::MemOp::loadBatch(warmupOrder_.data(),
                                         warmupOrder_.size());
        }
        phase_ = Phase::Init;
        return sim::MemOp::tscRead();
      case Phase::Init:
        return sim::MemOp::tscRead();
      case Phase::Wait:
        return sim::MemOp::spinUntil(tlast_ + tr_);
      case Phase::Measure:
        if (measurePos_ < measureOps_.size())
            return measureOps_[measurePos_];
        panic("FlushLatencyReceiverProgram: ops exhausted unexpectedly");
      case Phase::Done:
        return sim::MemOp::halt();
    }
    return sim::MemOp::halt();
}

void
FlushLatencyReceiverProgram::onResult(const sim::MemOp &op,
                                      const sim::OpResult &res,
                                      sim::ProcView &view)
{
    switch (phase_) {
      case Phase::Warmup:
        break;
      case Phase::Init:
        tlast_ = res.tsc;
        phase_ = Phase::Wait;
        break;
      case Phase::Wait: {
        tlast_ = res.tsc;
        // Arm the slot: untimed prime of the current set (whatever
        // dirty lines the sender left in the target set join the
        // write-back queue), then the timed flush of a probe line.
        const std::vector<Addr> &set = useA_ ? setA_ : setB_;
        measureOps_.clear();
        measureOps_.push_back(
            sim::MemOp::loadBatch(set.data(), set.size()));
        if (view.noise().observer.coarseTimer()) {
            // Same unbiased-estimator dither as ReceiverProgram.
            measureOps_.push_back(sim::MemOp::delay(
                view.rng().below(view.noise().timerGranule())));
        }
        measureOps_.push_back(sim::MemOp::tscRead());
        measureOps_.push_back(sim::MemOp::flush(set[0]));
        measureOps_.push_back(sim::MemOp::tscRead());
        measurePos_ = 0;
        sawFirstTsc_ = false;
        phase_ = Phase::Measure;
        break;
      }
      case Phase::Measure:
        ++measurePos_;
        if (op.kind == sim::MemOp::Kind::TscRead) {
            if (!sawFirstTsc_) {
                sawFirstTsc_ = true;
                tscStart_ = res.tsc;
            } else {
                double latency = static_cast<double>(res.tsc) -
                                 static_cast<double>(tscStart_);
                const double sigma = view.noise().measSigma(tr_);
                if (sigma > 0.0)
                    latency += view.rng().gaussian(0.0, sigma);
                latencies_.push_back(latency);
                useA_ = !useA_;
                if (latencies_.size() >= sampleCount_) {
                    done_ = true;
                    phase_ = Phase::Done;
                } else {
                    phase_ = Phase::Wait;
                }
            }
        }
        break;
      case Phase::Done:
        break;
    }
}

} // namespace wb::chan
