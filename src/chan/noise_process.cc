#include "chan/noise_process.hh"

#include "common/log.hh"

namespace wb::chan
{

NoiseProcess::NoiseProcess(std::vector<Addr> lines,
                           const NoiseProcessConfig &cfg)
    : lines_(std::move(lines)), cfg_(cfg)
{
    if (lines_.empty())
        fatalf("NoiseProcess: needs at least one line");
}

std::optional<sim::MemOp>
NoiseProcess::next(sim::ProcView &view)
{
    if (!started_) {
        started_ = true;
        return sim::MemOp::tscRead();
    }
    if (spinning_)
        return sim::MemOp::spinUntil(tlast_ + cfg_.period);
    const Addr line = lines_[nextLine_];
    nextLine_ = (nextLine_ + 1) % lines_.size();
    const bool isStore = view.rng().chance(cfg_.storeFraction);
    return isStore ? sim::MemOp::store(line) : sim::MemOp::load(line);
}

void
NoiseProcess::onResult(const sim::MemOp &op, const sim::OpResult &res,
                       sim::ProcView &)
{
    switch (op.kind) {
      case sim::MemOp::Kind::TscRead:
        tlast_ = res.tsc;
        spinning_ = true;
        break;
      case sim::MemOp::Kind::SpinUntil:
        tlast_ = res.tsc;
        spinning_ = false;
        burstPos_ = 0;
        break;
      case sim::MemOp::Kind::Load:
      case sim::MemOp::Kind::Store:
        ++accesses_;
        ++burstPos_;
        if (burstPos_ >= cfg_.burstLines)
            spinning_ = true;
        break;
      default:
        break;
    }
}

} // namespace wb::chan
