#include "chan/noise_process.hh"

#include "common/log.hh"

namespace wb::chan
{

NoiseProcess::NoiseProcess(std::vector<Addr> lines,
                           const NoiseProcessConfig &cfg)
    : lines_(std::move(lines)), cfg_(cfg)
{
    if (lines_.empty())
        fatalf("NoiseProcess: needs at least one line");
}

void
NoiseProcess::buildBurst(Rng &rng)
{
    // chance() consumes no draws for the pure 0.0/1.0 fractions, so
    // all-load and all-store noise stays deterministic relative to
    // the run RNG (and forms a single run each).
    runs_.clear();
    runPos_ = 0;
    for (unsigned i = 0; i < cfg_.burstLines; ++i) {
        const Addr line = lines_[nextLine_];
        nextLine_ = (nextLine_ + 1) % lines_.size();
        const bool isStore = rng.chance(cfg_.storeFraction);
        if (runs_.empty() || runs_.back().isStore != isStore)
            runs_.push_back({isStore, {}});
        runs_.back().lines.push_back(line);
    }
}

std::optional<sim::MemOp>
NoiseProcess::next(sim::ProcView &)
{
    if (!started_) {
        started_ = true;
        return sim::MemOp::tscRead();
    }
    if (spinning_)
        return sim::MemOp::spinUntil(tlast_ + cfg_.period);
    if (runPos_ < runs_.size()) {
        const BurstRun &run = runs_[runPos_];
        return run.isStore
                   ? sim::MemOp::storeBatch(run.lines.data(),
                                            run.lines.size())
                   : sim::MemOp::loadBatch(run.lines.data(),
                                           run.lines.size());
    }
    // Empty burst (burstLines == 0): go straight back to spinning.
    spinning_ = true;
    return sim::MemOp::spinUntil(tlast_ + cfg_.period);
}

void
NoiseProcess::onResult(const sim::MemOp &op, const sim::OpResult &res,
                       sim::ProcView &view)
{
    switch (op.kind) {
      case sim::MemOp::Kind::TscRead:
        tlast_ = res.tsc;
        spinning_ = true;
        break;
      case sim::MemOp::Kind::SpinUntil:
        tlast_ = res.tsc;
        spinning_ = false;
        buildBurst(view.rng());
        break;
      case sim::MemOp::Kind::LoadBatch:
      case sim::MemOp::Kind::StoreBatch:
        accesses_ += res.batch.accesses;
        ++runPos_;
        if (runPos_ >= runs_.size())
            spinning_ = true;
        break;
      default:
        break;
    }
}

} // namespace wb::chan
