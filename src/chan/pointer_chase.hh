/**
 * @file
 * The receiver's measurement primitive (paper Fig. 3 / Sec. IV-B).
 *
 * The replacement set is organized as a linked list in random order;
 * each element stores the address of the next, so traversal is a chain
 * of data-dependent loads the hardware cannot reorder or prefetch. The
 * traversal is bracketed by serialized timestamp reads. In simulation
 * the same structure is expressed as a permuted load order whose
 * latencies are summed between two TscRead operations.
 */

#ifndef WB_CHAN_POINTER_CHASE_HH
#define WB_CHAN_POINTER_CHASE_HH

#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "sim/smt_core.hh"

namespace wb::chan
{

/**
 * A randomly permuted traversal order over a replacement set, with the
 * op sequence to execute one timed measurement.
 */
class PointerChase
{
  public:
    /** @param lines the replacement-set line addresses. */
    explicit PointerChase(std::vector<Addr> lines);

    /** Re-randomize the traversal order (defeats the prefetcher). */
    void reshuffle(Rng &rng);

    /** The current traversal order. */
    const std::vector<Addr> &order() const { return order_; }

    /**
     * The measurement op sequence: TscRead, |lines| dependent loads in
     * the permuted order, TscRead.
     */
    std::vector<sim::MemOp> measurementOps() const;

    /**
     * measurementOps() with the traversal as one batched load sweep:
     * TscRead, loadBatch over the whole permuted order, TscRead —
     * the timed-measurement primitive every batched receiver uses.
     * The returned ops reference this chase's order storage; they
     * stay valid until the next reshuffle().
     */
    std::vector<sim::MemOp> batchedMeasurementOps() const;

    /** Number of lines in the set. */
    std::size_t size() const { return order_.size(); }

  private:
    std::vector<Addr> order_;
};

} // namespace wb::chan

#endif // WB_CHAN_POINTER_CHASE_HH
