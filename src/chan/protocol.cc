#include "chan/protocol.hh"

#include <algorithm>

#include "common/log.hh"

namespace wb::chan
{

BitVec
symbolsToBits(const std::vector<unsigned> &symbols, const Encoding &encoding)
{
    BitVec bits;
    bits.reserve(symbols.size() * encoding.bitsPerSymbol());
    for (unsigned s : symbols)
        encoding.appendSymbolBits(s, bits);
    return bits;
}

std::vector<unsigned>
classifyAll(const std::vector<double> &latencies, const Classifier &classifier)
{
    std::vector<unsigned> symbols;
    symbols.reserve(latencies.size());
    for (double lat : latencies)
        symbols.push_back(classifier.classify(lat));
    return symbols;
}

std::vector<unsigned>
frameToLevels(const BitVec &frame, const Encoding &encoding)
{
    const unsigned k = encoding.bitsPerSymbol();
    if (frame.size() % k != 0)
        fatalf("frameToLevels: frame size ", frame.size(),
               " not divisible by bits/symbol ", k);
    std::vector<unsigned> levels;
    levels.reserve(frame.size() / k);
    for (std::size_t pos = 0; pos < frame.size(); pos += k)
        levels.push_back(encoding.level(encoding.symbolAt(frame, pos)));
    return levels;
}

namespace
{

/** Extract [start, start+len) from @p bits, truncating at the end. */
BitVec
slice(const BitVec &bits, std::size_t start, std::size_t len)
{
    BitVec out;
    if (start >= bits.size())
        return out;
    const std::size_t end = std::min(bits.size(), start + len);
    out.assign(bits.begin() + static_cast<std::ptrdiff_t>(start),
               bits.begin() + static_cast<std::ptrdiff_t>(end));
    return out;
}

} // namespace

DecodeResult
scoreFrames(const BitVec &bitstream, const BitVec &frame,
            unsigned framesExpected)
{
    DecodeResult res;
    res.bitstream = bitstream;
    res.framesExpected = framesExpected;

    const BitVec pre = preamble16();
    if (frame.size() <= pre.size())
        fatalf("scoreFrames: frame smaller than the preamble");
    const BitVec payload(frame.begin() +
                             static_cast<std::ptrdiff_t>(pre.size()),
                         frame.end());
    const std::size_t frameLen = frame.size();
    const std::size_t payloadLen = payload.size();

    // Anchor on the first preamble occurrence.
    const std::size_t searchLen =
        std::min(bitstream.size(), frameLen * 3);
    auto anchor = alignByPattern(slice(bitstream, 0, searchLen), pre, 2);
    if (!anchor) {
        // Total loss: the conventional worst case counts every payload
        // bit of every expected frame as an error.
        res.ber = 1.0;
        res.breakdown.distance = framesExpected * payloadLen;
        res.breakdown.deletions = res.breakdown.distance;
        return res;
    }
    res.aligned = true;

    std::size_t pos = *anchor;
    std::size_t totalDistance = 0;
    std::size_t totalBits = 0;
    EditBreakdown agg;

    while (pos + frameLen <= bitstream.size() &&
           res.framesScored < framesExpected) {
        // Re-lock on the preamble near the expected start to absorb
        // phase slips (bit insertions/losses between frames). The
        // +/- 24-bit window covers preemption-sized slips without
        // reaching the neighbouring frames' preambles.
        std::size_t start = pos;
        const std::size_t windowBack = pos >= 24 ? pos - 24 : 0;
        auto found = alignByPattern(
            slice(bitstream, windowBack, 48 + pre.size()), pre, 2);
        if (found) {
            start = windowBack + *found;
        } else {
            // Lost lock: scan forward up to one frame for the next
            // preamble (a long preemption may have swallowed dozens
            // of slots).
            auto fwd = alignByPattern(
                slice(bitstream, pos, frameLen + pre.size()), pre, 3);
            if (fwd)
                start = pos + *fwd;
        }

        const BitVec gotPayload =
            slice(bitstream, start + pre.size(), payloadLen);
        if (gotPayload.size() < payloadLen / 2)
            break; // ran out of samples

        const EditBreakdown eb = editBreakdown(payload, gotPayload);
        totalDistance += eb.distance;
        totalBits += payloadLen;
        agg.distance += eb.distance;
        agg.substitutions += eb.substitutions;
        agg.insertions += eb.insertions;
        agg.deletions += eb.deletions;
        ++res.framesScored;
        pos = start + frameLen;
    }

    res.breakdown = agg;
    res.ber = totalBits
        ? static_cast<double>(totalDistance) / static_cast<double>(totalBits)
        : 1.0;
    return res;
}

DecodeResult
decodeTransmission(const std::vector<double> &latencies,
                   const Classifier &classifier, const Encoding &encoding,
                   const BitVec &frame, unsigned framesExpected)
{
    const auto symbols = classifyAll(latencies, classifier);
    const BitVec bits = symbolsToBits(symbols, encoding);
    return scoreFrames(bits, frame, framesExpected);
}

TransmissionSchedule
transmissionSchedule(std::size_t slots, Cycles ts,
                     unsigned senderStartSlots, unsigned sampleMargin)
{
    TransmissionSchedule s;
    s.senderStart = static_cast<Cycles>(senderStartSlots) * ts;
    s.sampleCount = slots + senderStartSlots + sampleMargin;
    // Slack per slot (+50 cycles) absorbs spin overshoot drift, the
    // +8 slots and flat tail absorb the receiver's warm-up and the
    // final partially-observed slots.
    s.horizon = s.senderStart +
                static_cast<Cycles>(slots + 8) * (ts + 50) + 200000;
    return s;
}

} // namespace wb::chan
