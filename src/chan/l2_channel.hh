/**
 * @file
 * The WB channel deployed on the L2 cache (paper Sec. III: "The WB
 * time channel can be deployed not only on the L1 cache but also on
 * other cache levels. However, this requires more operations from the
 * sender." — the paper states this but never evaluates it; this module
 * does).
 *
 * Mechanics: the parties agree on an L2 *set*. Because the L1 index
 * bits are a subset of the L2 index bits, every line of one L2 set
 * also maps to one L1 set, so:
 *
 *  - the sender cannot just store (that only dirties L1): after
 *    writing each line it sweeps "pusher" lines that share the L1 set
 *    but live in *other* L2 sets, evicting its dirty line from L1 so
 *    the write-back lands in the target L2 set — the extra sender
 *    work the paper predicted;
 *  - the receiver times a pointer-chased replacement of the L2 set
 *    (two alternating replacement sets, as at L1). Each traversal load
 *    misses L1 and L2 and is served by the LLC; an L2 fill that evicts
 *    a dirty L2 victim pays the L2 write-back penalty, which is the
 *    signal.
 */

#ifndef WB_CHAN_L2_CHANNEL_HH
#define WB_CHAN_L2_CHANNEL_HH

#include "chan/channel.hh"

namespace wb::chan
{

/** L2-channel experiment configuration. */
struct L2ChannelConfig
{
    /** Registry preset this config was built from (see usePlatform). */
    std::string platformName = sim::kDefaultPlatform;
    sim::HierarchyParams platform = sim::xeonE5_2650Params();
    sim::NoiseModel noise;
    Cycles ts = 30000;   //!< slots are longer: encode costs more
    Cycles tr = 30000;
    unsigned frames = 20;
    unsigned frameBits = 128;
    unsigned d = 4;              //!< dirty L2 lines per 1-bit
    unsigned targetL2Set = 137;  //!< agreed L2 set
    unsigned replacementSize = 12; //!< receiver lines per probe
    unsigned pusherLines = 10;   //!< L1-eviction sweep size
    unsigned calMeasurements = 150;
    std::uint64_t seed = 1;
    double cpuGhz = 2.2;

    /** Channel rate in kbps. */
    double rateKbps() const { return cpuGhz * 1e6 / double(ts); }

    /**
     * Reconfigure for a named registry preset (hierarchy parameters +
     * noise model). Fatal on an unknown name. @return *this.
     */
    L2ChannelConfig &
    usePlatform(const std::string &name)
    {
        sim::applyPlatform(name, platformName, platform, noise);
        return *this;
    }
};

/**
 * Sender for the L2 channel: per 1-bit, writes d target-set lines and
 * evicts each from L1 through the pusher sweep.
 */
class L2SenderProgram : public sim::Program
{
  public:
    /**
     * @param lines sender lines mapping to the target L2 set
     * @param pushers lines sharing the L1 set but in other L2 sets
     * @param bits bit sequence (binary encoding)
     * @param d dirty lines per 1-bit
     * @param ts slot period
     */
    L2SenderProgram(std::vector<Addr> lines, std::vector<Addr> pushers,
                    std::vector<bool> bits, unsigned d, Cycles ts);

    std::optional<sim::MemOp> next(sim::ProcView &view) override;
    void onResult(const sim::MemOp &op, const sim::OpResult &res,
                  sim::ProcView &view) override;

    /** True once every bit was modulated. */
    bool done() const { return done_; }

  private:
    enum class Phase
    {
        Init,
        Store, //!< dirty the next target line in L1
        Push,  //!< sweep pushers to force the write-back into L2
        Wait
    };

    std::vector<Addr> lines_;
    std::vector<Addr> pushers_;
    std::vector<bool> bits_;
    unsigned d_;
    Cycles ts_;

    Phase phase_ = Phase::Init;
    std::size_t bitIdx_ = 0;
    unsigned lineIdx_ = 0;
    unsigned pushIdx_ = 0;
    Cycles tlast_ = 0;
    bool done_ = false;
};

/** Result bundle (same shape as the L1 channel's). */
using L2ChannelResult = ChannelResult;

/** Run the L2-level covert channel end to end. */
L2ChannelResult runL2Channel(const L2ChannelConfig &cfg);

/**
 * Helper: lines mapping to a given L2 set (they also share one L1
 * set), and pusher lines for that L1 set in other L2 sets.
 */
struct L2Sets
{
    std::vector<Addr> senderLines;
    std::vector<Addr> pushers;
    std::vector<Addr> replacementA;
    std::vector<Addr> replacementB;
};

/** Build the L2-channel line pools. */
L2Sets makeL2Sets(const sim::AddressLayout &l1Layout,
                  const sim::AddressLayout &l2Layout, unsigned targetL2Set,
                  unsigned senderCount, unsigned pusherCount,
                  unsigned replacementSize);

} // namespace wb::chan

#endif // WB_CHAN_L2_CHANNEL_HH
