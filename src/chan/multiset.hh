/**
 * @file
 * Multi-set parallel WB channels.
 *
 * The paper reports 1300-4400 kbps *per cache set* and notes that all
 * cache lines in a set can be used equally; nothing stops the parties
 * from agreeing on k disjoint target sets and striping the message
 * across them — k bits per slot. The receiver's slot must fit k timed
 * replacements, so the aggregate rate saturates near
 * k / (k * chase_time) ~ 1 / chase_time regardless of k; this module
 * measures exactly where that ceiling sits on the modeled Xeon.
 */

#ifndef WB_CHAN_MULTISET_HH
#define WB_CHAN_MULTISET_HH

#include "chan/channel.hh"
#include "chan/pointer_chase.hh"

namespace wb::chan
{

/** Multi-set experiment configuration. */
struct MultiSetConfig
{
    /** Registry preset this config was built from (see usePlatform). */
    std::string platformName = sim::kDefaultPlatform;
    sim::HierarchyParams platform = sim::xeonE5_2650Params();
    sim::NoiseModel noise;
    Cycles ts = 5500;  //!< slot period
    Cycles tr = 5500;
    unsigned frames = 15;
    unsigned frameBits = 128;
    unsigned d = 4;             //!< dirty lines per 1-bit per set
    unsigned setCount = 4;      //!< k parallel target sets
    unsigned firstSet = 8;      //!< sets used: firstSet + 8*j
    unsigned replacementSize = 10;
    unsigned calMeasurements = 150;
    std::uint64_t seed = 1;
    double cpuGhz = 2.2;

    /** Aggregate channel rate in kbps (k bits per slot). */
    double
    rateKbps() const
    {
        return setCount * cpuGhz * 1e6 / double(ts);
    }

    /** The j-th target set index. */
    unsigned
    targetSet(unsigned j) const
    {
        return (firstSet + 8 * j) % 64;
    }

    /**
     * Reconfigure for a named registry preset (hierarchy parameters +
     * noise model). Fatal on an unknown name. @return *this.
     */
    MultiSetConfig &
    usePlatform(const std::string &name)
    {
        sim::applyPlatform(name, platformName, platform, noise);
        return *this;
    }
};

/** Striped sender: slot s, set j carries message bit s*k + j. */
class MultiSetSender : public sim::Program
{
  public:
    /**
     * @param linePools per-set sender line pools
     * @param bits the striped message
     * @param d dirty lines per 1-bit
     * @param ts slot period
     */
    MultiSetSender(std::vector<std::vector<Addr>> linePools,
                   std::vector<bool> bits, unsigned d, Cycles ts);

    std::optional<sim::MemOp> next(sim::ProcView &view) override;
    void onResult(const sim::MemOp &op, const sim::OpResult &res,
                  sim::ProcView &view) override;

  private:
    enum class Phase
    {
        Init,
        Encode,
        Wait,
        Done
    };

    /** Advance setIdx_/storeIdx_ to the next due store, or to Wait. */
    void advance();

    std::vector<std::vector<Addr>> pools_;
    std::vector<bool> bits_;
    unsigned d_;
    Cycles ts_;

    Phase phase_ = Phase::Init;
    std::size_t slotIdx_ = 0;
    unsigned setIdx_ = 0;
    unsigned storeIdx_ = 0;
    Cycles tlast_ = 0;
};

/** Receiver timing k replacements per slot, set-major order. */
class MultiSetReceiver : public sim::Program
{
  public:
    /**
     * @param replA per-set replacement sets A
     * @param replB per-set replacement sets B
     * @param tr slot period
     * @param slots number of slots to record
     */
    MultiSetReceiver(std::vector<std::vector<Addr>> replA,
                     std::vector<std::vector<Addr>> replB, Cycles tr,
                     std::size_t slots);

    std::optional<sim::MemOp> next(sim::ProcView &view) override;
    void onResult(const sim::MemOp &op, const sim::OpResult &res,
                  sim::ProcView &view) override;

    /** Interleaved samples (slot-major, set-minor = message order). */
    const std::vector<double> &samples() const { return samples_; }

    /** True when the receiver's k chases no longer fit the slot. */
    bool overran() const { return overruns_ > slots_ / 10; }

  private:
    enum class Phase
    {
        Warmup,
        InitTsc,
        Wait,
        Measure,
        Done
    };

    void startMeasurement(Rng &rng);

    std::vector<PointerChase> chaseA_;
    std::vector<PointerChase> chaseB_;
    Cycles tr_;
    std::size_t slots_;

    Phase phase_ = Phase::Warmup;
    std::vector<Addr> warmupOrder_;
    std::size_t warmupPos_ = 0;
    unsigned setIdx_ = 0;
    bool useA_ = true;
    std::vector<sim::MemOp> ops_;
    std::size_t opPos_ = 0;
    bool sawFirstTsc_ = false;
    Cycles tscStart_ = 0;
    Cycles tlast_ = 0;
    std::size_t slotsDone_ = 0;
    std::size_t overruns_ = 0;
    std::vector<double> samples_;
};

/** Run the striped multi-set channel end to end. */
ChannelResult runMultiSetChannel(const MultiSetConfig &cfg);

} // namespace wb::chan

#endif // WB_CHAN_MULTISET_HH
