/**
 * @file
 * Noisy-cache-line processes (paper Sec. VI / Fig. 8).
 *
 * A noise process models "another part of the program or other
 * processes on the core" periodically loading (or, rarely, storing)
 * lines that map to the target set. Clean noisy lines break the LRU
 * channel but not the WB channel; dirty noisy lines (stores) are the
 * one interference source the WB channel admits.
 */

#ifndef WB_CHAN_NOISE_PROCESS_HH
#define WB_CHAN_NOISE_PROCESS_HH

#include <vector>

#include "common/types.hh"
#include "sim/smt_core.hh"

namespace wb::chan
{

/** Noise process parameters. */
struct NoiseProcessConfig
{
    Cycles period = 15000;     //!< cycles between bursts
    unsigned burstLines = 1;   //!< lines touched per burst
    double storeFraction = 0.0; //!< probability a touch is a store
};

/**
 * The noise program: periodic bursts of target-set accesses, issued
 * as batched load/store sweeps.
 */
class NoiseProcess : public sim::Program
{
  public:
    /**
     * @param lines noise lines mapping to the target set (own space)
     * @param cfg burst timing/composition
     */
    NoiseProcess(std::vector<Addr> lines, const NoiseProcessConfig &cfg);

    std::optional<sim::MemOp> next(sim::ProcView &view) override;
    void onResult(const sim::MemOp &op, const sim::OpResult &res,
                  sim::ProcView &view) override;

    /** Total accesses issued. */
    std::uint64_t accesses() const { return accesses_; }

  private:
    /** A run of consecutive same-kind touches within one burst. */
    struct BurstRun
    {
        bool isStore = false;
        std::vector<Addr> lines;
    };

    /**
     * Draw the next burst's load/store decisions (per line, as the
     * scalar path did) and group consecutive same-kind touches into
     * runs, preserving the original line order.
     */
    void buildBurst(Rng &rng);

    std::vector<Addr> lines_;
    NoiseProcessConfig cfg_;
    Cycles tlast_ = 0;
    std::size_t nextLine_ = 0;
    std::vector<BurstRun> runs_; //!< this burst's batched sweeps
    std::size_t runPos_ = 0;     //!< next run to issue
    bool spinning_ = true;
    bool started_ = false;
    std::uint64_t accesses_ = 0;
};

} // namespace wb::chan

#endif // WB_CHAN_NOISE_PROCESS_HH
