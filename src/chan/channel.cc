#include "chan/channel.hh"

#include <memory>
#include <optional>

#include "common/log.hh"
#include "chan/degraded.hh"
#include "chan/receiver.hh"
#include "chan/sender.hh"
#include "chan/set_mapping.hh"
#include "chan/transport.hh"
#include "sim/scheduler.hh"
#include "sim/smt_core.hh"

namespace wb::chan
{

namespace
{

/**
 * One physical pass through the simulated platform: everything below
 * the bit level. Both the legacy single-shot path and the transport
 * link run through here, so the two stay in lockstep — same RNG
 * splits, same calibration, same thread wiring.
 */
struct RawRun
{
    std::vector<double> latencies;      //!< receiver raw observations
    Cycles simulatedCycles = 0;
    sim::PerfCounters senderCounters;
    sim::PerfCounters receiverCounters;
    ThreadId senderTid = 0;
    ThreadId receiverTid = 0;
    sim::SchedulerStats schedulerStats;
    Calibration calibration;

    /** Eviction-only observer: both discovered sets verified minimal
     *  (true whenever no discovery ran). */
    bool discoveryVerified = true;
};

/** Run the platform once, modulating the per-slot levels @p dSeq. */
RawRun
runRawSequence(const ChannelConfig &cfg, const std::vector<unsigned> &dSeq)
{
    const ProtocolConfig &proto = cfg.protocol;
    const Encoding &enc = proto.encoding;
    if (enc.maxLevel() > cfg.platform.l1.ways)
        fatalf("runChannel: encoding level ", enc.maxLevel(),
               " exceeds associativity ", cfg.platform.l1.ways);
    const sim::ObserverModel &obs = cfg.noise.observer;
    if (obs.cls == sim::ObserverClass::FlushLatency && !obs.hasFlush) {
        fatalf("runChannel: flush-latency observer with hasFlush=false "
               "— use the eviction-only class");
    }

    Rng rootRng(cfg.seed);
    Rng calRng = rootRng.split();
    Rng runRng = rootRng.split();
    // Third split only for observers that discover their sets, so the
    // legacy calibration/run streams stay untouched for everyone else.
    std::optional<Rng> discoveryRng;
    if (obs.cls == sim::ObserverClass::EvictionOnly)
        discoveryRng.emplace(rootRng.split());

    // --- Offline calibration -> classifier centroids. The mix of
    // dirty-line levels matches the live encoding so the measured
    // steady-state baseline is the one the receiver will see. ---
    CalibrationConfig calCfg = cfg.calibration;
    if (calCfg.levelsMix.empty())
        calCfg.levelsMix = enc.levels();
    calCfg.targetSet = proto.targetSet;
    calCfg.replacementSize = proto.replacementSize;
    Calibration cal = calibrate(cfg.platform, cfg.noise, calCfg, calRng);

    // --- Platform. Under an active OS-noise config the front-end is
    // owned by a Scheduler (co-runners, timeslices, pollution); the
    // inactive default takes the plain path, which the scheduler run
    // loop degenerates to anyway (CoRunnerIsolation test). ---
    sim::Hierarchy hierarchy(cfg.platform, &runRng);
    std::optional<sim::Scheduler> sched;
    std::optional<sim::SmtCore> plainCore;
    if (cfg.scheduler.active()) {
        sched.emplace(static_cast<sim::MemorySystem &>(hierarchy),
                      cfg.noise, runRng, cfg.scheduler, cfg.seed);
    } else {
        plainCore.emplace(hierarchy, cfg.noise, runRng);
    }
    sim::SmtCore &core = sched ? sched->party(0) : *plainCore;
    const auto &layout = hierarchy.l1().layout();
    bool discoveryVerified = true;
    ChannelSets sets;
    if (discoveryRng) {
        // Eviction-only observer: the receiver's replacement sets come
        // from live timing-test discovery, not set arithmetic. Runs
        // against the raw hierarchy before the parties launch (the
        // attacker's setup phase); its accesses land in the eventual
        // receiver tid's counters.
        sets = discoverChannelSets(hierarchy, /*tid=*/1, proto.targetSet,
                                   cfg.platform.l1.ways,
                                   proto.replacementSize, *discoveryRng,
                                   &discoveryVerified);
    } else {
        sets = makeChannelSets(layout, proto.targetSet,
                               cfg.platform.l1.ways,
                               proto.replacementSize);
    }

    const TransmissionSchedule schedule = transmissionSchedule(
        dSeq.size(), proto.ts, cfg.senderStartSlots, cfg.sampleMargin);
    SenderProgram sender(sets.senderLines, dSeq, proto.ts);
    // The receiver variant follows the observer: Flushgeist reads the
    // write-back queue through timed clflush; everyone else times the
    // replacement-set chase (the eviction-only observer's receiver is
    // the load-timing one — it never flushes).
    std::optional<ReceiverProgram> loadReceiver;
    std::optional<FlushLatencyReceiverProgram> flushReceiver;
    sim::Program *receiver = nullptr;
    if (obs.cls == sim::ObserverClass::FlushLatency) {
        flushReceiver.emplace(sets.replacementA, sets.replacementB,
                              proto.tr, schedule.sampleCount);
        receiver = &*flushReceiver;
    } else {
        loadReceiver.emplace(sets.replacementA, sets.replacementB,
                             proto.tr, schedule.sampleCount);
        receiver = &*loadReceiver;
    }

    const ThreadId senderTid = core.addThread(&sender, sim::AddressSpace(1),
                                              schedule.senderStart);
    const ThreadId receiverTid =
        core.addThread(receiver, sim::AddressSpace(2), 0);

    // --- Optional co-resident noise processes (Sec. VI) ---
    std::vector<std::unique_ptr<NoiseProcess>> noisePrograms;
    for (unsigned i = 0; i < cfg.noiseProcesses; ++i) {
        auto lines = linesForSet(layout, proto.targetSet,
                                 std::max(1u, cfg.noiseCfg.burstLines),
                                 /*tagBase=*/0x300 + 0x10 * i);
        noisePrograms.push_back(
            std::make_unique<NoiseProcess>(std::move(lines), cfg.noiseCfg));
        core.addThread(noisePrograms.back().get(),
                       sim::AddressSpace(10 + i), /*startTime=*/500 * i);
    }

    const Cycles end =
        sched ? sched->run(schedule.horizon * sched->horizonStretch())
              : core.run(schedule.horizon);

    RawRun raw;
    raw.latencies = flushReceiver ? flushReceiver->latencies()
                                  : loadReceiver->latencies();
    raw.discoveryVerified = discoveryVerified;
    raw.simulatedCycles = end;
    raw.senderCounters = hierarchy.counters(senderTid);
    raw.receiverCounters = hierarchy.counters(receiverTid);
    raw.senderTid = senderTid;
    raw.receiverTid = receiverTid;
    if (sched)
        raw.schedulerStats = sched->stats();
    raw.calibration = std::move(cal);
    return raw;
}

/** Shared implementation: run the platform with a given frame. */
ChannelResult
runWithFrame(const ChannelConfig &userCfg, const BitVec &frame)
{
    // Adjust for the configured observer (no-op, and bit-identical,
    // for the default cycle-accurate one): granule-aligned pacing,
    // repetition factor, flush-probe calibration, drain penalty.
    const DegradedPlan plan = planDegraded(userCfg);
    const ChannelConfig &cfg = plan.cfg;
    const unsigned rep = plan.repetition;

    const ProtocolConfig &proto = cfg.protocol;
    const Encoding &enc = proto.encoding;
    if (frame.size() % enc.bitsPerSymbol() != 0)
        fatalf("runChannel: frame bits ", frame.size(),
               " not divisible by bits/symbol ", enc.bitsPerSymbol());

    // --- Per-slot dirty-line levels for all frame repetitions; a
    // coarse-timer plan repeats every symbol rep times so the decoder
    // can average each block back into one symbol. ---
    const auto frameLevels = frameToLevels(frame, enc);
    std::vector<unsigned> dSeq;
    dSeq.reserve(frameLevels.size() * proto.frames * rep);
    for (unsigned f = 0; f < proto.frames; ++f) {
        for (const unsigned lvl : frameLevels)
            dSeq.insert(dSeq.end(), rep, lvl);
    }

    RawRun raw = runRawSequence(cfg, dSeq);

    // --- Decode ---
    ChannelResult res;
    res.latencies = std::move(raw.latencies);
    DecodeResult dec;
    if (rep > 1) {
        // Repetition decoding: block means against mean centroids
        // (the dithered samples' median is a point mass; their mean
        // is the unbiased true latency — chan/degraded.hh).
        const std::vector<double> blocks =
            collapseRepetition(res.latencies, rep);
        dec = decodeTransmission(blocks,
                                 raw.calibration.meanClassifierFor(enc),
                                 enc, frame, proto.frames);
    } else {
        dec = decodeTransmission(res.latencies,
                                 raw.calibration.classifierFor(enc), enc,
                                 frame, proto.frames);
    }
    res.repetition = rep;
    res.evictionDiscoveryVerified = raw.discoveryVerified;
    res.ber = dec.ber;
    res.breakdown = dec.breakdown;
    res.aligned = dec.aligned;
    res.framesScored = dec.framesScored;
    res.framesExpected = dec.framesExpected;
    // Goodput honesty: repetition amplification spends rep slots per
    // symbol, so the effective rate divides by it (docs/OBSERVERS.md).
    res.rateKbps = proto.rateKbps() / double(rep);
    res.goodputKbps = res.rateKbps * (1.0 - std::min(1.0, res.ber));
    res.sentFrame = frame;
    res.decodedBits = dec.bitstream;
    res.calibrationMedians = raw.calibration.medianByD;
    res.senderCounters = raw.senderCounters;
    res.receiverCounters = raw.receiverCounters;
    res.senderTid = raw.senderTid;
    res.receiverTid = raw.receiverTid;
    res.simulatedCycles = raw.simulatedCycles;
    res.schedulerStats = raw.schedulerStats;
    return res;
}

/**
 * Bind one transport burst to the single-core platform: reconfigure
 * protocol pacing/encoding for the rate rung, modulate the frame
 * stream once (no repetitions — the ARQ layer owns redundancy), and
 * hand back the receiver's classified bit stream.
 */
LinkRun
channelLinkRun(const ChannelConfig &base, const BitVec &stream,
               const RateStep &rate, std::uint64_t seed)
{
    ChannelConfig cfg = base;
    cfg.seed = seed;
    // The ladder only widens Ts by powers of two, so the Tr:Ts ratio
    // survives the integer arithmetic exactly.
    cfg.protocol.tr =
        base.protocol.tr * (rate.ts / base.protocol.ts);
    cfg.protocol.ts = rate.ts;
    cfg.protocol.encoding = rate.encoding;

    // Observer adjustments apply per burst, after the rung reshaped
    // the pacing (a coarse plan re-aligns the rung's Ts/Tr to the
    // granule and repeats each symbol R times).
    const DegradedPlan plan = planDegraded(cfg);
    cfg = plan.cfg;
    const unsigned rep = plan.repetition;
    const Encoding &enc = cfg.protocol.encoding;

    BitVec padded = stream;
    while (padded.size() % enc.bitsPerSymbol() != 0)
        padded.push_back(false);

    const std::vector<unsigned> symbolLevels = frameToLevels(padded, enc);
    std::vector<unsigned> dSeq;
    dSeq.reserve(symbolLevels.size() * rep);
    for (const unsigned lvl : symbolLevels)
        dSeq.insert(dSeq.end(), rep, lvl);
    RawRun raw = runRawSequence(cfg, dSeq);

    LinkRun run;
    if (rep > 1) {
        run.bits = symbolsToBits(
            classifyAll(collapseRepetition(raw.latencies, rep),
                        raw.calibration.meanClassifierFor(enc)),
            enc);
    } else {
        run.bits = symbolsToBits(
            classifyAll(raw.latencies, raw.calibration.classifierFor(enc)),
            enc);
    }
    run.simulatedCycles = raw.simulatedCycles;
    run.schedulerStats = raw.schedulerStats;
    return run;
}

} // namespace

ChannelResult
runChannel(const ChannelConfig &cfg)
{
    Rng frameRng(cfg.seed ^ 0xf00dULL);
    const BitVec frame =
        randomFrame(cfg.protocol.frameBits - 16, frameRng);
    return runWithFrame(cfg, frame);
}

TransportResult
legacyTransportResult(const ChannelResult &r, const ProtocolConfig &proto)
{
    TransportResult t;
    t.framesTotal = r.framesExpected;
    t.framesDelivered = r.framesScored;
    t.framesFailed = r.framesExpected - std::min(r.framesExpected,
                                                 r.framesScored);
    t.framesSent = r.framesExpected;
    const unsigned payloadBits =
        proto.frameBits >= 16 ? proto.frameBits - 16 : 0;
    t.payloadBitsTotal = std::uint64_t(r.framesExpected) * payloadBits;
    t.payloadBitsDelivered = std::uint64_t(r.framesScored) * payloadBits;
    t.residualBitErrors = static_cast<std::uint64_t>(
        r.ber * double(t.payloadBitsDelivered) + 0.5);
    t.residualBer = r.ber;
    t.goodputKbps = r.goodputKbps;
    t.rawRateKbps = r.rateKbps;
    t.rounds = 1;
    t.rateLevelByRound.push_back(0);
    t.ferByRound.push_back(
        r.framesExpected
            ? 1.0 - double(r.framesScored) / double(r.framesExpected)
            : 0.0);
    t.simulatedCycles = r.simulatedCycles;
    t.schedulerStats = r.schedulerStats;
    return t;
}

TransportResult
runTransport(const ChannelConfig &cfg, const BitVec &message)
{
    if (!cfg.transport.enabled) {
        // Transport off: the legacy single-shot path, untouched —
        // same RNG draws, same schedule, bit-identical results
        // (TransportOffEquivalence test).
        return legacyTransportResult(runChannel(cfg), cfg.protocol);
    }
    const TransportLink link = [&cfg](const BitVec &stream,
                                      const RateStep &rate,
                                      std::uint64_t seed) {
        return channelLinkRun(cfg, stream, rate, seed);
    };
    return runTransportSession(cfg.transport, cfg.protocol, message, link,
                               cfg.seed);
}

TransportResult
runTransport(const ChannelConfig &cfg)
{
    Rng msgRng(cfg.seed ^ 0x7ea45007ULL);
    const std::size_t bits =
        std::size_t(cfg.transport.messageFrames) *
        cfg.transport.layout.payloadBits;
    BitVec message;
    message.reserve(bits);
    for (std::size_t i = 0; i < bits; ++i)
        message.push_back(msgRng.flip());
    return runTransport(cfg, message);
}

std::string
transmitString(const ChannelConfig &cfg, const std::string &msg,
               ChannelResult *result)
{
    ChannelConfig local = cfg;
    BitVec frame = preamble16();
    const BitVec payload = fromString(msg);
    frame.insert(frame.end(), payload.begin(), payload.end());
    // Pad to a whole number of symbols.
    while (frame.size() % local.protocol.encoding.bitsPerSymbol() != 0)
        frame.push_back(false);
    local.protocol.frameBits = static_cast<unsigned>(frame.size());
    local.protocol.frames = 1;

    ChannelResult res = runWithFrame(local, frame);

    // Extract the payload bits following the aligned preamble.
    std::string decoded;
    auto anchor = alignByPattern(res.decodedBits, preamble16(), 2);
    if (anchor) {
        const std::size_t start = *anchor + 16;
        BitVec got;
        for (std::size_t i = start;
             i < res.decodedBits.size() && got.size() < payload.size(); ++i)
            got.push_back(res.decodedBits[i]);
        decoded = toString(got);
    }
    if (result != nullptr)
        *result = res;
    return decoded;
}

} // namespace wb::chan
