#include "chan/channel.hh"

#include <memory>
#include <optional>

#include "common/log.hh"
#include "chan/receiver.hh"
#include "chan/sender.hh"
#include "chan/set_mapping.hh"
#include "sim/scheduler.hh"
#include "sim/smt_core.hh"

namespace wb::chan
{

namespace
{

/** Shared implementation: run the platform with a given frame. */
ChannelResult
runWithFrame(const ChannelConfig &cfg, const BitVec &frame)
{
    const ProtocolConfig &proto = cfg.protocol;
    const Encoding &enc = proto.encoding;
    if (frame.size() % enc.bitsPerSymbol() != 0)
        fatalf("runChannel: frame bits ", frame.size(),
               " not divisible by bits/symbol ", enc.bitsPerSymbol());
    if (enc.maxLevel() > cfg.platform.l1.ways)
        fatalf("runChannel: encoding level ", enc.maxLevel(),
               " exceeds associativity ", cfg.platform.l1.ways);

    Rng rootRng(cfg.seed);
    Rng calRng = rootRng.split();
    Rng runRng = rootRng.split();

    // --- Offline calibration -> classifier centroids. The mix of
    // dirty-line levels matches the live encoding so the measured
    // steady-state baseline is the one the receiver will see. ---
    CalibrationConfig calCfg = cfg.calibration;
    if (calCfg.levelsMix.empty())
        calCfg.levelsMix = enc.levels();
    calCfg.targetSet = proto.targetSet;
    calCfg.replacementSize = proto.replacementSize;
    Calibration cal = calibrate(cfg.platform, cfg.noise, calCfg, calRng);
    Classifier classifier = cal.classifierFor(enc);

    // --- Per-slot dirty-line levels for all frame repetitions ---
    const auto frameLevels = frameToLevels(frame, enc);
    std::vector<unsigned> dSeq;
    dSeq.reserve(frameLevels.size() * proto.frames);
    for (unsigned f = 0; f < proto.frames; ++f)
        dSeq.insert(dSeq.end(), frameLevels.begin(), frameLevels.end());

    // --- Platform. Under an active OS-noise config the front-end is
    // owned by a Scheduler (co-runners, timeslices, pollution); the
    // inactive default takes the plain path, which the scheduler run
    // loop degenerates to anyway (CoRunnerIsolation test). ---
    sim::Hierarchy hierarchy(cfg.platform, &runRng);
    std::optional<sim::Scheduler> sched;
    std::optional<sim::SmtCore> plainCore;
    if (cfg.scheduler.active()) {
        sched.emplace(static_cast<sim::MemorySystem &>(hierarchy),
                      cfg.noise, runRng, cfg.scheduler, cfg.seed);
    } else {
        plainCore.emplace(hierarchy, cfg.noise, runRng);
    }
    sim::SmtCore &core = sched ? sched->party(0) : *plainCore;
    const auto &layout = hierarchy.l1().layout();
    const auto sets = makeChannelSets(layout, proto.targetSet,
                                      cfg.platform.l1.ways,
                                      proto.replacementSize);

    const TransmissionSchedule schedule = transmissionSchedule(
        dSeq.size(), proto.ts, cfg.senderStartSlots, cfg.sampleMargin);
    SenderProgram sender(sets.senderLines, dSeq, proto.ts);
    ReceiverProgram receiver(sets.replacementA, sets.replacementB,
                             proto.tr, schedule.sampleCount);

    const ThreadId senderTid = core.addThread(&sender, sim::AddressSpace(1),
                                              schedule.senderStart);
    const ThreadId receiverTid =
        core.addThread(&receiver, sim::AddressSpace(2), 0);

    // --- Optional co-resident noise processes (Sec. VI) ---
    std::vector<std::unique_ptr<NoiseProcess>> noisePrograms;
    for (unsigned i = 0; i < cfg.noiseProcesses; ++i) {
        auto lines = linesForSet(layout, proto.targetSet,
                                 std::max(1u, cfg.noiseCfg.burstLines),
                                 /*tagBase=*/0x300 + 0x10 * i);
        noisePrograms.push_back(
            std::make_unique<NoiseProcess>(std::move(lines), cfg.noiseCfg));
        core.addThread(noisePrograms.back().get(),
                       sim::AddressSpace(10 + i), /*startTime=*/500 * i);
    }

    const Cycles end =
        sched ? sched->run(schedule.horizon * sched->horizonStretch())
              : core.run(schedule.horizon);

    // --- Decode ---
    ChannelResult res;
    res.latencies = receiver.latencies();
    DecodeResult dec = decodeTransmission(res.latencies, classifier, enc,
                                          frame, proto.frames);
    res.ber = dec.ber;
    res.breakdown = dec.breakdown;
    res.aligned = dec.aligned;
    res.framesScored = dec.framesScored;
    res.framesExpected = dec.framesExpected;
    res.rateKbps = proto.rateKbps();
    res.goodputKbps = res.rateKbps * (1.0 - std::min(1.0, res.ber));
    res.sentFrame = frame;
    res.decodedBits = dec.bitstream;
    res.calibrationMedians = cal.medianByD;
    res.senderCounters = hierarchy.counters(senderTid);
    res.receiverCounters = hierarchy.counters(receiverTid);
    res.simulatedCycles = end;
    if (sched)
        res.schedulerStats = sched->stats();
    return res;
}

} // namespace

ChannelResult
runChannel(const ChannelConfig &cfg)
{
    Rng frameRng(cfg.seed ^ 0xf00dULL);
    const BitVec frame =
        randomFrame(cfg.protocol.frameBits - 16, frameRng);
    return runWithFrame(cfg, frame);
}

std::string
transmitString(const ChannelConfig &cfg, const std::string &msg,
               ChannelResult *result)
{
    ChannelConfig local = cfg;
    BitVec frame = preamble16();
    const BitVec payload = fromString(msg);
    frame.insert(frame.end(), payload.begin(), payload.end());
    // Pad to a whole number of symbols.
    while (frame.size() % local.protocol.encoding.bitsPerSymbol() != 0)
        frame.push_back(false);
    local.protocol.frameBits = static_cast<unsigned>(frame.size());
    local.protocol.frames = 1;

    ChannelResult res = runWithFrame(local, frame);

    // Extract the payload bits following the aligned preamble.
    std::string decoded;
    auto anchor = alignByPattern(res.decodedBits, preamble16(), 2);
    if (anchor) {
        const std::size_t start = *anchor + 16;
        BitVec got;
        for (std::size_t i = start;
             i < res.decodedBits.size() && got.size() < payload.size(); ++i)
            got.push_back(res.decodedBits[i]);
        decoded = toString(got);
    }
    if (result != nullptr)
        *result = res;
    return decoded;
}

} // namespace wb::chan
