#include "chan/set_mapping.hh"

namespace wb::chan
{

std::vector<Addr>
linesForSet(const sim::AddressLayout &layout, unsigned targetSet,
            unsigned count, Addr tagBase)
{
    std::vector<Addr> lines;
    lines.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        lines.push_back(layout.compose(targetSet, tagBase + i));
    return lines;
}

ChannelSets
makeChannelSets(const sim::AddressLayout &layout, unsigned targetSet,
                unsigned ways, unsigned replacementSize)
{
    ChannelSets sets;
    sets.senderLines = linesForSet(layout, targetSet, ways, /*tagBase=*/1);
    sets.replacementA =
        linesForSet(layout, targetSet, replacementSize, /*tagBase=*/0x100);
    sets.replacementB =
        linesForSet(layout, targetSet, replacementSize, /*tagBase=*/0x200);
    return sets;
}

} // namespace wb::chan
