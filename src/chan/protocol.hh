/**
 * @file
 * Framing and decoding for the covert channel protocol (Algorithm 3
 * plus the evaluation methodology of Sec. V).
 *
 * The sender transmits a fixed frame repeatedly: a 16-bit preamble the
 * receiver aligns on, followed by random payload bits (the paper uses
 * 128-bit frames for binary symbols, 256-bit frames for 2-bit symbols).
 * The receiver classifies each measured latency into a symbol, expands
 * symbols to bits, locates the preamble, and scores each frame's
 * payload with the Wagner-Fischer edit distance, which accounts for
 * bit flips, insertions and losses.
 */

#ifndef WB_CHAN_PROTOCOL_HH
#define WB_CHAN_PROTOCOL_HH

#include <cstdint>
#include <vector>

#include "common/bitvec.hh"
#include "common/edit_distance.hh"
#include "common/types.hh"
#include "chan/modulation.hh"

namespace wb::chan
{

/** Protocol parameters (defaults follow the paper's evaluation). */
struct ProtocolConfig
{
    Cycles ts = 5500;   //!< sender period (cycles)
    Cycles tr = 5500;   //!< receiver period; the paper uses Tr = Ts
    Encoding encoding = Encoding::binary(1);
    unsigned frameBits = 128; //!< frame size incl. 16-bit preamble
    unsigned frames = 90;     //!< repetitions (paper: >= 90 / >= 45)
    unsigned targetSet = 13;  //!< agreed L1 set
    unsigned replacementSize = 10; //!< paper Sec. IV-A result
    double cpuGhz = 2.2;      //!< Xeon E5-2650 clock (Table III)

    /**
     * Force the coarse-timer repetition factor instead of letting
     * planDegraded auto-scale it from a planning calibration (0 =
     * auto). Used by the regression suite to prove an unamplified
     * coarse run fails, and by sweeps that want fixed-budget cells.
     * Ignored for the default cycle-accurate observer.
     */
    unsigned repetitionOverride = 0;

    /** Raw channel rate in kbps: bitsPerSymbol * f / Ts. */
    double
    rateKbps() const
    {
        return encoding.bitsPerSymbol() * cpuGhz * 1e6 /
               static_cast<double>(ts);
    }

    /** Symbols per frame. */
    unsigned
    symbolsPerFrame() const
    {
        return frameBits / encoding.bitsPerSymbol();
    }
};

/** Decode outcome over a whole run. */
struct DecodeResult
{
    BitVec bitstream;             //!< all bits decoded from samples
    double ber = 1.0;             //!< edit-distance / payload bits
    EditBreakdown breakdown;      //!< error-type totals
    unsigned framesScored = 0;    //!< frames actually located/scored
    unsigned framesExpected = 0;  //!< frames the sender transmitted
    bool aligned = false;         //!< preamble found at least once
};

/** Convert classified symbols into a bit stream. */
BitVec symbolsToBits(const std::vector<unsigned> &symbols,
                     const Encoding &encoding);

/** Classify raw latencies into symbols. */
std::vector<unsigned> classifyAll(const std::vector<double> &latencies,
                                  const Classifier &classifier);

/**
 * Score a received bitstream against the repeated @p frame.
 *
 * Alignment: the first preamble occurrence (<= 2 bit errors) anchors
 * frame 0; each subsequent frame start is re-searched within +/- 8 bits
 * of its expected position to absorb slips. Every located frame's
 * payload is scored with the edit distance against the sent payload.
 */
DecodeResult scoreFrames(const BitVec &bitstream, const BitVec &frame,
                         unsigned framesExpected);

/**
 * Full receive pipeline: classify, expand, align, score.
 */
DecodeResult decodeTransmission(const std::vector<double> &latencies,
                                const Classifier &classifier,
                                const Encoding &encoding,
                                const BitVec &frame,
                                unsigned framesExpected);

/**
 * Expand a frame into the per-slot dirty-line sequence the sender
 * must modulate (Algorithm 1's d = f(M[0..k-1]) per slot).
 */
std::vector<unsigned> frameToLevels(const BitVec &frame,
                                    const Encoding &encoding);

/**
 * The run bookkeeping every transmission runner (same-core and
 * cross-core WB channel, every baseline) derives from its slot
 * count: when the sender launches, how many observations the
 * receiver records, and how long the platform must run.
 */
struct TransmissionSchedule
{
    Cycles senderStart = 0;      //!< sender thread start time
    std::size_t sampleCount = 0; //!< receiver observations to record
    Cycles horizon = 0;          //!< simulation end time
};

/**
 * Compute the schedule for a transmission of @p slots sender slots
 * of period @p ts.
 *
 * @param senderStartSlots sender launch delay, in slots
 * @param sampleMargin extra receiver samples beyond the slot count
 */
TransmissionSchedule transmissionSchedule(std::size_t slots, Cycles ts,
                                          unsigned senderStartSlots,
                                          unsigned sampleMargin);

} // namespace wb::chan

#endif // WB_CHAN_PROTOCOL_HH
