/**
 * @file
 * Cross-core WB covert channel over a shared LLC.
 *
 * The paper's channel runs sender and receiver as SMT siblings on one
 * physical core, sharing the L1D. This runner moves them to different
 * cores of a MultiCoreSystem and carries the same dirty-state signal
 * through the shared last-level cache instead:
 *
 *  - the sender (core 0) dirties d lines mapping to an agreed LLC set
 *    (d encodes the symbol, as in Algorithm 1);
 *  - the receiver (core 1) times a pointer-chased traversal of an
 *    LLC-sized replacement set mapping to the same LLC set
 *    (Algorithm 2 at LLC granularity, two sets used alternately);
 *  - each receiver fill that evicts an LLC line whose data is dirty —
 *    in the LLC itself or, via inclusive back-invalidation, in the
 *    sender's private caches — stalls for the DRAM drain
 *    (LatencyModel::llcDirtyEvictPenalty), so the traversal latency
 *    grows by roughly d penalties, exactly like the paper's L1 channel
 *    grows by d write-back penalties.
 *
 * On a non-inclusive LLC (xeonE5-2650-2core) the receiver's evictions
 * never reach the sender's private dirty lines and the channel closes
 * — the contrast examples/platform_sweep.cpp prints.
 */

#ifndef WB_CHAN_CROSS_CORE_HH
#define WB_CHAN_CROSS_CORE_HH

#include <string>

#include "chan/calibration.hh"
#include "chan/channel.hh"
#include "chan/protocol.hh"
#include "sim/multicore.hh"
#include "sim/noise_model.hh"
#include "sim/platform.hh"

namespace wb::chan
{

/** Cross-core transmission experiment configuration. */
struct CrossCoreChannelConfig
{
    /** Registry preset this config was built from (see usePlatform). */
    std::string platformName = "desktop-inclusive-4core";
    sim::HierarchyParams platform;
    sim::NoiseModel noise;

    /** Cores the MultiCoreSystem instantiates (>= 2). */
    unsigned cores = 4;

    unsigned senderCore = 0;   //!< core the sender is pinned to
    unsigned receiverCore = 1; //!< core the receiver is pinned to

    /** Pacing/encoding/framing. targetSet is ignored (LLC set used). */
    ProtocolConfig protocol;

    /** Agreed LLC set index both parties derive from their vaddrs. */
    unsigned targetLlcSet = 37;

    /**
     * Lines per receiver replacement set; 0 resolves to
     * llc.ways + 2, enough to replace the whole LLC set per sweep.
     */
    unsigned replacementSize = 0;

    CalibrationConfig calibration; //!< measurements/discard reused
    std::uint64_t seed = 1;

    unsigned senderStartSlots = 8; //!< sender launch delay in slots
    unsigned sampleMargin = 96;    //!< extra receiver samples

    /**
     * OS-noise regime (Table VII): co-runners spread over the cores,
     * timeslicing where they share a party's core, and — when
     * migrationPeriod is set — periodic migration of the receiver
     * front-end to the next party-free core. Inactive by default.
     */
    sim::SchedulerConfig scheduler;

    /**
     * Resilient transport layer (resync + adaptive rate + ARQ), used
     * by runCrossCoreTransport(). Disabled by default; see
     * ChannelConfig::transport for the equivalence guarantee.
     */
    TransportConfig transport;

    CrossCoreChannelConfig()
    {
        platform = sim::platform(platformName).params;
        noise = sim::platform(platformName).noise;
        // An LLC-set sweep is ~llc.ways DRAM misses, far slower than
        // the L1 channel's 10-line chase: slots are paced wider.
        protocol.ts = protocol.tr = 12000;
        protocol.frames = 8;
        protocol.encoding = Encoding::binary(4);
        calibration.measurements = 80;
    }

    /**
     * Reconfigure for a named registry preset: hierarchy parameters,
     * noise model and core count (at least 2 — a cross-core channel
     * needs a sender core and a receiver core even on single-core
     * presets). Fatal on an unknown name. @return *this.
     */
    CrossCoreChannelConfig &
    usePlatform(const std::string &name)
    {
        const sim::Platform &p = sim::platform(name);
        platformName = p.name;
        platform = p.params;
        noise = p.noise;
        cores = std::max(2u, p.cores);
        return *this;
    }
};

/**
 * Run one complete cross-core transmission experiment: offline
 * calibration of the receiver's LLC-sweep classifier, then the live
 * protocol on per-core SmtCore front-ends interleaved in global time
 * order, then decode. Reports the same ChannelResult as the same-core
 * runner, with sender/receiver counters taken from their cores.
 */
ChannelResult runCrossCoreChannel(const CrossCoreChannelConfig &cfg);

/**
 * Run a transport session (resync + adaptive rate + ARQ) over the
 * cross-core channel. Each round is one physical burst through a fresh
 * MultiCoreSystem at the controller's current rate rung; lost frames
 * are selectively retransmitted. This is the configuration where the
 * transport earns its keep: under the party-core time-sharing noise
 * preset the single-shot channel collapses to ~79% BER
 * (docs/SCHEDULER.md), while the transport sustains nonzero goodput.
 *
 * With cfg.transport.enabled == false this degenerates to the legacy
 * runCrossCoreChannel() path, repackaged via legacyTransportResult().
 */
TransportResult runCrossCoreTransport(const CrossCoreChannelConfig &cfg,
                                      const BitVec &message);

/** runCrossCoreTransport over a seed-derived random message. */
TransportResult runCrossCoreTransport(const CrossCoreChannelConfig &cfg);

} // namespace wb::chan

#endif // WB_CHAN_CROSS_CORE_HH
