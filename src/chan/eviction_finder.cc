#include "chan/eviction_finder.hh"

#include <algorithm>

namespace wb::chan
{

namespace
{

/** Median of a small latency sample (copies; samples are tiny). */
Cycles
medianOf(std::vector<Cycles> v)
{
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

} // namespace

EvictionSetFinder::EvictionSetFinder(sim::MemorySystem &mem, ThreadId tid,
                                     const EvictionFinderConfig &cfg)
    : mem_(mem), tid_(tid), cfg_(cfg), threshold_(cfg.threshold)
{
}

Cycles
EvictionSetFinder::calibrate(const std::vector<Addr> &candidates,
                             EvictionSetResult &stats)
{
    const std::size_t n =
        std::min<std::size_t>(cfg_.calibrationSamples, candidates.size());
    std::vector<Cycles> cold, hot;
    cold.reserve(n);
    hot.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        // Spread the samples across the pool so a partially warm
        // prefix cannot skew the cold side.
        const Addr line = candidates[i * candidates.size() / n];
        cold.push_back(mem_.access(tid_, line, false).latency);
        hot.push_back(mem_.access(tid_, line, false).latency);
        stats.accesses += 2;
    }
    if (cold.empty())
        return 1;
    return (medianOf(std::move(cold)) + medianOf(std::move(hot))) / 2;
}

bool
EvictionSetFinder::evicts(Addr victim, const std::vector<Addr> &set,
                          EvictionSetResult &stats)
{
    ++stats.timingTests;
    // Prime the candidate set first: it flushes pool lines left
    // resident by earlier tests, so the fills after the victim touch
    // are (mostly) the set's own lines and sub-W sets stop evicting
    // the victim through sheer PLRU pressure (see file comment).
    mem_.accessBatch(tid_, set, false);
    stats.accesses += set.size();
    // Install the victim...
    mem_.access(tid_, victim, false);
    ++stats.accesses;
    // ...traverse the candidate set (twice by default: tree-PLRU can
    // survive one pass with the victim recently touched)...
    for (unsigned s = 0; s < cfg_.sweeps; ++s) {
        mem_.accessBatch(tid_, set, false);
        stats.accesses += set.size();
    }
    // ...and re-time the victim: a DRAM-latency reload means the set
    // pushed it out of the whole hierarchy.
    const Cycles reload = mem_.access(tid_, victim, false).latency;
    ++stats.accesses;
    return reload >= threshold_;
}

EvictionSetResult
EvictionSetFinder::findFor(Addr victim, std::vector<Addr> candidates,
                           Rng &rng)
{
    EvictionSetResult res;
    if (threshold_ == 0)
        threshold_ = calibrate(candidates, res);

    const unsigned w = std::max(1u, cfg_.associativity);
    if (!evicts(victim, candidates, res)) {
        // The pool never evicted the victim: too small, wrong set
        // index, or the victim is pinned. Nothing to reduce.
        res.set = std::move(candidates);
        return res;
    }

    // --- Group-testing reduction (Vila et al.) ---
    std::vector<Addr> trimmed;              // scratch for S \ group
    std::vector<std::vector<Addr>> history; // removed groups (LIFO)
    unsigned stuck = 0, backtracks = 0;
    while (candidates.size() > w) {
        const unsigned groups =
            std::min<unsigned>(w + 1, unsigned(candidates.size()));
        // Contiguous chunks of a (re)shuffled pool are random groups;
        // reshuffling on every round is what makes a stuck round's
        // retry a genuinely different partition.
        for (std::size_t i = candidates.size(); i > 1; --i) {
            const std::size_t j = rng.below(i);
            std::swap(candidates[i - 1], candidates[j]);
        }
        bool removed = false;
        for (unsigned g = 0; g < groups && !removed; ++g) {
            const std::size_t lo = g * candidates.size() / groups;
            const std::size_t hi = (g + 1) * candidates.size() / groups;
            if (lo == hi)
                continue;
            trimmed.clear();
            trimmed.insert(trimmed.end(), candidates.begin(),
                           candidates.begin() + lo);
            trimmed.insert(trimmed.end(), candidates.begin() + hi,
                           candidates.end());
            // A removal must pass twice: one flaky positive would
            // permanently discard a (possibly congruent) group.
            if (evicts(victim, trimmed, res) &&
                evicts(victim, trimmed, res)) {
                history.emplace_back(candidates.begin() + lo,
                                     candidates.begin() + hi);
                candidates.swap(trimmed);
                removed = true;
            }
        }
        if (!removed) {
            // Pigeonhole says some group was removable, so this is
            // replacement-policy flakiness — retry with fresh
            // partitions, then restore the most recently removed
            // group (a false positive may have taken a congruent
            // line with it), and only then give up honestly.
            if (++stuck > cfg_.maxStuckRetries) {
                if (history.empty() ||
                    ++backtracks > cfg_.maxBacktracks) {
                    res.set = std::move(candidates);
                    return res;
                }
                candidates.insert(candidates.end(),
                                  history.back().begin(),
                                  history.back().end());
                history.pop_back();
                stuck = 0;
            }
        } else {
            stuck = 0;
        }
    }

    // --- Self-verification: still evicting, and minimal ---
    bool minimal = candidates.size() == w &&
                   evicts(victim, candidates, res);
    if (minimal) {
        std::vector<Addr> probe;
        probe.reserve(candidates.size() - 1);
        for (std::size_t drop = 0; drop < candidates.size() && minimal;
             ++drop) {
            probe.clear();
            for (std::size_t i = 0; i < candidates.size(); ++i)
                if (i != drop)
                    probe.push_back(candidates[i]);
            // Dropping any single line must break eviction; if it
            // does not, a non-congruent straggler survived.
            if (evicts(victim, probe, res))
                minimal = false;
        }
    }
    res.verifiedMinimal = minimal;
    res.set = std::move(candidates);
    return res;
}

} // namespace wb::chan
