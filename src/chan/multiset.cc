#include "chan/multiset.hh"

#include "chan/calibration.hh"
#include "chan/set_mapping.hh"
#include "common/log.hh"
#include "sim/smt_core.hh"

namespace wb::chan
{

MultiSetSender::MultiSetSender(std::vector<std::vector<Addr>> linePools,
                               std::vector<bool> bits, unsigned d,
                               Cycles ts)
    : pools_(std::move(linePools)), bits_(std::move(bits)), d_(d),
      ts_(ts)
{
    if (pools_.empty())
        fatalf("MultiSetSender: needs at least one set pool");
    for (const auto &pool : pools_)
        if (pool.size() < d_)
            fatalf("MultiSetSender: pool smaller than d");
}

void
MultiSetSender::advance()
{
    const unsigned k = static_cast<unsigned>(pools_.size());
    while (setIdx_ < k) {
        const std::size_t bitIdx = slotIdx_ * k + setIdx_;
        if (bitIdx >= bits_.size()) {
            phase_ = Phase::Done;
            return;
        }
        if (bits_[bitIdx] && storeIdx_ < d_) {
            phase_ = Phase::Encode;
            return;
        }
        ++setIdx_;
        storeIdx_ = 0;
    }
    phase_ = Phase::Wait;
}

std::optional<sim::MemOp>
MultiSetSender::next(sim::ProcView &)
{
    switch (phase_) {
      case Phase::Init:
        return sim::MemOp::tscRead();
      case Phase::Encode:
        return sim::MemOp::store(pools_[setIdx_][storeIdx_]);
      case Phase::Wait:
        return sim::MemOp::spinUntil(tlast_ + ts_);
      case Phase::Done:
        return sim::MemOp::halt();
    }
    return sim::MemOp::halt();
}

void
MultiSetSender::onResult(const sim::MemOp &op, const sim::OpResult &res,
                         sim::ProcView &)
{
    switch (op.kind) {
      case sim::MemOp::Kind::TscRead:
        tlast_ = res.tsc;
        setIdx_ = 0;
        storeIdx_ = 0;
        advance();
        break;
      case sim::MemOp::Kind::Store:
        ++storeIdx_;
        advance();
        break;
      case sim::MemOp::Kind::SpinUntil:
        tlast_ = res.tsc;
        ++slotIdx_;
        setIdx_ = 0;
        storeIdx_ = 0;
        advance();
        break;
      default:
        break;
    }
}

MultiSetReceiver::MultiSetReceiver(std::vector<std::vector<Addr>> replA,
                                   std::vector<std::vector<Addr>> replB,
                                   Cycles tr, std::size_t slots)
    : tr_(tr), slots_(slots)
{
    if (replA.empty() || replA.size() != replB.size())
        fatalf("MultiSetReceiver: mismatched replacement pools");
    for (auto &pool : replA) {
        for (Addr a : pool)
            warmupOrder_.push_back(a);
        chaseA_.emplace_back(std::move(pool));
    }
    for (auto &pool : replB) {
        for (Addr a : pool)
            warmupOrder_.push_back(a);
        chaseB_.emplace_back(std::move(pool));
    }
    // Two warm-up sweeps over everything.
    const std::size_t once = warmupOrder_.size();
    for (std::size_t i = 0; i < once; ++i)
        warmupOrder_.push_back(warmupOrder_[i]);
}

void
MultiSetReceiver::startMeasurement(Rng &rng)
{
    PointerChase &chase =
        useA_ ? chaseA_[setIdx_] : chaseB_[setIdx_];
    chase.reshuffle(rng);
    ops_ = chase.batchedMeasurementOps();
    opPos_ = 0;
    sawFirstTsc_ = false;
    phase_ = Phase::Measure;
}

std::optional<sim::MemOp>
MultiSetReceiver::next(sim::ProcView &)
{
    switch (phase_) {
      case Phase::Warmup:
        if (warmupPos_ < warmupOrder_.size())
            return sim::MemOp::load(warmupOrder_[warmupPos_]);
        phase_ = Phase::InitTsc;
        return sim::MemOp::tscRead();
      case Phase::InitTsc:
        return sim::MemOp::tscRead();
      case Phase::Wait:
        return sim::MemOp::spinUntil(tlast_ + tr_);
      case Phase::Measure:
        if (opPos_ < ops_.size())
            return ops_[opPos_];
        panic("MultiSetReceiver: ops exhausted");
      case Phase::Done:
        return sim::MemOp::halt();
    }
    return sim::MemOp::halt();
}

void
MultiSetReceiver::onResult(const sim::MemOp &op, const sim::OpResult &res,
                           sim::ProcView &view)
{
    switch (phase_) {
      case Phase::Warmup:
        ++warmupPos_;
        break;
      case Phase::InitTsc:
        tlast_ = res.tsc;
        phase_ = Phase::Wait;
        break;
      case Phase::Wait: {
        // Detect slot overruns: the previous slot's k chases spilling
        // past the boundary shows up as an immediate release.
        if (res.latency == 0)
            ++overruns_;
        tlast_ = res.tsc;
        setIdx_ = 0;
        startMeasurement(view.rng());
        break;
      }
      case Phase::Measure:
        ++opPos_;
        if (op.kind == sim::MemOp::Kind::TscRead) {
            if (!sawFirstTsc_) {
                sawFirstTsc_ = true;
                tscStart_ = res.tsc;
            } else {
                double lat = static_cast<double>(res.tsc - tscStart_);
                const double sigma = view.noise().measSigma(tr_);
                if (sigma > 0.0)
                    lat += view.rng().gaussian(0.0, sigma);
                samples_.push_back(lat);
                ++setIdx_;
                if (setIdx_ < chaseA_.size()) {
                    startMeasurement(view.rng());
                } else {
                    useA_ = !useA_;
                    ++slotsDone_;
                    phase_ = slotsDone_ >= slots_ ? Phase::Done
                                                  : Phase::Wait;
                }
            }
        }
        break;
      case Phase::Done:
        break;
    }
}

ChannelResult
runMultiSetChannel(const MultiSetConfig &cfg)
{
    Rng rootRng(cfg.seed);
    Rng calRng = rootRng.split();
    Rng frameRng = rootRng.split();
    Rng runRng = rootRng.split();

    // Calibrate once on set 0 (sets are symmetric by construction).
    CalibrationConfig calCfg;
    calCfg.targetSet = cfg.targetSet(0);
    calCfg.replacementSize = cfg.replacementSize;
    calCfg.measurements = cfg.calMeasurements;
    calCfg.levelsMix = {0, cfg.d};
    Calibration cal =
        calibrate(cfg.platform, cfg.noise, calCfg, calRng);
    Classifier classifier = cal.binaryClassifier(cfg.d);

    const BitVec frame = randomFrame(cfg.frameBits - 16, frameRng);
    BitVec allBits;
    for (unsigned f = 0; f < cfg.frames; ++f)
        allBits.insert(allBits.end(), frame.begin(), frame.end());

    sim::Hierarchy hierarchy(cfg.platform, &runRng);
    sim::SmtCore core(hierarchy, cfg.noise, runRng);
    const auto &layout = hierarchy.l1().layout();
    const unsigned k = cfg.setCount;

    std::vector<std::vector<Addr>> senderPools, replA, replB;
    for (unsigned j = 0; j < k; ++j) {
        const unsigned set = cfg.targetSet(j);
        senderPools.push_back(
            linesForSet(layout, set, cfg.platform.l1.ways, 1));
        replA.push_back(
            linesForSet(layout, set, cfg.replacementSize, 0x100));
        replB.push_back(
            linesForSet(layout, set, cfg.replacementSize, 0x200));
    }

    MultiSetSender sender(senderPools, allBits, cfg.d, cfg.ts);
    const std::size_t slots = (allBits.size() + k - 1) / k + 8 + 64;
    MultiSetReceiver receiver(replA, replB, cfg.tr, slots);

    const Cycles senderStart = 8 * cfg.ts;
    const ThreadId senderTid =
        core.addThread(&sender, sim::AddressSpace(1), senderStart);
    const ThreadId receiverTid =
        core.addThread(&receiver, sim::AddressSpace(2), 0);

    const Cycles horizon =
        senderStart + Cycles(slots + 8) * (cfg.ts + 60) + 400000;
    const Cycles end = core.run(horizon);

    ChannelResult res;
    res.latencies = receiver.samples();
    auto dec = decodeTransmission(res.latencies, classifier,
                                  Encoding::binary(1), frame,
                                  cfg.frames);
    res.ber = dec.ber;
    res.breakdown = dec.breakdown;
    res.aligned = dec.aligned;
    res.framesScored = dec.framesScored;
    res.framesExpected = dec.framesExpected;
    res.rateKbps = cfg.rateKbps();
    res.goodputKbps = res.rateKbps * (1.0 - std::min(1.0, res.ber));
    res.sentFrame = frame;
    res.decodedBits = dec.bitstream;
    res.calibrationMedians = cal.medianByD;
    res.senderCounters = hierarchy.counters(senderTid);
    res.receiverCounters = hierarchy.counters(receiverTid);
    res.simulatedCycles = end;
    return res;
}

} // namespace wb::chan
