#include "chan/cross_core.hh"

#include <algorithm>
#include <optional>
#include <vector>

#include "common/log.hh"
#include "chan/pointer_chase.hh"
#include "chan/receiver.hh"
#include "chan/sender.hh"
#include "chan/set_mapping.hh"
#include "sim/scheduler.hh"
#include "sim/smt_core.hh"

namespace wb::chan
{

namespace
{

/** Line pools both parties derive from the agreed LLC set. */
struct CrossCoreSets
{
    std::vector<Addr> senderLines;
    std::vector<Addr> replacementA;
    std::vector<Addr> replacementB;
};

/** Resolve the replacement-set size (0 = whole LLC set + slack). */
unsigned
resolveReplacementSize(const CrossCoreChannelConfig &cfg)
{
    if (cfg.replacementSize != 0)
        return cfg.replacementSize;
    return cfg.platform.llc.ways + 2;
}

/**
 * Build the pools against the LLC layout: the low LLC index bits
 * survive the page-linear translation, so both processes target the
 * agreed set purely from their virtual addresses, exactly as the L1
 * channel does with the VIPT L1 layout (Sec. IV generalized).
 */
CrossCoreSets
makeCrossCoreSets(const sim::AddressLayout &llcLayout,
                  const CrossCoreChannelConfig &cfg)
{
    const unsigned replacement = resolveReplacementSize(cfg);
    const unsigned senderLines =
        std::max(1u, cfg.protocol.encoding.maxLevel());
    CrossCoreSets sets;
    sets.senderLines =
        linesForSet(llcLayout, cfg.targetLlcSet, senderLines, /*tag=*/1);
    sets.replacementA = linesForSet(llcLayout, cfg.targetLlcSet,
                                    replacement, /*tag=*/0x100);
    sets.replacementB = linesForSet(llcLayout, cfg.targetLlcSet,
                                    replacement, /*tag=*/0x200);
    return sets;
}

void
validate(const CrossCoreChannelConfig &cfg)
{
    if (cfg.cores < 2)
        fatalf("runCrossCoreChannel: needs at least 2 cores, got ",
               cfg.cores);
    if (cfg.senderCore == cfg.receiverCore ||
        cfg.senderCore >= cfg.cores || cfg.receiverCore >= cfg.cores) {
        fatalf("runCrossCoreChannel: sender core ", cfg.senderCore,
               " / receiver core ", cfg.receiverCore,
               " invalid for ", cfg.cores, " cores");
    }
    const unsigned top = cfg.protocol.encoding.maxLevel();
    if (top > cfg.platform.llc.ways)
        fatalf("runCrossCoreChannel: encoding level ", top,
               " exceeds LLC associativity ", cfg.platform.llc.ways);
}

/**
 * Offline calibration against a fresh MultiCoreSystem: the sender
 * side dirties d LLC-set lines from its core, the receiver side times
 * the alternating replacement-set sweep from its core — the Fig. 4
 * procedure carried to LLC granularity. Levels are interleaved at
 * random for the same steady-state reasons as chan::calibrate().
 */
Calibration
calibrateCrossCore(const CrossCoreChannelConfig &cfg,
                   const CrossCoreSets &sets, Rng &rng)
{
    const unsigned top = cfg.protocol.encoding.maxLevel();
    Calibration out;
    out.latencyByD.resize(top + 1);
    out.medianByD.resize(top + 1, 0.0);

    sim::MultiCoreSystem mc(cfg.platform, cfg.cores, &rng);
    sim::MemorySystem &sender = mc.port(cfg.senderCore);
    sim::MemorySystem &receiver = mc.port(cfg.receiverCore);
    sim::AddressSpace senderSpace(1);
    sim::AddressSpace receiverSpace(2);

    PointerChase chaseA(sets.replacementA);
    PointerChase chaseB(sets.replacementB);

    // Warm both replacement sets into the shared LLC.
    for (int sweep = 0; sweep < 2; ++sweep) {
        receiver.accessBatch(0, receiverSpace, sets.replacementA, false);
        receiver.accessBatch(0, receiverSpace, sets.replacementB, false);
    }

    std::vector<unsigned> mix = cfg.calibration.levelsMix;
    if (mix.empty())
        mix = cfg.protocol.encoding.levels();

    const std::size_t total =
        mix.size() * cfg.calibration.measurements + cfg.calibration.discard;
    bool useA = true;
    for (std::size_t m = 0; m < total; ++m) {
        const unsigned d = mix[rng.below(mix.size())];
        sender.accessBatch(0, senderSpace, sets.senderLines.data(), d,
                           /*isWrite=*/true);
        PointerChase &chase = useA ? chaseA : chaseB;
        chase.reshuffle(rng);
        double lat = measureChaseOffline(receiver, 0, receiverSpace,
                                         chase.order(), cfg.noise);
        if (cfg.noise.measBaseSigma > 0.0)
            lat += rng.gaussian(0.0, cfg.noise.measBaseSigma);
        lat = cfg.noise.observeDuration(lat, rng); // observer choke point
        useA = !useA;
        if (m >= cfg.calibration.discard)
            out.latencyByD[d].add(lat);
    }
    for (unsigned d = 0; d <= top; ++d)
        out.medianByD[d] = out.latencyByD[d].median();
    return out;
}

/**
 * One physical pass through the multi-core platform: everything below
 * the bit level. The legacy single-shot path and the transport link
 * both run through here, so the two stay in lockstep — same RNG
 * splits, same calibration, same thread wiring.
 */
struct CrossRawRun
{
    std::vector<double> latencies;
    Cycles simulatedCycles = 0;
    sim::PerfCounters senderCounters;
    sim::PerfCounters receiverCounters;
    ThreadId senderTid = 0;
    ThreadId receiverTid = 0;
    sim::SchedulerStats schedulerStats;
    Calibration calibration;
};

/** Run the platform once, modulating the per-slot levels @p dSeq. */
CrossRawRun
runCrossCoreRaw(const CrossCoreChannelConfig &cfg,
                const std::vector<unsigned> &dSeq)
{
    validate(cfg);
    const ProtocolConfig &proto = cfg.protocol;

    Rng rootRng(cfg.seed);
    Rng calRng = rootRng.split();
    Rng runRng = rootRng.split();

    // The LLC layout is shared by every core; borrow it from a
    // throwaway cache-less construction via the params geometry.
    const sim::AddressLayout llcLayout(cfg.platform.llc.numSets());
    const CrossCoreSets sets = makeCrossCoreSets(llcLayout, cfg);

    // --- Offline calibration -> classifier centroids ---
    Calibration cal = calibrateCrossCore(cfg, sets, calRng);

    // --- Platform: one system, one SmtCore front-end per party.
    // Under an active OS-noise config the front-ends come from a
    // Scheduler (co-runners over the cores, timeslicing, migration of
    // the receiver); the inactive default keeps the plain runCores
    // interleave, which the scheduler loop degenerates to anyway. ---
    sim::MultiCoreSystem mc(cfg.platform, cfg.cores, &runRng);
    std::optional<sim::Scheduler> os;
    std::optional<sim::SmtCore> plainSender;
    std::optional<sim::SmtCore> plainReceiver;
    if (cfg.scheduler.active()) {
        os.emplace(mc, cfg.noise, runRng, cfg.scheduler, cfg.seed);
    } else {
        plainSender.emplace(mc.port(cfg.senderCore), cfg.noise, runRng);
        plainReceiver.emplace(mc.port(cfg.receiverCore), cfg.noise,
                              runRng);
    }
    sim::SmtCore &senderCore =
        os ? os->party(cfg.senderCore) : *plainSender;
    sim::SmtCore &receiverCore =
        os ? os->party(cfg.receiverCore, /*migratable=*/true)
           : *plainReceiver;

    const TransmissionSchedule sched = transmissionSchedule(
        dSeq.size(), proto.ts, cfg.senderStartSlots, cfg.sampleMargin);
    SenderProgram sender(sets.senderLines, dSeq, proto.ts);
    ReceiverProgram receiver(sets.replacementA, sets.replacementB,
                             proto.tr, sched.sampleCount);

    const ThreadId senderTid = senderCore.addThread(
        &sender, sim::AddressSpace(1), sched.senderStart);
    const ThreadId receiverTid =
        receiverCore.addThread(&receiver, sim::AddressSpace(2), 0);

    const Cycles end =
        os ? os->run(sched.horizon * os->horizonStretch())
           : sim::runCores({&senderCore, &receiverCore}, sched.horizon);

    CrossRawRun raw;
    raw.latencies = receiver.latencies();
    raw.simulatedCycles = end;
    raw.senderCounters = mc.counters(cfg.senderCore, senderTid);
    if (os) {
        // A migrated receiver charged counters on every core it
        // visited; its scheduler-allocated tid is system-unique, so
        // the merge picks up only its own accesses.
        for (unsigned c = 0; c < mc.coreCount(); ++c)
            raw.receiverCounters.merge(mc.counters(c, receiverTid));
        raw.schedulerStats = os->stats();
    } else {
        raw.receiverCounters = mc.counters(cfg.receiverCore, receiverTid);
    }
    raw.senderTid = senderTid;
    raw.receiverTid = receiverTid;
    raw.calibration = std::move(cal);
    return raw;
}

/** Bind one transport burst to the multi-core platform. */
LinkRun
crossCoreLinkRun(const CrossCoreChannelConfig &base, const BitVec &stream,
                 const RateStep &rate, std::uint64_t seed)
{
    CrossCoreChannelConfig cfg = base;
    cfg.seed = seed;
    // The ladder only ever keeps Ts (binary fallback and the
    // d-shrink footprint rungs) or widens it by powers of two, so
    // the Tr:Ts ratio survives the integer arithmetic exactly.
    cfg.protocol.tr = base.protocol.tr * (rate.ts / base.protocol.ts);
    cfg.protocol.ts = rate.ts;
    cfg.protocol.encoding = rate.encoding;
    const Encoding &enc = cfg.protocol.encoding;

    BitVec padded = stream;
    while (padded.size() % enc.bitsPerSymbol() != 0)
        padded.push_back(false);

    const std::vector<unsigned> dSeq = frameToLevels(padded, enc);
    CrossRawRun raw = runCrossCoreRaw(cfg, dSeq);

    LinkRun run;
    run.bits = symbolsToBits(
        classifyAll(raw.latencies, raw.calibration.classifierFor(enc)),
        enc);
    run.simulatedCycles = raw.simulatedCycles;
    run.schedulerStats = raw.schedulerStats;
    return run;
}

} // namespace

ChannelResult
runCrossCoreChannel(const CrossCoreChannelConfig &cfg)
{
    const ProtocolConfig &proto = cfg.protocol;
    const Encoding &enc = proto.encoding;

    Rng frameRng(cfg.seed ^ 0xf00dULL);
    const BitVec frame = randomFrame(proto.frameBits - 16, frameRng);
    if (frame.size() % enc.bitsPerSymbol() != 0)
        fatalf("runCrossCoreChannel: frame bits ", frame.size(),
               " not divisible by bits/symbol ", enc.bitsPerSymbol());

    // --- Per-slot dirty-line levels for all frame repetitions ---
    const auto frameLevels = frameToLevels(frame, enc);
    std::vector<unsigned> dSeq;
    dSeq.reserve(frameLevels.size() * proto.frames);
    for (unsigned f = 0; f < proto.frames; ++f)
        dSeq.insert(dSeq.end(), frameLevels.begin(), frameLevels.end());

    CrossRawRun raw = runCrossCoreRaw(cfg, dSeq);
    const Classifier classifier = raw.calibration.classifierFor(enc);

    // --- Decode ---
    ChannelResult res;
    res.latencies = std::move(raw.latencies);
    DecodeResult dec = decodeTransmission(res.latencies, classifier, enc,
                                          frame, proto.frames);
    res.ber = dec.ber;
    res.breakdown = dec.breakdown;
    res.aligned = dec.aligned;
    res.framesScored = dec.framesScored;
    res.framesExpected = dec.framesExpected;
    res.rateKbps = proto.rateKbps();
    res.goodputKbps = res.rateKbps * (1.0 - std::min(1.0, res.ber));
    res.sentFrame = frame;
    res.decodedBits = dec.bitstream;
    res.calibrationMedians = raw.calibration.medianByD;
    res.senderCounters = raw.senderCounters;
    res.receiverCounters = raw.receiverCounters;
    res.senderTid = raw.senderTid;
    res.receiverTid = raw.receiverTid;
    res.simulatedCycles = raw.simulatedCycles;
    res.schedulerStats = raw.schedulerStats;
    return res;
}

TransportResult
runCrossCoreTransport(const CrossCoreChannelConfig &cfg,
                      const BitVec &message)
{
    if (!cfg.transport.enabled) {
        return legacyTransportResult(runCrossCoreChannel(cfg),
                                     cfg.protocol);
    }
    const TransportLink link = [&cfg](const BitVec &stream,
                                      const RateStep &rate,
                                      std::uint64_t seed) {
        return crossCoreLinkRun(cfg, stream, rate, seed);
    };
    return runTransportSession(cfg.transport, cfg.protocol, message, link,
                               cfg.seed);
}

TransportResult
runCrossCoreTransport(const CrossCoreChannelConfig &cfg)
{
    Rng msgRng(cfg.seed ^ 0x7ea45007ULL);
    const std::size_t bits =
        std::size_t(cfg.transport.messageFrames) *
        cfg.transport.layout.payloadBits;
    BitVec message;
    message.reserve(bits);
    for (std::size_t i = 0; i < bits; ++i)
        message.push_back(msgRng.flip());
    return runCrossCoreTransport(cfg, message);
}

} // namespace wb::chan
