#include "chan/cross_core.hh"

#include <algorithm>
#include <optional>
#include <vector>

#include "common/log.hh"
#include "chan/pointer_chase.hh"
#include "chan/receiver.hh"
#include "chan/sender.hh"
#include "chan/set_mapping.hh"
#include "sim/scheduler.hh"
#include "sim/smt_core.hh"

namespace wb::chan
{

namespace
{

/** Line pools both parties derive from the agreed LLC set. */
struct CrossCoreSets
{
    std::vector<Addr> senderLines;
    std::vector<Addr> replacementA;
    std::vector<Addr> replacementB;
};

/** Resolve the replacement-set size (0 = whole LLC set + slack). */
unsigned
resolveReplacementSize(const CrossCoreChannelConfig &cfg)
{
    if (cfg.replacementSize != 0)
        return cfg.replacementSize;
    return cfg.platform.llc.ways + 2;
}

/**
 * Build the pools against the LLC layout: the low LLC index bits
 * survive the page-linear translation, so both processes target the
 * agreed set purely from their virtual addresses, exactly as the L1
 * channel does with the VIPT L1 layout (Sec. IV generalized).
 */
CrossCoreSets
makeCrossCoreSets(const sim::AddressLayout &llcLayout,
                  const CrossCoreChannelConfig &cfg)
{
    const unsigned replacement = resolveReplacementSize(cfg);
    const unsigned senderLines =
        std::max(1u, cfg.protocol.encoding.maxLevel());
    CrossCoreSets sets;
    sets.senderLines =
        linesForSet(llcLayout, cfg.targetLlcSet, senderLines, /*tag=*/1);
    sets.replacementA = linesForSet(llcLayout, cfg.targetLlcSet,
                                    replacement, /*tag=*/0x100);
    sets.replacementB = linesForSet(llcLayout, cfg.targetLlcSet,
                                    replacement, /*tag=*/0x200);
    return sets;
}

void
validate(const CrossCoreChannelConfig &cfg)
{
    if (cfg.cores < 2)
        fatalf("runCrossCoreChannel: needs at least 2 cores, got ",
               cfg.cores);
    if (cfg.senderCore == cfg.receiverCore ||
        cfg.senderCore >= cfg.cores || cfg.receiverCore >= cfg.cores) {
        fatalf("runCrossCoreChannel: sender core ", cfg.senderCore,
               " / receiver core ", cfg.receiverCore,
               " invalid for ", cfg.cores, " cores");
    }
    const unsigned top = cfg.protocol.encoding.maxLevel();
    if (top > cfg.platform.llc.ways)
        fatalf("runCrossCoreChannel: encoding level ", top,
               " exceeds LLC associativity ", cfg.platform.llc.ways);
}

/**
 * Offline calibration against a fresh MultiCoreSystem: the sender
 * side dirties d LLC-set lines from its core, the receiver side times
 * the alternating replacement-set sweep from its core — the Fig. 4
 * procedure carried to LLC granularity. Levels are interleaved at
 * random for the same steady-state reasons as chan::calibrate().
 */
Calibration
calibrateCrossCore(const CrossCoreChannelConfig &cfg,
                   const CrossCoreSets &sets, Rng &rng)
{
    const unsigned top = cfg.protocol.encoding.maxLevel();
    Calibration out;
    out.latencyByD.resize(top + 1);
    out.medianByD.resize(top + 1, 0.0);

    sim::MultiCoreSystem mc(cfg.platform, cfg.cores, &rng);
    sim::MemorySystem &sender = mc.port(cfg.senderCore);
    sim::MemorySystem &receiver = mc.port(cfg.receiverCore);
    sim::AddressSpace senderSpace(1);
    sim::AddressSpace receiverSpace(2);

    PointerChase chaseA(sets.replacementA);
    PointerChase chaseB(sets.replacementB);

    // Warm both replacement sets into the shared LLC.
    for (int sweep = 0; sweep < 2; ++sweep) {
        receiver.accessBatch(0, receiverSpace, sets.replacementA, false);
        receiver.accessBatch(0, receiverSpace, sets.replacementB, false);
    }

    std::vector<unsigned> mix = cfg.calibration.levelsMix;
    if (mix.empty())
        mix = cfg.protocol.encoding.levels();

    const std::size_t total =
        mix.size() * cfg.calibration.measurements + cfg.calibration.discard;
    bool useA = true;
    for (std::size_t m = 0; m < total; ++m) {
        const unsigned d = mix[rng.below(mix.size())];
        sender.accessBatch(0, senderSpace, sets.senderLines.data(), d,
                           /*isWrite=*/true);
        PointerChase &chase = useA ? chaseA : chaseB;
        chase.reshuffle(rng);
        double lat = measureChaseOffline(receiver, 0, receiverSpace,
                                         chase.order(), cfg.noise);
        if (cfg.noise.measBaseSigma > 0.0)
            lat += rng.gaussian(0.0, cfg.noise.measBaseSigma);
        useA = !useA;
        if (m >= cfg.calibration.discard)
            out.latencyByD[d].add(lat);
    }
    for (unsigned d = 0; d <= top; ++d)
        out.medianByD[d] = out.latencyByD[d].median();
    return out;
}

} // namespace

ChannelResult
runCrossCoreChannel(const CrossCoreChannelConfig &cfg)
{
    validate(cfg);
    const ProtocolConfig &proto = cfg.protocol;
    const Encoding &enc = proto.encoding;

    Rng frameRng(cfg.seed ^ 0xf00dULL);
    const BitVec frame = randomFrame(proto.frameBits - 16, frameRng);
    if (frame.size() % enc.bitsPerSymbol() != 0)
        fatalf("runCrossCoreChannel: frame bits ", frame.size(),
               " not divisible by bits/symbol ", enc.bitsPerSymbol());

    Rng rootRng(cfg.seed);
    Rng calRng = rootRng.split();
    Rng runRng = rootRng.split();

    // The LLC layout is shared by every core; borrow it from a
    // throwaway cache-less construction via the params geometry.
    const sim::AddressLayout llcLayout(cfg.platform.llc.numSets());
    const CrossCoreSets sets = makeCrossCoreSets(llcLayout, cfg);

    // --- Offline calibration -> classifier centroids ---
    const Calibration cal = calibrateCrossCore(cfg, sets, calRng);
    const Classifier classifier = cal.classifierFor(enc);

    // --- Per-slot dirty-line levels for all frame repetitions ---
    const auto frameLevels = frameToLevels(frame, enc);
    std::vector<unsigned> dSeq;
    dSeq.reserve(frameLevels.size() * proto.frames);
    for (unsigned f = 0; f < proto.frames; ++f)
        dSeq.insert(dSeq.end(), frameLevels.begin(), frameLevels.end());

    // --- Platform: one system, one SmtCore front-end per party.
    // Under an active OS-noise config the front-ends come from a
    // Scheduler (co-runners over the cores, timeslicing, migration of
    // the receiver); the inactive default keeps the plain runCores
    // interleave, which the scheduler loop degenerates to anyway. ---
    sim::MultiCoreSystem mc(cfg.platform, cfg.cores, &runRng);
    std::optional<sim::Scheduler> os;
    std::optional<sim::SmtCore> plainSender;
    std::optional<sim::SmtCore> plainReceiver;
    if (cfg.scheduler.active()) {
        os.emplace(mc, cfg.noise, runRng, cfg.scheduler, cfg.seed);
    } else {
        plainSender.emplace(mc.port(cfg.senderCore), cfg.noise, runRng);
        plainReceiver.emplace(mc.port(cfg.receiverCore), cfg.noise,
                              runRng);
    }
    sim::SmtCore &senderCore =
        os ? os->party(cfg.senderCore) : *plainSender;
    sim::SmtCore &receiverCore =
        os ? os->party(cfg.receiverCore, /*migratable=*/true)
           : *plainReceiver;

    const TransmissionSchedule sched = transmissionSchedule(
        dSeq.size(), proto.ts, cfg.senderStartSlots, cfg.sampleMargin);
    SenderProgram sender(sets.senderLines, dSeq, proto.ts);
    ReceiverProgram receiver(sets.replacementA, sets.replacementB,
                             proto.tr, sched.sampleCount);

    const ThreadId senderTid = senderCore.addThread(
        &sender, sim::AddressSpace(1), sched.senderStart);
    const ThreadId receiverTid =
        receiverCore.addThread(&receiver, sim::AddressSpace(2), 0);

    const Cycles end =
        os ? os->run(sched.horizon * os->horizonStretch())
           : sim::runCores({&senderCore, &receiverCore}, sched.horizon);

    // --- Decode ---
    ChannelResult res;
    res.latencies = receiver.latencies();
    DecodeResult dec = decodeTransmission(res.latencies, classifier, enc,
                                          frame, proto.frames);
    res.ber = dec.ber;
    res.breakdown = dec.breakdown;
    res.aligned = dec.aligned;
    res.framesScored = dec.framesScored;
    res.framesExpected = dec.framesExpected;
    res.rateKbps = proto.rateKbps();
    res.goodputKbps = res.rateKbps * (1.0 - std::min(1.0, res.ber));
    res.sentFrame = frame;
    res.decodedBits = dec.bitstream;
    res.calibrationMedians = cal.medianByD;
    res.senderCounters = mc.counters(cfg.senderCore, senderTid);
    if (os) {
        // A migrated receiver charged counters on every core it
        // visited; its scheduler-allocated tid is system-unique, so
        // the merge picks up only its own accesses.
        for (unsigned c = 0; c < mc.coreCount(); ++c)
            res.receiverCounters.merge(mc.counters(c, receiverTid));
    } else {
        res.receiverCounters = mc.counters(cfg.receiverCore, receiverTid);
    }
    res.simulatedCycles = end;
    if (os)
        res.schedulerStats = os->stats();
    return res;
}

} // namespace wb::chan
