#include "chan/calibration.hh"

#include "chan/pointer_chase.hh"
#include "chan/set_mapping.hh"
#include "common/log.hh"

namespace wb::chan
{

Classifier
Calibration::binaryClassifier(unsigned d2) const
{
    if (d2 >= medianByD.size())
        fatalf("binaryClassifier: d2 ", d2, " out of calibrated range");
    return Classifier({medianByD[0], medianByD[d2]});
}

Classifier
Calibration::classifierFor(const Encoding &encoding) const
{
    std::vector<double> centroids;
    centroids.reserve(encoding.symbols());
    for (unsigned s = 0; s < encoding.symbols(); ++s) {
        const unsigned d = encoding.level(s);
        if (d >= medianByD.size())
            fatalf("classifierFor: level ", d, " out of calibrated range");
        centroids.push_back(medianByD[d]);
    }
    return Classifier(centroids);
}

double
measureChaseOffline(sim::MemorySystem &mem, ThreadId tid,
                    const sim::AddressSpace &space,
                    const std::vector<Addr> &order,
                    const sim::NoiseModel &noise)
{
    const auto batch =
        mem.accessBatch(tid, space, order, /*isWrite=*/false);
    return static_cast<double>(batch.totalLatency +
                               noise.opOverhead * batch.accesses +
                               noise.tscReadCost);
}

Calibration
calibrate(const sim::HierarchyParams &hp, const sim::NoiseModel &noise,
          const CalibrationConfig &cfg, Rng &rng)
{
    const unsigned ways = hp.l1.ways;
    Calibration out;
    out.latencyByD.resize(ways + 1);
    out.medianByD.resize(ways + 1, 0.0);

    const ThreadId senderTid = 0;
    const ThreadId receiverTid = 1;
    sim::AddressSpace senderSpace(1);
    sim::AddressSpace receiverSpace(2);

    // One hierarchy for the whole calibration, with the d values
    // interleaved at random. This matters for non-stack replacement
    // policies (PLRU variants, SRRIP, random): leftover lines from
    // previous slots shift the steady-state baseline, so calibrating
    // each d in isolation would misplace the thresholds the live
    // receiver needs (an in-situ attacker calibrates the same way).
    sim::Hierarchy hierarchy(hp, &rng);
    const auto sets = makeChannelSets(hierarchy.l1().layout(),
                                      cfg.targetSet, ways,
                                      cfg.replacementSize);
    PointerChase chaseA(sets.replacementA);
    PointerChase chaseB(sets.replacementB);

    // Warm both replacement sets into L2.
    for (int sweep = 0; sweep < 2; ++sweep) {
        hierarchy.accessBatch(receiverTid, receiverSpace,
                              sets.replacementA, false);
        hierarchy.accessBatch(receiverTid, receiverSpace,
                              sets.replacementB, false);
    }

    std::vector<unsigned> mix = cfg.levelsMix;
    if (mix.empty()) {
        for (unsigned d = 0; d <= ways; ++d)
            mix.push_back(d);
    }
    for (unsigned d : mix) {
        if (d > ways)
            fatalf("calibrate: level ", d, " exceeds associativity");
    }

    const std::size_t total = mix.size() * cfg.measurements + cfg.discard;
    bool useA = true;
    for (std::size_t m = 0; m < total; ++m) {
        const unsigned d = mix[rng.below(mix.size())];
        // Sender phase: dirty d lines (Algorithm 1 encode).
        hierarchy.accessBatch(senderTid, senderSpace,
                              sets.senderLines.data(), d,
                              /*isWrite=*/true);
        // Receiver phase: timed traversal (Algorithm 2 decode).
        PointerChase &chase = useA ? chaseA : chaseB;
        chase.reshuffle(rng);
        double lat = measureChaseOffline(hierarchy, receiverTid,
                                         receiverSpace, chase.order(),
                                         noise);
        if (noise.measBaseSigma > 0.0)
            lat += rng.gaussian(0.0, noise.measBaseSigma);
        useA = !useA;
        if (m >= cfg.discard)
            out.latencyByD[d].add(lat);
    }
    for (unsigned d = 0; d <= ways; ++d)
        out.medianByD[d] = out.latencyByD[d].median();
    return out;
}

} // namespace wb::chan
