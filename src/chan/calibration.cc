#include "chan/calibration.hh"

#include "chan/pointer_chase.hh"
#include "chan/set_mapping.hh"
#include "common/log.hh"

namespace wb::chan
{

namespace
{

/**
 * Force strict centroid ordering. Under a closed channel (write-
 * through, DAWG) seen through a coarse timer the per-level samples can
 * quantize to identical point masses and the centroids tie exactly;
 * Classifier's ctor is (rightly) fatal on that. Nudging a tied
 * centroid up by an epsilon yields an honest near-chance classifier
 * instead of a crash — the sweep reports ~50% BER for the closed cell.
 */
std::vector<double>
strictlyIncreasing(std::vector<double> centroids)
{
    for (std::size_t i = 1; i < centroids.size(); ++i) {
        if (centroids[i] <= centroids[i - 1])
            centroids[i] = centroids[i - 1] + 1e-6;
    }
    return centroids;
}

} // namespace

Classifier
Calibration::binaryClassifier(unsigned d2) const
{
    if (d2 >= medianByD.size())
        fatalf("binaryClassifier: d2 ", d2, " out of calibrated range");
    return Classifier(strictlyIncreasing({medianByD[0], medianByD[d2]}));
}

Classifier
Calibration::classifierFor(const Encoding &encoding) const
{
    std::vector<double> centroids;
    centroids.reserve(encoding.symbols());
    for (unsigned s = 0; s < encoding.symbols(); ++s) {
        const unsigned d = encoding.level(s);
        if (d >= medianByD.size())
            fatalf("classifierFor: level ", d, " out of calibrated range");
        centroids.push_back(medianByD[d]);
    }
    return Classifier(strictlyIncreasing(std::move(centroids)));
}

Classifier
Calibration::meanClassifierFor(const Encoding &encoding) const
{
    std::vector<double> centroids;
    centroids.reserve(encoding.symbols());
    for (unsigned s = 0; s < encoding.symbols(); ++s) {
        const unsigned d = encoding.level(s);
        if (d >= meanByD.size())
            fatalf("meanClassifierFor: level ", d,
                   " out of calibrated range");
        centroids.push_back(meanByD[d]);
    }
    return Classifier(strictlyIncreasing(std::move(centroids)));
}

double
measureChaseOffline(sim::MemorySystem &mem, ThreadId tid,
                    const sim::AddressSpace &space,
                    const std::vector<Addr> &order,
                    const sim::NoiseModel &noise)
{
    const auto batch =
        mem.accessBatch(tid, space, order, /*isWrite=*/false);
    return static_cast<double>(batch.totalLatency +
                               noise.opOverhead * batch.accesses +
                               noise.tscReadCost);
}

Calibration
calibrate(const sim::HierarchyParams &hp, const sim::NoiseModel &noise,
          const CalibrationConfig &cfg, Rng &rng)
{
    const unsigned ways = hp.l1.ways;
    Calibration out;
    out.latencyByD.resize(ways + 1);
    out.medianByD.resize(ways + 1, 0.0);

    const ThreadId senderTid = 0;
    const ThreadId receiverTid = 1;
    sim::AddressSpace senderSpace(1);
    sim::AddressSpace receiverSpace(2);

    // One hierarchy for the whole calibration, with the d values
    // interleaved at random. This matters for non-stack replacement
    // policies (PLRU variants, SRRIP, random): leftover lines from
    // previous slots shift the steady-state baseline, so calibrating
    // each d in isolation would misplace the thresholds the live
    // receiver needs (an in-situ attacker calibrates the same way).
    sim::Hierarchy hierarchy(hp, &rng);
    const auto sets = makeChannelSets(hierarchy.l1().layout(),
                                      cfg.targetSet, ways,
                                      cfg.replacementSize);
    PointerChase chaseA(sets.replacementA);
    PointerChase chaseB(sets.replacementB);

    // Warm both replacement sets into L2.
    for (int sweep = 0; sweep < 2; ++sweep) {
        hierarchy.accessBatch(receiverTid, receiverSpace,
                              sets.replacementA, false);
        hierarchy.accessBatch(receiverTid, receiverSpace,
                              sets.replacementB, false);
    }

    std::vector<unsigned> mix = cfg.levelsMix;
    if (mix.empty()) {
        for (unsigned d = 0; d <= ways; ++d)
            mix.push_back(d);
    }
    for (unsigned d : mix) {
        if (d > ways)
            fatalf("calibrate: level ", d, " exceeds associativity");
    }

    const std::size_t total = mix.size() * cfg.measurements + cfg.discard;
    bool useA = true;
    for (std::size_t m = 0; m < total; ++m) {
        const unsigned d = mix[rng.below(mix.size())];
        // Sender phase: dirty d lines (Algorithm 1 encode).
        hierarchy.accessBatch(senderTid, senderSpace,
                              sets.senderLines.data(), d,
                              /*isWrite=*/true);
        // Receiver phase: timed traversal (Algorithm 2 decode), or —
        // for the Flushgeist observer — an *untimed* prime followed by
        // one timed clflush of a probe line, whose cost carries the
        // dirty write-backs the prime just queued.
        PointerChase &chase = useA ? chaseA : chaseB;
        chase.reshuffle(rng);
        double lat;
        if (cfg.probe == CalibrationProbe::FlushLatency) {
            hierarchy.accessBatch(receiverTid, receiverSpace,
                                  chase.order(), /*isWrite=*/false);
            const Addr probeVa =
                useA ? sets.replacementA[0] : sets.replacementB[0];
            lat = static_cast<double>(
                hierarchy.flush(receiverTid,
                                receiverSpace.translate(probeVa)) +
                noise.opOverhead + noise.tscReadCost);
        } else {
            lat = measureChaseOffline(hierarchy, receiverTid,
                                      receiverSpace, chase.order(),
                                      noise);
        }
        if (noise.measBaseSigma > 0.0)
            lat += rng.gaussian(0.0, noise.measBaseSigma);
        // The observer choke point (quantization-bypass audit fix):
        // offline measurements pass through the same resolution floor
        // and jitter the live receiver's timestamps suffer, so a
        // coarse-timer config cannot be beaten by calibrating with a
        // secretly perfect clock. No-op for the default observer on a
        // granule-1 platform.
        lat = noise.observeDuration(lat, rng);
        useA = !useA;
        if (m >= cfg.discard)
            out.latencyByD[d].add(lat);
    }
    out.meanByD.resize(ways + 1, 0.0);
    out.stddevByD.resize(ways + 1, 0.0);
    for (unsigned d = 0; d <= ways; ++d) {
        out.medianByD[d] = out.latencyByD[d].median();
        if (!out.latencyByD[d].raw().empty()) {
            out.meanByD[d] = out.latencyByD[d].mean();
            out.stddevByD[d] = out.latencyByD[d].stddev();
        }
    }
    return out;
}

} // namespace wb::chan
