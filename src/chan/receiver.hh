/**
 * @file
 * The WB-channel receiver (paper Algorithm 2 + receiver half of
 * Algorithm 3).
 *
 * Every Tr cycles the receiver times one pointer-chased traversal of a
 * replacement set. Replacing the target set both measures the number of
 * dirty lines the sender left there (each costs the dirty-victim
 * write-back penalty) and re-initializes the set with clean lines, so
 * no separate initialization phase is needed. Two replacement sets are
 * used alternately so the lines being timed always come from L2, not
 * from the L1 they were left in by the previous measurement.
 */

#ifndef WB_CHAN_RECEIVER_HH
#define WB_CHAN_RECEIVER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "chan/pointer_chase.hh"
#include "sim/smt_core.hh"

namespace wb::chan
{

/** One recorded observation. */
struct Observation
{
    double latency = 0.0; //!< measured traversal latency (cycles)
    Cycles at = 0;        //!< receiver virtual time of the measurement
};

/** Receiver state machine. */
class ReceiverProgram : public sim::Program
{
  public:
    /**
     * @param replacementA replacement set A (line addresses)
     * @param replacementB replacement set B, address-disjoint from A
     * @param tr sampling period in cycles (Algorithm 3's Tr)
     * @param sampleCount observations to record before halting
     * @param warmupSweeps untimed sweeps of both sets at startup (warms
     *        L2 and performs the paper's initialization phase)
     */
    ReceiverProgram(std::vector<Addr> replacementA,
                    std::vector<Addr> replacementB, Cycles tr,
                    std::size_t sampleCount, unsigned warmupSweeps = 2);

    std::optional<sim::MemOp> next(sim::ProcView &view) override;
    void onResult(const sim::MemOp &op, const sim::OpResult &res,
                  sim::ProcView &view) override;

    /**
     * One full sample compiled as a trace: [slot spin, TSC read,
     * chase sweep, TSC read] with hooks on the spin (re-base Tlast and
     * reshuffle the chase — the sweep op's address storage is updated
     * in place, which the Trace contract allows) and on both TSC reads
     * (start/stop of the timed traversal). The decode decision — stop
     * or arm the next slot — happens at the final hook, making the
     * sample boundary the receiver's fallback point.
     */
    const sim::Trace *nextTrace(sim::ProcView &view) override;
    void onTraceResult(std::uint32_t opIdx, const sim::MemOp &op,
                       const sim::OpResult &res,
                       sim::ProcView &view) override;

    /** The recorded observations (valid after the run). */
    const std::vector<Observation> &observations() const { return obs_; }

    /** Just the latencies, for classification. */
    std::vector<double> latencies() const;

    /** True once sampleCount observations were recorded. */
    bool done() const { return done_; }

  private:
    enum class Phase
    {
        Warmup,  //!< untimed batched sweeps of A and B
        Init,    //!< read TSC once to establish Tlast
        Wait,    //!< spin until Tlast + Tr
        Measure, //!< TscRead, batched chase sweep, TscRead
        Done     //!< sampleCount observations recorded
    };

    /** Begin a measurement over the current replacement set. */
    void startMeasurement(Rng &rng);

    PointerChase chaseA_;
    PointerChase chaseB_;
    Cycles tr_;
    std::size_t sampleCount_;
    unsigned warmupSweeps_;

    Phase phase_ = Phase::Warmup;
    bool useA_ = true; //!< Algorithm 2: alternate replacement sets
    bool warmupDone_ = false;
    std::vector<Addr> warmupOrder_;

    std::vector<sim::MemOp> measureOps_;
    std::size_t measurePos_ = 0;
    Cycles tscStart_ = 0;
    bool sawFirstTsc_ = false;

    Cycles tlast_ = 0;
    std::vector<Observation> obs_;
    bool done_ = false;

    /**
     * Effective timer granule when the observer is coarse (1 = legacy
     * cycle-accurate, no dither). Refreshed from the noise model at
     * each slot boundary; startMeasurement prepends a uniform dither
     * delay in [0, granule) when > 1.
     */
    Cycles ditherGranule_ = 1;

    std::array<sim::MemOp, 4> traceOps_{};       //!< spin, tsc, sweep, tsc
    std::array<std::uint32_t, 3> tracePoints_{}; //!< hooks: 0, 1, 3
    sim::Trace trace_;
};

} // namespace wb::chan

#endif // WB_CHAN_RECEIVER_HH
