/**
 * @file
 * Symbol encodings and the latency classifier.
 *
 * Binary encoding (paper Sec. V "Symbols encoding binary"): d = 0 dirty
 * lines sends 0; d = d2 in {1..W} dirty lines sends 1. Larger d2 widens
 * the latency gap at the cost of more sender stores.
 *
 * Multi-bit encoding ("Symbols encoding multiple bits"): the target set
 * holds 0..W dirty lines, so up to log2(W+1) bits per symbol. The paper
 * encodes 2 bits with the non-adjacent levels d in {0, 3, 5, 8}.
 *
 * Decoding classifies a measured replacement latency against thresholds
 * derived from calibration medians (the dotted threshold lines in paper
 * Figs. 5 and 7).
 */

#ifndef WB_CHAN_MODULATION_HH
#define WB_CHAN_MODULATION_HH

#include <cstdint>
#include <vector>

#include "common/bitvec.hh"
#include "common/log.hh"

namespace wb::chan
{

/**
 * A symbol alphabet: symbol s is transmitted as levels[s] dirty lines.
 * bitsPerSymbol() bits of the message select one symbol.
 */
class Encoding
{
  public:
    /** Binary encoding with d1 = 0 and the given d2 (1..W). */
    static Encoding binary(unsigned d2);

    /**
     * Multi-bit encoding over the given dirty-line levels; size must be
     * a power of two >= 2. The paper's 2-bit alphabet is {0, 3, 5, 8}.
     */
    static Encoding multiBit(std::vector<unsigned> levels);

    /** The paper's 2-bit alphabet {0, 3, 5, 8}. */
    static Encoding paperTwoBit();

    /** Bits encoded per symbol (log2 of alphabet size). */
    unsigned bitsPerSymbol() const { return bits_; }

    /** Number of symbols in the alphabet. */
    unsigned symbols() const { return static_cast<unsigned>(levels_.size()); }

    /** Dirty-line count for symbol @p s. */
    unsigned level(unsigned s) const { return levels_.at(s); }

    /** All levels. */
    const std::vector<unsigned> &levels() const { return levels_; }

    /** Largest level (the most dirty lines any symbol uses). */
    unsigned maxLevel() const;

    /**
     * Map the next bitsPerSymbol bits of @p bits starting at @p pos to
     * a symbol index (MSB first). Missing bits read as 0.
     */
    unsigned symbolAt(const BitVec &bits, std::size_t pos) const;

    /** Append symbol @p s's bits to @p out. */
    void appendSymbolBits(unsigned s, BitVec &out) const;

  private:
    explicit Encoding(std::vector<unsigned> levels);

    std::vector<unsigned> levels_;
    unsigned bits_ = 1;
};

/**
 * Latency-to-symbol classifier: nearest centroid with precomputed
 * midpoint thresholds. Centroids come from Calibration medians.
 */
class Classifier
{
  public:
    /**
     * @param centroids calibrated median latency per symbol, indexed by
     *        symbol; must be strictly increasing
     */
    explicit Classifier(std::vector<double> centroids);

    /** Classify one measured latency to a symbol index. */
    unsigned classify(double latency) const;

    /** Midpoint threshold between symbols i and i+1. */
    double threshold(std::size_t i) const { return thresholds_.at(i); }

    /** The centroid used for symbol @p s. */
    double centroid(unsigned s) const { return centroids_.at(s); }

    /** Number of symbols. */
    unsigned
    symbols() const
    {
        return static_cast<unsigned>(centroids_.size());
    }

  private:
    std::vector<double> centroids_;
    std::vector<double> thresholds_;
};

} // namespace wb::chan

#endif // WB_CHAN_MODULATION_HH
