/**
 * @file
 * Degraded-observer channel families: how the WB channel runs when the
 * attacker's apparatus is weaker than a cycle-accurate rdtscp plus
 * clflush at will (sim/observer.hh; docs/OBSERVERS.md).
 *
 * Three variants, selected by NoiseModel::observer:
 *
 *  - **Coarse timer** (Spy-in-the-Sandbox): every timestamp is floored
 *    to the observer granule, so one sample carries a fraction of a
 *    granule of signal. The dithered quantization makes each sample an
 *    unbiased estimator of the true latency, and the plan repeats each
 *    symbol R times so the decoder can average blocks of R samples
 *    against *mean* centroids. R is auto-scaled from a planning
 *    calibration (measured per-level dispersion vs the smallest
 *    adjacent centroid gap), and the reported rate divides by R — the
 *    goodput-honesty rule applied to amplification.
 *
 *  - **Flush latency** (Flushgeist): the receiver never times loads;
 *    it primes the set untimed and times one clflush, whose cost
 *    carries the dirty write-backs the prime just queued
 *    (LatencyModel::flushWbDrainExtra, Hierarchy's pending-WB model).
 *
 *  - **Eviction only** (CacheOut): no flush instruction anywhere. The
 *    WB load-timing receiver is naturally flushless — the plan's only
 *    change is that the replacement sets are *discovered* at run time
 *    with EvictionSetFinder (timing tests alone) instead of taken
 *    from architectural set arithmetic, and flush-family baselines
 *    are denied (SmtCore fatals on a Flush op).
 */

#ifndef WB_CHAN_DEGRADED_HH
#define WB_CHAN_DEGRADED_HH

#include <vector>

#include "chan/channel.hh"
#include "chan/receiver.hh"
#include "chan/set_mapping.hh"
#include "sim/smt_core.hh"

namespace wb::chan
{

/**
 * Hard ceiling on the repetition factor: past this the amplification
 * cost exceeds any realistic attacker budget (a µs-granule timer
 * against the 96-cycle binary gap already needs R in the thousands).
 */
inline constexpr unsigned kMaxRepetition = 4096;

/**
 * Repetition budget the planner settles on when the planning
 * calibration finds no usable centroid gap (a closed channel —
 * write-through, DAWG — seen through a coarse timer). No R recovers a
 * signal that is not there; this bounded budget keeps sweep cells
 * honest (~50% BER) without running the full ceiling for nothing.
 */
inline constexpr unsigned kClosedChannelRepetition = 256;

/**
 * Default LatencyModel::flushWbDrainExtra the flush-latency plan opts
 * into when the platform leaves it 0: per pending dirty write-back,
 * slightly under the 12-cycle L1 dirty-evict penalty the load-timing
 * receiver reads (the WB buffer drains at L2 port bandwidth).
 */
inline constexpr Cycles kDefaultFlushWbDrain = 9;

/** A channel config adjusted for its observer, plus the repetition. */
struct DegradedPlan
{
    ChannelConfig cfg;       //!< adjusted copy (== input when default)
    unsigned repetition = 1; //!< samples averaged per symbol
};

/**
 * Adjust @p cfg for its configured observer: coarse-timer plans get
 * granule-aligned pacing, an auto-scaled repetition factor and a
 * calibration sample budget to match; flush-latency plans select the
 * flush calibration probe and default the drain penalty in. A
 * default-observer config is returned unchanged (and the legacy path
 * stays bit-identical). Fatal on contradictory capability (a
 * flush-latency observer with hasFlush == false).
 */
DegradedPlan planDegraded(const ChannelConfig &cfg);

/**
 * Auto-scale the repetition factor for a coarse-timer config: run a
 * planning calibration through the observer choke point, estimate the
 * smallest adjacent gap between per-level means and the largest
 * per-level dispersion, and size R so a block mean of R samples
 * separates adjacent levels at ~2.75 sigma. Two-pass: when the first
 * estimate says more calibration samples are needed to trust the
 * centroids, it recalibrates once at the larger budget. Honors
 * ProtocolConfig::repetitionOverride.
 */
unsigned planRepetition(const ChannelConfig &cfg);

/**
 * Block-average @p latencies in consecutive groups of @p repetition
 * (trailing partial block dropped): the repetition decoder's collapse
 * from sample stream to symbol-rate stream.
 */
std::vector<double> collapseRepetition(const std::vector<double> &latencies,
                                       unsigned repetition);

/**
 * Discover the receiver's replacement sets by timing tests alone
 * (the eviction-only observer): for each of A and B, reduce a pool of
 * same-set-index lines to a minimal L1 eviction set with
 * EvictionSetFinder — threshold at the L1-hit / L2-hit midpoint, no
 * flushes — then pad back to @p replacementSize with leftover
 * congruent pool lines. The sender's lines are untouched (the sender
 * is not the observer). Discovery runs live against @p hierarchy
 * under @p tid, so its footprint lands in the run's counters like a
 * real attacker's setup phase would.
 *
 * @param verified set to whether both reductions verified minimal;
 *        on failure the architectural pool lines are used as-is (they
 *        are congruent by VIPT construction — discovery is the
 *        observer's *verification* that they evict).
 */
ChannelSets discoverChannelSets(sim::Hierarchy &hierarchy, ThreadId tid,
                                unsigned targetSet, unsigned ways,
                                unsigned replacementSize, Rng &rng,
                                bool *verified);

/**
 * The Flushgeist receiver: per slot, prime the current replacement
 * set untimed (evicting whatever dirty lines the sender left in the
 * target set into the write-back queue), then time a single clflush
 * of a probe line — its latency carries the queued write-backs'
 * drain. Composes with the coarse-timer observer (dither delay before
 * the timed section, same as ReceiverProgram). Per-op only: the
 * variant is rare enough that a compiled trace isn't worth a second
 * draw-order contract.
 */
class FlushLatencyReceiverProgram : public sim::Program
{
  public:
    FlushLatencyReceiverProgram(std::vector<Addr> replacementA,
                                std::vector<Addr> replacementB, Cycles tr,
                                std::size_t sampleCount,
                                unsigned warmupSweeps = 2);

    std::optional<sim::MemOp> next(sim::ProcView &view) override;
    void onResult(const sim::MemOp &op, const sim::OpResult &res,
                  sim::ProcView &view) override;

    /** The recorded flush latencies (valid after the run). */
    const std::vector<double> &latencies() const { return latencies_; }

    /** True once sampleCount observations were recorded. */
    bool done() const { return done_; }

  private:
    enum class Phase
    {
        Warmup,  //!< untimed batched sweeps of A and B
        Init,    //!< read TSC once to establish Tlast
        Wait,    //!< spin until Tlast + Tr
        Measure, //!< prime, [dither], TscRead, Flush, TscRead
        Done
    };

    std::vector<Addr> setA_;
    std::vector<Addr> setB_;
    Cycles tr_;
    std::size_t sampleCount_;
    std::vector<Addr> warmupOrder_;

    Phase phase_ = Phase::Warmup;
    bool useA_ = true;
    bool warmupDone_ = false;

    std::vector<sim::MemOp> measureOps_;
    std::size_t measurePos_ = 0;
    Cycles tscStart_ = 0;
    bool sawFirstTsc_ = false;

    Cycles tlast_ = 0;
    std::vector<double> latencies_;
    bool done_ = false;
};

} // namespace wb::chan

#endif // WB_CHAN_DEGRADED_HH
