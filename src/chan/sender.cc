#include "chan/sender.hh"

#include "common/log.hh"

namespace wb::chan
{

SenderProgram::SenderProgram(std::vector<Addr> lines,
                             std::vector<unsigned> dSequence, Cycles ts)
    : lines_(std::move(lines)), dSeq_(std::move(dSequence)), ts_(ts)
{
    unsigned maxD = 0;
    for (unsigned d : dSeq_)
        maxD = std::max(maxD, d);
    if (maxD > lines_.size())
        fatalf("SenderProgram: needs ", maxD, " lines, got ",
               lines_.size());
}

std::optional<sim::MemOp>
SenderProgram::next(sim::ProcView &)
{
    switch (phase_) {
      case Phase::Init:
        return sim::MemOp::tscRead();
      case Phase::Encode: {
        if (symbolIdx_ >= dSeq_.size()) {
            done_ = true;
            return sim::MemOp::halt();
        }
        const unsigned d = dSeq_[symbolIdx_];
        if (storeIdx_ < d)
            return sim::MemOp::store(lines_[storeIdx_]);
        phase_ = Phase::Wait;
        return sim::MemOp::spinUntil(tlast_ + ts_);
      }
      case Phase::Wait:
        // onResult advances the phase; next() is never called while in
        // Wait because SpinUntil is the single op of this phase.
        return sim::MemOp::spinUntil(tlast_ + ts_);
    }
    return sim::MemOp::halt();
}

void
SenderProgram::onResult(const sim::MemOp &op, const sim::OpResult &res,
                        sim::ProcView &)
{
    switch (op.kind) {
      case sim::MemOp::Kind::TscRead:
        tlast_ = res.tsc;
        phase_ = Phase::Encode;
        break;
      case sim::MemOp::Kind::Store:
        ++storeIdx_;
        break;
      case sim::MemOp::Kind::SpinUntil:
        tlast_ = res.tsc; // Algorithm 3: Tlast = TSC (post-spin)
        ++symbolIdx_;
        storeIdx_ = 0;
        phase_ = Phase::Encode;
        break;
      default:
        break;
    }
}

} // namespace wb::chan
