#include "chan/sender.hh"

#include "common/log.hh"

namespace wb::chan
{

SenderProgram::SenderProgram(std::vector<Addr> lines,
                             std::vector<unsigned> dSequence, Cycles ts)
    : lines_(std::move(lines)), dSeq_(std::move(dSequence)), ts_(ts)
{
    unsigned maxD = 0;
    for (unsigned d : dSeq_)
        maxD = std::max(maxD, d);
    if (maxD > lines_.size())
        fatalf("SenderProgram: needs ", maxD, " lines, got ",
               lines_.size());
}

std::optional<sim::MemOp>
SenderProgram::next(sim::ProcView &)
{
    switch (phase_) {
      case Phase::Init:
        return sim::MemOp::tscRead();
      case Phase::Encode: {
        if (symbolIdx_ >= dSeq_.size()) {
            done_ = true;
            return sim::MemOp::halt();
        }
        // Algorithm 1: dirty the symbol's d lines as one batched store
        // sweep through the fused miss path, then wait out the slot.
        const unsigned d = dSeq_[symbolIdx_];
        if (d > 0)
            return sim::MemOp::storeBatch(lines_.data(), d);
        phase_ = Phase::Wait;
        return sim::MemOp::spinUntil(tlast_ + ts_);
      }
      case Phase::Wait:
        // onResult advances the phase; next() is never called while in
        // Wait because SpinUntil is the single op of this phase.
        return sim::MemOp::spinUntil(tlast_ + ts_);
    }
    return sim::MemOp::halt();
}

void
SenderProgram::onResult(const sim::MemOp &op, const sim::OpResult &res,
                        sim::ProcView &)
{
    switch (op.kind) {
      case sim::MemOp::Kind::TscRead:
        tlast_ = res.tsc;
        phase_ = Phase::Encode;
        break;
      case sim::MemOp::Kind::StoreBatch:
        phase_ = Phase::Wait;
        break;
      case sim::MemOp::Kind::SpinUntil:
        tlast_ = res.tsc; // Algorithm 3: Tlast = TSC (post-spin)
        ++symbolIdx_;
        phase_ = Phase::Encode;
        break;
      default:
        break;
    }
}

} // namespace wb::chan
