#include "chan/sender.hh"

#include "common/log.hh"

namespace wb::chan
{

SenderProgram::SenderProgram(std::vector<Addr> lines,
                             std::vector<unsigned> dSequence, Cycles ts)
    : lines_(std::move(lines)), dSeq_(std::move(dSequence)), ts_(ts)
{
    unsigned maxD = 0;
    for (unsigned d : dSeq_)
        maxD = std::max(maxD, d);
    if (maxD > lines_.size())
        fatalf("SenderProgram: needs ", maxD, " lines, got ",
               lines_.size());
}

std::optional<sim::MemOp>
SenderProgram::next(sim::ProcView &)
{
    switch (phase_) {
      case Phase::Init:
        return sim::MemOp::tscRead();
      case Phase::Encode: {
        if (symbolIdx_ >= dSeq_.size()) {
            done_ = true;
            return sim::MemOp::halt();
        }
        // Algorithm 1: dirty the symbol's d lines as one batched store
        // sweep through the fused miss path, then wait out the slot.
        const unsigned d = dSeq_[symbolIdx_];
        if (d > 0)
            return sim::MemOp::storeBatch(lines_.data(), d);
        phase_ = Phase::Wait;
        return sim::MemOp::spinUntil(tlast_ + ts_);
      }
      case Phase::Wait:
        // onResult advances the phase; next() is never called while in
        // Wait because SpinUntil is the single op of this phase.
        return sim::MemOp::spinUntil(tlast_ + ts_);
    }
    return sim::MemOp::halt();
}

const sim::Trace *
SenderProgram::nextTrace(sim::ProcView &)
{
    // Only the Encode->Wait slot cycle is compiled; Init (and the
    // final halt) stay on the per-op path.
    if (phase_ != Phase::Encode || symbolIdx_ >= dSeq_.size())
        return nullptr;
    const unsigned d = dSeq_[symbolIdx_];
    std::size_t n = 0;
    if (d > 0)
        traceOps_[n++] = sim::MemOp::storeBatch(lines_.data(), d);
    const auto spinIdx = static_cast<std::uint32_t>(n);
    traceOps_[n++] = sim::MemOp::spinUntil(tlast_ + ts_);
    tracePoints_[0] = spinIdx;
    trace_ = {traceOps_.data(), n, tracePoints_.data(), 1};
    return &trace_;
}

void
SenderProgram::onTraceResult(std::uint32_t, const sim::MemOp &,
                             const sim::OpResult &res, sim::ProcView &)
{
    // The hook sits on the slot spin: re-base the period clock and
    // advance to the next symbol, as the per-op Wait result does.
    tlast_ = res.tsc;
    ++symbolIdx_;
    phase_ = Phase::Encode;
}

void
SenderProgram::onResult(const sim::MemOp &op, const sim::OpResult &res,
                        sim::ProcView &)
{
    switch (op.kind) {
      case sim::MemOp::Kind::TscRead:
        tlast_ = res.tsc;
        phase_ = Phase::Encode;
        break;
      case sim::MemOp::Kind::StoreBatch:
        phase_ = Phase::Wait;
        break;
      case sim::MemOp::Kind::SpinUntil:
        tlast_ = res.tsc; // Algorithm 3: Tlast = TSC (post-spin)
        ++symbolIdx_;
        phase_ = Phase::Encode;
        break;
      default:
        break;
    }
}

} // namespace wb::chan
