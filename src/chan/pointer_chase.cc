#include "chan/pointer_chase.hh"

namespace wb::chan
{

PointerChase::PointerChase(std::vector<Addr> lines)
    : order_(std::move(lines))
{
}

void
PointerChase::reshuffle(Rng &rng)
{
    rng.shuffle(order_);
}

std::vector<sim::MemOp>
PointerChase::measurementOps() const
{
    std::vector<sim::MemOp> ops;
    ops.reserve(order_.size() + 2);
    ops.push_back(sim::MemOp::tscRead());
    for (Addr a : order_)
        ops.push_back(sim::MemOp::load(a));
    ops.push_back(sim::MemOp::tscRead());
    return ops;
}

std::vector<sim::MemOp>
PointerChase::batchedMeasurementOps() const
{
    return {sim::MemOp::tscRead(),
            sim::MemOp::loadBatch(order_.data(), order_.size()),
            sim::MemOp::tscRead()};
}

} // namespace wb::chan
