#include "chan/l2_channel.hh"

#include "chan/pointer_chase.hh"
#include "chan/receiver.hh"
#include "chan/set_mapping.hh"
#include "common/log.hh"
#include "sim/smt_core.hh"

namespace wb::chan
{

L2Sets
makeL2Sets(const sim::AddressLayout &l1Layout,
           const sim::AddressLayout &l2Layout, unsigned targetL2Set,
           unsigned senderCount, unsigned pusherCount,
           unsigned replacementSize)
{
    L2Sets sets;
    sets.senderLines =
        linesForSet(l2Layout, targetL2Set, senderCount, /*tagBase=*/1);
    sets.replacementA = linesForSet(l2Layout, targetL2Set,
                                    replacementSize, /*tagBase=*/0x1000);
    sets.replacementB = linesForSet(l2Layout, targetL2Set,
                                    replacementSize, /*tagBase=*/0x2000);

    // Pushers: same L1 set as the target L2 set's lines, but in other
    // L2 sets. The L1 index is the low bits of the L2 index.
    const unsigned l1Set =
        targetL2Set & (l1Layout.numSets() - 1);
    const unsigned groups =
        l2Layout.numSets() / l1Layout.numSets(); // L2 sets per L1 set
    unsigned produced = 0;
    for (Addr tag = 0x50; produced < pusherCount; ++tag) {
        for (unsigned g = 0; g < groups && produced < pusherCount; ++g) {
            const unsigned l2Set = l1Set + g * l1Layout.numSets();
            if (l2Set == targetL2Set)
                continue; // never touch the target L2 set
            sets.pushers.push_back(l2Layout.compose(l2Set, tag));
            ++produced;
        }
    }
    return sets;
}

L2SenderProgram::L2SenderProgram(std::vector<Addr> lines,
                                 std::vector<Addr> pushers,
                                 std::vector<bool> bits, unsigned d,
                                 Cycles ts)
    : lines_(std::move(lines)), pushers_(std::move(pushers)),
      bits_(std::move(bits)), d_(d), ts_(ts)
{
    if (d_ > lines_.size())
        fatalf("L2SenderProgram: needs ", d_, " lines, got ",
               lines_.size());
    if (pushers_.empty())
        fatalf("L2SenderProgram: needs pusher lines");
}

std::optional<sim::MemOp>
L2SenderProgram::next(sim::ProcView &)
{
    switch (phase_) {
      case Phase::Init:
        return sim::MemOp::tscRead();
      case Phase::Store:
        return sim::MemOp::store(lines_[lineIdx_]);
      case Phase::Push:
        return sim::MemOp::load(pushers_[pushIdx_]);
      case Phase::Wait:
        return sim::MemOp::spinUntil(tlast_ + ts_);
    }
    return sim::MemOp::halt();
}

void
L2SenderProgram::onResult(const sim::MemOp &op, const sim::OpResult &res,
                          sim::ProcView &)
{
    auto beginSlot = [this]() {
        if (bitIdx_ >= bits_.size()) {
            done_ = true;
            phase_ = Phase::Wait; // final spin, then the run ends
            return;
        }
        lineIdx_ = 0;
        pushIdx_ = 0;
        phase_ = bits_[bitIdx_] ? Phase::Store : Phase::Wait;
    };

    switch (op.kind) {
      case sim::MemOp::Kind::TscRead:
        tlast_ = res.tsc;
        beginSlot();
        break;
      case sim::MemOp::Kind::Store:
        pushIdx_ = 0;
        phase_ = Phase::Push;
        break;
      case sim::MemOp::Kind::Load:
        ++pushIdx_;
        if (pushIdx_ >= pushers_.size()) {
            // This line's write-back has been forced into L2.
            ++lineIdx_;
            phase_ = lineIdx_ < d_ ? Phase::Store : Phase::Wait;
        }
        break;
      case sim::MemOp::Kind::SpinUntil:
        if (done_) {
            phase_ = Phase::Init; // unreachable; next() halts via done_
            bits_.clear();
            break;
        }
        tlast_ = res.tsc;
        ++bitIdx_;
        beginSlot();
        break;
      default:
        break;
    }
}

namespace
{

/** In-situ calibration of the two L2-channel centroids. */
std::pair<double, double>
calibrateL2(const L2ChannelConfig &cfg, Rng &rng)
{
    sim::Hierarchy hierarchy(cfg.platform, &rng);
    const auto &l1Layout = hierarchy.l1().layout();
    const auto &l2Layout = hierarchy.l2().layout();
    auto sets = makeL2Sets(l1Layout, l2Layout, cfg.targetL2Set,
                           cfg.platform.l2.ways, cfg.pusherLines,
                           cfg.replacementSize);

    sim::AddressSpace senderSpace(1);
    sim::AddressSpace receiverSpace(2);
    PointerChase chaseA(sets.replacementA);
    PointerChase chaseB(sets.replacementB);

    // Warm both replacement sets (first pass pulls them from DRAM).
    for (int sweep = 0; sweep < 3; ++sweep) {
        hierarchy.accessBatch(1, receiverSpace, sets.replacementA,
                              false);
        hierarchy.accessBatch(1, receiverSpace, sets.replacementB,
                              false);
    }

    Samples s0, s1;
    bool useA = true;
    for (unsigned m = 0; m < 2 * cfg.calMeasurements + 4; ++m) {
        const bool one = rng.flip();
        if (one) {
            for (unsigned i = 0; i < cfg.d; ++i) {
                hierarchy.access(0,
                                 senderSpace.translate(sets.senderLines[i]),
                                 true);
                // Push the dirty line out of L1 into L2.
                hierarchy.accessBatch(0, senderSpace, sets.pushers,
                                      false);
            }
        }
        PointerChase &chase = useA ? chaseA : chaseB;
        chase.reshuffle(rng);
        double lat = measureChaseOffline(hierarchy, 1, receiverSpace,
                                         chase.order(), cfg.noise);
        if (cfg.noise.measBaseSigma > 0.0)
            lat += rng.gaussian(0.0, cfg.noise.measBaseSigma);
        lat = cfg.noise.observeDuration(lat, rng); // observer choke point
        useA = !useA;
        if (m >= 4)
            (one ? s1 : s0).add(lat);
    }
    return {s0.median(), s1.median()};
}

} // namespace

L2ChannelResult
runL2Channel(const L2ChannelConfig &cfg)
{
    Rng rootRng(cfg.seed);
    Rng calRng = rootRng.split();
    Rng frameRng = rootRng.split();
    Rng runRng = rootRng.split();

    auto [c0, c1] = calibrateL2(cfg, calRng);

    const BitVec frame = randomFrame(cfg.frameBits - 16, frameRng);
    BitVec allBits;
    for (unsigned f = 0; f < cfg.frames; ++f)
        allBits.insert(allBits.end(), frame.begin(), frame.end());

    sim::Hierarchy hierarchy(cfg.platform, &runRng);
    sim::SmtCore core(hierarchy, cfg.noise, runRng);
    auto sets = makeL2Sets(hierarchy.l1().layout(),
                           hierarchy.l2().layout(), cfg.targetL2Set,
                           cfg.platform.l2.ways, cfg.pusherLines,
                           cfg.replacementSize);

    L2SenderProgram sender(sets.senderLines, sets.pushers, allBits,
                           cfg.d, cfg.ts);
    const std::size_t sampleCount = allBits.size() + 8 + 96;
    ReceiverProgram receiver(sets.replacementA, sets.replacementB,
                             cfg.tr, sampleCount, /*warmupSweeps=*/3);

    const Cycles senderStart = 8 * cfg.ts;
    const ThreadId senderTid =
        core.addThread(&sender, sim::AddressSpace(1), senderStart);
    const ThreadId receiverTid =
        core.addThread(&receiver, sim::AddressSpace(2), 0);

    const Cycles horizon = senderStart +
        Cycles(allBits.size() + 8) * (cfg.ts + 60) + 400000;
    const Cycles end = core.run(horizon);

    L2ChannelResult res;
    res.latencies = receiver.latencies();
    Classifier classifier({c0, c1});
    const Encoding enc = Encoding::binary(1);
    auto dec = decodeTransmission(res.latencies, classifier, enc, frame,
                                  cfg.frames);
    res.ber = dec.ber;
    res.breakdown = dec.breakdown;
    res.aligned = dec.aligned;
    res.framesScored = dec.framesScored;
    res.framesExpected = dec.framesExpected;
    res.rateKbps = cfg.rateKbps();
    res.goodputKbps = res.rateKbps * (1.0 - std::min(1.0, res.ber));
    res.sentFrame = frame;
    res.decodedBits = dec.bitstream;
    res.calibrationMedians = {c0, c1};
    res.senderCounters = hierarchy.counters(senderTid);
    res.receiverCounters = hierarchy.counters(receiverTid);
    res.simulatedCycles = end;
    return res;
}

} // namespace wb::chan
