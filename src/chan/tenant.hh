/**
 * @file
 * Many-tenant WB-channel harness for sliced LLCs.
 *
 * The cross-core channel (chan/cross_core.hh) models one
 * sender/receiver pair that knows the LLC geometry and builds its
 * line pools by address arithmetic. On a slice-hashed LLC
 * (sim/slice_hash.hh) that arithmetic breaks — and a datacenter
 * socket does not host one pair, it hosts hundreds. This harness
 * stands up N concurrent tenant pairs on one MultiCoreSystem and runs
 * the full attack pipeline each pair would run on real hardware:
 *
 *  1. The receiver picks a victim line and reduces a same-set-index
 *     candidate pool to a minimal eviction set with timing tests only
 *     (chan::EvictionSetFinder) — no slice-hash knowledge.
 *  2. The sender finds lines congruent with the receiver's set by a
 *     cooperative conflict test: the receiver times a sweep of its
 *     set while the sender dirties one candidate; a slowdown means
 *     the candidate landed in the same slice-set.
 *  3. Both parties run a slotted binary channel: a '1' symbol dirties
 *     the sender's congruent lines, the receiver's timed sweep then
 *     pays the eviction + dirty-drain penalties
 *     (LatencyModel::llcDirtyEvictPenalty — the paper's WB signal);
 *     a '0' sweep stays at steady-state hit latency. A training
 *     preamble of known bits sets each pair's decision threshold.
 *
 * All pairs share the socket: their slots interleave in one global
 * loop, so pairs whose sets collide on a slice-set evict each other
 * and pairs time-sharing a core stretch its slot budget — the two
 * interference mechanisms the sweep quantifies as load grows
 * (docs/TENANTS.md). examples/tenant_scaling.cpp sweeps the pair
 * count over sim::SweepRunner and prints the scaling table CI
 * archives.
 */

#ifndef WB_CHAN_TENANT_HH
#define WB_CHAN_TENANT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/hierarchy.hh"
#include "sim/multicore.hh"
#include "sim/platform.hh"

namespace wb::chan
{

/** Configuration of one many-tenant sweep run. */
struct TenantSweepConfig
{
    /** Registry preset this config was built from (see usePlatform). */
    std::string platformName = "dc-sliced-64core";
    sim::HierarchyParams platform;
    sim::NoiseModel noise;

    /** Cores the MultiCoreSystem instantiates (>= 2). */
    unsigned cores = 64;

    /** Concurrent sender/receiver tenant pairs on the socket. */
    unsigned pairs = 64;

    /** Known alternating-bit slots that train each pair's threshold. */
    unsigned trainingSlots = 16;

    /** Random payload bits (= slots) each pair transmits after training. */
    unsigned payloadBits = 96;

    /** Congruent lines a sender dirties per '1' symbol (redundancy d). */
    unsigned d = 4;

    /**
     * Same-set-index lines in each discovery pool. With 8 slices a
     * pool line lands in the victim's slice with probability 1/8, so
     * the pool must comfortably exceed 8x the LLC associativity
     * (256 gives ~32 expected in-slice lines for 16 ways).
     */
    unsigned candidatePool = 256;

    /**
     * Aggregate-LLC set indices the pairs draw their target sets
     * from. Shrinking the range forces slice-set collisions — the
     * cross-pair interference axis (two pairs collide when they agree
     * on both the set index and, by hash luck, the slice).
     */
    unsigned targetSetRange = 64;

    /** Nominal protocol slot period, for capacity-rate conversion. */
    Cycles slotCycles = 6000;

    double cpuGhz = 3.0; //!< clock for cycles -> kbps conversion

    std::uint64_t seed = 1;

    /** Resolve a registry preset into the fields above. */
    TenantSweepConfig &
    usePlatform(const std::string &name)
    {
        const sim::Platform &p = sim::platform(name);
        platformName = p.name;
        platform = p.params;
        noise = p.noise;
        cores = std::max(2u, p.cores);
        return *this;
    }
};

/** Outcome of one tenant pair inside a sweep. */
struct TenantPairResult
{
    unsigned senderCore = 0;
    unsigned receiverCore = 0;

    /** Agreed aggregate-LLC set index (what the parties chose). */
    unsigned targetSet = 0;

    /**
     * Ground-truth slice of the victim line — experimenter's view for
     * the interference analysis, never shown to the tenants.
     */
    unsigned slice = 0;

    /**
     * Receiver's discovery self-verified minimal AND the sender found
     * all d congruent lines. Undiscovered pairs still transmit (their
     * BER sits near coin-flip and contributes ~0 capacity).
     */
    bool discovered = false;

    unsigned senderLineCount = 0;        //!< congruent lines found (<= d)
    std::uint64_t discoveryTests = 0;    //!< receiver eviction tests
    std::uint64_t discoveryAccesses = 0; //!< receiver discovery accesses

    /** Payload bit-error rate of this pair. */
    double ber = 0.0;

    /**
     * Another pair targets the same (slice, slice-set) — ground
     * truth; these are the pairs expected to interfere.
     */
    bool collides = false;
};

/** Socket-wide outcome of one many-tenant sweep run. */
struct TenantSweepResult
{
    std::vector<TenantPairResult> pairs;

    unsigned discovered = 0;     //!< pairs with full discovery success
    unsigned collidingPairs = 0; //!< pairs sharing a slice-set

    double meanBer = 0.0;
    double maxBer = 0.0;
    double meanBerClean = 0.0;     //!< mean BER over non-colliding pairs
    double meanBerColliding = 0.0; //!< mean BER over colliding pairs

    /**
     * Aggregate channel capacity, sum over pairs of the binary
     * symmetric channel rate 1 - H2(min(ber, 1 - ber)) in bits per
     * slot.
     */
    double aggregateBitsPerSlot = 0.0;

    /**
     * Capacity in kbps at cpuGhz, paced by the *effective* slot
     * period: the configured slotCycles, stretched when the busiest
     * core's per-slot work no longer fits it (tenants time-sharing a
     * core saturate its slot budget — the second interference axis).
     */
    double aggregateKbps = 0.0;

    /** Mean busiest-core cycles per slot / slotCycles (>1 = saturated). */
    double busiestCoreUtil = 0.0;

    /** Coherence traffic of the signaling phases (directory mode). */
    sim::CoherenceStats coherence;

    /**
     * Private-cache probes the retired global scan would have issued
     * for the same events — the denominator of the O(cores) ->
     * O(sharers) win reported in docs/PERF.md.
     */
    std::uint64_t scanProbeEquivalent = 0;
};

/**
 * Run one many-tenant sweep: set up cfg.pairs tenant pairs (discovery
 * + conflict search), run the slotted channel, decode, and aggregate.
 * Deterministic for a given config (noise included via the seed).
 */
TenantSweepResult runTenantSweep(const TenantSweepConfig &cfg);

} // namespace wb::chan

#endif // WB_CHAN_TENANT_HH
