#include "chan/receiver.hh"

#include "common/log.hh"

namespace wb::chan
{

ReceiverProgram::ReceiverProgram(std::vector<Addr> replacementA,
                                 std::vector<Addr> replacementB, Cycles tr,
                                 std::size_t sampleCount,
                                 unsigned warmupSweeps)
    : chaseA_(std::move(replacementA)), chaseB_(std::move(replacementB)),
      tr_(tr), sampleCount_(sampleCount), warmupSweeps_(warmupSweeps)
{
    for (unsigned sweep = 0; sweep < warmupSweeps_; ++sweep) {
        for (Addr a : chaseA_.order())
            warmupOrder_.push_back(a);
        for (Addr a : chaseB_.order())
            warmupOrder_.push_back(a);
    }
}

std::vector<double>
ReceiverProgram::latencies() const
{
    std::vector<double> out;
    out.reserve(obs_.size());
    for (const auto &o : obs_)
        out.push_back(o.latency);
    return out;
}

void
ReceiverProgram::startMeasurement(Rng &rng)
{
    PointerChase &chase = useA_ ? chaseA_ : chaseB_;
    chase.reshuffle(rng);
    measureOps_ = chase.batchedMeasurementOps();
    if (ditherGranule_ > 1) {
        // Coarse-timer observer: offset each measurement by a uniform
        // delay in [0, granule) so the quantized reading becomes an
        // unbiased estimator of the true latency — the property the
        // repetition decoder's block averaging integrates against
        // (docs/OBSERVERS.md). A sandboxed receiver gets this phase
        // randomness for free; modelling it explicitly keeps the
        // estimator honest instead of locking every sample to the
        // same counter phase.
        measureOps_.insert(measureOps_.begin(),
                           sim::MemOp::delay(rng.below(ditherGranule_)));
    }
    measurePos_ = 0;
    sawFirstTsc_ = false;
    phase_ = Phase::Measure;
}

std::optional<sim::MemOp>
ReceiverProgram::next(sim::ProcView &)
{
    switch (phase_) {
      case Phase::Warmup:
        // Untimed initialization: all warm-up sweeps in one batch.
        if (!warmupDone_ && !warmupOrder_.empty()) {
            warmupDone_ = true;
            return sim::MemOp::loadBatch(warmupOrder_.data(),
                                         warmupOrder_.size());
        }
        phase_ = Phase::Init;
        return sim::MemOp::tscRead();
      case Phase::Init:
        return sim::MemOp::tscRead();
      case Phase::Wait:
        return sim::MemOp::spinUntil(tlast_ + tr_);
      case Phase::Measure:
        if (measurePos_ < measureOps_.size())
            return measureOps_[measurePos_];
        panic("ReceiverProgram: measurement ops exhausted unexpectedly");
      case Phase::Done:
        return sim::MemOp::halt();
    }
    return sim::MemOp::halt();
}

const sim::Trace *
ReceiverProgram::nextTrace(sim::ProcView &view)
{
    // Only the steady-state Wait->Measure sample cycle is compiled;
    // Warmup/Init (a handful of startup ops) and Done stay per-op.
    if (phase_ != Phase::Wait)
        return nullptr;
    // A coarse-timer observer's measurement prepends a per-sample
    // dither delay drawn at measurement start; keep that variant on
    // the per-op path so the draw order matches startMeasurement()
    // exactly (the default observer compiles traces as before).
    if (view.noise().observer.coarseTimer())
        return nullptr;
    // The sweep targets the set the *current* useA_ selects, but its
    // order is drawn at the post-spin hook: reshuffle() permutes the
    // chase's order storage in place, so the batch op compiled here
    // reads the fresh permutation when it executes.
    PointerChase &chase = useA_ ? chaseA_ : chaseB_;
    traceOps_[0] = sim::MemOp::spinUntil(tlast_ + tr_);
    traceOps_[1] = sim::MemOp::tscRead();
    traceOps_[2] = sim::MemOp::loadBatch(chase.order().data(),
                                         chase.order().size());
    traceOps_[3] = sim::MemOp::tscRead();
    tracePoints_ = {0, 1, 3};
    trace_ = {traceOps_.data(), 4, tracePoints_.data(), 3};
    return &trace_;
}

void
ReceiverProgram::onTraceResult(std::uint32_t opIdx, const sim::MemOp &op,
                               const sim::OpResult &res,
                               sim::ProcView &view)
{
    if (op.kind == sim::MemOp::Kind::SpinUntil) {
        // Post-spin: re-base Tlast and draw the fresh chase order at
        // the exact stream position the per-op path reshuffles at.
        tlast_ = res.tsc;
        (useA_ ? chaseA_ : chaseB_).reshuffle(view.rng());
        return;
    }
    if (opIdx == 1) {
        tscStart_ = res.tsc;
        return;
    }
    // Final TSC read: record the traversal and decide what's next.
    // Signed difference: a jittered observer can read end < start.
    double latency = static_cast<double>(res.tsc) -
                     static_cast<double>(tscStart_);
    const double sigma = view.noise().measSigma(tr_);
    if (sigma > 0.0)
        latency += view.rng().gaussian(0.0, sigma);
    obs_.push_back({latency, view.now()});
    useA_ = !useA_; // Algorithm 2: alternate A and B
    if (obs_.size() >= sampleCount_) {
        done_ = true;
        phase_ = Phase::Done;
    } else {
        phase_ = Phase::Wait;
    }
}

void
ReceiverProgram::onResult(const sim::MemOp &op, const sim::OpResult &res,
                          sim::ProcView &view)
{
    switch (phase_) {
      case Phase::Warmup:
        // The warm-up batch completed; next() moves on to Init.
        break;
      case Phase::Init:
        // The Init phase consists of one TscRead; the phase was already
        // advanced by next(), so this result belongs to that read.
        tlast_ = res.tsc;
        phase_ = Phase::Wait;
        break;
      case Phase::Wait:
        tlast_ = res.tsc; // Algorithm 3: Tlast = TSC (post-spin)
        ditherGranule_ = view.noise().observer.coarseTimer()
                             ? view.noise().timerGranule()
                             : 1;
        startMeasurement(view.rng());
        break;
      case Phase::Measure:
        ++measurePos_;
        if (op.kind == sim::MemOp::Kind::TscRead) {
            if (!sawFirstTsc_) {
                sawFirstTsc_ = true;
                tscStart_ = res.tsc;
            } else {
                double latency = static_cast<double>(res.tsc) -
                                 static_cast<double>(tscStart_);
                const double sigma = view.noise().measSigma(tr_);
                if (sigma > 0.0)
                    latency += view.rng().gaussian(0.0, sigma);
                obs_.push_back({latency, view.now()});
                useA_ = !useA_; // Algorithm 2: alternate A and B
                if (obs_.size() >= sampleCount_) {
                    done_ = true;
                    phase_ = Phase::Done;
                } else {
                    phase_ = Phase::Wait;
                }
            }
        }
        break;
      case Phase::Done:
        break;
    }
}

} // namespace wb::chan
