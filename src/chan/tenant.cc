#include "chan/tenant.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "chan/eviction_finder.hh"
#include "chan/set_mapping.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "sim/address.hh"

namespace wb::chan
{

namespace
{

Cycles
medianOf(std::vector<Cycles> v)
{
    if (v.empty())
        return 0;
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

/** Binary-symmetric-channel rate 1 - H2(p), p folded into [0, 1/2]. */
double
bscRate(double ber)
{
    double p = std::min(ber, 1.0 - ber);
    if (p <= 0.0)
        return 1.0;
    if (p >= 0.5)
        return 0.0;
    return 1.0 + p * std::log2(p) + (1.0 - p) * std::log2(1.0 - p);
}

/** Everything one tenant pair carries through the sweep. */
struct PairState
{
    unsigned senderCore = 0;
    unsigned receiverCore = 0;
    ThreadId tid = 0;
    unsigned targetSet = 0;
    Addr victim = 0;                //!< physical victim line
    std::vector<Addr> evictionSet;  //!< receiver's discovered set (phys)
    std::vector<Addr> senderLines;  //!< sender's congruent lines (phys)
    std::vector<std::uint8_t> bits; //!< payload bits to transmit
    std::vector<Cycles> slotLats;   //!< receiver sweep latency per slot
    TenantPairResult out;
};

/** Translate a pool of virtual lines through @p space. */
std::vector<Addr>
toPhysical(const sim::AddressSpace &space, const std::vector<Addr> &vas)
{
    std::vector<Addr> pas;
    pas.reserve(vas.size());
    for (Addr va : vas)
        pas.push_back(space.translate(va));
    return pas;
}

} // namespace

TenantSweepResult
runTenantSweep(const TenantSweepConfig &cfg)
{
    if (cfg.cores < 2)
        fatalf("runTenantSweep: needs >= 2 cores, got ", cfg.cores);
    if (cfg.trainingSlots < 2 || cfg.payloadBits == 0)
        fatalf("runTenantSweep: needs >= 2 training slots and "
               "payload bits");

    TenantSweepResult result;
    if (cfg.pairs == 0)
        return result;

    Rng root(cfg.seed);
    Rng noiseRng = root.split();
    sim::MultiCoreSystem mc(cfg.platform, cfg.cores, &noiseRng);

    const sim::AddressLayout llcLayout(cfg.platform.llc.numSets());
    const unsigned ways = cfg.platform.llc.ways;
    const unsigned setRange = std::min<unsigned>(
        std::max(1u, cfg.targetSetRange), cfg.platform.llc.numSets());
    // Congruence-probe margin: a conflicting candidate costs the
    // timed sweep at least one LLC-miss-instead-of-hit. The parties
    // know the platform's latency corners from calibration.
    const Cycles hitLat = cfg.platform.lat.llcHit;
    const Cycles memLat = cfg.platform.lat.mem;
    const Cycles probeMargin = memLat > hitLat ? (memLat - hitLat) / 2 : 1;

    // --- Per-pair setup: discovery, then the conflict search ---
    std::vector<PairState> pairs(cfg.pairs);
    for (unsigned p = 0; p < cfg.pairs; ++p) {
        PairState &st = pairs[p];
        Rng prng = root.split();
        Rng bitsRng = root.split();

        // Senders land on even cores, receivers on odd cores (the
        // preset core counts are even); pairs beyond the core count
        // time-share, which is exactly the load axis under study.
        st.senderCore = (2 * p) % cfg.cores;
        st.receiverCore = (2 * p + 1) % cfg.cores;
        st.tid = ThreadId(2 * p / cfg.cores);
        st.targetSet = unsigned(prng.below(setRange));
        st.out.senderCore = st.senderCore;
        st.out.receiverCore = st.receiverCore;
        st.out.targetSet = st.targetSet;

        // Disjoint address spaces per tenant: physical lines never
        // overlap across pairs, and the asid bits feed the slice
        // hash, so every pool scatters independently.
        const sim::AddressSpace receiverSpace(2 * p + 2);
        const sim::AddressSpace senderSpace(2 * p + 3);

        const Addr victimVa =
            linesForSet(llcLayout, st.targetSet, 1, /*tagBase=*/1)[0];
        st.victim = receiverSpace.translate(victimVa);
        st.out.slice = mc.sliceOf(st.victim);

        // 1. Receiver: reduce the candidate pool to a minimal
        //    eviction set with timing tests only.
        EvictionFinderConfig fc;
        fc.associativity = ways;
        EvictionSetFinder finder(mc.port(st.receiverCore), st.tid, fc);
        EvictionSetResult found = finder.findFor(
            st.victim,
            toPhysical(receiverSpace,
                       linesForSet(llcLayout, st.targetSet,
                                   cfg.candidatePool, /*tagBase=*/0x100)),
            prng);
        st.out.discoveryTests = found.timingTests;
        st.out.discoveryAccesses = found.accesses;
        // A failed reduction leaves a large set; truncating keeps the
        // slot loop cheap and the pair honestly near coin-flip.
        if (found.set.size() > ways)
            found.set.resize(ways);
        st.evictionSet = std::move(found.set);

        // 2. Sender: cooperative conflict search. The receiver times
        //    a sweep of its set while the sender dirties a candidate;
        //    congruent candidates push one set line out of the slice.
        const std::vector<Addr> senderPool = toPhysical(
            senderSpace, linesForSet(llcLayout, st.targetSet,
                                     cfg.candidatePool, /*tagBase=*/0x100));
        auto sweep = [&] {
            return mc.accessBatch(st.receiverCore, st.tid, st.evictionSet,
                                  false)
                .totalLatency;
        };
        for (int warm = 0; warm < 3; ++warm)
            sweep();
        std::vector<Cycles> baseSamples;
        for (int s = 0; s < 5; ++s)
            baseSamples.push_back(sweep());
        const Cycles base = medianOf(std::move(baseSamples));
        for (Addr cand : senderPool) {
            if (st.senderLines.size() >= cfg.d)
                break;
            sweep(); // restore steady state after the previous probe
            sweep();
            mc.access(st.senderCore, st.tid, cand, /*isWrite=*/true);
            if (sweep() >= base + probeMargin)
                st.senderLines.push_back(cand);
        }
        st.out.senderLineCount = unsigned(st.senderLines.size());
        st.out.discovered =
            found.verifiedMinimal && st.senderLines.size() == cfg.d;

        st.bits.reserve(cfg.payloadBits);
        for (unsigned b = 0; b < cfg.payloadBits; ++b)
            st.bits.push_back(bitsRng.flip() ? 1 : 0);
    }

    // Ground-truth collision marking: pairs agreeing on a
    // (slice, slice-set) are the ones expected to interfere.
    {
        const unsigned sliceSets =
            cfg.platform.llc.numSets() / std::max(1u, cfg.platform.llcSlices);
        std::unordered_map<std::uint64_t, unsigned> keyCount;
        auto keyOf = [&](const PairState &st) {
            const Addr la = sim::AddressLayout::lineAddr(st.victim);
            return (std::uint64_t(st.out.slice) << 32) |
                   (la & (sliceSets - 1));
        };
        for (const PairState &st : pairs)
            ++keyCount[keyOf(st)];
        for (PairState &st : pairs)
            st.out.collides = keyCount[keyOf(st)] > 1;
    }

    // --- Slotted channel: training preamble, then payload ---
    // Counters restart here so the coherence numbers describe the
    // signaling phases, not the setup churn.
    mc.resetCounters();
    const unsigned slots = cfg.trainingSlots + cfg.payloadBits;
    std::vector<Cycles> coreCycles(cfg.cores);
    double busiestSum = 0.0;
    for (unsigned slot = 0; slot < slots; ++slot) {
        std::fill(coreCycles.begin(), coreCycles.end(), 0);
        // Sender half-slot: every pair's '1' dirties its congruent
        // lines. All senders act before any receiver times, the same
        // phase alignment a slotted protocol gives each single pair.
        for (PairState &st : pairs) {
            const bool one = slot < cfg.trainingSlots
                                 ? slot % 2 == 0
                                 : st.bits[slot - cfg.trainingSlots] != 0;
            if (one && !st.senderLines.empty())
                coreCycles[st.senderCore] +=
                    mc.accessBatch(st.senderCore, st.tid, st.senderLines,
                                   /*isWrite=*/true)
                        .totalLatency;
        }
        // Receiver half-slot: timed sweeps (the decode observable).
        for (PairState &st : pairs) {
            const Cycles lat =
                mc.accessBatch(st.receiverCore, st.tid, st.evictionSet,
                               false)
                    .totalLatency;
            coreCycles[st.receiverCore] += lat;
            st.slotLats.push_back(lat);
        }
        busiestSum += double(
            *std::max_element(coreCycles.begin(), coreCycles.end()));
    }
    result.coherence = mc.coherenceStats();
    result.scanProbeEquivalent =
        (result.coherence.invalidateEvents +
         result.coherence.snoopEvents) *
            (cfg.cores - 1) +
        (result.coherence.backInvalEvents +
         result.coherence.flushEvents) *
            cfg.cores;

    // --- Decode and aggregate ---
    double berSum = 0.0, cleanSum = 0.0, collideSum = 0.0;
    unsigned cleanCount = 0, collideCount = 0;
    for (PairState &st : pairs) {
        std::vector<Cycles> ones, zeros;
        for (unsigned slot = 0; slot < cfg.trainingSlots; ++slot)
            (slot % 2 == 0 ? ones : zeros).push_back(st.slotLats[slot]);
        const double thr =
            (double(medianOf(std::move(ones))) +
             double(medianOf(std::move(zeros)))) /
            2.0;
        unsigned errors = 0;
        for (unsigned b = 0; b < cfg.payloadBits; ++b) {
            const bool decoded =
                double(st.slotLats[cfg.trainingSlots + b]) > thr;
            if (decoded != (st.bits[b] != 0))
                ++errors;
        }
        st.out.ber = double(errors) / double(cfg.payloadBits);

        berSum += st.out.ber;
        result.maxBer = std::max(result.maxBer, st.out.ber);
        if (st.out.collides) {
            ++result.collidingPairs;
            collideSum += st.out.ber;
            ++collideCount;
        } else {
            cleanSum += st.out.ber;
            ++cleanCount;
        }
        if (st.out.discovered)
            ++result.discovered;
        result.aggregateBitsPerSlot += bscRate(st.out.ber);
        result.pairs.push_back(st.out);
    }
    result.meanBer = berSum / double(cfg.pairs);
    result.meanBerClean =
        cleanCount ? cleanSum / double(cleanCount) : 0.0;
    result.meanBerColliding =
        collideCount ? collideSum / double(collideCount) : 0.0;

    const double busiestMean = busiestSum / double(slots);
    result.busiestCoreUtil = busiestMean / double(cfg.slotCycles);
    const double effectiveSlot =
        std::max(double(cfg.slotCycles), busiestMean);
    result.aggregateKbps =
        result.aggregateBitsPerSlot * cfg.cpuGhz * 1e6 / effectiveSlot;
    return result;
}

} // namespace wb::chan
