/**
 * @file
 * The WB-channel sender (paper Algorithm 1 + sender half of
 * Algorithm 3).
 *
 * Every Ts cycles the sender encodes one symbol by dirtying d lines of
 * the target set (d = 0 means no access at all) with one batched store
 * sweep, then busy-waits for the period boundary and re-bases its
 * period clock on the post-spin timestamp, exactly as Algorithm 3's
 * `while (TSC < Tlast + Ts); Tlast = TSC;` does.
 */

#ifndef WB_CHAN_SENDER_HH
#define WB_CHAN_SENDER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/smt_core.hh"

namespace wb::chan
{

/** Sender state machine. */
class SenderProgram : public sim::Program
{
  public:
    /**
     * @param lines sender-owned lines mapping to the target set; at
     *        least max(dSequence) entries
     * @param dSequence dirty-line count per symbol slot, in order
     * @param ts sending period in cycles (Algorithm 3's Ts)
     */
    SenderProgram(std::vector<Addr> lines, std::vector<unsigned> dSequence,
                  Cycles ts);

    std::optional<sim::MemOp> next(sim::ProcView &view) override;
    void onResult(const sim::MemOp &op, const sim::OpResult &res,
                  sim::ProcView &view) override;

    /**
     * One symbol slot compiled as a trace: the encode store sweep (when
     * d > 0) plus the period spin, with a result hook on the spin — the
     * post-spin timestamp re-bases Tlast, which the next slot's spin
     * target depends on, so a slot boundary is the sender's
     * data-dependent fallback point.
     */
    const sim::Trace *nextTrace(sim::ProcView &view) override;
    void onTraceResult(std::uint32_t opIdx, const sim::MemOp &op,
                       const sim::OpResult &res,
                       sim::ProcView &view) override;

    /** True once every symbol has been modulated. */
    bool done() const { return done_; }

    /** Number of symbols modulated so far. */
    std::size_t symbolsSent() const { return symbolIdx_; }

  private:
    enum class Phase
    {
        Init,   //!< read the TSC once to establish Tlast
        Encode, //!< issue the current symbol's batched store sweep
        Wait    //!< spin until Tlast + Ts
    };

    std::vector<Addr> lines_;
    std::vector<unsigned> dSeq_;
    Cycles ts_;

    Phase phase_ = Phase::Init;
    std::size_t symbolIdx_ = 0;
    Cycles tlast_ = 0;
    bool done_ = false;

    std::array<sim::MemOp, 2> traceOps_{};     //!< [store sweep,] spin
    std::array<std::uint32_t, 1> tracePoints_{}; //!< hook on the spin
    sim::Trace trace_;
};

} // namespace wb::chan

#endif // WB_CHAN_SENDER_HH
