#include "chan/fec.hh"

#include "common/log.hh"
#include "common/rng.hh"

namespace wb::chan
{

HammingCode::HammingCode(unsigned interleaveDepth)
    : depth_(interleaveDepth == 0 ? 1 : interleaveDepth)
{
}

void
HammingCode::encodeNibble(const bool d[4], bool out[7])
{
    // Systematic Hamming(7,4): positions 0..3 data, 4..6 parity.
    out[0] = d[0];
    out[1] = d[1];
    out[2] = d[2];
    out[3] = d[3];
    out[4] = d[0] ^ d[1] ^ d[2];
    out[5] = d[1] ^ d[2] ^ d[3];
    out[6] = d[0] ^ d[1] ^ d[3];
}

bool
HammingCode::decodeWord(const bool c[7], bool out[4])
{
    bool w[7];
    for (int i = 0; i < 7; ++i)
        w[i] = c[i];
    const bool s0 = w[4] ^ w[0] ^ w[1] ^ w[2];
    const bool s1 = w[5] ^ w[1] ^ w[2] ^ w[3];
    const bool s2 = w[6] ^ w[0] ^ w[1] ^ w[3];
    // Syndrome -> flipped position (derived from the parity sets).
    int flip = -1;
    if (s0 && s1 && s2)
        flip = 1; // d1 is in all three parities
    else if (s0 && s1)
        flip = 2;
    else if (s0 && s2)
        flip = 0;
    else if (s1 && s2)
        flip = 3;
    else if (s0)
        flip = 4;
    else if (s1)
        flip = 5;
    else if (s2)
        flip = 6;
    if (flip >= 0)
        w[flip] = !w[flip];
    out[0] = w[0];
    out[1] = w[1];
    out[2] = w[2];
    out[3] = w[3];
    return flip >= 0;
}

std::size_t
HammingCode::codedLength(std::size_t dataBits) const
{
    const std::size_t nibbles = (dataBits + 3) / 4;
    return nibbles * 7;
}

BitVec
HammingCode::encode(const BitVec &data) const
{
    BitVec padded = data;
    while (padded.size() % 4 != 0)
        padded.push_back(false);

    BitVec flat;
    flat.reserve(padded.size() / 4 * 7);
    for (std::size_t i = 0; i < padded.size(); i += 4) {
        bool d[4] = {padded[i], padded[i + 1], padded[i + 2],
                     padded[i + 3]};
        bool c[7];
        encodeNibble(d, c);
        for (bool b : c)
            flat.push_back(b);
    }

    if (depth_ == 1)
        return flat;

    // Block interleave: groups of `depth_` codewords, emitted
    // column-first so a burst of up to depth_ adjacent channel errors
    // lands in distinct codewords.
    BitVec out;
    out.reserve(flat.size());
    const std::size_t wordsTotal = flat.size() / 7;
    for (std::size_t g = 0; g < wordsTotal; g += depth_) {
        const std::size_t inGroup =
            std::min<std::size_t>(depth_, wordsTotal - g);
        for (std::size_t col = 0; col < 7; ++col)
            for (std::size_t row = 0; row < inGroup; ++row)
                out.push_back(flat[(g + row) * 7 + col]);
    }
    return out;
}

BitVec
HammingCode::decode(const BitVec &coded, FecStats *stats) const
{
    // Deinterleave back to codeword-major order.
    const std::size_t wordsTotal = coded.size() / 7;
    const std::size_t truncated = coded.size() - wordsTotal * 7;
    if (truncated != 0 && stats == nullptr)
        fatalf("HammingCode::decode: ", truncated,
               " trailing bit(s) do not form a whole codeword; pass a "
               "FecStats sink to acknowledge the truncation");
    if (stats != nullptr)
        stats->truncatedBits = truncated;
    BitVec flat(wordsTotal * 7, false);
    if (depth_ == 1) {
        flat.assign(coded.begin(),
                    coded.begin() +
                        static_cast<std::ptrdiff_t>(wordsTotal * 7));
    } else {
        std::size_t pos = 0;
        for (std::size_t g = 0; g < wordsTotal; g += depth_) {
            const std::size_t inGroup =
                std::min<std::size_t>(depth_, wordsTotal - g);
            for (std::size_t col = 0; col < 7; ++col) {
                for (std::size_t row = 0; row < inGroup; ++row) {
                    if (pos < coded.size())
                        flat[(g + row) * 7 + col] = coded[pos];
                    ++pos;
                }
            }
        }
    }

    BitVec out;
    out.reserve(wordsTotal * 4);
    std::size_t corrected = 0;
    for (std::size_t w = 0; w < wordsTotal; ++w) {
        bool c[7];
        for (int i = 0; i < 7; ++i)
            c[i] = flat[w * 7 + static_cast<std::size_t>(i)];
        bool d[4];
        if (decodeWord(c, d))
            ++corrected;
        for (bool b : d)
            out.push_back(b);
    }
    if (stats != nullptr)
        stats->correctedBits = corrected;
    return out;
}

double
simulateResidualBer(const HammingCode &code, double flipProb,
                    std::size_t dataBits, std::uint64_t seed)
{
    Rng rng(seed);
    BitVec data = randomBits(dataBits, rng);
    BitVec coded = code.encode(data);
    for (std::size_t i = 0; i < coded.size(); ++i)
        if (rng.chance(flipProb))
            coded[i] = !coded[i];
    BitVec decoded = code.decode(coded);
    std::size_t wrong = 0;
    for (std::size_t i = 0; i < data.size(); ++i)
        if (i >= decoded.size() || decoded[i] != data[i])
            ++wrong;
    return dataBits ? double(wrong) / double(dataBits) : 0.0;
}

} // namespace wb::chan
