#include "chan/modulation.hh"

#include <algorithm>

namespace wb::chan
{

Encoding::Encoding(std::vector<unsigned> levels) : levels_(std::move(levels))
{
    const auto n = levels_.size();
    if (n < 2 || (n & (n - 1)) != 0)
        fatalf("Encoding: alphabet size must be a power of two >= 2, got ",
               n);
    bits_ = 0;
    for (auto m = n; m > 1; m >>= 1)
        ++bits_;
}

Encoding
Encoding::binary(unsigned d2)
{
    if (d2 == 0)
        fatalf("Encoding::binary: d2 must be >= 1");
    return Encoding({0, d2});
}

Encoding
Encoding::multiBit(std::vector<unsigned> levels)
{
    return Encoding(std::move(levels));
}

Encoding
Encoding::paperTwoBit()
{
    return Encoding({0, 3, 5, 8});
}

unsigned
Encoding::maxLevel() const
{
    return *std::max_element(levels_.begin(), levels_.end());
}

unsigned
Encoding::symbolAt(const BitVec &bits, std::size_t pos) const
{
    unsigned s = 0;
    for (unsigned b = 0; b < bits_; ++b) {
        const std::size_t i = pos + b;
        const bool bit = i < bits.size() ? bits[i] : false;
        s = (s << 1) | (bit ? 1u : 0u);
    }
    return s;
}

void
Encoding::appendSymbolBits(unsigned s, BitVec &out) const
{
    for (unsigned b = bits_; b-- > 0;)
        out.push_back(((s >> b) & 1u) != 0);
}

Classifier::Classifier(std::vector<double> centroids)
    : centroids_(std::move(centroids))
{
    if (centroids_.size() < 2)
        fatalf("Classifier: need at least two centroids");
    for (std::size_t i = 1; i < centroids_.size(); ++i) {
        // Defended platforms (write-through, random-fill, PLcache)
        // collapse the per-d latency distributions; epsilon-separate
        // equal centroids so decoding degrades to guessing instead of
        // aborting, and the evaluation can report BER ~= 50%.
        if (centroids_[i] <= centroids_[i - 1])
            centroids_[i] = centroids_[i - 1] + 1e-6;
        thresholds_.push_back((centroids_[i - 1] + centroids_[i]) / 2.0);
    }
}

unsigned
Classifier::classify(double latency) const
{
    unsigned s = 0;
    while (s < thresholds_.size() && latency > thresholds_[s])
        ++s;
    return s;
}

} // namespace wb::chan
