#include "chan/arq.hh"

#include <algorithm>

#include "common/log.hh"

namespace wb::chan
{

std::uint32_t
crcOf(const BitVec &bits, unsigned width)
{
    std::uint32_t poly, reg;
    if (width == 8) {
        poly = 0x07;
        reg = 0x00;
    } else if (width == 16) {
        poly = 0x1021;
        reg = 0xFFFF;
    } else {
        fatalf("crcOf: unsupported CRC width ", width, " (use 8 or 16)");
        return 0;
    }
    const std::uint32_t top = 1u << (width - 1);
    const std::uint32_t mask = (1u << width) - 1;
    for (bool bit : bits) {
        const bool msb = (reg & top) != 0;
        reg = (reg << 1) & mask;
        if (msb != bit)
            reg ^= poly;
    }
    return reg;
}

BitVec
appendCrc(const BitVec &data, unsigned width)
{
    const std::uint32_t crc = crcOf(data, width);
    BitVec out = data;
    for (unsigned b = width; b-- > 0;)
        out.push_back(((crc >> b) & 1u) != 0);
    return out;
}

bool
checkCrc(const BitVec &dataWithCrc, unsigned width)
{
    if (dataWithCrc.size() < width)
        return false;
    const BitVec data(dataWithCrc.begin(),
                      dataWithCrc.end() -
                          static_cast<std::ptrdiff_t>(width));
    std::uint32_t got = 0;
    for (std::size_t i = dataWithCrc.size() - width;
         i < dataWithCrc.size(); ++i)
        got = (got << 1) | (dataWithCrc[i] ? 1u : 0u);
    return crcOf(data, width) == got;
}

std::size_t
FrameLayout::codedBodyBits() const
{
    return HammingCode(interleaveDepth).codedLength(bodyDataBits());
}

BitVec
buildTransportFrame(const FrameLayout &layout, unsigned seq,
                    const BitVec &payload)
{
    if (payload.size() != layout.payloadBits)
        fatalf("buildTransportFrame: payload is ", payload.size(),
               " bits, layout says ", layout.payloadBits);
    if (seq >= layout.seqSpace())
        fatalf("buildTransportFrame: seq ", seq, " exceeds ",
               layout.seqBits, "-bit space");

    BitVec body = fromUint(seq, layout.seqBits);
    body.insert(body.end(), payload.begin(), payload.end());
    body = appendCrc(body, layout.crcWidth);

    BitVec frame = preamble16();
    const BitVec coded = HammingCode(layout.interleaveDepth).encode(body);
    frame.insert(frame.end(), coded.begin(), coded.end());
    // bodyDataBits is a multiple of 4 only by luck; encode() pads, so
    // the coded length must match the layout's fixed frame size.
    if (frame.size() != layout.frameBits())
        fatalf("buildTransportFrame: built ", frame.size(),
               " bits, layout says ", layout.frameBits());
    return frame;
}

ParsedFrame
parseTransportFrame(const FrameLayout &layout, const BitVec &codedBody)
{
    ParsedFrame out;
    const HammingCode code(layout.interleaveDepth);
    BitVec body = code.decode(codedBody, &out.fec);
    // decode() returns the padded data length; trim to the real body.
    if (body.size() < layout.bodyDataBits())
        return out; // cut short by the end of the stream: unusable
    body.resize(layout.bodyDataBits());
    if (!checkCrc(body, layout.crcWidth))
        return out;
    out.crcOk = true;
    out.seq = static_cast<unsigned>(
        toUint(BitVec(body.begin(),
                      body.begin() +
                          static_cast<std::ptrdiff_t>(layout.seqBits))));
    out.payload.assign(
        body.begin() + static_cast<std::ptrdiff_t>(layout.seqBits),
        body.begin() +
            static_cast<std::ptrdiff_t>(layout.seqBits +
                                        layout.payloadBits));
    return out;
}

SelectiveRepeatArq::SelectiveRepeatArq(unsigned chunks, unsigned maxRetries)
    : maxRetries_(maxRetries), state_(chunks, State::Pending),
      tries_(chunks, 0)
{
}

std::vector<unsigned>
SelectiveRepeatArq::pending() const
{
    std::vector<unsigned> out;
    for (unsigned c = 0; c < state_.size(); ++c)
        if (state_[c] == State::Pending)
            out.push_back(c);
    return out;
}

void
SelectiveRepeatArq::onDelivered(unsigned chunk)
{
    if (chunk >= state_.size())
        fatalf("SelectiveRepeatArq::onDelivered: chunk ", chunk,
               " out of range");
    if (state_[chunk] != State::Pending)
        return; // duplicate or late delivery of a failed chunk
    state_[chunk] = State::Delivered;
    ++delivered_;
}

void
SelectiveRepeatArq::onRoundEnd(const std::vector<unsigned> &sent)
{
    for (unsigned chunk : sent) {
        if (chunk >= state_.size())
            fatalf("SelectiveRepeatArq::onRoundEnd: chunk ", chunk,
                   " out of range");
        ++attempts_;
        if (tries_[chunk] > 0)
            ++retransmissions_;
        ++tries_[chunk];
        if (state_[chunk] != State::Pending)
            continue;
        if (tries_[chunk] > maxRetries_) {
            state_[chunk] = State::Failed;
            ++failed_;
        }
    }
}

bool
SelectiveRepeatArq::done() const
{
    return std::none_of(state_.begin(), state_.end(), [](State s) {
        return s == State::Pending;
    });
}

bool
SelectiveRepeatArq::isDelivered(unsigned chunk) const
{
    return chunk < state_.size() && state_[chunk] == State::Delivered;
}

} // namespace wb::chan
