/**
 * @file
 * Reliable framing for the transport layer: CRC-protected,
 * sequence-numbered frames and selective-repeat ARQ bookkeeping.
 *
 * The paper's protocol (Algorithm 3) transmits a fixed frame over and
 * over and scores whatever arrives; residual errors stay errors. The
 * transport stack instead splits a message into payload chunks, wraps
 * each in a frame the receiver can *validate* — sync preamble, sequence
 * number, payload, CRC, all but the preamble run through the Hamming
 * FEC — and retransmits the chunks whose frames never validated. ARQ
 * feedback rides the parties' out-of-band control channel (the same
 * pre-agreed channel that carries the target-set agreement); only the
 * forward direction crosses the cache.
 */

#ifndef WB_CHAN_ARQ_HH
#define WB_CHAN_ARQ_HH

#include <cstdint>
#include <vector>

#include "common/bitvec.hh"
#include "chan/fec.hh"

namespace wb::chan
{

/**
 * CRC over a bit sequence, MSB first. Width 8 uses CRC-8/ATM
 * (poly 0x07, init 0); width 16 uses CRC-16/CCITT-FALSE (poly 0x1021,
 * init 0xFFFF).
 */
std::uint32_t crcOf(const BitVec &bits, unsigned width);

/** Append the @p width-bit CRC of @p data to it. */
BitVec appendCrc(const BitVec &data, unsigned width);

/** Validate a data||CRC sequence produced by appendCrc. */
bool checkCrc(const BitVec &dataWithCrc, unsigned width);

/**
 * Bit-level layout of one transport frame:
 *
 *   [ 16-bit sync preamble | Hamming( seq | payload | CRC ) ]
 *
 * The preamble stays outside the FEC so the receiver's sliding
 * correlation sees it raw; everything behind it is interleaved
 * Hamming(7,4). Frame length is independent of the symbol encoding —
 * encodings change symbols per frame, not bits.
 */
struct FrameLayout
{
    unsigned seqBits = 6;       //!< sequence-number field width
    unsigned payloadBits = 48;  //!< message bits per frame
    unsigned crcWidth = 8;      //!< 8 or 16
    unsigned interleaveDepth = 4; //!< FEC burst-spreading depth

    /** Data bits behind the preamble, before FEC. */
    unsigned
    bodyDataBits() const
    {
        return seqBits + payloadBits + crcWidth;
    }

    /** FEC-coded body length in bits. */
    std::size_t codedBodyBits() const;

    /** Whole frame length in bits (preamble + coded body). */
    std::size_t frameBits() const { return 16 + codedBodyBits(); }

    /** Number of distinct sequence numbers. */
    unsigned seqSpace() const { return 1u << seqBits; }
};

/** Build one frame: preamble + FEC(seq | payload | crc). */
BitVec buildTransportFrame(const FrameLayout &layout, unsigned seq,
                           const BitVec &payload);

/** Outcome of parsing one coded frame body. */
struct ParsedFrame
{
    unsigned seq = 0;      //!< decoded sequence number
    BitVec payload;        //!< decoded payload bits
    bool crcOk = false;    //!< header+payload validated
    FecStats fec;          //!< corrections/truncation the FEC reported
};

/**
 * Parse a received coded frame body (the codedBodyBits() bits behind a
 * located preamble; shorter slices decode as far as they reach and are
 * CRC-rejected).
 */
ParsedFrame parseTransportFrame(const FrameLayout &layout,
                                const BitVec &codedBody);

/**
 * Selective-repeat ARQ bookkeeping over a fixed set of payload chunks.
 *
 * Each round the sender transmits a batch of pending chunks (the
 * session enforces the sequence-collision-free window); afterwards the
 * receiver's feedback marks chunks delivered. A chunk undelivered
 * after a round costs one retry; a chunk out of retries is *failed* —
 * dropped honestly rather than retried forever, which is what bounds
 * every transmission (no livelock on a dead link).
 */
class SelectiveRepeatArq
{
  public:
    /**
     * @param chunks total payload chunks in the message
     * @param maxRetries retransmissions allowed per chunk beyond the
     *        first attempt
     */
    SelectiveRepeatArq(unsigned chunks, unsigned maxRetries);

    /** Chunks still needing transmission (not delivered, not failed). */
    std::vector<unsigned> pending() const;

    /** Record a validated delivery (duplicate deliveries are no-ops). */
    void onDelivered(unsigned chunk);

    /**
     * Close one round: every chunk of @p sent that is still
     * undelivered consumed an attempt; attempts beyond the first count
     * as retransmissions, and a chunk whose retries are exhausted
     * moves to failed.
     */
    void onRoundEnd(const std::vector<unsigned> &sent);

    /** True when no chunk is pending (all delivered or failed). */
    bool done() const;

    unsigned delivered() const { return delivered_; }
    unsigned failed() const { return failed_; }
    std::uint64_t retransmissions() const { return retransmissions_; }
    std::uint64_t attempts() const { return attempts_; }
    bool isDelivered(unsigned chunk) const;

  private:
    enum class State : std::uint8_t
    {
        Pending,
        Delivered,
        Failed
    };

    unsigned maxRetries_;
    std::vector<State> state_;
    std::vector<unsigned> tries_; //!< attempts consumed per chunk
    unsigned delivered_ = 0;
    unsigned failed_ = 0;
    std::uint64_t retransmissions_ = 0;
    std::uint64_t attempts_ = 0;
};

} // namespace wb::chan

#endif // WB_CHAN_ARQ_HH
