/**
 * @file
 * Resilient transport layer for the WB covert channels.
 *
 * The paper's protocol was evaluated on a quiet machine; under the
 * OS-noise scheduler the cross-core channel collapses because nothing
 * below this layer can re-acquire synchronization after a gang freeze
 * or a migration (docs/SCHEDULER.md). The transport stack makes the
 * channels degrade gracefully instead:
 *
 *  1. **Resynchronization.** Frames are self-clocking: each starts
 *     with the raw 16-bit sync preamble, and FrameSync — a sliding-
 *     correlation state machine (Searching <-> Locked) — re-acquires
 *     frame alignment mid-stream after a deschedule swallowed slots,
 *     instead of scoring garbage for the rest of the run.
 *  2. **Adaptive symbol rate.** A rate ladder widens Ts/Tr (and falls
 *     back from multi-bit to binary encoding) when the measured
 *     per-round frame error rate crosses a threshold; hysteresis
 *     (a sustained-good-rounds requirement before stepping back up)
 *     keeps an idle burst from thrashing the rate.
 *  3. **ARQ.** Sequence-numbered CRC frames with selective-repeat
 *     retransmission and bounded retries (chan/arq.hh) turn residual
 *     frame errors into retransmissions and an honest goodput number.
 *
 * The layer is generic over a TransportLink — one physical burst of
 * bits through a channel at a given rate — which chan/channel.hh and
 * chan/cross_core.hh bind to the simulated platforms (and tests bind
 * to synthetic corruption models). Evaluation follows the trace-based
 * capacity methodology (raw bps x error bits x effective goodput per
 * run); examples/capacity_frontier.cpp sweeps the full frontier.
 */

#ifndef WB_CHAN_TRANSPORT_HH
#define WB_CHAN_TRANSPORT_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bitvec.hh"
#include "common/types.hh"
#include "chan/arq.hh"
#include "chan/modulation.hh"
#include "chan/protocol.hh"
#include "sim/scheduler.hh"

namespace wb::chan
{

/** One rung of the rate ladder: pacing plus symbol encoding. */
struct RateStep
{
    Cycles ts = 5500;  //!< sender/receiver period at this rung
    Encoding encoding = Encoding::binary(1);

    /** Raw channel rate at this rung, in kbps. */
    double
    rateKbps(double cpuGhz) const
    {
        return encoding.bitsPerSymbol() * cpuGhz * 1e6 /
               static_cast<double>(ts);
    }
};

/**
 * Build the rate ladder for @p proto: rung 0 is the configured rate;
 * a multi-bit encoding falls back to binary (same pacing) at rung 1;
 * then up to @p signalShrinks rungs halve the dirty-line count d at
 * unchanged pacing; each further rung doubles Ts/Tr, up to
 * @p maxDoublings doublings. The binary fallback keeps the widest
 * latency gap the associativity allows (min(4, maxLevel) dirty
 * lines).
 *
 * The d-shrink rungs degrade the channel's *footprint*, not its
 * pacing: fewer dirty lines per symbol means less per-slot work on a
 * time-shared core and a smaller cross-tenant collision cross-section
 * on a crowded socket (docs/TENANTS.md), while the unchanged Ts keeps
 * the Tr:Ts ratio arithmetic in crossCoreLinkRun exact. Only once the
 * footprint floor (d = 1) is reached does the ladder start paying
 * with time. Shrinking stops silently at d = 1, so a binary(1)
 * protocol gets no shrink rungs regardless of the budget.
 */
std::vector<RateStep> rateLadder(const ProtocolConfig &proto,
                                 unsigned maxDoublings,
                                 unsigned signalShrinks = 0);

/** Transport-layer configuration, plumbed next to SchedulerConfig. */
struct TransportConfig
{
    /**
     * Route runTransport through the transport engine. Off by
     * default: a disabled transport degenerates to the legacy
     * single-shot protocol path, bit-identical to the pre-transport
     * runners (TransportOffEquivalence tests).
     */
    bool enabled = false;

    FrameLayout layout;      //!< frame geometry (seq/payload/CRC/FEC)
    unsigned guardBits = 8;  //!< idle (d=0) bits between frames

    /** Payload chunks per random message (runTransport convenience). */
    unsigned messageFrames = 8;

    /** Frames per transmission round (the ARQ window). */
    unsigned windowFrames = 8;

    /** Retransmissions allowed per chunk beyond the first attempt. */
    unsigned maxRetries = 4;

    /** Hard cap on rounds (bounds a dead link). */
    unsigned maxRounds = 32;

    // --- adaptive-rate controller ---
    bool adaptiveRate = true;
    unsigned maxSlowdownDoublings = 3; //!< ladder depth past fallback

    /**
     * d-shrink rungs between the binary fallback and the Ts
     * doublings (see rateLadder). 0 (the default) reproduces the
     * pacing-only ladder bit-for-bit; crowded-socket deployments
     * raise it to shed footprint before shedding rate.
     */
    unsigned signalShrinks = 0;

    /** Step down (slower) when round FER reaches this. */
    double degradeFer = 0.5;

    /** A round at or below this FER counts toward stepping back up. */
    double upgradeFer = 0.125;

    /** Consecutive good rounds required before stepping up (hysteresis). */
    unsigned upgradeAfterRounds = 2;

    /**
     * FEC corrected-bit density (corrections / coded body bits over
     * the round's validated frames) that counts as degradation even
     * while every CRC still passes — the early-warning half of the
     * link-quality signal HammingCode::decode reports.
     */
    double correctedDegradeFrac = 0.10;

    // --- FrameSync thresholds ---
    unsigned acquireMaxErrors = 1; //!< preamble errors to lock (strict)
    unsigned trackMaxErrors = 2;   //!< preamble errors while locked
    unsigned relockWindow = 24;    //!< +/- bits searched around expected
};

/** What one physical burst through a link produced. */
struct LinkRun
{
    BitVec bits;                //!< receiver's classified bit stream
    Cycles simulatedCycles = 0; //!< wall virtual time of the burst
    sim::SchedulerStats schedulerStats; //!< OS-noise activity
};

/**
 * One physical transmission: modulate @p stream at @p rate, return
 * what the receiver decoded. @p roundSeed makes every round's
 * platform/noise trajectory independent and reproducible.
 */
using TransportLink = std::function<LinkRun(
    const BitVec &stream, const RateStep &rate, std::uint64_t roundSeed)>;

/** Everything a transport session reports. */
struct TransportResult
{
    unsigned framesTotal = 0;     //!< payload chunks in the message
    unsigned framesDelivered = 0; //!< CRC-validated unique chunks
    unsigned framesFailed = 0;    //!< chunks out of retries
    std::uint64_t framesSent = 0; //!< frame transmissions incl. retries
    std::uint64_t retransmissions = 0;

    std::uint64_t payloadBitsTotal = 0;
    std::uint64_t payloadBitsDelivered = 0;
    std::uint64_t residualBitErrors = 0; //!< wrong bits in delivered chunks
    double residualBer = 0.0; //!< errors / delivered bits (0 if none)

    /** Delivered payload bits over total simulated time, in kbps. */
    double goodputKbps = 0.0;

    /** Raw channel rate of the final rate rung, in kbps. */
    double rawRateKbps = 0.0;

    unsigned rounds = 0;
    unsigned finalRateLevel = 0;
    std::vector<unsigned> rateLevelByRound;
    std::vector<double> ferByRound;

    unsigned syncLosses = 0; //!< locked -> searching transitions
    unsigned resyncs = 0;    //!< phase slips absorbed while locked
    std::uint64_t fecCorrectedBits = 0;

    Cycles simulatedCycles = 0; //!< summed over rounds
    sim::SchedulerStats schedulerStats; //!< summed over rounds
};

/**
 * The sliding-correlation frame synchronizer.
 *
 * Searching: slide the 16-bit preamble over the stream and lock on
 * the first offset with at most acquireMaxErrors mismatches (strict,
 * to avoid false locks in noise). Locked: expect the next preamble
 * one stride ahead and re-search within +/- relockWindow bits with
 * the looser trackMaxErrors budget — absorbing the insertion/deletion
 * slips a deschedule leaves (counted as resyncs when the phase
 * moved). A miss is a sync loss: back to Searching from just past the
 * last frame, so a receiver frozen mid-stream re-acquires at the next
 * surviving frame instead of never.
 */
class FrameSync
{
  public:
    /**
     * @param stride expected bits between frame starts (frame +
     *        guard)
     */
    FrameSync(unsigned acquireMaxErrors, unsigned trackMaxErrors,
              unsigned relockWindow, std::size_t stride);

    /** One scan's outcome. */
    struct Scan
    {
        std::vector<std::size_t> frameStarts; //!< located preambles
        unsigned syncLosses = 0;
        unsigned resyncs = 0;
    };

    /**
     * Locate every frame start in @p stream. Guaranteed to terminate:
     * every emitted frame and every search step advances the scan
     * position monotonically.
     */
    Scan scan(const BitVec &stream) const;

  private:
    unsigned acquireMaxErrors_;
    unsigned trackMaxErrors_;
    unsigned relockWindow_;
    std::size_t stride_;
};

/**
 * The adaptive symbol-rate controller.
 *
 * Degrade immediately (one bad round steps one rung down the ladder):
 * a link that just lost half a window is losing wall-clock time every
 * slot. Upgrade conservatively (upgradeAfterRounds consecutive rounds
 * at or below upgradeFer, with a quiet FEC): hysteresis, so one idle
 * burst between two noisy phases does not thrash the rate.
 */
class RateController
{
  public:
    RateController(const TransportConfig &cfg, unsigned ladderSize);

    /** Current ladder rung. */
    unsigned level() const { return level_; }

    /** Feed one round's frame error rate + FEC correction density. */
    void onRound(double fer, double correctedFrac);

  private:
    const TransportConfig cfg_;
    unsigned top_;        //!< last ladder rung
    unsigned level_ = 0;
    unsigned goodStreak_ = 0;
};

/**
 * Run one transport session: split @p message into frames, transmit
 * in selective-repeat rounds over @p link, adapt the rate from the
 * per-round frame error rate, and report delivery/goodput honestly.
 *
 * @param baseProto the channel's protocol config (rung 0 of the rate
 *        ladder; cpuGhz scales goodput)
 * @param seed session seed; every round derives its own sub-seed
 */
TransportResult runTransportSession(const TransportConfig &cfg,
                                    const ProtocolConfig &baseProto,
                                    const BitVec &message,
                                    const TransportLink &link,
                                    std::uint64_t seed);

} // namespace wb::chan

#endif // WB_CHAN_TRANSPORT_HH
