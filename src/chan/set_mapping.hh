/**
 * @file
 * Construction of target-set line pools and replacement sets.
 *
 * The L1D is virtually indexed: bits 6..11 of a virtual address select
 * one of 64 sets (paper Sec. IV). A process can therefore build, from
 * its own address space, any number of distinct lines that all map to
 * an agreed target set: same index bits, different tag bits. The
 * receiver needs two such "replacement sets" (used alternately so that
 * the lines being timed always come from L2), and the sender needs a
 * small pool of lines it can dirty.
 */

#ifndef WB_CHAN_SET_MAPPING_HH
#define WB_CHAN_SET_MAPPING_HH

#include <vector>

#include "common/types.hh"
#include "sim/address.hh"

namespace wb::chan
{

/**
 * Build @p count distinct virtual line addresses mapping to @p targetSet.
 *
 * @param layout the L1 address layout (gives index-bit geometry)
 * @param targetSet the agreed set index
 * @param count how many lines
 * @param tagBase starting tag; callers use disjoint tag ranges to keep
 *        pools (sender lines, replacement set A, replacement set B)
 *        non-overlapping within one address space
 */
std::vector<Addr> linesForSet(const sim::AddressLayout &layout,
                              unsigned targetSet, unsigned count,
                              Addr tagBase = 1);

/** The standard pools used by the two channel parties. */
struct ChannelSets
{
    std::vector<Addr> senderLines; //!< lines the sender dirties (W of them)
    std::vector<Addr> replacementA; //!< receiver replacement set A
    std::vector<Addr> replacementB; //!< receiver replacement set B
};

/**
 * Build the sender/receiver pools for @p targetSet. Tag ranges are
 * disjoint; the sender and receiver live in different address spaces,
 * so overlap would be harmless, but disjoint tags keep traces readable.
 *
 * @param replacementSize lines per replacement set (paper: 10 for the
 *        Xeon's 8-way L1, per Sec. IV-A)
 */
ChannelSets makeChannelSets(const sim::AddressLayout &layout,
                            unsigned targetSet, unsigned ways,
                            unsigned replacementSize);

} // namespace wb::chan

#endif // WB_CHAN_SET_MAPPING_HH
