#include "chan/transport.hh"

#include <algorithm>

#include "common/log.hh"

namespace wb::chan
{

namespace
{

/**
 * Per-round sub-seed: SplitMix64 finalizer over the session seed and
 * the round index, so round trajectories are independent but the
 * whole session replays bit for bit from one seed.
 */
std::uint64_t
roundSeed(std::uint64_t seed, unsigned round)
{
    std::uint64_t z = seed ^ (0x9e3779b97f4a7c15ULL * (round + 1));
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Preamble mismatches of @p stream at @p off (16 where truncated). */
unsigned
preambleErrorsAt(const BitVec &stream, std::size_t off, const BitVec &pre)
{
    if (off + pre.size() > stream.size())
        return static_cast<unsigned>(pre.size());
    unsigned errors = 0;
    for (std::size_t i = 0; i < pre.size(); ++i)
        if (stream[off + i] != pre[i])
            ++errors;
    return errors;
}

} // namespace

std::vector<RateStep>
rateLadder(const ProtocolConfig &proto, unsigned maxDoublings,
           unsigned signalShrinks)
{
    std::vector<RateStep> ladder;
    ladder.push_back({proto.ts, proto.encoding});
    Encoding slow = proto.encoding;
    if (proto.encoding.bitsPerSymbol() > 1) {
        // Fall back to binary at the same pacing: fewer decision
        // thresholds, the widest latency gap the alphabet allows.
        slow = Encoding::binary(
            std::max(1u, std::min(4u, proto.encoding.maxLevel())));
        ladder.push_back({proto.ts, slow});
    }
    // Footprint rungs: halve the dirty-line count at unchanged
    // pacing, shedding per-slot work and cross-tenant collision
    // cross-section before shedding rate (see the header comment).
    for (unsigned s = 0; s < signalShrinks; ++s) {
        const unsigned d = slow.maxLevel() / 2;
        if (d < 1)
            break;
        slow = Encoding::binary(d);
        ladder.push_back({proto.ts, slow});
    }
    Cycles ts = proto.ts;
    for (unsigned d = 0; d < maxDoublings; ++d) {
        ts *= 2;
        ladder.push_back({ts, slow});
    }
    return ladder;
}

RateController::RateController(const TransportConfig &cfg,
                               unsigned ladderSize)
    : cfg_(cfg), top_(ladderSize == 0 ? 0 : ladderSize - 1)
{
}

void
RateController::onRound(double fer, double correctedFrac)
{
    if (!cfg_.adaptiveRate)
        return;
    const bool degraded = fer >= cfg_.degradeFer ||
                          correctedFrac >= cfg_.correctedDegradeFrac;
    if (degraded) {
        level_ = std::min(level_ + 1, top_);
        goodStreak_ = 0;
        return;
    }
    const bool good = fer <= cfg_.upgradeFer &&
                      correctedFrac < cfg_.correctedDegradeFrac / 2.0;
    if (!good) {
        goodStreak_ = 0; // middling round: hold the rate
        return;
    }
    if (level_ == 0)
        return;
    if (++goodStreak_ >= cfg_.upgradeAfterRounds) {
        --level_;
        goodStreak_ = 0;
    }
}

FrameSync::FrameSync(unsigned acquireMaxErrors, unsigned trackMaxErrors,
                     unsigned relockWindow, std::size_t stride)
    : acquireMaxErrors_(acquireMaxErrors),
      trackMaxErrors_(trackMaxErrors), relockWindow_(relockWindow),
      stride_(stride)
{
    if (stride_ < 16)
        fatalf("FrameSync: stride ", stride_,
               " smaller than the preamble");
}

FrameSync::Scan
FrameSync::scan(const BitVec &stream) const
{
    Scan out;
    const BitVec pre = preamble16();
    if (stream.size() < pre.size())
        return out;

    bool locked = false;
    std::size_t searchFrom = 0; //!< Searching: next offset to try
    std::size_t expected = 0;   //!< Locked: predicted next start
    bool everLocked = false;

    while (true) {
        if (!locked) {
            // Sliding correlation: first offset clearing the strict
            // acquire budget wins.
            std::size_t found = stream.size();
            for (std::size_t off = searchFrom;
                 off + pre.size() <= stream.size(); ++off) {
                if (preambleErrorsAt(stream, off, pre) <=
                    acquireMaxErrors_) {
                    found = off;
                    break;
                }
            }
            if (found == stream.size())
                break; // no further frame in the stream
            out.frameStarts.push_back(found);
            locked = true;
            everLocked = true;
            expected = found + stride_;
        } else {
            // Re-lock around the predicted start with the looser
            // tracking budget; take the best-scoring offset so a
            // +/- slip snaps to the true preamble, not its edge.
            const std::size_t lastStart = out.frameStarts.back();
            const std::size_t lo =
                std::max(expected > relockWindow_
                             ? expected - relockWindow_
                             : 0,
                         lastStart + 1);
            const std::size_t hi = expected + relockWindow_;
            std::size_t best = stream.size();
            unsigned bestErrors = trackMaxErrors_ + 1;
            for (std::size_t off = lo;
                 off <= hi && off + pre.size() <= stream.size(); ++off) {
                const unsigned e = preambleErrorsAt(stream, off, pre);
                if (e < bestErrors) {
                    bestErrors = e;
                    best = off;
                }
            }
            if (best != stream.size() && bestErrors <= trackMaxErrors_) {
                if (best != expected)
                    ++out.resyncs; // phase slipped, absorbed in-lock
                out.frameStarts.push_back(best);
                expected = best + stride_;
            } else if (expected + pre.size() > stream.size()) {
                break; // ran off the end of the stream: not a loss
            } else {
                // Lost lock (a gang freeze swallowed the frame):
                // fall back to the sliding search just past the last
                // frame we did decode.
                ++out.syncLosses;
                locked = false;
                searchFrom = lastStart + stride_ > relockWindow_
                                 ? lastStart + stride_ - relockWindow_
                                 : lastStart + 1;
                searchFrom = std::max(searchFrom, lastStart + 1);
            }
        }
        if (locked && expected + pre.size() > stream.size() + relockWindow_)
            break; // no room for another frame
    }
    (void)everLocked;
    return out;
}

TransportResult
runTransportSession(const TransportConfig &cfg,
                    const ProtocolConfig &baseProto, const BitVec &message,
                    const TransportLink &link, std::uint64_t seed)
{
    const FrameLayout &layout = cfg.layout;
    if (layout.payloadBits == 0)
        fatalf("runTransportSession: zero payload bits per frame");
    if (cfg.windowFrames == 0)
        fatalf("runTransportSession: zero-frame window");

    // Split the message into fixed-size chunks (zero-padded tail).
    const unsigned chunks = static_cast<unsigned>(
        (message.size() + layout.payloadBits - 1) / layout.payloadBits);
    std::vector<BitVec> payloads(chunks);
    for (unsigned c = 0; c < chunks; ++c) {
        BitVec &p = payloads[c];
        for (unsigned b = 0; b < layout.payloadBits; ++b) {
            const std::size_t i =
                std::size_t(c) * layout.payloadBits + b;
            p.push_back(i < message.size() ? message[i] : false);
        }
    }

    const std::vector<RateStep> ladder = rateLadder(
        baseProto, cfg.maxSlowdownDoublings, cfg.signalShrinks);
    RateController controller(cfg, static_cast<unsigned>(ladder.size()));
    SelectiveRepeatArq arq(chunks, cfg.maxRetries);
    const std::size_t stride = layout.frameBits() + cfg.guardBits;
    const FrameSync sync(cfg.acquireMaxErrors, cfg.trackMaxErrors,
                         cfg.relockWindow, stride);

    TransportResult res;
    res.framesTotal = chunks;
    res.payloadBitsTotal =
        std::uint64_t(chunks) * layout.payloadBits;
    std::vector<BitVec> delivered(chunks);

    while (!arq.done() && res.rounds < cfg.maxRounds) {
        // --- Compose the round: pending chunks, no seq collisions ---
        std::vector<unsigned> batch;
        std::vector<int> seqToChunk(layout.seqSpace(), -1);
        for (unsigned chunk : arq.pending()) {
            if (batch.size() >= cfg.windowFrames)
                break;
            const unsigned seq = chunk % layout.seqSpace();
            if (seqToChunk[seq] != -1)
                continue; // would be ambiguous in this round's window
            seqToChunk[seq] = static_cast<int>(chunk);
            batch.push_back(chunk);
        }
        if (batch.empty())
            break; // defensive: pending() nonempty implies a batch

        BitVec stream;
        for (unsigned chunk : batch) {
            const BitVec frame = buildTransportFrame(
                layout, chunk % layout.seqSpace(), payloads[chunk]);
            stream.insert(stream.end(), frame.begin(), frame.end());
            stream.insert(stream.end(), cfg.guardBits, false);
        }

        // --- One physical burst at the current rate ---
        const RateStep &rate = ladder[controller.level()];
        const LinkRun run =
            link(stream, rate, roundSeed(seed, res.rounds));
        res.simulatedCycles += run.simulatedCycles;
        res.schedulerStats.contextSwitches +=
            run.schedulerStats.contextSwitches;
        res.schedulerStats.migrations += run.schedulerStats.migrations;
        res.schedulerStats.pollutionAccesses +=
            run.schedulerStats.pollutionAccesses;
        res.schedulerStats.coRunnerAccesses +=
            run.schedulerStats.coRunnerAccesses;

        // --- Resync + validate whatever arrived ---
        const FrameSync::Scan scan = sync.scan(run.bits);
        res.syncLosses += scan.syncLosses;
        res.resyncs += scan.resyncs;

        unsigned fresh = 0;
        std::uint64_t roundCorrected = 0;
        unsigned validated = 0;
        for (std::size_t start : scan.frameStarts) {
            const std::size_t bodyAt = start + 16;
            if (bodyAt >= run.bits.size())
                continue;
            const std::size_t bodyEnd = std::min(
                run.bits.size(), bodyAt + layout.codedBodyBits());
            const BitVec body(
                run.bits.begin() + static_cast<std::ptrdiff_t>(bodyAt),
                run.bits.begin() + static_cast<std::ptrdiff_t>(bodyEnd));
            const ParsedFrame parsed = parseTransportFrame(layout, body);
            if (!parsed.crcOk)
                continue;
            ++validated;
            roundCorrected += parsed.fec.correctedBits;
            const int chunk = seqToChunk[parsed.seq % layout.seqSpace()];
            if (chunk < 0 || arq.isDelivered(unsigned(chunk)))
                continue; // stale seq or duplicate
            ++fresh;
            delivered[unsigned(chunk)] = parsed.payload;
            arq.onDelivered(unsigned(chunk));
        }

        const double fer =
            1.0 - double(fresh) / double(batch.size());
        const double correctedFrac =
            validated == 0
                ? 0.0
                : double(roundCorrected) /
                      (double(validated) * double(layout.codedBodyBits()));
        res.ferByRound.push_back(fer);
        res.rateLevelByRound.push_back(controller.level());
        // A round that validated nothing at all is treated as fully
        // degraded regardless of thresholds (fer == 1.0 covers it).
        controller.onRound(fer, correctedFrac);
        res.fecCorrectedBits += roundCorrected;
        arq.onRoundEnd(batch);
        ++res.rounds;
    }

    // --- Honest accounting ---
    res.framesDelivered = arq.delivered();
    res.framesFailed = res.framesTotal - arq.delivered();
    res.framesSent = arq.attempts();
    res.retransmissions = arq.retransmissions();
    res.payloadBitsDelivered =
        std::uint64_t(res.framesDelivered) * layout.payloadBits;
    for (unsigned c = 0; c < chunks; ++c) {
        if (!arq.isDelivered(c))
            continue;
        for (unsigned b = 0; b < layout.payloadBits; ++b)
            if (delivered[c][b] != payloads[c][b])
                ++res.residualBitErrors;
    }
    res.residualBer =
        res.payloadBitsDelivered
            ? double(res.residualBitErrors) /
                  double(res.payloadBitsDelivered)
            : 0.0;
    res.finalRateLevel = controller.level();
    res.rawRateKbps =
        ladder[controller.level()].rateKbps(baseProto.cpuGhz);
    res.goodputKbps =
        res.simulatedCycles > 0
            ? double(res.payloadBitsDelivered) * baseProto.cpuGhz * 1e6 /
                  double(res.simulatedCycles)
            : 0.0;
    return res;
}

} // namespace wb::chan
