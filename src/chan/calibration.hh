/**
 * @file
 * Offline latency calibration (paper Fig. 4).
 *
 * For each d in 0..W, the target set is loaded with d dirty lines and
 * the replacement-set access latency is measured many times. The
 * resulting per-d latency distributions (CDFs) are narrow and
 * separable — each extra dirty line adds roughly the dirty-victim
 * write-back penalty — and their medians become the classifier
 * centroids used by the live receiver.
 */

#ifndef WB_CHAN_CALIBRATION_HH
#define WB_CHAN_CALIBRATION_HH

#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "chan/modulation.hh"
#include "sim/hierarchy.hh"
#include "sim/noise_model.hh"

namespace wb::chan
{

/**
 * What the receiver times to read a symbol — and therefore what
 * calibration must measure. LoadTiming is the paper's receiver (timed
 * pointer chase over the replacement set); FlushLatency is the
 * Flushgeist-style observer that primes the set untimed and times a
 * single clflush, whose cost carries the pending dirty write-backs the
 * prime just queued (LatencyModel::flushWbDrainExtra).
 */
enum class CalibrationProbe
{
    LoadTiming,
    FlushLatency,
};

/** Calibration inputs. */
struct CalibrationConfig
{
    unsigned targetSet = 13;      //!< agreed cache set
    unsigned replacementSize = 10; //!< lines per replacement set
    unsigned measurements = 1000; //!< samples per d (paper: 1000)
    unsigned discard = 3;         //!< cold samples dropped per d

    /** Which receiver primitive to calibrate for. */
    CalibrationProbe probe = CalibrationProbe::LoadTiming;

    /**
     * Dirty-line counts interleaved during calibration. Empty means
     * all of 0..W (the Fig. 4 sweep). A live channel calibrates with
     * exactly its encoding's levels: under non-stack replacement
     * policies the steady-state baseline depends on the traffic mix
     * (leftover lines hit in L1), so thresholds must be measured
     * under the mix the receiver will actually see.
     */
    std::vector<unsigned> levelsMix;
};

/** Per-d latency distributions and medians. */
struct Calibration
{
    std::vector<Samples> latencyByD; //!< index d = 0..W
    std::vector<double> medianByD;   //!< medians of the above
    std::vector<double> meanByD;     //!< means (repetition decoding)
    std::vector<double> stddevByD;   //!< per-level dispersion

    /** Classifier for a binary encoding with the given d2. */
    Classifier binaryClassifier(unsigned d2) const;

    /** Classifier whose centroids follow @p encoding's levels. */
    Classifier classifierFor(const Encoding &encoding) const;

    /**
     * Classifier over per-level *means* instead of medians. A
     * coarse-timer observer's samples are dither-quantized to granule
     * multiples: their median is one of two point masses (useless),
     * but their mean is the unbiased true latency that block-averaged
     * repetition decoding recovers — so the repetition decoder
     * classifies block means against mean centroids (chan/degraded).
     */
    Classifier meanClassifierFor(const Encoding &encoding) const;
};

/**
 * Run the calibration on a fresh hierarchy.
 *
 * @param hp hierarchy configuration (the platform)
 * @param noise platform noise model (per-measurement base dispersion)
 * @param cfg calibration parameters
 * @param rng randomness source
 */
Calibration calibrate(const sim::HierarchyParams &hp,
                      const sim::NoiseModel &noise,
                      const CalibrationConfig &cfg, Rng &rng);

/**
 * Measure one replacement-set traversal directly against a memory
 * system (no SMT interleaving): the sum of the permuted dependent-load
 * latencies plus timestamp-read cost. Shared by calibration and the
 * single-process side-channel attacks of Sec. IX; @p mem may be a
 * Hierarchy or one core's port of a MultiCoreSystem (the cross-core
 * attacker's probe).
 *
 * @param mem the memory system to measure against
 * @param tid issuing thread id
 * @param order replacement-set lines in traversal order (physical
 *        addresses are formed by @p translate-ing each)
 * @param space address space of the issuing process
 * @param noise noise model (timestamp cost, op overhead)
 */
double measureChaseOffline(sim::MemorySystem &mem, ThreadId tid,
                           const sim::AddressSpace &space,
                           const std::vector<Addr> &order,
                           const sim::NoiseModel &noise);

} // namespace wb::chan

#endif // WB_CHAN_CALIBRATION_HH
