/**
 * @file
 * End-to-end WB covert channel runner.
 *
 * Orchestrates one complete transmission experiment: calibrate the
 * classifier offline, stand up a simulated hyper-threaded platform with
 * sender and receiver as separate processes (disjoint address spaces),
 * run the protocol, decode, and report BER/throughput — the measurement
 * loop behind paper Figs. 5, 6, 7 and Tables VI, VII.
 */

#ifndef WB_CHAN_CHANNEL_HH
#define WB_CHAN_CHANNEL_HH

#include <cstdint>
#include <vector>

#include "common/bitvec.hh"
#include "chan/calibration.hh"
#include "chan/noise_process.hh"
#include "chan/protocol.hh"
#include "chan/transport.hh"
#include "sim/hierarchy.hh"
#include "sim/noise_model.hh"
#include "sim/platform.hh"
#include "sim/scheduler.hh"

namespace wb::chan
{

/** Complete experiment configuration. */
struct ChannelConfig
{
    /**
     * Registry preset this config was built from (informational; set
     * by usePlatform()). The resolved parameters below are what the
     * runner uses, so defenses and experiments can still tweak them
     * after selecting a platform.
     */
    std::string platformName = sim::kDefaultPlatform;

    sim::HierarchyParams platform = sim::xeonE5_2650Params();
    sim::NoiseModel noise;         //!< platform noise (default realistic)
    ProtocolConfig protocol;       //!< pacing/encoding/framing
    CalibrationConfig calibration; //!< offline calibration parameters
    std::uint64_t seed = 1;        //!< run seed (bit-exact reproducible)

    /**
     * Reconfigure for a named registry preset: resolves the platform's
     * hierarchy parameters and noise model and records the name.
     * Fatal on an unknown name. @return *this, for chaining.
     */
    ChannelConfig &
    usePlatform(const std::string &name)
    {
        sim::applyPlatform(name, platformName, platform, noise);
        return *this;
    }

    /** Sender launch delay in slots (receiver starts first). */
    unsigned senderStartSlots = 8;

    /** Extra receiver samples beyond the expected symbol count. */
    unsigned sampleMargin = 96;

    /** Number of co-resident noise processes (Sec. VI experiments). */
    unsigned noiseProcesses = 0;
    NoiseProcessConfig noiseCfg; //!< their behaviour

    /**
     * OS-noise regime (Table VII): co-runner mix, timeslices with
     * context-switch pollution, migration. Inactive by default — the
     * run is then bit-identical to the schedulerless path. Platform
     * presets carry a tuned default in Platform::noisePreset; opt in
     * with cfg.scheduler = sim::platform(name).noisePreset (and set
     * scheduler.coRunners, e.g. via SchedulerConfig::mixOf).
     */
    sim::SchedulerConfig scheduler;

    /**
     * Resilient transport layer (resync + adaptive rate + ARQ), used
     * by runTransport(). Disabled by default — runChannel() never
     * reads it, and a disabled runTransport() degenerates to the
     * legacy single-shot path, bit-identical to the pre-transport
     * runner (same guarantee SchedulerConfig makes).
     */
    TransportConfig transport;
};

/** Everything a transmission experiment produces. */
struct ChannelResult
{
    double ber = 1.0;                  //!< edit-distance bit error rate
    EditBreakdown breakdown;           //!< error-type totals
    double rateKbps = 0.0;             //!< raw channel rate
    double goodputKbps = 0.0;          //!< rate * (1 - ber)
    bool aligned = false;              //!< preamble ever found
    unsigned framesScored = 0;
    unsigned framesExpected = 0;

    BitVec sentFrame;                  //!< the repeated frame
    BitVec decodedBits;                //!< full decoded bit stream
    std::vector<double> latencies;     //!< receiver raw observations

    /**
     * Samples averaged per symbol by the coarse-timer repetition
     * decoder (1 = no amplification). rateKbps and goodputKbps are
     * already divided by it — the *effective* bit rate, not the raw
     * slot rate (the goodput-honesty rule; see chan/degraded.hh).
     */
    unsigned repetition = 1;

    /**
     * Eviction-only observer: did EvictionSetFinder verify both
     * discovered replacement sets minimal? False means the run fell
     * back to the architectural sets (always true for observers that
     * don't discover).
     */
    bool evictionDiscoveryVerified = true;

    std::vector<double> calibrationMedians; //!< classifier centroids

    sim::PerfCounters senderCounters;   //!< sender process perf view
    sim::PerfCounters receiverCounters; //!< receiver process perf view
    Cycles simulatedCycles = 0;         //!< wall virtual time

    /**
     * Thread ids the parties ran under (set by both the same-core and
     * the cross-core runner). Detection harnesses use these to label
     * which monitored tids were the covert pair — everything else on
     * the machine is benign by construction.
     */
    ThreadId senderTid = 0;
    ThreadId receiverTid = 0;

    /** What the OS-noise layer did (zeros when it was inactive). */
    sim::SchedulerStats schedulerStats;
};

/** Run one complete covert-channel transmission experiment. */
ChannelResult runChannel(const ChannelConfig &cfg);

/**
 * Run a transport session (resync + adaptive rate + ARQ) over the
 * single-core channel: @p message is chunked into sequence-numbered
 * CRC frames, each round is one physical burst through the simulated
 * platform at the controller's current rate rung, and lost frames are
 * selectively retransmitted within cfg.transport's retry budget.
 *
 * With cfg.transport.enabled == false this degenerates to the legacy
 * runChannel() path — same RNG draws, same operation order — and
 * repackages its result via legacyTransportResult().
 */
TransportResult runTransport(const ChannelConfig &cfg,
                             const BitVec &message);

/** runTransport over a seed-derived random message of
 *  cfg.transport.messageFrames * layout.payloadBits bits. */
TransportResult runTransport(const ChannelConfig &cfg);

/**
 * Map a legacy single-shot ChannelResult into transport terms (used by
 * the transport-off degenerate path): one "frame" per protocol frame
 * scored, goodput and BER carried over verbatim.
 */
TransportResult legacyTransportResult(const ChannelResult &r,
                                      const ProtocolConfig &proto);

/**
 * Convenience: transmit an arbitrary byte string once (no frame
 * repetition) and return the decoded string. Used by the quickstart
 * example; BER and metadata are still reported via @p result when
 * non-null.
 */
std::string transmitString(const ChannelConfig &cfg, const std::string &msg,
                           ChannelResult *result = nullptr);

} // namespace wb::chan

#endif // WB_CHAN_CHANNEL_HH
