/**
 * @file
 * Runtime minimal-eviction-set discovery for sliced LLCs.
 *
 * A tenant landing on a slice-hashed LLC (sim/slice_hash.hh) cannot
 * build an eviction set by address arithmetic: lines sharing a set
 * index scatter across slices, and the hash is not architecturally
 * visible. What it *can* do is what "The Spy in the Sandbox" (Oren et
 * al.) and Vila et al. do on real hardware — start from a candidate
 * pool of same-set-index lines and shrink it with timing tests alone:
 *
 *   evicts(v, S): prime S, load v, sweep S a couple of times,
 *                 re-time v. A slow reload means S still evicts v.
 *
 * The priming pass before the victim touch matters: without it, pool
 * lines left resident by earlier tests put the victim's set under
 * extra fill pressure, and tree-PLRU then evicts the victim even when
 * S holds fewer than W congruent lines — false positives that strip
 * congruent lines out of the reduction.
 *
 * The reduction is Vila et al.'s group-testing algorithm: while the
 * set is larger than the associativity W, split it into W + 1 groups;
 * at most W of them can contain a line congruent with v, so at least
 * one group is removable without breaking eviction. Each round drops
 * |S|/(W+1) lines, giving the O(W^2 n) total the thousand-pair tenant
 * sweep needs (the naive one-line-at-a-time reduction is O(n^2)).
 * Against the replacement-policy flakiness that survives priming, a
 * removal must pass the eviction test twice, and removed groups are
 * kept on a history stack so a stalled reduction can backtrack — the
 * standard hardening of the algorithm on real machines.
 *
 * Everything here runs through a sim::MemorySystem port and the
 * latencies it returns — no access to the slice hash, the directory,
 * or any cache introspection. Ground-truth verification (is the
 * result *really* the W lines congruent with the victim?) lives in
 * tests/test_eviction_finder.cc, which is allowed to peek.
 */

#ifndef WB_CHAN_EVICTION_FINDER_HH
#define WB_CHAN_EVICTION_FINDER_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "sim/hierarchy.hh"

namespace wb::chan
{

/** Tuning knobs of EvictionSetFinder. */
struct EvictionFinderConfig
{
    /**
     * Target (LLC) associativity W: the reduction stops when the set
     * reaches this size, and verification checks minimality at it.
     */
    unsigned associativity = 16;

    /**
     * Reload-latency threshold separating "still cached somewhere"
     * from "evicted to DRAM". 0 auto-calibrates: a fresh line's first
     * touch times a memory access, its immediate second touch a cache
     * hit, and the threshold is the midpoint of the two medians.
     */
    Cycles threshold = 0;

    /** Candidate-set traversals per eviction test (PLRU reliability). */
    unsigned sweeps = 2;

    /**
     * Rounds a reduction may fail to remove any group (re-partitioned
     * randomly each retry) before backtracking. Pigeonhole guarantees
     * a removable group exists, so retries only absorb
     * replacement-policy flakiness.
     */
    unsigned maxStuckRetries = 3;

    /**
     * Removed groups a stalled reduction may restore (most recent
     * first) before giving up unverified. Backtracking is what
     * recovers a congruent line lost to a false-positive removal.
     */
    unsigned maxBacktracks = 16;

    /** Measurement samples per threshold auto-calibration side. */
    unsigned calibrationSamples = 9;
};

/** Outcome of one discovery run. */
struct EvictionSetResult
{
    /** The discovered eviction set (addresses from the candidates). */
    std::vector<Addr> set;

    /**
     * True when the final set still evicts the victim, has exactly W
     * lines, and dropping any single line breaks eviction — minimal
     * by the finder's own timing tests (not by ground truth).
     */
    bool verifiedMinimal = false;

    std::uint64_t timingTests = 0; //!< evicts() evaluations performed
    std::uint64_t accesses = 0;    //!< demand accesses issued
};

/**
 * Timing-only minimal-eviction-set discovery over a MemorySystem
 * port (see file comment). The finder issues plain loads and reads
 * the returned latencies; it never flushes (an eviction-only
 * observer) and never inspects simulator internals.
 */
class EvictionSetFinder
{
  public:
    /**
     * @param mem the port discovery runs through (a core's view)
     * @param tid hardware thread issuing the accesses
     * @param cfg tuning knobs (associativity must match the LLC)
     */
    EvictionSetFinder(sim::MemorySystem &mem, ThreadId tid,
                      const EvictionFinderConfig &cfg);

    /**
     * Reduce @p candidates to a minimal eviction set for @p victim.
     * @p rng shuffles the group partitions (and nothing else).
     * Returns an unverified result with the best-effort set when the
     * pool does not evict the victim at all or the reduction stalls.
     */
    EvictionSetResult findFor(Addr victim,
                              std::vector<Addr> candidates, Rng &rng);

    /**
     * The resolved reload threshold: the configured value, or after
     * the first findFor() the auto-calibrated midpoint (0 before).
     * Introspection for tests and the tenant harness logs.
     */
    Cycles threshold() const { return threshold_; }

  private:
    /** One timing test: does @p set still evict @p victim? */
    bool evicts(Addr victim, const std::vector<Addr> &set,
                EvictionSetResult &stats);

    /**
     * Midpoint of a cold-miss and a hot-hit latency median, sampled
     * off the (still untouched) candidate pool: each sampled line's
     * first touch times a DRAM access, its immediate re-touch a cache
     * hit. Assumes cold candidates — callers that re-run discovery
     * over warm pools must set cfg.threshold explicitly.
     */
    Cycles calibrate(const std::vector<Addr> &candidates,
                     EvictionSetResult &stats);

    sim::MemorySystem &mem_;
    ThreadId tid_;
    EvictionFinderConfig cfg_;
    Cycles threshold_ = 0; //!< resolved lazily on first use
};

} // namespace wb::chan

#endif // WB_CHAN_EVICTION_FINDER_HH
