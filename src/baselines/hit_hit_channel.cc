#include "baselines/hit_hit_channel.hh"

#include "common/log.hh"

namespace wb::baselines
{

HitHitReceiver::HitHitReceiver(Addr line, unsigned burst, Cycles tr,
                               std::size_t sampleCount)
    : line_(line), burst_(burst), tr_(tr), sampleCount_(sampleCount)
{
    if (burst_ == 0)
        fatalf("HitHitReceiver: burst must be positive");
}

std::optional<sim::MemOp>
HitHitReceiver::next(sim::ProcView &)
{
    switch (phase_) {
      case Phase::Warm:
        return sim::MemOp::load(line_);
      case Phase::InitTsc:
        return sim::MemOp::tscRead();
      case Phase::Wait:
        return sim::MemOp::spinUntil(tlast_ + tr_);
      case Phase::MeasStart:
        return sim::MemOp::tscRead();
      case Phase::Burst:
        return sim::MemOp::load(line_);
      case Phase::MeasEnd:
        return sim::MemOp::tscRead();
      case Phase::Done:
        return sim::MemOp::halt();
    }
    return sim::MemOp::halt();
}

void
HitHitReceiver::onResult(const sim::MemOp &, const sim::OpResult &res,
                         sim::ProcView &)
{
    switch (phase_) {
      case Phase::Warm:
        phase_ = Phase::InitTsc;
        break;
      case Phase::InitTsc:
        tlast_ = res.tsc;
        phase_ = Phase::Wait;
        break;
      case Phase::Wait:
        tlast_ = res.tsc;
        phase_ = Phase::MeasStart;
        break;
      case Phase::MeasStart:
        tscStart_ = res.tsc;
        pos_ = 0;
        phase_ = Phase::Burst;
        break;
      case Phase::Burst:
        ++pos_;
        if (pos_ >= burst_)
            phase_ = Phase::MeasEnd;
        break;
      case Phase::MeasEnd:
        samples_.push_back(static_cast<double>(res.tsc - tscStart_));
        phase_ = samples_.size() >= sampleCount_ ? Phase::Done
                                                 : Phase::Wait;
        break;
      case Phase::Done:
        break;
    }
}

HitHitSender::HitHitSender(Addr line, std::vector<bool> bits, Cycles ts)
    : line_(line), bits_(std::move(bits)), ts_(ts)
{
}

std::optional<sim::MemOp>
HitHitSender::next(sim::ProcView &view)
{
    switch (phase_) {
      case Phase::Init:
        return sim::MemOp::tscRead();
      case Phase::Hammer:
        if (view.now() < tlast_ + ts_)
            return sim::MemOp::pipelinedLoad(line_);
        return sim::MemOp::spinUntil(tlast_ + ts_); // 0-length: rebase
      case Phase::Spin:
        return sim::MemOp::spinUntil(tlast_ + ts_);
      case Phase::Done:
        return sim::MemOp::halt();
    }
    return sim::MemOp::halt();
}

void
HitHitSender::onResult(const sim::MemOp &op, const sim::OpResult &res,
                       sim::ProcView &)
{
    auto beginSlot = [this]() {
        if (bitIdx_ >= bits_.size())
            phase_ = Phase::Done;
        else
            phase_ = bits_[bitIdx_] ? Phase::Hammer : Phase::Spin;
    };

    switch (op.kind) {
      case sim::MemOp::Kind::TscRead:
        tlast_ = res.tsc;
        beginSlot();
        break;
      case sim::MemOp::Kind::SpinUntil:
        tlast_ = res.tsc;
        ++bitIdx_;
        beginSlot();
        break;
      default:
        break;
    }
}

BaselineResult
runHitHitChannel(const BaselineConfig &cfg, unsigned burst)
{
    auto factory = [burst](const BaselineConfig &c,
                           const std::vector<bool> &frameBits,
                           sim::Hierarchy &,
                           Rng &) -> BaselineParts {
        const std::size_t sampleCount =
            frameBits.size() + c.senderStartSlots + c.sampleMargin;

        BaselineParts parts;
        auto receiver = std::make_unique<HitHitReceiver>(
            /*line=*/0x4000, burst, c.tr, sampleCount);
        parts.latencySource = receiver.get();
        parts.receiver = std::move(receiver);
        parts.sender = std::make_unique<HitHitSender>(
            /*line=*/0x8000, frameBits, c.ts);

        // Centroids: an uncontended hit burst vs one whose every load
        // suffers expected port-contention delay. The per-access
        // platform noise is a positively clamped Gaussian, so its
        // mean E[max(0, N(0, sigma))] = sigma/sqrt(2*pi) must be
        // included or the whole quiet population sits above the
        // threshold.
        const auto &lat = c.platform.lat;
        const double noiseMean = lat.noiseSigma * 0.39894;
        const double perHit = double(lat.l1Hit) +
            double(c.noise.opOverhead) + noiseMean;
        const double base =
            burst * perHit + double(c.noise.tscReadCost);
        const double extra = burst * c.noise.portContentionProb *
            double(c.noise.portContentionDelay);
        parts.centroidLow = base;
        // Keep the classifier well-formed even with contention
        // disabled (the no-medium control case).
        parts.centroidHigh = base + std::max(extra, 1e-6);
        return parts;
    };
    return runBaseline(cfg, factory);
}

} // namespace wb::baselines
