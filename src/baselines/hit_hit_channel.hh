/**
 * @file
 * A CacheBleed-style Hit+Hit covert channel (paper Table I / Fig. 2(b)
 * class): both parties' accesses *hit*, and the signal is contention —
 * the sender hammers loads so the receiver's timed burst of L1 hits is
 * delayed by port/bank conflicts when (and only when) a 1 is sent.
 *
 * Completes the taxonomy with a working exemplar of the third class:
 * unlike the WB channel it requires the two hyper-threads to execute
 * *simultaneously* (the paper: "Hit+Hit attacks such as CacheBleed
 * always require the sender and receiver to be two concurrent
 * hyper-threads, making them challenging to deploy") and its per-bit
 * signal is a couple of cycles of added mean latency, so it needs many
 * accesses per bit.
 */

#ifndef WB_BASELINES_HIT_HIT_CHANNEL_HH
#define WB_BASELINES_HIT_HIT_CHANNEL_HH

#include "baselines/framework.hh"

namespace wb::baselines
{

/** Receiver: times a burst of same-line L1 hits every slot. */
class HitHitReceiver : public sim::Program, public LatencySource
{
  public:
    /**
     * @param line the receiver's private hot line
     * @param burst loads per timed measurement
     * @param tr sampling period
     * @param sampleCount observations before halting
     */
    HitHitReceiver(Addr line, unsigned burst, Cycles tr,
                   std::size_t sampleCount);

    std::optional<sim::MemOp> next(sim::ProcView &view) override;
    void onResult(const sim::MemOp &op, const sim::OpResult &res,
                  sim::ProcView &view) override;

    std::vector<double> latencies() const override { return samples_; }

  private:
    enum class Phase
    {
        Warm,
        InitTsc,
        Wait,
        MeasStart,
        Burst,
        MeasEnd,
        Done
    };

    Addr line_;
    unsigned burst_;
    Cycles tr_;
    std::size_t sampleCount_;

    Phase phase_ = Phase::Warm;
    unsigned pos_ = 0;
    Cycles tlast_ = 0;
    Cycles tscStart_ = 0;
    std::vector<double> samples_;
};

/** Sender: hammers loads all slot for 1, spins for 0. */
class HitHitSender : public sim::Program
{
  public:
    /**
     * @param line the sender's private hammered line
     * @param bits the bit sequence
     * @param ts sending period
     */
    HitHitSender(Addr line, std::vector<bool> bits, Cycles ts);

    std::optional<sim::MemOp> next(sim::ProcView &view) override;
    void onResult(const sim::MemOp &op, const sim::OpResult &res,
                  sim::ProcView &view) override;

  private:
    enum class Phase
    {
        Init,
        Hammer,
        Spin,
        Done
    };

    Addr line_;
    std::vector<bool> bits_;
    Cycles ts_;

    Phase phase_ = Phase::Init;
    std::size_t bitIdx_ = 0;
    Cycles tlast_ = 0;
};

/**
 * Run the Hit+Hit channel end to end. The platform's port-contention
 * parameters supply the physics; the default NoiseModel's modest
 * contention gives a small (cycles-scale) per-burst signal.
 */
BaselineResult runHitHitChannel(const BaselineConfig &cfg,
                                unsigned burst = 64);

} // namespace wb::baselines

#endif // WB_BASELINES_HIT_HIT_CHANNEL_HH
