#include "baselines/framework.hh"

#include "common/log.hh"
#include "chan/set_mapping.hh"

namespace wb::baselines
{

BaselineResult
runBaseline(const BaselineConfig &cfg, const PartsFactory &factory)
{
    Rng rootRng(cfg.seed);
    Rng frameRng = rootRng.split();
    Rng runRng = rootRng.split();

    const BitVec frame = randomFrame(cfg.frameBits - 16, frameRng);
    BitVec allBits;
    allBits.reserve(static_cast<std::size_t>(cfg.frameBits) * cfg.frames);
    for (unsigned f = 0; f < cfg.frames; ++f)
        allBits.insert(allBits.end(), frame.begin(), frame.end());

    sim::Hierarchy hierarchy(cfg.platform, &runRng);
    sim::SmtCore core(hierarchy, cfg.noise, runRng);

    BaselineParts parts = factory(cfg, allBits, hierarchy, runRng);
    if (!parts.sender || !parts.receiver || !parts.latencySource)
        panic("runBaseline: factory returned incomplete parts");

    const chan::TransmissionSchedule sched = chan::transmissionSchedule(
        allBits.size(), cfg.ts, cfg.senderStartSlots, cfg.sampleMargin);
    const ThreadId senderTid = core.addThread(
        parts.sender.get(), parts.senderSpace, sched.senderStart);
    const ThreadId receiverTid =
        core.addThread(parts.receiver.get(), parts.receiverSpace, 0);

    std::vector<std::unique_ptr<chan::NoiseProcess>> noisePrograms;
    const auto &layout = hierarchy.l1().layout();
    for (unsigned i = 0; i < cfg.noiseProcesses; ++i) {
        auto lines = chan::linesForSet(
            layout, cfg.targetSet, std::max(1u, cfg.noiseCfg.burstLines),
            /*tagBase=*/0x300 + 0x10 * i);
        noisePrograms.push_back(std::make_unique<chan::NoiseProcess>(
            std::move(lines), cfg.noiseCfg));
        core.addThread(noisePrograms.back().get(),
                       sim::AddressSpace(10 + i), 500 * i);
    }

    core.run(sched.horizon);

    BaselineResult res;
    res.latencies = parts.latencySource->latencies();
    res.rateKbps = cfg.rateKbps();
    res.sentFrame = frame;
    res.framesExpected = cfg.frames;

    scoreBinaryLatencies(res, parts.centroidLow, parts.centroidHigh,
                         parts.invert, frame, cfg.frames);
    res.senderCounters = hierarchy.counters(senderTid);
    res.receiverCounters = hierarchy.counters(receiverTid);
    return res;
}

void
scoreBinaryLatencies(BaselineResult &res, double centroidLow,
                     double centroidHigh, bool invert,
                     const BitVec &frame, unsigned framesExpected)
{
    if (centroidHigh <= centroidLow)
        panic("scoreBinaryLatencies: centroidHigh must exceed "
              "centroidLow");
    chan::Classifier classifier({centroidLow, centroidHigh});
    const chan::Encoding enc = chan::Encoding::binary(1);
    auto symbols = chan::classifyAll(res.latencies, classifier);
    if (invert)
        for (auto &s : symbols)
            s = 1 - s;
    const BitVec bits = chan::symbolsToBits(symbols, enc);
    auto dec = chan::scoreFrames(bits, frame, framesExpected);
    res.ber = dec.ber;
    res.breakdown = dec.breakdown;
    res.aligned = dec.aligned;
    res.framesScored = dec.framesScored;
}

} // namespace wb::baselines
