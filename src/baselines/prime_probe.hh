/**
 * @file
 * Prime+Probe covert channel (Osvik, Shamir & Tromer; paper Secs. II,
 * VI). Contention-based, no shared memory.
 *
 * The receiver primes the target set with W of its own lines, sleeps,
 * then probes them with a timed traversal: extra misses mean the sender
 * touched the set (sent 1). The probe is walked in the reverse of the
 * previous traversal order, the classic trick that avoids self-eviction
 * thrashing under LRU (paper Sec. VI-A).
 */

#ifndef WB_BASELINES_PRIME_PROBE_HH
#define WB_BASELINES_PRIME_PROBE_HH

#include "baselines/framework.hh"

namespace wb::baselines
{

/** Prime+Probe receiver: timed whole-set probe each slot. */
class PrimeProbeReceiver : public sim::Program, public LatencySource
{
  public:
    /**
     * @param lines the receiver's W prime lines
     * @param tr sampling period
     * @param sampleCount observations before halting
     */
    PrimeProbeReceiver(std::vector<Addr> lines, Cycles tr,
                       std::size_t sampleCount);

    std::optional<sim::MemOp> next(sim::ProcView &view) override;
    void onResult(const sim::MemOp &op, const sim::OpResult &res,
                  sim::ProcView &view) override;

    std::vector<double> latencies() const override { return samples_; }

  private:
    enum class Phase
    {
        Warmup,     //!< one batched double sweep
        InitTsc,
        Wait,
        ProbeStart, //!< TscRead
        Probe,      //!< batched W-load sweep, reverse order per slot
        ProbeEnd,   //!< TscRead
        Done
    };

    std::vector<Addr> lines_;
    Cycles tr_;
    std::size_t sampleCount_;

    Phase phase_ = Phase::Warmup;
    std::vector<Addr> warmupOrder_; //!< two full sweeps, batched
    std::vector<Addr> probeOrder_;  //!< this slot's traversal order
    bool warmupDone_ = false;
    bool forward_ = true;
    Cycles tlast_ = 0;
    Cycles tscStart_ = 0;
    std::vector<double> samples_;
};

/** Prime+Probe sender: one burst of accesses per 1-bit. */
class PrimeProbeSender : public sim::Program
{
  public:
    /**
     * @param lines sender lines mapping to the target set
     * @param linesPerOne how many to touch when sending 1
     * @param bits the bit sequence
     * @param ts sending period
     */
    PrimeProbeSender(std::vector<Addr> lines, unsigned linesPerOne,
                     std::vector<bool> bits, Cycles ts);

    std::optional<sim::MemOp> next(sim::ProcView &view) override;
    void onResult(const sim::MemOp &op, const sim::OpResult &res,
                  sim::ProcView &view) override;

  private:
    enum class Phase
    {
        Init,
        Touch, //!< bit 1: one batched sweep of linesPerOne lines
        Wait,
        Done
    };

    std::vector<Addr> lines_;
    unsigned linesPerOne_;
    std::vector<bool> bits_;
    Cycles ts_;

    Phase phase_ = Phase::Init;
    std::size_t bitIdx_ = 0;
    Cycles tlast_ = 0;
};

/** Run the Prime+Probe covert channel end to end. */
BaselineResult runPrimeProbeChannel(const BaselineConfig &cfg,
                                    unsigned linesPerOne = 2);

} // namespace wb::baselines

#endif // WB_BASELINES_PRIME_PROBE_HH
