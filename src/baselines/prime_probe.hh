/**
 * @file
 * Prime+Probe covert channel (Osvik, Shamir & Tromer; paper Secs. II,
 * VI). Contention-based, no shared memory.
 *
 * The receiver primes the target set with W of its own lines, sleeps,
 * then probes them with a timed traversal: extra misses mean the sender
 * touched the set (sent 1). The probe is walked in the reverse of the
 * previous traversal order, the classic trick that avoids self-eviction
 * thrashing under LRU (paper Sec. VI-A).
 */

#ifndef WB_BASELINES_PRIME_PROBE_HH
#define WB_BASELINES_PRIME_PROBE_HH

#include "baselines/framework.hh"

namespace wb::baselines
{

/** Prime+Probe receiver: timed whole-set probe each slot. */
class PrimeProbeReceiver : public sim::Program, public LatencySource
{
  public:
    /**
     * @param lines the receiver's W prime lines
     * @param tr sampling period
     * @param sampleCount observations before halting
     * @param reprimeEachSlot issue an untimed full prime sweep after
     *        every timed probe. The L1 variant does not need it (the
     *        probe itself restores the set), but on an inclusive
     *        shared LLC a perturbed probe's misses back-invalidate
     *        the receiver's own private copies and the elevated state
     *        persists across slots; re-priming resets it.
     */
    PrimeProbeReceiver(std::vector<Addr> lines, Cycles tr,
                       std::size_t sampleCount,
                       bool reprimeEachSlot = false);

    std::optional<sim::MemOp> next(sim::ProcView &view) override;
    void onResult(const sim::MemOp &op, const sim::OpResult &res,
                  sim::ProcView &view) override;

    std::vector<double> latencies() const override { return samples_; }

  private:
    enum class Phase
    {
        Warmup,     //!< one batched double sweep
        InitTsc,
        Wait,
        ProbeStart, //!< TscRead
        Probe,      //!< batched W-load sweep, reverse order per slot
        ProbeEnd,   //!< TscRead
        Reprime,    //!< untimed restore sweep (reprimeEachSlot)
        Done
    };

    std::vector<Addr> lines_;
    Cycles tr_;
    std::size_t sampleCount_;
    bool reprimeEachSlot_;

    Phase phase_ = Phase::Warmup;
    std::vector<Addr> warmupOrder_; //!< two full sweeps, batched
    std::vector<Addr> probeOrder_;  //!< this slot's traversal order
    bool warmupDone_ = false;
    bool forward_ = true;
    Cycles tlast_ = 0;
    Cycles tscStart_ = 0;
    std::vector<double> samples_;
};

/** Prime+Probe sender: one burst of accesses per 1-bit. */
class PrimeProbeSender : public sim::Program
{
  public:
    /**
     * @param lines sender lines mapping to the target set
     * @param linesPerOne how many to touch when sending 1
     * @param bits the bit sequence
     * @param ts sending period
     */
    PrimeProbeSender(std::vector<Addr> lines, unsigned linesPerOne,
                     std::vector<bool> bits, Cycles ts);

    std::optional<sim::MemOp> next(sim::ProcView &view) override;
    void onResult(const sim::MemOp &op, const sim::OpResult &res,
                  sim::ProcView &view) override;

  private:
    enum class Phase
    {
        Init,
        Touch, //!< bit 1: one batched sweep of linesPerOne lines
        Wait,
        Done
    };

    std::vector<Addr> lines_;
    unsigned linesPerOne_;
    std::vector<bool> bits_;
    Cycles ts_;

    Phase phase_ = Phase::Init;
    std::size_t bitIdx_ = 0;
    Cycles tlast_ = 0;
};

/** Run the Prime+Probe covert channel end to end. */
BaselineResult runPrimeProbeChannel(const BaselineConfig &cfg,
                                    unsigned linesPerOne = 2);

/**
 * Cross-core Prime+Probe over the shared LLC: the receiver (core 1)
 * primes cfg.targetSet of the LLC with llc.ways of its own lines and
 * times whole-set probes; the sender (core 0) touches @p linesPerOne
 * lines of the same LLC set for a 1-bit. On an inclusive LLC the
 * sender's fills evict the receiver's lines from every level
 * (back-invalidation), so probe misses rise; a non-inclusive LLC
 * leaves the receiver's private copies alive and closes the channel.
 * Classifier centroids are calibrated empirically offline (the
 * steady-state probe latency is platform-dependent). cfg.targetSet
 * indexes the LLC layout here, and cfg.ts/tr should leave room for a
 * whole-LLC-set probe (llc.ways DRAM-latency misses in the worst
 * case).
 */
BaselineResult runCrossCorePrimeProbe(const BaselineConfig &cfg,
                                      unsigned linesPerOne = 2,
                                      unsigned cores = 2);

} // namespace wb::baselines

#endif // WB_BASELINES_PRIME_PROBE_HH
