#include "baselines/lru_channel.hh"

#include "common/log.hh"
#include "chan/set_mapping.hh"

namespace wb::baselines
{

LruReceiver::LruReceiver(std::vector<Addr> lines, Cycles tr,
                         std::size_t sampleCount)
    : lines_(std::move(lines)), tr_(tr), sampleCount_(sampleCount)
{
    if (lines_.size() < 4 || lines_.size() % 2 != 0)
        fatalf("LruReceiver: needs an even number (>=4) of lines");
    // Two full sweeps fill the set and warm L2, as one batched sweep.
    warmupOrder_.reserve(2 * lines_.size());
    for (int sweep = 0; sweep < 2; ++sweep)
        warmupOrder_.insert(warmupOrder_.end(), lines_.begin(),
                            lines_.end());
}

std::optional<sim::MemOp>
LruReceiver::next(sim::ProcView &)
{
    const std::size_t half = lines_.size() / 2;
    switch (phase_) {
      case Phase::Warmup:
        if (!warmupDone_) {
            warmupDone_ = true;
            return sim::MemOp::loadBatch(warmupOrder_.data(),
                                         warmupOrder_.size());
        }
        phase_ = Phase::InitTsc;
        return sim::MemOp::tscRead();
      case Phase::InitTsc:
        return sim::MemOp::tscRead();
      case Phase::Wait:
        return sim::MemOp::spinUntil(tlast_ + tr_);
      case Phase::DecodeHalf:
        // The decode half is contiguous in lines_: one batched sweep.
        return sim::MemOp::loadBatch(lines_.data() + half, half);
      case Phase::MeasStart:
        return sim::MemOp::tscRead();
      case Phase::MeasLoad:
        return sim::MemOp::load(lines_[0]);
      case Phase::MeasEnd:
        return sim::MemOp::tscRead();
      case Phase::Refill:
        return sim::MemOp::loadBatch(lines_.data() + 1, half - 1);
      case Phase::Done:
        return sim::MemOp::halt();
    }
    return sim::MemOp::halt();
}

void
LruReceiver::onResult(const sim::MemOp &op, const sim::OpResult &res,
                      sim::ProcView &)
{
    switch (phase_) {
      case Phase::Warmup:
        // The warm-up batch completed; next() moves on to InitTsc.
        break;
      case Phase::InitTsc:
        tlast_ = res.tsc;
        phase_ = Phase::Wait;
        break;
      case Phase::Wait:
        tlast_ = res.tsc;
        phase_ = Phase::DecodeHalf;
        break;
      case Phase::DecodeHalf:
        phase_ = Phase::MeasStart;
        break;
      case Phase::MeasStart:
        tscStart_ = res.tsc;
        phase_ = Phase::MeasLoad;
        break;
      case Phase::MeasLoad:
        phase_ = Phase::MeasEnd;
        break;
      case Phase::MeasEnd:
        samples_.push_back(static_cast<double>(res.tsc - tscStart_));
        phase_ = samples_.size() >= sampleCount_ ? Phase::Done
                                                 : Phase::Refill;
        break;
      case Phase::Refill:
        phase_ = Phase::Wait;
        break;
      case Phase::Done:
        break;
    }
    (void)op;
}

LruSender::LruSender(Addr line, std::vector<bool> bits, Cycles ts,
                     Cycles modulateCycles)
    : line_(line), bits_(std::move(bits)), ts_(ts),
      modulateCycles_(modulateCycles == 0 || modulateCycles > ts
                          ? ts
                          : modulateCycles)
{
}

std::optional<sim::MemOp>
LruSender::next(sim::ProcView &view)
{
    switch (phase_) {
      case Phase::Init:
        return sim::MemOp::tscRead();
      case Phase::Modulate:
        if (view.now() < tlast_ + modulateCycles_)
            return sim::MemOp::pipelinedLoad(line_);
        phase_ = Phase::SpinRest;
        return sim::MemOp::spinUntil(tlast_ + ts_);
      case Phase::SpinRest:
        return sim::MemOp::spinUntil(tlast_ + ts_);
      case Phase::Done:
        return sim::MemOp::halt();
    }
    return sim::MemOp::halt();
}

void
LruSender::onResult(const sim::MemOp &op, const sim::OpResult &res,
                    sim::ProcView &)
{
    auto beginSlot = [this]() {
        if (bitIdx_ >= bits_.size())
            phase_ = Phase::Done;
        else
            phase_ = bits_[bitIdx_] ? Phase::Modulate : Phase::SpinRest;
    };

    switch (op.kind) {
      case sim::MemOp::Kind::TscRead:
        tlast_ = res.tsc;
        beginSlot();
        break;
      case sim::MemOp::Kind::SpinUntil:
        // Slot ended (Algorithm 3: Tlast = post-spin TSC).
        tlast_ = res.tsc;
        ++bitIdx_;
        beginSlot();
        break;
      default:
        break;
    }
}

BaselineResult
runLruChannel(const BaselineConfig &cfg, Cycles modulateCycles)
{
    auto factory = [modulateCycles](const BaselineConfig &c,
                                    const std::vector<bool> &frameBits,
                                    sim::Hierarchy &hierarchy,
                                    Rng &) -> BaselineParts {
        const auto &layout = hierarchy.l1().layout();
        const unsigned ways = c.platform.l1.ways;
        auto rxLines = chan::linesForSet(layout, c.targetSet, ways,
                                         /*tagBase=*/0x100);
        auto txLines = chan::linesForSet(layout, c.targetSet, 1,
                                         /*tagBase=*/1);

        const std::size_t sampleCount =
            frameBits.size() + c.senderStartSlots + c.sampleMargin;

        BaselineParts parts;
        auto receiver = std::make_unique<LruReceiver>(rxLines, c.tr,
                                                      sampleCount);
        parts.latencySource = receiver.get();
        parts.receiver = std::move(receiver);
        parts.sender = std::make_unique<LruSender>(
            txLines[0], frameBits, c.ts, modulateCycles);

        // Centroids: timed line 0 hits L1 for bit 0 and comes from L2
        // for bit 1 (single-load measurement bracketed by rdtscp).
        const auto &lat = c.platform.lat;
        parts.centroidLow = static_cast<double>(
            lat.l1Hit + c.noise.opOverhead + c.noise.tscReadCost);
        parts.centroidHigh = static_cast<double>(
            lat.l2Hit + c.noise.opOverhead + c.noise.tscReadCost);
        return parts;
    };
    return runBaseline(cfg, factory);
}

} // namespace wb::baselines
