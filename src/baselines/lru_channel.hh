/**
 * @file
 * The LRU-state covert channel of Xiong & Szefer (HPCA'20), as the
 * paper describes it in Sec. VI / Fig. 8(a) — the no-shared-memory
 * variant used for all stability and stealth comparisons.
 *
 * Mechanism (8-way set): the receiver keeps eight of its own lines in
 * the target set, split into an init half (lines 0-3) and a decode half
 * (lines 4-7). To send 1, the sender accesses its own line 8 during the
 * slot, pushing the replacement state so that the receiver's decode
 * accesses evict line 0; to send 0 it stays silent. The receiver then
 * times a single load of line 0: an L1 hit decodes 0, an L1 miss
 * decodes 1.
 *
 * Unlike the WB sender (one store per bit), the LRU sender must
 * modulate continuously for the whole slot — the source of its ~1.7x
 * higher cache-load footprint (paper Table VI).
 */

#ifndef WB_BASELINES_LRU_CHANNEL_HH
#define WB_BASELINES_LRU_CHANNEL_HH

#include "baselines/framework.hh"

namespace wb::baselines
{

/** Receiver of the LRU channel (init half + decode half + timed line). */
class LruReceiver : public sim::Program, public LatencySource
{
  public:
    /**
     * @param lines the receiver's W lines mapping to the target set;
     *        lines[0] is the timed line
     * @param tr sampling period
     * @param sampleCount observations before halting
     */
    LruReceiver(std::vector<Addr> lines, Cycles tr,
                std::size_t sampleCount);

    std::optional<sim::MemOp> next(sim::ProcView &view) override;
    void onResult(const sim::MemOp &op, const sim::OpResult &res,
                  sim::ProcView &view) override;

    std::vector<double> latencies() const override { return samples_; }

  private:
    enum class Phase
    {
        Warmup,     //!< one batched double sweep
        InitTsc,
        Wait,
        DecodeHalf, //!< batched sweep of lines W/2..W-1
        MeasStart,  //!< TscRead
        MeasLoad,   //!< timed load of lines[0]
        MeasEnd,    //!< TscRead
        Refill,     //!< batched re-access of lines 1..W/2-1
        Done
    };

    std::vector<Addr> lines_;
    Cycles tr_;
    std::size_t sampleCount_;

    Phase phase_ = Phase::Warmup;
    std::vector<Addr> warmupOrder_; //!< two full sweeps, batched
    bool warmupDone_ = false;
    Cycles tlast_ = 0;
    Cycles tscStart_ = 0;
    std::vector<double> samples_;
};

/** Sender of the LRU channel. */
class LruSender : public sim::Program
{
  public:
    /**
     * @param line the sender's line mapping to the target set
     * @param bits the full bit sequence to modulate
     * @param ts sending period
     * @param modulateCycles how long the 1-bit access burst lasts. A
     *        short burst (default 150 cycles) keeps the receiver's
     *        re-init self-restoring; 0 means modulate the entire slot
     *        (Xiong's continuous modulation — the configuration whose
     *        load footprint paper Table VI measures, but which corrupts
     *        the replacement state whenever the receiver's decode
     *        overlaps it).
     */
    LruSender(Addr line, std::vector<bool> bits, Cycles ts,
              Cycles modulateCycles = 150);

    std::optional<sim::MemOp> next(sim::ProcView &view) override;
    void onResult(const sim::MemOp &op, const sim::OpResult &res,
                  sim::ProcView &view) override;

  private:
    enum class Phase
    {
        Init,
        Modulate, //!< bit 1: tight load loop for the burst window
        SpinRest, //!< busy-wait for the remainder of the slot
        Done
    };

    Addr line_;
    std::vector<bool> bits_;
    Cycles ts_;
    Cycles modulateCycles_;

    Phase phase_ = Phase::Init;
    std::size_t bitIdx_ = 0;
    Cycles tlast_ = 0;
};

/**
 * Run the LRU covert channel end to end.
 * @param modulateCycles see LruSender (0 = whole-slot modulation)
 */
BaselineResult runLruChannel(const BaselineConfig &cfg,
                             Cycles modulateCycles = 150);

} // namespace wb::baselines

#endif // WB_BASELINES_LRU_CHANNEL_HH
