/**
 * @file
 * Shared scaffolding for the baseline covert channels the paper
 * compares against (Table I / Secs. II, VI): the LRU-state channel
 * (Xiong & Szefer), Prime+Probe, Flush+Reload, Flush+Flush, and a
 * coherence-state (dirty/M vs clean/S flush timing) channel.
 *
 * All baselines share the WB channel's pacing (Algorithm 3) and the
 * frame/edit-distance evaluation so the comparison numbers differ only
 * in the transmission mechanism.
 */

#ifndef WB_BASELINES_FRAMEWORK_HH
#define WB_BASELINES_FRAMEWORK_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/bitvec.hh"
#include "common/edit_distance.hh"
#include "chan/noise_process.hh"
#include "chan/protocol.hh"
#include "sim/hierarchy.hh"
#include "sim/noise_model.hh"
#include "sim/platform.hh"
#include "sim/smt_core.hh"

namespace wb::baselines
{

/** Configuration shared by every baseline channel. */
struct BaselineConfig
{
    /** Registry preset this config was built from (see usePlatform). */
    std::string platformName = sim::kDefaultPlatform;
    sim::HierarchyParams platform = sim::xeonE5_2650Params();
    sim::NoiseModel noise;
    Cycles ts = 5500;        //!< sender period
    Cycles tr = 5500;        //!< receiver period
    unsigned frameBits = 128;
    unsigned frames = 30;
    unsigned targetSet = 13;
    std::uint64_t seed = 1;
    double cpuGhz = 2.2;

    /** Co-resident noise processes touching the target set. */
    unsigned noiseProcesses = 0;
    chan::NoiseProcessConfig noiseCfg;

    /** Sender launch delay in slots. */
    unsigned senderStartSlots = 8;

    /** Extra receiver samples beyond the expected bit count. */
    unsigned sampleMargin = 96;

    /** Channel rate in kbps (binary symbols). */
    double rateKbps() const { return cpuGhz * 1e6 / double(ts); }

    /**
     * Reconfigure for a named registry preset (hierarchy parameters +
     * noise model). Fatal on an unknown name. @return *this.
     */
    BaselineConfig &
    usePlatform(const std::string &name)
    {
        sim::applyPlatform(name, platformName, platform, noise);
        return *this;
    }
};

/** Result of one baseline transmission experiment. */
struct BaselineResult
{
    double ber = 1.0;
    EditBreakdown breakdown;
    double rateKbps = 0.0;
    bool aligned = false;
    unsigned framesScored = 0;
    unsigned framesExpected = 0;
    std::vector<double> latencies;
    BitVec sentFrame;
    sim::PerfCounters senderCounters;
    sim::PerfCounters receiverCounters;
};

/**
 * A paced bit sender/receiver pair. The runner owns the platform; the
 * factories create the two programs once the hierarchy layout and the
 * frame bit sequence are known.
 *
 * The receiver program must expose its per-slot latency samples via
 * the LatencySource interface.
 */
class LatencySource
{
  public:
    virtual ~LatencySource() = default;

    /** Per-slot measured latencies, in observation order. */
    virtual std::vector<double> latencies() const = 0;
};

/** What a baseline channel module hands to the shared runner. */
struct BaselineParts
{
    std::unique_ptr<sim::Program> sender;
    std::unique_ptr<sim::Program> receiver;
    LatencySource *latencySource = nullptr; //!< view into receiver

    /**
     * Calibrated centroids in increasing latency order. When the fast
     * symbol corresponds to bit 1 (Flush+Reload: a sender touch makes
     * the reload *faster*), set invert so the runner flips decoded
     * bits after classification.
     */
    double centroidLow = 0.0;
    double centroidHigh = 0.0;
    bool invert = false;

    /** Address spaces (factories add shared segments here). */
    sim::AddressSpace senderSpace{1};
    sim::AddressSpace receiverSpace{2};
};

/** Builds the two programs for a specific channel mechanism. */
using PartsFactory = std::function<BaselineParts(
    const BaselineConfig &cfg, const std::vector<bool> &frameBits,
    sim::Hierarchy &hierarchy, Rng &rng)>;

/**
 * Shared experiment loop: build platform, run sender+receiver (+noise
 * processes), classify the receiver's latencies against the two
 * calibrated centroids, align frames and score with edit distance.
 */
BaselineResult runBaseline(const BaselineConfig &cfg,
                           const PartsFactory &factory);

/**
 * The shared decode tail of every binary baseline: classify
 * res.latencies against {centroidLow, centroidHigh}, optionally
 * invert, align the repeated @p frame and score it with the edit
 * distance, filling res.ber/breakdown/aligned/framesScored.
 * @pre centroidHigh > centroidLow — panics otherwise; callers that
 * cannot guarantee separation branch before calling (see
 * runCrossCorePrimeProbe).
 */
void scoreBinaryLatencies(BaselineResult &res, double centroidLow,
                          double centroidHigh, bool invert,
                          const BitVec &frame, unsigned framesExpected);

} // namespace wb::baselines

#endif // WB_BASELINES_FRAMEWORK_HH
