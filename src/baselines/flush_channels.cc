#include "baselines/flush_channels.hh"

#include "common/log.hh"
#include "sim/observer.hh"

namespace wb::baselines
{

namespace
{

/** Virtual address both parties map the shared line at. */
constexpr Addr sharedVa = 0x7f000000;

} // namespace

std::string
flushKindName(FlushKind kind)
{
    switch (kind) {
      case FlushKind::FlushReload:
        return "Flush+Reload";
      case FlushKind::FlushFlush:
        return "Flush+Flush";
      case FlushKind::CoherenceState:
        return "CoherenceState";
    }
    return "?";
}

FlushReceiver::FlushReceiver(Addr sharedLine, FlushKind kind, Cycles tr,
                             std::size_t sampleCount)
    : line_(sharedLine), kind_(kind), tr_(tr), sampleCount_(sampleCount)
{
}

std::optional<sim::MemOp>
FlushReceiver::next(sim::ProcView &)
{
    switch (phase_) {
      case Phase::InitTsc:
        return sim::MemOp::tscRead();
      case Phase::Wait:
        return sim::MemOp::spinUntil(tlast_ + tr_);
      case Phase::MeasStart:
        return sim::MemOp::tscRead();
      case Phase::MeasOp:
        return kind_ == FlushKind::FlushReload ? sim::MemOp::load(line_)
                                               : sim::MemOp::flush(line_);
      case Phase::MeasEnd:
        return sim::MemOp::tscRead();
      case Phase::CleanFlush:
        return sim::MemOp::flush(line_);
      case Phase::Done:
        return sim::MemOp::halt();
    }
    return sim::MemOp::halt();
}

void
FlushReceiver::onResult(const sim::MemOp &, const sim::OpResult &res,
                        sim::ProcView &)
{
    switch (phase_) {
      case Phase::InitTsc:
        tlast_ = res.tsc;
        phase_ = Phase::Wait;
        break;
      case Phase::Wait:
        tlast_ = res.tsc;
        phase_ = Phase::MeasStart;
        break;
      case Phase::MeasStart:
        tscStart_ = res.tsc;
        phase_ = Phase::MeasOp;
        break;
      case Phase::MeasOp:
        phase_ = Phase::MeasEnd;
        break;
      case Phase::MeasEnd:
        samples_.push_back(static_cast<double>(res.tsc - tscStart_));
        if (samples_.size() >= sampleCount_)
            phase_ = Phase::Done;
        else if (kind_ == FlushKind::FlushReload)
            phase_ = Phase::CleanFlush;
        else
            phase_ = Phase::Wait;
        break;
      case Phase::CleanFlush:
        phase_ = Phase::Wait;
        break;
      case Phase::Done:
        break;
    }
}

FlushSender::FlushSender(Addr sharedLine, FlushKind kind,
                         std::vector<bool> bits, Cycles ts)
    : line_(sharedLine), kind_(kind), bits_(std::move(bits)), ts_(ts)
{
}

std::optional<sim::MemOp>
FlushSender::next(sim::ProcView &)
{
    switch (phase_) {
      case Phase::Init:
        return sim::MemOp::tscRead();
      case Phase::Touch: {
        const bool one = bits_[bitIdx_];
        if (kind_ == FlushKind::CoherenceState) {
            // M (dirty) for 1, shared/clean for 0.
            return one ? sim::MemOp::store(line_) : sim::MemOp::load(line_);
        }
        // FlushReload / FlushFlush: touch for 1 (never reached for 0;
        // beginSlot routes 0-bits straight to Wait).
        return sim::MemOp::load(line_);
      }
      case Phase::Wait:
        return sim::MemOp::spinUntil(tlast_ + ts_);
      case Phase::Done:
        return sim::MemOp::halt();
    }
    return sim::MemOp::halt();
}

void
FlushSender::onResult(const sim::MemOp &op, const sim::OpResult &res,
                      sim::ProcView &)
{
    auto beginSlot = [this]() {
        if (bitIdx_ >= bits_.size()) {
            phase_ = Phase::Done;
        } else if (kind_ == FlushKind::CoherenceState || bits_[bitIdx_]) {
            // The coherence channel touches on every bit (load vs
            // store); the others only on 1-bits.
            phase_ = Phase::Touch;
        } else {
            phase_ = Phase::Wait;
        }
    };

    switch (op.kind) {
      case sim::MemOp::Kind::TscRead:
        tlast_ = res.tsc;
        beginSlot();
        break;
      case sim::MemOp::Kind::Load:
      case sim::MemOp::Kind::Store:
        phase_ = Phase::Wait;
        break;
      case sim::MemOp::Kind::SpinUntil:
        tlast_ = res.tsc;
        ++bitIdx_;
        beginSlot();
        break;
      default:
        break;
    }
}

bool
flushChannelAvailable(const BaselineConfig &cfg)
{
    return cfg.noise.observer.hasFlush;
}

BaselineResult
runFlushChannel(const BaselineConfig &cfg, FlushKind kind)
{
    if (!flushChannelAvailable(cfg)) {
        // Fail loudly before the platform is even built: the receiver
        // would otherwise issue its first clflush straight into the
        // SmtCore observer guard mid-run.
        fatalf("runFlushChannel: ", flushKindName(kind),
               " requires clflush, but the ",
               sim::observerClassName(cfg.noise.observer.cls),
               " observer has hasFlush=false — channel denied");
    }
    auto factory = [kind](const BaselineConfig &c,
                          const std::vector<bool> &frameBits,
                          sim::Hierarchy &,
                          Rng &) -> BaselineParts {
        const std::size_t sampleCount =
            frameBits.size() + c.senderStartSlots + c.sampleMargin;

        BaselineParts parts;
        // Both processes map the same physical page.
        parts.senderSpace.mapShared(sharedVa, 4096, /*physBase=*/0x1000);
        parts.receiverSpace.mapShared(sharedVa, 4096, /*physBase=*/0x1000);

        auto receiver = std::make_unique<FlushReceiver>(
            sharedVa, kind, c.tr, sampleCount);
        parts.latencySource = receiver.get();
        parts.receiver = std::move(receiver);
        parts.sender = std::make_unique<FlushSender>(
            sharedVa, kind, frameBits, c.ts);

        const auto &lat = c.platform.lat;
        const double tsc = static_cast<double>(c.noise.tscReadCost);
        const double ov = static_cast<double>(c.noise.opOverhead);
        switch (kind) {
          case FlushKind::FlushReload:
            // Present (sender touched: bit 1) = fast L1/L2 hit;
            // absent (bit 0) = DRAM. Inverted mapping.
            parts.centroidLow = tsc + ov + double(lat.l1Hit);
            parts.centroidHigh = tsc + ov + double(lat.mem);
            parts.invert = true;
            break;
          case FlushKind::FlushFlush:
            // Absent (0) = base flush; present clean (1) = +extra.
            parts.centroidLow = tsc + ov + double(lat.flushBase);
            parts.centroidHigh =
                tsc + ov + double(lat.flushBase + lat.flushPresentExtra);
            break;
          case FlushKind::CoherenceState:
            // Present clean / S (0) vs present dirty / M (1).
            parts.centroidLow =
                tsc + ov + double(lat.flushBase + lat.flushPresentExtra);
            parts.centroidHigh =
                tsc + ov + double(lat.flushBase + lat.flushPresentExtra +
                                  lat.flushDirtyExtra);
            break;
        }
        return parts;
    };
    return runBaseline(cfg, factory);
}

} // namespace wb::baselines
