/**
 * @file
 * The shared-memory ("reuse-based") baseline channels of paper
 * Table I: Flush+Reload, Flush+Flush, and a coherence-state channel.
 *
 * All three require the sender and receiver to map a common physical
 * line (the WB channel explicitly does not), which is exactly why cloud
 * providers' page-deduplication bans defeat them (paper Sec. VI).
 *
 *  - Flush+Reload (Hit+Miss): receiver times a reload of the shared
 *    line; a sender touch makes it a cache hit, silence a DRAM miss.
 *    The receiver clflushes the line after every measurement.
 *  - Flush+Flush (Miss+Miss): receiver times the clflush itself, which
 *    is slower when the line is present somewhere in the hierarchy.
 *  - Coherence-state (Miss+Miss, after Yao et al.): the sender leaves
 *    the shared line modified (M, dirty) or shared/clean; the receiver
 *    times the clflush, which must write back an M line — the same
 *    dirty-state asymmetry the WB channel exploits, but via coherence.
 */

#ifndef WB_BASELINES_FLUSH_CHANNELS_HH
#define WB_BASELINES_FLUSH_CHANNELS_HH

#include "baselines/framework.hh"

namespace wb::baselines
{

/** Which flush-family mechanism to run. */
enum class FlushKind
{
    FlushReload,
    FlushFlush,
    CoherenceState
};

/** Human-readable channel name. */
std::string flushKindName(FlushKind kind);

/**
 * Whether the configured observer permits the flush family at all: the
 * three mechanisms are built on clflush, so an observer with
 * hasFlush == false (ObserverClass::EvictionOnly) denies them outright
 * — no fallback exists that is still "the same channel". Sweeps call
 * this to print those cells as denied instead of crashing into the
 * SmtCore Flush guard; runFlushChannel() fatals when it is false.
 */
bool flushChannelAvailable(const BaselineConfig &cfg);

/**
 * Receiver for the flush-family channels: per slot either a timed
 * reload followed by clflush (FlushReload), or a timed clflush
 * (FlushFlush / CoherenceState).
 */
class FlushReceiver : public sim::Program, public LatencySource
{
  public:
    /**
     * @param sharedLine the shared line's virtual address (receiver's
     *        mapping)
     * @param kind which mechanism
     * @param tr sampling period
     * @param sampleCount observations before halting
     */
    FlushReceiver(Addr sharedLine, FlushKind kind, Cycles tr,
                  std::size_t sampleCount);

    std::optional<sim::MemOp> next(sim::ProcView &view) override;
    void onResult(const sim::MemOp &op, const sim::OpResult &res,
                  sim::ProcView &view) override;

    std::vector<double> latencies() const override { return samples_; }

  private:
    enum class Phase
    {
        InitTsc,
        Wait,
        MeasStart, //!< TscRead
        MeasOp,    //!< timed Load (FlushReload) or Flush (others)
        MeasEnd,   //!< TscRead
        CleanFlush, //!< FlushReload: untimed clflush after measuring
        Done
    };

    Addr line_;
    FlushKind kind_;
    Cycles tr_;
    std::size_t sampleCount_;

    Phase phase_ = Phase::InitTsc;
    Cycles tlast_ = 0;
    Cycles tscStart_ = 0;
    std::vector<double> samples_;
};

/**
 * Sender for the flush-family channels: touches (or, for the coherence
 * channel, stores to) the shared line to send 1.
 */
class FlushSender : public sim::Program
{
  public:
    /**
     * @param sharedLine the shared line's virtual address (sender's
     *        mapping)
     * @param kind which mechanism (CoherenceState stores; others load)
     * @param bits the bit sequence
     * @param ts sending period
     */
    FlushSender(Addr sharedLine, FlushKind kind, std::vector<bool> bits,
                Cycles ts);

    std::optional<sim::MemOp> next(sim::ProcView &view) override;
    void onResult(const sim::MemOp &op, const sim::OpResult &res,
                  sim::ProcView &view) override;

  private:
    enum class Phase
    {
        Init,
        Touch,
        Wait,
        Done
    };

    Addr line_;
    FlushKind kind_;
    std::vector<bool> bits_;
    Cycles ts_;

    Phase phase_ = Phase::Init;
    std::size_t bitIdx_ = 0;
    Cycles tlast_ = 0;
};

/** Run one of the flush-family channels end to end. */
BaselineResult runFlushChannel(const BaselineConfig &cfg, FlushKind kind);

} // namespace wb::baselines

#endif // WB_BASELINES_FLUSH_CHANNELS_HH
