#include "baselines/prime_probe.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/stats.hh"
#include "chan/set_mapping.hh"
#include "sim/multicore.hh"

namespace wb::baselines
{

PrimeProbeReceiver::PrimeProbeReceiver(std::vector<Addr> lines, Cycles tr,
                                       std::size_t sampleCount,
                                       bool reprimeEachSlot)
    : lines_(std::move(lines)), tr_(tr), sampleCount_(sampleCount),
      reprimeEachSlot_(reprimeEachSlot)
{
    if (lines_.empty())
        fatalf("PrimeProbeReceiver: needs prime lines");
    // Two full sweeps fill the set and warm L2, as one batched sweep.
    warmupOrder_.reserve(2 * lines_.size());
    for (int sweep = 0; sweep < 2; ++sweep)
        warmupOrder_.insert(warmupOrder_.end(), lines_.begin(),
                            lines_.end());
    probeOrder_ = lines_;
}

std::optional<sim::MemOp>
PrimeProbeReceiver::next(sim::ProcView &)
{
    switch (phase_) {
      case Phase::Warmup:
        if (!warmupDone_) {
            warmupDone_ = true;
            return sim::MemOp::loadBatch(warmupOrder_.data(),
                                         warmupOrder_.size());
        }
        phase_ = Phase::InitTsc;
        return sim::MemOp::tscRead();
      case Phase::InitTsc:
        return sim::MemOp::tscRead();
      case Phase::Wait:
        return sim::MemOp::spinUntil(tlast_ + tr_);
      case Phase::ProbeStart:
        return sim::MemOp::tscRead();
      case Phase::Probe:
        return sim::MemOp::loadBatch(probeOrder_.data(),
                                     probeOrder_.size());
      case Phase::ProbeEnd:
        return sim::MemOp::tscRead();
      case Phase::Reprime:
        return sim::MemOp::loadBatch(lines_.data(), lines_.size());
      case Phase::Done:
        return sim::MemOp::halt();
    }
    return sim::MemOp::halt();
}

void
PrimeProbeReceiver::onResult(const sim::MemOp &, const sim::OpResult &res,
                             sim::ProcView &)
{
    switch (phase_) {
      case Phase::Warmup:
        // The warm-up batch completed; next() moves on to InitTsc.
        break;
      case Phase::InitTsc:
        tlast_ = res.tsc;
        phase_ = Phase::Wait;
        break;
      case Phase::Wait: {
        tlast_ = res.tsc;
        // Walk the probe in the reverse of the previous traversal
        // order (the anti-thrashing trick of paper Sec. VI-A). With a
        // per-slot re-prime the set state is canonical at every probe,
        // and reversing would only oscillate the baseline: keep the
        // forward order then.
        probeOrder_.assign(lines_.begin(), lines_.end());
        if (!forward_ && !reprimeEachSlot_)
            std::reverse(probeOrder_.begin(), probeOrder_.end());
        phase_ = Phase::ProbeStart;
        break;
      }
      case Phase::ProbeStart:
        tscStart_ = res.tsc;
        phase_ = Phase::Probe;
        break;
      case Phase::Probe:
        phase_ = Phase::ProbeEnd;
        break;
      case Phase::ProbeEnd:
        samples_.push_back(static_cast<double>(res.tsc - tscStart_));
        forward_ = !forward_; // reverse traversal next slot
        if (samples_.size() >= sampleCount_)
            phase_ = Phase::Done;
        else
            phase_ = reprimeEachSlot_ ? Phase::Reprime : Phase::Wait;
        break;
      case Phase::Reprime:
        phase_ = Phase::Wait;
        break;
      case Phase::Done:
        break;
    }
}

PrimeProbeSender::PrimeProbeSender(std::vector<Addr> lines,
                                   unsigned linesPerOne,
                                   std::vector<bool> bits, Cycles ts)
    : lines_(std::move(lines)), linesPerOne_(linesPerOne),
      bits_(std::move(bits)), ts_(ts)
{
    if (linesPerOne_ > lines_.size())
        fatalf("PrimeProbeSender: linesPerOne exceeds line pool");
}

std::optional<sim::MemOp>
PrimeProbeSender::next(sim::ProcView &)
{
    switch (phase_) {
      case Phase::Init:
        return sim::MemOp::tscRead();
      case Phase::Touch:
        return sim::MemOp::loadBatch(lines_.data(), linesPerOne_);
      case Phase::Wait:
        return sim::MemOp::spinUntil(tlast_ + ts_);
      case Phase::Done:
        return sim::MemOp::halt();
    }
    return sim::MemOp::halt();
}

void
PrimeProbeSender::onResult(const sim::MemOp &op, const sim::OpResult &res,
                           sim::ProcView &)
{
    auto beginSlot = [this]() {
        if (bitIdx_ >= bits_.size())
            phase_ = Phase::Done;
        else
            phase_ = bits_[bitIdx_] ? Phase::Touch : Phase::Wait;
    };

    switch (op.kind) {
      case sim::MemOp::Kind::TscRead:
        tlast_ = res.tsc;
        beginSlot();
        break;
      case sim::MemOp::Kind::LoadBatch:
        phase_ = Phase::Wait;
        break;
      case sim::MemOp::Kind::SpinUntil:
        tlast_ = res.tsc;
        ++bitIdx_;
        beginSlot();
        break;
      default:
        break;
    }
}

BaselineResult
runPrimeProbeChannel(const BaselineConfig &cfg, unsigned linesPerOne)
{
    auto factory = [linesPerOne](const BaselineConfig &c,
                                 const std::vector<bool> &frameBits,
                                 sim::Hierarchy &hierarchy,
                                 Rng &) -> BaselineParts {
        const auto &layout = hierarchy.l1().layout();
        const unsigned ways = c.platform.l1.ways;
        auto rxLines = chan::linesForSet(layout, c.targetSet, ways,
                                         /*tagBase=*/0x100);
        auto txLines = chan::linesForSet(layout, c.targetSet,
                                         std::max(1u, linesPerOne),
                                         /*tagBase=*/1);

        const std::size_t sampleCount =
            chan::transmissionSchedule(frameBits.size(), c.ts,
                                       c.senderStartSlots, c.sampleMargin)
                .sampleCount;

        BaselineParts parts;
        auto receiver = std::make_unique<PrimeProbeReceiver>(
            rxLines, c.tr, sampleCount);
        parts.latencySource = receiver.get();
        parts.receiver = std::move(receiver);
        parts.sender = std::make_unique<PrimeProbeSender>(
            txLines, linesPerOne, frameBits, c.ts);

        // Centroids: all-hit probe vs. linesPerOne L2 refills.
        const auto &lat = c.platform.lat;
        const double perHit =
            static_cast<double>(lat.l1Hit + c.noise.opOverhead);
        const double base = perHit * ways +
            static_cast<double>(c.noise.tscReadCost);
        parts.centroidLow = base;
        parts.centroidHigh = base +
            static_cast<double>(linesPerOne) *
                static_cast<double>(lat.l2Hit - lat.l1Hit);
        return parts;
    };
    return runBaseline(cfg, factory);
}

BaselineResult
runCrossCorePrimeProbe(const BaselineConfig &cfg, unsigned linesPerOne,
                       unsigned cores)
{
    if (cores < 2)
        fatalf("runCrossCorePrimeProbe: needs at least 2 cores");
    if (cfg.noiseProcesses != 0) {
        fatalf("runCrossCorePrimeProbe: co-resident noise processes "
               "are not modeled cross-core yet");
    }
    linesPerOne = std::max(1u, linesPerOne);

    Rng rootRng(cfg.seed);
    Rng frameRng = rootRng.split();
    Rng calRng = rootRng.split();
    Rng runRng = rootRng.split();

    const BitVec frame = randomFrame(cfg.frameBits - 16, frameRng);
    BitVec allBits;
    allBits.reserve(static_cast<std::size_t>(cfg.frameBits) * cfg.frames);
    for (unsigned f = 0; f < cfg.frames; ++f)
        allBits.insert(allBits.end(), frame.begin(), frame.end());

    const sim::AddressLayout llcLayout(cfg.platform.llc.numSets());
    const unsigned ways = cfg.platform.llc.ways;
    auto rxLines = chan::linesForSet(llcLayout, cfg.targetSet, ways,
                                     /*tagBase=*/0x100);
    auto txLines = chan::linesForSet(llcLayout, cfg.targetSet,
                                     linesPerOne, /*tagBase=*/1);

    // --- Empirical centroid calibration: whole-set probe latency with
    // and without the sender's slot touch, medians over a short
    // offline interleave (the steady state depends on how much of the
    // primed set survives in the receiver's privates, which no closed
    // form captures across inclusive/non-inclusive LLCs). ---
    Samples lo, hi;
    {
        sim::MultiCoreSystem mc(cfg.platform, cores, &calRng);
        sim::AddressSpace txSpace(1), rxSpace(2);
        auto probeOnce = [&]() {
            // Mirror the live receiver exactly (forward-order timed
            // probe, then an untimed re-prime — see reprimeEachSlot),
            // so the calibrated steady state is the one the live
            // probes see.
            const auto b = mc.accessBatch(1, 0, rxSpace, rxLines, false);
            const double lat = static_cast<double>(
                b.totalLatency + cfg.noise.opOverhead * b.accesses +
                cfg.noise.tscReadCost);
            mc.accessBatch(1, 0, rxSpace, rxLines, false);
            return lat;
        };
        for (int sweep = 0; sweep < 4; ++sweep)
            probeOnce(); // prime into steady state
        for (int i = 0; i < 40; ++i)
            lo.add(probeOnce());
        for (int i = 0; i < 40; ++i) {
            mc.accessBatch(0, 0, txSpace, txLines.data(), linesPerOne,
                           false);
            hi.add(probeOnce());
        }
    }
    const double centroidLow = lo.median();
    const double centroidHigh = hi.median();

    // --- Live run: one SmtCore front-end per core, interleaved in
    // global time order. ---
    sim::MultiCoreSystem mc(cfg.platform, cores, &runRng);
    sim::SmtCore senderCore(mc.port(0), cfg.noise, runRng);
    sim::SmtCore receiverCore(mc.port(1), cfg.noise, runRng);

    const chan::TransmissionSchedule sched = chan::transmissionSchedule(
        allBits.size(), cfg.ts, cfg.senderStartSlots, cfg.sampleMargin);
    PrimeProbeReceiver receiver(rxLines, cfg.tr, sched.sampleCount,
                                /*reprimeEachSlot=*/true);
    PrimeProbeSender sender(txLines, linesPerOne, allBits, cfg.ts);

    const ThreadId senderTid = senderCore.addThread(
        &sender, sim::AddressSpace(1), sched.senderStart);
    const ThreadId receiverTid =
        receiverCore.addThread(&receiver, sim::AddressSpace(2), 0);

    sim::runCores({&senderCore, &receiverCore}, sched.horizon);

    BaselineResult res;
    res.latencies = receiver.latencies();
    res.rateKbps = cfg.rateKbps();
    res.sentFrame = frame;
    res.framesExpected = cfg.frames;

    res.senderCounters = mc.counters(0, senderTid);
    res.receiverCounters = mc.counters(1, receiverTid);
    if (centroidHigh <= centroidLow) {
        // No separable signal (non-inclusive LLC): report the raw
        // failure instead of classifying noise.
        res.ber = 1.0;
        return res;
    }
    scoreBinaryLatencies(res, centroidLow, centroidHigh,
                         /*invert=*/false, frame, cfg.frames);
    return res;
}

} // namespace wb::baselines
