#include "baselines/prime_probe.hh"

#include <algorithm>

#include "common/log.hh"
#include "chan/set_mapping.hh"

namespace wb::baselines
{

PrimeProbeReceiver::PrimeProbeReceiver(std::vector<Addr> lines, Cycles tr,
                                       std::size_t sampleCount)
    : lines_(std::move(lines)), tr_(tr), sampleCount_(sampleCount)
{
    if (lines_.empty())
        fatalf("PrimeProbeReceiver: needs prime lines");
    // Two full sweeps fill the set and warm L2, as one batched sweep.
    warmupOrder_.reserve(2 * lines_.size());
    for (int sweep = 0; sweep < 2; ++sweep)
        warmupOrder_.insert(warmupOrder_.end(), lines_.begin(),
                            lines_.end());
    probeOrder_ = lines_;
}

std::optional<sim::MemOp>
PrimeProbeReceiver::next(sim::ProcView &)
{
    switch (phase_) {
      case Phase::Warmup:
        if (!warmupDone_) {
            warmupDone_ = true;
            return sim::MemOp::loadBatch(warmupOrder_.data(),
                                         warmupOrder_.size());
        }
        phase_ = Phase::InitTsc;
        return sim::MemOp::tscRead();
      case Phase::InitTsc:
        return sim::MemOp::tscRead();
      case Phase::Wait:
        return sim::MemOp::spinUntil(tlast_ + tr_);
      case Phase::ProbeStart:
        return sim::MemOp::tscRead();
      case Phase::Probe:
        return sim::MemOp::loadBatch(probeOrder_.data(),
                                     probeOrder_.size());
      case Phase::ProbeEnd:
        return sim::MemOp::tscRead();
      case Phase::Done:
        return sim::MemOp::halt();
    }
    return sim::MemOp::halt();
}

void
PrimeProbeReceiver::onResult(const sim::MemOp &, const sim::OpResult &res,
                             sim::ProcView &)
{
    switch (phase_) {
      case Phase::Warmup:
        // The warm-up batch completed; next() moves on to InitTsc.
        break;
      case Phase::InitTsc:
        tlast_ = res.tsc;
        phase_ = Phase::Wait;
        break;
      case Phase::Wait: {
        tlast_ = res.tsc;
        // Walk the probe in the reverse of the previous traversal
        // order (the anti-thrashing trick of paper Sec. VI-A).
        probeOrder_.assign(lines_.begin(), lines_.end());
        if (!forward_)
            std::reverse(probeOrder_.begin(), probeOrder_.end());
        phase_ = Phase::ProbeStart;
        break;
      }
      case Phase::ProbeStart:
        tscStart_ = res.tsc;
        phase_ = Phase::Probe;
        break;
      case Phase::Probe:
        phase_ = Phase::ProbeEnd;
        break;
      case Phase::ProbeEnd:
        samples_.push_back(static_cast<double>(res.tsc - tscStart_));
        forward_ = !forward_; // reverse traversal next slot
        phase_ = samples_.size() >= sampleCount_ ? Phase::Done
                                                 : Phase::Wait;
        break;
      case Phase::Done:
        break;
    }
}

PrimeProbeSender::PrimeProbeSender(std::vector<Addr> lines,
                                   unsigned linesPerOne,
                                   std::vector<bool> bits, Cycles ts)
    : lines_(std::move(lines)), linesPerOne_(linesPerOne),
      bits_(std::move(bits)), ts_(ts)
{
    if (linesPerOne_ > lines_.size())
        fatalf("PrimeProbeSender: linesPerOne exceeds line pool");
}

std::optional<sim::MemOp>
PrimeProbeSender::next(sim::ProcView &)
{
    switch (phase_) {
      case Phase::Init:
        return sim::MemOp::tscRead();
      case Phase::Touch:
        return sim::MemOp::loadBatch(lines_.data(), linesPerOne_);
      case Phase::Wait:
        return sim::MemOp::spinUntil(tlast_ + ts_);
      case Phase::Done:
        return sim::MemOp::halt();
    }
    return sim::MemOp::halt();
}

void
PrimeProbeSender::onResult(const sim::MemOp &op, const sim::OpResult &res,
                           sim::ProcView &)
{
    auto beginSlot = [this]() {
        if (bitIdx_ >= bits_.size())
            phase_ = Phase::Done;
        else
            phase_ = bits_[bitIdx_] ? Phase::Touch : Phase::Wait;
    };

    switch (op.kind) {
      case sim::MemOp::Kind::TscRead:
        tlast_ = res.tsc;
        beginSlot();
        break;
      case sim::MemOp::Kind::LoadBatch:
        phase_ = Phase::Wait;
        break;
      case sim::MemOp::Kind::SpinUntil:
        tlast_ = res.tsc;
        ++bitIdx_;
        beginSlot();
        break;
      default:
        break;
    }
}

BaselineResult
runPrimeProbeChannel(const BaselineConfig &cfg, unsigned linesPerOne)
{
    auto factory = [linesPerOne](const BaselineConfig &c,
                                 const std::vector<bool> &frameBits,
                                 sim::Hierarchy &hierarchy,
                                 Rng &) -> BaselineParts {
        const auto &layout = hierarchy.l1().layout();
        const unsigned ways = c.platform.l1.ways;
        auto rxLines = chan::linesForSet(layout, c.targetSet, ways,
                                         /*tagBase=*/0x100);
        auto txLines = chan::linesForSet(layout, c.targetSet,
                                         std::max(1u, linesPerOne),
                                         /*tagBase=*/1);

        const std::size_t sampleCount =
            frameBits.size() + c.senderStartSlots + c.sampleMargin;

        BaselineParts parts;
        auto receiver = std::make_unique<PrimeProbeReceiver>(
            rxLines, c.tr, sampleCount);
        parts.latencySource = receiver.get();
        parts.receiver = std::move(receiver);
        parts.sender = std::make_unique<PrimeProbeSender>(
            txLines, linesPerOne, frameBits, c.ts);

        // Centroids: all-hit probe vs. linesPerOne L2 refills.
        const auto &lat = c.platform.lat;
        const double perHit =
            static_cast<double>(lat.l1Hit + c.noise.opOverhead);
        const double base = perHit * ways +
            static_cast<double>(c.noise.tscReadCost);
        parts.centroidLow = base;
        parts.centroidHigh = base +
            static_cast<double>(linesPerOne) *
                static_cast<double>(lat.l2Hit - lat.l1Hit);
        return parts;
    };
    return runBaseline(cfg, factory);
}

} // namespace wb::baselines
