/**
 * @file
 * Lightweight statistics containers used by experiments and benches:
 * online mean/variance, sample collections with percentiles, histograms
 * and empirical CDFs (paper Fig. 4 is an overlay of per-d CDFs).
 */

#ifndef WB_COMMON_STATS_HH
#define WB_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wb
{

/** Numerically stable online mean/variance accumulator (Welford). */
class OnlineStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations so far. */
    std::size_t count() const { return n_; }

    /** Sample mean (0 when empty). */
    double mean() const { return mean_; }

    /** Unbiased sample variance (0 with fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest observation seen (0 when empty). */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest observation seen (0 when empty). */
    double max() const { return n_ ? max_ : 0.0; }

    /** Merge another accumulator into this one. */
    void merge(const OnlineStats &other);

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A bag of scalar samples supporting percentiles, median and empirical
 * CDF evaluation. Sorting is performed lazily and cached.
 */
class Samples
{
  public:
    /** Append one sample. */
    void add(double x);

    /** Append many samples. */
    void addAll(const std::vector<double> &xs);

    /** Number of stored samples. */
    std::size_t count() const { return data_.size(); }

    /** True when no samples are stored. */
    bool empty() const { return data_.empty(); }

    /** Sample mean (0 when empty). */
    double mean() const;

    /** Sample standard deviation (0 with fewer than two samples). */
    double stddev() const;

    /**
     * Percentile via nearest-rank interpolation.
     * @param p percentile in [0, 100].
     */
    double percentile(double p) const;

    /** Median, i.e. percentile(50). */
    double median() const { return percentile(50.0); }

    /** Fraction of samples <= x (the empirical CDF evaluated at x). */
    double cdfAt(double x) const;

    /** Read-only access to the (unsorted) raw samples. */
    const std::vector<double> &raw() const { return data_; }

    /**
     * Evaluate the CDF on a regular grid, for plotting/printing.
     * @param lo grid start
     * @param hi grid end (inclusive)
     * @param steps number of grid points (>= 2)
     * @return pairs (x, P[X <= x])
     */
    std::vector<std::pair<double, double>>
    cdfGrid(double lo, double hi, std::size_t steps) const;

  private:
    void ensureSorted() const;

    std::vector<double> data_;
    mutable std::vector<double> sorted_;
    mutable bool dirty_ = false;
};

/** Fixed-bin-width histogram over doubles. */
class Histogram
{
  public:
    /**
     * @param lo lower edge of the first bin
     * @param binWidth width of every bin (> 0)
     * @param bins number of bins; samples outside clamp to first/last
     */
    Histogram(double lo, double binWidth, std::size_t bins);

    /** Add one observation. */
    void add(double x);

    /** Count in bin i. */
    std::uint64_t binCount(std::size_t i) const { return counts_.at(i); }

    /** Center x-value of bin i. */
    double binCenter(std::size_t i) const;

    /** Number of bins. */
    std::size_t bins() const { return counts_.size(); }

    /** Total observations. */
    std::uint64_t total() const { return total_; }

    /** Render as a compact ASCII bar chart (for bench output). */
    std::string ascii(std::size_t width = 50) const;

  private:
    double lo_;
    double binWidth_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/** A ratio expressed with hit/total counters, printed as a percentage. */
struct Rate
{
    std::uint64_t hits = 0;  //!< numerator
    std::uint64_t total = 0; //!< denominator

    /** Record one event, counting toward hits when @p hit. */
    void
    record(bool hit)
    {
        ++total;
        if (hit)
            ++hits;
    }

    /** hits/total in [0,1]; 0 when total == 0. */
    double value() const { return total ? double(hits) / total : 0.0; }

    /** 100 * value(). */
    double percent() const { return 100.0 * value(); }
};

} // namespace wb

#endif // WB_COMMON_STATS_HH
