/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * All simulator randomness flows through one seeded Rng instance per run so
 * experiments are bit-exact reproducible. The core generator is
 * xoshiro256** (Blackman & Vigna), seeded via SplitMix64.
 */

#ifndef WB_COMMON_RNG_HH
#define WB_COMMON_RNG_HH

#include <array>
#include <cstdint>
#include <vector>

namespace wb
{

/**
 * xoshiro256** pseudo-random generator with convenience distributions.
 *
 * Not thread safe; each simulation run owns exactly one instance and all
 * components draw from it in deterministic order.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /**
     * Restart the generator stream from @p seed: the core state is
     * re-expanded via SplitMix64 and gaussian()'s Marsaglia spare is
     * dropped, exactly as a freshly constructed Rng(seed). Sweep
     * harnesses reseed between repetitions for bit-exact
     * reproducibility without re-wiring the Rng* a hierarchy holds.
     *
     * The gaussianCached() block is NOT dropped here: it is a
     * prefetch owned by the hot-path consumer, and the consumer's
     * reset (Hierarchy::resetAll() / MultiCoreSystem::resetAll())
     * discards it. Callers using gaussianCached() directly must pair
     * reseed() with discardCachedDeviates() themselves.
     */
    void reseed(std::uint64_t seed);

    /**
     * Drop the precomputed gaussianCached() block, so the next draw
     * refills from the generator's current stream position. Without
     * this, a reseeded sweep would first consume stale deviates
     * computed from the previous run's stream — the reason
     * Hierarchy::resetAll()/MultiCoreSystem::resetAll() call it.
     */
    void
    discardCachedDeviates()
    {
        gaussPos_ = 0;
        gaussFill_ = 0;
    }

    /**
     * Next raw 64-bit value. Inline: this sits under every per-access
     * noise draw, preempt roll and burst-order shuffle of the hot
     * simulation loops, where the out-of-line call was measurable.
     */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;

        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);

        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Debiased via rejection sampling on the top of the range.
        const std::uint64_t threshold = -bound % bound;
        for (;;) {
            std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform() { return (next() >> 11) * 0x1.0p-53; }

    /** Bernoulli draw: true with probability p (clamped to [0,1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /** Standard normal draw (Marsaglia polar method). */
    double gaussian();

    /** Normal draw with the given mean and standard deviation. */
    double gaussian(double mean, double sigma);

    /**
     * Standard normal draw served from a refill-on-demand block of
     * deviates precomputed by the ziggurat method. Hot paths that
     * charge per-access Gaussian noise (Hierarchy::accessBatch) use
     * this instead of gaussian(): a ziggurat draw is one raw draw, a
     * table compare and a multiply in the ~98% common case, where the
     * polar method pays a log+sqrt rejection loop per pair. The two
     * samplers produce different values from the same stream but the
     * identical standard-normal distribution; anything consuming
     * cached deviates must treat them as exchangeable with gaussian()
     * draws, not equal to them.
     */
    double
    gaussianCached()
    {
        if (gaussPos_ >= gaussFill_)
            refillGaussians();
        return gaussBlock_[gaussPos_++];
    }

    /** Number of deviates precomputed per gaussianCached() refill. */
    static constexpr std::size_t gaussianBlockSize = 256;

    /** Exponential draw with the given mean. @pre mean > 0. */
    double exponential(double mean);

    /** Random boolean. */
    bool flip() { return (next() & 1) != 0; }

    /** In-place Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = below(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** A fresh generator whose seed is drawn from this one. */
    Rng split() { return Rng(next()); }

  private:
    /** Bit-rotate left (the xoshiro256** scrambler primitive). */
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    /** Refill the gaussianCached() block (out of line, cold). */
    void refillGaussians();

    std::array<std::uint64_t, 4> state_;
    bool hasSpare_ = false;
    double spare_ = 0.0;

    std::array<double, gaussianBlockSize> gaussBlock_{};
    std::size_t gaussPos_ = 0;  //!< next deviate to hand out
    std::size_t gaussFill_ = 0; //!< valid deviates in the block
};

} // namespace wb

#endif // WB_COMMON_RNG_HH
