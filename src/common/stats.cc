#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace wb
{

void
OnlineStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
OnlineStats::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(n_);
    const auto n2 = static_cast<double>(other.n_);
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

void
Samples::add(double x)
{
    data_.push_back(x);
    dirty_ = true;
}

void
Samples::addAll(const std::vector<double> &xs)
{
    data_.insert(data_.end(), xs.begin(), xs.end());
    dirty_ = true;
}

double
Samples::mean() const
{
    if (data_.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : data_)
        sum += x;
    return sum / static_cast<double>(data_.size());
}

double
Samples::stddev() const
{
    if (data_.size() < 2)
        return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double x : data_)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(data_.size() - 1));
}

void
Samples::ensureSorted() const
{
    if (dirty_ || sorted_.size() != data_.size()) {
        sorted_ = data_;
        std::sort(sorted_.begin(), sorted_.end());
        dirty_ = false;
    }
}

double
Samples::percentile(double p) const
{
    if (data_.empty())
        return 0.0;
    ensureSorted();
    if (p <= 0.0)
        return sorted_.front();
    if (p >= 100.0)
        return sorted_.back();
    const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted_.size())
        return sorted_.back();
    return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

double
Samples::cdfAt(double x) const
{
    if (data_.empty())
        return 0.0;
    ensureSorted();
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) /
           static_cast<double>(sorted_.size());
}

std::vector<std::pair<double, double>>
Samples::cdfGrid(double lo, double hi, std::size_t steps) const
{
    std::vector<std::pair<double, double>> out;
    if (steps < 2)
        steps = 2;
    out.reserve(steps);
    const double dx = (hi - lo) / static_cast<double>(steps - 1);
    for (std::size_t i = 0; i < steps; ++i) {
        const double x = lo + dx * static_cast<double>(i);
        out.emplace_back(x, cdfAt(x));
    }
    return out;
}

Histogram::Histogram(double lo, double binWidth, std::size_t bins)
    : lo_(lo), binWidth_(binWidth), counts_(bins, 0)
{
}

void
Histogram::add(double x)
{
    double pos = (x - lo_) / binWidth_;
    std::size_t idx;
    if (pos < 0.0) {
        idx = 0;
    } else {
        idx = static_cast<std::size_t>(pos);
        if (idx >= counts_.size())
            idx = counts_.size() - 1;
    }
    ++counts_[idx];
    ++total_;
}

double
Histogram::binCenter(std::size_t i) const
{
    return lo_ + binWidth_ * (static_cast<double>(i) + 0.5);
}

std::string
Histogram::ascii(std::size_t width) const
{
    std::uint64_t peak = 0;
    for (auto c : counts_)
        peak = std::max(peak, c);
    std::ostringstream os;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        const auto bar = peak
            ? static_cast<std::size_t>(counts_[i] * width / peak) : 0;
        os << "  " << binCenter(i) << "\t" << counts_[i] << "\t"
           << std::string(bar, '#') << "\n";
    }
    return os.str();
}

} // namespace wb
