/**
 * @file
 * Minimal gem5-flavoured status/error reporting.
 *
 * panic()  - internal invariant violated (a bug in this library); aborts.
 * fatal()  - the caller/user supplied an impossible configuration; exits.
 * warn()   - something is off but the run can continue.
 * inform() - plain status output.
 */

#ifndef WB_COMMON_LOG_HH
#define WB_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace wb
{

/** Abort with a message; use for library-internal invariant violations. */
[[noreturn]] void panic(const std::string &msg);

/** Exit(1) with a message; use for invalid user configuration. */
[[noreturn]] void fatal(const std::string &msg);

/** Print a warning to stderr. */
void warn(const std::string &msg);

/** Print a status line to stderr. */
void inform(const std::string &msg);

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool on);

namespace detail
{

/** Variadic stream-concatenation helper for the message builders. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** panic() with streamed arguments. */
template <typename... Args>
[[noreturn]] void
panicf(Args &&...args)
{
    panic(detail::concat(std::forward<Args>(args)...));
}

/** fatal() with streamed arguments. */
template <typename... Args>
[[noreturn]] void
fatalf(Args &&...args)
{
    fatal(detail::concat(std::forward<Args>(args)...));
}

} // namespace wb

#endif // WB_COMMON_LOG_HH
