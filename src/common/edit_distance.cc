#include "common/edit_distance.hh"

#include <algorithm>

namespace wb
{

std::size_t
editDistance(const std::vector<bool> &sent, const std::vector<bool> &received)
{
    const std::size_t n = sent.size();
    const std::size_t m = received.size();
    // Two-row rolling DP keeps memory at O(m).
    std::vector<std::size_t> prev(m + 1), cur(m + 1);
    for (std::size_t j = 0; j <= m; ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= n; ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= m; ++j) {
            const std::size_t sub =
                prev[j - 1] + (sent[i - 1] == received[j - 1] ? 0 : 1);
            cur[j] = std::min({sub, prev[j] + 1, cur[j - 1] + 1});
        }
        std::swap(prev, cur);
    }
    return prev[m];
}

EditBreakdown
editBreakdown(const std::vector<bool> &sent, const std::vector<bool> &received)
{
    const std::size_t n = sent.size();
    const std::size_t m = received.size();
    // Full DP table for backtrace; sequences in this project are short
    // (hundreds of bits), so O(n*m) memory is fine.
    std::vector<std::vector<std::size_t>> d(n + 1,
        std::vector<std::size_t>(m + 1, 0));
    for (std::size_t i = 0; i <= n; ++i)
        d[i][0] = i;
    for (std::size_t j = 0; j <= m; ++j)
        d[0][j] = j;
    for (std::size_t i = 1; i <= n; ++i) {
        for (std::size_t j = 1; j <= m; ++j) {
            const std::size_t sub =
                d[i - 1][j - 1] + (sent[i - 1] == received[j - 1] ? 0 : 1);
            d[i][j] = std::min({sub, d[i - 1][j] + 1, d[i][j - 1] + 1});
        }
    }

    EditBreakdown out;
    out.distance = d[n][m];
    std::size_t i = n, j = m;
    while (i > 0 || j > 0) {
        if (i > 0 && j > 0 &&
            d[i][j] == d[i - 1][j - 1] +
                (sent[i - 1] == received[j - 1] ? 0 : 1)) {
            if (sent[i - 1] != received[j - 1])
                ++out.substitutions;
            --i;
            --j;
        } else if (i > 0 && d[i][j] == d[i - 1][j] + 1) {
            ++out.deletions;
            --i;
        } else {
            ++out.insertions;
            --j;
        }
    }
    return out;
}

double
bitErrorRate(const std::vector<bool> &sent, const std::vector<bool> &received)
{
    if (sent.empty())
        return 0.0;
    return static_cast<double>(editDistance(sent, received)) /
           static_cast<double>(sent.size());
}

} // namespace wb
