#include "common/bitvec.hh"

namespace wb
{

BitVec
preamble16()
{
    return fromUint(0xA5C3, 16);
}

BitVec
randomBits(std::size_t n, Rng &rng)
{
    BitVec out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(rng.flip());
    return out;
}

BitVec
randomFrame(std::size_t payloadBits, Rng &rng)
{
    BitVec frame = preamble16();
    BitVec payload = randomBits(payloadBits, rng);
    frame.insert(frame.end(), payload.begin(), payload.end());
    return frame;
}

BitVec
fromString(const std::string &s)
{
    BitVec out;
    out.reserve(s.size() * 8);
    for (unsigned char c : s)
        for (int b = 7; b >= 0; --b)
            out.push_back(((c >> b) & 1) != 0);
    return out;
}

std::string
toString(const BitVec &bits)
{
    std::string out;
    for (std::size_t i = 0; i + 8 <= bits.size(); i += 8) {
        unsigned char c = 0;
        for (std::size_t b = 0; b < 8; ++b)
            c = static_cast<unsigned char>((c << 1) | (bits[i + b] ? 1 : 0));
        out.push_back(static_cast<char>(c));
    }
    return out;
}

BitVec
fromUint(std::uint64_t value, unsigned k)
{
    BitVec out;
    out.reserve(k);
    for (unsigned b = k; b-- > 0;)
        out.push_back(((value >> b) & 1) != 0);
    return out;
}

std::uint64_t
toUint(const BitVec &bits)
{
    std::uint64_t v = 0;
    const std::size_t n = bits.size() < 64 ? bits.size() : 64;
    for (std::size_t i = 0; i < n; ++i)
        v = (v << 1) | (bits[i] ? 1 : 0);
    return v;
}

std::optional<std::size_t>
alignByPattern(const BitVec &haystack, const BitVec &pattern,
               std::size_t maxErrors)
{
    if (pattern.empty() || haystack.size() < pattern.size())
        return std::nullopt;
    std::optional<std::size_t> best;
    std::size_t bestErrors = maxErrors + 1;
    for (std::size_t off = 0; off + pattern.size() <= haystack.size();
         ++off) {
        std::size_t errors = 0;
        for (std::size_t i = 0; i < pattern.size() && errors < bestErrors;
             ++i) {
            if (haystack[off + i] != pattern[i])
                ++errors;
        }
        if (errors < bestErrors) {
            bestErrors = errors;
            best = off;
            if (errors == 0)
                break;
        }
    }
    return bestErrors <= maxErrors ? best : std::nullopt;
}

std::string
toBitString(const BitVec &bits)
{
    std::string s;
    s.reserve(bits.size());
    for (bool b : bits)
        s.push_back(b ? '1' : '0');
    return s;
}

BitVec
fromBitString(const std::string &s)
{
    BitVec out;
    for (char c : s) {
        if (c == '0')
            out.push_back(false);
        else if (c == '1')
            out.push_back(true);
    }
    return out;
}

} // namespace wb
