/**
 * @file
 * Wagner-Fischer edit distance over bit sequences.
 *
 * The paper evaluates channel bit error rates with the edit distance
 * between the sent and received sequences (Sec. V), which captures the
 * three transmission error types: bit flips (substitutions), bit
 * insertions, and bit losses (deletions).
 */

#ifndef WB_COMMON_EDIT_DISTANCE_HH
#define WB_COMMON_EDIT_DISTANCE_HH

#include <cstddef>
#include <vector>

namespace wb
{

/** Breakdown of an optimal edit script between two sequences. */
struct EditBreakdown
{
    std::size_t distance = 0;      //!< total edit distance
    std::size_t substitutions = 0; //!< bit flips
    std::size_t insertions = 0;    //!< spurious received bits
    std::size_t deletions = 0;     //!< lost bits
};

/**
 * Classic Wagner-Fischer edit distance (unit costs).
 *
 * @param sent the transmitted sequence
 * @param received the observed sequence
 * @return minimum number of substitutions/insertions/deletions turning
 *         @p sent into @p received
 */
std::size_t editDistance(const std::vector<bool> &sent,
                         const std::vector<bool> &received);

/**
 * Edit distance plus a breakdown into error types from one optimal
 * edit script (backtrace; ties resolved substitution-first).
 */
EditBreakdown editBreakdown(const std::vector<bool> &sent,
                            const std::vector<bool> &received);

/**
 * Bit error rate as used in the paper: edit distance divided by the
 * number of transmitted bits. Returns 0 for an empty @p sent.
 */
double bitErrorRate(const std::vector<bool> &sent,
                    const std::vector<bool> &received);

} // namespace wb

#endif // WB_COMMON_EDIT_DISTANCE_HH
