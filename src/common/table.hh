/**
 * @file
 * Aligned console table rendering. Every bench binary reproduces a paper
 * table or figure and prints it with this printer so output is uniform
 * and diff-able (EXPERIMENTS.md is assembled from these dumps).
 */

#ifndef WB_COMMON_TABLE_HH
#define WB_COMMON_TABLE_HH

#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace wb
{

/** Column-aligned plain-text table with optional title and notes. */
class Table
{
  public:
    /** @param title heading printed above the table. */
    explicit Table(std::string title = "");

    /** Set the column headers; defines the column count. */
    Table &header(std::vector<std::string> cols);

    /** Append a row of pre-formatted cells. */
    Table &row(std::vector<std::string> cells);

    /** Append a footnote line printed under the table. */
    Table &note(std::string text);

    /** Format a double with @p precision fractional digits. */
    static std::string num(double v, int precision = 2);

    /** Format a ratio in [0,1] as a percentage string like "94.3%". */
    static std::string pct(double ratio, int precision = 1);

    /** Render the table to @p os. */
    void print(std::ostream &os) const;

    /** Render to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> notes_;
};

/** Print a section banner ("== title ==") used between bench phases. */
void banner(std::ostream &os, const std::string &title);

} // namespace wb

#endif // WB_COMMON_TABLE_HH
