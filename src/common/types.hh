/**
 * @file
 * Fundamental scalar types shared by every wbchan subsystem.
 */

#ifndef WB_COMMON_TYPES_HH
#define WB_COMMON_TYPES_HH

#include <cstdint>

namespace wb
{

/** Virtual time in CPU cycles. All simulator time is expressed in cycles. */
using Cycles = std::uint64_t;

/** Signed cycle delta, used for drift/jitter arithmetic. */
using CycleDelta = std::int64_t;

/** A (virtual or physical) byte address inside a simulated address space. */
using Addr = std::uint64_t;

/**
 * Identifier of a simulated address space. Two processes with different
 * AddressSpaceIds share no cache lines unless they map a shared segment.
 */
using AddressSpaceId = std::uint32_t;

/** Hardware-thread (SMT context) identifier on the simulated core. */
using ThreadId = std::uint32_t;

/** Size of a cache line in bytes, fixed at 64 as on all modeled CPUs. */
inline constexpr Addr lineBytes = 64;

/** log2(lineBytes), the number of block-offset address bits. */
inline constexpr unsigned lineShift = 6;

} // namespace wb

#endif // WB_COMMON_TYPES_HH
