#include "common/rng.hh"

#include <cmath>

namespace wb
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    reseed(seed);
}

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
    hasSpare_ = false;
    spare_ = 0.0;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    // Debiased via rejection sampling on the top of the range.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    return lo + static_cast<std::int64_t>(
        below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double
Rng::uniform()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = 2.0 * uniform() - 1.0;
        v = 2.0 * uniform() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    hasSpare_ = true;
    return u * m;
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

void
Rng::refillGaussians()
{
    for (auto &d : gaussBlock_)
        d = gaussian();
    gaussPos_ = 0;
    gaussFill_ = gaussBlock_.size();
}

double
Rng::exponential(double mean)
{
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

} // namespace wb
