#include "common/rng.hh"

#include <cmath>

namespace wb
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    reseed(seed);
}

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
    hasSpare_ = false;
    spare_ = 0.0;
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    return lo + static_cast<std::int64_t>(
        below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = 2.0 * uniform() - 1.0;
        v = 2.0 * uniform() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    hasSpare_ = true;
    return u * m;
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

namespace
{

/**
 * Marsaglia-Tsang ziggurat tables for the standard normal (128
 * layers). Built once on first use; read-only afterwards, so
 * concurrent sweep-runner workers can share them.
 */
struct ZigguratTables
{
    std::uint32_t kn[128];
    double wn[128];
    double fn[128];

    ZigguratTables()
    {
        const double m1 = 2147483648.0;
        double dn = 3.442619855899;
        const double tn0 = dn;
        const double vn = 9.91256303526217e-3;

        const double q = vn / std::exp(-0.5 * dn * dn);
        kn[0] = static_cast<std::uint32_t>((dn / q) * m1);
        kn[1] = 0;
        wn[0] = q / m1;
        wn[127] = dn / m1;
        fn[0] = 1.0;
        fn[127] = std::exp(-0.5 * dn * dn);
        double tn = tn0;
        for (int i = 126; i >= 1; --i) {
            dn = std::sqrt(
                -2.0 * std::log(vn / dn + std::exp(-0.5 * dn * dn)));
            kn[i + 1] = static_cast<std::uint32_t>((dn / tn) * m1);
            tn = dn;
            fn[i] = std::exp(-0.5 * dn * dn);
            wn[i] = dn / m1;
        }
    }
};

const ZigguratTables &
ziggurat()
{
    static const ZigguratTables tables;
    return tables;
}

} // namespace

void
Rng::refillGaussians()
{
    // Ziggurat sampling (Marsaglia & Tsang 2000): ~98% of deviates are
    // one raw draw, a table compare and a multiply, vs a log+sqrt pair
    // per polar-method draw — this refill sits under every per-access
    // latency-noise charge of the hierarchy (see gaussianCached()).
    // The values differ from gaussian()'s polar stream but the
    // distribution is identical, which is all the noise model
    // requires.
    const ZigguratTables &z = ziggurat();
    const double r = 3.442619855899;
    for (auto &d : gaussBlock_) {
        for (;;) {
            const auto hz =
                static_cast<std::int32_t>(next() >> 32);
            const unsigned iz = static_cast<unsigned>(hz) & 127u;
            if (static_cast<std::uint32_t>(hz < 0 ? -hz : hz) <
                z.kn[iz]) {
                d = hz * z.wn[iz];
                break;
            }
            // Slow path: the base-strip tail or a wedge rejection.
            if (iz == 0) {
                double x, y;
                do {
                    double u;
                    do {
                        u = uniform();
                    } while (u <= 0.0);
                    x = -std::log(u) / r;
                    do {
                        u = uniform();
                    } while (u <= 0.0);
                    y = -std::log(u);
                } while (y + y < x * x);
                d = hz > 0 ? r + x : -(r + x);
                break;
            }
            const double x = hz * z.wn[iz];
            if (z.fn[iz] + uniform() * (z.fn[iz - 1] - z.fn[iz]) <
                std::exp(-0.5 * x * x)) {
                d = x;
                break;
            }
        }
    }
    gaussPos_ = 0;
    gaussFill_ = gaussBlock_.size();
}

double
Rng::exponential(double mean)
{
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

} // namespace wb
