#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace wb
{

Table::Table(std::string title) : title_(std::move(title))
{
}

Table &
Table::header(std::vector<std::string> cols)
{
    header_ = std::move(cols);
    return *this;
}

Table &
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
    return *this;
}

Table &
Table::note(std::string text)
{
    notes_.push_back(std::move(text));
    return *this;
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::pct(double ratio, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << ratio * 100.0 << "%";
    return os.str();
}

void
Table::print(std::ostream &os) const
{
    std::size_t cols = header_.size();
    for (const auto &r : rows_)
        cols = std::max(cols, r.size());

    std::vector<std::size_t> width(cols, 0);
    auto measure = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    if (!header_.empty())
        measure(header_);
    for (const auto &r : rows_)
        measure(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        os << "  ";
        for (std::size_t i = 0; i < cols; ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            os << std::left << std::setw(static_cast<int>(width[i]) + 2)
               << cell;
        }
        os << "\n";
    };

    if (!title_.empty())
        os << title_ << "\n";
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 2;
        for (auto w : width)
            total += w + 2;
        os << "  " << std::string(total - 2, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
    for (const auto &n : notes_)
        os << "  * " << n << "\n";
    os.flush();
}

void
Table::print() const
{
    print(std::cout);
}

void
banner(std::ostream &os, const std::string &title)
{
    os << "\n== " << title << " ==\n";
}

} // namespace wb
