/**
 * @file
 * Bit-sequence helpers for channel payloads: random message generation,
 * the fixed 16-bit alignment preamble used in the paper's evaluation,
 * byte/string packing and sequence alignment by preamble search.
 */

#ifndef WB_COMMON_BITVEC_HH
#define WB_COMMON_BITVEC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace wb
{

/** Sequence of bits, most significant bit of the message first. */
using BitVec = std::vector<bool>;

/**
 * The fixed 16-bit preamble the paper prepends to every frame so the
 * receiver can identify frame boundaries ("the first 16 bits of the
 * random sequence are set to a fixed value for the receiver to
 * identify"). 0xA5C3 alternates runs of both polarities, which keeps it
 * unlikely to appear in random payloads.
 */
BitVec preamble16();

/** Generate @p n random bits from @p rng. */
BitVec randomBits(std::size_t n, Rng &rng);

/**
 * Build a frame: 16-bit preamble followed by @p payloadBits random bits.
 * Mirrors the paper's 128-bit (16 preamble + 112 random) test frames.
 */
BitVec randomFrame(std::size_t payloadBits, Rng &rng);

/** Pack a string's bytes, MSB first per byte. */
BitVec fromString(const std::string &s);

/** Inverse of fromString; trailing partial bytes are dropped. */
std::string toString(const BitVec &bits);

/** Pack the k low bits of @p value, MSB first. */
BitVec fromUint(std::uint64_t value, unsigned k);

/** Inverse of fromUint over the first (up to 64) bits. */
std::uint64_t toUint(const BitVec &bits);

/**
 * Locate @p pattern inside @p haystack allowing up to @p maxErrors
 * substitution errors (Hamming match at each offset).
 *
 * @return offset of the best match, or std::nullopt when no offset has
 *         <= maxErrors mismatches.
 */
std::optional<std::size_t> alignByPattern(const BitVec &haystack,
                                          const BitVec &pattern,
                                          std::size_t maxErrors);

/** Render as a '0'/'1' string, for logs and bench output. */
std::string toBitString(const BitVec &bits);

/** Parse a '0'/'1' string (other characters are skipped). */
BitVec fromBitString(const std::string &s);

} // namespace wb

#endif // WB_COMMON_BITVEC_HH
