/**
 * @file
 * Umbrella header: the whole public wbchan API in one include.
 *
 *   #include "wbchan.hh"
 *
 * Downstream users who only want the covert channel need
 * chan/channel.hh; this header pulls in every subsystem (substrate,
 * channels, baselines, defenses, side channels, perf monitoring and
 * the hardware port).
 */

#ifndef WB_WBCHAN_HH
#define WB_WBCHAN_HH

// Foundations.
#include "common/bitvec.hh"
#include "common/edit_distance.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

// Simulated platform.
#include "sim/address.hh"
#include "sim/cache.hh"
#include "sim/eviction_probe.hh"
#include "sim/hierarchy.hh"
#include "sim/noise_model.hh"
#include "sim/platform.hh"
#include "sim/replacement.hh"
#include "sim/smt_core.hh"
#include "sim/stats_dump.hh"

// The WB channel and its extensions.
#include "chan/arq.hh"
#include "chan/calibration.hh"
#include "chan/channel.hh"
#include "chan/fec.hh"
#include "chan/l2_channel.hh"
#include "chan/modulation.hh"
#include "chan/multiset.hh"
#include "chan/noise_process.hh"
#include "chan/pointer_chase.hh"
#include "chan/protocol.hh"
#include "chan/receiver.hh"
#include "chan/sender.hh"
#include "chan/set_mapping.hh"
#include "chan/transport.hh"

// Baseline channels.
#include "baselines/flush_channels.hh"
#include "baselines/framework.hh"
#include "baselines/hit_hit_channel.hh"
#include "baselines/lru_channel.hh"
#include "baselines/prime_probe.hh"

// Defenses, side channels, perf monitoring.
#include "defense/defense.hh"
#include "perfmon/arms_race.hh"
#include "perfmon/detector.hh"
#include "perfmon/metrics.hh"
#include "perfmon/online.hh"
#include "perfmon/stealth.hh"
#include "perfmon/workloads.hh"
#include "sidechan/attack.hh"
#include "sidechan/victim.hh"

// Real-hardware port.
#include "hw/channel_hw.hh"
#include "hw/latency_probe.hh"
#include "hw/tsc_hw.hh"

#endif // WB_WBCHAN_HH
