#include "sim/hierarchy.hh"

#include "common/log.hh"

namespace wb::sim
{

std::string
levelName(Level level)
{
    switch (level) {
      case Level::L1:
        return "L1";
      case Level::L2:
        return "L2";
      case Level::LLC:
        return "LLC";
      case Level::Mem:
        return "Mem";
    }
    return "?";
}

void
PerfCounters::merge(const PerfCounters &other)
{
    loads += other.loads;
    stores += other.stores;
    l1Hits += other.l1Hits;
    l1Misses += other.l1Misses;
    l2Accesses += other.l2Accesses;
    l2Hits += other.l2Hits;
    l2Misses += other.l2Misses;
    llcAccesses += other.llcAccesses;
    llcHits += other.llcHits;
    llcMisses += other.llcMisses;
    l1DirtyWritebacks += other.l1DirtyWritebacks;
    flushes += other.flushes;
    llcDirtyEvictions += other.llcDirtyEvictions;
    crossCoreSnoops += other.crossCoreSnoops;
    spinLoads += other.spinLoads;
}

void
PerfCounters::subtract(const PerfCounters &other)
{
    loads -= other.loads;
    stores -= other.stores;
    l1Hits -= other.l1Hits;
    l1Misses -= other.l1Misses;
    l2Accesses -= other.l2Accesses;
    l2Hits -= other.l2Hits;
    l2Misses -= other.l2Misses;
    llcAccesses -= other.llcAccesses;
    llcHits -= other.llcHits;
    llcMisses -= other.llcMisses;
    l1DirtyWritebacks -= other.l1DirtyWritebacks;
    flushes -= other.flushes;
    llcDirtyEvictions -= other.llcDirtyEvictions;
    crossCoreSnoops -= other.crossCoreSnoops;
    spinLoads -= other.spinLoads;
}

Hierarchy::Hierarchy(const HierarchyParams &params, Rng *rng)
    : params_(params), rng_(rng), l1_(params.l1, rng), l2_(params.l2, rng),
      llc_(params.llc, rng), counters_(2),
      plainMissPath_(params.l1.writePolicy == WritePolicy::WriteBack &&
                     params.l1.allocPolicy == AllocPolicy::WriteAllocate &&
                     params.randomFillWindow == 0 &&
                     params.prefetchGuardProb <= 0.0),
      trackPendingWb_(params.lat.flushWbDrainExtra > 0)
{
    if (params.llcSlices > 1) {
        fatalf("Hierarchy: llcSlices=", params.llcSlices,
               " — LLC slicing is modeled by MultiCoreSystem only "
               "(a single-core machine has no slice interconnect to "
               "model; stand the preset up as a MultiCoreSystem)");
    }
}

void
Hierarchy::reset()
{
    l1_.reset();
    l2_.reset();
    llc_.reset();
    pendingDirtyWb_ = 0;
}

void
Hierarchy::resetAll()
{
    reset();
    resetCounters();
    // A reseeded sweep must not consume deviates precomputed from the
    // previous run's stream (see Rng::discardCachedDeviates).
    if (rng_ != nullptr)
        rng_->discardCachedDeviates();
}

void
Hierarchy::resetCounters()
{
    for (auto &c : counters_)
        c = PerfCounters{};
}

PerfCounters
Hierarchy::totalCounters() const
{
    PerfCounters total;
    for (const auto &c : counters_)
        total.merge(c);
    return total;
}

void
Hierarchy::llcFill(Addr paddr, ThreadId tid, bool asDirty,
                   bool checkResident)
{
    auto out = llc_.fillFast(paddr, tid, asDirty, checkResident);
    if (params_.inclusiveLlc && out.filled && !out.residentHit &&
        out.evicted.any) {
        // Inclusive LLC: a victim leaving the LLC may not survive in
        // the levels above. Dirty upper-level copies drain to DRAM,
        // which keeps no state, so the invalidation is a pure drop.
        const Addr victimPaddr = out.evicted.lineAddr << lineShift;
        bool wasDirty = false;
        l1_.invalidate(victimPaddr, wasDirty);
        l2_.invalidate(victimPaddr, wasDirty);
    }
}

void
Hierarchy::writebackToL2(Addr lineAddr, ThreadId tid)
{
    const Addr paddr = lineAddr << lineShift;
    auto outcome = l2_.fillFast(paddr, tid, /*asDirty=*/true,
                                /*checkResident=*/true);
    if (outcome.filled && outcome.evicted.dirty)
        llcFill(outcome.evicted.lineAddr << lineShift, tid,
                /*asDirty=*/true, /*checkResident=*/true);
}

AccessResult
Hierarchy::writeThroughL1Hit(ThreadId tid, Addr paddr, unsigned set,
                             unsigned way, PerfCounters &ctr)
{
    const LatencyModel &lat = params_.lat;
    l1_.hitFast(set, way, /*isWrite=*/true);
    AccessResult res;
    res.servedBy = Level::L1;
    res.l1Hit = true;
    res.latency = lat.l1Hit + lat.storeExtra + noise();

    // Forward the store to L2 (write-through traffic).
    ++ctr.l2Accesses;
    const Addr la = AddressLayout::lineAddr(paddr);
    const unsigned l2set = l2_.layout().setIndex(paddr);
    if (const int w2 = l2_.probeWay(la, l2set, tid); w2 >= 0) {
        ++ctr.l2Hits;
        l2_.hitFast(l2set, static_cast<unsigned>(w2), /*isWrite=*/true);
    } else {
        ++ctr.l2Misses;
        auto out2 = l2_.fillFast(paddr, tid, /*asDirty=*/true,
                                 l2_.params().probeIsolated);
        if (out2.filled && out2.evicted.dirty)
            llcFill(out2.evicted.lineAddr << lineShift, tid,
                    /*asDirty=*/true, /*checkResident=*/true);
    }
    res.latency += lat.writeThroughStore;
    return res;
}

template <bool Plain>
AccessResult
Hierarchy::missPath(ThreadId tid, Addr paddr, bool isWrite,
                    PerfCounters &ctr)
{
    AccessResult res;
    const LatencyModel &lat = params_.lat;
    const Addr la = AddressLayout::lineAddr(paddr);

    // --- Find the data below L1 ---
    ++ctr.l1Misses;
    ++ctr.l2Accesses;
    Cycles base = 0;
    const unsigned l2set = l2_.layout().setIndex(paddr);
    if (const int w2 = l2_.probeWay(la, l2set, tid); w2 >= 0) {
        ++ctr.l2Hits;
        l2_.hitFast(l2set, static_cast<unsigned>(w2), /*isWrite=*/false);
        res.servedBy = Level::L2;
        base = lat.l2Hit;
    } else {
        ++ctr.l2Misses;
        ++ctr.llcAccesses;
        const unsigned llcSet = llc_.layout().setIndex(paddr);
        if (const int w3 = llc_.probeWay(la, llcSet, tid); w3 >= 0) {
            ++ctr.llcHits;
            llc_.hitFast(llcSet, static_cast<unsigned>(w3),
                         /*isWrite=*/false);
            res.servedBy = Level::LLC;
            base = lat.llcHit;
        } else {
            ++ctr.llcMisses;
            res.servedBy = Level::Mem;
            base = lat.mem;
            llcFill(paddr, tid, /*asDirty=*/false,
                    llc_.params().probeIsolated);
        }
        // Fill L2 on the way up (we just missed it; residency is only
        // possible under probe isolation).
        auto out2 = l2_.fillFast(paddr, tid, /*asDirty=*/false,
                                 l2_.params().probeIsolated);
        if (out2.filled && out2.evicted.dirty) {
            llcFill(out2.evicted.lineAddr << lineShift, tid,
                    /*asDirty=*/true, /*checkResident=*/true);
            base += lat.l2DirtyEvictPenalty;
        }
    }

    res.latency = base + (isWrite ? lat.storeExtra : Cycles(0));

    // --- L1 allocation decision (Plain: always allocate) ---
    const bool writeThrough =
        !Plain && params_.l1.writePolicy == WritePolicy::WriteThrough;
    bool allocate = true;
    if (!Plain) {
        if (isWrite &&
            params_.l1.allocPolicy == AllocPolicy::NoWriteAllocate)
            allocate = false;
        if (!isWrite && params_.randomFillWindow > 0)
            allocate = false; // random-fill defense: no demand fill
    }

    if (allocate) {
        const bool asDirty = isWrite && !writeThrough;
        auto out = l1_.fillFast(paddr, tid, asDirty,
                                l1_.params().probeIsolated);
        if (out.filled && out.evicted.dirty) {
            // The fill must wait for the dirty victim's write-back:
            // this is the latency difference the WB channel measures.
            res.l1VictimDirty = true;
            res.latency += lat.l1DirtyEvictPenalty;
            ++ctr.l1DirtyWritebacks;
            if (trackPendingWb_ && pendingDirtyWb_ < kPendingWbCap)
                ++pendingDirtyWb_;
            writebackToL2(out.evicted.lineAddr, tid);
        }
    }

    if (!Plain && isWrite && (writeThrough || !allocate)) {
        // The store data itself goes to L2.
        auto out2 = l2_.fillFast(paddr, tid, /*asDirty=*/true,
                                 /*checkResident=*/true);
        if (out2.filled && out2.evicted.dirty)
            llcFill(out2.evicted.lineAddr << lineShift, tid,
                    /*asDirty=*/true, /*checkResident=*/true);
        res.latency += lat.writeThroughStore;
    }

    if (!Plain && params_.prefetchGuardProb > 0.0 && rng_ != nullptr &&
        rng_->chance(params_.prefetchGuardProb)) {
        // Prefetch-guard: drop a random clean line into the missed set.
        const unsigned set = l1_.layout().setIndex(paddr);
        const Addr tag = 0x800000 + rng_->below(0x10000);
        injectCleanFill(l1_.layout().compose(set, tag), tid);
    }

    if (!Plain && !isWrite && params_.randomFillWindow > 0 &&
        rng_ != nullptr) {
        // Random-fill defense: fill a random neighbour instead of the
        // requested line. The neighbour fill is off the critical path.
        const auto w = static_cast<std::int64_t>(params_.randomFillWindow);
        const std::int64_t delta = rng_->range(-w, w);
        const Addr lineAddr = AddressLayout::lineAddr(paddr);
        const Addr neighbour =
            static_cast<Addr>(static_cast<std::int64_t>(lineAddr) + delta)
            << lineShift;
        auto out = l1_.fillFast(neighbour, tid, /*asDirty=*/false,
                                /*checkResident=*/true);
        if (out.filled && out.evicted.dirty) {
            ++ctr.l1DirtyWritebacks;
            writebackToL2(out.evicted.lineAddr, tid);
        }
    }

    res.latency += noise();

    // Store-buffer semantics: the issuing thread sees only the store
    // buffer insertion latency; the miss handling above drains
    // asynchronously (its state effects are already applied). A
    // write-through store still pays the forwarding cost: the store
    // buffer cannot retire it until the next level acknowledges.
    if (isWrite && lat.storeVisibleLatency > 0) {
        res.latency = lat.storeVisibleLatency;
        if (writeThrough)
            res.latency += lat.writeThroughStore;
    }

    return res;
}

inline AccessResult
Hierarchy::accessOne(ThreadId tid, Addr paddr, bool isWrite,
                     PerfCounters &ctr)
{
    if (isWrite)
        ++ctr.stores;
    else
        ++ctr.loads;

    // --- Inline L1-hit fast path: no out-of-line calls ---
    const Addr la = AddressLayout::lineAddr(paddr);
    const unsigned set = l1_.layout().setIndex(paddr);
    const int way = l1_.probeWay(la, set, tid);
    if (way < 0) {
        return plainMissPath_ ? missPath<true>(tid, paddr, isWrite, ctr)
                              : missPath<false>(tid, paddr, isWrite, ctr);
    }

    ++ctr.l1Hits;
    if (isWrite && params_.l1.writePolicy == WritePolicy::WriteThrough)
        return writeThroughL1Hit(tid, paddr, set,
                                 static_cast<unsigned>(way), ctr);

    l1_.hitFast(set, static_cast<unsigned>(way), isWrite);
    AccessResult res;
    res.servedBy = Level::L1;
    res.l1Hit = true;
    res.latency = params_.lat.l1Hit +
                  (isWrite ? params_.lat.storeExtra : Cycles(0)) + noise();
    return res;
}

AccessResult
Hierarchy::access(ThreadId tid, Addr paddr, bool isWrite)
{
    return accessOne(tid, paddr, isWrite, counters(tid));
}

template <typename AddrAt>
BatchAccessResult
Hierarchy::accessBatchImpl(ThreadId tid, std::size_t n, bool isWrite,
                           AddrAt addrAt)
{
    // The fused sweep loop: L1 hits retire inside the inlined
    // accessOne() fast path and only misses escalate into missPath().
    // accessOne() is the same code access() runs, so batched and
    // scalar execution are bit-identical
    // (tests/test_hierarchy_equivalence.cc). Counter deltas accumulate
    // in a loop-local struct — with the whole body inlined its fields
    // live in registers instead of per-access heap read-modify-writes
    // — and merge into the thread's counters once at the end.
    BatchAccessResult batch;
    batch.accesses = n;
    PerfCounters local;
    for (std::size_t i = 0; i < n; ++i) {
        const AccessResult res =
            accessOne(tid, addrAt(i), isWrite, local);
        batch.l1Hits += res.l1Hit ? 1 : 0;
        batch.l1DirtyEvictions += res.l1VictimDirty ? 1 : 0;
        batch.totalLatency += res.latency;
    }
    counters(tid).merge(local);
    return batch;
}

BatchAccessResult
Hierarchy::accessBatch(ThreadId tid, const Addr *paddrs, std::size_t n,
                       bool isWrite)
{
    return accessBatchImpl(tid, n, isWrite,
                           [&](std::size_t i) { return paddrs[i]; });
}

BatchAccessResult
Hierarchy::accessBatch(ThreadId tid, const AddressSpace &space,
                       const Addr *vaddrs, std::size_t n, bool isWrite)
{
    return accessBatchImpl(tid, n, isWrite, [&](std::size_t i) {
        return space.translate(vaddrs[i]);
    });
}

Cycles
Hierarchy::flush(ThreadId tid, Addr paddr)
{
    PerfCounters &ctr = counters(tid);
    ++ctr.flushes;
    const LatencyModel &lat = params_.lat;
    bool present = false;
    bool dirty = false;
    bool d = false;
    if (l1_.invalidate(paddr, d)) {
        present = true;
        dirty |= d;
    }
    if (l2_.invalidate(paddr, d)) {
        present = true;
        dirty |= d;
    }
    if (llc_.invalidate(paddr, d)) {
        present = true;
        dirty |= d;
    }
    Cycles cost = lat.flushBase;
    if (present)
        cost += lat.flushPresentExtra;
    if (dirty)
        cost += lat.flushDirtyExtra;
    if (trackPendingWb_) {
        // Flushgeist's observable: clflush serializes against the
        // write-back buffer, so it pays for every dirty victim queued
        // since the last flush — *that* drain time, not the flushed
        // line's own state, is what the flush-latency receiver reads.
        cost += lat.flushWbDrainExtra * pendingDirtyWb_;
        pendingDirtyWb_ = 0;
    }
    return cost + noise();
}

void
Hierarchy::injectCleanFill(Addr paddr, ThreadId tid)
{
    auto out = l1_.fillFast(paddr, tid, /*asDirty=*/false,
                            /*checkResident=*/true);
    if (out.filled && out.evicted.dirty)
        writebackToL2(out.evicted.lineAddr, tid);
}

} // namespace wb::sim
