#include "sim/hierarchy.hh"

#include <cmath>

#include "common/log.hh"

namespace wb::sim
{

std::string
levelName(Level level)
{
    switch (level) {
      case Level::L1:
        return "L1";
      case Level::L2:
        return "L2";
      case Level::LLC:
        return "LLC";
      case Level::Mem:
        return "Mem";
    }
    return "?";
}

void
PerfCounters::merge(const PerfCounters &other)
{
    loads += other.loads;
    stores += other.stores;
    l1Hits += other.l1Hits;
    l1Misses += other.l1Misses;
    l2Accesses += other.l2Accesses;
    l2Hits += other.l2Hits;
    l2Misses += other.l2Misses;
    llcAccesses += other.llcAccesses;
    llcHits += other.llcHits;
    llcMisses += other.llcMisses;
    l1DirtyWritebacks += other.l1DirtyWritebacks;
    flushes += other.flushes;
    spinLoads += other.spinLoads;
}

HierarchyParams
xeonE5_2650Params()
{
    HierarchyParams p;
    p.l1.name = "L1D";
    p.l1.sizeBytes = 32 * 1024; // 64 sets x 8 ways x 64 B (Table III)
    p.l1.ways = 8;
    p.l1.policy = PolicyKind::TreePlru;

    p.l2.name = "L2";
    p.l2.sizeBytes = 256 * 1024;
    p.l2.ways = 8;
    p.l2.policy = PolicyKind::TreePlru;

    p.llc.name = "LLC";
    p.llc.sizeBytes = 4 * 1024 * 1024; // scaled-down 20 MiB shared LLC
    p.llc.ways = 16;
    p.llc.policy = PolicyKind::TreePlru;
    return p;
}

Hierarchy::Hierarchy(const HierarchyParams &params, Rng *rng)
    : params_(params), rng_(rng),
      l1_(std::make_unique<Cache>(params.l1, rng)),
      l2_(std::make_unique<Cache>(params.l2, rng)),
      llc_(std::make_unique<Cache>(params.llc, rng)), counters_(2)
{
}

void
Hierarchy::reset()
{
    l1_->reset();
    l2_->reset();
    llc_->reset();
}

void
Hierarchy::resetCounters()
{
    for (auto &c : counters_)
        c = PerfCounters{};
}

PerfCounters &
Hierarchy::counters(ThreadId tid)
{
    if (tid >= counters_.size())
        counters_.resize(tid + 1);
    return counters_[tid];
}

PerfCounters
Hierarchy::totalCounters() const
{
    PerfCounters total;
    for (const auto &c : counters_)
        total.merge(c);
    return total;
}

Cycles
Hierarchy::noise()
{
    if (rng_ == nullptr || params_.lat.noiseSigma <= 0.0)
        return 0;
    const double n = rng_->gaussian(0.0, params_.lat.noiseSigma);
    return n > 0.0 ? static_cast<Cycles>(std::lround(n)) : 0;
}

void
Hierarchy::writebackToL2(Addr lineAddr, ThreadId tid)
{
    const Addr paddr = lineAddr << lineShift;
    auto outcome = l2_->fill(paddr, tid, /*asDirty=*/true);
    if (outcome.filled && outcome.evicted.dirty)
        writebackToLlc(outcome.evicted.lineAddr, tid);
}

void
Hierarchy::writebackToLlc(Addr lineAddr, ThreadId tid)
{
    const Addr paddr = lineAddr << lineShift;
    auto outcome = llc_->fill(paddr, tid, /*asDirty=*/true);
    // A dirty LLC victim drains to DRAM, which keeps no state.
    (void)outcome;
}

AccessResult
Hierarchy::access(ThreadId tid, Addr paddr, bool isWrite)
{
    PerfCounters &ctr = counters(tid);
    if (isWrite)
        ++ctr.stores;
    else
        ++ctr.loads;

    AccessResult res;
    const LatencyModel &lat = params_.lat;

    // --- L1 lookup ---
    if (auto way = l1_->probe(paddr, tid)) {
        ++ctr.l1Hits;
        l1_->onHit(paddr, *way, tid, isWrite);
        res.servedBy = Level::L1;
        res.l1Hit = true;
        res.latency = lat.l1Hit + (isWrite ? lat.storeExtra : 0) + noise();
        if (isWrite && params_.l1.writePolicy == WritePolicy::WriteThrough) {
            // Forward the store to L2 (write-through traffic).
            ++ctr.l2Accesses;
            if (auto w2 = l2_->probe(paddr, tid)) {
                ++ctr.l2Hits;
                l2_->onHit(paddr, *w2, tid, /*isWrite=*/true);
            } else {
                ++ctr.l2Misses;
                auto out2 = l2_->fill(paddr, tid, /*asDirty=*/true);
                if (out2.filled && out2.evicted.dirty)
                    writebackToLlc(out2.evicted.lineAddr, tid);
            }
            res.latency += lat.writeThroughStore;
        }
        return res;
    }

    // --- L1 miss: find the data below ---
    ++ctr.l1Misses;
    ++ctr.l2Accesses;
    Cycles base = 0;
    if (auto way = l2_->probe(paddr, tid)) {
        ++ctr.l2Hits;
        l2_->onHit(paddr, *way, tid, /*isWrite=*/false);
        res.servedBy = Level::L2;
        base = lat.l2Hit;
    } else {
        ++ctr.l2Misses;
        ++ctr.llcAccesses;
        if (auto w3 = llc_->probe(paddr, tid)) {
            ++ctr.llcHits;
            llc_->onHit(paddr, *w3, tid, /*isWrite=*/false);
            res.servedBy = Level::LLC;
            base = lat.llcHit;
        } else {
            ++ctr.llcMisses;
            res.servedBy = Level::Mem;
            base = lat.mem;
            auto out3 = llc_->fill(paddr, tid, /*asDirty=*/false);
            (void)out3;
        }
        // Fill L2 on the way up.
        auto out2 = l2_->fill(paddr, tid, /*asDirty=*/false);
        if (out2.filled && out2.evicted.dirty) {
            writebackToLlc(out2.evicted.lineAddr, tid);
            base += lat.l2DirtyEvictPenalty;
        }
    }

    res.latency = base + (isWrite ? lat.storeExtra : 0);

    // --- L1 allocation decision ---
    const bool writeThrough =
        params_.l1.writePolicy == WritePolicy::WriteThrough;
    bool allocate = true;
    if (isWrite && params_.l1.allocPolicy == AllocPolicy::NoWriteAllocate)
        allocate = false;
    if (!isWrite && params_.randomFillWindow > 0)
        allocate = false; // random-fill defense: no demand fill

    if (allocate) {
        const bool asDirty = isWrite && !writeThrough;
        auto out = l1_->fill(paddr, tid, asDirty);
        if (out.filled && out.evicted.dirty) {
            // The fill must wait for the dirty victim's write-back:
            // this is the latency difference the WB channel measures.
            res.l1VictimDirty = true;
            res.latency += lat.l1DirtyEvictPenalty;
            ++ctr.l1DirtyWritebacks;
            writebackToL2(out.evicted.lineAddr, tid);
        }
    }

    if (isWrite && (writeThrough || !allocate)) {
        // The store data itself goes to L2.
        auto out2 = l2_->fill(paddr, tid, /*asDirty=*/true);
        if (out2.filled && out2.evicted.dirty)
            writebackToLlc(out2.evicted.lineAddr, tid);
        res.latency += lat.writeThroughStore;
    }

    if (params_.prefetchGuardProb > 0.0 && rng_ != nullptr &&
        rng_->chance(params_.prefetchGuardProb)) {
        // Prefetch-guard: drop a random clean line into the missed set.
        const unsigned set = l1_->layout().setIndex(paddr);
        const Addr tag = 0x800000 + rng_->below(0x10000);
        injectCleanFill(l1_->layout().compose(set, tag), tid);
    }

    if (!isWrite && params_.randomFillWindow > 0 && rng_ != nullptr) {
        // Random-fill defense: fill a random neighbour instead of the
        // requested line. The neighbour fill is off the critical path.
        const auto w = static_cast<std::int64_t>(params_.randomFillWindow);
        const std::int64_t delta = rng_->range(-w, w);
        const Addr lineAddr = AddressLayout::lineAddr(paddr);
        const Addr neighbour =
            static_cast<Addr>(static_cast<std::int64_t>(lineAddr) + delta)
            << lineShift;
        auto out = l1_->fill(neighbour, tid, /*asDirty=*/false);
        if (out.filled && out.evicted.dirty) {
            ++ctr.l1DirtyWritebacks;
            writebackToL2(out.evicted.lineAddr, tid);
        }
    }

    res.latency += noise();

    // Store-buffer semantics: the issuing thread sees only the store
    // buffer insertion latency; the miss handling above drains
    // asynchronously (its state effects are already applied). A
    // write-through store still pays the forwarding cost: the store
    // buffer cannot retire it until the next level acknowledges.
    if (isWrite && lat.storeVisibleLatency > 0) {
        res.latency = lat.storeVisibleLatency;
        if (writeThrough)
            res.latency += lat.writeThroughStore;
    }

    return res;
}

template <typename AddrAt>
BatchAccessResult
Hierarchy::accessBatchImpl(ThreadId tid, std::size_t n, bool isWrite,
                           AddrAt addrAt)
{
    BatchAccessResult batch;
    batch.accesses = n;
    for (std::size_t i = 0; i < n; ++i) {
        const AccessResult res = access(tid, addrAt(i), isWrite);
        batch.l1Hits += res.l1Hit ? 1 : 0;
        batch.l1DirtyEvictions += res.l1VictimDirty ? 1 : 0;
        batch.totalLatency += res.latency;
    }
    return batch;
}

BatchAccessResult
Hierarchy::accessBatch(ThreadId tid, const Addr *paddrs, std::size_t n,
                       bool isWrite)
{
    return accessBatchImpl(tid, n, isWrite,
                           [&](std::size_t i) { return paddrs[i]; });
}

BatchAccessResult
Hierarchy::accessBatch(ThreadId tid, const AddressSpace &space,
                       const Addr *vaddrs, std::size_t n, bool isWrite)
{
    return accessBatchImpl(tid, n, isWrite, [&](std::size_t i) {
        return space.translate(vaddrs[i]);
    });
}

Cycles
Hierarchy::flush(ThreadId tid, Addr paddr)
{
    PerfCounters &ctr = counters(tid);
    ++ctr.flushes;
    const LatencyModel &lat = params_.lat;
    bool present = false;
    bool dirty = false;
    bool d = false;
    if (l1_->invalidate(paddr, d)) {
        present = true;
        dirty |= d;
    }
    if (l2_->invalidate(paddr, d)) {
        present = true;
        dirty |= d;
    }
    if (llc_->invalidate(paddr, d)) {
        present = true;
        dirty |= d;
    }
    Cycles cost = lat.flushBase;
    if (present)
        cost += lat.flushPresentExtra;
    if (dirty)
        cost += lat.flushDirtyExtra;
    return cost + noise();
}

void
Hierarchy::injectCleanFill(Addr paddr, ThreadId tid)
{
    auto out = l1_->fill(paddr, tid, /*asDirty=*/false);
    if (out.filled && out.evicted.dirty)
        writebackToL2(out.evicted.lineAddr, tid);
}

} // namespace wb::sim
