/**
 * @file
 * Deterministic two-hyper-thread core executor.
 *
 * Each simulated process implements Program: a state machine that emits
 * one MemOp at a time. The core executes, in global virtual-time order,
 * the next op of whichever thread is earliest, against the shared
 * memory hierarchy. Spin-waits jump a thread's clock forward (plus
 * overshoot noise). This reproduces the paper's deployment: sender and
 * receiver as two processes co-resident on one physical core via
 * sched_setaffinity, sharing the L1D (Sec. III).
 */

#ifndef WB_SIM_SMT_CORE_HH
#define WB_SIM_SMT_CORE_HH

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "sim/address.hh"
#include "sim/hierarchy.hh"
#include "sim/noise_model.hh"

namespace wb::sim
{

/** One primitive operation a Program can issue. */
struct MemOp
{
    /** Operation kinds. */
    enum class Kind
    {
        Load,       //!< demand load of vaddr
        Store,      //!< demand store to vaddr
        LoadBatch,  //!< back-to-back demand loads of addrs[0..count)
        StoreBatch, //!< back-to-back demand stores to addrs[0..count)
        Flush,      //!< clflush vaddr
        TscRead,    //!< serialized timestamp read (rdtscp)
        SpinUntil,  //!< busy-wait until TSC >= until
        Delay,      //!< consume `until` cycles without touching memory
        Halt        //!< finish the program
    };

    Kind kind = Kind::Halt;
    Addr vaddr = 0;   //!< target of Load/Store/Flush
    Cycles until = 0; //!< SpinUntil target / Delay duration

    /**
     * Pipelined loads model independent (non-pointer-chased) accesses
     * that retire at L1 throughput rather than L1 latency when they
     * hit; misses still pay the full latency. Used by tight access
     * loops (the LRU channel's modulation loop, streaming workloads).
     */
    bool pipelined = false;

    /**
     * Virtual-address list of a LoadBatch/StoreBatch: a whole sweep
     * (a prime loop, a pointer-chased traversal, a warm-up) executed
     * through Hierarchy::accessBatch in one core step. Not owned: the
     * issuing Program must keep the array alive and unmoved until the
     * op's onResult() is delivered.
     */
    const Addr *addrs = nullptr;
    std::size_t count = 0; //!< number of addresses in the batch

    /** Convenience constructors. */
    static MemOp load(Addr va) { return {Kind::Load, va, 0, false}; }
    static MemOp store(Addr va) { return {Kind::Store, va, 0, false}; }
    static MemOp flush(Addr va) { return {Kind::Flush, va, 0, false}; }
    static MemOp tscRead() { return {Kind::TscRead, 0, 0, false}; }
    static MemOp spinUntil(Cycles t) { return {Kind::SpinUntil, 0, t, false}; }
    static MemOp delay(Cycles d) { return {Kind::Delay, 0, d, false}; }
    static MemOp halt() { return {Kind::Halt, 0, 0, false}; }

    /** A load retiring at pipeline throughput on an L1 hit. */
    static MemOp
    pipelinedLoad(Addr va)
    {
        return {Kind::Load, va, 0, true};
    }

    /** A batched load sweep over @p n caller-owned addresses. */
    static MemOp
    loadBatch(const Addr *addrs, std::size_t n)
    {
        return {Kind::LoadBatch, 0, 0, false, addrs, n};
    }

    /** A batched store sweep over @p n caller-owned addresses. */
    static MemOp
    storeBatch(const Addr *addrs, std::size_t n)
    {
        return {Kind::StoreBatch, 0, 0, false, addrs, n};
    }
};

/**
 * A compiled slice of a Program: operations emitted ahead of time so
 * the core can execute them back to back without bouncing through the
 * per-op virtual next()/onResult() dispatch (docs/ENGINE.md).
 *
 * `resultPoints` lists, in ascending order, the indices of the ops
 * whose results the program actually needs (timed-measurement
 * boundaries, spin re-bases); only those bounce back into the program
 * via Program::onTraceResult(). Everything the trace references —
 * the op array, the result-point array, and any batch address lists
 * the ops point at — must stay alive and unmoved until the trace's
 * last op has executed. Batch address *contents* may be updated from
 * an onTraceResult hook (the receiver reshuffles its chase order at
 * the post-spin result point); the storage itself must not move.
 */
struct Trace
{
    const MemOp *ops = nullptr;
    std::size_t count = 0;
    const std::uint32_t *resultPoints = nullptr; //!< ascending op indices
    std::size_t resultCount = 0;
};

/** Result of executing one MemOp, delivered to Program::onResult. */
struct OpResult
{
    Cycles latency = 0;         //!< cycles the op consumed
    Cycles tsc = 0;             //!< quantized TSC after the op
    Level servedBy = Level::L1; //!< for Load/Store
    bool l1Hit = false;         //!< for Load/Store
    bool l1VictimDirty = false; //!< the fill replaced a dirty line

    /** Aggregates of a LoadBatch/StoreBatch sweep. */
    BatchAccessResult batch;
};

/** Read-only view a Program gets of its execution context. */
class ProcView
{
  public:
    ProcView(ThreadId tid, Cycles now, Rng &rng, const NoiseModel &noise)
        : tid_(tid), now_(now), rng_(rng), noise_(noise)
    {
    }

    /** This thread's id. */
    ThreadId tid() const { return tid_; }

    /** This thread's current virtual time. */
    Cycles now() const { return now_; }

    /** Shared run RNG (deterministic draw order). */
    Rng &rng() const { return rng_; }

    /** The platform noise model. */
    const NoiseModel &noise() const { return noise_; }

  private:
    ThreadId tid_;
    Cycles now_;
    Rng &rng_;
    const NoiseModel &noise_;
};

/**
 * A simulated process: emits operations one at a time and receives
 * their results. Implementations are explicit state machines.
 */
class Program
{
  public:
    virtual ~Program() = default;

    /** Emit the next operation; Halt/nullopt terminates the thread. */
    virtual std::optional<MemOp> next(ProcView &view) = 0;

    /** Receive the result of the op just executed. */
    virtual void onResult(const MemOp &op, const OpResult &res,
                          ProcView &view) = 0;

    /**
     * Offer a compiled trace covering the ops this program would emit
     * next. Consulted instead of next() whenever the thread needs new
     * work and NoiseModel::traceExecution is on; returning nullptr
     * falls back to the per-op next()/onResult() path (the default).
     *
     * The contract is bit-exactness with the per-op path: the trace's
     * op sequence, and every RNG draw and state transition performed
     * in nextTrace()/onTraceResult(), must occur exactly where the
     * per-op path would perform them. A program therefore compiles a
     * trace only up to its next data-dependent decision point (a spin
     * target derived from a post-spin timestamp, a decode threshold,
     * ARQ feedback) and resumes per-op — or emits a fresh trace —
     * from there. The returned Trace and everything it references
     * stay owned by the program (see Trace).
     */
    virtual const Trace *
    nextTrace(ProcView &view)
    {
        (void)view;
        return nullptr;
    }

    /**
     * Result delivery for the ops a trace registered in resultPoints.
     * @p opIdx is the op's index within the trace.
     */
    virtual void
    onTraceResult(std::uint32_t opIdx, const MemOp &op, const OpResult &res,
                  ProcView &view)
    {
        (void)opIdx;
        (void)op;
        (void)res;
        (void)view;
    }
};

/**
 * Simple Program running a fixed list of operations (tests, noise
 * processes, simple workload loops).
 */
class TraceProgram : public Program
{
  public:
    /**
     * @param ops the operation sequence
     * @param loop restart from the beginning when exhausted
     */
    explicit TraceProgram(std::vector<MemOp> ops, bool loop = false)
        : ops_(std::move(ops)), loop_(loop)
    {
    }

    std::optional<MemOp>
    next(ProcView &) override
    {
        if (pos_ >= ops_.size()) {
            if (!loop_ || ops_.empty())
                return std::nullopt;
            pos_ = 0;
        }
        return ops_[pos_++];
    }

    void onResult(const MemOp &, const OpResult &, ProcView &) override {}

    /** The whole remaining pass as one compiled trace (no hooks). */
    const Trace *
    nextTrace(ProcView &) override
    {
        if (ops_.empty())
            return nullptr;
        if (pos_ >= ops_.size()) {
            if (!loop_)
                return nullptr; // next() halts the thread
            pos_ = 0;
        }
        if (loop_ && pos_ == 0) {
            // Looping bodies are unrolled into a longer compiled block
            // so the engine re-enters this virtual once per ~kUnroll
            // ops instead of once per pass. Same op sequence as the
            // per-op path, so the same draws in the same order.
            if (unrolled_.empty()) {
                const std::size_t passes =
                    std::max<std::size_t>(1, kUnroll / ops_.size());
                unrolled_.reserve(passes * ops_.size());
                for (std::size_t p = 0; p < passes; ++p)
                    unrolled_.insert(unrolled_.end(), ops_.begin(),
                                     ops_.end());
            }
            pos_ = ops_.size();
            trace_ = {unrolled_.data(), unrolled_.size(), nullptr, 0};
            return &trace_;
        }
        trace_ = {ops_.data() + pos_, ops_.size() - pos_, nullptr, 0};
        pos_ = ops_.size();
        return &trace_;
    }

  private:
    /** Ops per compiled block handed out for looping programs. */
    static constexpr std::size_t kUnroll = 128;

    std::vector<MemOp> ops_;
    std::vector<MemOp> unrolled_; //!< lazily built loop unroll
    bool loop_;
    std::size_t pos_ = 0;
    Trace trace_;
};

/**
 * The two-hyper-thread core. Owns thread contexts (program pointer,
 * address space, virtual clock) and executes them in time order.
 *
 * The memory backend is any MemorySystem: a single Hierarchy (the
 * paper's SMT deployment) or one core's port of a MultiCoreSystem.
 * When the backend is a Hierarchy the per-op calls are devirtualized
 * through a typed fast path (Hierarchy is final), so the single-core
 * configurations pay nothing for the indirection.
 */
class SmtCore
{
  public:
    /**
     * @param mem the memory system this core issues into
     * @param noise platform noise model
     * @param rng run RNG (shared with the memory system's noise)
     * @param tidBase first hardware-thread id this front-end hands
     *        out. Several front-ends time-sharing one memory system
     *        (the Scheduler's co-runners) use disjoint bases so their
     *        perf-counter views stay separate; the default 0 keeps
     *        the single-front-end behaviour bit-identical.
     * @param tidSpan thread ids this front-end may occupy starting at
     *        tidBase; addThread is fatal past it. 0 = unlimited (the
     *        standalone default). The Scheduler passes its allocation
     *        stride so a party with too many legacy noise threads
     *        fails loudly instead of silently sharing a co-runner's
     *        counter slot.
     */
    SmtCore(MemorySystem &mem, const NoiseModel &noise, Rng &rng,
            ThreadId tidBase = 0, ThreadId tidSpan = 0);

    /**
     * Re-point this front-end at another memory system — the core
     * migration primitive. Clears every thread's cached spin-stack
     * translation (the migrated process faults its bookkeeping line
     * back in on the new core) and re-resolves the devirtualized
     * Hierarchy fast path. Thread programs, clocks and ids persist:
     * the process keeps running, only the machine under it changed.
     */
    void rebind(MemorySystem &mem);

    /**
     * Deschedule this front-end across the window [@p from, @p resume):
     * every non-halted thread whose clock c lies below @p resume moves
     * to resume + (c - from), i.e. the whole process group shifts
     * rigidly, preserving the threads' relative phase (a sender/
     * receiver pair slips slots together instead of collapsing onto
     * the same instant and dropping a symbol). Two exceptions keep
     * the shift honest at the compressed simulated timescale:
     *
     *  - a thread whose last op was not a spin-wait or delay is
     *    mid-burst (e.g. between the two timestamp reads of one
     *    measurement) and keeps running until it reaches a quiescent
     *    point, unless its clock already passed @p grace (the overrun
     *    budget) — on real hardware a tick is ~10^6 cycles and a
     *    measurement ~10^3, so tick-split measurements are rare, and
     *    at 50k-cycle simulated slices they would otherwise dominate;
     *  - threads already at or beyond @p resume are untouched.
     */
    void descheduleShift(Cycles from, Cycles resume, Cycles grace);

    /**
     * Register a thread.
     * @param program state machine driving the thread (not owned)
     * @param space the process' address space (copied)
     * @param startTime initial virtual time (models staggered launch)
     * @return the assigned thread id
     */
    ThreadId addThread(Program *program, AddressSpace space,
                       Cycles startTime = 0);

    /**
     * Run until every thread halted or all clocks pass @p horizon.
     * @return the largest thread time reached
     */
    Cycles run(Cycles horizon);

    /**
     * Execute one op of the earliest non-halted thread, provided its
     * clock is below @p horizon. @return false when nothing ran
     * (everything halted or past the horizon). This is the
     * single-op stepping primitive the Scheduler's gang-freeze grace
     * path uses; bulk execution goes through runUntil().
     */
    bool stepEarliest(Cycles horizon);

    /**
     * Execute ops of this core's threads, earliest-first with the
     * lowest-index tie rule, while the next op's start time lies
     * below @p bound. Exactly equivalent to calling stepEarliest(
     * bound) in a loop, but compiled traces run as whole slices: a
     * thread keeps executing its trace inline until another thread
     * (or the bound — a scheduler tick, a migration point, a sibling
     * core's next op) would win the pick, which is where the batch
     * splits. The caller guarantees that nothing outside this core
     * can alter the interleaving before @p bound.
     */
    void runUntil(Cycles bound);

    /**
     * Virtual time of the next op this core would execute: the
     * minimum clock over non-halted threads, or noPendingTime when
     * every thread halted.
     */
    Cycles nextTime() const;

    /** Largest thread time reached so far (halted threads included). */
    Cycles maxTime() const;

    /** nextTime() result when every thread has halted. */
    static constexpr Cycles noPendingTime = ~Cycles(0);

    /** A thread's current virtual time. */
    Cycles threadTime(ThreadId tid) const;

    /** True when the thread's program has finished. */
    bool halted(ThreadId tid) const;

    /** The noise model in use. */
    const NoiseModel &noise() const { return noise_; }

  private:
    struct ThreadCtx
    {
        Program *program = nullptr;
        AddressSpace space{0};
        Cycles time = 0;
        bool halted = false;
        Cycles lastMemOpAt = 0;
        bool everIssuedMem = false;

        /**
         * True when the last executed op was a spin-wait or delay —
         * the thread sits between bursts and can be descheduled
         * without splitting a timed sequence (descheduleShift).
         */
        bool quiescent = true;

        /**
         * Cached physical address of the spin-wait bookkeeping line
         * (translated once instead of per SpinUntil, which keeps the
         * shared-segment scan out of the spin hot path).
         */
        Addr spinStackPaddr = 0;
        bool spinStackKnown = false;

        /**
         * Compiled trace in flight, if any: ops [tracePos, count) are
         * still to execute. A paused trace (split at a batch bound)
         * resumes where it stopped the next time the thread wins the
         * pick; rebinds and deschedule shifts leave it intact.
         */
        const Trace *trace = nullptr;
        std::size_t tracePos = 0;
        std::size_t traceNextResult = 0; //!< next resultPoints index
    };

    /**
     * Execute ops of the thread with local index @p idx: one per-op
     * program op, or a compiled-trace slice running while
     * ctx.time < @p bound (0 = exactly one op).
     */
    void step(ThreadCtx &ctx, ThreadId idx, Cycles bound);

    /**
     * Execute one MemOp against the memory system: the single switch
     * both the per-op and the trace path run, so the two modes stay
     * bit-exact by construction. Advances ctx.time, rolls every noise
     * draw, sets ctx.quiescent and res. @return false on Halt.
     */
    bool execOp(ThreadCtx &ctx, ThreadId tid, ThreadId idx,
                const MemOp &op, OpResult &res);

    /**
     * Stall cycles from SMT port contention for an op (or batch)
     * issued by @p tid at ctx.time, rolled against every sibling
     * whose last memory op falls inside the coincidence window.
     */
    Cycles contentionDelay(const ThreadCtx &ctx, ThreadId tid);

    /**
     * Draw a fresh inter-preemption gap: how many Bernoulli
     * (preemptProbPerOp) trials fail before the next success. One
     * geometric draw replaces a per-op (and per-batch-element) chance
     * roll — distributionally identical, and because preemptions are
     * memoryless the one countdown serves every thread's trials in
     * issue order.
     */
    std::uint64_t drawPreemptGap();

    /**
     * Consume @p trials per-op preemption trials and return the
     * number of successes (out of line: called only when the noise
     * model enables per-op preemption).
     */
    unsigned preemptHits(std::size_t trials);

    /**
     * Quantize a cycle count to the effective observer-visible timer
     * granularity (max of platform tscGranularity and the observer's
     * own resolution floor; see NoiseModel::timerGranule). Every
     * OpResult::tsc the cores hand to programs passes through here —
     * the in-simulation half of the observer choke point.
     */
    Cycles quantize(Cycles t) const;

    // --- Devirtualized backend dispatch: when the backend is the
    // (final) Hierarchy, per-op calls bind statically; only the
    // multi-core ports go through the MemorySystem vtable. ---

    AccessResult
    memAccess(ThreadId tid, Addr paddr, bool isWrite)
    {
        return fastHier_ != nullptr
                   ? fastHier_->access(tid, paddr, isWrite)
                   : mem_->access(tid, paddr, isWrite);
    }

    BatchAccessResult
    memAccessBatch(ThreadId tid, const AddressSpace &space,
                   const Addr *vaddrs, std::size_t n, bool isWrite)
    {
        return fastHier_ != nullptr
                   ? fastHier_->accessBatch(tid, space, vaddrs, n, isWrite)
                   : mem_->accessBatch(tid, space, vaddrs, n, isWrite);
    }

    Cycles
    memFlush(ThreadId tid, Addr paddr)
    {
        return fastHier_ != nullptr ? fastHier_->flush(tid, paddr)
                                    : mem_->flush(tid, paddr);
    }

    PerfCounters &
    memCounters(ThreadId tid)
    {
        return fastHier_ != nullptr ? fastHier_->counters(tid)
                                    : mem_->counters(tid);
    }

    MemorySystem *mem_;
    Hierarchy *fastHier_; //!< non-null when mem_ is a Hierarchy
    NoiseModel noise_;
    Rng &rng_;
    Cycles obsGranule_ = 1; //!< cached noise_.timerGranule()
    ThreadId tidBase_;
    ThreadId tidSpan_; //!< max threads (0 = unlimited)
    std::vector<ThreadCtx> threads_;

    /** Failing per-op preemption trials left before the next hit. */
    std::uint64_t preemptCountdown_ = 0;
    bool preemptGapValid_ = false; //!< countdown drawn yet?
};

/**
 * Interleave several cores' executions in global earliest-op-first
 * order until every thread halted or every clock passed @p horizon —
 * the multi-core generalization of SmtCore::run(). Deterministic:
 * ties go to the lowest-indexed core, matching the intra-core rule.
 * @return the largest thread time reached across all cores
 */
Cycles runCores(const std::vector<SmtCore *> &cores, Cycles horizon);

} // namespace wb::sim

#endif // WB_SIM_SMT_CORE_HH
