/**
 * @file
 * Platform registry: named, fully specified simulation targets.
 *
 * A Platform bundles the three things an experiment needs to stand up
 * a machine — HierarchyParams (geometry, write/alloc policies,
 * defenses), the LatencyModel embedded in them, and the NoiseModel —
 * under a string name, so channel/attack/defense configurations can
 * select a machine without hand-editing parameter structs. The
 * registry ships the paper's Xeon E5-2650 (Tables III/IV) plus
 * contrast scenarios (a write-through-L1 ARM-style core, an
 * inclusive-LLC desktop part, a DAWG-partitioned variant); new
 * scenarios register at runtime via registerPlatform() without
 * touching the engine. See docs/PLATFORMS.md for the preset table.
 */

#ifndef WB_SIM_PLATFORM_HH
#define WB_SIM_PLATFORM_HH

#include <string>
#include <vector>

#include "sim/hierarchy.hh"
#include "sim/noise_model.hh"
#include "sim/scheduler.hh"

namespace wb::sim
{

/** A named, fully specified simulation target. */
struct Platform
{
    std::string name;        //!< registry key ("xeonE5-2650", ...)
    std::string description; //!< one-line provenance / calibration note
    HierarchyParams params;  //!< geometry + latency model + defenses
    NoiseModel noise;        //!< scheduling/measurement noise

    /**
     * Physical cores the preset models. 1 stands the machine up as a
     * single Hierarchy (the paper's SMT deployment); >1 presets are
     * meant for MultiCoreSystem: per-core private L1/L2 from `params`
     * over one shared LLC, with `params.inclusiveLlc` deciding whether
     * LLC evictions back-invalidate every core's privates.
     */
    unsigned cores = 1;

    /**
     * Default OS-noise regime for this machine (timeslice length,
     * context-switch pollution, co-runner working-set sizing), tuned
     * per platform. Co-runner list and migration period are left
     * empty/zero — the *sweep* decides those — and configs do NOT
     * adopt this automatically on usePlatform(): opt in with
     * cfg.scheduler = sim::platform(name).noisePreset.
     */
    SchedulerConfig noisePreset;
};

/** Name of the paper's platform, the default everywhere. */
inline constexpr const char *kDefaultPlatform = "xeonE5-2650";

/** Look up a preset; fatal with the known names on an unknown name. */
const Platform &platform(const std::string &name);

/** Look up a preset; nullptr on an unknown name. */
const Platform *findPlatform(const std::string &name);

/** All registered platforms, in registration order. */
std::vector<const Platform *> allPlatforms();

/** The registered names, in registration order. */
std::vector<std::string> platformNames();

/**
 * Register a scenario (or replace the existing one of the same name).
 * Pointers returned by earlier lookups stay valid: platforms are
 * stored behind stable allocations.
 */
void registerPlatform(Platform p);

/**
 * Shared body of every config struct's usePlatform(): resolve
 * @p name (fatal on unknown) into the caller's platform-name record,
 * hierarchy parameters and noise model.
 */
inline void
applyPlatform(const std::string &name, std::string &platformName,
              HierarchyParams &params, NoiseModel &noise)
{
    const Platform &p = platform(name);
    platformName = p.name;
    params = p.params;
    noise = p.noise;
}

} // namespace wb::sim

#endif // WB_SIM_PLATFORM_HH
