#include "sim/multicore.hh"

#include <algorithm>
#include <bit>

#include "common/log.hh"

namespace wb::sim
{

// --------------------------------------------------------------- CorePort

AccessResult
CorePort::access(ThreadId tid, Addr paddr, bool isWrite)
{
    return sys_->access(core_, tid, paddr, isWrite);
}

BatchAccessResult
CorePort::accessBatch(ThreadId tid, const Addr *paddrs, std::size_t n,
                      bool isWrite)
{
    return sys_->accessBatch(core_, tid, paddrs, n, isWrite);
}

BatchAccessResult
CorePort::accessBatch(ThreadId tid, const AddressSpace &space,
                      const Addr *vaddrs, std::size_t n, bool isWrite)
{
    return sys_->accessBatch(core_, tid, space, vaddrs, n, isWrite);
}

Cycles
CorePort::flush(ThreadId tid, Addr paddr)
{
    return sys_->flush(core_, tid, paddr);
}

PerfCounters &
CorePort::counters(ThreadId tid)
{
    return sys_->counters(core_, tid);
}

// --------------------------------------------------------- MultiCoreSystem

const char *
multiCoreIncapableReason(const HierarchyParams &params)
{
    if (params.l1.writePolicy != WritePolicy::WriteBack ||
        params.l1.allocPolicy != AllocPolicy::WriteAllocate) {
        return "only write-back, write-allocate cores are modeled "
               "(write-through L1s keep no dirty state to leak "
               "cross-core)";
    }
    if (params.randomFillWindow != 0) {
        return "the random-fill-window defense (randomFillWindow != 0) "
               "is only modeled single-core";
    }
    if (params.prefetchGuardProb > 0.0) {
        return "the prefetch-guard defense (prefetchGuardProb > 0) is "
               "only modeled single-core";
    }
    if (params.llc.probeIsolated || !params.llc.fillMaskPerThread.empty()) {
        // LLC fills record the *core* id as the filler while probes
        // pass the per-core thread id; per-thread LLC partitioning or
        // probe isolation would act on mismatched identities, so it
        // is rejected rather than silently missimulated. (Per-core
        // L1/L2 partitioning is fine: those caches only ever see one
        // core's thread ids.)
        return "per-thread LLC partitioning/probe isolation "
               "(llc.fillMaskPerThread / llc.probeIsolated) is not "
               "modeled multi-core";
    }
    if (params.llcSlices != 1 && params.llcSlices != 2 &&
        params.llcSlices != 4 && params.llcSlices != 8) {
        return "llcSlices must be 1, 2, 4 or 8 (three XOR-of-tag-bits "
               "parity functions address at most eight slices)";
    }
    if (params.llc.numSets() < params.llcSlices) {
        return "the aggregate LLC has fewer sets than llcSlices (each "
               "slice needs at least one set)";
    }
    return nullptr;
}

bool
multiCoreCapable(const HierarchyParams &params)
{
    return multiCoreIncapableReason(params) == nullptr;
}

MultiCoreSystem::MultiCoreSystem(const HierarchyParams &params,
                                 unsigned cores, Rng *rng)
    : params_(params), rng_(rng)
{
    if (cores == 0)
        fatalf("MultiCoreSystem: at least one core required");
    if (cores > kMaxCores) {
        fatalf("MultiCoreSystem: ", cores, " cores exceed the ",
               kMaxCores, "-core limit (sharer presence masks are "
               "64-bit)");
    }
    if (const char *why = multiCoreIncapableReason(params))
        fatalf("MultiCoreSystem: ", why);

    // Shard the aggregate LLC geometry into llcSlices equal slices;
    // with llcSlices == 1 the single shard is byte-identical to the
    // monolithic pre-slicing LLC (the equivalence suite pins this).
    const unsigned slices = params.llcSlices;
    CacheParams sliceParams = params.llc;
    sliceParams.sizeBytes = params.llc.sizeBytes / slices;
    sliceHash_ = SliceHash(
        slices,
        static_cast<unsigned>(std::countr_zero(sliceParams.numSets())));
    llcSlices_.reserve(slices);
    for (unsigned s = 0; s < slices; ++s)
        llcSlices_.emplace_back(sliceParams, rng);
    sharers_.resize(slices);

    directoryCoherence_ = cores >= kDirectoryMinCores;

    cores_.reserve(cores);
    for (unsigned i = 0; i < cores; ++i) {
        cores_.push_back(
            std::make_unique<Core>(params.l1, params.l2, rng));
        cores_.back()->port.sys_ = this;
        cores_.back()->port.core_ = i;
    }
}

MultiCoreSystem::Core &
MultiCoreSystem::coreRef(unsigned core)
{
    if (core >= cores_.size())
        fatalf("MultiCoreSystem: core ", core, " out of range (",
               cores_.size(), " cores)");
    return *cores_[core];
}

MemorySystem &
MultiCoreSystem::port(unsigned core)
{
    return coreRef(core).port;
}

Cache &
MultiCoreSystem::llc()
{
    if (llcSlices_.size() != 1) {
        fatalf("MultiCoreSystem::llc: the LLC is sharded into ",
               llcSlices_.size(), " slices — no monolithic view "
               "exists; use llcSlice()/llcSliceCount()/sliceOf()");
    }
    return llcSlices_[0];
}

Cache &
MultiCoreSystem::llcSlice(unsigned slice)
{
    if (slice >= llcSlices_.size())
        fatalf("MultiCoreSystem: LLC slice ", slice, " out of range (",
               llcSlices_.size(), " slices)");
    return llcSlices_[slice];
}

PerfCounters &
MultiCoreSystem::counters(unsigned core, ThreadId tid)
{
    Core &c = coreRef(core);
    if (tid >= c.counters.size())
        c.counters.resize(tid + 1);
    return c.counters[tid];
}

PerfCounters
MultiCoreSystem::totalCounters() const
{
    PerfCounters total;
    for (const auto &c : cores_)
        for (const auto &ctr : c->counters)
            total.merge(ctr);
    return total;
}

void
MultiCoreSystem::reset()
{
    for (auto &c : cores_) {
        c->l1.reset();
        c->l2.reset();
    }
    for (auto &slice : llcSlices_)
        slice.reset();
    for (auto &dir : sharers_)
        dir.clear();
}

void
MultiCoreSystem::resetCounters()
{
    for (auto &c : cores_)
        for (auto &ctr : c->counters)
            ctr = PerfCounters{};
    coherence_ = CoherenceStats{};
}

void
MultiCoreSystem::resetAll()
{
    reset();
    resetCounters();
    // Same reseed-reproducibility contract as Hierarchy::resetAll().
    if (rng_ != nullptr)
        rng_->discardCachedDeviates();
}

// -------------------------------------------------------- coherence layer

void
MultiCoreSystem::setDirectoryCoherence(bool on)
{
    if (on == directoryCoherence_)
        return;
    directoryCoherence_ = on;
    // Scan mode runs zero directory maintenance, so whatever the maps
    // held has gone stale; re-derive the exact holder sets from the
    // private caches themselves.
    if (on)
        rebuildDirectory();
}

void
MultiCoreSystem::rebuildDirectory()
{
    for (auto &dir : sharers_)
        dir.clear();
    for (unsigned i = 0; i < cores_.size(); ++i) {
        for (Cache *cache : {&cores_[i]->l1, &cores_[i]->l2}) {
            for (unsigned set = 0; set < cache->numSets(); ++set)
                for (const Line &line : cache->setContents(set))
                    if (line.valid)
                        noteSharer(i, line.lineAddr);
        }
    }
}

void
MultiCoreSystem::dropSharerIfAbsent(Cache &survivor, unsigned core,
                                    Addr la)
{
    if (survivor.contains(la << lineShift))
        return;
    SliceDirectory &dir = sharers_[sliceHash_.sliceOf(la)];
    std::uint64_t *mask = dir.find(la);
    if (mask == nullptr)
        return;
    // Decide erase-vs-store before writing: a zero mask marks the
    // slot free, so erase() could no longer find it (sharer_map.hh).
    const std::uint64_t left = *mask & ~(std::uint64_t(1) << core);
    if (left == 0)
        dir.erase(la);
    else
        *mask = left;
}

void
MultiCoreSystem::invalidateRemote(unsigned core, Addr paddr)
{
    ++coherence_.invalidateEvents;
    if (!directoryCoherence_) {
        // Global scan (the pre-directory implementation, retained as
        // the bit-exactness reference and benchmark baseline).
        for (unsigned o = 0; o < cores_.size(); ++o) {
            if (o == core)
                continue;
            ++coherence_.privateProbes;
            bool d = false;
            cores_[o]->l1.invalidate(paddr, d);
            cores_[o]->l2.invalidate(paddr, d);
        }
        return;
    }
    const Addr la = AddressLayout::lineAddr(paddr);
    SliceDirectory &dir = sharers_[sliceHash_.sliceOf(la)];
    std::uint64_t *mask = dir.find(la);
    if (mask == nullptr)
        return;
    const std::uint64_t self = std::uint64_t(1) << core;
    for (std::uint64_t m = *mask & ~self; m != 0; m &= m - 1) {
        const unsigned o = static_cast<unsigned>(std::countr_zero(m));
        ++coherence_.privateProbes;
        bool d = false;
        cores_[o]->l1.invalidate(paddr, d);
        cores_[o]->l2.invalidate(paddr, d);
    }
    // Only the upgrading core may still hold the line. Decide
    // erase-vs-store before writing: a zero mask marks the slot free,
    // so erase() could no longer find it (sharer_map.hh).
    const std::uint64_t left = *mask & self;
    if (left == 0)
        dir.erase(la);
    else
        *mask = left;
}

bool
MultiCoreSystem::snoopRemoteDirty(unsigned core, Addr paddr,
                                  PerfCounters &ctr, Cycles &drainExtra)
{
    ++coherence_.snoopEvents;
    bool found = false;
    if (!directoryCoherence_) {
        for (unsigned o = 0; o < cores_.size(); ++o) {
            if (o == core)
                continue;
            ++coherence_.privateProbes;
            found |= cores_[o]->l1.downgrade(paddr);
            found |= cores_[o]->l2.downgrade(paddr);
        }
    } else {
        const Addr la = AddressLayout::lineAddr(paddr);
        SliceDirectory &dir = sharers_[sliceHash_.sliceOf(la)];
        const std::uint64_t *mask = dir.find(la);
        if (mask != nullptr) {
            const std::uint64_t self = std::uint64_t(1) << core;
            // A downgrade keeps the line resident (M -> S), so the
            // presence mask is unchanged.
            for (std::uint64_t m = *mask & ~self; m != 0;
                 m &= m - 1) {
                const unsigned o =
                    static_cast<unsigned>(std::countr_zero(m));
                ++coherence_.privateProbes;
                found |= cores_[o]->l1.downgrade(paddr);
                found |= cores_[o]->l2.downgrade(paddr);
            }
        }
    }
    if (found) {
        // The downgraded M copy's data is written back into the
        // shared LLC (which may itself have to evict to take it).
        llcFillShared(paddr, core, /*asDirty=*/true,
                      /*checkResident=*/true, ctr, drainExtra);
    }
    return found;
}

void
MultiCoreSystem::llcFillShared(Addr paddr, unsigned core, bool asDirty,
                               bool checkResident, PerfCounters &ctr,
                               Cycles &drainExtra)
{
    Cache &llc = llcFor(paddr);
    auto out = llc.fillFast(paddr, core, asDirty, checkResident);
    if (!out.filled || out.residentHit || !out.evicted.any)
        return;

    const Addr victimLa = out.evicted.lineAddr;
    const Addr victimPaddr = victimLa << lineShift;
    bool dirtyDrain = out.evicted.dirty;
    if (params_.inclusiveLlc) {
        // Inclusive LLC: the victim may not survive in any core's
        // privates. Dropped dirty copies must drain to DRAM along
        // with the victim.
        ++coherence_.backInvalEvents;
        if (!directoryCoherence_) {
            for (auto &c : cores_) {
                ++coherence_.privateProbes;
                bool d = false;
                c->l1.invalidate(victimPaddr, d);
                dirtyDrain |= d;
                d = false;
                c->l2.invalidate(victimPaddr, d);
                dirtyDrain |= d;
            }
        } else {
            // The victim was installed through the same slice hash,
            // so its directory entry lives in this fill's slice.
            SliceDirectory &dir =
                sharers_[sliceHash_.sliceOf(victimLa)];
            const std::uint64_t *mask = dir.find(victimLa);
            if (mask != nullptr) {
                for (std::uint64_t m = *mask; m != 0; m &= m - 1) {
                    const unsigned o =
                        static_cast<unsigned>(std::countr_zero(m));
                    ++coherence_.privateProbes;
                    bool d = false;
                    cores_[o]->l1.invalidate(victimPaddr, d);
                    dirtyDrain |= d;
                    d = false;
                    cores_[o]->l2.invalidate(victimPaddr, d);
                    dirtyDrain |= d;
                }
                dir.erase(victimLa);
            }
        }
    }
    if (dirtyDrain) {
        // The access that forced the eviction stalls for the drain:
        // this latency difference is the cross-core WB signal.
        drainExtra += params_.lat.llcDirtyEvictPenalty;
        ++ctr.llcDirtyEvictions;
    }
}

void
MultiCoreSystem::writebackToL2(Core &c, unsigned core, Addr lineAddr,
                               ThreadId tid, PerfCounters &ctr,
                               Cycles &drainExtra)
{
    const Addr paddr = lineAddr << lineShift;
    auto out = c.l2.fillFast(paddr, tid, /*asDirty=*/true,
                             /*checkResident=*/true);
    if (out.filled && out.evicted.dirty) {
        llcFillShared(out.evicted.lineAddr << lineShift, core,
                      /*asDirty=*/true, /*checkResident=*/true, ctr,
                      drainExtra);
    }
    if (directoryCoherence_ && out.filled && out.evicted.any) {
        // The victim just left L2; only L1 can still hold a copy.
        dropSharerIfAbsent(c.l1, core, out.evicted.lineAddr);
    }
}

// ------------------------------------------------------------ access path

AccessResult
MultiCoreSystem::missPath(Core &c, unsigned core, ThreadId tid, Addr paddr,
                          bool isWrite, PerfCounters &ctr)
{
    AccessResult res;
    const LatencyModel &lat = params_.lat;
    const Addr la = AddressLayout::lineAddr(paddr);
    Cycles drainExtra = 0;

    // --- Find the data below L1 ---
    ++ctr.l1Misses;
    ++ctr.l2Accesses;
    Cycles base = 0;
    const unsigned l2set = c.l2.layout().setIndex(paddr);
    if (const int w2 = c.l2.probeWay(la, l2set, tid); w2 >= 0) {
        ++ctr.l2Hits;
        c.l2.hitFast(l2set, static_cast<unsigned>(w2), /*isWrite=*/false);
        res.servedBy = Level::L2;
        base = lat.l2Hit;
    } else {
        ++ctr.l2Misses;
        ++ctr.llcAccesses;
        Cache &llc = llcFor(paddr);
        const unsigned llcSet = llc.layout().setIndex(paddr);
        const int w3 = llc.probeWay(la, llcSet, tid);
        if (snoopRemoteDirty(core, paddr, ctr, drainExtra)) {
            // A remote core held the line in M: it was downgraded and
            // its data written back into the shared LLC, which now
            // serves the request.
            ++ctr.crossCoreSnoops;
            if (w3 >= 0)
                ++ctr.llcHits;
            else
                ++ctr.llcMisses;
            res.servedBy = Level::LLC;
            base = lat.llcHit + lat.crossCoreSnoopPenalty;
        } else if (w3 >= 0) {
            ++ctr.llcHits;
            llc.hitFast(llcSet, static_cast<unsigned>(w3),
                        /*isWrite=*/false);
            res.servedBy = Level::LLC;
            base = lat.llcHit;
        } else {
            ++ctr.llcMisses;
            res.servedBy = Level::Mem;
            base = lat.mem;
            // checkResident=false: the probe above just missed, and
            // LLC probe isolation (which would invalidate that
            // deduction) is rejected at construction.
            llcFillShared(paddr, core, /*asDirty=*/false,
                          /*checkResident=*/false, ctr, drainExtra);
        }
        // Fill own L2 on the way up (residency only possible under
        // probe isolation, as in Hierarchy::missPath).
        auto out2 = c.l2.fillFast(paddr, tid, /*asDirty=*/false,
                                  c.l2.params().probeIsolated);
        if (out2.filled && out2.evicted.dirty) {
            llcFillShared(out2.evicted.lineAddr << lineShift, core,
                          /*asDirty=*/true, /*checkResident=*/true, ctr,
                          drainExtra);
            base += lat.l2DirtyEvictPenalty;
        }
        if (directoryCoherence_ && out2.filled && out2.evicted.any) {
            // The victim just left L2; only L1 can still hold a copy.
            dropSharerIfAbsent(c.l1, core, out2.evicted.lineAddr);
        }
    }

    // MESI upgrade: a store ends with this core owning the only copy.
    if (isWrite)
        invalidateRemote(core, paddr);

    res.latency = base + (isWrite ? lat.storeExtra : Cycles(0));

    // --- L1 allocation (write-allocate; store fills install dirty) ---
    auto out = c.l1.fillFast(paddr, tid, /*asDirty=*/isWrite,
                             c.l1.params().probeIsolated);
    if (directoryCoherence_)
        noteSharer(core, la);
    if (out.filled && out.evicted.dirty) {
        res.l1VictimDirty = true;
        res.latency += lat.l1DirtyEvictPenalty;
        ++ctr.l1DirtyWritebacks;
        writebackToL2(c, core, out.evicted.lineAddr, tid, ctr, drainExtra);
    } else if (directoryCoherence_ && out.filled && out.evicted.any) {
        // A clean L1 victim vanished without a write-back; trim its
        // presence bit unless L2 (the only other private level) still
        // holds a copy.
        dropSharerIfAbsent(c.l2, core, out.evicted.lineAddr);
    }

    res.latency += drainExtra + noise();

    // Store-buffer semantics, as in Hierarchy::missPath: the issuing
    // thread sees only the store-buffer insertion latency.
    if (isWrite && lat.storeVisibleLatency > 0)
        res.latency = lat.storeVisibleLatency;

    return res;
}

AccessResult
MultiCoreSystem::accessOne(Core &c, unsigned core, ThreadId tid, Addr paddr,
                           bool isWrite, PerfCounters &ctr)
{
    if (isWrite)
        ++ctr.stores;
    else
        ++ctr.loads;

    const Addr la = AddressLayout::lineAddr(paddr);
    const unsigned set = c.l1.layout().setIndex(paddr);
    const int way = c.l1.probeWay(la, set, tid);
    if (way < 0)
        return missPath(c, core, tid, paddr, isWrite, ctr);

    ++ctr.l1Hits;
    if (isWrite && !c.l1.lineDirty(set, static_cast<unsigned>(way))) {
        // E/S -> M upgrade on a store hit to a clean line: remote
        // copies are invalidated. A store to an already-dirty line
        // needs no message — M guarantees exclusivity.
        invalidateRemote(core, paddr);
    }
    c.l1.hitFast(set, static_cast<unsigned>(way), isWrite);
    AccessResult res;
    res.servedBy = Level::L1;
    res.l1Hit = true;
    res.latency = params_.lat.l1Hit +
                  (isWrite ? params_.lat.storeExtra : Cycles(0)) + noise();
    return res;
}

AccessResult
MultiCoreSystem::access(unsigned core, ThreadId tid, Addr paddr,
                        bool isWrite)
{
    return accessOne(coreRef(core), core, tid, paddr, isWrite,
                     counters(core, tid));
}

template <typename AddrAt>
BatchAccessResult
MultiCoreSystem::accessBatchImpl(unsigned core, ThreadId tid, std::size_t n,
                                 bool isWrite, AddrAt addrAt)
{
    // Same shape as Hierarchy::accessBatchImpl: the loop runs the
    // identical accessOne body the scalar entry point runs, so batched
    // and scalar execution are bit-identical, and counter deltas
    // accumulate in a loop-local struct merged once at the end.
    Core &c = coreRef(core);
    BatchAccessResult batch;
    batch.accesses = n;
    PerfCounters local;
    for (std::size_t i = 0; i < n; ++i) {
        const AccessResult res =
            accessOne(c, core, tid, addrAt(i), isWrite, local);
        batch.l1Hits += res.l1Hit ? 1 : 0;
        batch.l1DirtyEvictions += res.l1VictimDirty ? 1 : 0;
        batch.totalLatency += res.latency;
    }
    counters(core, tid).merge(local);
    return batch;
}

BatchAccessResult
MultiCoreSystem::accessBatch(unsigned core, ThreadId tid,
                             const Addr *paddrs, std::size_t n,
                             bool isWrite)
{
    return accessBatchImpl(core, tid, n, isWrite,
                           [&](std::size_t i) { return paddrs[i]; });
}

BatchAccessResult
MultiCoreSystem::accessBatch(unsigned core, ThreadId tid,
                             const AddressSpace &space, const Addr *vaddrs,
                             std::size_t n, bool isWrite)
{
    return accessBatchImpl(core, tid, n, isWrite, [&](std::size_t i) {
        return space.translate(vaddrs[i]);
    });
}

Cycles
MultiCoreSystem::flush(unsigned core, ThreadId tid, Addr paddr)
{
    PerfCounters &ctr = counters(core, tid);
    ++ctr.flushes;
    ++coherence_.flushEvents;
    const LatencyModel &lat = params_.lat;
    bool present = false;
    bool dirty = false;
    bool d = false;
    // clflush is coherent: every core's privates and the LLC drop the
    // line, dirty data drains to memory.
    if (!directoryCoherence_) {
        for (auto &c : cores_) {
            ++coherence_.privateProbes;
            if (c->l1.invalidate(paddr, d)) {
                present = true;
                dirty |= d;
            }
            if (c->l2.invalidate(paddr, d)) {
                present = true;
                dirty |= d;
            }
        }
    } else {
        const Addr la = AddressLayout::lineAddr(paddr);
        SliceDirectory &dir = sharers_[sliceHash_.sliceOf(la)];
        const std::uint64_t *mask = dir.find(la);
        if (mask != nullptr) {
            for (std::uint64_t m = *mask; m != 0; m &= m - 1) {
                const unsigned o =
                    static_cast<unsigned>(std::countr_zero(m));
                ++coherence_.privateProbes;
                if (cores_[o]->l1.invalidate(paddr, d)) {
                    present = true;
                    dirty |= d;
                }
                if (cores_[o]->l2.invalidate(paddr, d)) {
                    present = true;
                    dirty |= d;
                }
            }
            dir.erase(la);
        }
    }
    if (llcFor(paddr).invalidate(paddr, d)) {
        present = true;
        dirty |= d;
    }
    Cycles cost = lat.flushBase;
    if (present)
        cost += lat.flushPresentExtra;
    if (dirty)
        cost += lat.flushDirtyExtra;
    return cost + noise();
}

} // namespace wb::sim
