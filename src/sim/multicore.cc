#include "sim/multicore.hh"

#include "common/log.hh"

namespace wb::sim
{

// --------------------------------------------------------------- CorePort

AccessResult
CorePort::access(ThreadId tid, Addr paddr, bool isWrite)
{
    return sys_->access(core_, tid, paddr, isWrite);
}

BatchAccessResult
CorePort::accessBatch(ThreadId tid, const Addr *paddrs, std::size_t n,
                      bool isWrite)
{
    return sys_->accessBatch(core_, tid, paddrs, n, isWrite);
}

BatchAccessResult
CorePort::accessBatch(ThreadId tid, const AddressSpace &space,
                      const Addr *vaddrs, std::size_t n, bool isWrite)
{
    return sys_->accessBatch(core_, tid, space, vaddrs, n, isWrite);
}

Cycles
CorePort::flush(ThreadId tid, Addr paddr)
{
    return sys_->flush(core_, tid, paddr);
}

PerfCounters &
CorePort::counters(ThreadId tid)
{
    return sys_->counters(core_, tid);
}

// --------------------------------------------------------- MultiCoreSystem

bool
multiCoreCapable(const HierarchyParams &params)
{
    return params.l1.writePolicy == WritePolicy::WriteBack &&
           params.l1.allocPolicy == AllocPolicy::WriteAllocate &&
           params.randomFillWindow == 0 &&
           params.prefetchGuardProb <= 0.0 && !params.llc.probeIsolated &&
           params.llc.fillMaskPerThread.empty();
}

MultiCoreSystem::MultiCoreSystem(const HierarchyParams &params,
                                 unsigned cores, Rng *rng)
    : params_(params), rng_(rng), llc_(params.llc, rng)
{
    if (cores == 0)
        fatalf("MultiCoreSystem: at least one core required");
    if (params.l1.writePolicy != WritePolicy::WriteBack ||
        params.l1.allocPolicy != AllocPolicy::WriteAllocate) {
        fatalf("MultiCoreSystem: only write-back, write-allocate cores "
               "are modeled (write-through L1s keep no dirty state to "
               "leak cross-core)");
    }
    if (params.randomFillWindow != 0 || params.prefetchGuardProb > 0.0) {
        fatalf("MultiCoreSystem: hierarchy-level defenses (random fill, "
               "prefetch guard) are not modeled multi-core");
    }
    if (params.llc.probeIsolated || !params.llc.fillMaskPerThread.empty()) {
        // LLC fills record the *core* id as the filler while probes
        // pass the per-core thread id; per-thread LLC partitioning or
        // probe isolation would act on mismatched identities, so it
        // is rejected rather than silently missimulated. (Per-core
        // L1/L2 partitioning is fine: those caches only ever see one
        // core's thread ids.)
        fatalf("MultiCoreSystem: per-thread LLC partitioning/probe "
               "isolation is not modeled multi-core");
    }
    cores_.reserve(cores);
    for (unsigned i = 0; i < cores; ++i) {
        cores_.push_back(
            std::make_unique<Core>(params.l1, params.l2, rng));
        cores_.back()->port.sys_ = this;
        cores_.back()->port.core_ = i;
    }
}

MultiCoreSystem::Core &
MultiCoreSystem::coreRef(unsigned core)
{
    if (core >= cores_.size())
        fatalf("MultiCoreSystem: core ", core, " out of range (",
               cores_.size(), " cores)");
    return *cores_[core];
}

MemorySystem &
MultiCoreSystem::port(unsigned core)
{
    return coreRef(core).port;
}

PerfCounters &
MultiCoreSystem::counters(unsigned core, ThreadId tid)
{
    Core &c = coreRef(core);
    if (tid >= c.counters.size())
        c.counters.resize(tid + 1);
    return c.counters[tid];
}

PerfCounters
MultiCoreSystem::totalCounters() const
{
    PerfCounters total;
    for (const auto &c : cores_)
        for (const auto &ctr : c->counters)
            total.merge(ctr);
    return total;
}

void
MultiCoreSystem::reset()
{
    for (auto &c : cores_) {
        c->l1.reset();
        c->l2.reset();
    }
    llc_.reset();
}

void
MultiCoreSystem::resetCounters()
{
    for (auto &c : cores_)
        for (auto &ctr : c->counters)
            ctr = PerfCounters{};
}

void
MultiCoreSystem::resetAll()
{
    reset();
    resetCounters();
    // Same reseed-reproducibility contract as Hierarchy::resetAll().
    if (rng_ != nullptr)
        rng_->discardCachedDeviates();
}

// -------------------------------------------------------- coherence layer

void
MultiCoreSystem::invalidateRemote(unsigned core, Addr paddr)
{
    for (unsigned o = 0; o < cores_.size(); ++o) {
        if (o == core)
            continue;
        bool d = false;
        cores_[o]->l1.invalidate(paddr, d);
        cores_[o]->l2.invalidate(paddr, d);
    }
}

bool
MultiCoreSystem::snoopRemoteDirty(unsigned core, Addr paddr,
                                  PerfCounters &ctr, Cycles &drainExtra)
{
    bool found = false;
    for (unsigned o = 0; o < cores_.size(); ++o) {
        if (o == core)
            continue;
        found |= cores_[o]->l1.downgrade(paddr);
        found |= cores_[o]->l2.downgrade(paddr);
    }
    if (found) {
        // The downgraded M copy's data is written back into the
        // shared LLC (which may itself have to evict to take it).
        llcFillShared(paddr, core, /*asDirty=*/true,
                      /*checkResident=*/true, ctr, drainExtra);
    }
    return found;
}

void
MultiCoreSystem::llcFillShared(Addr paddr, unsigned core, bool asDirty,
                               bool checkResident, PerfCounters &ctr,
                               Cycles &drainExtra)
{
    auto out = llc_.fillFast(paddr, core, asDirty, checkResident);
    if (!out.filled || out.residentHit || !out.evicted.any)
        return;

    const Addr victimPaddr = out.evicted.lineAddr << lineShift;
    bool dirtyDrain = out.evicted.dirty;
    if (params_.inclusiveLlc) {
        // Inclusive LLC: the victim may not survive in any core's
        // privates. Dropped dirty copies must drain to DRAM along
        // with the victim.
        for (auto &c : cores_) {
            bool d = false;
            c->l1.invalidate(victimPaddr, d);
            dirtyDrain |= d;
            d = false;
            c->l2.invalidate(victimPaddr, d);
            dirtyDrain |= d;
        }
    }
    if (dirtyDrain) {
        // The access that forced the eviction stalls for the drain:
        // this latency difference is the cross-core WB signal.
        drainExtra += params_.lat.llcDirtyEvictPenalty;
        ++ctr.llcDirtyEvictions;
    }
}

void
MultiCoreSystem::writebackToL2(Core &c, unsigned core, Addr lineAddr,
                               ThreadId tid, PerfCounters &ctr,
                               Cycles &drainExtra)
{
    const Addr paddr = lineAddr << lineShift;
    auto out = c.l2.fillFast(paddr, tid, /*asDirty=*/true,
                             /*checkResident=*/true);
    if (out.filled && out.evicted.dirty) {
        llcFillShared(out.evicted.lineAddr << lineShift, core,
                      /*asDirty=*/true, /*checkResident=*/true, ctr,
                      drainExtra);
    }
}

// ------------------------------------------------------------ access path

AccessResult
MultiCoreSystem::missPath(Core &c, unsigned core, ThreadId tid, Addr paddr,
                          bool isWrite, PerfCounters &ctr)
{
    AccessResult res;
    const LatencyModel &lat = params_.lat;
    const Addr la = AddressLayout::lineAddr(paddr);
    Cycles drainExtra = 0;

    // --- Find the data below L1 ---
    ++ctr.l1Misses;
    ++ctr.l2Accesses;
    Cycles base = 0;
    const unsigned l2set = c.l2.layout().setIndex(paddr);
    if (const int w2 = c.l2.probeWay(la, l2set, tid); w2 >= 0) {
        ++ctr.l2Hits;
        c.l2.hitFast(l2set, static_cast<unsigned>(w2), /*isWrite=*/false);
        res.servedBy = Level::L2;
        base = lat.l2Hit;
    } else {
        ++ctr.l2Misses;
        ++ctr.llcAccesses;
        const unsigned llcSet = llc_.layout().setIndex(paddr);
        const int w3 = llc_.probeWay(la, llcSet, tid);
        if (snoopRemoteDirty(core, paddr, ctr, drainExtra)) {
            // A remote core held the line in M: it was downgraded and
            // its data written back into the shared LLC, which now
            // serves the request.
            ++ctr.crossCoreSnoops;
            if (w3 >= 0)
                ++ctr.llcHits;
            else
                ++ctr.llcMisses;
            res.servedBy = Level::LLC;
            base = lat.llcHit + lat.crossCoreSnoopPenalty;
        } else if (w3 >= 0) {
            ++ctr.llcHits;
            llc_.hitFast(llcSet, static_cast<unsigned>(w3),
                         /*isWrite=*/false);
            res.servedBy = Level::LLC;
            base = lat.llcHit;
        } else {
            ++ctr.llcMisses;
            res.servedBy = Level::Mem;
            base = lat.mem;
            // checkResident=false: the probe above just missed, and
            // LLC probe isolation (which would invalidate that
            // deduction) is rejected at construction.
            llcFillShared(paddr, core, /*asDirty=*/false,
                          /*checkResident=*/false, ctr, drainExtra);
        }
        // Fill own L2 on the way up (residency only possible under
        // probe isolation, as in Hierarchy::missPath).
        auto out2 = c.l2.fillFast(paddr, tid, /*asDirty=*/false,
                                  c.l2.params().probeIsolated);
        if (out2.filled && out2.evicted.dirty) {
            llcFillShared(out2.evicted.lineAddr << lineShift, core,
                          /*asDirty=*/true, /*checkResident=*/true, ctr,
                          drainExtra);
            base += lat.l2DirtyEvictPenalty;
        }
    }

    // MESI upgrade: a store ends with this core owning the only copy.
    if (isWrite)
        invalidateRemote(core, paddr);

    res.latency = base + (isWrite ? lat.storeExtra : Cycles(0));

    // --- L1 allocation (write-allocate; store fills install dirty) ---
    auto out = c.l1.fillFast(paddr, tid, /*asDirty=*/isWrite,
                             c.l1.params().probeIsolated);
    if (out.filled && out.evicted.dirty) {
        res.l1VictimDirty = true;
        res.latency += lat.l1DirtyEvictPenalty;
        ++ctr.l1DirtyWritebacks;
        writebackToL2(c, core, out.evicted.lineAddr, tid, ctr, drainExtra);
    }

    res.latency += drainExtra + noise();

    // Store-buffer semantics, as in Hierarchy::missPath: the issuing
    // thread sees only the store-buffer insertion latency.
    if (isWrite && lat.storeVisibleLatency > 0)
        res.latency = lat.storeVisibleLatency;

    return res;
}

AccessResult
MultiCoreSystem::accessOne(Core &c, unsigned core, ThreadId tid, Addr paddr,
                           bool isWrite, PerfCounters &ctr)
{
    if (isWrite)
        ++ctr.stores;
    else
        ++ctr.loads;

    const Addr la = AddressLayout::lineAddr(paddr);
    const unsigned set = c.l1.layout().setIndex(paddr);
    const int way = c.l1.probeWay(la, set, tid);
    if (way < 0)
        return missPath(c, core, tid, paddr, isWrite, ctr);

    ++ctr.l1Hits;
    if (isWrite && !c.l1.lineDirty(set, static_cast<unsigned>(way))) {
        // E/S -> M upgrade on a store hit to a clean line: remote
        // copies are invalidated. A store to an already-dirty line
        // needs no message — M guarantees exclusivity.
        invalidateRemote(core, paddr);
    }
    c.l1.hitFast(set, static_cast<unsigned>(way), isWrite);
    AccessResult res;
    res.servedBy = Level::L1;
    res.l1Hit = true;
    res.latency = params_.lat.l1Hit +
                  (isWrite ? params_.lat.storeExtra : Cycles(0)) + noise();
    return res;
}

AccessResult
MultiCoreSystem::access(unsigned core, ThreadId tid, Addr paddr,
                        bool isWrite)
{
    return accessOne(coreRef(core), core, tid, paddr, isWrite,
                     counters(core, tid));
}

template <typename AddrAt>
BatchAccessResult
MultiCoreSystem::accessBatchImpl(unsigned core, ThreadId tid, std::size_t n,
                                 bool isWrite, AddrAt addrAt)
{
    // Same shape as Hierarchy::accessBatchImpl: the loop runs the
    // identical accessOne body the scalar entry point runs, so batched
    // and scalar execution are bit-identical, and counter deltas
    // accumulate in a loop-local struct merged once at the end.
    Core &c = coreRef(core);
    BatchAccessResult batch;
    batch.accesses = n;
    PerfCounters local;
    for (std::size_t i = 0; i < n; ++i) {
        const AccessResult res =
            accessOne(c, core, tid, addrAt(i), isWrite, local);
        batch.l1Hits += res.l1Hit ? 1 : 0;
        batch.l1DirtyEvictions += res.l1VictimDirty ? 1 : 0;
        batch.totalLatency += res.latency;
    }
    counters(core, tid).merge(local);
    return batch;
}

BatchAccessResult
MultiCoreSystem::accessBatch(unsigned core, ThreadId tid,
                             const Addr *paddrs, std::size_t n,
                             bool isWrite)
{
    return accessBatchImpl(core, tid, n, isWrite,
                           [&](std::size_t i) { return paddrs[i]; });
}

BatchAccessResult
MultiCoreSystem::accessBatch(unsigned core, ThreadId tid,
                             const AddressSpace &space, const Addr *vaddrs,
                             std::size_t n, bool isWrite)
{
    return accessBatchImpl(core, tid, n, isWrite, [&](std::size_t i) {
        return space.translate(vaddrs[i]);
    });
}

Cycles
MultiCoreSystem::flush(unsigned core, ThreadId tid, Addr paddr)
{
    PerfCounters &ctr = counters(core, tid);
    ++ctr.flushes;
    const LatencyModel &lat = params_.lat;
    bool present = false;
    bool dirty = false;
    bool d = false;
    // clflush is coherent: every core's privates and the LLC drop the
    // line, dirty data drains to memory.
    for (auto &c : cores_) {
        if (c->l1.invalidate(paddr, d)) {
            present = true;
            dirty |= d;
        }
        if (c->l2.invalidate(paddr, d)) {
            present = true;
            dirty |= d;
        }
    }
    if (llc_.invalidate(paddr, d)) {
        present = true;
        dirty |= d;
    }
    Cycles cost = lat.flushBase;
    if (present)
        cost += lat.flushPresentExtra;
    if (dirty)
        cost += lat.flushDirtyExtra;
    return cost + noise();
}

} // namespace wb::sim
