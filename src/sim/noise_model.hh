/**
 * @file
 * Central noise model for the simulated SMT platform.
 *
 * The paper's channel errors come from real-machine effects: rdtscp
 * serialization and timestamp granularity, spin-loop release overshoot
 * (which makes the sender's and receiver's slot phases drift as a random
 * walk, producing bit insertions/losses and encode/decode overlap
 * bursts), OS preemptions, and SMT port contention that inflates the
 * variance of the receiver's latency measurement as the sampling period
 * shrinks. Every knob lives here so experiments can state exactly which
 * noise produced which error (DESIGN.md "noise model" section).
 */

#ifndef WB_SIM_NOISE_MODEL_HH
#define WB_SIM_NOISE_MODEL_HH

#include "common/types.hh"
#include "sim/observer.hh"

namespace wb::sim
{

/** Scheduling/measurement noise parameters of the simulated platform. */
struct NoiseModel
{
    /** Cost of one rdtscp (serializing) read. */
    Cycles tscReadCost = 30;

    /** Timestamp counter granularity in cycles. */
    Cycles tscGranularity = 1;

    /** Fixed issue overhead added to every memory operation. */
    Cycles opOverhead = 1;

    /**
     * Cost of a pipelined load that hits L1 (throughput, not latency:
     * independent loads overlap in the pipeline). See MemOp::pipelined.
     */
    Cycles pipelinedHitCost = 3;

    /**
     * Mean of the exponential overshoot when a spin-wait releases.
     * Because Algorithm 3 re-bases Tlast on the post-spin TSC value,
     * overshoot accumulates into a random-walk phase drift between the
     * two hyper-threads — the source of bit slips at high rates.
     */
    double spinOvershootMean = 18.0;

    /**
     * Probability a spin-wait suffers an OS preemption. Calibrated to
     * roughly a timer tick's worth of involuntary switches for a
     * busy-spinning pinned thread.
     */
    double preemptProbPerSpin = 0.001;

    /** Probability any single memory op suffers a preemption. */
    double preemptProbPerOp = 1e-6;

    /** Mean preempted time (exponential), in cycles (~5 us at 2.2 GHz). */
    double preemptMean = 12000.0;

    /**
     * SMT port contention: when both hyper-threads issue memory ops
     * within portContentionWindow cycles, the later op pays
     * portContentionDelay extra with this probability.
     */
    double portContentionProb = 0.25;
    Cycles portContentionWindow = 6; //!< coincidence window (cycles)
    Cycles portContentionDelay = 2;  //!< extra cycles when contended

    /**
     * Spin-wait accounting (paper Tables VI/VII): a busy-wait loop
     * (`while (TSC < Tlast + Ts);`) retires spinLoadsPerIter L1 loads
     * every spinIterCycles cycles (loop bookkeeping hitting the stack
     * line next to the serializing rdtscp). These loads are credited to
     * PerfCounters::spinLoads so perf-style load counts include them.
     */
    Cycles spinIterCycles = 7;
    unsigned spinLoadsPerIter = 1;

    /**
     * Receiver measurement dispersion: sigma of a zero-mean Gaussian
     * added to each whole pointer-chase measurement,
     * sigma = measBaseSigma + measRateSigma / samplingPeriod.
     * The rate-dependent term is a calibrated stand-in for the
     * fill-buffer and scheduler interference a real receiver suffers
     * when it samples faster (see DESIGN.md substitution notes).
     */
    double measBaseSigma = 1.2;
    double measRateSigma = 1800.0;

    /**
     * Execute compiled traces (Program::nextTrace) when a program
     * offers them, instead of forcing per-op next()/onResult dispatch.
     * The two execution modes are bit-exact by contract
     * (tests/test_trace_equivalence.cc); the flag exists so that suite
     * can run the per-op reference path, and as an escape hatch while
     * debugging a program's trace emitter.
     */
    bool traceExecution = true;

    /**
     * What the observer's measurement apparatus can do (timer
     * resolution/jitter, flush availability, eviction-only fallback).
     * The default is the legacy full-strength observer; see
     * sim/observer.hh and docs/OBSERVERS.md.
     */
    ObserverModel observer;

    /**
     * Effective observer-visible timer granule: the platform rdtscp
     * coarseness (tscGranularity, also set by the fuzzy-time defense)
     * and the observer's own floor both apply to every timestamp.
     */
    Cycles
    timerGranule() const
    {
        return tscGranularity > observer.timerGranularity
                   ? tscGranularity
                   : observer.timerGranularity;
    }

    /**
     * Route an offline duration measurement through the observer choke
     * point (sim/observer.hh observeDuration): quantize to the
     * effective granule with a uniform unknown phase, plus timer
     * jitter. No-op (and no RNG draws) for the default observer on a
     * granule-1 platform.
     */
    double
    observeDuration(double duration, Rng &rng) const
    {
        return sim::observeDuration(duration, timerGranule(),
                                    observer.timerJitterSigma, rng);
    }

    /** Measurement sigma for a given sampling period in cycles. */
    double
    measSigma(Cycles samplingPeriod) const
    {
        if (samplingPeriod == 0)
            return measBaseSigma;
        return measBaseSigma +
               measRateSigma / static_cast<double>(samplingPeriod);
    }

    /** A fully quiet model: deterministic, zero-overhead timing. */
    static NoiseModel
    quiet()
    {
        NoiseModel n;
        n.tscReadCost = 0;
        n.tscGranularity = 1;
        n.opOverhead = 0;
        n.spinOvershootMean = 0.0;
        n.preemptProbPerSpin = 0.0;
        n.preemptProbPerOp = 0.0;
        n.preemptMean = 0.0;
        n.portContentionProb = 0.0;
        n.measBaseSigma = 0.0;
        n.measRateSigma = 0.0;
        return n;
    }
};

} // namespace wb::sim

#endif // WB_SIM_NOISE_MODEL_HH
