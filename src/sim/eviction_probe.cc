#include "sim/eviction_probe.hh"

#include <cmath>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace wb::sim
{

double
iidEvictionProbability(unsigned ways, unsigned dirtyLines,
                       unsigned replacementSize)
{
    if (dirtyLines >= ways)
        return 1.0;
    const double survive =
        static_cast<double>(ways - dirtyLines) / static_cast<double>(ways);
    return 1.0 - std::pow(survive, static_cast<double>(replacementSize));
}

EvictionProbeResult
runEvictionProbe(const EvictionProbeConfig &cfg, unsigned trials, Rng &rng)
{
    if (cfg.dirtyLines == 0 || cfg.dirtyLines > cfg.ways)
        fatalf("EvictionProbe: dirtyLines must be in [1, ways]");

    // A one-set cache isolates the experiment to a single target set.
    CacheParams params;
    params.name = "probe";
    params.ways = cfg.ways;
    params.sizeBytes = static_cast<std::size_t>(cfg.ways) * lineBytes;
    params.policy = cfg.policy;

    Cache cache(params, &rng);

    // Disjoint address pools, all mapping to the single set.
    auto lineAt = [](unsigned i) { return static_cast<Addr>(i) * lineBytes; };
    const unsigned warmBase = 1000;
    const unsigned replBase = 2000;

    std::uint64_t targetEvicted = 0;
    std::uint64_t anyDirtyEvicted = 0;
    std::uint64_t allDirtyEvicted = 0;

    // The dirty-write and replacement sweeps traverse fixed address
    // lists; build them once and drive each trial's sweeps as batches.
    // (A fill of a resident line degenerates to a hit, so fillBatch is
    // exactly the probe-hit-else-fill idiom of the paper's loops.)
    std::vector<Addr> dirtyAddrs;
    for (unsigned i = 0; i < cfg.dirtyLines; ++i)
        dirtyAddrs.push_back(lineAt(i));
    std::vector<Addr> replAddrs;
    for (unsigned i = 0; i < cfg.replacementSize; ++i)
        replAddrs.push_back(lineAt(replBase + i));
    const bool interference =
        cfg.interferenceMax > 0 && cfg.interferenceProb > 0.0;

    for (unsigned t = 0; t < trials; ++t) {
        cache.reset();

        // Random prior history over a pool slightly larger than the
        // set. Per-access (not batched): each address depends on an
        // Rng draw interleaved with the stochastic policies' draws.
        const unsigned poolSize = cfg.ways + 4;
        for (unsigned i = 0; i < cfg.warmupAccesses; ++i) {
            const auto pick =
                static_cast<unsigned>(rng.below(poolSize));
            cache.fill(lineAt(warmBase + pick), 0, /*asDirty=*/false);
        }

        // Write the d dirty lines (line 0 first), sweeping dirtyLoops
        // times as the paper does to ensure residence.
        for (unsigned loop = 0; loop < std::max(1u, cfg.dirtyLoops);
             ++loop)
            cache.fillBatch(dirtyAddrs, 0, /*asDirty=*/true);

        // Sweep the replacement set, with optional interference.
        if (!interference) {
            cache.fillBatch(replAddrs, 0, /*asDirty=*/false);
        } else {
            unsigned interferenceLeft = cfg.interferenceMax;
            for (unsigned i = 0; i < cfg.replacementSize; ++i) {
                if (interferenceLeft > 0 &&
                    rng.chance(cfg.interferenceProb)) {
                    // Touch a random resident line (hit) to disturb the
                    // replacement state, as concurrent core activity
                    // does. The measured dirty lines themselves are
                    // excluded: interference is extraneous traffic, not
                    // reuse of the victim's data.
                    auto lines = cache.setContents(0);
                    std::vector<Addr> resident;
                    for (const auto &l : lines) {
                        if (l.valid && !l.dirty)
                            resident.push_back(l.lineAddr << lineShift);
                    }
                    if (!resident.empty()) {
                        const Addr a =
                            resident[rng.below(resident.size())];
                        if (auto way = cache.probe(a, 0))
                            cache.onHit(a, *way, 0, /*isWrite=*/false);
                        --interferenceLeft;
                    }
                }
                cache.fill(lineAt(replBase + i), 0, /*asDirty=*/false);
            }
        }

        // Inspect.
        if (!cache.contains(lineAt(0)))
            ++targetEvicted;
        unsigned evicted = 0;
        for (unsigned i = 0; i < cfg.dirtyLines; ++i)
            if (!cache.contains(lineAt(i)))
                ++evicted;
        if (evicted > 0)
            ++anyDirtyEvicted;
        if (evicted == cfg.dirtyLines)
            ++allDirtyEvicted;
    }

    EvictionProbeResult res;
    const double n = trials > 0 ? static_cast<double>(trials) : 1.0;
    res.probTargetEvicted = static_cast<double>(targetEvicted) / n;
    res.probAnyDirtyEvicted = static_cast<double>(anyDirtyEvicted) / n;
    res.probAllDirtyEvicted = static_cast<double>(allDirtyEvicted) / n;
    return res;
}

} // namespace wb::sim
