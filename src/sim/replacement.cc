#include "sim/replacement.hh"

#include <algorithm>
#include <bit>

#include "common/log.hh"

namespace wb::sim
{

namespace
{

using detail::lfsrResetState;
using detail::lfsrStep;
using detail::quadAgePerturbProb;
using detail::srripMax;

} // namespace

// ====================================================== PolicyTable

PolicyTable::PolicyTable(PolicyKind kind, unsigned sets, unsigned ways,
                         Rng *rng)
    : kind_(kind), sets_(sets), ways_(ways),
      nodes_(ways > 1 ? ways - 1 : 1), rng_(rng)
{
    if (ways_ == 0 || ways_ > 32)
        panicf("PolicyTable: ways ", ways_, " outside [1, 32]");
    if ((kind_ == PolicyKind::TreePlru || kind_ == PolicyKind::QuadAgeLru)
        && (ways_ & (ways_ - 1)) != 0) {
        panicf(policyName(kind_), " requires power-of-two ways, got ",
               ways_);
    }
    if (kind_ == PolicyKind::RandomIid && rng_ == nullptr)
        panic("RandomIid requires an Rng");

    if (kind_ == PolicyKind::TreePlru || kind_ == PolicyKind::QuadAgeLru) {
        // Precompute the tree fast paths (see the member comment):
        // per-way masked-assign touch updates...
        touchMask_.assign(ways_, 0);
        touchVal_.assign(ways_, 0);
        for (unsigned w = 0; w < ways_; ++w) {
            unsigned node = nodes_ + w;
            while (node != 0) {
                const unsigned parent = (node - 1) / 2;
                touchMask_[w] |= std::uint64_t(1) << parent;
                if (node == 2 * parent + 1)
                    touchVal_[w] |= std::uint64_t(1) << parent;
                node = parent;
            }
        }
        // ...and, for small trees, the bits -> victim-leaf lookup,
        // built by running the reference root-to-leaf walk once per
        // possible bit pattern.
        if (nodes_ <= 7) {
            victimLut_.assign(std::size_t(1) << nodes_, 0);
            for (std::size_t bits = 0; bits < victimLut_.size(); ++bits) {
                unsigned node = 0;
                while (node < nodes_)
                    node = 2 * node + 1 +
                           static_cast<unsigned>((bits >> node) & 1);
                victimLut_[bits] =
                    static_cast<std::uint8_t>(node - nodes_);
            }
        }
    }

    setWord_.assign(sets_, 0);
    switch (kind_) {
      case PolicyKind::TrueLru:
      case PolicyKind::Fifo:
        lineWord_.assign(std::size_t(sets_) * ways_, 0);
        break;
      case PolicyKind::Srrip:
        lineWord_.assign(std::size_t(sets_) * ways_, srripMax);
        break;
      case PolicyKind::LfsrRandom:
        // Seed each set's LFSR exactly as the per-set reference does:
        // one draw per set, in set order.
        for (unsigned s = 0; s < sets_; ++s) {
            setWord_[s] = rng_ != nullptr ? rng_->below(0x7fff) + 1
                                          : lfsrResetState;
        }
        break;
      default:
        break;
    }
}

void
PolicyTable::reset()
{
    switch (kind_) {
      case PolicyKind::Srrip:
        std::fill(setWord_.begin(), setWord_.end(), 0);
        std::fill(lineWord_.begin(), lineWord_.end(), srripMax);
        break;
      case PolicyKind::LfsrRandom:
        std::fill(setWord_.begin(), setWord_.end(), lfsrResetState);
        break;
      default:
        std::fill(setWord_.begin(), setWord_.end(), 0);
        std::fill(lineWord_.begin(), lineWord_.end(), 0);
        break;
    }
}

unsigned
PolicyTable::bestAgreement(std::uint64_t bits,
                           std::uint32_t eligibleMask) const
{
    // Pick the eligible way whose root-to-leaf path agrees most with
    // the current tree bits (fewest flips needed to point at it).
    unsigned best = 0;
    int bestScore = -1;
    for (std::uint32_t m = eligibleMask; m != 0; m &= m - 1) {
        const unsigned w = lowestWay(m);
        int score = 0;
        unsigned node = nodes_ + w;
        while (node != 0) {
            const unsigned parent = (node - 1) / 2;
            const bool towardRight = (node == 2 * parent + 2);
            const bool bit = (bits >> parent) & 1;
            if (bit == towardRight)
                ++score;
            node = parent;
        }
        if (score > bestScore) {
            bestScore = score;
            best = w;
        }
    }
    return best;
}

unsigned
PolicyTable::victimSlow(unsigned set, std::uint32_t eligibleMask)
{
    // Cold remainder of victim(): the zero-mask panic, the tree
    // policies' ineligible-leaf fallbacks, SRRIP's aging search and
    // the stochastic policies' draw loops.
    if (eligibleMask == 0)
        panic("PolicyTable::victim: no eligible way");

    switch (kind_) {
      case PolicyKind::TreePlru:
        return bestAgreement(setWord_[set], eligibleMask);
      case PolicyKind::QuadAgeLru:
        return lowestWay(eligibleMask);
      case PolicyKind::Srrip: {
        std::uint64_t *rrpv = &lineWord_[std::size_t(set) * ways_];
        for (;;) {
            for (std::uint32_t m = eligibleMask; m != 0; m &= m - 1) {
                const unsigned w = lowestWay(m);
                if (rrpv[w] >= srripMax)
                    return w;
            }
            for (unsigned w = 0; w < ways_; ++w)
                if (rrpv[w] < srripMax)
                    ++rrpv[w];
        }
      }
      case PolicyKind::RandomIid:
        for (;;) {
            const auto w = static_cast<unsigned>(rng_->below(ways_));
            if ((eligibleMask >> w) & 1)
                return w;
        }
      case PolicyKind::LfsrRandom:
        for (;;) {
            const auto w =
                static_cast<unsigned>(setWord_[set] % ways_);
            setWord_[set] = lfsrStep(setWord_[set]);
            if ((eligibleMask >> w) & 1)
                return w;
        }
      default:
        break;
    }
    panic("PolicyTable::victimSlow: unexpected kind");
}

// ======================================== virtual reference policies

void
ReplacementPolicy::checkCandidates(std::uint32_t eligibleMask)
{
    if (eligibleMask == 0)
        panic("ReplacementPolicy::victim: no eligible way");
}

namespace
{

/** True when bit @p way of @p mask is set. */
inline bool
hasWay(std::uint32_t mask, unsigned way)
{
    return ((mask >> way) & 1u) != 0;
}

/** Exact LRU via a monotonically increasing recency stamp per way. */
class TrueLru : public ReplacementPolicy
{
  public:
    explicit TrueLru(unsigned ways)
        : ReplacementPolicy(ways), stamp_(ways, 0)
    {
    }

    void
    reset() override
    {
        std::fill(stamp_.begin(), stamp_.end(), 0);
        clock_ = 0;
    }

    void onFill(unsigned way) override { touch(way); }
    void onHit(unsigned way) override { touch(way); }

    unsigned
    victim(std::uint32_t eligibleMask) override
    {
        checkCandidates(eligibleMask);
        unsigned best = 0;
        std::uint64_t bestStamp = ~std::uint64_t(0);
        for (unsigned w = 0; w < ways_; ++w) {
            if (hasWay(eligibleMask, w) && stamp_[w] < bestStamp) {
                bestStamp = stamp_[w];
                best = w;
            }
        }
        return best;
    }

  private:
    void touch(unsigned way) { stamp_[way] = ++clock_; }

    std::vector<std::uint64_t> stamp_;
    std::uint64_t clock_ = 0;
};

/**
 * Classic tree-PLRU over a power-of-two associativity. Internal nodes
 * hold one bit; 0 means "LRU side is the left subtree". An access flips
 * the bits on its path to point away from the accessed way.
 */
class TreePlru : public ReplacementPolicy
{
  public:
    explicit TreePlru(unsigned ways)
        : ReplacementPolicy(ways), bits_(ways > 1 ? ways - 1 : 1, false)
    {
        if ((ways & (ways - 1)) != 0)
            panicf("TreePlru requires power-of-two ways, got ", ways);
    }

    void
    reset() override
    {
        std::fill(bits_.begin(), bits_.end(), false);
    }

    void onFill(unsigned way) override { touch(way); }
    void onHit(unsigned way) override { touch(way); }

    unsigned
    victim(std::uint32_t eligibleMask) override
    {
        checkCandidates(eligibleMask);
        // Walk the tree toward the PLRU leaf. If that leaf is not an
        // eligible candidate (locked/partitioned), fall back to the
        // eligible way whose path disagrees least with the tree bits.
        unsigned node = 0;
        while (node < bits_.size()) {
            node = 2 * node + 1 + (bits_[node] ? 1 : 0);
        }
        unsigned leaf = node - static_cast<unsigned>(bits_.size());
        if (hasWay(eligibleMask, leaf))
            return leaf;

        unsigned best = 0;
        int bestScore = -1;
        for (unsigned w = 0; w < ways_; ++w) {
            if (!hasWay(eligibleMask, w))
                continue;
            const int score = agreement(w);
            if (score > bestScore) {
                bestScore = score;
                best = w;
            }
        }
        return best;
    }

  private:
    /** Flip the path bits so they point away from @p way. */
    void
    touch(unsigned way)
    {
        unsigned node = static_cast<unsigned>(bits_.size()) + way;
        while (node != 0) {
            const unsigned parent = (node - 1) / 2;
            // Point the parent at the sibling subtree.
            bits_[parent] = (node == 2 * parent + 1);
            node = parent;
        }
    }

    /** How many path bits currently point at @p way. */
    int
    agreement(unsigned way) const
    {
        int score = 0;
        unsigned node = static_cast<unsigned>(bits_.size()) + way;
        while (node != 0) {
            const unsigned parent = (node - 1) / 2;
            const bool towardRight = (node == 2 * parent + 2);
            if (bits_[parent] == towardRight)
                ++score;
            node = parent;
        }
        return score;
    }

    std::vector<bool> bits_;
};

/** MRU-bit pseudo-LRU: one bit per way; clears all when full. */
class BitPlru : public ReplacementPolicy
{
  public:
    explicit BitPlru(unsigned ways)
        : ReplacementPolicy(ways), mru_(ways, false)
    {
    }

    void
    reset() override
    {
        std::fill(mru_.begin(), mru_.end(), false);
    }

    void onFill(unsigned way) override { touch(way); }
    void onHit(unsigned way) override { touch(way); }

    unsigned
    victim(std::uint32_t eligibleMask) override
    {
        checkCandidates(eligibleMask);
        for (unsigned w = 0; w < ways_; ++w)
            if (hasWay(eligibleMask, w) && !mru_[w])
                return w;
        for (unsigned w = 0; w < ways_; ++w)
            if (hasWay(eligibleMask, w))
                return w;
        return 0; // unreachable; checkCandidates guarantees a candidate
    }

  private:
    void
    touch(unsigned way)
    {
        mru_[way] = true;
        if (std::all_of(mru_.begin(), mru_.end(),
                        [](bool b) { return b; })) {
            std::fill(mru_.begin(), mru_.end(), false);
            mru_[way] = true;
        }
    }

    std::vector<bool> mru_;
};

/** Not-recently-used: like BitPlru but ages only on victim search. */
class Nru : public ReplacementPolicy
{
  public:
    explicit Nru(unsigned ways)
        : ReplacementPolicy(ways), recent_(ways, false)
    {
    }

    void
    reset() override
    {
        std::fill(recent_.begin(), recent_.end(), false);
    }

    void onFill(unsigned way) override { recent_[way] = true; }
    void onHit(unsigned way) override { recent_[way] = true; }

    unsigned
    victim(std::uint32_t eligibleMask) override
    {
        checkCandidates(eligibleMask);
        for (;;) {
            for (unsigned w = 0; w < ways_; ++w)
                if (hasWay(eligibleMask, w) && !recent_[w])
                    return w;
            // Aging pass: clear all reference bits and rescan.
            std::fill(recent_.begin(), recent_.end(), false);
        }
    }

  private:
    std::vector<bool> recent_;
};

/**
 * SRRIP with 2-bit re-reference prediction values. Insertion uses a
 * "long" prediction (rrpvMax - 1); hits promote to 0; victim search
 * ages every way until one reaches rrpvMax.
 */
class Srrip : public ReplacementPolicy
{
  public:
    Srrip(unsigned ways, unsigned bits, Rng *rng)
        : ReplacementPolicy(ways), rrpvMax_((1u << bits) - 1),
          rrpv_(ways, rrpvMax_), rng_(rng)
    {
    }

    void
    reset() override
    {
        std::fill(rrpv_.begin(), rrpv_.end(), rrpvMax_);
    }

    void onFill(unsigned way) override { rrpv_[way] = rrpvMax_ - 1; }
    void onHit(unsigned way) override { rrpv_[way] = 0; }

    unsigned
    victim(std::uint32_t eligibleMask) override
    {
        checkCandidates(eligibleMask);
        for (;;) {
            // Textbook SRRIP: evict the lowest-index eligible way at
            // the maximum RRPV; age everyone when none qualifies.
            for (unsigned w = 0; w < ways_; ++w)
                if (hasWay(eligibleMask, w) && rrpv_[w] >= rrpvMax_)
                    return w;
            for (unsigned w = 0; w < ways_; ++w)
                if (rrpv_[w] < rrpvMax_)
                    ++rrpv_[w];
        }
    }

  protected:
    unsigned rrpvMax_;
    std::vector<unsigned> rrpv_;
    Rng *rng_;
};

/**
 * Stand-in for the undocumented Sandy Bridge L1D policy (paper Table II,
 * "Intel Xeon E5-2650" row): Tree-PLRU whose state is perturbed by the
 * rest of the core (TLB walks, instruction-side traffic, the sibling
 * thread) — modeled as a random tree-bit flip on a fraction of fills.
 * The effect the paper measured emerges: a recently written line
 * survives an 8- or 9-line sweep with sizable probability but is gone
 * after 10+; exact percentages are calibration, not microarchitecture
 * (see DESIGN.md substitution table and bench/table2_eviction).
 */
class QuadAgeLru : public ReplacementPolicy
{
  public:
    QuadAgeLru(unsigned ways, Rng *rng)
        : ReplacementPolicy(ways), bits_(ways > 1 ? ways - 1 : 1, false),
          rng_(rng)
    {
        if ((ways & (ways - 1)) != 0)
            panicf("QuadAgeLru requires power-of-two ways, got ", ways);
    }

    void
    reset() override
    {
        std::fill(bits_.begin(), bits_.end(), false);
    }

    void
    onFill(unsigned way) override
    {
        touch(way);
        if (rng_ != nullptr && rng_->chance(perturbProb)) {
            const auto node =
                static_cast<std::size_t>(rng_->below(bits_.size()));
            bits_[node] = !bits_[node];
        }
    }

    void onHit(unsigned way) override { touch(way); }

    unsigned
    victim(std::uint32_t eligibleMask) override
    {
        checkCandidates(eligibleMask);
        unsigned node = 0;
        while (node < bits_.size())
            node = 2 * node + 1 + (bits_[node] ? 1 : 0);
        const unsigned leaf = node - static_cast<unsigned>(bits_.size());
        if (hasWay(eligibleMask, leaf))
            return leaf;
        for (unsigned w = 0; w < ways_; ++w)
            if (hasWay(eligibleMask, w))
                return w;
        return 0; // unreachable; checkCandidates guarantees one
    }

    /** Fraction of fills whose tree update is perturbed (calibrated). */
    static constexpr double perturbProb = quadAgePerturbProb;

  private:
    void
    touch(unsigned way)
    {
        unsigned node = static_cast<unsigned>(bits_.size()) + way;
        while (node != 0) {
            const unsigned parent = (node - 1) / 2;
            bits_[parent] = (node == 2 * parent + 1);
            node = parent;
        }
    }

    std::vector<bool> bits_;
    Rng *rng_;
};

/** FIFO: victim is the oldest fill; hits do not refresh. */
class Fifo : public ReplacementPolicy
{
  public:
    explicit Fifo(unsigned ways)
        : ReplacementPolicy(ways), order_(ways, 0)
    {
    }

    void
    reset() override
    {
        std::fill(order_.begin(), order_.end(), 0);
        clock_ = 0;
    }

    void onFill(unsigned way) override { order_[way] = ++clock_; }
    void onHit(unsigned) override {}

    unsigned
    victim(std::uint32_t eligibleMask) override
    {
        checkCandidates(eligibleMask);
        unsigned best = 0;
        std::uint64_t bestOrder = ~std::uint64_t(0);
        for (unsigned w = 0; w < ways_; ++w) {
            if (hasWay(eligibleMask, w) && order_[w] < bestOrder) {
                bestOrder = order_[w];
                best = w;
            }
        }
        return best;
    }

  private:
    std::vector<std::uint64_t> order_;
    std::uint64_t clock_ = 0;
};

/** Uniform random victim, independent across misses (textbook model). */
class RandomIid : public ReplacementPolicy
{
  public:
    RandomIid(unsigned ways, Rng *rng) : ReplacementPolicy(ways), rng_(rng)
    {
        if (rng == nullptr)
            panic("RandomIid requires an Rng");
    }

    void reset() override {}
    void onFill(unsigned) override {}
    void onHit(unsigned) override {}

    unsigned
    victim(std::uint32_t eligibleMask) override
    {
        checkCandidates(eligibleMask);
        for (;;) {
            auto w = static_cast<unsigned>(rng_->below(ways_));
            if (hasWay(eligibleMask, w))
                return w;
        }
    }

  private:
    Rng *rng_;
};

/**
 * LFSR-based pseudo-random replacement as deployed on many ARM cores:
 * a 15-bit Fibonacci LFSR advances on every access to the set (hit or
 * fill), and the victim is the LFSR value modulo the associativity.
 * Because the LFSR is clocked by the access stream itself, victim
 * choices are correlated with the access pattern — the source of the
 * bias between the paper's measured Table V and the IID formula.
 */
class LfsrRandom : public ReplacementPolicy
{
  public:
    LfsrRandom(unsigned ways, Rng *rng)
        : ReplacementPolicy(ways),
          state_(rng ? static_cast<std::uint16_t>(rng->below(0x7fff) + 1)
                     : 0x2aau)
    {
    }

    void reset() override { state_ = 0x2aau; }
    void onFill(unsigned) override { step(); }
    void onHit(unsigned) override { step(); }

    unsigned
    victim(std::uint32_t eligibleMask) override
    {
        checkCandidates(eligibleMask);
        for (;;) {
            const auto w = static_cast<unsigned>(state_ % ways_);
            step();
            if (hasWay(eligibleMask, w))
                return w;
        }
    }

  private:
    void
    step()
    {
        state_ = static_cast<std::uint16_t>(lfsrStep(state_));
    }

    std::uint16_t state_;
};

} // namespace

std::string
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::TrueLru:
        return "TrueLRU";
      case PolicyKind::TreePlru:
        return "TreePLRU";
      case PolicyKind::BitPlru:
        return "BitPLRU";
      case PolicyKind::Nru:
        return "NRU";
      case PolicyKind::Srrip:
        return "SRRIP";
      case PolicyKind::QuadAgeLru:
        return "QuadAgeLRU(intel-like)";
      case PolicyKind::Fifo:
        return "FIFO";
      case PolicyKind::RandomIid:
        return "RandomIID";
      case PolicyKind::LfsrRandom:
        return "LFSR-PseudoRandom";
    }
    return "unknown";
}

std::unique_ptr<ReplacementPolicy>
makePolicy(PolicyKind kind, unsigned ways, Rng *rng)
{
    switch (kind) {
      case PolicyKind::TrueLru:
        return std::make_unique<TrueLru>(ways);
      case PolicyKind::TreePlru:
        return std::make_unique<TreePlru>(ways);
      case PolicyKind::BitPlru:
        return std::make_unique<BitPlru>(ways);
      case PolicyKind::Nru:
        return std::make_unique<Nru>(ways);
      case PolicyKind::Srrip:
        return std::make_unique<Srrip>(ways, 2, rng);
      case PolicyKind::QuadAgeLru:
        return std::make_unique<QuadAgeLru>(ways, rng);
      case PolicyKind::Fifo:
        return std::make_unique<Fifo>(ways);
      case PolicyKind::RandomIid:
        return std::make_unique<RandomIid>(ways, rng);
      case PolicyKind::LfsrRandom:
        return std::make_unique<LfsrRandom>(ways, rng);
    }
    panic("makePolicy: unknown kind");
}

const std::vector<PolicyKind> &
allPolicies()
{
    static const std::vector<PolicyKind> kinds = {
        PolicyKind::TrueLru,   PolicyKind::TreePlru,
        PolicyKind::BitPlru,   PolicyKind::Nru,
        PolicyKind::Srrip,     PolicyKind::QuadAgeLru,
        PolicyKind::Fifo,      PolicyKind::RandomIid,
        PolicyKind::LfsrRandom,
    };
    return kinds;
}

} // namespace wb::sim
