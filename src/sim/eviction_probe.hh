/**
 * @file
 * Replacement-policy eviction experiments (paper Secs. IV-A and VI-A).
 *
 * Table II: after random set history, write line 0 (making it dirty),
 * then access a replacement set of N fresh lines; record whether line 0
 * was evicted. Repeated trials give the probability that a replacement
 * set of size N flushes the victim line under each policy.
 *
 * Table V: place d dirty lines (accessed in a loop), then access a
 * replacement set of L fresh lines under a (pseudo-)random policy;
 * record whether at least one dirty line was evicted. The analytic IID
 * reference is p = 1 - ((W - d) / W)^L.
 */

#ifndef WB_SIM_EVICTION_PROBE_HH
#define WB_SIM_EVICTION_PROBE_HH

#include "common/rng.hh"
#include "sim/cache.hh"

namespace wb::sim
{

/** Configuration of one eviction experiment. */
struct EvictionProbeConfig
{
    PolicyKind policy = PolicyKind::TreePlru;
    unsigned ways = 8;            //!< set associativity W
    unsigned replacementSize = 8; //!< N (Table II) or L (Table V)
    unsigned dirtyLines = 1;      //!< d: dirty lines placed first
    unsigned dirtyLoops = 2;      //!< times the d dirty lines are swept
    unsigned warmupAccesses = 64; //!< random prior history length

    /**
     * Measurement interference (the "commercial processor" effect of
     * Table II row 3): extra touches of resident lines — TLB walks,
     * sibling-thread loads, the receiver's own bookkeeping — land in
     * the set while the replacement set is swept. At most
     * interferenceMax touches occur, each with probability
     * interferenceProb per sweep access.
     */
    double interferenceProb = 0.0;
    unsigned interferenceMax = 2;
};

/** Aggregated outcome over all trials. */
struct EvictionProbeResult
{
    double probTargetEvicted = 0.0; //!< P[line 0 evicted] (Table II)
    double probAnyDirtyEvicted = 0.0; //!< P[>=1 dirty evicted] (Table V)
    double probAllDirtyEvicted = 0.0; //!< P[all dirty evicted]
};

/**
 * Run the experiment for @p trials independent trials.
 * Trial structure: reset -> random warm-up -> write d dirty lines
 * (line 0 first) -> sweep replacement set -> inspect the set.
 */
EvictionProbeResult runEvictionProbe(const EvictionProbeConfig &cfg,
                                     unsigned trials, Rng &rng);

/** The paper's IID random-replacement formula p = 1-((W-d)/W)^L. */
double iidEvictionProbability(unsigned ways, unsigned dirtyLines,
                              unsigned replacementSize);

} // namespace wb::sim

#endif // WB_SIM_EVICTION_PROBE_HH
