#include "sim/smt_core.hh"

#include <cmath>

#include "common/log.hh"

namespace wb::sim
{

SmtCore::SmtCore(MemorySystem &mem, const NoiseModel &noise, Rng &rng,
                 ThreadId tidBase, ThreadId tidSpan)
    : mem_(&mem), fastHier_(dynamic_cast<Hierarchy *>(&mem)),
      noise_(noise), rng_(rng), tidBase_(tidBase), tidSpan_(tidSpan)
{
}

void
SmtCore::rebind(MemorySystem &mem)
{
    mem_ = &mem;
    fastHier_ = dynamic_cast<Hierarchy *>(&mem);
    for (auto &ctx : threads_)
        ctx.spinStackKnown = false;
}

void
SmtCore::descheduleShift(Cycles from, Cycles resume, Cycles grace)
{
    for (auto &ctx : threads_) {
        if (ctx.halted || ctx.time >= resume)
            continue;
        if (ctx.quiescent || ctx.time >= grace) {
            const Cycles offset = ctx.time > from ? ctx.time - from : 0;
            ctx.time = resume + offset;
        }
    }
}

ThreadId
SmtCore::addThread(Program *program, AddressSpace space, Cycles startTime)
{
    if (program == nullptr)
        panic("SmtCore::addThread: null program");
    if (tidSpan_ != 0 && threads_.size() >= tidSpan_) {
        fatalf("SmtCore::addThread: front-end at tid base ", tidBase_,
               " exceeds its ", tidSpan_,
               "-thread reservation (next front-end's counters would "
               "be silently shared)");
    }
    ThreadCtx ctx;
    ctx.program = program;
    ctx.space = space;
    ctx.time = startTime;
    threads_.push_back(ctx);
    return tidBase_ + static_cast<ThreadId>(threads_.size() - 1);
}

Cycles
SmtCore::quantize(Cycles t) const
{
    const Cycles g = noise_.tscGranularity ? noise_.tscGranularity : 1;
    return (t / g) * g;
}

Cycles
SmtCore::nextTime() const
{
    Cycles next = noPendingTime;
    for (const auto &ctx : threads_)
        if (!ctx.halted && ctx.time < next)
            next = ctx.time;
    return next;
}

Cycles
SmtCore::maxTime() const
{
    Cycles maxTime = 0;
    for (const auto &ctx : threads_)
        maxTime = std::max(maxTime, ctx.time);
    return maxTime;
}

bool
SmtCore::stepEarliest(Cycles horizon)
{
    // Pick the earliest non-halted thread (ties: lowest id).
    ThreadId pick = 0;
    bool found = false;
    for (ThreadId t = 0; t < threads_.size(); ++t) {
        if (threads_[t].halted)
            continue;
        if (!found || threads_[t].time < threads_[pick].time) {
            pick = t;
            found = true;
        }
    }
    if (!found || threads_[pick].time >= horizon)
        return false;
    step(threads_[pick], pick);
    return true;
}

Cycles
SmtCore::run(Cycles horizon)
{
    if (threads_.empty())
        return 0;
    while (stepEarliest(horizon)) {
    }
    return maxTime();
}

Cycles
runCores(const std::vector<SmtCore *> &cores, Cycles horizon)
{
    for (;;) {
        SmtCore *pick = nullptr;
        Cycles pickTime = SmtCore::noPendingTime;
        for (SmtCore *core : cores) {
            const Cycles t = core->nextTime();
            if (t < pickTime) {
                pickTime = t;
                pick = core;
            }
        }
        if (pick == nullptr || pickTime >= horizon ||
            !pick->stepEarliest(horizon)) {
            break;
        }
    }
    Cycles maxTime = 0;
    for (const SmtCore *core : cores)
        maxTime = std::max(maxTime, core->maxTime());
    return maxTime;
}

Cycles
SmtCore::threadTime(ThreadId tid) const
{
    return threads_.at(tid - tidBase_).time;
}

bool
SmtCore::halted(ThreadId tid) const
{
    return threads_.at(tid - tidBase_).halted;
}

Cycles
SmtCore::contentionDelay(const ThreadCtx &ctx, ThreadId idx)
{
    // SMT port contention: if a sibling issued a memory op within the
    // coincidence window, this op (or batch: the burst issues back to
    // back, so the window is evaluated once at issue) may stall.
    Cycles delay = 0;
    for (ThreadId o = 0; o < threads_.size(); ++o) {
        if (o == idx || !threads_[o].everIssuedMem)
            continue;
        const Cycles ot = threads_[o].lastMemOpAt;
        const Cycles d = ot > ctx.time ? ot - ctx.time : ctx.time - ot;
        if (d <= noise_.portContentionWindow &&
            rng_.chance(noise_.portContentionProb)) {
            delay += noise_.portContentionDelay;
        }
    }
    return delay;
}

void
SmtCore::step(ThreadCtx &ctx, ThreadId idx)
{
    const ThreadId tid = tidBase_ + idx; //!< system-wide hardware tid
    ProcView view(tid, ctx.time, rng_, noise_);
    auto maybeOp = ctx.program->next(view);
    if (!maybeOp || maybeOp->kind == MemOp::Kind::Halt) {
        ctx.halted = true;
        return;
    }
    const MemOp op = *maybeOp;
    OpResult res;

    switch (op.kind) {
      case MemOp::Kind::Load:
      case MemOp::Kind::Store: {
        const bool isWrite = op.kind == MemOp::Kind::Store;
        const Addr paddr = ctx.space.translate(op.vaddr);
        const AccessResult ar = memAccess(tid, paddr, isWrite);
        Cycles lat = ar.latency + noise_.opOverhead;
        if (op.pipelined && ar.l1Hit)
            lat = noise_.pipelinedHitCost;

        // Skipped entirely when contention is disabled (quiet noise
        // models) so the per-op sibling scan stays off the hot path.
        if (noise_.portContentionProb > 0.0)
            lat += contentionDelay(ctx, idx);
        if (noise_.preemptProbPerOp > 0.0 &&
            rng_.chance(noise_.preemptProbPerOp)) {
            lat += static_cast<Cycles>(rng_.exponential(noise_.preemptMean));
        }

        ctx.time += lat;
        ctx.lastMemOpAt = ctx.time;
        ctx.everIssuedMem = true;
        res.latency = lat;
        res.servedBy = ar.servedBy;
        res.l1Hit = ar.l1Hit;
        res.l1VictimDirty = ar.l1VictimDirty;
        break;
      }
      case MemOp::Kind::LoadBatch:
      case MemOp::Kind::StoreBatch: {
        // A whole sweep (prime loop, pointer chase, warm-up) executed
        // through the hierarchy's fused batch path in one core step.
        // The burst issues back to back, so the sibling coincidence
        // window is evaluated once at issue rather than per element;
        // per-op-sensitive loops (the hit-hit channel's contention
        // hammering) must keep issuing scalar ops.
        const bool isWrite = op.kind == MemOp::Kind::StoreBatch;
        const BatchAccessResult br =
            memAccessBatch(tid, ctx.space, op.addrs, op.count, isWrite);
        Cycles lat = br.totalLatency +
                     noise_.opOverhead * static_cast<Cycles>(op.count);
        if (noise_.portContentionProb > 0.0)
            lat += contentionDelay(ctx, idx);
        if (noise_.preemptProbPerOp > 0.0) {
            // Each element of the burst is individually preemptible,
            // as on the scalar path.
            for (std::size_t i = 0; i < op.count; ++i) {
                if (rng_.chance(noise_.preemptProbPerOp)) {
                    lat += static_cast<Cycles>(
                        rng_.exponential(noise_.preemptMean));
                }
            }
        }
        ctx.time += lat;
        ctx.lastMemOpAt = ctx.time;
        ctx.everIssuedMem = true;
        res.latency = lat;
        res.batch = br;
        break;
      }
      case MemOp::Kind::Flush: {
        const Addr paddr = ctx.space.translate(op.vaddr);
        const Cycles lat = memFlush(tid, paddr) + noise_.opOverhead;
        ctx.time += lat;
        res.latency = lat;
        break;
      }
      case MemOp::Kind::TscRead: {
        ctx.time += noise_.tscReadCost;
        res.latency = noise_.tscReadCost;
        break;
      }
      case MemOp::Kind::SpinUntil: {
        // The spin loop's bookkeeping touches the thread's stack line
        // once per wait. Normally an L1 hit, but a co-runner thrashing
        // the L1 turns these into real misses — which is how a benign
        // co-scheduled workload inflates a spinning process' L1 miss
        // rate (paper Table VII, "sender & g++"). The translation is
        // computed once per thread: the stack line never remaps, and
        // the shared-segment scan would otherwise run on every spin.
        if (!ctx.spinStackKnown) {
            const Addr stackVa =
                0xdead0000 + static_cast<Addr>(tid) * 4096;
            ctx.spinStackPaddr = ctx.space.translate(stackVa);
            ctx.spinStackKnown = true;
        }
        memAccess(tid, ctx.spinStackPaddr, false);

        Cycles release = std::max(ctx.time, op.until);
        double overshoot = 0.0;
        if (noise_.spinOvershootMean > 0.0)
            overshoot += rng_.exponential(noise_.spinOvershootMean);
        if (noise_.preemptProbPerSpin > 0.0 &&
            rng_.chance(noise_.preemptProbPerSpin)) {
            overshoot += rng_.exponential(noise_.preemptMean);
        }
        release += static_cast<Cycles>(std::llround(overshoot));
        res.latency = release - ctx.time;
        if (noise_.spinIterCycles > 0) {
            // Credit the busy-wait loop's bookkeeping loads (they all
            // hit L1; see NoiseModel).
            memCounters(tid).spinLoads +=
                (res.latency / noise_.spinIterCycles) *
                noise_.spinLoadsPerIter;
        }
        ctx.time = release;
        break;
      }
      case MemOp::Kind::Delay: {
        ctx.time += op.until;
        res.latency = op.until;
        break;
      }
      case MemOp::Kind::Halt:
        ctx.halted = true;
        return;
    }

    ctx.quiescent = op.kind == MemOp::Kind::SpinUntil ||
                    op.kind == MemOp::Kind::Delay;
    res.tsc = quantize(ctx.time);
    ProcView after(tid, ctx.time, rng_, noise_);
    ctx.program->onResult(op, res, after);
}

} // namespace wb::sim
