#include "sim/smt_core.hh"

#include <cmath>

#include "common/log.hh"

namespace wb::sim
{

SmtCore::SmtCore(MemorySystem &mem, const NoiseModel &noise, Rng &rng,
                 ThreadId tidBase, ThreadId tidSpan)
    : mem_(&mem), fastHier_(dynamic_cast<Hierarchy *>(&mem)),
      noise_(noise), rng_(rng), obsGranule_(noise.timerGranule()),
      tidBase_(tidBase), tidSpan_(tidSpan)
{
}

void
SmtCore::rebind(MemorySystem &mem)
{
    mem_ = &mem;
    fastHier_ = dynamic_cast<Hierarchy *>(&mem);
    for (auto &ctx : threads_)
        ctx.spinStackKnown = false;
}

void
SmtCore::descheduleShift(Cycles from, Cycles resume, Cycles grace)
{
    for (auto &ctx : threads_) {
        if (ctx.halted || ctx.time >= resume)
            continue;
        if (ctx.quiescent || ctx.time >= grace) {
            const Cycles offset = ctx.time > from ? ctx.time - from : 0;
            ctx.time = resume + offset;
        }
    }
}

ThreadId
SmtCore::addThread(Program *program, AddressSpace space, Cycles startTime)
{
    if (program == nullptr)
        panic("SmtCore::addThread: null program");
    if (tidSpan_ != 0 && threads_.size() >= tidSpan_) {
        fatalf("SmtCore::addThread: front-end at tid base ", tidBase_,
               " exceeds its ", tidSpan_,
               "-thread reservation (next front-end's counters would "
               "be silently shared)");
    }
    ThreadCtx ctx;
    ctx.program = program;
    ctx.space = space;
    ctx.time = startTime;
    threads_.push_back(ctx);
    return tidBase_ + static_cast<ThreadId>(threads_.size() - 1);
}

Cycles
SmtCore::quantize(Cycles t) const
{
    const Cycles g = obsGranule_;
    if (g <= 1)
        return t; // per-op hot path: skip the division entirely
    return (t / g) * g;
}

Cycles
SmtCore::nextTime() const
{
    Cycles next = noPendingTime;
    for (const auto &ctx : threads_)
        if (!ctx.halted && ctx.time < next)
            next = ctx.time;
    return next;
}

Cycles
SmtCore::maxTime() const
{
    Cycles maxTime = 0;
    for (const auto &ctx : threads_)
        maxTime = std::max(maxTime, ctx.time);
    return maxTime;
}

bool
SmtCore::stepEarliest(Cycles horizon)
{
    // Pick the earliest non-halted thread (ties: lowest id).
    ThreadId pick = 0;
    bool found = false;
    for (ThreadId t = 0; t < threads_.size(); ++t) {
        if (threads_[t].halted)
            continue;
        if (!found || threads_[t].time < threads_[pick].time) {
            pick = t;
            found = true;
        }
    }
    if (!found || threads_[pick].time >= horizon)
        return false;
    step(threads_[pick], pick, /*bound=*/0);
    return true;
}

void
SmtCore::runUntil(Cycles bound)
{
    const ThreadId n = static_cast<ThreadId>(threads_.size());
    if (n == 2 && !threads_[0].halted && !threads_[1].halted) {
        // The SMT pair: same pick/tie/bound rules as the generic loop
        // below, hand-specialized because this comparison runs once
        // per simulated op in every two-thread deployment.
        ThreadCtx &t0 = threads_[0];
        ThreadCtx &t1 = threads_[1];
        do {
            if (t0.time <= t1.time) {
                if (t0.time >= bound)
                    return;
                step(t0, 0, std::min(bound, t1.time + 1));
            } else {
                if (t1.time >= bound)
                    return;
                step(t1, 1, std::min(bound, t0.time));
            }
        } while (!t0.halted && !t1.halted);
        // A thread halted: the generic loop handles the remainder.
    }
    for (;;) {
        // Pick the earliest non-halted thread (ties: lowest id).
        ThreadId pick = 0;
        bool found = false;
        for (ThreadId t = 0; t < n; ++t) {
            if (threads_[t].halted)
                continue;
            if (!found || threads_[t].time < threads_[pick].time) {
                pick = t;
                found = true;
            }
        }
        if (!found || threads_[pick].time >= bound)
            return;

        // The picked thread keeps winning this pick while, for every
        // lower-indexed sibling j, time < t_j (a tie goes to j) and,
        // for every higher-indexed one, time <= t_j (the tie is ours).
        // Running it up to that limit in one go preserves the global
        // earliest-op-first order exactly while letting compiled
        // traces execute as whole slices.
        Cycles tb = bound;
        for (ThreadId t = 0; t < n; ++t) {
            if (t == pick || threads_[t].halted)
                continue;
            const Cycles lim =
                t < pick ? threads_[t].time : threads_[t].time + 1;
            tb = std::min(tb, lim);
        }
        step(threads_[pick], pick, tb);
    }
}

Cycles
SmtCore::run(Cycles horizon)
{
    if (threads_.empty())
        return 0;
    runUntil(horizon);
    return maxTime();
}

Cycles
runCores(const std::vector<SmtCore *> &cores, Cycles horizon)
{
    const std::size_t n = cores.size();
    for (;;) {
        SmtCore *pick = nullptr;
        std::size_t pickIdx = 0;
        Cycles pickTime = SmtCore::noPendingTime;
        for (std::size_t i = 0; i < n; ++i) {
            const Cycles t = cores[i]->nextTime();
            if (t < pickTime) {
                pickTime = t;
                pick = cores[i];
                pickIdx = i;
            }
        }
        if (pick == nullptr || pickTime >= horizon)
            break;
        // Same tie rule across cores as across threads: a lower-
        // indexed core wins a tie, so the picked core may run while
        // strictly earlier than those and not later than the rest.
        Cycles bound = horizon;
        for (std::size_t i = 0; i < n; ++i) {
            if (i == pickIdx)
                continue;
            const Cycles t = cores[i]->nextTime();
            if (t == SmtCore::noPendingTime)
                continue;
            bound = std::min(bound, i < pickIdx ? t : t + 1);
        }
        pick->runUntil(bound);
    }
    Cycles maxTime = 0;
    for (const SmtCore *core : cores)
        maxTime = std::max(maxTime, core->maxTime());
    return maxTime;
}

Cycles
SmtCore::threadTime(ThreadId tid) const
{
    return threads_.at(tid - tidBase_).time;
}

bool
SmtCore::halted(ThreadId tid) const
{
    return threads_.at(tid - tidBase_).halted;
}

Cycles
SmtCore::contentionDelay(const ThreadCtx &ctx, ThreadId idx)
{
    // SMT port contention: if a sibling issued a memory op within the
    // coincidence window, this op (or batch: the burst issues back to
    // back, so the window is evaluated once at issue) may stall.
    Cycles delay = 0;
    for (ThreadId o = 0; o < threads_.size(); ++o) {
        if (o == idx || !threads_[o].everIssuedMem)
            continue;
        const Cycles ot = threads_[o].lastMemOpAt;
        const Cycles d = ot > ctx.time ? ot - ctx.time : ctx.time - ot;
        if (d <= noise_.portContentionWindow &&
            rng_.chance(noise_.portContentionProb)) {
            delay += noise_.portContentionDelay;
        }
    }
    return delay;
}

std::uint64_t
SmtCore::drawPreemptGap()
{
    const double p = noise_.preemptProbPerOp;
    if (p >= 1.0)
        return 0;
    double u;
    do {
        u = rng_.uniform();
    } while (u <= 0.0);
    // Geometric(p): failures before the first success.
    return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

unsigned
SmtCore::preemptHits(std::size_t trials)
{
    if (!preemptGapValid_) {
        preemptCountdown_ = drawPreemptGap();
        preemptGapValid_ = true;
    }
    unsigned hits = 0;
    while (preemptCountdown_ < trials) {
        trials -= preemptCountdown_ + 1;
        ++hits;
        preemptCountdown_ = drawPreemptGap();
    }
    preemptCountdown_ -= trials;
    return hits;
}

bool
SmtCore::execOp(ThreadCtx &ctx, ThreadId tid, ThreadId idx,
                const MemOp &op, OpResult &res)
{
    switch (op.kind) {
      case MemOp::Kind::Load:
      case MemOp::Kind::Store: {
        const bool isWrite = op.kind == MemOp::Kind::Store;
        const Addr paddr = ctx.space.translate(op.vaddr);
        const AccessResult ar = memAccess(tid, paddr, isWrite);
        Cycles lat = ar.latency + noise_.opOverhead;
        if (op.pipelined && ar.l1Hit)
            lat = noise_.pipelinedHitCost;

        // Skipped entirely when contention is disabled (quiet noise
        // models) so the per-op sibling scan stays off the hot path.
        if (noise_.portContentionProb > 0.0)
            lat += contentionDelay(ctx, idx);
        if (noise_.preemptProbPerOp > 0.0 && preemptHits(1) != 0)
            lat += static_cast<Cycles>(rng_.exponential(noise_.preemptMean));

        ctx.time += lat;
        ctx.lastMemOpAt = ctx.time;
        ctx.everIssuedMem = true;
        res.latency = lat;
        res.servedBy = ar.servedBy;
        res.l1Hit = ar.l1Hit;
        res.l1VictimDirty = ar.l1VictimDirty;
        break;
      }
      case MemOp::Kind::LoadBatch:
      case MemOp::Kind::StoreBatch: {
        // A whole sweep (prime loop, pointer chase, warm-up) executed
        // through the hierarchy's fused batch path in one core step.
        // The burst issues back to back, so the sibling coincidence
        // window is evaluated once at issue rather than per element;
        // per-op-sensitive loops (the hit-hit channel's contention
        // hammering) must keep issuing scalar ops.
        const bool isWrite = op.kind == MemOp::Kind::StoreBatch;
        const BatchAccessResult br =
            memAccessBatch(tid, ctx.space, op.addrs, op.count, isWrite);
        Cycles lat = br.totalLatency +
                     noise_.opOverhead * static_cast<Cycles>(op.count);
        if (noise_.portContentionProb > 0.0)
            lat += contentionDelay(ctx, idx);
        if (noise_.preemptProbPerOp > 0.0) {
            // Each element of the burst is individually preemptible,
            // as on the scalar path; the geometric countdown consumes
            // all of the burst's trials in one call.
            const unsigned hits = preemptHits(op.count);
            for (unsigned i = 0; i < hits; ++i) {
                lat += static_cast<Cycles>(
                    rng_.exponential(noise_.preemptMean));
            }
        }
        ctx.time += lat;
        ctx.lastMemOpAt = ctx.time;
        ctx.everIssuedMem = true;
        res.latency = lat;
        res.batch = br;
        break;
      }
      case MemOp::Kind::Flush: {
        if (!noise_.observer.hasFlush) {
            // An eviction-only observer has no clflush. A program that
            // issues one anyway would be silently modelling a
            // capability the scenario denies — fail loudly instead
            // (the flush-family honesty bugfix; see sim/observer.hh).
            fatalf("SmtCore: Flush op under an observer with "
                   "hasFlush=false (", observerClassName(noise_.observer.cls),
                   ") — the program must fall back to eviction");
        }
        const Addr paddr = ctx.space.translate(op.vaddr);
        const Cycles lat = memFlush(tid, paddr) + noise_.opOverhead;
        ctx.time += lat;
        res.latency = lat;
        break;
      }
      case MemOp::Kind::TscRead: {
        ctx.time += noise_.tscReadCost;
        res.latency = noise_.tscReadCost;
        break;
      }
      case MemOp::Kind::SpinUntil: {
        // The spin loop's bookkeeping touches the thread's stack line
        // once per wait. Normally an L1 hit, but a co-runner thrashing
        // the L1 turns these into real misses — which is how a benign
        // co-scheduled workload inflates a spinning process' L1 miss
        // rate (paper Table VII, "sender & g++"). The translation is
        // computed once per thread: the stack line never remaps, and
        // the shared-segment scan would otherwise run on every spin.
        if (!ctx.spinStackKnown) {
            const Addr stackVa =
                0xdead0000 + static_cast<Addr>(tid) * 4096;
            ctx.spinStackPaddr = ctx.space.translate(stackVa);
            ctx.spinStackKnown = true;
        }
        memAccess(tid, ctx.spinStackPaddr, false);

        Cycles target = op.until;
        if (noise_.observer.timerGranularity > 1 && target > 0) {
            // A coarse-timer program spins on its floored TSC: the
            // comparison `TSC < target` only releases once the floored
            // reading reaches target, i.e. at the next granule
            // boundary at or above it. (Gated on the *observer*
            // granularity so legacy tscGranularity-only platforms keep
            // their pre-observer release semantics and RNG streams.)
            target = ((target + obsGranule_ - 1) / obsGranule_) *
                     obsGranule_;
        }
        Cycles release = std::max(ctx.time, target);
        double overshoot = 0.0;
        if (noise_.spinOvershootMean > 0.0)
            overshoot += rng_.exponential(noise_.spinOvershootMean);
        if (noise_.preemptProbPerSpin > 0.0 &&
            rng_.chance(noise_.preemptProbPerSpin)) {
            overshoot += rng_.exponential(noise_.preemptMean);
        }
        release += static_cast<Cycles>(std::llround(overshoot));
        res.latency = release - ctx.time;
        if (noise_.spinIterCycles > 0) {
            // Credit the busy-wait loop's bookkeeping loads (they all
            // hit L1; see NoiseModel).
            memCounters(tid).spinLoads +=
                (res.latency / noise_.spinIterCycles) *
                noise_.spinLoadsPerIter;
        }
        ctx.time = release;
        break;
      }
      case MemOp::Kind::Delay: {
        ctx.time += op.until;
        res.latency = op.until;
        break;
      }
      case MemOp::Kind::Halt:
        ctx.halted = true;
        return false;
    }

    ctx.quiescent = op.kind == MemOp::Kind::SpinUntil ||
                    op.kind == MemOp::Kind::Delay;
    if (noise_.observer.timerJitterSigma > 0.0 &&
        (op.kind == MemOp::Kind::TscRead ||
         op.kind == MemOp::Kind::SpinUntil)) {
        // Sandbox timer jitter perturbs the *reading*, not the clock:
        // the thread's real time is unaffected, only the value the
        // program sees through the coarse timer moves. Applied to the
        // two op kinds whose tsc a program actually consumes, and only
        // when configured, so the default observer draws nothing.
        const double raw =
            static_cast<double>(ctx.time) +
            rng_.gaussian(0.0, noise_.observer.timerJitterSigma);
        res.tsc = quantize(
            raw <= 0.0 ? 0 : static_cast<Cycles>(std::llround(raw)));
    } else {
        res.tsc = quantize(ctx.time);
    }
    return true;
}

void
SmtCore::step(ThreadCtx &ctx, ThreadId idx, Cycles bound)
{
    const ThreadId tid = tidBase_ + idx; //!< system-wide hardware tid

    if (ctx.trace == nullptr && noise_.traceExecution) {
        ProcView view(tid, ctx.time, rng_, noise_);
        if (const Trace *tr = ctx.program->nextTrace(view)) {
            ctx.trace = tr;
            ctx.tracePos = 0;
            ctx.traceNextResult = 0;
        }
    }

    if (ctx.trace == nullptr) {
        // Per-op reference path: one next()/onResult round trip.
        ProcView view(tid, ctx.time, rng_, noise_);
        auto maybeOp = ctx.program->next(view);
        if (!maybeOp || maybeOp->kind == MemOp::Kind::Halt) {
            ctx.halted = true;
            return;
        }
        const MemOp op = *maybeOp;
        OpResult res;
        if (!execOp(ctx, tid, idx, op, res))
            return;
        ProcView after(tid, ctx.time, rng_, noise_);
        ctx.program->onResult(op, res, after);
        return;
    }

    // Trace slice: run ops back to back, pausing (with resume state in
    // the ThreadCtx) when the bound is reached, so a sibling or the
    // scheduler gets control exactly where the per-op loop would have
    // handed it over.
    const Trace &tr = *ctx.trace;
    for (;;) {
        const MemOp &op = tr.ops[ctx.tracePos];
        OpResult res;
        if (!execOp(ctx, tid, idx, op, res)) {
            ctx.trace = nullptr;
            return;
        }
        const auto opIdx = static_cast<std::uint32_t>(ctx.tracePos++);
        if (ctx.traceNextResult < tr.resultCount &&
            tr.resultPoints[ctx.traceNextResult] == opIdx) {
            ++ctx.traceNextResult;
            ProcView after(tid, ctx.time, rng_, noise_);
            ctx.program->onTraceResult(opIdx, op, res, after);
        }
        if (ctx.tracePos >= tr.count) {
            ctx.trace = nullptr;
            return;
        }
        if (bound == 0 || ctx.time >= bound)
            return;
    }
}

} // namespace wb::sim
