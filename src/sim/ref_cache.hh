/**
 * @file
 * Reference cache model with the pre-refactor (seed) storage layout:
 * nested std::vector<std::vector<Line>> line storage, one heap-allocated
 * virtual ReplacementPolicy per set, and per-fill candidate scans.
 *
 * This is NOT a production path. It exists for two purposes only:
 *
 *  - tests/test_cache_equivalence.cc replays randomized operation
 *    streams through this model and the flat Cache and asserts
 *    bit-identical hit/miss/evict/dirty behavior;
 *  - bench_micro benchmarks it alongside the flat Cache so the
 *    refactor speedup is measured within one binary (BENCH_micro.json
 *    "*-reference" workloads).
 *
 * Semantics match Cache exactly, including the resident-line
 * PLcache-lock fix (see Cache::fill); only the storage layout and
 * dispatch differ.
 */

#ifndef WB_SIM_REF_CACHE_HH
#define WB_SIM_REF_CACHE_HH

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "sim/address.hh"
#include "sim/cache.hh"
#include "sim/replacement.hh"

namespace wb::sim
{

/** Seed-layout cache level; see file comment. */
class RefCache
{
  public:
    RefCache(const CacheParams &params, Rng *rng);

    void reset();
    const CacheParams &params() const { return params_; }
    const AddressLayout &layout() const { return layout_; }

    std::optional<unsigned> probe(Addr paddr, ThreadId tid) const;
    void onHit(Addr paddr, unsigned way, ThreadId tid, bool isWrite);
    FillOutcome fill(Addr paddr, ThreadId tid, bool asDirty);
    bool invalidate(Addr paddr, bool &wasDirty);
    bool lock(Addr paddr);
    bool unlock(Addr paddr);
    void unlockAll();
    bool contains(Addr paddr) const;
    bool isDirty(Addr paddr) const;
    unsigned dirtyCountInSet(unsigned set) const;
    unsigned validCountInSet(unsigned set) const;
    std::vector<Line> setContents(unsigned set) const;
    unsigned numSets() const { return layout_.numSets(); }

  private:
    /** Candidate mask for victim selection for @p tid in @p set. */
    std::vector<bool> fillCandidates(unsigned set, ThreadId tid) const;

    /** True when @p tid may fill @p way. */
    bool allowedWay(ThreadId tid, unsigned way) const;

    Line *find(Addr paddr);
    const Line *find(Addr paddr) const;

    CacheParams params_;
    AddressLayout layout_;
    std::vector<std::vector<Line>> sets_;
    std::vector<std::unique_ptr<ReplacementPolicy>> policies_;
};

} // namespace wb::sim

#endif // WB_SIM_REF_CACHE_HH
