/**
 * @file
 * Cache replacement policies.
 *
 * One policy instance manages one cache set (per-set state, as in real
 * L1 designs). The framework covers every policy the paper discusses:
 *
 *  - TrueLru      — exact LRU stack (Table II row 1)
 *  - TreePlru     — tree pseudo-LRU as modeled on gem5 (Table II row 2)
 *  - BitPlru      — MRU-bit pseudo-LRU variant
 *  - Nru          — not-recently-used (1-bit age)
 *  - Srrip        — 2-bit re-reference interval prediction
 *  - QuadAgeLru   — SRRIP-style stand-in for the undocumented Sandy
 *                   Bridge L1 policy (Table II row 3); see DESIGN.md
 *  - Fifo         — insertion order
 *  - RandomIid    — uniform independent victim (Sec. VI-A formula)
 *  - LfsrRandom   — LFSR clocked on every set access, as in commercial
 *                   "pseudo-random" ARM designs; victim choice is
 *                   correlated with access activity, which biases the
 *                   eviction probabilities (paper Table V)
 */

#ifndef WB_SIM_REPLACEMENT_HH
#define WB_SIM_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace wb::sim
{

/** Enumerates all implemented replacement policies. */
enum class PolicyKind
{
    TrueLru,
    TreePlru,
    BitPlru,
    Nru,
    Srrip,
    QuadAgeLru,
    Fifo,
    RandomIid,
    LfsrRandom,
};

/** Human-readable policy name ("TreePLRU", ...). */
std::string policyName(PolicyKind kind);

/**
 * Replacement state for one cache set.
 *
 * The owning cache calls onFill()/onHit() to keep the state current and
 * victim() to pick a way when the set is full. Ways holding locked lines
 * (PLcache) or outside the requesting thread's partition (NoMo/DAWG) are
 * excluded via the candidate mask.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Reset to the initial (power-on) state. */
    virtual void reset() = 0;

    /** Note that @p way was just filled with a new line. */
    virtual void onFill(unsigned way) = 0;

    /** Note a hit on @p way. */
    virtual void onHit(unsigned way) = 0;

    /**
     * Choose a victim among candidate ways.
     *
     * @param candidate per-way eligibility mask (true = may be evicted);
     *        at least one way must be eligible.
     * @return the victim way index
     */
    virtual unsigned victim(const std::vector<bool> &candidate) = 0;

    /** Associativity this instance manages. */
    unsigned ways() const { return ways_; }

  protected:
    explicit ReplacementPolicy(unsigned ways) : ways_(ways) {}

    /** Abort unless at least one way is eligible. */
    static void checkCandidates(const std::vector<bool> &candidate);

    unsigned ways_;
};

/**
 * Create a policy instance for one set.
 *
 * @param kind which policy
 * @param ways set associativity (power of two required for TreePlru)
 * @param rng randomness source; required by RandomIid, used for seeding
 *        LfsrRandom and tie-breaking in QuadAgeLru; may be nullptr for
 *        fully deterministic policies
 */
std::unique_ptr<ReplacementPolicy>
makePolicy(PolicyKind kind, unsigned ways, Rng *rng);

/** All policy kinds, for parameterized tests and benches. */
const std::vector<PolicyKind> &allPolicies();

} // namespace wb::sim

#endif // WB_SIM_REPLACEMENT_HH
