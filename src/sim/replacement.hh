/**
 * @file
 * Cache replacement policies.
 *
 * Two implementations of the same per-set replacement semantics live
 * here:
 *
 *  - PolicyTable — the production hot path. One flat, devirtualized
 *    table holds the replacement state of *all* sets of a cache level
 *    inline (no per-set heap objects, no virtual dispatch): one 64-bit
 *    word per set (tree-PLRU bits / MRU bits / NRU bits / LFSR state /
 *    stamp clock, interpreted per PolicyKind) plus, for stamp- and
 *    RRPV-based policies, one 64-bit word per line.
 *
 *  - ReplacementPolicy — the original virtual per-set interface, kept
 *    as a thin single-set adapter for unit tests and as an independent
 *    reference implementation for the cache equivalence suite. The two
 *    implementations are RNG-draw compatible: fed the same operation
 *    sequence and identically seeded Rngs they produce bit-identical
 *    victim sequences.
 *
 * Eligibility is communicated as a 32-bit way bitmask everywhere: bit w
 * set means way w may be evicted (not locked, inside the requesting
 * thread's partition). Associativity is limited to 32 ways.
 *
 * The framework covers every policy the paper discusses:
 *
 *  - TrueLru      — exact LRU stack (Table II row 1)
 *  - TreePlru     — tree pseudo-LRU as modeled on gem5 (Table II row 2)
 *  - BitPlru      — MRU-bit pseudo-LRU variant
 *  - Nru          — not-recently-used (1-bit age)
 *  - Srrip        — 2-bit re-reference interval prediction
 *  - QuadAgeLru   — SRRIP-style stand-in for the undocumented Sandy
 *                   Bridge L1 policy (Table II row 3); see DESIGN.md
 *  - Fifo         — insertion order
 *  - RandomIid    — uniform independent victim (Sec. VI-A formula)
 *  - LfsrRandom   — LFSR clocked on every set access, as in commercial
 *                   "pseudo-random" ARM designs; victim choice is
 *                   correlated with access activity, which biases the
 *                   eviction probabilities (paper Table V)
 */

#ifndef WB_SIM_REPLACEMENT_HH
#define WB_SIM_REPLACEMENT_HH

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace wb::sim
{

/** Enumerates all implemented replacement policies. */
enum class PolicyKind
{
    TrueLru,
    TreePlru,
    BitPlru,
    Nru,
    Srrip,
    QuadAgeLru,
    Fifo,
    RandomIid,
    LfsrRandom,
};

/** Human-readable policy name ("TreePLRU", ...). */
std::string policyName(PolicyKind kind);

/** Way mask with bits [0, ways) set. @pre ways <= 32. */
constexpr std::uint32_t
wayMaskAll(unsigned ways)
{
    return ways >= 32 ? ~std::uint32_t(0)
                      : ((std::uint32_t(1) << ways) - 1);
}

/** Way mask with bits [lo, hi) set. */
constexpr std::uint32_t
wayMaskRange(unsigned lo, unsigned hi)
{
    return wayMaskAll(hi) & ~wayMaskAll(lo);
}

/** Lowest set way of a non-zero way mask. */
inline unsigned
lowestWay(std::uint32_t mask)
{
    return static_cast<unsigned>(std::countr_zero(mask));
}

namespace detail
{

/** Initial LFSR state after reset (and when no Rng seeds it). */
constexpr std::uint64_t lfsrResetState = 0x2aau;

/** One step of the x^15 + x^14 + 1 maximal-length Fibonacci LFSR. */
inline std::uint64_t
lfsrStep(std::uint64_t s)
{
    const std::uint64_t bit = ((s >> 0) ^ (s >> 1)) & 1u;
    s = (s >> 1) | (bit << 14);
    return s == 0 ? lfsrResetState : s;
}

constexpr unsigned srripBits = 2;
constexpr std::uint64_t srripMax = (1u << srripBits) - 1;

/** Fraction of QuadAgeLru fills whose tree update is perturbed. */
constexpr double quadAgePerturbProb = 0.55;

} // namespace detail

/**
 * Flat replacement state for every set of one cache level.
 *
 * The owning cache calls onFill()/onHit() to keep the state current and
 * victim() to pick a way when the set is full. Ways holding locked
 * lines (PLcache) or outside the requesting thread's partition
 * (NoMo/DAWG) are excluded via the eligibility bitmask.
 */
class PolicyTable
{
  public:
    /**
     * @param kind which policy governs every set
     * @param sets number of sets
     * @param ways set associativity (power of two required by the tree
     *        policies; at most 32)
     * @param rng randomness source; required by RandomIid, used for
     *        seeding LfsrRandom and perturbing QuadAgeLru; may be
     *        nullptr for fully deterministic policies
     */
    PolicyTable(PolicyKind kind, unsigned sets, unsigned ways, Rng *rng);

    /** Reset every set to the initial (power-on) state. */
    void reset();

    /** Note that @p way of @p set was just filled with a new line. */
    void onFill(unsigned set, unsigned way);

    /** Note a hit on @p way of @p set. */
    void onHit(unsigned set, unsigned way);

    /**
     * Choose a victim among eligible ways of @p set.
     *
     * @param eligibleMask per-way eligibility (bit w set = way w may be
     *        evicted); must be non-zero.
     * @return the victim way index
     */
    unsigned victim(unsigned set, std::uint32_t eligibleMask);

    /** The policy governing every set. */
    PolicyKind kind() const { return kind_; }

    /** Associativity this table manages. */
    unsigned ways() const { return ways_; }

    /** Number of sets this table manages. */
    unsigned sets() const { return sets_; }

  private:
    /** Promote @p way to most-recently-used (tree/MRU-bit policies). */
    void touch(unsigned set, unsigned way);

    /** BitPlru: set @p way's MRU bit, restarting a saturated set. */
    void touchBitPlru(unsigned set, unsigned way);

    /** TreePlru fallback when the PLRU leaf is ineligible (cold). */
    unsigned bestAgreement(std::uint64_t bits,
                           std::uint32_t eligibleMask) const;

    /** Uncommon victim cases kept out of line (SRRIP aging, random). */
    unsigned victimSlow(unsigned set, std::uint32_t eligibleMask);

    PolicyKind kind_;
    unsigned sets_;
    unsigned ways_;
    unsigned nodes_; //!< tree node count for the PLRU policies
    Rng *rng_;

    /**
     * Tree-policy fast paths, precomputed at construction: promoting
     * way w flips a fixed set of tree bits to fixed values, so
     * touch() is one masked assign (touchMask_/touchVal_, indexed by
     * way); and for trees of at most 7 nodes (<= 8 ways) the
     * bits -> leaf walk is a 128-entry lookup (victimLut_).
     */
    std::vector<std::uint64_t> touchMask_;
    std::vector<std::uint64_t> touchVal_;
    std::vector<std::uint8_t> victimLut_;

    /**
     * One word per set: tree bits (TreePlru/QuadAgeLru), MRU bits
     * (BitPlru), reference bits (Nru), LFSR state (LfsrRandom), or the
     * recency/insertion clock (TrueLru/Fifo).
     */
    std::vector<std::uint64_t> setWord_;

    /**
     * One word per line (set * ways + way), allocated only when the
     * policy needs per-line state: recency stamps (TrueLru), insertion
     * stamps (Fifo), or RRPV counters (Srrip).
     */
    std::vector<std::uint64_t> lineWord_;
};

/**
 * Replacement state for one cache set behind a virtual interface.
 *
 * This is not on the simulator hot path (Cache uses PolicyTable); it
 * exists as a convenient handle for unit tests and as the independent
 * reference implementation the equivalence suite cross-checks the flat
 * table against.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Reset to the initial (power-on) state. */
    virtual void reset() = 0;

    /** Note that @p way was just filled with a new line. */
    virtual void onFill(unsigned way) = 0;

    /** Note a hit on @p way. */
    virtual void onHit(unsigned way) = 0;

    /**
     * Choose a victim among eligible ways.
     *
     * @param eligibleMask per-way eligibility (bit w set = way w may be
     *        evicted); must be non-zero.
     * @return the victim way index
     */
    virtual unsigned victim(std::uint32_t eligibleMask) = 0;

    /** Associativity this instance manages. */
    unsigned ways() const { return ways_; }

  protected:
    explicit ReplacementPolicy(unsigned ways) : ways_(ways) {}

    /** Abort unless at least one way is eligible. */
    static void checkCandidates(std::uint32_t eligibleMask);

    unsigned ways_;
};

/**
 * Create a policy instance for one set.
 *
 * @param kind which policy
 * @param ways set associativity (power of two required for TreePlru)
 * @param rng randomness source; required by RandomIid, used for seeding
 *        LfsrRandom and perturbing QuadAgeLru; may be nullptr for
 *        fully deterministic policies
 */
std::unique_ptr<ReplacementPolicy>
makePolicy(PolicyKind kind, unsigned ways, Rng *rng);

/** All policy kinds, for parameterized tests and benches. */
const std::vector<PolicyKind> &allPolicies();

// ------------------------------------------------------------------
// PolicyTable hot-path definitions. Kept in the header so the owning
// cache's per-access calls inline (the whole point of devirtualizing).

inline void
PolicyTable::touch(unsigned set, unsigned way)
{
    // Point every parent on way's root path at the sibling subtree:
    // fixed bits to fixed values, precomputed at construction.
    setWord_[set] =
        (setWord_[set] & ~touchMask_[way]) | touchVal_[way];
}

inline void
PolicyTable::touchBitPlru(unsigned set, unsigned way)
{
    std::uint64_t mru = setWord_[set] | (std::uint64_t(1) << way);
    if (mru == wayMaskAll(ways_))
        mru = std::uint64_t(1) << way;
    setWord_[set] = mru;
}

inline void
PolicyTable::onFill(unsigned set, unsigned way)
{
    switch (kind_) {
      case PolicyKind::TrueLru:
      case PolicyKind::Fifo:
        lineWord_[std::size_t(set) * ways_ + way] = ++setWord_[set];
        break;
      case PolicyKind::TreePlru:
        touch(set, way);
        break;
      case PolicyKind::BitPlru:
        touchBitPlru(set, way);
        break;
      case PolicyKind::Nru:
        setWord_[set] |= std::uint64_t(1) << way;
        break;
      case PolicyKind::Srrip:
        lineWord_[std::size_t(set) * ways_ + way] = detail::srripMax - 1;
        break;
      case PolicyKind::QuadAgeLru:
        touch(set, way);
        if (rng_ != nullptr && rng_->chance(detail::quadAgePerturbProb)) {
            const auto node = rng_->below(nodes_);
            setWord_[set] ^= std::uint64_t(1) << node;
        }
        break;
      case PolicyKind::RandomIid:
        break;
      case PolicyKind::LfsrRandom:
        setWord_[set] = detail::lfsrStep(setWord_[set]);
        break;
    }
}

inline void
PolicyTable::onHit(unsigned set, unsigned way)
{
    switch (kind_) {
      case PolicyKind::TrueLru:
        lineWord_[std::size_t(set) * ways_ + way] = ++setWord_[set];
        break;
      case PolicyKind::TreePlru:
      case PolicyKind::QuadAgeLru:
        touch(set, way);
        break;
      case PolicyKind::BitPlru:
        touchBitPlru(set, way);
        break;
      case PolicyKind::Nru:
        setWord_[set] |= std::uint64_t(1) << way;
        break;
      case PolicyKind::Srrip:
        lineWord_[std::size_t(set) * ways_ + way] = 0;
        break;
      case PolicyKind::Fifo:
      case PolicyKind::RandomIid:
        break;
      case PolicyKind::LfsrRandom:
        setWord_[set] = detail::lfsrStep(setWord_[set]);
        break;
    }
}

inline unsigned
PolicyTable::victim(unsigned set, std::uint32_t eligibleMask)
{
    eligibleMask &= wayMaskAll(ways_);
    switch (kind_) {
      case PolicyKind::TrueLru:
      case PolicyKind::Fifo: {
        if (eligibleMask == 0)
            break;
        const std::uint64_t *stamp =
            &lineWord_[std::size_t(set) * ways_];
        unsigned best = 0;
        std::uint64_t bestStamp = ~std::uint64_t(0);
        for (std::uint32_t m = eligibleMask; m != 0; m &= m - 1) {
            const unsigned w = lowestWay(m);
            if (stamp[w] < bestStamp) {
                bestStamp = stamp[w];
                best = w;
            }
        }
        return best;
      }
      case PolicyKind::TreePlru:
      case PolicyKind::QuadAgeLru: {
        if (eligibleMask == 0)
            break;
        const std::uint64_t bits = setWord_[set];
        unsigned leaf;
        if (!victimLut_.empty()) {
            leaf = victimLut_[bits & (victimLut_.size() - 1)];
        } else {
            unsigned node = 0;
            while (node < nodes_)
                node = 2 * node + 1 +
                       static_cast<unsigned>((bits >> node) & 1);
            leaf = node - nodes_;
        }
        if ((eligibleMask >> leaf) & 1)
            return leaf;
        break; // ineligible PLRU leaf: out-of-line fallback
      }
      case PolicyKind::BitPlru: {
        if (eligibleMask == 0)
            break;
        const auto mru = static_cast<std::uint32_t>(setWord_[set]);
        const std::uint32_t notMru = eligibleMask & ~mru;
        return lowestWay(notMru != 0 ? notMru : eligibleMask);
      }
      case PolicyKind::Nru: {
        if (eligibleMask == 0)
            break;
        const auto recent = static_cast<std::uint32_t>(setWord_[set]);
        const std::uint32_t old = eligibleMask & ~recent;
        if (old != 0)
            return lowestWay(old);
        // Aging pass: clear all reference bits; every way qualifies.
        setWord_[set] = 0;
        return lowestWay(eligibleMask);
      }
      default:
        break; // stateful-search and stochastic policies
    }
    return victimSlow(set, eligibleMask);
}

} // namespace wb::sim

#endif // WB_SIM_REPLACEMENT_HH
