/**
 * @file
 * Deterministic OS-noise scheduler (paper Sec. VIII / Table VII).
 *
 * The paper evaluates the WB channel under realistic interference:
 * co-running workloads sharing the sender's or receiver's core,
 * timer-tick preemption, and migration of a party to another core.
 * This layer reproduces those regimes on top of the simulator, fully
 * deterministically:
 *
 *  - **Co-runners.** A pool of workload-generator processes (idle
 *    spinner, streaming sweep, pointer chase, random store) placed
 *    round-robin over the machine's cores. Each owns an Rng derived
 *    from the run's master seed via coRunnerSeed(), so interference
 *    streams are bit-reproducible and re-derivable (reseed()).
 *  - **Timeslices.** When a core hosts more front-ends than it has
 *    hardware contexts for, they round-robin in fixed virtual-time
 *    slices. A descheduled process does not execute but wall time
 *    still passes for it (SmtCore::descheduleShift — a rigid,
 *    phase-preserving shift), so paced senders and receivers slip
 *    slots exactly as co-scheduled preempted processes do.
 *  - **Context-switch pollution.** Every slice boundary the "OS" (and
 *    the incoming process' warm-up misses) touches a burst of lines on
 *    that core — the cache-state cost of a switch, charged to a
 *    dedicated OS thread id so party counters stay clean.
 *  - **Migration.** Every migrationPeriod cycles, each migratable
 *    front-end is rebound to the next free core: its private caches go
 *    cold, its spin-stack translation is flushed, and — on an
 *    inclusive shared LLC — the dirty-state channel keeps working,
 *    which is exactly the contrast the Table-VII sweeps measure.
 *
 * With no co-runners and no migration the run loop degenerates to
 * sim::runCores() with zero extra RNG draws or accesses, so a
 * scheduler-wrapped run is bit-identical to the schedulerless path
 * (tests/test_scheduler.cc, CoRunnerIsolation).
 */

#ifndef WB_SIM_SCHEDULER_HH
#define WB_SIM_SCHEDULER_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "sim/smt_core.hh"

namespace wb::sim
{

class MultiCoreSystem;
class Scheduler;

/**
 * Counter-sampling hook: called by Scheduler::run() at every
 * samplePeriod boundary of virtual time, after every operation issued
 * before that boundary has executed and before any operation issued at
 * or after it. The hook may read state through the Scheduler (e.g.
 * tidCounters()) but must not mutate the simulation or draw from any
 * Rng — sampling must leave the run bit-identical to an unsampled one
 * (tests/test_detection.cc, SamplingHookIsInvisible).
 */
using SampleHook = std::function<void(Scheduler &, Cycles)>;

/** The co-runner workload archetypes of the Table-VII mixes. */
enum class CoRunnerKind
{
    Idle,         //!< pure spin-waits; touches only its spin stack
    Streaming,    //!< sequential batched loads over a large buffer
    PointerChase, //!< dependent loads in a reshuffled order
    RandomStore   //!< random stores — dirties lines (the WB killer)
};

/** Human-readable workload name ("idle", "streaming", ...). */
const char *coRunnerKindName(CoRunnerKind kind);

/**
 * Deterministic per-co-runner seed derivation from the run's master
 * seed (SplitMix64 finalizer over seed ^ f(index)): stream i is a
 * pure function of (masterSeed, i), which is what lets reseed()
 * re-derive every interference stream without re-wiring anything.
 */
std::uint64_t coRunnerSeed(std::uint64_t masterSeed, unsigned index);

/** OS-noise configuration (the Table-VII knobs). */
struct SchedulerConfig
{
    /** Co-runner processes, one entry each. */
    std::vector<CoRunnerKind> coRunners;

    /**
     * Timeslice length on shared cores, in cycles. 0 disables
     * timeslicing (front-ends interleave freely in virtual time).
     */
    Cycles timeslice = 50000;

    /** Lines the OS touches on a core per context switch. */
    unsigned pollutionLines = 8;

    /** Fraction of pollution touches that are stores (dirty lines). */
    double pollutionStoreFraction = 0.25;

    /**
     * Period of victim/receiver core migration, in cycles. 0 keeps
     * every party pinned. Only front-ends registered migratable move.
     */
    Cycles migrationPeriod = 0;

    /** Lines in each co-runner's working set. */
    unsigned coRunnerLines = 192;

    /** Idle cycles between a co-runner's bursts (its duty cycle). */
    Cycles coRunnerGap = 2500;

    /**
     * Virtual-time period of the counter-sampling hook, in cycles.
     * 0 disables sampling. With a hook set, every complete window up
     * to the run horizon fires exactly once, including trailing
     * windows in which no thread had work left.
     */
    Cycles samplePeriod = 0;

    /**
     * The observer called every samplePeriod cycles (the online
     * detector's window boundary). Read-only by contract: the
     * scheduler fires it between operations, so a hook that only
     * reads counters leaves the interleaving, the RNG streams and
     * every cache bit unchanged.
     */
    SampleHook sampleHook;

    /** True when the sampling hook is configured to fire. */
    bool
    sampling() const
    {
        return samplePeriod != 0 && static_cast<bool>(sampleHook);
    }

    /**
     * True when this config changes anything at all relative to the
     * schedulerless path; runners branch on it so the default config
     * costs nothing. A sampling hook needs the Scheduler run loop
     * (that is where windows are clocked) but does not perturb the
     * simulation itself.
     */
    bool
    active() const
    {
        return !coRunners.empty() || migrationPeriod != 0 || sampling();
    }

    /**
     * The canonical mix of n co-runners, cycling streaming ->
     * pointer-chase -> random-store -> idle (the composition the
     * noise_sweep tables use).
     */
    static std::vector<CoRunnerKind> mixOf(unsigned n);
};

/** What the scheduler did during a run. */
struct SchedulerStats
{
    std::uint64_t contextSwitches = 0;   //!< slice-boundary switches
    std::uint64_t migrations = 0;        //!< front-end rebinds
    std::uint64_t pollutionAccesses = 0; //!< OS lines touched
    std::uint64_t coRunnerAccesses = 0;  //!< co-runner demand accesses
};

/**
 * One co-runner process: a Program usable under any SmtCore, plus an
 * offline burst() entry for the (SMT-less) side-channel attack loop.
 * All its randomness comes from its own Rng, never the shared run
 * Rng — adding a co-runner must not perturb the party's draw order.
 */
class CoRunnerProgram final : public Program
{
  public:
    /**
     * @param kind workload archetype
     * @param lines working-set size in cache lines
     * @param gap idle cycles between bursts
     * @param seed this runner's stream seed (see coRunnerSeed)
     */
    CoRunnerProgram(CoRunnerKind kind, unsigned lines, Cycles gap,
                    std::uint64_t seed);

    std::optional<MemOp> next(ProcView &view) override;
    void onResult(const MemOp &op, const OpResult &res,
                  ProcView &view) override;
    const Trace *nextTrace(ProcView &view) override;

    /**
     * Restart the interference stream from @p seed exactly as a
     * freshly constructed program (burst phase, order, Rng state).
     */
    void reseed(std::uint64_t seed);

    /**
     * Issue one burst directly against @p mem (no SMT interleaving):
     * the attack loop's per-trial interference. @return accesses made.
     */
    std::uint64_t burst(MemorySystem &mem, ThreadId tid,
                        const AddressSpace &space);

    /** Demand accesses issued so far (both paths). */
    std::uint64_t accesses() const { return accesses_; }

    /** The workload archetype. */
    CoRunnerKind kind() const { return kind_; }

    /** Draw the next raw value of the stream (reseed verification). */
    std::uint64_t nextRaw() { return rng_.next(); }

  private:
    /** Build pass_ (this burst's address order) from the stream. */
    void prepareBurst();

    CoRunnerKind kind_;
    unsigned lines_;
    Cycles gap_;
    Rng rng_;
    std::vector<Addr> buffer_; //!< working-set virtual addresses
    std::vector<Addr> pass_;   //!< current burst order (subset)
    bool inGap_ = false;       //!< next op is the inter-burst delay
    std::uint64_t accesses_ = 0;
    std::array<MemOp, 2> traceOps_{}; //!< [burst, gap delay]
    Trace trace_;                     //!< compiled burst+gap pair
};

/**
 * One core's OS context-switch pollution stream: the lines the kernel
 * and the incoming process' warm-up misses drag through that core's
 * caches per switch. One definition shared by the Scheduler's
 * slice-boundary pollution and the offline attack loop's per-trial
 * re-expression, so the two experiments model the identical OS.
 */
class PollutionStream
{
  public:
    /** @param seed stream seed @param asid the OS address-space id */
    PollutionStream(std::uint64_t seed, AddressSpaceId asid)
        : rng_(seed), space_(asid)
    {
    }

    /**
     * Touch @p lines random lines of a 256 KiB OS working range on
     * @p mem (the page-linear translation spreads them uniformly over
     * every level's sets), dirtying each with @p storeFraction
     * probability. @return accesses issued.
     */
    std::uint64_t burst(MemorySystem &mem, unsigned lines,
                        double storeFraction);

    /** Restart the stream (Scheduler::reseed). */
    void
    reseed(std::uint64_t seed)
    {
        rng_.reseed(seed);
        rng_.discardCachedDeviates();
    }

  private:
    Rng rng_;
    AddressSpace space_;
};

/**
 * The OS-noise layer: owns the party front-ends (SmtCore instances
 * the channel/attack runners add their programs to) and the co-runner
 * pool, and runs everything in global earliest-op-first order with
 * timeslicing, context-switch pollution and migration applied.
 *
 * Backends: a MultiCoreSystem (co-runners spread over the cores,
 * migration moves front-ends between ports) or any single-core
 * MemorySystem — the paper's SMT deployment — where every front-end
 * time-shares core 0 and migration degenerates to a deschedule/
 * reschedule that flushes the spin-stack translation.
 */
class Scheduler
{
  public:
    /** Multi-core backend. @p masterSeed derives all noise streams. */
    Scheduler(MultiCoreSystem &sys, const NoiseModel &noise, Rng &rng,
              const SchedulerConfig &cfg, std::uint64_t masterSeed);

    /** Single-core backend (a Hierarchy, usually). */
    Scheduler(MemorySystem &mem, const NoiseModel &noise, Rng &rng,
              const SchedulerConfig &cfg, std::uint64_t masterSeed);

    /**
     * Create a party front-end pinned to @p core. Must be called
     * before the first run(); the runner adds its sender/receiver/
     * victim threads to the returned SmtCore exactly as it would to a
     * standalone one. @p migratable front-ends are the ones
     * migrationPeriod moves.
     */
    SmtCore &party(unsigned core, bool migratable = false);

    /**
     * Run every front-end to completion or @p horizon under the
     * configured noise regime. @return largest thread time reached.
     */
    Cycles run(Cycles horizon);

    /**
     * Worst-case slowdown of a party's wall-clock progress from
     * timeslice core sharing: the largest number of front-ends
     * sharing any party's core (1 when timeslicing is off). Runners
     * scale their simulation horizon by this, so a transmission whose
     * parties are descheduled two thirds of the time still completes.
     * Materializes the co-runner placement on first call.
     */
    unsigned horizonStretch();

    /**
     * Re-derive every noise stream (co-runner Rngs, per-core
     * pollution Rngs) from @p masterSeed and reset the slice/
     * migration bookkeeping and stats — the scheduler half of the
     * resetAll() reseed-reproducibility contract. Party thread state
     * is owned by the caller's programs and is not touched.
     */
    void reseed(std::uint64_t masterSeed);

    /** Core a front-end currently runs on (after migrations). */
    unsigned coreOf(const SmtCore &frontEnd) const;

    /**
     * Global per-thread counter view for the sampling hook: on the
     * multi-core backend the per-core counters of @p tid are summed
     * (a migrated thread's events stay attributed to it wherever it
     * ran), on a single-core backend this is the backend's own
     * per-tid view. Cheap enough to call per tid per window.
     */
    PerfCounters tidCounters(ThreadId tid);

    /** Number of cores of the backing machine. */
    unsigned coreCount() const { return coreCount_; }

    /** Run statistics (co-runner accesses summed at call time). */
    SchedulerStats stats() const;

    /** The co-runner programs, in configured order (introspection). */
    std::vector<const CoRunnerProgram *> coRunnerPrograms() const;

    /** Thread id pollution accesses are charged to. */
    static constexpr ThreadId osTid = 62;

  private:
    struct FrontEnd
    {
        std::unique_ptr<SmtCore> core;
        unsigned homeCore = 0;
        bool migratable = false;
        bool isParty = false;

        /**
         * In its core's slice rotation. Idle co-runners are not —
         * they model yielding processes a scheduler skips — so they
         * never deschedule anyone and are never descheduled.
         */
        bool inRotation = true;
        CoRunnerProgram *program = nullptr; //!< co-runners only
    };

    /** The memory port of @p core on the backing machine. */
    MemorySystem &portOf(unsigned core);

    /** Place and create the co-runner front-ends (first run()). */
    void materialize();

    /** Slice-boundary pollution on @p core. */
    void pollute(unsigned core);

    /** Move every migratable front-end to its next core. */
    void migrate();

    /**
     * Next system-wide thread-id base (parties 8 apart, runners 2).
     * Global, not per core: a migrated front-end must never collide
     * with another front-end's counters on the destination core.
     */
    ThreadId allocTidBase(bool isParty);

    MultiCoreSystem *multi_ = nullptr; //!< null for single-core
    MemorySystem *single_ = nullptr;   //!< null for multi-core
    NoiseModel noise_;
    Rng *rng_;
    SchedulerConfig cfg_;
    std::uint64_t masterSeed_;
    unsigned coreCount_ = 1;

    std::vector<std::unique_ptr<FrontEnd>> frontEnds_;
    std::vector<std::unique_ptr<CoRunnerProgram>> coRunners_;
    std::vector<AddressSpace> coRunnerSpaces_;

    /** Per core: front-ends sharing it, in slice rotation order. */
    std::vector<std::vector<FrontEnd *>> coreShare_;
    std::vector<std::uint64_t> lastSlice_; //!< per-core slice index
    ThreadId nextTid_ = 0;                 //!< system-wide tid allocator
    std::vector<PollutionStream> pollution_; //!< per-core OS streams

    Cycles nextMigrationAt_ = 0;
    Cycles nextSampleAt_ = 0; //!< next counter-sampling boundary
    bool materialized_ = false;
    SchedulerStats stats_;
};

} // namespace wb::sim

#endif // WB_SIM_SCHEDULER_HH
