/**
 * @file
 * Observer-capability model: what the attacker's measurement apparatus
 * can actually do.
 *
 * Every receiver in the repo historically assumed the strongest
 * possible observer — a cycle-accurate rdtscp plus clflush and
 * eviction primitives at will. Real deployments of the WB channel span
 * much weaker attackers:
 *
 *  - sandboxed JavaScript gets a deliberately coarsened, jittered
 *    timer (~µs resolution; "The Spy in the Sandbox" regime) and must
 *    amplify the 12-cycle dirty-eviction signal by repetition,
 *  - some observers read dirty state from CLFLUSH *latency* rather
 *    than load timing (the Flushgeist variant — flushing a line whose
 *    set has pending dirty write-backs stalls on the store buffer),
 *  - others have no flush instruction at all (CacheOut regime) and
 *    must evict through discovered congruent sets.
 *
 * ObserverModel captures that axis. It rides inside sim::NoiseModel so
 * the existing config plumbing (platform registry, defenses, scheduler,
 * sweeps) carries it everywhere a timestamp is produced, and the
 * degraded-decoder layer (chan/degraded) reads it to pick a receiver
 * variant and a repetition factor. The default-constructed model is the
 * legacy full-strength observer and is bit-identical to pre-observer
 * behaviour by construction: no RNG draws, no rounding, flush allowed.
 *
 * See docs/OBSERVERS.md for the three observer classes and the
 * repetition-amplification math.
 */

#ifndef WB_SIM_OBSERVER_HH
#define WB_SIM_OBSERVER_HH

#include <cmath>

#include "common/rng.hh"
#include "common/types.hh"

namespace wb::sim
{

/** The four observer capability classes of the extended taxonomy. */
enum class ObserverClass
{
    /** Legacy full-strength observer: rdtscp + clflush at will. */
    CycleAccurate,

    /**
     * Coarse/jittered timer (sandboxed-JS regime). Load-timing
     * receiver, but every observer-visible timestamp is floored to
     * timerGranularity and optionally jittered; decoders compensate
     * with repetition amplification.
     */
    CoarseTimer,

    /**
     * Reads dirty state from timed CLFLUSH instead of timed loads
     * (Flushgeist): the flush of a probe line pays a drain penalty
     * proportional to the pending dirty write-backs its set just
     * queued. Requires the flush primitive.
     */
    FlushLatency,

    /**
     * No flush instruction at all (CacheOut regime): the observer can
     * only evict through congruent sets it discovered by timing. The
     * WB load-timing receiver is naturally flushless, so this class
     * runs it over sets found by chan::EvictionSetFinder instead of
     * architecturally-known ones; every flush-family baseline is
     * denied.
     */
    EvictionOnly,
};

/** Stable lowercase name for tables and artifacts. */
inline const char *
observerClassName(ObserverClass cls)
{
    switch (cls) {
    case ObserverClass::CycleAccurate: return "cycle-accurate";
    case ObserverClass::CoarseTimer:   return "coarse-timer";
    case ObserverClass::FlushLatency:  return "flush-latency";
    case ObserverClass::EvictionOnly:  return "eviction-only";
    }
    return "?";
}

/**
 * A ~1 µs timer floor at the 2.2 GHz presets — the post-Spectre
 * sandboxed-JS resolution the Spy-in-the-Sandbox amplification has to
 * beat. The binary WB signal is d2 * 12 cycles (96 at d2 = 8), so one
 * sample carries ~1/23 of a granule of signal and the decoder needs
 * thousands of repetitions per symbol.
 */
inline constexpr Cycles kSandboxTimerGranule = 2200;

/** What the observer's measurement apparatus can do. */
struct ObserverModel
{
    ObserverClass cls = ObserverClass::CycleAccurate;

    /**
     * Timer resolution floor in cycles; observer-visible timestamps
     * are quantized to multiples of this. 1 (or 0) = cycle-accurate.
     * Combines with NoiseModel::tscGranularity (platform rdtscp
     * coarseness and the fuzzy-time defense) by max — both floors
     * apply to the same timestamp.
     */
    Cycles timerGranularity = 1;

    /**
     * Gaussian jitter (sigma, cycles) the sandbox adds to each raw
     * timestamp *before* quantization — so a duration (the difference
     * of two reads) carries sigma * sqrt(2) of jitter.
     */
    double timerJitterSigma = 0.0;

    /** Whether the clflush primitive is available to the observer. */
    bool hasFlush = true;

    /** Timer degraded enough that decoders must amplify? */
    bool
    coarseTimer() const
    {
        return timerGranularity > 1 || timerJitterSigma > 0.0;
    }

    /** Anything weaker than the legacy full-strength observer? */
    bool
    degraded() const
    {
        return cls != ObserverClass::CycleAccurate || coarseTimer() ||
               !hasFlush;
    }

    /** The sandboxed-JS observer: µs timer floor plus jitter. */
    static ObserverModel
    sandboxTimer(Cycles granule = kSandboxTimerGranule,
                 double jitterSigma = 0.0)
    {
        ObserverModel o;
        o.cls = ObserverClass::CoarseTimer;
        o.timerGranularity = granule;
        o.timerJitterSigma = jitterSigma;
        return o;
    }

    /** The Flushgeist observer: cycle-accurate timer, flush probing. */
    static ObserverModel
    flushLatency()
    {
        ObserverModel o;
        o.cls = ObserverClass::FlushLatency;
        return o;
    }

    /** The CacheOut observer: no flush instruction anywhere. */
    static ObserverModel
    evictionOnly()
    {
        ObserverModel o;
        o.cls = ObserverClass::EvictionOnly;
        o.hasFlush = false;
        return o;
    }
};

/**
 * The one observer-visible duration choke point (the quantization-
 * bypass audit fix): every offline measurement that previously
 * differenced raw virtual time routes through here so a configured
 * resolution floor cannot be sidestepped by calibration.
 *
 * Models the observer timing a duration with a floored counter whose
 * phase is unknown: with granule g, a true duration d starting at a
 * uniformly random counter phase reads floor((phase + d) / g) * g —
 * i.e. one of the two neighbouring multiples of g, with probabilities
 * that make the *expected* reading exactly d. That unbiasedness is
 * what repetition amplification integrates against; see
 * docs/OBSERVERS.md. Jitter (sigma per raw read, so sigma * sqrt(2)
 * per duration) is added before flooring, as the sandbox does.
 *
 * With granule <= 1 and no jitter this returns the input unchanged and
 * draws nothing from @p rng — the legacy cycle-accurate path stays
 * bit-identical.
 */
inline double
observeDuration(double duration, Cycles granule, double jitterSigma, Rng &rng)
{
    if (granule <= 1 && jitterSigma <= 0.0)
        return duration;
    double d = duration;
    if (jitterSigma > 0.0)
        d += rng.gaussian(0.0, jitterSigma * 1.4142135623730951);
    if (granule <= 1)
        return d;
    const double g = static_cast<double>(granule);
    const double phase = rng.uniform() * g;
    return std::floor((phase + d) / g) * g;
}

} // namespace wb::sim

#endif // WB_SIM_OBSERVER_HH
