#include "sim/platform.hh"

#include <memory>

#include "common/log.hh"

namespace wb::sim
{

HierarchyParams
xeonE5_2650Params()
{
    HierarchyParams p;
    p.l1.name = "L1D";
    p.l1.sizeBytes = 32 * 1024; // 64 sets x 8 ways x 64 B (Table III)
    p.l1.ways = 8;
    p.l1.policy = PolicyKind::TreePlru;

    p.l2.name = "L2";
    p.l2.sizeBytes = 256 * 1024;
    p.l2.ways = 8;
    p.l2.policy = PolicyKind::TreePlru;

    p.llc.name = "LLC";
    p.llc.sizeBytes = 4 * 1024 * 1024; // scaled-down 20 MiB shared LLC
    p.llc.ways = 16;
    p.llc.policy = PolicyKind::TreePlru;
    return p;
}

namespace
{

/**
 * Shared shape of every preset's OS-noise default: a timeslice short
 * enough that simulated transmissions (a few hundred thousand cycles)
 * see several switches — the compressed-timescale analogue of a
 * millisecond timer tick — with a modest per-switch pollution burst.
 */
SchedulerConfig
serverNoisePreset()
{
    SchedulerConfig s;
    s.timeslice = 50000;
    s.pollutionLines = 8;
    s.pollutionStoreFraction = 0.25;
    s.coRunnerLines = 192;
    s.coRunnerGap = 2500;
    return s;
}

Platform
xeonPlatform()
{
    Platform p;
    p.name = kDefaultPlatform;
    p.description = "Intel Xeon E5-2650, the paper's measured machine "
                    "(Table III geometry, Table IV latencies)";
    p.params = xeonE5_2650Params();
    p.noisePreset = serverNoisePreset();
    return p;
}

Platform
armWriteThroughPlatform()
{
    Platform p;
    p.name = "cortexA53-wt";
    p.description = "ARM-style in-order core with a write-through, "
                    "no-write-allocate L1 and LFSR pseudo-random "
                    "replacement (Table V policy discussion); dirty L1 "
                    "lines never exist, the paper's strongest defense";
    p.params.l1.name = "L1D";
    p.params.l1.sizeBytes = 32 * 1024;
    p.params.l1.ways = 4;
    p.params.l1.policy = PolicyKind::LfsrRandom;
    p.params.l1.writePolicy = WritePolicy::WriteThrough;
    p.params.l1.allocPolicy = AllocPolicy::NoWriteAllocate;

    p.params.l2.name = "L2";
    p.params.l2.sizeBytes = 512 * 1024;
    p.params.l2.ways = 16;
    p.params.l2.policy = PolicyKind::Nru;

    p.params.llc.name = "LLC";
    p.params.llc.sizeBytes = 1024 * 1024;
    p.params.llc.ways = 16;
    p.params.llc.policy = PolicyKind::Nru;

    p.params.lat.l1Hit = 3;
    p.params.lat.l2Hit = 15;
    p.params.lat.llcHit = 40;
    p.params.lat.mem = 160;
    p.params.lat.storeVisibleLatency = 2;
    p.params.lat.writeThroughStore = 8;

    // The generic timer is far coarser than rdtscp.
    p.noise.tscReadCost = 20;
    p.noise.tscGranularity = 32;

    // Mobile-class OS: shorter ticks, relatively heavier switch
    // pollution into the small 4-way L1, smaller co-runner sets.
    p.noisePreset = serverNoisePreset();
    p.noisePreset.timeslice = 32000;
    p.noisePreset.pollutionLines = 12;
    p.noisePreset.coRunnerLines = 128;
    p.noisePreset.coRunnerGap = 2000;
    return p;
}

Platform
desktopInclusivePlatform()
{
    Platform p;
    p.name = "desktop-inclusive";
    p.description = "Client-class desktop part with an inclusive LLC: "
                    "LLC evictions back-invalidate L1/L2 copies, adding "
                    "cross-core line kills the Xeon's non-inclusive "
                    "LLC does not exhibit";
    p.params = xeonE5_2650Params();
    p.params.l2.sizeBytes = 256 * 1024;
    p.params.l2.ways = 4;
    p.params.llc.sizeBytes = 8 * 1024 * 1024;
    p.params.llc.ways = 16;
    p.params.inclusiveLlc = true;
    p.params.lat.l2Hit = 12;
    p.params.lat.llcHit = 42;
    p.params.lat.mem = 210;

    // Desktop load: interactive processes switch more often and drag
    // larger working sets through the inclusive LLC.
    p.noisePreset = serverNoisePreset();
    p.noisePreset.timeslice = 40000;
    p.noisePreset.pollutionLines = 10;
    p.noisePreset.coRunnerLines = 256;
    return p;
}

Platform
dawgDefendedPlatform()
{
    Platform p;
    p.name = "xeonE5-2650-dawg";
    p.description = "The Xeon E5-2650 with DAWG-style way partitioning "
                    "on the L1D (Sec. VIII defense verdict: effective): "
                    "thread 0/1 each own half the ways, probes isolated";
    p.params = xeonE5_2650Params();
    p.noisePreset = serverNoisePreset();
    const unsigned ways = p.params.l1.ways;
    p.params.l1.fillMaskPerThread = {
        wayMaskRange(0, ways / 2),
        wayMaskRange(ways / 2, ways),
    };
    p.params.l1.probeIsolated = true;
    return p;
}

Platform
xeon2CorePlatform()
{
    Platform p = xeonPlatform();
    p.name = "xeonE5-2650-2core";
    p.description = "Two Xeon E5-2650 cores (private L1/L2) over the "
                    "shared non-inclusive LLC: cross-core dirty state "
                    "moves only via MESI snoop write-backs, so the "
                    "shared-LLC eviction channel stays closed";
    p.cores = 2;
    return p;
}

Platform
desktop4CorePlatform()
{
    Platform p = desktopInclusivePlatform();
    p.name = "desktop-inclusive-4core";
    p.description = "Four desktop cores over the shared inclusive LLC: "
                    "an LLC eviction back-invalidates every core's "
                    "privates, so a receiver on another core observes "
                    "the sender's dirty lines as write-back drains";
    p.cores = 4;
    return p;
}

/**
 * The many-tenant datacenter part: a desktop-style inclusive LLC
 * sharded into 8 slices by the Intel-style XOR-of-tag-bits hash, at
 * 16/32/64 cores. The slice hash is what makes these presets
 * *different in kind* from desktop-inclusive-4core: hand-built "same
 * LLC set" line pools scatter across slices, so a tenant must
 * discover eviction sets at runtime (chan::EvictionSetFinder), and
 * the per-slice sharer directories are what keep coherence traffic
 * ~O(sharers) at these core counts (docs/TENANTS.md).
 */
Platform
dcSlicedPlatform(unsigned cores, std::size_t llcBytes)
{
    Platform p = desktopInclusivePlatform();
    p.name = "dc-sliced-" + std::to_string(cores) + "core";
    p.description = "Datacenter-class socket: " + std::to_string(cores) +
                    " cores over an inclusive " +
                    std::to_string(llcBytes >> 20) +
                    " MiB LLC sharded into 8 slices by the "
                    "XOR-of-tag-bits hash; the many-tenant sweep target";
    p.cores = cores;
    p.params.llc.sizeBytes = llcBytes;
    p.params.llcSlices = 8;
    // A few interconnect hops further to the right slice than the
    // client part's ring position.
    p.params.lat.llcHit = 46;
    p.params.lat.mem = 220;

    // Datacenter hosts run fuller: shorter effective timeslices and
    // larger co-runner working sets than the desktop preset.
    p.noisePreset.timeslice = 45000;
    p.noisePreset.coRunnerLines = 384;
    return p;
}

/** Registry storage: stable allocations so lookups stay valid. */
std::vector<std::unique_ptr<Platform>> &
registry()
{
    static std::vector<std::unique_ptr<Platform>> platforms = [] {
        std::vector<std::unique_ptr<Platform>> v;
        v.push_back(std::make_unique<Platform>(xeonPlatform()));
        v.push_back(std::make_unique<Platform>(armWriteThroughPlatform()));
        v.push_back(
            std::make_unique<Platform>(desktopInclusivePlatform()));
        v.push_back(std::make_unique<Platform>(dawgDefendedPlatform()));
        v.push_back(std::make_unique<Platform>(xeon2CorePlatform()));
        v.push_back(std::make_unique<Platform>(desktop4CorePlatform()));
        v.push_back(std::make_unique<Platform>(
            dcSlicedPlatform(16, 16 * 1024 * 1024)));
        v.push_back(std::make_unique<Platform>(
            dcSlicedPlatform(32, 32 * 1024 * 1024)));
        v.push_back(std::make_unique<Platform>(
            dcSlicedPlatform(64, 32 * 1024 * 1024)));
        return v;
    }();
    return platforms;
}

} // namespace

const Platform *
findPlatform(const std::string &name)
{
    for (const auto &p : registry())
        if (p->name == name)
            return p.get();
    return nullptr;
}

const Platform &
platform(const std::string &name)
{
    if (const Platform *p = findPlatform(name))
        return *p;
    std::string known;
    for (const auto &p : registry()) {
        if (!known.empty())
            known += ", ";
        known += p->name;
    }
    fatalf("platform: unknown platform \"", name, "\" (known: ", known,
           ")");
}

std::vector<const Platform *>
allPlatforms()
{
    std::vector<const Platform *> out;
    out.reserve(registry().size());
    for (const auto &p : registry())
        out.push_back(p.get());
    return out;
}

std::vector<std::string>
platformNames()
{
    std::vector<std::string> names;
    names.reserve(registry().size());
    for (const auto &p : registry())
        names.push_back(p->name);
    return names;
}

void
registerPlatform(Platform p)
{
    if (p.name.empty())
        fatalf("registerPlatform: empty platform name");
    for (auto &existing : registry()) {
        if (existing->name == p.name) {
            *existing = std::move(p);
            return;
        }
    }
    registry().push_back(std::make_unique<Platform>(std::move(p)));
}

} // namespace wb::sim
