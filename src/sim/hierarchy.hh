/**
 * @file
 * Multi-level memory hierarchy with a cycle latency model calibrated to
 * the paper's Table IV measurements on the Intel Xeon E5-2650:
 *
 *   L1D hit                              4-5 cycles
 *   L2 hit + replacing a clean L1 line  10-12 cycles
 *   L2 hit + replacing a dirty L1 line  22-23 cycles
 *
 * The dirty-victim penalty charged on the L1 fill path is the hardware
 * vulnerability the WB channel exploits: before the fill can complete,
 * the victim must be written back to L2.
 */

#ifndef WB_SIM_HIERARCHY_HH
#define WB_SIM_HIERARCHY_HH

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "sim/cache.hh"

namespace wb::sim
{

/** Which level served an access. */
enum class Level
{
    L1,
    L2,
    LLC,
    Mem
};

/** Human-readable level name. */
std::string levelName(Level level);

/** Cycle costs of the hierarchy (see file comment for calibration). */
struct LatencyModel
{
    Cycles l1Hit = 4;        //!< L1 load-to-use
    Cycles l2Hit = 10;       //!< L1 miss served by L2, clean victim
    Cycles llcHit = 35;      //!< served by LLC
    Cycles mem = 200;        //!< served by DRAM

    /** Extra cycles when the L1 fill victim is dirty (the WB channel). */
    Cycles l1DirtyEvictPenalty = 12;

    /** Extra cycles when the L2 fill victim is dirty. */
    Cycles l2DirtyEvictPenalty = 16;

    /**
     * Extra cycles when an LLC eviction must drain dirty data to DRAM
     * — either the LLC victim itself is dirty or (inclusive LLC) a
     * back-invalidated private copy in some core was. Charged by the
     * multi-core system to the access that forced the eviction; this
     * is the cross-core observable the shared-LLC WB channel measures.
     */
    Cycles llcDirtyEvictPenalty = 24;

    /**
     * Extra cycles when a load is served by snooping a dirty copy out
     * of another core's private caches (MESI M->S downgrade with a
     * write-back into the shared LLC). Multi-core only.
     */
    Cycles crossCoreSnoopPenalty = 40;

    /** Store completion cost on top of the lookup (store buffer). */
    Cycles storeExtra = 0;

    /**
     * Visible latency of a store as seen by the issuing thread. Stores
     * retire into the store buffer and drain asynchronously, so the
     * thread does not wait for the miss handling — but the cache state
     * change (fill + dirty bit) is applied immediately. 0 makes stores
     * pay the full access latency (no store buffer).
     */
    Cycles storeVisibleLatency = 3;

    /** Extra store cost through a write-through L1. */
    Cycles writeThroughStore = 6;

    /** Base cost of clflush. */
    Cycles flushBase = 37;

    /** Additional clflush cost when the line was present... */
    Cycles flushPresentExtra = 4;

    /** ...and when it was dirty (needs a write-back). */
    Cycles flushDirtyExtra = 8;

    /**
     * Extra clflush cost per pending L1 dirty write-back queued since
     * the last flush (Flushgeist's observable: clflush serializes
     * against the write-back buffer, so flushing any line stalls until
     * the set's recently-evicted dirty victims drain). 0 — the default
     * on every preset — disables the tracking entirely and keeps
     * flush() bit-identical to the pre-observer model; the
     * flush-latency observer plan opts in (chan/degraded).
     */
    Cycles flushWbDrainExtra = 0;

    /**
     * Sigma of the zero-mean Gaussian measurement noise added per
     * access (bank conflicts, minor queuing). 0 disables noise.
     */
    double noiseSigma = 0.6;
};

/** Per-thread (and global) demand-access counters, perf-style. */
struct PerfCounters
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t llcAccesses = 0;
    std::uint64_t llcHits = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t l1DirtyWritebacks = 0;
    std::uint64_t flushes = 0;

    /**
     * LLC evictions (caused by this thread's accesses) that drained
     * dirty data to DRAM — the victim was dirty in the LLC or, under
     * an inclusive LLC, a back-invalidated private copy was. Only the
     * multi-core system charges these today.
     */
    std::uint64_t llcDirtyEvictions = 0;

    /** Loads served by downgrading a remote core's dirty copy. */
    std::uint64_t crossCoreSnoops = 0;

    /**
     * L1 loads retired by busy-wait loops (always hits; see
     * NoiseModel::spinIterCycles). Counted separately so miss rates
     * can be reported with spin traffic included, as `perf` would.
     */
    std::uint64_t spinLoads = 0;

    /** Demand L1 references. */
    std::uint64_t l1Accesses() const { return loads + stores; }

    /** All L1 loads including spin-loop loads (perf's view). */
    std::uint64_t l1LoadsWithSpin() const { return loads + spinLoads; }

    /** L1 miss ratio with spin-loop hits included in the denominator. */
    double
    l1MissRateWithSpin() const
    {
        const auto a = l1Accesses() + spinLoads;
        return a ? double(l1Misses) / double(a) : 0.0;
    }

    /** L1 miss ratio in [0,1]. */
    double
    l1MissRate() const
    {
        const auto a = l1Accesses();
        return a ? double(l1Misses) / double(a) : 0.0;
    }

    /** L2 miss ratio in [0,1]. */
    double
    l2MissRate() const
    {
        return l2Accesses ? double(l2Misses) / double(l2Accesses) : 0.0;
    }

    /** LLC miss ratio in [0,1]. */
    double
    llcMissRate() const
    {
        return llcAccesses ? double(llcMisses) / double(llcAccesses) : 0.0;
    }

    /** Accumulate another counter set into this one. */
    void merge(const PerfCounters &other);

    /**
     * Field-wise subtraction, for window deltas over a monotonically
     * growing snapshot (`now.subtract(prev)`). The caller guarantees
     * `other` is an earlier snapshot of the same counters; counters
     * never decrease, so each field stays non-negative.
     */
    void subtract(const PerfCounters &other);
};

/** Result of one demand access through the hierarchy. */
struct AccessResult
{
    Level servedBy = Level::L1;
    bool l1Hit = false;
    bool l1VictimDirty = false; //!< the access replaced a dirty L1 line
    Cycles latency = 0;
};

/** Aggregate result of Hierarchy::accessBatch(). */
struct BatchAccessResult
{
    std::uint64_t accesses = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l1DirtyEvictions = 0; //!< accesses with dirty L1 victim
    Cycles totalLatency = 0;            //!< sum of per-access latencies
};

/** Static configuration of the whole hierarchy. */
struct HierarchyParams
{
    CacheParams l1;
    CacheParams l2;
    CacheParams llc;
    LatencyModel lat;

    /**
     * Random-fill-cache defense (Liu & Lee): when > 0, demand L1 load
     * misses do not fill the requested line; instead a random line
     * within +/- window lines of the request is filled. 0 disables.
     */
    unsigned randomFillWindow = 0;

    /**
     * Prefetch-guard defense (Fang et al.): on each demand L1 miss,
     * with this probability a hardware prefetcher injects an extra
     * clean line into the same set (noise injection). The paper argues
     * clean noisy lines do not disturb the WB channel.
     */
    double prefetchGuardProb = 0.0;

    /**
     * Inclusive LLC (desktop-part behavior): evicting an LLC line
     * back-invalidates any copy in L1/L2. Dirty upper-level copies
     * drain straight to DRAM, which keeps no state, so the
     * back-invalidation is a pure drop here. Exclusive/non-inclusive
     * (false) matches the paper's Xeon E5-2650.
     */
    bool inclusiveLlc = false;

    /**
     * LLC slices (1, 2, 4 or 8). With > 1 the `llc` geometry describes
     * the *aggregate* LLC: MultiCoreSystem splits it into llcSlices
     * equal Cache shards and routes each line address through an
     * Intel-style XOR-of-tag-bits hash (sim/slice_hash.hh), so
     * addresses sharing a set index scatter across slices and
     * eviction sets must be discovered at runtime. 1 keeps the
     * monolithic LLC (bit-exact with the pre-slicing model). Only
     * MultiCoreSystem models slicing; the single-core Hierarchy is
     * fatal on llcSlices > 1.
     */
    unsigned llcSlices = 1;
};

/** The Xeon E5-2650 configuration of paper Table III. */
HierarchyParams xeonE5_2650Params();

/**
 * What a simulated process sees of the memory system: demand
 * accesses, flushes and perf counters. Implemented by Hierarchy (one
 * core, three levels) and by MultiCoreSystem's per-core ports
 * (private L1/L2 over a shared LLC), so SmtCore programs, victims and
 * offline measurement helpers run unchanged on either topology. The
 * hot paths keep static types (Hierarchy is final, so direct calls
 * devirtualize); only the SmtCore front-end dispatches through this
 * interface.
 */
class MemorySystem
{
  public:
    virtual ~MemorySystem() = default;

    /** One demand access (see Hierarchy::access). */
    virtual AccessResult access(ThreadId tid, Addr paddr,
                                bool isWrite) = 0;

    /** Batched demand accesses over physical addresses. */
    virtual BatchAccessResult accessBatch(ThreadId tid, const Addr *paddrs,
                                          std::size_t n, bool isWrite) = 0;

    /** Batched demand accesses over virtual addresses. */
    virtual BatchAccessResult accessBatch(ThreadId tid,
                                          const AddressSpace &space,
                                          const Addr *vaddrs, std::size_t n,
                                          bool isWrite) = 0;

    /** clflush (coherent across the whole system). */
    virtual Cycles flush(ThreadId tid, Addr paddr) = 0;

    /** Counters for one thread (auto-extends). */
    virtual PerfCounters &counters(ThreadId tid) = 0;

    /** Convenience overload over a vector of physical addresses. */
    BatchAccessResult
    accessBatch(ThreadId tid, const std::vector<Addr> &paddrs, bool isWrite)
    {
        return accessBatch(tid, paddrs.data(), paddrs.size(), isWrite);
    }

    /** Convenience overload over a vector of virtual addresses. */
    BatchAccessResult
    accessBatch(ThreadId tid, const AddressSpace &space,
                const std::vector<Addr> &vaddrs, bool isWrite)
    {
        return accessBatch(tid, space, vaddrs.data(), vaddrs.size(),
                           isWrite);
    }
};

/**
 * Three cache levels plus DRAM. All state mutation and latency
 * accounting for demand accesses, write-backs, flushes and injected
 * (prefetch) fills goes through this class.
 */
class Hierarchy final : public MemorySystem
{
  public:
    /**
     * @param params static configuration
     * @param rng randomness for noise and stochastic policies; may be
     *        nullptr for a fully deterministic hierarchy without noise
     */
    Hierarchy(const HierarchyParams &params, Rng *rng);

    /**
     * Invalidate all cached state in every level (lines, dirty/lock
     * bits, replacement state). Perf counters persist — use
     * resetCounters() or resetAll() when a call site wants them gone
     * too.
     */
    void reset();

    /** Zero all perf counters. */
    void resetCounters();

    /**
     * reset() + resetCounters(), plus dropping the Rng's cached
     * deviates (gaussianCached block, Marsaglia spare): a
     * factory-fresh hierarchy. Repeated sweeps that reseed the shared
     * Rng between repetitions are bit-reproducible only if leftover
     * deviates from the previous stream are discarded here.
     */
    void resetAll();

    /**
     * One demand access.
     *
     * @param tid issuing hardware thread
     * @param paddr physical byte address
     * @param isWrite store (true) or load (false)
     */
    AccessResult access(ThreadId tid, Addr paddr, bool isWrite) override;

    /**
     * Drive a whole address list through access() in one call — the
     * idiom of every offline eviction-set sweep (warm-ups, pointer
     * chases, prime loops). Aggregates instead of returning per-access
     * results.
     */
    BatchAccessResult accessBatch(ThreadId tid, const Addr *paddrs,
                                  std::size_t n, bool isWrite) override;

    /**
     * accessBatch() over virtual addresses: translates each one
     * through @p space on the fly (no scratch vector needed).
     */
    BatchAccessResult accessBatch(ThreadId tid, const AddressSpace &space,
                                  const Addr *vaddrs, std::size_t n,
                                  bool isWrite) override;

    /** The base class' vector conveniences stay visible. */
    using MemorySystem::accessBatch;

    /**
     * clflush: drop the line from every level, writing dirty data back
     * to memory. @return cycle cost (depends on presence/dirtiness).
     */
    Cycles flush(ThreadId tid, Addr paddr) override;

    /**
     * Install a clean line into L1 without touching demand counters or
     * charging latency — models a hardware prefetcher (Prefetch-guard
     * defense, noisy-line injection).
     */
    void injectCleanFill(Addr paddr, ThreadId tid = 0);

    /** L1 data cache (introspection for tests and experiments). */
    Cache &l1() { return l1_; }
    /** L2 cache. */
    Cache &l2() { return l2_; }
    /** Last-level cache. */
    Cache &llc() { return llc_; }

    /**
     * Counters for one thread (auto-extends). Inline: the scalar
     * access path looks the stripe up per access, and the out-of-line
     * call was visible in the smt-step profile.
     */
    PerfCounters &
    counters(ThreadId tid) override
    {
        if (tid >= counters_.size()) [[unlikely]]
            counters_.resize(tid + 1);
        return counters_[tid];
    }

    /** Counters summed over all threads. */
    PerfCounters totalCounters() const;

    /** The static configuration. */
    const HierarchyParams &params() const { return params_; }

    /**
     * L1 dirty write-backs queued since the last flush (capped at
     * kPendingWbCap). Always 0 unless lat.flushWbDrainExtra opted the
     * tracking in. Exposed for the observer tests.
     */
    std::uint64_t pendingDirtyWritebacks() const { return pendingDirtyWb_; }

    /**
     * Write-back buffer depth: pending dirty write-backs beyond this
     * have already drained by the time a flush can observe them, which
     * bounds the first-probe spike after a long untimed prime.
     */
    static constexpr std::uint64_t kPendingWbCap = 16;

  private:
    /**
     * Gaussian measurement noise (>= 0), 0 when rng or sigma absent.
     * Inline, drawing from the Rng's precomputed deviate block, so the
     * batched access loop never leaves straight-line code for noise.
     */
    Cycles
    noise()
    {
        if (rng_ == nullptr || params_.lat.noiseSigma <= 0.0)
            return 0;
        const double n = params_.lat.noiseSigma * rng_->gaussianCached();
        // max() instead of a sign test: the deviate's sign is a coin
        // flip, so a branch here mispredicts every other access.
        return static_cast<Cycles>(std::lround(std::max(n, 0.0)));
    }

    /**
     * One demand access: the inline L1-hit fast path shared verbatim
     * by access() and the accessBatch() loop (the batched-vs-scalar
     * equivalence suite relies on this being one code path). Resolves
     * L1 hits with no out-of-line calls; everything else escalates to
     * missPath() / writeThroughL1Hit().
     */
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((always_inline))
#endif
    inline AccessResult accessOne(ThreadId tid, Addr paddr, bool isWrite,
                                  PerfCounters &ctr);

    /**
     * The fused L1-miss → L2 → LLC → fill/write-back path. Flattened:
     * every cache-level probe/fill/policy call inlines into one
     * straight-line body, which is where the batched miss-heavy sweep
     * earns its throughput (see docs/PERF.md). The Plain
     * instantiation compiles out the defense hooks (random fill,
     * prefetch guard, write-through/no-allocate stores) for the
     * common undefended configuration; plainMissPath_ picks the
     * instantiation once per hierarchy, identically for access() and
     * accessBatch().
     */
    template <bool Plain>
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((flatten, always_inline)) inline
#endif
    AccessResult missPath(ThreadId tid, Addr paddr, bool isWrite,
                          PerfCounters &ctr);

    /** Store hit in a write-through L1: forward the store to L2. */
    AccessResult writeThroughL1Hit(ThreadId tid, Addr paddr, unsigned set,
                                   unsigned way, PerfCounters &ctr);

    /**
     * Shared aggregation loop behind both accessBatch() overloads;
     * @p addrAt maps an element index to its physical address.
     */
    template <typename AddrAt>
    BatchAccessResult accessBatchImpl(ThreadId tid, std::size_t n,
                                      bool isWrite, AddrAt addrAt);

    /** Write a dirty L1 victim back into L2 (allocating if needed). */
    void writebackToL2(Addr lineAddr, ThreadId tid);

    /**
     * Install a line into the LLC, applying inclusive back-
     * invalidation of the evicted victim when configured. A dirty LLC
     * victim drains to DRAM, which keeps no state.
     */
    void llcFill(Addr paddr, ThreadId tid, bool asDirty,
                 bool checkResident);

    HierarchyParams params_;
    Rng *rng_;
    Cache l1_;
    Cache l2_;
    Cache llc_;
    std::vector<PerfCounters> counters_;
    bool plainMissPath_; //!< no defense hooks: use missPath<true>

    /** Dirty write-backs queued since the last flush (Flushgeist). */
    std::uint64_t pendingDirtyWb_ = 0;
    bool trackPendingWb_; //!< lat.flushWbDrainExtra > 0
};

} // namespace wb::sim

#endif // WB_SIM_HIERARCHY_HH
