/**
 * @file
 * Intel-style LLC slice hash: each physical line address maps to one
 * of up to eight LLC slices through XOR-of-tag-bits parity functions.
 *
 * Commercial parts distribute LLC sets over per-core slices with an
 * undocumented hash of the physical address so that sequential
 * addresses spread evenly across the ring/mesh. The functions used
 * here are the reverse-engineered Intel parity masks of Maurice et
 * al. ("Reverse Engineering Intel Last-Level Cache Complex Addressing
 * Using Performance Counters", RAID 2015), re-based from physical
 * address bits onto the *tag* bits of this simulator's line-granular
 * addressing: the simulated hash consumes the bits above the
 * per-slice set index, which is what makes hand-built "same LLC set"
 * line pools scatter across slices and forces a tenant to *discover*
 * eviction sets at runtime (chan::EvictionSetFinder) exactly as the
 * Spy-in-the-Sandbox / Vila et al. attacks do on real hardware.
 *
 * The hash is pure and stateless: slice = parity bits of (folded tag
 * AND mask_b). sliceCount == 1 degenerates to the identity hash
 * (always slice 0), which is the monolithic pre-slicing LLC — the
 * SlicedLlcEquivalence suite pins that case bit-exact.
 */

#ifndef WB_SIM_SLICE_HASH_HH
#define WB_SIM_SLICE_HASH_HH

#include <bit>
#include <cstdint>

#include "common/types.hh"

namespace wb::sim
{

/** Line-address -> slice-id map for a sliced LLC (see file comment). */
class SliceHash
{
  public:
    /** Slice counts the three parity masks can address. */
    static constexpr unsigned kMaxSlices = 8;

    /**
     * @param slices number of slices (1, 2, 4 or 8; callers validate)
     * @param indexBits log2 of the per-slice set count — the hash
     *        consumes only the tag bits above the slice-set index
     */
    SliceHash(unsigned slices, unsigned indexBits)
        : slices_(slices), indexBits_(indexBits)
    {
    }

    SliceHash() = default;

    /** Number of slices this hash addresses. */
    unsigned slices() const { return slices_; }

    /** Slice holding line-granular address @p lineAddr. */
    unsigned
    sliceOf(Addr lineAddr) const
    {
        if (slices_ <= 1)
            return 0;
        const Addr tag = lineAddr >> indexBits_;
        // Fold the high half down so tags wider than 32 bits (distinct
        // address-space ids live in bits 44+) still influence every
        // mask; the masks themselves span the low 32 bits.
        const std::uint64_t t =
            static_cast<std::uint64_t>(tag) ^
            (static_cast<std::uint64_t>(tag) >> 32);
        unsigned s = parity(t & kMask0);
        if (slices_ > 2)
            s |= parity(t & kMask1) << 1;
        if (slices_ > 4)
            s |= parity(t & kMask2) << 2;
        return s;
    }

  private:
    /**
     * Maurice et al.'s Intel parity masks o0/o1/o2 (address bits
     * 6..34), shifted down by the 6 line-offset bits the simulator's
     * line-granular addresses already drop.
     */
    static constexpr std::uint64_t kMask0 = 0x0D7D5D51ull;
    static constexpr std::uint64_t kMask1 = 0x1AD7EAA2ull;
    static constexpr std::uint64_t kMask2 = 0x063324C4ull;

    static unsigned
    parity(std::uint64_t v)
    {
        return static_cast<unsigned>(std::popcount(v)) & 1u;
    }

    unsigned slices_ = 1;
    unsigned indexBits_ = 0;
};

} // namespace wb::sim

#endif // WB_SIM_SLICE_HASH_HH
