/**
 * @file
 * SharerMap — open-addressing hash map from line address to 64-bit
 * core presence mask, the storage behind MultiCoreSystem's per-slice
 * sharer directories.
 *
 * std::unordered_map is node-based: every insert mallocs and every
 * erase frees, and the directory inserts/erases on the miss path (a
 * line enters the directory when it fills the LLC and leaves when the
 * LLC evicts it). On miss-heavy sweeps that malloc/free churn cost
 * more than the O(cores) scans the directory replaced on small
 * topologies (the 2-core multicore-access benchmark regressed ~30%).
 * This table stores slots inline in one flat array — linear probing,
 * power-of-two capacity, Knuth's backward-shift deletion (Algorithm
 * R, TAOCP vol. 3, 6.4) instead of tombstones — so the steady state
 * allocates nothing and every operation touches one or two adjacent
 * cache lines.
 *
 * An occupied slot always has a non-zero mask: callers erase a key
 * when its last presence bit clears, so mask == 0 doubles as the
 * empty-slot marker and no separate occupancy metadata is needed.
 * The contract cuts both ways: storing zero through the pointer from
 * find() makes the slot read as free, which truncates every probe
 * chain passing through it — erase(key) included, so the entry can
 * never be removed properly again and keys displaced past the hole
 * silently vanish. A caller that may clear the last bit must compute
 * the new mask first and call erase() instead of writing zero.
 */

#ifndef WB_SIM_SHARER_MAP_HH
#define WB_SIM_SHARER_MAP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace wb::sim
{

/** Line address -> non-zero 64-bit presence mask (see file comment). */
class SharerMap
{
  public:
    SharerMap() { slots_.resize(kMinCapacity); }

    /** The mask stored for @p key, or nullptr when absent. */
    std::uint64_t *
    find(Addr key)
    {
        for (std::size_t i = home(key);; i = (i + 1) & mask_) {
            Slot &s = slots_[i];
            if (s.mask == 0)
                return nullptr;
            if (s.key == key)
                return &s.mask;
        }
    }

    /**
     * The mask slot for @p key, inserting an empty entry when absent.
     * The caller must set at least one bit before the next container
     * operation: a zero mask marks the slot free (see file comment).
     */
    std::uint64_t &
    upsert(Addr key)
    {
        if ((size_ + 1) * 4 > slots_.size() * 3)
            grow();
        for (std::size_t i = home(key);; i = (i + 1) & mask_) {
            Slot &s = slots_[i];
            if (s.mask == 0) {
                s.key = key;
                ++size_;
                return s.mask;
            }
            if (s.key == key)
                return s.mask;
        }
    }

    /** Remove @p key (no-op when absent). */
    void
    erase(Addr key)
    {
        std::size_t i = home(key);
        for (;; i = (i + 1) & mask_) {
            if (slots_[i].mask == 0)
                return;
            if (slots_[i].key == key)
                break;
        }
        --size_;
        // Backward-shift deletion: close the gap by sliding every
        // displaced follower of the probe chain into it, so lookups
        // never need tombstones.
        std::size_t j = i;
        while (true) {
            slots_[i].mask = 0;
            std::size_t k;
            do {
                j = (j + 1) & mask_;
                if (slots_[j].mask == 0)
                    return;
                k = home(slots_[j].key);
                // Slot j may move into the gap at i only when its home
                // does not lie cyclically within (i, j] — otherwise the
                // move would break j's own probe chain.
            } while (((j - k) & mask_) < ((j - i) & mask_));
            slots_[i] = slots_[j];
            i = j;
        }
    }

    /** Drop every entry (capacity is retained). */
    void
    clear()
    {
        for (Slot &s : slots_)
            s.mask = 0;
        size_ = 0;
    }

    /** Number of entries. */
    std::size_t size() const { return size_; }

  private:
    struct Slot
    {
        Addr key = 0;
        std::uint64_t mask = 0; //!< 0 == slot free
    };

    static constexpr std::size_t kMinCapacity = 64;

    std::size_t
    home(Addr key) const
    {
        // Fibonacci multiplicative hash; line addresses are dense in
        // the low bits, which the multiply spreads across the word.
        return std::size_t(
                   (key * std::uint64_t(0x9E3779B97F4A7C15)) >> 32) &
               mask_;
    }

    void
    grow()
    {
        std::vector<Slot> old;
        old.swap(slots_);
        slots_.resize(old.size() * 2);
        mask_ = slots_.size() - 1;
        size_ = 0;
        for (const Slot &s : old)
            if (s.mask != 0)
                upsert(s.key) = s.mask;
    }

    std::vector<Slot> slots_;
    std::size_t mask_ = kMinCapacity - 1;
    std::size_t size_ = 0;
};

} // namespace wb::sim

#endif // WB_SIM_SHARER_MAP_HH
