/**
 * @file
 * Multi-core shared-LLC topology: N cores with private L1/L2 pairs
 * over a slice-sharded shared last-level cache, with a MESI-lite
 * coherence layer built on the per-line dirty bits.
 *
 * This is the machine the cross-core variants of the WB channel need
 * (Sec. III generalized beyond the paper's SMT deployment, following
 * the shared-cache channels of Flushgeist and CacheOut):
 *
 *  - a store on core A invalidates the line in every other core's
 *    privates (the M-state upgrade message);
 *  - a load on core A that misses its privates while core B holds the
 *    line dirty snoops B's copy: B is downgraded to clean, the data is
 *    written back into the shared LLC, and A pays
 *    LatencyModel::crossCoreSnoopPenalty;
 *  - with HierarchyParams::inclusiveLlc, an LLC eviction
 *    back-invalidates the victim in every core's privates; if any
 *    dropped copy (or the LLC victim itself) was dirty, the data must
 *    drain to DRAM and the access that forced the eviction pays
 *    LatencyModel::llcDirtyEvictPenalty — the latency difference a
 *    cross-core receiver measures.
 *
 * The LLC is sharded into HierarchyParams::llcSlices slices selected
 * by an Intel-style XOR-of-tag-bits hash (sim/slice_hash.hh), and
 * each slice keeps a sharer directory (line -> 64-bit core presence
 * mask) so the coherence messages above visit only the cores that
 * actually hold the line instead of scanning all N cores per event —
 * the O(cores) -> O(sharers) change that makes 16/64-core presets and
 * thousand-pair tenant sweeps tractable (docs/TENANTS.md). The
 * pre-directory global-scan implementation is retained behind
 * setDirectoryCoherence(false): it is the bit-exactness reference for
 * the SlicedLlcEquivalence suite and the baseline the llc-slice-evict
 * benchmark measures the directory against.
 *
 * Scalar access() and the batched accessBatch() sweeps share one
 * per-access body, so batched and scalar execution are bit-identical
 * (tests/test_hierarchy_equivalence.cc, MultiCoreEquivalence).
 */

#ifndef WB_SIM_MULTICORE_HH
#define WB_SIM_MULTICORE_HH

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "sim/cache.hh"
#include "sim/hierarchy.hh"
#include "sim/sharer_map.hh"
#include "sim/slice_hash.hh"

namespace wb::sim
{

class MultiCoreSystem;

/**
 * Why MultiCoreSystem cannot stand up @p params, or nullptr when it
 * can. The string names the disqualifying parameter (write-through
 * L1s, hierarchy-level defenses, per-thread LLC partitioning, an
 * unsupported slice count) so sweep skips and constructor fatals can
 * say *which* knob ruled a preset out instead of failing opaquely.
 */
const char *multiCoreIncapableReason(const HierarchyParams &params);

/**
 * True when @p params describes a machine MultiCoreSystem can stand
 * up (multiCoreIncapableReason() == nullptr). Sweeps over the
 * platform registry use this to skip presets that only exist
 * single-core.
 */
bool multiCoreCapable(const HierarchyParams &params);

/**
 * Coherence-event traffic counters, kept separate from PerfCounters:
 * they count *interconnect work* (how many private cache pairs a
 * coherence event had to visit), not architectural events, and the
 * directory-vs-scan equivalence suite requires PerfCounters to be
 * identical across modes while these deliberately differ.
 */
struct CoherenceStats
{
    std::uint64_t invalidateEvents = 0;  //!< M-upgrade broadcasts
    std::uint64_t snoopEvents = 0;       //!< load-miss snoop queries
    std::uint64_t backInvalEvents = 0;   //!< inclusive LLC victim kills
    std::uint64_t flushEvents = 0;       //!< coherent clflushes

    /**
     * Private L1/L2 pairs visited by the events above — the hot-path
     * cost the sharer directory shrinks from (cores - 1) per event to
     * popcount(sharer mask). docs/PERF.md reports the measured ratio.
     */
    std::uint64_t privateProbes = 0;
};

/**
 * One core's view of a MultiCoreSystem: the MemorySystem interface
 * with the core id bound, so SmtCore front-ends, victims and offline
 * measurement helpers drive a core exactly as they drive a Hierarchy.
 */
class CorePort final : public MemorySystem
{
  public:
    AccessResult access(ThreadId tid, Addr paddr, bool isWrite) override;
    BatchAccessResult accessBatch(ThreadId tid, const Addr *paddrs,
                                  std::size_t n, bool isWrite) override;
    BatchAccessResult accessBatch(ThreadId tid, const AddressSpace &space,
                                  const Addr *vaddrs, std::size_t n,
                                  bool isWrite) override;
    using MemorySystem::accessBatch;
    Cycles flush(ThreadId tid, Addr paddr) override;
    PerfCounters &counters(ThreadId tid) override;

    /** The core this port is bound to. */
    unsigned coreId() const { return core_; }

  private:
    friend class MultiCoreSystem;
    MultiCoreSystem *sys_ = nullptr;
    unsigned core_ = 0;
};

/**
 * N per-core private L1/L2 pairs over a shared, slice-sharded LLC.
 * The latency model, write-back semantics and noise handling mirror
 * Hierarchy; the coherence layer (see file comment) is what a single
 * Hierarchy cannot express. Models write-back, write-allocate cores
 * without the hierarchy-level defenses (random fill / prefetch
 * guard) — the constructor is fatal on unsupported parameter
 * combinations and names the offending knob.
 */
class MultiCoreSystem
{
  public:
    /** Sharer masks are 64-bit, which bounds the topology. */
    static constexpr unsigned kMaxCores = 64;

    /**
     * Smallest topology where directory coherence is on by default.
     * Below this the global scan is cheaper: walking 2-4 cores per
     * coherence event costs less than maintaining the sharer map on
     * every miss-path fill and private eviction (the 2-core
     * multicore-access benchmark loses ~20% to the bookkeeping),
     * while at 16 cores the directory wins llc-slice-evict ~1.8x.
     * Both modes are bit-exact (SlicedLlcEquivalence), so the default
     * is purely a performance choice; setDirectoryCoherence overrides
     * it either way.
     */
    static constexpr unsigned kDirectoryMinCores = 8;

    /**
     * @param params per-core L1/L2 geometry, aggregate shared-LLC
     *        geometry (split over params.llcSlices slices), latency
     *        model and inclusiveLlc flag
     * @param cores number of cores (1 to kMaxCores)
     * @param rng randomness for noise and stochastic policies; may be
     *        nullptr for a fully deterministic system
     */
    MultiCoreSystem(const HierarchyParams &params, unsigned cores,
                    Rng *rng);

    /** Number of cores. */
    unsigned coreCount() const { return unsigned(cores_.size()); }

    /** The MemorySystem port of one core. */
    MemorySystem &port(unsigned core);

    /** One demand access issued by @p core. */
    AccessResult access(unsigned core, ThreadId tid, Addr paddr,
                        bool isWrite);

    /** Batched demand accesses over physical addresses. */
    BatchAccessResult accessBatch(unsigned core, ThreadId tid,
                                  const Addr *paddrs, std::size_t n,
                                  bool isWrite);

    /** Batched demand accesses over virtual addresses. */
    BatchAccessResult accessBatch(unsigned core, ThreadId tid,
                                  const AddressSpace &space,
                                  const Addr *vaddrs, std::size_t n,
                                  bool isWrite);

    /** Convenience overload over a vector of physical addresses. */
    BatchAccessResult
    accessBatch(unsigned core, ThreadId tid,
                const std::vector<Addr> &paddrs, bool isWrite)
    {
        return accessBatch(core, tid, paddrs.data(), paddrs.size(),
                           isWrite);
    }

    /** Convenience overload over a vector of virtual addresses. */
    BatchAccessResult
    accessBatch(unsigned core, ThreadId tid, const AddressSpace &space,
                const std::vector<Addr> &vaddrs, bool isWrite)
    {
        return accessBatch(core, tid, space, vaddrs.data(), vaddrs.size(),
                           isWrite);
    }

    /**
     * clflush issued by @p core: coherent — drops the line from every
     * core's privates and the LLC, writing dirty data back.
     */
    Cycles flush(unsigned core, ThreadId tid, Addr paddr);

    /** One core's private L1 (introspection for tests/experiments). */
    Cache &l1(unsigned core) { return coreRef(core).l1; }
    /** One core's private L2. */
    Cache &l2(unsigned core) { return coreRef(core).l2; }

    /**
     * The shared LLC of a single-slice system. Fatal when the LLC is
     * sharded (llcSliceCount() > 1): a monolithic view of a sliced
     * LLC does not exist — use llcSlice()/sliceOf().
     */
    Cache &llc();

    /** One LLC slice (bounds-checked). */
    Cache &llcSlice(unsigned slice);

    /** Number of LLC slices. */
    unsigned llcSliceCount() const { return unsigned(llcSlices_.size()); }

    /** The slice hash (ground truth for discovery verification). */
    const SliceHash &sliceHash() const { return sliceHash_; }

    /** Slice holding physical address @p paddr. */
    unsigned
    sliceOf(Addr paddr) const
    {
        return sliceHash_.sliceOf(AddressLayout::lineAddr(paddr));
    }

    /**
     * Select the coherence implementation. true: per-slice sharer
     * directory, coherence events visit only the cores in the line's
     * presence mask (~O(sharers)); enabling rebuilds the directory
     * from the current private-cache contents, so the mode can be
     * toggled mid-run. false: the pre-directory global scan — every
     * event walks all cores (the bit-exactness reference and
     * benchmark baseline; no directory maintenance runs at all). The
     * default is topology-dependent (see kDirectoryMinCores).
     */
    void setDirectoryCoherence(bool on);

    /** Current coherence implementation (see setDirectoryCoherence). */
    bool directoryCoherence() const { return directoryCoherence_; }

    /** Coherence interconnect traffic (see CoherenceStats). */
    const CoherenceStats &coherenceStats() const { return coherence_; }

    /** Counters for one hardware thread of one core (auto-extends). */
    PerfCounters &counters(unsigned core, ThreadId tid);

    /** Counters summed over every core and thread. */
    PerfCounters totalCounters() const;

    /** Invalidate all cached state in every core and the LLC. */
    void reset();

    /** Zero all perf counters on every core (and coherence stats). */
    void resetCounters();

    /**
     * reset() + resetCounters(), plus dropping the Rng's cached
     * deviates — the same reseed-reproducibility contract as
     * Hierarchy::resetAll().
     */
    void resetAll();

    /** The static configuration. */
    const HierarchyParams &params() const { return params_; }

  private:
    struct Core
    {
        Core(const CacheParams &l1p, const CacheParams &l2p, Rng *rng)
            : l1(l1p, rng), l2(l2p, rng), counters(2)
        {
        }

        Cache l1;
        Cache l2;
        std::vector<PerfCounters> counters;
        CorePort port;
    };

    /**
     * Per-slice sharer directory: line address -> core presence mask.
     * SharerMap (flat open addressing) rather than std::unordered_map
     * because the directory inserts and erases on the miss path, and
     * node-based maps pay a malloc/free per line churned through the
     * LLC — measurably slower than the scans the directory replaces
     * on 2-4 core presets (see sim/sharer_map.hh).
     */
    using SliceDirectory = SharerMap;

    /** Bounds-checked core lookup. */
    Core &coreRef(unsigned core);

    /** The LLC slice shard holding @p paddr. */
    Cache &
    llcFor(Addr paddr)
    {
        return llcSlices_[sliceHash_.sliceOf(
            AddressLayout::lineAddr(paddr))];
    }

    /** Gaussian measurement noise (same contract as Hierarchy). */
    Cycles
    noise()
    {
        if (rng_ == nullptr || params_.lat.noiseSigma <= 0.0)
            return 0;
        const double n = params_.lat.noiseSigma * rng_->gaussianCached();
        return n > 0.0 ? static_cast<Cycles>(std::lround(n)) : 0;
    }

    /**
     * One demand access: the single body shared by access() and the
     * accessBatch() loops (bit-exact batched-vs-scalar execution).
     */
    AccessResult accessOne(Core &c, unsigned core, ThreadId tid,
                           Addr paddr, bool isWrite, PerfCounters &ctr);

    /** The L1-miss path: L2 -> snoop -> LLC -> DRAM, fills, coherence. */
    AccessResult missPath(Core &c, unsigned core, ThreadId tid, Addr paddr,
                          bool isWrite, PerfCounters &ctr);

    /** Shared aggregation loop behind the accessBatch() overloads. */
    template <typename AddrAt>
    BatchAccessResult accessBatchImpl(unsigned core, ThreadId tid,
                                      std::size_t n, bool isWrite,
                                      AddrAt addrAt);

    /**
     * MESI upgrade: drop the line from every sharing core's privates
     * except @p core (a store is about to own it in M state).
     */
    void invalidateRemote(unsigned core, Addr paddr);

    /**
     * MESI snoop for a load miss: if any other core holds the line
     * dirty, downgrade it to clean and write the data back into the
     * shared LLC. @return true when a dirty remote copy was found.
     * @p drainExtra accumulates dirty-eviction penalties charged by
     * the LLC write-back this snoop may trigger.
     */
    bool snoopRemoteDirty(unsigned core, Addr paddr, PerfCounters &ctr,
                          Cycles &drainExtra);

    /**
     * Install a line into its shared-LLC slice. An eviction
     * back-invalidates the victim in the sharing cores' privates when
     * inclusiveLlc is set; if the LLC victim or any dropped private
     * copy was dirty, the drain penalty is added to @p drainExtra and
     * counted in @p ctr (the access that forced the eviction pays —
     * the cross-core signal).
     */
    void llcFillShared(Addr paddr, unsigned core, bool asDirty,
                       bool checkResident, PerfCounters &ctr,
                       Cycles &drainExtra);

    /**
     * Write a dirty L1 victim of @p core back into its private L2,
     * cascading a dirty L2 victim into the shared LLC.
     */
    void writebackToL2(Core &c, unsigned core, Addr lineAddr, ThreadId tid,
                       PerfCounters &ctr, Cycles &drainExtra);

    // --- sharer-directory maintenance (directory mode only) ---

    /** Core @p core now holds line @p la in its privates. */
    void
    noteSharer(unsigned core, Addr la)
    {
        sharers_[sliceHash_.sliceOf(la)].upsert(la) |=
            std::uint64_t(1) << core;
    }

    /**
     * Line @p la was evicted from one of @p core's private levels:
     * clear the core's presence bit unless @p survivor — the *other*
     * private level, the only place a copy can remain — still holds
     * it. Keeping the directory a *superset* of the true holders is
     * the correctness invariant (Cache::invalidate and
     * Cache::downgrade are no-ops on non-holders, so a stale bit
     * costs one wasted probe, while a missing bit would skip a
     * required invalidation); this trim just keeps masks tight so the
     * O(sharers) claim survives eviction churn.
     */
    void dropSharerIfAbsent(Cache &survivor, unsigned core, Addr la);

    /** Rebuild every slice directory from current cache contents. */
    void rebuildDirectory();

    HierarchyParams params_;
    Rng *rng_;
    SliceHash sliceHash_;
    std::vector<Cache> llcSlices_; //!< the sharded shared LLC
    std::vector<SliceDirectory> sharers_; //!< per-slice directories
    std::vector<std::unique_ptr<Core>> cores_; //!< stable port addresses
    CoherenceStats coherence_;
    bool directoryCoherence_ = true; //!< ctor picks per kDirectoryMinCores
};

} // namespace wb::sim

#endif // WB_SIM_MULTICORE_HH
