/**
 * @file
 * Multi-core shared-LLC topology: N cores with private L1/L2 pairs
 * over one shared last-level cache, with a MESI-lite coherence layer
 * built on the per-line dirty bits.
 *
 * This is the machine the cross-core variants of the WB channel need
 * (Sec. III generalized beyond the paper's SMT deployment, following
 * the shared-cache channels of Flushgeist and CacheOut):
 *
 *  - a store on core A invalidates the line in every other core's
 *    privates (the M-state upgrade message);
 *  - a load on core A that misses its privates while core B holds the
 *    line dirty snoops B's copy: B is downgraded to clean, the data is
 *    written back into the shared LLC, and A pays
 *    LatencyModel::crossCoreSnoopPenalty;
 *  - with HierarchyParams::inclusiveLlc, an LLC eviction
 *    back-invalidates the victim in every core's privates; if any
 *    dropped copy (or the LLC victim itself) was dirty, the data must
 *    drain to DRAM and the access that forced the eviction pays
 *    LatencyModel::llcDirtyEvictPenalty — the latency difference a
 *    cross-core receiver measures.
 *
 * Scalar access() and the batched accessBatch() sweeps share one
 * per-access body, so batched and scalar execution are bit-identical
 * (tests/test_hierarchy_equivalence.cc, MultiCoreEquivalence).
 */

#ifndef WB_SIM_MULTICORE_HH
#define WB_SIM_MULTICORE_HH

#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "sim/cache.hh"
#include "sim/hierarchy.hh"

namespace wb::sim
{

class MultiCoreSystem;

/**
 * True when @p params describes a machine MultiCoreSystem can stand
 * up: write-back write-allocate L1s, no hierarchy-level defenses, no
 * per-thread LLC partitioning (the MultiCoreSystem constructor is
 * fatal on each of these). Sweeps over the platform registry use this
 * to skip presets that only exist single-core.
 */
bool multiCoreCapable(const HierarchyParams &params);

/**
 * One core's view of a MultiCoreSystem: the MemorySystem interface
 * with the core id bound, so SmtCore front-ends, victims and offline
 * measurement helpers drive a core exactly as they drive a Hierarchy.
 */
class CorePort final : public MemorySystem
{
  public:
    AccessResult access(ThreadId tid, Addr paddr, bool isWrite) override;
    BatchAccessResult accessBatch(ThreadId tid, const Addr *paddrs,
                                  std::size_t n, bool isWrite) override;
    BatchAccessResult accessBatch(ThreadId tid, const AddressSpace &space,
                                  const Addr *vaddrs, std::size_t n,
                                  bool isWrite) override;
    using MemorySystem::accessBatch;
    Cycles flush(ThreadId tid, Addr paddr) override;
    PerfCounters &counters(ThreadId tid) override;

    /** The core this port is bound to. */
    unsigned coreId() const { return core_; }

  private:
    friend class MultiCoreSystem;
    MultiCoreSystem *sys_ = nullptr;
    unsigned core_ = 0;
};

/**
 * N per-core private L1/L2 pairs over one shared LLC. The latency
 * model, write-back semantics and noise handling mirror Hierarchy;
 * the coherence layer (see file comment) is what a single Hierarchy
 * cannot express. Models write-back, write-allocate cores without the
 * hierarchy-level defenses (random fill / prefetch guard) — the
 * constructor is fatal on unsupported parameter combinations.
 */
class MultiCoreSystem
{
  public:
    /**
     * @param params per-core L1/L2 geometry, shared-LLC geometry,
     *        latency model and inclusiveLlc flag
     * @param cores number of cores (>= 1)
     * @param rng randomness for noise and stochastic policies; may be
     *        nullptr for a fully deterministic system
     */
    MultiCoreSystem(const HierarchyParams &params, unsigned cores,
                    Rng *rng);

    /** Number of cores. */
    unsigned coreCount() const { return unsigned(cores_.size()); }

    /** The MemorySystem port of one core. */
    MemorySystem &port(unsigned core);

    /** One demand access issued by @p core. */
    AccessResult access(unsigned core, ThreadId tid, Addr paddr,
                        bool isWrite);

    /** Batched demand accesses over physical addresses. */
    BatchAccessResult accessBatch(unsigned core, ThreadId tid,
                                  const Addr *paddrs, std::size_t n,
                                  bool isWrite);

    /** Batched demand accesses over virtual addresses. */
    BatchAccessResult accessBatch(unsigned core, ThreadId tid,
                                  const AddressSpace &space,
                                  const Addr *vaddrs, std::size_t n,
                                  bool isWrite);

    /** Convenience overload over a vector of physical addresses. */
    BatchAccessResult
    accessBatch(unsigned core, ThreadId tid,
                const std::vector<Addr> &paddrs, bool isWrite)
    {
        return accessBatch(core, tid, paddrs.data(), paddrs.size(),
                           isWrite);
    }

    /** Convenience overload over a vector of virtual addresses. */
    BatchAccessResult
    accessBatch(unsigned core, ThreadId tid, const AddressSpace &space,
                const std::vector<Addr> &vaddrs, bool isWrite)
    {
        return accessBatch(core, tid, space, vaddrs.data(), vaddrs.size(),
                           isWrite);
    }

    /**
     * clflush issued by @p core: coherent — drops the line from every
     * core's privates and the LLC, writing dirty data back.
     */
    Cycles flush(unsigned core, ThreadId tid, Addr paddr);

    /** One core's private L1 (introspection for tests/experiments). */
    Cache &l1(unsigned core) { return coreRef(core).l1; }
    /** One core's private L2. */
    Cache &l2(unsigned core) { return coreRef(core).l2; }
    /** The shared LLC. */
    Cache &llc() { return llc_; }

    /** Counters for one hardware thread of one core (auto-extends). */
    PerfCounters &counters(unsigned core, ThreadId tid);

    /** Counters summed over every core and thread. */
    PerfCounters totalCounters() const;

    /** Invalidate all cached state in every core and the LLC. */
    void reset();

    /** Zero all perf counters on every core. */
    void resetCounters();

    /**
     * reset() + resetCounters(), plus dropping the Rng's cached
     * deviates — the same reseed-reproducibility contract as
     * Hierarchy::resetAll().
     */
    void resetAll();

    /** The static configuration. */
    const HierarchyParams &params() const { return params_; }

  private:
    struct Core
    {
        Core(const CacheParams &l1p, const CacheParams &l2p, Rng *rng)
            : l1(l1p, rng), l2(l2p, rng), counters(2)
        {
        }

        Cache l1;
        Cache l2;
        std::vector<PerfCounters> counters;
        CorePort port;
    };

    /** Bounds-checked core lookup. */
    Core &coreRef(unsigned core);

    /** Gaussian measurement noise (same contract as Hierarchy). */
    Cycles
    noise()
    {
        if (rng_ == nullptr || params_.lat.noiseSigma <= 0.0)
            return 0;
        const double n = params_.lat.noiseSigma * rng_->gaussianCached();
        return n > 0.0 ? static_cast<Cycles>(std::lround(n)) : 0;
    }

    /**
     * One demand access: the single body shared by access() and the
     * accessBatch() loops (bit-exact batched-vs-scalar execution).
     */
    AccessResult accessOne(Core &c, unsigned core, ThreadId tid,
                           Addr paddr, bool isWrite, PerfCounters &ctr);

    /** The L1-miss path: L2 -> snoop -> LLC -> DRAM, fills, coherence. */
    AccessResult missPath(Core &c, unsigned core, ThreadId tid, Addr paddr,
                          bool isWrite, PerfCounters &ctr);

    /** Shared aggregation loop behind the accessBatch() overloads. */
    template <typename AddrAt>
    BatchAccessResult accessBatchImpl(unsigned core, ThreadId tid,
                                      std::size_t n, bool isWrite,
                                      AddrAt addrAt);

    /**
     * MESI upgrade: drop the line from every core's privates except
     * @p core (a store is about to own it in M state).
     */
    void invalidateRemote(unsigned core, Addr paddr);

    /**
     * MESI snoop for a load miss: if any other core holds the line
     * dirty, downgrade it to clean and write the data back into the
     * shared LLC. @return true when a dirty remote copy was found.
     * @p drainExtra accumulates dirty-eviction penalties charged by
     * the LLC write-back this snoop may trigger.
     */
    bool snoopRemoteDirty(unsigned core, Addr paddr, PerfCounters &ctr,
                          Cycles &drainExtra);

    /**
     * Install a line into the shared LLC. An eviction back-invalidates
     * the victim in every core's privates when inclusiveLlc is set; if
     * the LLC victim or any dropped private copy was dirty, the drain
     * penalty is added to @p drainExtra and counted in @p ctr (the
     * access that forced the eviction pays — the cross-core signal).
     */
    void llcFillShared(Addr paddr, unsigned core, bool asDirty,
                       bool checkResident, PerfCounters &ctr,
                       Cycles &drainExtra);

    /**
     * Write a dirty L1 victim of @p core back into its private L2,
     * cascading a dirty L2 victim into the shared LLC.
     */
    void writebackToL2(Core &c, unsigned core, Addr lineAddr, ThreadId tid,
                       PerfCounters &ctr, Cycles &drainExtra);

    HierarchyParams params_;
    Rng *rng_;
    std::vector<std::unique_ptr<Core>> cores_; //!< stable port addresses
    Cache llc_;
};

} // namespace wb::sim

#endif // WB_SIM_MULTICORE_HH
