#include "sim/cache.hh"

#include <algorithm>
#include <bit>

#include "common/log.hh"

namespace wb::sim
{

namespace
{

// Runs before any member initializer: numSets() divides by ways, and
// PolicyTable's own ways check would lose the cache name.
const CacheParams &
validated(const CacheParams &params)
{
    if (params.ways == 0)
        fatalf(params.name, ": zero ways");
    if (params.ways > 32)
        fatalf(params.name, ": more than 32 ways unsupported");
    if (params.sizeBytes % (params.ways * lineBytes) != 0)
        fatalf(params.name, ": size not divisible by way size");
    return params;
}

} // namespace

Cache::Cache(const CacheParams &params, Rng *rng)
    : params_(validated(params)), layout_(params.numSets()),
      policy_(params.policy, params.numSets(), params.ways, rng)
{
    const std::size_t lines =
        std::size_t(params_.numSets()) * params_.ways;
    lineAddr_.assign(lines, 0);
    flags_.assign(lines, LineFlagWord{});
    filledBy_.assign(lines, 0);
    validMask_.assign(params_.numSets(), 0);
    lockedMask_.assign(params_.numSets(), 0);
    allMask_ = wayMaskAll(params_.ways);
    fillMask_.reserve(params_.fillMaskPerThread.size());
    for (std::uint32_t m : params_.fillMaskPerThread)
        fillMask_.push_back(m & allMask_);
}

void
Cache::reset()
{
    std::fill(lineAddr_.begin(), lineAddr_.end(), 0);
    std::fill(flags_.begin(), flags_.end(), LineFlagWord{});
    std::fill(filledBy_.begin(), filledBy_.end(), 0);
    std::fill(validMask_.begin(), validMask_.end(), 0);
    std::fill(lockedMask_.begin(), lockedMask_.end(), 0);
    policy_.reset();
}

std::optional<unsigned>
Cache::probe(Addr paddr, ThreadId tid) const
{
    const int way = probeWay(AddressLayout::lineAddr(paddr),
                             layout_.setIndex(paddr), tid);
    if (way < 0)
        return std::nullopt;
    return static_cast<unsigned>(way);
}

void
Cache::onHit(Addr paddr, unsigned way, ThreadId, bool isWrite)
{
    const unsigned set = layout_.setIndex(paddr);
    const std::size_t idx = std::size_t(set) * params_.ways + way;
    if ((unsigned(flags_[idx]) & FlagValid) == 0 ||
        lineAddr_[idx] != AddressLayout::lineAddr(paddr))
        panicf(params_.name, ": onHit way does not hold the line");
    hitFast(set, way, isWrite);
}

FillOutcome
Cache::fill(Addr paddr, ThreadId tid, bool asDirty)
{
    return fillFast(paddr, tid, asDirty, /*checkResident=*/true);
}

BatchStats
Cache::probeBatch(const Addr *addrs, std::size_t n, ThreadId tid,
                  std::uint8_t *hitWay) const
{
    // Per-traversal invariants hoisted out of the per-address loop.
    const unsigned ways = params_.ways;
    const std::uint32_t isolationMask =
        params_.probeIsolated ? fillMaskFor(tid) : allMask_;
    BatchStats stats;
    for (std::size_t i = 0; i < n; ++i) {
        const Addr la = AddressLayout::lineAddr(addrs[i]);
        const unsigned set = layout_.setIndex(addrs[i]);
        const Addr *stripe = &lineAddr_[std::size_t(set) * ways];
        unsigned way = 0xff;
        for (std::uint32_t m = validMask_[set]; m != 0; m &= m - 1) {
            const unsigned w = lowestWay(m);
            if (stripe[w] == la) {
                if ((isolationMask >> w) & 1u)
                    way = w;
                break;
            }
        }
        if (way != 0xff)
            ++stats.hits;
        else
            ++stats.misses;
        if (hitWay != nullptr)
            hitWay[i] = static_cast<std::uint8_t>(way);
    }
    return stats;
}

BatchStats
Cache::fillBatch(const Addr *addrs, std::size_t n, ThreadId tid,
                 bool asDirty, std::vector<Evicted> *evictedOut)
{
    // One fillLine() per address — the same body fill() uses, so the
    // two paths cannot drift — with the traversal-invariant
    // configuration hoisted out of the loop.
    const auto [dirtyFill, newFlags] = fillSpec(asDirty);
    const std::uint32_t fillMask = fillMaskFor(tid);
    BatchStats stats;

    for (std::size_t i = 0; i < n; ++i) {
        const FillOutcome out =
            fillLine(AddressLayout::lineAddr(addrs[i]),
                     layout_.setIndex(addrs[i]), tid, fillMask,
                     dirtyFill, newFlags);
        if (out.residentHit) {
            ++stats.hits;
            continue;
        }
        ++stats.misses;
        if (!out.filled) {
            ++stats.bypassed;
            continue;
        }
        ++stats.fills;
        if (out.evicted.any) {
            ++stats.evictions;
            stats.dirtyEvictions += out.evicted.dirty ? 1 : 0;
            if (evictedOut != nullptr)
                evictedOut->push_back(out.evicted);
        }
    }
    return stats;
}

bool
Cache::invalidate(Addr paddr, bool &wasDirty)
{
    wasDirty = false;
    const std::size_t idx = findIndex(paddr);
    if (idx == npos)
        return false;
    wasDirty = (unsigned(flags_[idx]) & FlagDirty) != 0;
    const unsigned set = static_cast<unsigned>(idx / params_.ways);
    const unsigned way = static_cast<unsigned>(idx % params_.ways);
    lineAddr_[idx] = 0;
    flags_[idx] = LineFlagWord{};
    filledBy_[idx] = 0;
    validMask_[set] &= ~(1u << way);
    lockedMask_[set] &= ~(1u << way);
    return true;
}

bool
Cache::lock(Addr paddr)
{
    const std::size_t idx = findIndex(paddr);
    if (idx == npos)
        return false;
    flags_[idx] = flagWord(unsigned(flags_[idx]) | FlagLocked);
    lockedMask_[idx / params_.ways] |=
        1u << static_cast<unsigned>(idx % params_.ways);
    return true;
}

bool
Cache::unlock(Addr paddr)
{
    const std::size_t idx = findIndex(paddr);
    if (idx == npos)
        return false;
    flags_[idx] = flagWord(unsigned(flags_[idx]) & ~FlagLocked);
    lockedMask_[idx / params_.ways] &=
        ~(1u << static_cast<unsigned>(idx % params_.ways));
    return true;
}

void
Cache::badVictimWay(unsigned way) const
{
    panicf(params_.name, ": policy chose ineligible way ", way);
}

void
Cache::unlockAll()
{
    for (auto &f : flags_)
        f = flagWord(unsigned(f) & ~FlagLocked);
    std::fill(lockedMask_.begin(), lockedMask_.end(), 0);
}

bool
Cache::contains(Addr paddr) const
{
    return findIndex(paddr) != npos;
}

bool
Cache::isDirty(Addr paddr) const
{
    const std::size_t idx = findIndex(paddr);
    return idx != npos && (unsigned(flags_[idx]) & FlagDirty) != 0;
}

bool
Cache::downgrade(Addr paddr)
{
    const std::size_t idx = findIndex(paddr);
    if (idx == npos || (unsigned(flags_[idx]) & FlagDirty) == 0)
        return false;
    flags_[idx] = flagWord(unsigned(flags_[idx]) & ~FlagDirty);
    return true;
}

unsigned
Cache::dirtyCountInSet(unsigned set) const
{
    if (set >= validMask_.size())
        fatalf(params_.name, ": set ", set, " out of range");
    unsigned n = 0;
    const std::size_t base = std::size_t(set) * params_.ways;
    for (std::uint32_t m = validMask_[set]; m != 0; m &= m - 1)
        if (unsigned(flags_[base + lowestWay(m)]) & FlagDirty)
            ++n;
    return n;
}

unsigned
Cache::validCountInSet(unsigned set) const
{
    if (set >= validMask_.size())
        fatalf(params_.name, ": set ", set, " out of range");
    return static_cast<unsigned>(std::popcount(validMask_[set]));
}

std::vector<Line>
Cache::setContents(unsigned set) const
{
    if (set >= validMask_.size())
        fatalf(params_.name, ": set ", set, " out of range");
    std::vector<Line> lines(params_.ways);
    const std::size_t base = std::size_t(set) * params_.ways;
    for (unsigned w = 0; w < params_.ways; ++w) {
        const std::uint8_t f = flags_[base + w];
        lines[w].valid = (f & FlagValid) != 0;
        lines[w].dirty = (f & FlagDirty) != 0;
        lines[w].locked = (f & FlagLocked) != 0;
        lines[w].lineAddr = lineAddr_[base + w];
        lines[w].filledBy = filledBy_[base + w];
    }
    return lines;
}

std::size_t
Cache::findIndex(Addr paddr) const
{
    const Addr la = AddressLayout::lineAddr(paddr);
    const unsigned set = layout_.setIndex(paddr);
    const std::size_t base = std::size_t(set) * params_.ways;
    for (std::uint32_t m = validMask_[set]; m != 0; m &= m - 1) {
        const unsigned w = lowestWay(m);
        if (lineAddr_[base + w] == la)
            return base + w;
    }
    return npos;
}

} // namespace wb::sim
