#include "sim/scheduler.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/multicore.hh"

namespace wb::sim
{

const char *
coRunnerKindName(CoRunnerKind kind)
{
    switch (kind) {
      case CoRunnerKind::Idle:
        return "idle";
      case CoRunnerKind::Streaming:
        return "streaming";
      case CoRunnerKind::PointerChase:
        return "pointer-chase";
      case CoRunnerKind::RandomStore:
        return "random-store";
    }
    return "?";
}

std::uint64_t
coRunnerSeed(std::uint64_t masterSeed, unsigned index)
{
    // SplitMix64 finalizer over a salted combination: stream i is a
    // pure function of (masterSeed, i), uncorrelated across i.
    std::uint64_t z = masterSeed ^ (0x9e3779b97f4a7c15ULL *
                                    (static_cast<std::uint64_t>(index) + 1));
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::vector<CoRunnerKind>
SchedulerConfig::mixOf(unsigned n)
{
    static constexpr CoRunnerKind rotation[] = {
        CoRunnerKind::Streaming,
        CoRunnerKind::PointerChase,
        CoRunnerKind::RandomStore,
        CoRunnerKind::Idle,
    };
    std::vector<CoRunnerKind> mix;
    mix.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        mix.push_back(rotation[i % 4]);
    return mix;
}

// --------------------------------------------------------------------
// CoRunnerProgram
// --------------------------------------------------------------------

CoRunnerProgram::CoRunnerProgram(CoRunnerKind kind, unsigned lines,
                                 Cycles gap, std::uint64_t seed)
    : kind_(kind), lines_(std::max(1u, lines)), gap_(std::max<Cycles>(1, gap)),
      rng_(seed)
{
    buffer_.reserve(lines_);
    for (unsigned i = 0; i < lines_; ++i)
        buffer_.push_back(static_cast<Addr>(i) * 64);
}

void
CoRunnerProgram::reseed(std::uint64_t seed)
{
    rng_.reseed(seed);
    rng_.discardCachedDeviates();
    pass_.clear();
    inGap_ = false;
    accesses_ = 0;
}

void
CoRunnerProgram::prepareBurst()
{
    switch (kind_) {
      case CoRunnerKind::Idle:
        pass_.clear();
        break;
      case CoRunnerKind::Streaming:
        // A sequential sweep of the whole working set (memcpy-style).
        // The pass never changes, so copy it once and reuse.
        if (pass_.size() != buffer_.size())
            pass_ = buffer_;
        break;
      case CoRunnerKind::PointerChase:
        // The whole working set in a fresh dependent-load order.
        pass_ = buffer_;
        rng_.shuffle(pass_);
        break;
      case CoRunnerKind::RandomStore: {
        // A random quarter of the working set, dirtied.
        const std::size_t n = std::max<std::size_t>(1, lines_ / 4);
        pass_.clear();
        pass_.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            pass_.push_back(buffer_[rng_.below(lines_)]);
        break;
      }
    }
}

std::optional<MemOp>
CoRunnerProgram::next(ProcView &view)
{
    if (kind_ == CoRunnerKind::Idle)
        return MemOp::spinUntil(view.now() + 8 * gap_);
    if (inGap_) {
        inGap_ = false;
        return MemOp::delay(gap_);
    }
    prepareBurst();
    inGap_ = true;
    accesses_ += pass_.size();
    if (kind_ == CoRunnerKind::RandomStore)
        return MemOp::storeBatch(pass_.data(), pass_.size());
    return MemOp::loadBatch(pass_.data(), pass_.size());
}

void
CoRunnerProgram::onResult(const MemOp &, const OpResult &, ProcView &)
{
}

const Trace *
CoRunnerProgram::nextTrace(ProcView &view)
{
    // Idle spinners re-base each wait on the current time, so they
    // stay on the per-op path (one spin per step is not a hot loop).
    if (kind_ == CoRunnerKind::Idle)
        return nullptr;
    if (inGap_) {
        // Only reachable if trace execution was toggled mid-run; emit
        // the pending gap so the op sequence stays identical.
        inGap_ = false;
        traceOps_[0] = MemOp::delay(gap_);
        trace_ = {traceOps_.data(), 1, nullptr, 0};
        return &trace_;
    }
    (void)view;
    // Same pick moment as the per-op next(), so the burst preparation
    // consumes this program's private Rng at the identical stream
    // position; the trailing gap delay draws nothing. No result hooks:
    // nothing downstream depends on a co-runner's op results.
    prepareBurst();
    accesses_ += pass_.size();
    traceOps_[0] = kind_ == CoRunnerKind::RandomStore
                       ? MemOp::storeBatch(pass_.data(), pass_.size())
                       : MemOp::loadBatch(pass_.data(), pass_.size());
    traceOps_[1] = MemOp::delay(gap_);
    trace_ = {traceOps_.data(), 2, nullptr, 0};
    return &trace_;
}

std::uint64_t
CoRunnerProgram::burst(MemorySystem &mem, ThreadId tid,
                       const AddressSpace &space)
{
    if (kind_ == CoRunnerKind::Idle)
        return 0;
    prepareBurst();
    mem.accessBatch(tid, space, pass_.data(), pass_.size(),
                    /*isWrite=*/kind_ == CoRunnerKind::RandomStore);
    accesses_ += pass_.size();
    return pass_.size();
}

// --------------------------------------------------------------------
// PollutionStream
// --------------------------------------------------------------------

std::uint64_t
PollutionStream::burst(MemorySystem &mem, unsigned lines,
                       double storeFraction)
{
    for (unsigned i = 0; i < lines; ++i) {
        const Addr va = rng_.below(4096) * 64;
        const bool isWrite = rng_.chance(storeFraction);
        mem.access(Scheduler::osTid, space_.translate(va), isWrite);
    }
    return lines;
}

// --------------------------------------------------------------------
// Scheduler
// --------------------------------------------------------------------

Scheduler::Scheduler(MultiCoreSystem &sys, const NoiseModel &noise,
                     Rng &rng, const SchedulerConfig &cfg,
                     std::uint64_t masterSeed)
    : multi_(&sys), noise_(noise), rng_(&rng), cfg_(cfg),
      masterSeed_(masterSeed), coreCount_(sys.coreCount())
{
    coreShare_.resize(coreCount_);
    lastSlice_.assign(coreCount_, 0);
    for (unsigned c = 0; c < coreCount_; ++c) {
        pollution_.emplace_back(coRunnerSeed(masterSeed, 0x8000 + c),
                                AddressSpaceId(200 + c));
    }
    nextMigrationAt_ = cfg_.migrationPeriod;
    nextSampleAt_ = cfg_.samplePeriod;
}

Scheduler::Scheduler(MemorySystem &mem, const NoiseModel &noise, Rng &rng,
                     const SchedulerConfig &cfg, std::uint64_t masterSeed)
    : single_(&mem), noise_(noise), rng_(&rng), cfg_(cfg),
      masterSeed_(masterSeed), coreCount_(1)
{
    coreShare_.resize(1);
    lastSlice_.assign(1, 0);
    pollution_.emplace_back(coRunnerSeed(masterSeed, 0x8000),
                            AddressSpaceId(200));
    nextMigrationAt_ = cfg_.migrationPeriod;
    nextSampleAt_ = cfg_.samplePeriod;
}

MemorySystem &
Scheduler::portOf(unsigned core)
{
    if (multi_ != nullptr)
        return multi_->port(core);
    return *single_;
}

ThreadId
Scheduler::allocTidBase(bool isParty)
{
    // Parties get room for sender+receiver+legacy noise threads;
    // co-runners are single-threaded. osTid stays reserved above.
    const ThreadId base = nextTid_;
    nextTid_ = base + (isParty ? 8 : 2);
    if (nextTid_ > osTid)
        fatalf("Scheduler: thread-id space exhausted (", nextTid_,
               " > OS tid ", osTid, "); fewer front-ends, please");
    return base;
}

SmtCore &
Scheduler::party(unsigned core, bool migratable)
{
    if (materialized_)
        fatalf("Scheduler::party: called after run()");
    if (core >= coreCount_)
        fatalf("Scheduler::party: core ", core, " out of range (",
               coreCount_, " cores)");
    auto fe = std::make_unique<FrontEnd>();
    fe->core = std::make_unique<SmtCore>(portOf(core), noise_, *rng_,
                                         allocTidBase(true),
                                         /*tidSpan=*/8);
    fe->homeCore = core;
    fe->migratable = migratable;
    fe->isParty = true;
    coreShare_[core].push_back(fe.get());
    frontEnds_.push_back(std::move(fe));
    return *frontEnds_.back()->core;
}

void
Scheduler::materialize()
{
    if (materialized_)
        return;
    materialized_ = true;
    if (cfg_.coRunners.empty())
        return;

    // Co-runners fill in after the highest party core: free cores
    // first, then they start sharing (and timeslicing) party cores —
    // the Table-VII progression from background load to direct
    // co-residency.
    unsigned maxPartyCore = 0;
    for (const auto &fe : frontEnds_)
        maxPartyCore = std::max(maxPartyCore, fe->homeCore);

    coRunnerSpaces_.reserve(cfg_.coRunners.size());
    for (unsigned i = 0; i < cfg_.coRunners.size(); ++i) {
        const unsigned core =
            multi_ != nullptr ? (maxPartyCore + 1 + i) % coreCount_ : 0;
        coRunnerSpaces_.emplace_back(AddressSpaceId(100 + i));
        auto program = std::make_unique<CoRunnerProgram>(
            cfg_.coRunners[i], cfg_.coRunnerLines, cfg_.coRunnerGap,
            coRunnerSeed(masterSeed_, i));
        auto fe = std::make_unique<FrontEnd>();
        fe->core = std::make_unique<SmtCore>(portOf(core), noise_, *rng_,
                                             allocTidBase(false),
                                             /*tidSpan=*/2);
        fe->homeCore = core;
        fe->program = program.get();
        // Staggered launch so identical co-runners do not start in
        // lockstep on different cores.
        fe->core->addThread(program.get(), coRunnerSpaces_[i],
                            /*startTime=*/100 * i);
        // Idle co-runners model blocked/yielding processes: they get
        // no slice of the core (a real scheduler skips sleepers), so
        // they neither deschedule the parties nor trigger switch
        // pollution — an idle mix leaves the channel untouched.
        fe->inRotation = cfg_.coRunners[i] != CoRunnerKind::Idle;
        if (fe->inRotation)
            coreShare_[core].push_back(fe.get());
        frontEnds_.push_back(std::move(fe));
        coRunners_.push_back(std::move(program));
    }
}

void
Scheduler::pollute(unsigned core)
{
    stats_.pollutionAccesses +=
        pollution_.at(core).burst(portOf(core), cfg_.pollutionLines,
                                  cfg_.pollutionStoreFraction);
}

void
Scheduler::migrate()
{
    for (auto &fe : frontEnds_) {
        if (!fe->migratable)
            continue;
        // Next core (cyclically) hosting no *other* party — migrating
        // onto a free core or one with only co-runners. When every
        // core hosts a party (2-core machines), the front-end is
        // descheduled and rescheduled in place: the port stays, but
        // the spin-stack translation is flushed all the same.
        unsigned target = fe->homeCore;
        for (unsigned k = 1; k <= coreCount_; ++k) {
            const unsigned c = (fe->homeCore + k) % coreCount_;
            bool hostsOtherParty = false;
            for (const FrontEnd *other : coreShare_[c])
                if (other != fe.get() && other->isParty)
                    hostsOtherParty = true;
            if (!hostsOtherParty) {
                target = c;
                break;
            }
        }
        if (target != fe->homeCore) {
            auto &from = coreShare_[fe->homeCore];
            from.erase(std::find(from.begin(), from.end(), fe.get()));
            coreShare_[target].push_back(fe.get());
            fe->homeCore = target;
        }
        fe->core->rebind(portOf(fe->homeCore));
        ++stats_.migrations;
    }
}

unsigned
Scheduler::horizonStretch()
{
    materialize();
    if (cfg_.timeslice == 0)
        return 1;
    std::size_t stretch = 1;
    for (const auto &fe : frontEnds_)
        if (fe->isParty)
            stretch = std::max(stretch, coreShare_[fe->homeCore].size());
    return static_cast<unsigned>(stretch);
}

Cycles
Scheduler::run(Cycles horizon)
{
    materialize();
    const std::size_t nFe = frontEnds_.size();
    for (;;) {
        FrontEnd *pick = nullptr;
        std::size_t pickIdx = 0;
        Cycles t = SmtCore::noPendingTime;
        for (std::size_t i = 0; i < nFe; ++i) {
            const Cycles n = frontEnds_[i]->core->nextTime();
            if (n < t) {
                t = n;
                pick = frontEnds_[i].get();
                pickIdx = i;
            }
        }
        if (pick == nullptr || t >= horizon)
            break;

        // Sampling fires first: the window that just closed must be
        // read before a migration scheduled at the same boundary
        // reshuffles anything (both only act between operations, so
        // the order is about reporting, not simulation state).
        while (cfg_.sampling() && t >= nextSampleAt_) {
            cfg_.sampleHook(*this, nextSampleAt_);
            nextSampleAt_ += cfg_.samplePeriod;
        }

        while (cfg_.migrationPeriod != 0 && t >= nextMigrationAt_) {
            migrate();
            nextMigrationAt_ += cfg_.migrationPeriod;
        }

        // The picked front-end may run a whole trace slice, but only
        // up to the next point where this loop's per-pick decisions
        // (migration, slice ownership, pollution, the global earliest-
        // op-first order) could go differently — so batching is
        // invisible to the simulated machine.
        Cycles bound = horizon;
        if (cfg_.migrationPeriod != 0)
            bound = std::min(bound, nextMigrationAt_);
        if (cfg_.sampling())
            bound = std::min(bound, nextSampleAt_);

        const unsigned core = pick->homeCore;
        auto &share = coreShare_[core];
        if (cfg_.timeslice != 0 && share.size() > 1 && pick->inRotation) {
            const std::uint64_t slice = t / cfg_.timeslice;
            FrontEnd *owner = share[slice % share.size()];
            if (owner != pick) {
                // Descheduled: the whole front-end shifts rigidly to
                // its next owned slice (phase-preserving gang freeze;
                // see SmtCore::descheduleShift), mid-burst threads
                // first finishing within a bounded overrun so a tick
                // never splits a timed measurement.
                std::uint64_t k = slice + 1;
                while (share[k % share.size()] != pick)
                    ++k;
                const Cycles from = slice * cfg_.timeslice;
                pick->core->descheduleShift(
                    from, k * cfg_.timeslice,
                    /*grace=*/from + cfg_.timeslice / 4);
                if (pick->core->nextTime() != t)
                    continue; // frozen (or moved): re-pick globally
                // The earliest thread is mid-burst within its grace
                // budget: let it finish exactly one op, then re-check
                // ownership — the grace overrun is per-op by design.
                pick->core->stepEarliest(horizon);
                continue;
            }
            if (slice != lastSlice_[core]) {
                lastSlice_[core] = slice;
                ++stats_.contextSwitches;
                pollute(core);
            }
            // Stop at the slice boundary so ownership is re-evaluated
            // (and switch pollution charged) exactly on the tick.
            bound = std::min(bound, (slice + 1) * cfg_.timeslice);
        }

        // Front-end ties resolve to the lowest index, as in the pick
        // scan above: the pick keeps winning while strictly earlier
        // than lower-indexed peers and no later than higher-indexed
        // ones.
        for (std::size_t i = 0; i < nFe; ++i) {
            if (i == pickIdx)
                continue;
            const Cycles n = frontEnds_[i]->core->nextTime();
            if (n == SmtCore::noPendingTime)
                continue;
            bound = std::min(bound, i < pickIdx ? n : n + 1);
        }
        pick->core->runUntil(bound);
    }

    // Every operation issued before `horizon` has now executed, so
    // every complete window up to the horizon can be read — including
    // trailing windows in which the remaining threads were done. The
    // offline tumbling-window collector produces exactly these
    // windows, which is what the online-vs-offline feature-equivalence
    // test compares against.
    while (cfg_.sampling() && nextSampleAt_ <= horizon) {
        cfg_.sampleHook(*this, nextSampleAt_);
        nextSampleAt_ += cfg_.samplePeriod;
    }

    Cycles maxTime = 0;
    for (const auto &fe : frontEnds_)
        maxTime = std::max(maxTime, fe->core->maxTime());
    return maxTime;
}

SchedulerStats
Scheduler::stats() const
{
    SchedulerStats s = stats_;
    for (const auto &program : coRunners_)
        s.coRunnerAccesses += program->accesses();
    return s;
}

void
Scheduler::reseed(std::uint64_t masterSeed)
{
    masterSeed_ = masterSeed;
    for (unsigned i = 0; i < coRunners_.size(); ++i)
        coRunners_[i]->reseed(coRunnerSeed(masterSeed, i));
    for (unsigned c = 0; c < coreCount_; ++c)
        pollution_[c].reseed(coRunnerSeed(masterSeed, 0x8000 + c));
    lastSlice_.assign(coreCount_, 0);
    nextMigrationAt_ = cfg_.migrationPeriod;
    nextSampleAt_ = cfg_.samplePeriod;
    stats_ = SchedulerStats{};
}

PerfCounters
Scheduler::tidCounters(ThreadId tid)
{
    if (multi_ != nullptr) {
        PerfCounters sum;
        for (unsigned c = 0; c < multi_->coreCount(); ++c)
            sum.merge(multi_->counters(c, tid));
        return sum;
    }
    return single_->counters(tid);
}

unsigned
Scheduler::coreOf(const SmtCore &frontEnd) const
{
    for (const auto &fe : frontEnds_)
        if (fe->core.get() == &frontEnd)
            return fe->homeCore;
    fatalf("Scheduler::coreOf: unknown front-end");
}

std::vector<const CoRunnerProgram *>
Scheduler::coRunnerPrograms() const
{
    std::vector<const CoRunnerProgram *> out;
    out.reserve(coRunners_.size());
    for (const auto &program : coRunners_)
        out.push_back(program.get());
    return out;
}

} // namespace wb::sim
