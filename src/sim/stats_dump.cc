#include "sim/stats_dump.hh"

#include <iomanip>

namespace wb::sim
{

namespace
{

void
dumpOne(const PerfCounters &c, const std::string &prefix,
        std::ostream &os)
{
    auto line = [&](const char *name, std::uint64_t v) {
        os << std::left << std::setw(34) << (prefix + name) << v
           << "\n";
    };
    auto rate = [&](const char *name, double v) {
        os << std::left << std::setw(34) << (prefix + name)
           << std::fixed << std::setprecision(6) << v << "\n";
    };
    line("loads", c.loads);
    line("stores", c.stores);
    line("spinLoads", c.spinLoads);
    line("l1.hits", c.l1Hits);
    line("l1.misses", c.l1Misses);
    rate("l1.missRate", c.l1MissRate());
    rate("l1.missRateWithSpin", c.l1MissRateWithSpin());
    line("l1.dirtyWritebacks", c.l1DirtyWritebacks);
    line("l2.accesses", c.l2Accesses);
    line("l2.hits", c.l2Hits);
    line("l2.misses", c.l2Misses);
    rate("l2.missRate", c.l2MissRate());
    line("llc.accesses", c.llcAccesses);
    line("llc.hits", c.llcHits);
    line("llc.misses", c.llcMisses);
    rate("llc.missRate", c.llcMissRate());
    line("flushes", c.flushes);
}

} // namespace

void
dumpStats(Hierarchy &hierarchy, std::ostream &os, unsigned threads)
{
    os << "---------- wbchan stats dump ----------\n";
    for (ThreadId t = 0; t < threads; ++t)
        dumpOne(hierarchy.counters(t),
                "thread" + std::to_string(t) + ".", os);
    dumpOne(hierarchy.totalCounters(), "total.", os);
    os << "---------------------------------------\n";
}

} // namespace wb::sim
