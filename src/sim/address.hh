/**
 * @file
 * Address decomposition and per-process address spaces.
 *
 * The simulated caches are physically tagged. Each simulated process owns
 * an AddressSpace; private virtual addresses translate to disjoint
 * physical ranges (so the sender and receiver share no cache lines, the
 * paper's "no shared memory" property), while explicitly registered
 * shared segments translate to a common physical range (used only by the
 * Flush+Reload / Flush+Flush baselines).
 *
 * Translation is page-linear: the low pageBits of the virtual address are
 * preserved, so set-index bits (bits 6..11 for a 64-set L1) survive
 * translation exactly as on a VIPT L1 — a process can target a cache set
 * purely from its virtual addresses, as the paper describes (Sec. IV).
 */

#ifndef WB_SIM_ADDRESS_HH
#define WB_SIM_ADDRESS_HH

#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace wb::sim
{

/** Index/tag decomposition for one cache geometry. */
class AddressLayout
{
  public:
    /**
     * @param numSets number of sets; must be a power of two
     */
    explicit AddressLayout(unsigned numSets) : numSets_(numSets)
    {
        if (numSets == 0 || (numSets & (numSets - 1)) != 0)
            panicf("AddressLayout: numSets ", numSets, " not a power of 2");
        unsigned n = numSets;
        while (n >>= 1)
            ++indexBits_;
    }

    /** Cache-line-granular address (drops the block offset). */
    static Addr lineAddr(Addr addr) { return addr >> lineShift; }

    /** Set index for a byte address. */
    unsigned
    setIndex(Addr addr) const
    {
        return static_cast<unsigned>(lineAddr(addr) & (numSets_ - 1));
    }

    /** Tag (everything above the index bits) for a byte address. */
    Addr tag(Addr addr) const { return lineAddr(addr) >> indexBits_; }

    /** Number of sets. */
    unsigned numSets() const { return numSets_; }

    /** Number of index bits. */
    unsigned indexBits() const { return indexBits_; }

    /**
     * Reconstruct a byte address with the given set index and tag
     * (inverse of setIndex/tag); used by set-mapping helpers.
     */
    Addr
    compose(unsigned set, Addr tag) const
    {
        return ((tag << indexBits_) | set) << lineShift;
    }

  private:
    unsigned numSets_;
    unsigned indexBits_ = 0;
};

/** A registered shared-memory segment inside an AddressSpace. */
struct SharedSegment
{
    Addr vaBase = 0;   //!< virtual base inside the owning process
    Addr size = 0;     //!< segment size in bytes
    Addr physBase = 0; //!< common physical base of the segment
};

/**
 * One simulated process' address space: a linear private mapping plus
 * optional shared segments.
 */
class AddressSpace
{
  public:
    /** @param asid unique id of this process' private physical range. */
    explicit AddressSpace(AddressSpaceId asid) : asid_(asid) {}

    /** The address-space id. */
    AddressSpaceId asid() const { return asid_; }

    /**
     * Map @p size bytes at virtual @p vaBase onto the shared physical
     * range starting at @p physBase. Multiple processes mapping the same
     * physBase share cache lines (Flush+Reload's precondition).
     */
    void
    mapShared(Addr vaBase, Addr size, Addr physBase)
    {
        shared_.push_back({vaBase, size, physBase});
    }

    /** Translate a virtual byte address to a physical byte address. */
    Addr
    translate(Addr va) const
    {
        for (const auto &seg : shared_) {
            if (va >= seg.vaBase && va < seg.vaBase + seg.size)
                return sharedBase + seg.physBase + (va - seg.vaBase);
        }
        return (static_cast<Addr>(asid_) << privateShift) | (va & vaMask);
    }

    /** Physical bit region reserved for shared mappings. */
    static constexpr Addr sharedBase = Addr(1) << 60;

    /** Shift placing the asid above any private virtual address. */
    static constexpr unsigned privateShift = 44;

    /** Mask limiting private virtual addresses to 44 bits. */
    static constexpr Addr vaMask = (Addr(1) << privateShift) - 1;

  private:
    AddressSpaceId asid_;
    std::vector<SharedSegment> shared_;
};

} // namespace wb::sim

#endif // WB_SIM_ADDRESS_HH
