/**
 * @file
 * SweepRunner: a small thread pool fanning an embarrassingly parallel
 * (platform x defense x noise x seed) work-list over shared-nothing
 * simulation instances.
 *
 * Every cell of a sweep grid is an independent full simulation (its
 * own Rng, Hierarchy, programs), so the only coordination the runner
 * provides is work distribution and completion. Determinism is the
 * design constraint: results are delivered *by index*, never by
 * completion order, so a caller that assembles output in index (or
 * sorted-cell-key) order produces byte-identical artifacts at any
 * thread count — asserted by tests/test_sweep_runner.cc and the
 * `-j`-flagged sweep examples.
 *
 * Worker functions must be shared-nothing: capture configuration by
 * value and touch no shared mutable state. The first exception thrown
 * by any worker is captured and rethrown on the calling thread after
 * the pool drains.
 */

#ifndef WB_SIM_SWEEP_RUNNER_HH
#define WB_SIM_SWEEP_RUNNER_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace wb::sim
{

class SweepRunner
{
  public:
    /**
     * @param threads worker count; 0 picks the hardware concurrency
     *        (minimum 1). 1 runs every job inline on the caller.
     */
    explicit SweepRunner(unsigned threads = 0);

    /** Worker count this runner fans over. */
    unsigned threads() const { return threads_; }

    /**
     * Run fn(0..n-1), distributing indices over the pool. Returns
     * when all jobs finished. Serial (no threads spawned) when the
     * pool has one worker or there is at most one job. If any job
     * throws, the first captured exception is rethrown here after all
     * workers stop picking up new work.
     */
    void run(std::size_t n, const std::function<void(std::size_t)> &fn);

    /**
     * run() collecting each job's return value; results come back
     * indexed by job, independent of completion order. R must be
     * default-constructible and movable.
     */
    template <typename R, typename Fn>
    std::vector<R>
    map(std::size_t n, Fn &&fn)
    {
        std::vector<R> results(n);
        run(n, [&](std::size_t i) { results[i] = fn(i); });
        return results;
    }

  private:
    unsigned threads_;
};

} // namespace wb::sim

#endif // WB_SIM_SWEEP_RUNNER_HH
