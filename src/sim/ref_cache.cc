#include "sim/ref_cache.hh"

#include "common/log.hh"

namespace wb::sim
{

RefCache::RefCache(const CacheParams &params, Rng *rng)
    : params_(params), layout_(params.numSets())
{
    if (params_.ways == 0)
        fatalf(params_.name, ": zero ways");
    if (params_.ways > 32)
        fatalf(params_.name, ": more than 32 ways unsupported");
    if (params_.sizeBytes % (params_.ways * lineBytes) != 0)
        fatalf(params_.name, ": size not divisible by way size");
    const unsigned sets = params_.numSets();
    sets_.assign(sets, std::vector<Line>(params_.ways));
    policies_.reserve(sets);
    for (unsigned s = 0; s < sets; ++s)
        policies_.push_back(makePolicy(params_.policy, params_.ways, rng));
}

void
RefCache::reset()
{
    for (auto &set : sets_)
        for (auto &line : set)
            line = Line{};
    for (auto &policy : policies_)
        policy->reset();
}

bool
RefCache::allowedWay(ThreadId tid, unsigned way) const
{
    if (params_.fillMaskPerThread.empty())
        return true;
    if (tid >= params_.fillMaskPerThread.size())
        return true;
    return (params_.fillMaskPerThread[tid] >> way) & 1u;
}

std::optional<unsigned>
RefCache::probe(Addr paddr, ThreadId tid) const
{
    const Addr la = AddressLayout::lineAddr(paddr);
    const unsigned set = layout_.setIndex(paddr);
    const auto &lines = sets_[set];
    for (unsigned w = 0; w < params_.ways; ++w) {
        if (lines[w].valid && lines[w].lineAddr == la) {
            if (params_.probeIsolated && !allowedWay(tid, w))
                return std::nullopt;
            return w;
        }
    }
    return std::nullopt;
}

void
RefCache::onHit(Addr paddr, unsigned way, ThreadId, bool isWrite)
{
    const unsigned set = layout_.setIndex(paddr);
    Line &line = sets_[set][way];
    if (!line.valid || line.lineAddr != AddressLayout::lineAddr(paddr))
        panicf(params_.name, ": onHit way does not hold the line");
    if (isWrite && params_.writePolicy == WritePolicy::WriteBack) {
        line.dirty = true;
        if (params_.lockOnWrite)
            line.locked = true;
    }
    policies_[set]->onHit(way);
}

std::vector<bool>
RefCache::fillCandidates(unsigned set, ThreadId tid) const
{
    std::vector<bool> mask(params_.ways, false);
    const auto &lines = sets_[set];
    bool any = false;
    for (unsigned w = 0; w < params_.ways; ++w) {
        if (!lines[w].locked && allowedWay(tid, w)) {
            mask[w] = true;
            any = true;
        }
    }
    if (!any)
        mask.clear(); // signals "no fill possible"
    return mask;
}

FillOutcome
RefCache::fill(Addr paddr, ThreadId tid, bool asDirty)
{
    const Addr la = AddressLayout::lineAddr(paddr);
    const unsigned set = layout_.setIndex(paddr);
    auto &lines = sets_[set];

    // A fill of a resident line degenerates to a (write) hit.
    for (unsigned w = 0; w < params_.ways; ++w) {
        if (lines[w].valid && lines[w].lineAddr == la) {
            if (asDirty && params_.writePolicy == WritePolicy::WriteBack) {
                lines[w].dirty = true;
                if (params_.lockOnWrite)
                    lines[w].locked = true;
            }
            policies_[set]->onHit(w);
            FillOutcome hitOut;
            hitOut.filled = true;
            hitOut.residentHit = true;
            hitOut.way = w;
            return hitOut;
        }
    }

    auto candidates = fillCandidates(set, tid);
    if (candidates.empty())
        return {}; // everything locked / partition empty: bypass

    FillOutcome out;
    out.filled = true;

    // Prefer an invalid candidate way.
    unsigned way = params_.ways;
    for (unsigned w = 0; w < params_.ways; ++w) {
        if (candidates[w] && !lines[w].valid) {
            way = w;
            break;
        }
    }
    if (way == params_.ways) {
        // No invalid way among the candidates; ask the policy.
        std::uint32_t eligible = 0;
        for (unsigned w = 0; w < params_.ways; ++w)
            if (candidates[w])
                eligible |= 1u << w;
        way = policies_[set]->victim(eligible);
        if (way >= params_.ways || !candidates[way])
            panicf(params_.name, ": policy chose ineligible way ", way);
        out.evicted.any = lines[way].valid;
        out.evicted.dirty = lines[way].valid && lines[way].dirty;
        out.evicted.lineAddr = lines[way].lineAddr;
    }

    lines[way] = Line{};
    lines[way].valid = true;
    lines[way].lineAddr = la;
    lines[way].filledBy = tid;
    lines[way].dirty =
        asDirty && params_.writePolicy == WritePolicy::WriteBack;
    lines[way].locked = lines[way].dirty && params_.lockOnWrite;
    policies_[set]->onFill(way);
    out.way = way;
    return out;
}

bool
RefCache::invalidate(Addr paddr, bool &wasDirty)
{
    Line *line = find(paddr);
    wasDirty = false;
    if (line == nullptr)
        return false;
    wasDirty = line->dirty;
    *line = Line{};
    return true;
}

bool
RefCache::lock(Addr paddr)
{
    Line *line = find(paddr);
    if (line == nullptr)
        return false;
    line->locked = true;
    return true;
}

bool
RefCache::unlock(Addr paddr)
{
    Line *line = find(paddr);
    if (line == nullptr)
        return false;
    line->locked = false;
    return true;
}

void
RefCache::unlockAll()
{
    for (auto &set : sets_)
        for (auto &line : set)
            line.locked = false;
}

bool
RefCache::contains(Addr paddr) const
{
    return find(paddr) != nullptr;
}

bool
RefCache::isDirty(Addr paddr) const
{
    const Line *line = find(paddr);
    return line != nullptr && line->dirty;
}

unsigned
RefCache::dirtyCountInSet(unsigned set) const
{
    unsigned n = 0;
    for (const auto &line : sets_.at(set))
        if (line.valid && line.dirty)
            ++n;
    return n;
}

unsigned
RefCache::validCountInSet(unsigned set) const
{
    unsigned n = 0;
    for (const auto &line : sets_.at(set))
        if (line.valid)
            ++n;
    return n;
}

std::vector<Line>
RefCache::setContents(unsigned set) const
{
    return sets_.at(set);
}

Line *
RefCache::find(Addr paddr)
{
    const Addr la = AddressLayout::lineAddr(paddr);
    auto &lines = sets_[layout_.setIndex(paddr)];
    for (auto &line : lines)
        if (line.valid && line.lineAddr == la)
            return &line;
    return nullptr;
}

const Line *
RefCache::find(Addr paddr) const
{
    return const_cast<RefCache *>(this)->find(paddr);
}

} // namespace wb::sim
