/**
 * @file
 * gem5-style statistics dump for a hierarchy: every counter of every
 * thread plus derived rates, in a stable text format experiments can
 * diff. Used by examples and available to downstream users who want
 * a quick profile of what a program pair did to the cache.
 */

#ifndef WB_SIM_STATS_DUMP_HH
#define WB_SIM_STATS_DUMP_HH

#include <ostream>

#include "sim/hierarchy.hh"

namespace wb::sim
{

/**
 * Dump per-thread and total counters of @p hierarchy to @p os.
 *
 * @param hierarchy the hierarchy to report on
 * @param os output stream
 * @param threads number of threads to report (those beyond the ones
 *        ever used print as zeros)
 */
void dumpStats(Hierarchy &hierarchy, std::ostream &os,
               unsigned threads = 2);

} // namespace wb::sim

#endif // WB_SIM_STATS_DUMP_HH
