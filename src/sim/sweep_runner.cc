#include "sim/sweep_runner.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace wb::sim
{

SweepRunner::SweepRunner(unsigned threads) : threads_(threads)
{
    if (threads_ == 0) {
        threads_ = std::thread::hardware_concurrency();
        if (threads_ == 0)
            threads_ = 1;
    }
}

void
SweepRunner::run(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (threads_ <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr error;
    std::mutex errorLock;

    auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> guard(errorLock);
                if (!error)
                    error = std::current_exception();
                // Drain the remaining indices so siblings stop early.
                next.store(n);
                return;
            }
        }
    };

    const std::size_t spawn =
        std::min<std::size_t>(threads_, n) - 1; // caller is a worker too
    std::vector<std::thread> pool;
    pool.reserve(spawn);
    for (std::size_t t = 0; t < spawn; ++t)
        pool.emplace_back(worker);
    worker();
    for (auto &th : pool)
        th.join();

    if (error)
        std::rethrow_exception(error);
}

} // namespace wb::sim
